// BundleWatcher: polls bundle directories and hot-reloads changed models.
//
// Every poll interval the watcher stats each reloadable entry's
// manifest.json. A changed mtime triggers a content hash (FNV-1a 64 of the
// manifest bytes); when the hash differs from both the serving generation's
// and the last attempted one, the watcher calls ModelFleet::Reload — the
// full off-thread load / self-check / swap path. Failed attempts are
// remembered by hash so a bad bundle is not re-tried every poll; touching
// the manifest again (new bytes) re-arms it.
//
// CheckOnce() runs one synchronous sweep — what the poll thread executes —
// so tests drive reload triggering deterministically without timing waits.

#ifndef MISS_FLEET_BUNDLE_WATCHER_H_
#define MISS_FLEET_BUNDLE_WATCHER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "fleet/model_fleet.h"

namespace miss::fleet {

struct BundleWatcherConfig {
  int64_t poll_interval_ms = 2000;
};

class BundleWatcher {
 public:
  // `fleet` must outlive the watcher.
  explicit BundleWatcher(ModelFleet& fleet,
                         const BundleWatcherConfig& config = {});
  ~BundleWatcher();  // Stop()

  BundleWatcher(const BundleWatcher&) = delete;
  BundleWatcher& operator=(const BundleWatcher&) = delete;

  // Starts the poll thread (idempotent).
  void Start();
  // Stops and joins it (idempotent; safe without Start).
  void Stop();

  // One synchronous sweep over every reloadable entry; returns how many
  // reloads it triggered (successful swaps).
  int CheckOnce();

  int64_t polls() const { return polls_.load(std::memory_order_relaxed); }
  int64_t reloads_triggered() const {
    return reloads_.load(std::memory_order_relaxed);
  }

 private:
  struct Seen {
    int64_t mtime_ns = -1;
    std::string hash;  // last hash acted on (reload attempted)
  };

  void PollLoop();

  ModelFleet& fleet_;
  const BundleWatcherConfig config_;

  std::map<std::string, Seen> seen_;  // poll thread / CheckOnce caller only

  std::atomic<int64_t> polls_{0};
  std::atomic<int64_t> reloads_{0};

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace miss::fleet

#endif  // MISS_FLEET_BUNDLE_WATCHER_H_
