#include "fleet/model_fleet.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <utility>

#include "common/check.h"
#include "data/dataset.h"
#include "nn/tensor.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace miss::fleet {

namespace {

constexpr size_t kJournalCapacity = 32;

int64_t WallClockMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

// One probe forward over an all-zeros sample (every schema admits id 0 and
// a one-step history): a checkpoint that deserialized into garbage scores
// non-finite here and never reaches traffic.
bool SelfCheck(const serve::Bundle& bundle, std::string* error) {
  const data::DatasetSchema& schema = bundle.model->schema();
  data::Sample probe;
  probe.cat.assign(schema.categorical.size(), 0);
  probe.seq.assign(schema.sequential.size(), std::vector<int64_t>{0});
  data::Dataset staging;
  staging.schema = schema;
  staging.samples.push_back(std::move(probe));
  nn::InferenceScope inference;
  const nn::Tensor logits =
      bundle.model->Forward(data::MakeBatch(staging, {0}), /*training=*/false);
  if (!std::isfinite(logits.at(0))) {
    *error = "self-check probe scored a non-finite logit";
    return false;
  }
  return true;
}

// Plan-incompatible bundles still serve (dynamic path), but the event log
// should say why this model skipped the compiled path — the load/reload
// succeeds, so the journal row alone would hide it.
void LogPlanFallback(const std::string& name, const serve::Bundle& bundle) {
  if (bundle.plans == nullptr || bundle.plans->compatible()) return;
  obs::LogEvent("plan_fallback", name, /*ok=*/false,
                bundle.plans->fallback_reason());
}

}  // namespace

std::string HashFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "";
  uint64_t hash = 1469598103934665603ull;  // FNV-1a 64 offset basis
  char buf[4096];
  while (in.read(buf, sizeof(buf)) || in.gcount() > 0) {
    const std::streamsize n = in.gcount();
    for (std::streamsize i = 0; i < n; ++i) {
      hash ^= static_cast<unsigned char>(buf[i]);
      hash *= 1099511628211ull;  // FNV-1a 64 prime
    }
    if (n < static_cast<std::streamsize>(sizeof(buf))) break;
  }
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(hash));
  return std::string(hex);
}

ModelFleet::ModelFleet() = default;

ModelFleet::~ModelFleet() {
  {
    std::lock_guard<std::mutex> lock(task_mu_);
    worker_stop_ = true;
  }
  task_cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

void ModelFleet::Journal_(FleetSwapRecord record) {
  record.unix_ms = WallClockMs();
  // Mirror every swap into the process-wide event log; the journal is the
  // fleet's own bounded view, /eventz is the system-wide one.
  {
    std::string message;
    if (record.ok) {
      message = "generation " + std::to_string(record.generation);
      char buf[64];
      std::snprintf(buf, sizeof(buf), " (load %.1f ms, drain %.1f ms)",
                    record.load_ms, record.drain_ms);
      message += buf;
    } else {
      message = record.error;
    }
    obs::LogEvent("bundle_" + record.kind, record.model, record.ok, message);
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++swaps_total_;
  journal_.push_back(std::move(record));
  while (journal_.size() > kJournalCapacity) journal_.pop_front();
}

void ModelFleet::UpdateModelsGauge_() const {
  if (!obs::Enabled()) return;
  int64_t live = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, entry] : entries_) {
      if (entry.current != nullptr) ++live;
    }
  }
  obs::MetricsRegistry::Global().GetGauge("fleet/models").Set(
      static_cast<double>(live));
}

bool ModelFleet::AddModel(const std::string& name,
                          const std::string& bundle_path,
                          const ServingModelConfig& config,
                          std::string* error) {
  MISS_CHECK(!name.empty());
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (entries_.count(name) > 0) {
      if (error != nullptr) *error = "model \"" + name + "\" already exists";
      return false;
    }
  }

  FleetSwapRecord record;
  record.model = name;
  record.kind = "load";

  const int64_t load_start_ns = obs::NowNs();
  serve::Bundle bundle;
  std::string local_error;
  if (!serve::LoadBundle(bundle_path, config.load, &bundle)) {
    local_error = "failed to load bundle from " + bundle_path;
  } else if (!SelfCheck(bundle, &local_error)) {
    // local_error set.
  }
  record.load_ms =
      static_cast<double>(obs::NowNs() - load_start_ns) / 1e6;
  if (!local_error.empty()) {
    record.error = local_error;
    Journal_(std::move(record));
    if (obs::Enabled()) {
      obs::MetricsRegistry::Global().GetCounter("fleet/reload_failures")
          .Add(1);
    }
    if (error != nullptr) *error = local_error;
    return false;
  }
  LogPlanFallback(name, bundle);

  const std::string hash =
      HashFile(bundle_path + "/" + serve::kManifestFileName);
  auto generation = std::make_shared<ServingModel>(
      name, bundle_path, /*generation=*/1, hash, std::move(bundle), config);
  {
    std::lock_guard<std::mutex> lock(mu_);
    Entry& entry = entries_[name];
    entry.current = std::move(generation);
    entry.config = config;
    entry.bundle_path = bundle_path;
    entry.generations = 1;
    if (default_model_.empty()) default_model_ = name;
  }
  record.ok = true;
  record.new_manifest_hash = hash;
  record.generation = 1;
  const double load_ms = record.load_ms;
  Journal_(std::move(record));
  if (obs::Enabled()) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    reg.GetCounter("fleet/reloads").Add(1);
    reg.GetHistogram("fleet/bundle_load_ms").Record(load_ms);
  }
  UpdateModelsGauge_();
  return true;
}

void ModelFleet::AddExternal(const std::string& name,
                             const data::DatasetSchema& schema,
                             serve::Engine* engine, rank::RankEngine* rank,
                             serve::ModelHealthMonitor* health) {
  MISS_CHECK(!name.empty());
  auto generation =
      std::make_shared<ServingModel>(name, schema, engine, rank, health);
  std::lock_guard<std::mutex> lock(mu_);
  MISS_CHECK(entries_.count(name) == 0);
  Entry& entry = entries_[name];
  entry.current = std::move(generation);
  entry.generations = 1;
  if (default_model_.empty()) default_model_ = name;
}

bool ModelFleet::SetDefaultModel(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.count(name) == 0) return false;
  default_model_ = name;
  return true;
}

std::string ModelFleet::default_model() const {
  std::lock_guard<std::mutex> lock(mu_);
  return default_model_;
}

std::shared_ptr<ServingModel> ModelFleet::Acquire(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string& key = name.empty() ? default_model_ : name;
  if (key.empty()) return nullptr;
  auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  return it->second.current;  // null once unloaded
}

std::vector<std::string> ModelFleet::ModelNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

size_t ModelFleet::num_models() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

bool ModelFleet::Reload(const std::string& name, std::string* error) {
  std::lock_guard<std::mutex> reload_lock(reload_mu_);

  // Snapshot what to load; the entry may serve traffic meanwhile.
  ServingModelConfig config;
  std::string bundle_path;
  std::shared_ptr<ServingModel> old;
  uint64_t next_generation = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(name);
    if (it == entries_.end()) {
      if (error != nullptr) *error = "unknown model \"" + name + "\"";
      return false;
    }
    if (it->second.bundle_path.empty()) {
      if (error != nullptr) {
        *error = "model \"" + name + "\" is not reloadable (external entry)";
      }
      return false;
    }
    config = it->second.config;
    bundle_path = it->second.bundle_path;
    old = it->second.current;  // null when unloaded: reload resurrects
    next_generation = it->second.generations + 1;
  }

  FleetSwapRecord record;
  record.model = name;
  record.kind = "reload";
  if (old != nullptr) record.old_manifest_hash = old->manifest_hash();

  // Everything expensive happens here, off the serving threads, while the
  // old generation keeps serving.
  const int64_t load_start_ns = obs::NowNs();
  serve::Bundle bundle;
  std::string local_error;
  if (!serve::LoadBundle(bundle_path, config.load, &bundle)) {
    local_error = "failed to load bundle from " + bundle_path;
  } else if (!SelfCheck(bundle, &local_error)) {
    // local_error set.
  } else if (old != nullptr &&
             (bundle.model->schema().num_categorical() !=
                  old->schema().num_categorical() ||
              bundle.model->schema().num_sequential() !=
                  old->schema().num_sequential())) {
    local_error =
        "new bundle's schema field counts (" +
        std::to_string(bundle.model->schema().num_categorical()) + " cat, " +
        std::to_string(bundle.model->schema().num_sequential()) +
        " seq) do not match the serving schema (" +
        std::to_string(old->schema().num_categorical()) + " cat, " +
        std::to_string(old->schema().num_sequential()) +
        " seq); frames on the wire would stop parsing";
  }
  record.load_ms = static_cast<double>(obs::NowNs() - load_start_ns) / 1e6;

  if (!local_error.empty()) {
    record.error = local_error;
    Journal_(std::move(record));
    if (obs::Enabled()) {
      obs::MetricsRegistry::Global().GetCounter("fleet/reload_failures")
          .Add(1);
    }
    if (error != nullptr) *error = local_error;
    return false;
  }
  LogPlanFallback(name, bundle);

  const std::string hash =
      HashFile(bundle_path + "/" + serve::kManifestFileName);
  auto fresh = std::make_shared<ServingModel>(
      name, bundle_path, next_generation, hash, std::move(bundle), config);

  // The swap: one pointer store under the fleet mutex. Requests that
  // already Acquired `old` finish there; every later Acquire sees `fresh`.
  {
    std::lock_guard<std::mutex> lock(mu_);
    Entry& entry = entries_[name];
    entry.current = fresh;
    entry.generations = next_generation;
  }

  // Old generation drains here in the admin/watcher thread; its engines
  // score everything they accepted before Retire flipped the entry.
  if (old != nullptr) {
    record.drain_ms = old->Retire();
    old.reset();
  }

  record.ok = true;
  record.new_manifest_hash = hash;
  record.generation = next_generation;
  const double load_ms = record.load_ms;
  const double drain_ms = record.drain_ms;
  Journal_(std::move(record));
  if (obs::Enabled()) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    reg.GetCounter("fleet/reloads").Add(1);
    reg.GetHistogram("fleet/bundle_load_ms").Record(load_ms);
    reg.GetHistogram("fleet/swap_drain_ms").Record(drain_ms);
  }
  UpdateModelsGauge_();
  return true;
}

bool ModelFleet::Unload(const std::string& name, std::string* error) {
  std::lock_guard<std::mutex> reload_lock(reload_mu_);
  std::shared_ptr<ServingModel> old;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(name);
    if (it == entries_.end()) {
      if (error != nullptr) *error = "unknown model \"" + name + "\"";
      return false;
    }
    if (it->second.current == nullptr) {
      if (error != nullptr) {
        *error = "model \"" + name + "\" is already unloaded";
      }
      return false;
    }
    if (it->second.bundle_path.empty()) {
      if (error != nullptr) {
        *error = "model \"" + name + "\" is not unloadable (external entry)";
      }
      return false;
    }
    old = std::move(it->second.current);
    it->second.current = nullptr;
  }

  FleetSwapRecord record;
  record.model = name;
  record.kind = "unload";
  record.old_manifest_hash = old->manifest_hash();
  record.drain_ms = old->Retire();
  old.reset();
  record.ok = true;
  const double drain_ms = record.drain_ms;
  Journal_(std::move(record));
  if (obs::Enabled()) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    reg.GetCounter("fleet/unloads").Add(1);
    reg.GetHistogram("fleet/swap_drain_ms").Record(drain_ms);
  }
  UpdateModelsGauge_();
  return true;
}

void ModelFleet::EnqueueTask_(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(task_mu_);
    MISS_CHECK(!worker_stop_);
    tasks_.push_back(std::move(task));
    if (!worker_.joinable()) {
      worker_ = std::thread([this] {
        obs::SetCurrentThreadName("fleet-worker");
        WorkerLoop_();
      });
    }
  }
  task_cv_.notify_one();
}

void ModelFleet::WorkerLoop_() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(task_mu_);
      task_cv_.wait(lock, [this] { return worker_stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop with nothing queued
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void ModelFleet::ReloadAsync(
    const std::string& name,
    std::function<void(bool ok, std::string error)> done) {
  EnqueueTask_([this, name, done = std::move(done)] {
    std::string error;
    const bool ok = Reload(name, &error);
    if (done) done(ok, std::move(error));
  });
}

void ModelFleet::UnloadAsync(
    const std::string& name,
    std::function<void(bool ok, std::string error)> done) {
  EnqueueTask_([this, name, done = std::move(done)] {
    std::string error;
    const bool ok = Unload(name, &error);
    if (done) done(ok, std::move(error));
  });
}

std::vector<FleetSwapRecord> ModelFleet::Journal() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<FleetSwapRecord>(journal_.rbegin(), journal_.rend());
}

int64_t ModelFleet::swaps_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return swaps_total_;
}

void ModelFleet::DrainAll() {
  std::vector<std::shared_ptr<ServingModel>> live;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, entry] : entries_) {
      if (entry.current != nullptr) live.push_back(entry.current);
    }
  }
  for (const std::shared_ptr<ServingModel>& model : live) model->Retire();
}

}  // namespace miss::fleet
