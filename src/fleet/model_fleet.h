// ModelFleet: named model entries with atomic hot swap and a swap journal.
//
// The fleet maps model names to ServingModel generations. Serving threads
// call Acquire(name) per request ("" = the default model) and get a
// shared_ptr to the entry's current generation; Reload() builds the next
// generation entirely off the serving threads — LoadBundle, a self-check
// probe score, a wire-compat schema check — and only then swaps the pointer
// under the fleet mutex. The retired generation drains in the calling
// (admin/watcher) thread while new requests already land on its successor;
// in-flight requests finish on the old engines because their completions
// hold the shared_ptr.
//
// Reload rejects (keeping the old generation serving) when:
//   - the bundle fails to load (missing/corrupt manifest or checkpoint),
//   - the probe score is not finite (a broken checkpoint would otherwise
//     serve NaNs), or
//   - the new schema's field counts differ from the serving schema (frames
//     already on the wire would stop parsing mid-connection).
//
// Every attempt — load, reload, unload, success or failure — lands in a
// bounded journal (/statusz renders it) and, when telemetry is on, in the
// fleet/* metrics: counters fleet/reloads, fleet/reload_failures,
// fleet/unloads; gauge fleet/models; histograms fleet/bundle_load_ms and
// fleet/swap_drain_ms.
//
// ReloadAsync/UnloadAsync run the same path on a single lazily-started
// worker thread — how POST /admin/reload keeps the server's event loop
// non-blocking. Swaps are serialized fleet-wide (one reload at a time).

#ifndef MISS_FLEET_MODEL_FLEET_H_
#define MISS_FLEET_MODEL_FLEET_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fleet/serving_model.h"

namespace miss::fleet {

// One journal row; kept whether or not the attempt succeeded.
struct FleetSwapRecord {
  std::string model;
  std::string kind;  // "load", "reload", or "unload"
  bool ok = false;
  std::string error;  // set when !ok
  std::string old_manifest_hash;  // "" for the initial load
  std::string new_manifest_hash;  // "" for unload / failed load
  uint64_t generation = 0;        // generation now serving (0 after unload)
  double load_ms = 0.0;           // bundle load + self-check
  double drain_ms = 0.0;          // old generation's drain wall time
  int64_t unix_ms = 0;            // wall-clock stamp for the journal
};

class ModelFleet {
 public:
  ModelFleet();
  // Joins the async worker. Does NOT drain entries — call DrainAll() first
  // for a graceful stop (the server's SIGTERM path does).
  ~ModelFleet();

  ModelFleet(const ModelFleet&) = delete;
  ModelFleet& operator=(const ModelFleet&) = delete;

  // Loads `bundle_path` and adds it as entry `name` (journaled as "load").
  // The first added model becomes the default. False on load/self-check
  // failure or a duplicate name.
  bool AddModel(const std::string& name, const std::string& bundle_path,
                const ServingModelConfig& config, std::string* error);

  // Adds an external (caller-owned, non-reloadable) entry — the legacy
  // single-engine server. Becomes the default when it is the first entry.
  void AddExternal(const std::string& name, const data::DatasetSchema& schema,
                   serve::Engine* engine, rank::RankEngine* rank,
                   serve::ModelHealthMonitor* health);

  // False when `name` is not an entry.
  bool SetDefaultModel(const std::string& name);
  std::string default_model() const;

  // The entry's current generation; "" resolves the default model. Null for
  // an unknown name (or an unloaded default). The caller holds the
  // shared_ptr until its response is written — that hold is what keeps a
  // swapped-out generation alive through in-flight requests.
  std::shared_ptr<ServingModel> Acquire(const std::string& name) const;

  std::vector<std::string> ModelNames() const;
  size_t num_models() const;

  // Synchronous reload of a reloadable entry: load off the serving path,
  // self-check, swap, drain the old generation. False (old generation keeps
  // serving) on any failure. Serialized fleet-wide.
  bool Reload(const std::string& name, std::string* error);

  // Retires and drops the entry's generation; Acquire(name) then returns
  // null (named requests get per-request errors) until a later Reload(name)
  // loads a fresh generation from the entry's bundle path.
  bool Unload(const std::string& name, std::string* error);

  // Same paths on the fleet worker thread; `done` fires there.
  void ReloadAsync(const std::string& name,
                   std::function<void(bool ok, std::string error)> done);
  void UnloadAsync(const std::string& name,
                   std::function<void(bool ok, std::string error)> done);

  // Newest-first copy of the journal (bounded to the last 32 swaps).
  std::vector<FleetSwapRecord> Journal() const;
  int64_t swaps_total() const;

  // Retires every entry (stop intake, drain). Entries stay listed so
  // /statusz keeps rendering them during shutdown.
  void DrainAll();

 private:
  struct Entry {
    std::shared_ptr<ServingModel> current;  // null once unloaded
    ServingModelConfig config;
    std::string bundle_path;
    uint64_t generations = 0;  // generations built so far
  };

  void Journal_(FleetSwapRecord record);
  void UpdateModelsGauge_() const;
  void EnqueueTask_(std::function<void()> task);
  void WorkerLoop_();

  mutable std::mutex mu_;  // entries_, default_model_, journal_
  std::map<std::string, Entry> entries_;
  std::string default_model_;
  std::deque<FleetSwapRecord> journal_;
  int64_t swaps_total_ = 0;

  std::mutex reload_mu_;  // serializes Reload/Unload bodies

  // Lazily-started async worker.
  std::mutex task_mu_;
  std::condition_variable task_cv_;
  std::deque<std::function<void()>> tasks_;
  bool worker_stop_ = false;
  std::thread worker_;
};

// FNV-1a 64 over the file's bytes as a 16-hex-digit string; "" when the
// file cannot be read. The watcher and the journal identify bundle versions
// by this hash of manifest.json.
std::string HashFile(const std::string& path);

}  // namespace miss::fleet

#endif  // MISS_FLEET_MODEL_FLEET_H_
