#include "fleet/serving_model.h"

#include <mutex>
#include <utility>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace miss::fleet {

namespace {

EntryMetricNames ResolveMetricNames(const std::string& suffix) {
  EntryMetricNames n;
  n.net_requests = "net/requests" + suffix;
  n.net_latency = "net/request_latency_ms" + suffix;
  n.stage_parse = "serve/stage/parse_ms" + suffix;
  n.stage_queue = "serve/stage/queue_ms" + suffix;
  n.stage_forward = "serve/stage/forward_ms" + suffix;
  n.stage_write = "serve/stage/write_ms" + suffix;
  n.stage_total = "serve/stage/total_ms" + suffix;
  return n;
}

}  // namespace

ServingModel::ServingModel(std::string name, std::string bundle_path,
                           uint64_t generation, std::string manifest_hash,
                           serve::Bundle bundle,
                           const ServingModelConfig& config)
    : name_(std::move(name)),
      bundle_path_(std::move(bundle_path)),
      generation_(generation),
      manifest_hash_(std::move(manifest_hash)),
      owned_(true),
      bundle_(std::move(bundle)),
      schema_(bundle_.model->schema()) {
  MISS_CHECK(bundle_.model != nullptr);
  MISS_CHECK_GT(config.replicas, 0);
  metric_suffix_ = config.label_metrics ? "|model=" + name_ : "";
  metric_names_ = ResolveMetricNames(metric_suffix_);
  const std::string metric_model = config.label_metrics ? name_ : "";

  if (config.model_health) {
    serve::ModelHealthOptions health_options = config.health_options;
    health_options.metric_model = metric_model;
    owned_health_ = std::make_unique<serve::ModelHealthMonitor>(
        schema_, bundle_.baseline, health_options);
    health_ = owned_health_.get();
  }

  serve::EngineConfig engine_config = config.engine;
  engine_config.metric_model = metric_model;
  engine_config.health = health_;
  // bundle_ is declared before the engines, so the plan set outlives every
  // replica of this generation; a reload builds a new generation around the
  // new bundle's plans and swaps atomically.
  engine_config.plans = bundle_.plans.get();
  owned_replicas_.reserve(static_cast<size_t>(config.replicas));
  for (int i = 0; i < config.replicas; ++i) {
    owned_replicas_.push_back(
        std::make_unique<serve::Engine>(*bundle_.model, engine_config));
    replicas_.push_back(owned_replicas_.back().get());
  }

  if (config.enable_rank && schema_.CandidateField() >= 0) {
    rank::RankEngineConfig rank_config = config.rank;
    rank_config.metric_model = metric_model;
    rank_config.health = health_;
    rank_config.plans = bundle_.plans.get();
    owned_rank_ =
        std::make_unique<rank::RankEngine>(*bundle_.model, rank_config);
    rank_ = owned_rank_.get();
  }
}

ServingModel::ServingModel(std::string name,
                           const data::DatasetSchema& schema,
                           serve::Engine* engine, rank::RankEngine* rank,
                           serve::ModelHealthMonitor* health)
    : name_(std::move(name)),
      generation_(1),
      owned_(false),
      schema_(schema),
      rank_(rank),
      health_(health),
      metric_names_(ResolveMetricNames("")) {
  MISS_CHECK(engine != nullptr);
  replicas_.push_back(engine);
}

ServingModel::~ServingModel() {
  // Owned engines must never be destroyed fast (requests failed) while the
  // fleet is serving; Retire() drains first. A generation that was swapped
  // out is only destroyed once the last in-flight holder releases it, after
  // its callbacks already fired.
  if (owned_ && !retired()) Retire();
}

bool ServingModel::retired() const {
  std::shared_lock<std::shared_mutex> lock(retire_mu_);
  return retired_;
}

size_t ServingModel::PickReplica() {
  const size_t n = replicas_.size();
  if (n == 1) return 0;
  // Least outstanding requests, scanned from a rotating start so exact ties
  // break round-robin — deterministic for a serial caller.
  const size_t start =
      static_cast<size_t>(rr_.fetch_add(1, std::memory_order_relaxed) % n);
  size_t best = start;
  int64_t best_load = replicas_[start]->InFlight();
  for (size_t step = 1; step < n; ++step) {
    const size_t i = (start + step) % n;
    const int64_t load = replicas_[i]->InFlight();
    if (load < best_load) {
      best = i;
      best_load = load;
    }
  }
  return best;
}

bool ServingModel::SubmitScore(data::Sample* sample,
                               serve::RequestTrace trace,
                               serve::Engine::TracedScoreCallback callback) {
  std::shared_lock<std::shared_mutex> lock(retire_mu_);
  if (retired_) return false;
  const size_t replica = PickReplica();
  // Stamped unconditionally (cheap) so the slow log can name the replica.
  trace.replica = static_cast<int32_t>(replica);
  replicas_[replica]->SubmitTraced(std::move(*sample), trace,
                                   std::move(callback));
  return true;
}

bool ServingModel::SubmitRank(rank::RankRequest* request,
                              serve::RequestTrace trace,
                              rank::RankEngine::RankCallback callback) {
  std::shared_lock<std::shared_mutex> lock(retire_mu_);
  if (retired_ || rank_ == nullptr) return false;
  rank_->SubmitTraced(std::move(*request), trace, std::move(callback));
  return true;
}

int64_t ServingModel::QueueDepth() const {
  int64_t total = 0;
  for (const serve::Engine* engine : replicas_) {
    total += engine->QueueDepth();
  }
  return total;
}

int64_t ServingModel::InFlight() const {
  int64_t total = 0;
  for (const serve::Engine* engine : replicas_) {
    total += engine->InFlight();
  }
  return total;
}

double ServingModel::Retire() {
  {
    std::unique_lock<std::shared_mutex> lock(retire_mu_);
    if (retired_) return 0.0;
    retired_ = true;
  }
  if (!owned_) return 0.0;
  const int64_t start_ns = obs::NowNs();
  for (const std::unique_ptr<serve::Engine>& engine : owned_replicas_) {
    engine->Drain();
  }
  if (owned_rank_ != nullptr) owned_rank_->Drain();
  return static_cast<double>(obs::NowNs() - start_ns) / 1e6;
}

}  // namespace miss::fleet
