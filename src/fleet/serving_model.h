// One fleet entry: a named model generation serving behind replica engines.
//
// A ServingModel is an immutable generation of one named model — the loaded
// serve::Bundle, K replica serve::Engines (plus a rank::RankEngine when the
// schema exposes a candidate field), and an optional ModelHealthMonitor —
// published to the serving threads through a shared_ptr the ModelFleet swaps
// atomically on reload. Requests Acquire() the current generation, submit
// through it, and hold the shared_ptr until the response is written, so a
// generation retired mid-request stays alive (engines, monitor, model) until
// its last response leaves the process.
//
// The enqueue/retire race is closed with a shared_mutex: SubmitScore /
// SubmitRank take the shared lock, check `retired_`, and hand the request to
// an engine while still holding it; Retire() takes the exclusive lock to set
// `retired_` before draining. An engine can therefore never reject a request
// as "draining" during a hot swap — a false return (request untouched, the
// sample is NOT consumed) means the generation retired first, and the caller
// re-Acquires the entry's new generation and retries.
//
// Replica selection: least outstanding requests (Engine::InFlight), scanned
// from a round-robin start index so ties break deterministically. A
// single-replica entry always picks replica 0 — byte-for-byte the pre-fleet
// server.
//
// External entries wrap caller-owned engines (the legacy net::Server
// constructor): no bundle, not reloadable, Retire() only stops intake —
// draining caller-owned engines stays the caller's job.

#ifndef MISS_FLEET_SERVING_MODEL_H_
#define MISS_FLEET_SERVING_MODEL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "data/schema.h"
#include "rank/rank_engine.h"
#include "serve/bundle.h"
#include "serve/engine.h"
#include "serve/health.h"

namespace miss::fleet {

struct ServingModelConfig {
  // Replica serve::Engines per entry, each with its own worker pool and
  // queue. 1 = the pre-fleet topology.
  int replicas = 1;
  // Per-replica engine geometry; metric_model and health are overwritten
  // per entry.
  serve::EngineConfig engine;
  // Rank-engine geometry (used when the schema has a candidate field);
  // metric_model and health are overwritten per entry.
  rank::RankEngineConfig rank;
  // Build a rank::RankEngine when the schema supports it.
  bool enable_rank = true;
  // Bundle load options (plan compilation). When compile_plans is on and the
  // model traces cleanly, replicas execute through the compiled plans;
  // incompatible models log a plan_fallback event and serve dynamically.
  serve::LoadBundleOptions load;
  // Attach a ModelHealthMonitor fed from the bundle's baseline.
  bool model_health = false;
  serve::ModelHealthOptions health_options;
  // False keeps the plain (unlabeled) metric names for this entry — the
  // single-model compatibility mode the legacy net::Server constructor
  // uses so a 1-entry fleet's telemetry is byte-identical to the pre-fleet
  // server. True labels every serve/rank/health/net metric with the entry
  // name.
  bool label_metrics = true;
};

// The net-layer metric names for one entry, resolved once ("" suffix keeps
// the legacy names).
struct EntryMetricNames {
  std::string net_requests;
  std::string net_latency;
  std::string stage_parse;
  std::string stage_queue;
  std::string stage_forward;
  std::string stage_write;
  std::string stage_total;
};

class ServingModel {
 public:
  // Fleet-owned generation: takes ownership of the loaded bundle and builds
  // config.replicas engines (+ rank engine / health monitor per config).
  ServingModel(std::string name, std::string bundle_path, uint64_t generation,
               std::string manifest_hash, serve::Bundle bundle,
               const ServingModelConfig& config);

  // External entry wrapping caller-owned components (all must outlive this
  // object); `rank` and `health` may be null.
  ServingModel(std::string name, const data::DatasetSchema& schema,
               serve::Engine* engine, rank::RankEngine* rank,
               serve::ModelHealthMonitor* health);

  ~ServingModel();

  ServingModel(const ServingModel&) = delete;
  ServingModel& operator=(const ServingModel&) = delete;

  const std::string& name() const { return name_; }
  const data::DatasetSchema& schema() const { return schema_; }
  const std::string& bundle_path() const { return bundle_path_; }
  const std::string& manifest_hash() const { return manifest_hash_; }
  uint64_t generation() const { return generation_; }
  int num_replicas() const { return static_cast<int>(replicas_.size()); }
  bool reloadable() const { return owned_ && !bundle_path_.empty(); }
  // Null when the entry has no monitor.
  serve::ModelHealthMonitor* health() const { return health_; }
  bool rank_enabled() const { return rank_ != nullptr; }
  rank::RankEngine* rank_engine() const { return rank_; }
  // The loaded bundle (null for external entries).
  const serve::Bundle* bundle() const { return owned_ ? &bundle_ : nullptr; }
  // "" or "|model=<name>".
  const std::string& metric_suffix() const { return metric_suffix_; }
  const EntryMetricNames& metric_names() const { return metric_names_; }

  // Hands the request to the least-outstanding replica. False means this
  // generation retired first — `*sample` / `*request` is NOT consumed; the
  // caller should re-Acquire the entry and retry on the new generation.
  // True guarantees the callback fires (an engine accepted the request
  // before Retire() could begin draining).
  bool SubmitScore(data::Sample* sample, serve::RequestTrace trace,
                   serve::Engine::TracedScoreCallback callback);
  bool SubmitRank(rank::RankRequest* request, serve::RequestTrace trace,
                  rank::RankEngine::RankCallback callback);

  // Diagnostics, summed across replicas.
  int64_t QueueDepth() const;
  int64_t InFlight() const;
  bool retired() const;

  // Stops intake (Submit* return false), then drains every owned engine —
  // in-flight requests are scored, their callbacks fire. Returns the drain
  // wall time in ms. Idempotent; external entries only stop intake (0 ms).
  double Retire();

 private:
  // Index into replicas_ of the least-outstanding replica; the index (not a
  // reference) so SubmitScore can stamp it into the request trace.
  size_t PickReplica();

  const std::string name_;
  const std::string bundle_path_;
  const uint64_t generation_;
  const std::string manifest_hash_;
  const bool owned_;

  // Owned-entry state; destruction order (reverse of declaration) tears
  // down engines before the monitor and the monitor before the model.
  serve::Bundle bundle_;
  const data::DatasetSchema schema_;
  std::unique_ptr<serve::ModelHealthMonitor> owned_health_;
  std::vector<std::unique_ptr<serve::Engine>> owned_replicas_;
  std::unique_ptr<rank::RankEngine> owned_rank_;

  // Flat views used by both flavors (non-owning).
  std::vector<serve::Engine*> replicas_;
  rank::RankEngine* rank_ = nullptr;
  serve::ModelHealthMonitor* health_ = nullptr;

  std::string metric_suffix_;
  EntryMetricNames metric_names_;

  // Round-robin start index for the least-outstanding scan.
  std::atomic<uint64_t> rr_{0};

  // Submit* hold the shared lock across the engine handoff; Retire() sets
  // retired_ under the exclusive lock before draining, so "accepted by a
  // live generation" and "scored before the drain completes" coincide.
  mutable std::shared_mutex retire_mu_;
  bool retired_ = false;
};

}  // namespace miss::fleet

#endif  // MISS_FLEET_SERVING_MODEL_H_
