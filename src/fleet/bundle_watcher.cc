#include "fleet/bundle_watcher.h"

#include <sys/stat.h>

#include <chrono>
#include <string>
#include <vector>

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/bundle.h"

namespace miss::fleet {

namespace {

// Nanosecond mtime of `path`, or -1 when it cannot be statted.
int64_t FileMtimeNs(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return -1;
  return static_cast<int64_t>(st.st_mtim.tv_sec) * 1'000'000'000 +
         static_cast<int64_t>(st.st_mtim.tv_nsec);
}

}  // namespace

BundleWatcher::BundleWatcher(ModelFleet& fleet,
                             const BundleWatcherConfig& config)
    : fleet_(fleet), config_(config) {}

BundleWatcher::~BundleWatcher() { Stop(); }

void BundleWatcher::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (thread_.joinable()) return;
  stop_ = false;
  thread_ = std::thread([this] {
    obs::SetCurrentThreadName("bundle-watcher");
    PollLoop();
  });
}

void BundleWatcher::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

int BundleWatcher::CheckOnce() {
  polls_.fetch_add(1, std::memory_order_relaxed);
  int triggered = 0;
  for (const std::string& name : fleet_.ModelNames()) {
    std::shared_ptr<ServingModel> current = fleet_.Acquire(name);
    if (current == nullptr || !current->reloadable()) continue;
    const std::string manifest =
        current->bundle_path() + "/" + serve::kManifestFileName;
    Seen& seen = seen_[name];
    const int64_t mtime_ns = FileMtimeNs(manifest);
    if (mtime_ns < 0) continue;  // mid-rewrite or gone; next poll retries
    if (mtime_ns == seen.mtime_ns) continue;
    seen.mtime_ns = mtime_ns;
    const std::string hash = HashFile(manifest);
    if (hash.empty()) continue;
    // Unchanged content (a touch without new bytes), or the same bytes a
    // previous attempt already acted on — nothing to do.
    if (hash == current->manifest_hash() || hash == seen.hash) continue;
    seen.hash = hash;
    std::string error;
    if (fleet_.Reload(name, &error)) {
      ++triggered;
      reloads_.fetch_add(1, std::memory_order_relaxed);
    } else {
      obs::LogEvent("watcher_error", name, /*ok=*/false, error);
    }
    // On failure the journal carries `error`; seen.hash suppresses
    // re-trying these exact bytes every poll.
  }
  return triggered;
}

void BundleWatcher::PollLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock,
                   std::chrono::milliseconds(config_.poll_interval_ms),
                   [this] { return stop_; });
      if (stop_) return;
    }
    CheckOnce();
  }
}

}  // namespace miss::fleet
