#include "models/extra_models.h"

#include <algorithm>

#include "models/pooling.h"
#include "nn/ops.h"

namespace miss::models {

namespace {

std::vector<int64_t> MlpDims(int64_t in_dim, const ModelConfig& config) {
  std::vector<int64_t> dims = {in_dim};
  dims.insert(dims.end(), config.mlp_hidden.begin(), config.mlp_hidden.end());
  dims.push_back(1);
  return dims;
}

// Reverses a [B, S, K] tensor along the session axis.
nn::Tensor ReverseSessions(const nn::Tensor& x) {
  const int64_t s_dim = x.dim(1);
  std::vector<nn::Tensor> parts;
  parts.reserve(s_dim);
  for (int64_t s = s_dim; s-- > 0;) {
    parts.push_back(nn::Slice(x, /*axis=*/1, s, 1));
  }
  return nn::Concat(parts, /*axis=*/1);
}

}  // namespace

// ----------------------------------------------------------------------------
// Wide&Deep
// ----------------------------------------------------------------------------

WideDeepModel::WideDeepModel(const data::DatasetSchema& schema,
                             const ModelConfig& config, uint64_t seed)
    : CtrModel(schema, config, seed) {
  wide_weights_ = std::make_unique<EmbeddingSet>(schema, /*dim=*/1,
                                                 init_rng());
  RegisterChild(wide_weights_.get());
  bias_ = AddParameter(nn::Tensor::Zeros({1}, /*requires_grad=*/true));
  deep_ = std::make_unique<nn::Mlp>(
      MlpDims(schema.num_fields() * config.embedding_dim, config),
      nn::Activation::kRelu, nn::Activation::kNone, init_rng());
  RegisterChild(deep_.get());
}

nn::Tensor WideDeepModel::Forward(const data::Batch& batch, bool training) {
  const int64_t b_dim = batch.batch_size;
  nn::Tensor wide =
      nn::Add(nn::SumAxis(FieldMatrix(*wide_weights_, batch), 1), bias_);
  nn::Tensor fields = FieldMatrix(embeddings(), batch);
  nn::Tensor flat =
      nn::Reshape(fields, {b_dim, fields.dim(1) * fields.dim(2)});
  nn::Tensor deep = deep_->Forward(ApplyDropout(flat, training));
  return nn::Reshape(nn::Add(wide, deep), {b_dim});
}

// ----------------------------------------------------------------------------
// DSIN
// ----------------------------------------------------------------------------

DsinModel::DsinModel(const data::DatasetSchema& schema,
                     const ModelConfig& config, uint64_t seed,
                     int64_t session_len)
    : CtrModel(schema, config, seed), session_len_(session_len) {
  const int64_t k_dim = config.embedding_dim;
  intra_session_ = std::make_unique<nn::MultiHeadSelfAttention>(
      k_dim, config.attention_heads, /*residual=*/true, init_rng());
  RegisterChild(intra_session_.get());
  inter_forward_ = std::make_unique<nn::LstmRunner>(k_dim, k_dim, init_rng());
  RegisterChild(inter_forward_.get());
  inter_backward_ = std::make_unique<nn::LstmRunner>(k_dim, k_dim, init_rng());
  RegisterChild(inter_backward_.get());
  inter_merge_ = std::make_unique<nn::Linear>(2 * k_dim, k_dim, init_rng());
  RegisterChild(inter_merge_.get());
  // Inputs: all fields except the item sequence's plain pooling, plus two
  // session-level summaries, their candidate products, and two relevance
  // scalars.
  const int64_t in_dim = (schema.num_fields() + 3) * k_dim + 2;
  deep_ = std::make_unique<nn::Mlp>(MlpDims(in_dim, config),
                                    nn::Activation::kPRelu,
                                    nn::Activation::kNone, init_rng());
  RegisterChild(deep_.get());
}

nn::Tensor DsinModel::Forward(const data::Batch& batch, bool training) {
  const int64_t b_dim = batch.batch_size;
  const int64_t l_dim = batch.seq_len;
  const int64_t k_dim = config_.embedding_dim;
  const int64_t s_count = (l_dim + session_len_ - 1) / session_len_;

  nn::Tensor item_seq = embeddings().SequenceEmbeddings(batch, 0);
  const int cand_field = schema().seq_shares_table_with[0];
  MISS_CHECK_GE(cand_field, 0);
  nn::Tensor candidate = embeddings().FieldEmbedding(batch, cand_field);

  // -- Session interest extraction (intra-session self-attention) -------------
  std::vector<nn::Tensor> session_reprs;
  std::vector<float> session_mask(b_dim * s_count, 0.0f);
  for (int64_t s = 0; s < s_count; ++s) {
    const int64_t begin = s * session_len_;
    const int64_t len = std::min(session_len_, l_dim - begin);
    nn::Tensor window = nn::Slice(item_seq, /*axis=*/1, begin, len);
    std::vector<float> window_mask(b_dim * len);
    for (int64_t b = 0; b < b_dim; ++b) {
      bool any = false;
      for (int64_t l = 0; l < len; ++l) {
        const float m = batch.seq_mask[b * l_dim + begin + l];
        window_mask[b * len + l] = m;
        any |= m > 0.0f;
      }
      if (any) session_mask[b * s_count + s] = 1.0f;
    }
    nn::Tensor attended = intra_session_->Forward(window, window_mask);
    nn::Tensor pooled = MaskedMeanPool(attended, window_mask);  // [B, K]
    session_reprs.push_back(nn::Reshape(pooled, {b_dim, 1, k_dim}));
  }
  nn::Tensor sessions = nn::Concat(session_reprs, /*axis=*/1);  // [B, S, K]

  // -- Session interest evolution (Bi-LSTM over sessions) ---------------------
  nn::Tensor forward_states = inter_forward_->Forward(sessions, session_mask);
  std::vector<float> reversed_mask(session_mask.size());
  for (int64_t b = 0; b < b_dim; ++b) {
    for (int64_t s = 0; s < s_count; ++s) {
      reversed_mask[b * s_count + s] =
          session_mask[b * s_count + (s_count - 1 - s)];
    }
  }
  nn::Tensor backward_states = ReverseSessions(
      inter_backward_->Forward(ReverseSessions(sessions), reversed_mask));
  nn::Tensor evolved = inter_merge_->Forward(
      nn::Concat({forward_states, backward_states}, /*axis=*/2));

  // -- Candidate-aware attention over both levels ------------------------------
  auto attend = [&](const nn::Tensor& states) {
    nn::Tensor scores = nn::Reshape(
        nn::BatchMatMul(states, nn::Reshape(candidate, {b_dim, k_dim, 1})),
        {b_dim, s_count});
    nn::Tensor probs = nn::MaskedSoftmaxLastDim(scores, session_mask);
    return nn::SumAxis(
        nn::Mul(nn::Reshape(probs, {b_dim, s_count, 1}), states), /*axis=*/1);
  };
  nn::Tensor interest = attend(sessions);
  nn::Tensor evolution = attend(evolved);

  std::vector<nn::Tensor> features;
  features.push_back(nn::Reshape(embeddings().CategoricalEmbeddings(batch),
                                 {b_dim, batch.num_cat * k_dim}));
  features.push_back(interest);
  features.push_back(evolution);
  nn::Tensor product_i = nn::Mul(interest, candidate);
  nn::Tensor product_e = nn::Mul(evolution, candidate);
  features.push_back(product_i);
  features.push_back(nn::SumAxis(product_i, 1, /*keepdims=*/true));
  features.push_back(product_e);
  features.push_back(nn::SumAxis(product_e, 1, /*keepdims=*/true));
  for (int j = 1; j < batch.num_seq; ++j) {
    features.push_back(MaskedMeanPool(embeddings().SequenceEmbeddings(batch, j),
                                      batch.seq_mask));
  }
  nn::Tensor x = nn::Concat(features, /*axis=*/1);
  return nn::Reshape(deep_->Forward(ApplyDropout(x, training)), {b_dim});
}

}  // namespace miss::models
