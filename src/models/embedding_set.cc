#include "models/embedding_set.h"

#include <utility>

#include "nn/ops.h"

namespace miss::models {

EmbeddingSet::EmbeddingSet(const data::DatasetSchema& schema, int64_t dim,
                           common::Rng& rng, float init_stddev)
    : schema_(schema), dim_(dim) {
  schema_.Validate();
  for (const auto& field : schema_.categorical) {
    cat_tables_.push_back(std::make_unique<nn::Embedding>(
        field.vocab_size, dim, rng, init_stddev));
    RegisterChild(cat_tables_.back().get());
  }
  for (size_t j = 0; j < schema_.sequential.size(); ++j) {
    if (schema_.seq_shares_table_with[j] >= 0) {
      seq_tables_.push_back(nullptr);
    } else {
      seq_tables_.push_back(std::make_unique<nn::Embedding>(
          schema_.sequential[j].vocab_size, dim, rng, init_stddev));
      RegisterChild(seq_tables_.back().get());
    }
  }
}

const nn::Embedding& EmbeddingSet::SeqTable(int seq_field) const {
  const int shared = schema_.seq_shares_table_with[seq_field];
  if (shared >= 0) return *cat_tables_[shared];
  return *seq_tables_[seq_field];
}

nn::Tensor EmbeddingSet::CategoricalEmbeddings(
    const data::Batch& batch) const {
  const int64_t b_dim = batch.batch_size;
  const int64_t i_dim = batch.num_cat;
  MISS_CHECK_EQ(i_dim, schema_.num_categorical());
  std::vector<nn::Tensor> parts;
  parts.reserve(i_dim);
  for (int64_t i = 0; i < i_dim; ++i) {
    std::vector<int64_t> ids(b_dim);
    for (int64_t b = 0; b < b_dim; ++b) ids[b] = batch.cat[b * i_dim + i];
    parts.push_back(cat_tables_[i]->Forward(ids, {b_dim, 1}));
  }
  return nn::Concat(parts, /*axis=*/1);
}

nn::Tensor EmbeddingSet::FieldEmbedding(const data::Batch& batch,
                                        int field) const {
  const int64_t b_dim = batch.batch_size;
  const int64_t i_dim = batch.num_cat;
  MISS_CHECK_LT(field, i_dim);
  std::vector<int64_t> ids(b_dim);
  for (int64_t b = 0; b < b_dim; ++b) ids[b] = batch.cat[b * i_dim + field];
  return cat_tables_[field]->Forward(ids, {b_dim});
}

nn::Tensor EmbeddingSet::IdsEmbedding(int field,
                                      const std::vector<int64_t>& ids) const {
  MISS_CHECK_LT(field, schema_.num_categorical());
  const int64_t n = static_cast<int64_t>(ids.size());
  return cat_tables_[field]->Forward(ids, {n});
}

nn::Tensor EmbeddingSet::SequenceEmbeddings(const data::Batch& batch,
                                            int seq_field) const {
  const int64_t b_dim = batch.batch_size;
  const int64_t j_dim = batch.num_seq;
  const int64_t l_dim = batch.seq_len;
  MISS_CHECK_LT(seq_field, j_dim);
  std::vector<int64_t> ids(b_dim * l_dim);
  for (int64_t b = 0; b < b_dim; ++b) {
    for (int64_t l = 0; l < l_dim; ++l) {
      ids[b * l_dim + l] = batch.seq[(b * j_dim + seq_field) * l_dim + l];
    }
  }
  return SeqTable(seq_field).Forward(ids, {b_dim, l_dim});
}

nn::Tensor EmbeddingSet::SequenceTensor(const data::Batch& batch) const {
  const int64_t b_dim = batch.batch_size;
  const int64_t j_dim = batch.num_seq;
  const int64_t l_dim = batch.seq_len;
  std::vector<nn::Tensor> parts;
  parts.reserve(j_dim);
  for (int64_t j = 0; j < j_dim; ++j) {
    parts.push_back(nn::Reshape(SequenceEmbeddings(batch, j),
                                {b_dim, 1, l_dim, dim_}));
  }
  return nn::Concat(parts, /*axis=*/1);
}

}  // namespace miss::models
