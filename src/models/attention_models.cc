#include "models/attention_models.h"

#include "models/pooling.h"
#include "nn/ops.h"

namespace miss::models {

AutoIntModel::AutoIntModel(const data::DatasetSchema& schema,
                           const ModelConfig& config, uint64_t seed)
    : CtrModel(schema, config, seed) {
  for (int64_t l = 0; l < config.attention_layers; ++l) {
    layers_.push_back(std::make_unique<nn::MultiHeadSelfAttention>(
        config.embedding_dim, config.attention_heads, /*residual=*/true,
        init_rng()));
    RegisterChild(layers_.back().get());
  }
  const int64_t fields = schema.num_fields();
  attn_out_ = std::make_unique<nn::Linear>(fields * config.embedding_dim, 1,
                                           init_rng());
  RegisterChild(attn_out_.get());
  std::vector<int64_t> dims = {fields * config.embedding_dim};
  dims.insert(dims.end(), config.mlp_hidden.begin(), config.mlp_hidden.end());
  dims.push_back(1);
  deep_ = std::make_unique<nn::Mlp>(dims, nn::Activation::kRelu,
                                    nn::Activation::kNone, init_rng());
  RegisterChild(deep_.get());
}

nn::Tensor AutoIntModel::Forward(const data::Batch& batch, bool training) {
  const int64_t b_dim = batch.batch_size;
  nn::Tensor fields = FieldMatrix(embeddings(), batch);  // [B, F, K]
  const int64_t f_dim = fields.dim(1);
  const int64_t k_dim = fields.dim(2);

  nn::Tensor h = fields;
  for (const auto& layer : layers_) h = layer->Forward(h, /*mask=*/{});
  nn::Tensor attn_logit =
      attn_out_->Forward(nn::Reshape(h, {b_dim, f_dim * k_dim}));

  nn::Tensor flat = nn::Reshape(fields, {b_dim, f_dim * k_dim});
  nn::Tensor deep = deep_->Forward(ApplyDropout(flat, training));
  return nn::Reshape(nn::Add(attn_logit, deep), {b_dim});
}

FiGnnModel::FiGnnModel(const data::DatasetSchema& schema,
                       const ModelConfig& config, uint64_t seed)
    : CtrModel(schema, config, seed) {
  propagate_ = std::make_unique<nn::MultiHeadSelfAttention>(
      config.embedding_dim, config.attention_heads, /*residual=*/false,
      init_rng());
  RegisterChild(propagate_.get());
  update_ = std::make_unique<nn::GruCell>(config.embedding_dim,
                                          config.embedding_dim, init_rng());
  RegisterChild(update_.get());
  score_ = std::make_unique<nn::Linear>(config.embedding_dim, 1, init_rng());
  RegisterChild(score_.get());
  attention_ =
      std::make_unique<nn::Linear>(config.embedding_dim, 1, init_rng());
  RegisterChild(attention_.get());
}

nn::Tensor FiGnnModel::Forward(const data::Batch& batch, bool training) {
  const int64_t b_dim = batch.batch_size;
  nn::Tensor fields = FieldMatrix(embeddings(), batch);  // [B, F, K]
  const int64_t f_dim = fields.dim(1);
  const int64_t k_dim = fields.dim(2);

  nn::Tensor h = fields;
  for (int64_t t = 0; t < config_.fignn_steps; ++t) {
    // Attention-weighted aggregation over the fully connected field graph.
    nn::Tensor messages = propagate_->Forward(h, /*mask=*/{});  // [B, F, K]
    // GRU node-state update (flatten nodes into the batch axis), with the
    // residual connection to the initial node features used by the
    // original FiGNN.
    nn::Tensor h_flat = nn::Reshape(h, {b_dim * f_dim, k_dim});
    nn::Tensor m_flat = nn::Reshape(messages, {b_dim * f_dim, k_dim});
    h = nn::Add(
        nn::Reshape(update_->Forward(m_flat, h_flat), {b_dim, f_dim, k_dim}),
        fields);
  }

  // Attentional scoring readout: logit = sum_f a_f * s_f.
  nn::Tensor scores = score_->Forward(h);                 // [B, F, 1]
  nn::Tensor weights = nn::Sigmoid(attention_->Forward(h));  // [B, F, 1]
  nn::Tensor logit = nn::SumAxis(nn::Mul(scores, weights), /*axis=*/1);
  return nn::Reshape(logit, {b_dim});
}

}  // namespace miss::models
