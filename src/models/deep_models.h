// Deep feature-interaction baselines: DeepFM, IPNN, DCN, DCN-M, xDeepFM.

#ifndef MISS_MODELS_DEEP_MODELS_H_
#define MISS_MODELS_DEEP_MODELS_H_

#include <memory>
#include <string>
#include <vector>

#include "models/ctr_model.h"
#include "nn/layers.h"

namespace miss::models {

// DeepFM (Guo et al., IJCAI 2017): FM component + DNN over shared
// embeddings, summed into one logit.
class DeepFmModel : public CtrModel {
 public:
  DeepFmModel(const data::DatasetSchema& schema, const ModelConfig& config,
              uint64_t seed);

  nn::Tensor Forward(const data::Batch& batch, bool training) override;
  std::string name() const override { return "DeepFM"; }

 private:
  std::unique_ptr<EmbeddingSet> lr_weights_;
  nn::Tensor bias_;
  std::unique_ptr<nn::Mlp> deep_;
};

// IPNN (Qu et al., TOIS 2019): inner products of all field pairs
// concatenated with the raw embeddings, fed to a DNN.
class IpnnModel : public CtrModel {
 public:
  IpnnModel(const data::DatasetSchema& schema, const ModelConfig& config,
            uint64_t seed);

  nn::Tensor Forward(const data::Batch& batch, bool training) override;
  std::string name() const override { return "IPNN"; }

 private:
  std::unique_ptr<nn::Mlp> deep_;
};

// DCN (Wang et al., ADKDD 2017) and DCN-M / DCN-V2 (Wang et al., WWW 2021).
// The cross network computes x_{l+1} = x0 * f(x_l) + b_l + x_l where f is a
// scalar projection (vector form, DCN) or a full matrix (matrix form,
// DCN-M).
class DcnModel : public CtrModel {
 public:
  enum class CrossForm { kVector, kMatrix };

  DcnModel(const data::DatasetSchema& schema, const ModelConfig& config,
           uint64_t seed, CrossForm form);

  nn::Tensor Forward(const data::Batch& batch, bool training) override;
  std::string name() const override {
    return form_ == CrossForm::kVector ? "DCN" : "DCN-M";
  }

 private:
  CrossForm form_;
  int64_t input_dim_;
  std::vector<nn::Tensor> cross_weights_;  // [D,1] (vector) or [D,D] (matrix)
  std::vector<nn::Tensor> cross_biases_;   // [D]
  std::unique_ptr<nn::Mlp> deep_;
  std::unique_ptr<nn::Linear> combine_;
};

// xDeepFM (Lian et al., KDD 2018): Compressed Interaction Network over
// field embeddings + DNN + linear part.
class XDeepFmModel : public CtrModel {
 public:
  XDeepFmModel(const data::DatasetSchema& schema, const ModelConfig& config,
               uint64_t seed);

  nn::Tensor Forward(const data::Batch& batch, bool training) override;
  std::string name() const override { return "xDeepFM"; }

 private:
  std::unique_ptr<EmbeddingSet> lr_weights_;
  nn::Tensor bias_;
  std::vector<std::unique_ptr<nn::Linear>> cin_layers_;
  std::unique_ptr<nn::Mlp> deep_;
  std::unique_ptr<nn::Linear> cin_out_;
};

}  // namespace miss::models

#endif  // MISS_MODELS_DEEP_MODELS_H_
