#include "models/linear_models.h"

#include "models/pooling.h"
#include "nn/ops.h"

namespace miss::models {

LrModel::LrModel(const data::DatasetSchema& schema, const ModelConfig& config,
                 uint64_t seed)
    : CtrModel(schema, config, seed) {
  weights_ = std::make_unique<EmbeddingSet>(schema, /*dim=*/1, init_rng());
  RegisterChild(weights_.get());
  bias_ = AddParameter(nn::Tensor::Zeros({1}, /*requires_grad=*/true));
}

nn::Tensor LrModel::FirstOrderLogit(const data::Batch& batch) {
  const int64_t b_dim = batch.batch_size;
  // [B, I+J, 1]: categorical weights plus mean-pooled sequence weights.
  nn::Tensor field_weights = FieldMatrix(*weights_, batch);
  nn::Tensor sum = nn::SumAxis(field_weights, /*axis=*/1);  // [B, 1]
  return nn::Reshape(nn::Add(sum, bias_), {b_dim});
}

nn::Tensor LrModel::Forward(const data::Batch& batch, bool training) {
  return FirstOrderLogit(batch);
}

FmModel::FmModel(const data::DatasetSchema& schema, const ModelConfig& config,
                 uint64_t seed)
    : LrModel(schema, config, seed) {}

nn::Tensor FmModel::Forward(const data::Batch& batch, bool training) {
  const int64_t b_dim = batch.batch_size;
  nn::Tensor fields = FieldMatrix(embeddings(), batch);  // [B, F, K]
  nn::Tensor sum_f = nn::SumAxis(fields, /*axis=*/1);    // [B, K]
  nn::Tensor square_of_sum = nn::Square(sum_f);
  nn::Tensor sum_of_square = nn::SumAxis(nn::Square(fields), /*axis=*/1);
  nn::Tensor pairwise = nn::MulScalar(
      nn::SumAxis(nn::Sub(square_of_sum, sum_of_square), /*axis=*/1), 0.5f);
  return nn::Add(FirstOrderLogit(batch), nn::Reshape(pairwise, {b_dim}));
}

}  // namespace miss::models
