#include "models/interest_models.h"

#include <algorithm>
#include <numeric>

#include "models/pooling.h"
#include "nn/ops.h"

namespace miss::models {

namespace {

std::vector<int64_t> MlpDims(int64_t in_dim, const ModelConfig& config) {
  std::vector<int64_t> dims = {in_dim};
  dims.insert(dims.end(), config.mlp_hidden.begin(), config.mlp_hidden.end());
  dims.push_back(1);
  return dims;
}

// Tiles a [B, K] candidate embedding to [B, L, K] (broadcast add with a
// constant zero tensor keeps the tape small).
nn::Tensor TileCandidate(const nn::Tensor& candidate, int64_t l_dim) {
  const int64_t b_dim = candidate.dim(0);
  const int64_t k_dim = candidate.dim(1);
  nn::Tensor zero = nn::Tensor::Zeros({b_dim, l_dim, k_dim});
  return nn::Add(zero, nn::Reshape(candidate, {b_dim, 1, k_dim}));
}

// Weighted sum pooling: probs [B, L] applied to seq [B, L, K] -> [B, K].
nn::Tensor WeightedSum(const nn::Tensor& probs, const nn::Tensor& seq) {
  const int64_t b_dim = seq.dim(0);
  const int64_t l_dim = seq.dim(1);
  nn::Tensor w = nn::Reshape(probs, {b_dim, l_dim, 1});
  return nn::SumAxis(nn::Mul(w, seq), /*axis=*/1);
}

// Candidate counterpart field for sequence j, or -1 when none exists.
int CandidateFieldFor(const data::DatasetSchema& schema, int j) {
  const int field = schema.seq_shares_table_with[j];
  return field;
}

// By convention, sequence field 0 is the primary (item-id) behavior
// sequence; DIEN/SIM/DMR model interests over it.
constexpr int kPrimarySeq = 0;

}  // namespace

// ----------------------------------------------------------------------------
// LocalActivationUnit
// ----------------------------------------------------------------------------

LocalActivationUnit::LocalActivationUnit(int64_t dim, common::Rng& rng) {
  att_mlp_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{4 * dim, 16, 1}, nn::Activation::kPRelu,
      nn::Activation::kNone, rng);
  RegisterChild(att_mlp_.get());
}

nn::Tensor LocalActivationUnit::AttentionProbs(
    const nn::Tensor& seq, const nn::Tensor& candidate,
    const std::vector<float>& mask) const {
  const int64_t b_dim = seq.dim(0);
  const int64_t l_dim = seq.dim(1);
  nn::Tensor cand = TileCandidate(candidate, l_dim);
  nn::Tensor features = nn::Concat(
      {cand, seq, nn::Sub(cand, seq), nn::Mul(cand, seq)}, /*axis=*/2);
  nn::Tensor scores =
      nn::Reshape(att_mlp_->Forward(features), {b_dim, l_dim});
  return nn::MaskedSoftmaxLastDim(scores, mask);
}

nn::Tensor LocalActivationUnit::Forward(const nn::Tensor& seq,
                                        const nn::Tensor& candidate,
                                        const std::vector<float>& mask) const {
  return WeightedSum(AttentionProbs(seq, candidate, mask), seq);
}

// ----------------------------------------------------------------------------
// DIN
// ----------------------------------------------------------------------------

DinModel::DinModel(const data::DatasetSchema& schema,
                   const ModelConfig& config, uint64_t seed)
    : CtrModel(schema, config, seed) {
  for (int64_t j = 0; j < schema.num_sequential(); ++j) {
    laups_.push_back(std::make_unique<LocalActivationUnit>(
        config.embedding_dim, init_rng()));
    RegisterChild(laups_.back().get());
  }
  int64_t product_fields = 0;
  for (int64_t j = 0; j < schema.num_sequential(); ++j) {
    if (schema.seq_shares_table_with[j] >= 0) ++product_fields;
  }
  const int64_t in_dim =
      (schema.num_fields() + product_fields) * config.embedding_dim +
      product_fields;
  deep_ = std::make_unique<nn::Mlp>(MlpDims(in_dim, config),
                                    nn::Activation::kPRelu,
                                    nn::Activation::kNone, init_rng());
  RegisterChild(deep_.get());
}

nn::Tensor DinModel::Forward(const data::Batch& batch, bool training) {
  const int64_t b_dim = batch.batch_size;
  const int64_t k_dim = config_.embedding_dim;

  std::vector<nn::Tensor> features;
  features.push_back(nn::Reshape(embeddings().CategoricalEmbeddings(batch),
                                 {b_dim, batch.num_cat * k_dim}));
  for (int j = 0; j < batch.num_seq; ++j) {
    nn::Tensor seq = embeddings().SequenceEmbeddings(batch, j);
    const int cand_field = CandidateFieldFor(schema(), j);
    nn::Tensor pooled;
    if (cand_field >= 0) {
      nn::Tensor candidate = embeddings().FieldEmbedding(batch, cand_field);
      pooled = laups_[j]->Forward(seq, candidate, batch.seq_mask);
      // Explicit candidate-history interaction: MLPs struggle to learn the
      // multiplicative match from concatenation alone.
      nn::Tensor product = nn::Mul(candidate, pooled);
      features.push_back(product);
      features.push_back(nn::SumAxis(product, 1, /*keepdims=*/true));
    } else {
      pooled = MaskedMeanPool(seq, batch.seq_mask);
    }
    features.push_back(pooled);
  }
  nn::Tensor x = nn::Concat(features, /*axis=*/1);
  return nn::Reshape(deep_->Forward(ApplyDropout(x, training)), {b_dim});
}

// ----------------------------------------------------------------------------
// DIEN
// ----------------------------------------------------------------------------

DienModel::DienModel(const data::DatasetSchema& schema,
                     const ModelConfig& config, uint64_t seed)
    : CtrModel(schema, config, seed) {
  extractor_ = std::make_unique<nn::GruRunner>(
      config.embedding_dim, config.embedding_dim, init_rng());
  RegisterChild(extractor_.get());
  evolution_ = std::make_unique<nn::GruCell>(
      config.embedding_dim, config.embedding_dim, init_rng());
  RegisterChild(evolution_.get());
  const int64_t in_dim =
      (schema.num_fields() + 2) * config.embedding_dim + 2;
  deep_ = std::make_unique<nn::Mlp>(MlpDims(in_dim, config),
                                    nn::Activation::kPRelu,
                                    nn::Activation::kNone, init_rng());
  RegisterChild(deep_.get());
}

nn::Tensor DienModel::Forward(const data::Batch& batch, bool training) {
  const int64_t b_dim = batch.batch_size;
  const int64_t l_dim = batch.seq_len;
  const int64_t k_dim = config_.embedding_dim;

  // Interest extraction: GRU over the item sequence.
  nn::Tensor item_seq = embeddings().SequenceEmbeddings(batch, kPrimarySeq);
  nn::Tensor interests =
      extractor_->Forward(item_seq, batch.seq_mask);  // [B, L, K]

  // Attention of each interest state toward the target item.
  nn::Tensor candidate = embeddings().FieldEmbedding(batch, CandidateFieldFor(schema(), kPrimarySeq));
  nn::Tensor scores = nn::Reshape(
      nn::BatchMatMul(interests, nn::Reshape(candidate, {b_dim, k_dim, 1})),
      {b_dim, l_dim});
  nn::Tensor probs = nn::MaskedSoftmaxLastDim(scores, batch.seq_mask);

  // Interest evolution: AUGRU sweep with attention-scaled update gates.
  nn::Tensor h = nn::Tensor::Zeros({b_dim, k_dim});
  for (int64_t t = 0; t < l_dim; ++t) {
    nn::Tensor xt =
        nn::Reshape(nn::Slice(interests, 1, t, 1), {b_dim, k_dim});
    nn::Tensor at = nn::Reshape(nn::Slice(probs, 1, t, 1), {b_dim, 1});
    // Padded steps have zero attention, so the state is untouched there.
    h = evolution_->ForwardAttentional(xt, h, at);
  }

  std::vector<nn::Tensor> features;
  features.push_back(nn::Reshape(embeddings().CategoricalEmbeddings(batch),
                                 {b_dim, batch.num_cat * k_dim}));
  features.push_back(h);
  nn::Tensor product_h = nn::Mul(h, candidate);
  features.push_back(product_h);
  features.push_back(nn::SumAxis(product_h, 1, /*keepdims=*/true));
  nn::Tensor pooled_raw = MaskedMeanPool(item_seq, batch.seq_mask);
  nn::Tensor product_raw = nn::Mul(pooled_raw, candidate);
  features.push_back(product_raw);
  features.push_back(nn::SumAxis(product_raw, 1, /*keepdims=*/true));
  for (int j = 1; j < batch.num_seq; ++j) {
    features.push_back(MaskedMeanPool(embeddings().SequenceEmbeddings(batch, j),
                                      batch.seq_mask));
  }
  nn::Tensor x = nn::Concat(features, /*axis=*/1);
  return nn::Reshape(deep_->Forward(ApplyDropout(x, training)), {b_dim});
}

// ----------------------------------------------------------------------------
// SIM(soft)
// ----------------------------------------------------------------------------

SimModel::SimModel(const data::DatasetSchema& schema,
                   const ModelConfig& config, uint64_t seed)
    : CtrModel(schema, config, seed) {
  laup_ = std::make_unique<LocalActivationUnit>(config.embedding_dim,
                                                init_rng());
  RegisterChild(laup_.get());
  const int64_t in_dim =
      (schema.num_fields() + 3) * config.embedding_dim + 2;
  deep_ = std::make_unique<nn::Mlp>(MlpDims(in_dim, config),
                                    nn::Activation::kPRelu,
                                    nn::Activation::kNone, init_rng());
  RegisterChild(deep_.get());
}

nn::Tensor SimModel::Forward(const data::Batch& batch, bool training) {
  const int64_t b_dim = batch.batch_size;
  const int64_t l_dim = batch.seq_len;
  const int64_t k_dim = config_.embedding_dim;
  const int64_t top_k = std::min<int64_t>(config_.sim_top_k, l_dim);

  nn::Tensor item_seq = embeddings().SequenceEmbeddings(batch, kPrimarySeq);
  nn::Tensor candidate = embeddings().FieldEmbedding(batch, CandidateFieldFor(schema(), kPrimarySeq));

  // Soft search: rank valid behaviors by inner product with the target.
  // The selection itself is non-differentiable (a retrieval step); gradients
  // flow through the selected embeddings.
  const auto& seq_v = item_seq.value();
  const auto& cand_v = candidate.value();
  std::vector<int64_t> selected(b_dim * top_k, 0);
  std::vector<float> sub_mask(b_dim * top_k, 0.0f);
  for (int64_t b = 0; b < b_dim; ++b) {
    std::vector<std::pair<float, int64_t>> scored;
    for (int64_t l = 0; l < l_dim; ++l) {
      if (batch.seq_mask[b * l_dim + l] == 0.0f) continue;
      float dot = 0.0f;
      for (int64_t k = 0; k < k_dim; ++k) {
        dot += seq_v[(b * l_dim + l) * k_dim + k] * cand_v[b * k_dim + k];
      }
      scored.emplace_back(dot, l);
    }
    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    const int64_t take = std::min<int64_t>(top_k, scored.size());
    for (int64_t t = 0; t < take; ++t) {
      selected[b * top_k + t] = scored[t].second;
      sub_mask[b * top_k + t] = 1.0f;
    }
  }

  nn::Tensor retrieved = nn::SelectTimeSteps(item_seq, selected, top_k);
  nn::Tensor pooled = laup_->Forward(retrieved, candidate, sub_mask);

  std::vector<nn::Tensor> features;
  features.push_back(nn::Reshape(embeddings().CategoricalEmbeddings(batch),
                                 {b_dim, batch.num_cat * k_dim}));
  features.push_back(pooled);
  nn::Tensor full_pool = MaskedMeanPool(item_seq, batch.seq_mask);
  features.push_back(full_pool);
  nn::Tensor product_s = nn::Mul(pooled, candidate);
  features.push_back(product_s);
  features.push_back(nn::SumAxis(product_s, 1, /*keepdims=*/true));
  nn::Tensor product_full = nn::Mul(full_pool, candidate);
  features.push_back(product_full);
  features.push_back(nn::SumAxis(product_full, 1, /*keepdims=*/true));
  for (int j = 1; j < batch.num_seq; ++j) {
    features.push_back(MaskedMeanPool(embeddings().SequenceEmbeddings(batch, j),
                                      batch.seq_mask));
  }
  nn::Tensor x = nn::Concat(features, /*axis=*/1);
  return nn::Reshape(deep_->Forward(ApplyDropout(x, training)), {b_dim});
}

// ----------------------------------------------------------------------------
// DMR
// ----------------------------------------------------------------------------

DmrModel::DmrModel(const data::DatasetSchema& schema,
                   const ModelConfig& config, uint64_t seed)
    : CtrModel(schema, config, seed) {
  u2i_ = std::make_unique<LocalActivationUnit>(config.embedding_dim,
                                               init_rng());
  RegisterChild(u2i_.get());
  i2i_query_ = std::make_unique<nn::Linear>(config.embedding_dim,
                                            config.embedding_dim, init_rng());
  RegisterChild(i2i_query_.get());
  i2i_key_ = std::make_unique<nn::Linear>(config.embedding_dim,
                                          config.embedding_dim, init_rng());
  RegisterChild(i2i_key_.get());
  // Inputs: all fields + u2i/i2i summaries + their candidate products +
  // two relevance scalars.
  const int64_t in_dim =
      schema.num_fields() * config.embedding_dim + 4 * config.embedding_dim + 2;
  deep_ = std::make_unique<nn::Mlp>(MlpDims(in_dim, config),
                                    nn::Activation::kPRelu,
                                    nn::Activation::kNone, init_rng());
  RegisterChild(deep_.get());
}

nn::Tensor DmrModel::Forward(const data::Batch& batch, bool training) {
  const int64_t b_dim = batch.batch_size;
  const int64_t l_dim = batch.seq_len;
  const int64_t k_dim = config_.embedding_dim;

  nn::Tensor item_seq = embeddings().SequenceEmbeddings(batch, kPrimarySeq);
  nn::Tensor candidate = embeddings().FieldEmbedding(batch, CandidateFieldFor(schema(), kPrimarySeq));

  // User-to-item: attention summary + relevance <u, e_c>.
  nn::Tensor u = u2i_->Forward(item_seq, candidate, batch.seq_mask);
  nn::Tensor r1 = nn::SumAxis(nn::Mul(u, candidate), /*axis=*/1,
                              /*keepdims=*/true);  // [B, 1]

  // Item-to-item: projected inner-product attention; the pre-softmax score
  // mass doubles as a relevance feature.
  nn::Tensor q = i2i_query_->Forward(candidate);           // [B, K]
  nn::Tensor keys = i2i_key_->Forward(item_seq);           // [B, L, K]
  nn::Tensor scores = nn::Reshape(
      nn::BatchMatMul(keys, nn::Reshape(q, {b_dim, k_dim, 1})),
      {b_dim, l_dim});
  nn::Tensor probs = nn::MaskedSoftmaxLastDim(scores, batch.seq_mask);
  nn::Tensor v = WeightedSum(probs, item_seq);
  std::vector<float> mask_copy = batch.seq_mask;
  nn::Tensor mask_tensor =
      nn::Tensor::FromData({b_dim, l_dim}, std::move(mask_copy));
  nn::Tensor r2 = nn::MulScalar(
      nn::SumAxis(nn::Mul(nn::Sigmoid(scores), mask_tensor),
                  /*axis=*/1, /*keepdims=*/true),
      1.0f / static_cast<float>(l_dim));

  std::vector<nn::Tensor> features;
  features.push_back(nn::Reshape(embeddings().CategoricalEmbeddings(batch),
                                 {b_dim, batch.num_cat * k_dim}));
  for (int j = 0; j < batch.num_seq; ++j) {
    features.push_back(MaskedMeanPool(embeddings().SequenceEmbeddings(batch, j),
                                      batch.seq_mask));
  }
  features.push_back(u);
  features.push_back(v);
  features.push_back(nn::Mul(u, candidate));
  features.push_back(nn::Mul(v, candidate));
  features.push_back(r1);
  features.push_back(r2);
  nn::Tensor x = nn::Concat(features, /*axis=*/1);
  return nn::Reshape(deep_->Forward(ApplyDropout(x, training)), {b_dim});
}

// ----------------------------------------------------------------------------
// Rank split (EncodeUser / ScoreCandidates)
// ----------------------------------------------------------------------------
//
// Contract (ctr_model.h): per-candidate rank scores must be bitwise-equal to
// single-pair Forward(). EncodeUser runs every candidate-independent op of
// Forward once at B = 1; ScoreCandidates broadcasts those tensors to the K
// candidate rows by verbatim value copy and replays the candidate-dependent
// remainder in Forward's exact op order. Every op involved is row-wise over
// the batch axis, so each candidate row then matches the single-pair forward
// bit for bit. Broadcasting must NOT go through arithmetic — Add with a zero
// tensor maps -0.0f to +0.0f — hence the raw-copy tiling below.

namespace {

// [1, d1, ...] -> [n, d1, ...] by verbatim row copy.
nn::Tensor TileRows(const nn::Tensor& t, int64_t n) {
  std::vector<int64_t> shape = t.shape();
  MISS_CHECK_EQ(shape[0], 1);
  const std::vector<float>& row = t.value();
  std::vector<float> data;
  data.reserve(row.size() * n);
  for (int64_t i = 0; i < n; ++i) data.insert(data.end(), row.begin(), row.end());
  shape[0] = n;
  return nn::Tensor::FromData(std::move(shape), std::move(data));
}

// The B=1 sequence mask repeated for n candidate rows.
std::vector<float> TileMask(const std::vector<float>& mask, int64_t n) {
  std::vector<float> out;
  out.reserve(mask.size() * n);
  for (int64_t i = 0; i < n; ++i) out.insert(out.end(), mask.begin(), mask.end());
  return out;
}

// State shared by all interest-model rank contexts.
struct InterestRankContext : RankContext {
  int cand_field = -1;  // categorical slot the candidate ids fill
  int64_t num_cat = 0;
  int64_t num_seq = 0;
  int64_t seq_len = 0;
  std::vector<float> mask;            // the user's B=1 seq_mask
  std::vector<nn::Tensor> cat_parts;  // per categorical field, [1, K]
};

void FillCommon(InterestRankContext* ctx, const CtrModel& model,
                const data::Batch& user) {
  MISS_CHECK_EQ(user.batch_size, 1)
      << "EncodeUser expects a single-user batch";
  ctx->cand_field = model.schema().CandidateField();
  MISS_CHECK_GE(ctx->cand_field, 0);
  ctx->num_cat = user.num_cat;
  ctx->num_seq = user.num_seq;
  ctx->seq_len = user.seq_len;
  ctx->mask = user.seq_mask;
  ctx->cat_parts.reserve(user.num_cat);
  for (int i = 0; i < user.num_cat; ++i) {
    ctx->cat_parts.push_back(model.embeddings().FieldEmbedding(user, i));
  }
}

// Reassembles Forward's flattened categorical block [n, I*K] with `cand`
// ([n, K]) in the candidate slot. Gather + concat order matches
// EmbeddingSet::CategoricalEmbeddings, so the values are bitwise-identical.
nn::Tensor RankCatFeature(const InterestRankContext& ctx,
                          const nn::Tensor& cand, int64_t n, int64_t k_dim) {
  std::vector<nn::Tensor> parts;
  parts.reserve(ctx.num_cat);
  for (int64_t i = 0; i < ctx.num_cat; ++i) {
    nn::Tensor p =
        (i == ctx.cand_field) ? cand : TileRows(ctx.cat_parts[i], n);
    parts.push_back(nn::Reshape(p, {n, 1, k_dim}));
  }
  return nn::Reshape(nn::Concat(parts, /*axis=*/1), {n, ctx.num_cat * k_dim});
}

struct DinRankContext final : InterestRankContext {
  // Per sequence j: the hoisted sequence embedding when j attends to the
  // rank candidate (scored per candidate), otherwise the ready feature
  // tensors Forward would append for j, in Forward's order (all [1, *]).
  std::vector<nn::Tensor> dep_seq;
  std::vector<std::vector<nn::Tensor>> static_feats;
};

struct DienRankContext final : InterestRankContext {
  nn::Tensor interests;   // [1, L, K] GRU interest states
  nn::Tensor pooled_raw;  // [1, K] mean-pooled item sequence
  std::vector<nn::Tensor> other_pools;  // j >= 1, each [1, K]
};

struct SimRankContext final : InterestRankContext {
  nn::Tensor item_seq;   // [1, L, K]
  nn::Tensor full_pool;  // [1, K]
  std::vector<nn::Tensor> other_pools;  // j >= 1, each [1, K]
};

struct DmrRankContext final : InterestRankContext {
  nn::Tensor item_seq;  // [1, L, K]
  nn::Tensor keys;      // [1, L, K] i2i key projection
  std::vector<nn::Tensor> pools;  // all j, each [1, K]
};

}  // namespace

bool DinModel::SupportsRankSplit() const {
  return schema().CandidateField() >= 0;
}

std::unique_ptr<RankContext> DinModel::EncodeUser(const data::Batch& user) {
  auto ctx = std::make_unique<DinRankContext>();
  FillCommon(ctx.get(), *this, user);
  ctx->dep_seq.resize(user.num_seq);
  ctx->static_feats.resize(user.num_seq);
  for (int j = 0; j < user.num_seq; ++j) {
    nn::Tensor seq = embeddings().SequenceEmbeddings(user, j);
    const int cand_field = CandidateFieldFor(schema(), j);
    if (cand_field == ctx->cand_field) {
      ctx->dep_seq[j] = seq;  // attends to the rank candidate: score later
      continue;
    }
    auto& feats = ctx->static_feats[j];
    if (cand_field >= 0) {
      // Attends to a fixed non-candidate field: fully computable up front.
      nn::Tensor candidate = embeddings().FieldEmbedding(user, cand_field);
      nn::Tensor pooled = laups_[j]->Forward(seq, candidate, user.seq_mask);
      nn::Tensor product = nn::Mul(candidate, pooled);
      feats.push_back(product);
      feats.push_back(nn::SumAxis(product, 1, /*keepdims=*/true));
      feats.push_back(pooled);
    } else {
      feats.push_back(MaskedMeanPool(seq, user.seq_mask));
    }
  }
  return ctx;
}

nn::Tensor DinModel::ScoreCandidates(const RankContext& context,
                                     const std::vector<int64_t>& candidates) {
  const auto& ctx = static_cast<const DinRankContext&>(context);
  const int64_t n = static_cast<int64_t>(candidates.size());
  const int64_t k_dim = config_.embedding_dim;
  nn::Tensor cand = embeddings().IdsEmbedding(ctx.cand_field, candidates);
  const std::vector<float> mask = TileMask(ctx.mask, n);

  std::vector<nn::Tensor> features;
  features.push_back(RankCatFeature(ctx, cand, n, k_dim));
  for (int64_t j = 0; j < ctx.num_seq; ++j) {
    if (ctx.dep_seq[j].defined()) {
      nn::Tensor seq = TileRows(ctx.dep_seq[j], n);
      nn::Tensor pooled = laups_[j]->Forward(seq, cand, mask);
      nn::Tensor product = nn::Mul(cand, pooled);
      features.push_back(product);
      features.push_back(nn::SumAxis(product, 1, /*keepdims=*/true));
      features.push_back(pooled);
    } else {
      for (const nn::Tensor& f : ctx.static_feats[j]) {
        features.push_back(TileRows(f, n));
      }
    }
  }
  nn::Tensor x = nn::Concat(features, /*axis=*/1);
  return nn::Reshape(deep_->Forward(ApplyDropout(x, /*training=*/false)), {n});
}

bool DienModel::SupportsRankSplit() const {
  return schema().CandidateField() >= 0;
}

std::unique_ptr<RankContext> DienModel::EncodeUser(const data::Batch& user) {
  auto ctx = std::make_unique<DienRankContext>();
  FillCommon(ctx.get(), *this, user);
  nn::Tensor item_seq = embeddings().SequenceEmbeddings(user, kPrimarySeq);
  // The GRU interest-extraction sweep is the expensive candidate-independent
  // half of DIEN; hoisting it is the point of the split.
  ctx->interests = extractor_->Forward(item_seq, user.seq_mask);
  ctx->pooled_raw = MaskedMeanPool(item_seq, user.seq_mask);
  for (int j = 1; j < user.num_seq; ++j) {
    ctx->other_pools.push_back(MaskedMeanPool(
        embeddings().SequenceEmbeddings(user, j), user.seq_mask));
  }
  return ctx;
}

nn::Tensor DienModel::ScoreCandidates(const RankContext& context,
                                      const std::vector<int64_t>& candidates) {
  const auto& ctx = static_cast<const DienRankContext&>(context);
  const int64_t n = static_cast<int64_t>(candidates.size());
  const int64_t k_dim = config_.embedding_dim;
  const int64_t l_dim = ctx.seq_len;
  nn::Tensor cand = embeddings().IdsEmbedding(ctx.cand_field, candidates);
  const std::vector<float> mask = TileMask(ctx.mask, n);

  nn::Tensor interests = TileRows(ctx.interests, n);
  nn::Tensor scores = nn::Reshape(
      nn::BatchMatMul(interests, nn::Reshape(cand, {n, k_dim, 1})),
      {n, l_dim});
  nn::Tensor probs = nn::MaskedSoftmaxLastDim(scores, mask);
  nn::Tensor h = nn::Tensor::Zeros({n, k_dim});
  for (int64_t t = 0; t < l_dim; ++t) {
    nn::Tensor xt = nn::Reshape(nn::Slice(interests, 1, t, 1), {n, k_dim});
    nn::Tensor at = nn::Reshape(nn::Slice(probs, 1, t, 1), {n, 1});
    h = evolution_->ForwardAttentional(xt, h, at);
  }

  std::vector<nn::Tensor> features;
  features.push_back(RankCatFeature(ctx, cand, n, k_dim));
  features.push_back(h);
  nn::Tensor product_h = nn::Mul(h, cand);
  features.push_back(product_h);
  features.push_back(nn::SumAxis(product_h, 1, /*keepdims=*/true));
  nn::Tensor product_raw = nn::Mul(TileRows(ctx.pooled_raw, n), cand);
  features.push_back(product_raw);
  features.push_back(nn::SumAxis(product_raw, 1, /*keepdims=*/true));
  for (const nn::Tensor& pool : ctx.other_pools) {
    features.push_back(TileRows(pool, n));
  }
  nn::Tensor x = nn::Concat(features, /*axis=*/1);
  return nn::Reshape(deep_->Forward(ApplyDropout(x, /*training=*/false)), {n});
}

bool SimModel::SupportsRankSplit() const {
  return schema().CandidateField() >= 0;
}

std::unique_ptr<RankContext> SimModel::EncodeUser(const data::Batch& user) {
  auto ctx = std::make_unique<SimRankContext>();
  FillCommon(ctx.get(), *this, user);
  ctx->item_seq = embeddings().SequenceEmbeddings(user, kPrimarySeq);
  ctx->full_pool = MaskedMeanPool(ctx->item_seq, user.seq_mask);
  for (int j = 1; j < user.num_seq; ++j) {
    ctx->other_pools.push_back(MaskedMeanPool(
        embeddings().SequenceEmbeddings(user, j), user.seq_mask));
  }
  return ctx;
}

nn::Tensor SimModel::ScoreCandidates(const RankContext& context,
                                     const std::vector<int64_t>& candidates) {
  const auto& ctx = static_cast<const SimRankContext&>(context);
  const int64_t n = static_cast<int64_t>(candidates.size());
  const int64_t k_dim = config_.embedding_dim;
  const int64_t l_dim = ctx.seq_len;
  const int64_t top_k = std::min<int64_t>(config_.sim_top_k, l_dim);
  nn::Tensor cand = embeddings().IdsEmbedding(ctx.cand_field, candidates);

  // Soft search per candidate row, reading the hoisted B=1 sequence values;
  // dot accumulation order matches Forward's, so selection is identical.
  const auto& seq_v = ctx.item_seq.value();
  const auto& cand_v = cand.value();
  std::vector<int64_t> selected(n * top_k, 0);
  std::vector<float> sub_mask(n * top_k, 0.0f);
  for (int64_t b = 0; b < n; ++b) {
    std::vector<std::pair<float, int64_t>> scored;
    for (int64_t l = 0; l < l_dim; ++l) {
      if (ctx.mask[l] == 0.0f) continue;
      float dot = 0.0f;
      for (int64_t k = 0; k < k_dim; ++k) {
        dot += seq_v[l * k_dim + k] * cand_v[b * k_dim + k];
      }
      scored.emplace_back(dot, l);
    }
    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    const int64_t take = std::min<int64_t>(top_k, scored.size());
    for (int64_t t = 0; t < take; ++t) {
      selected[b * top_k + t] = scored[t].second;
      sub_mask[b * top_k + t] = 1.0f;
    }
  }

  nn::Tensor seq_t = TileRows(ctx.item_seq, n);
  nn::Tensor retrieved = nn::SelectTimeSteps(seq_t, selected, top_k);
  nn::Tensor pooled = laup_->Forward(retrieved, cand, sub_mask);

  std::vector<nn::Tensor> features;
  features.push_back(RankCatFeature(ctx, cand, n, k_dim));
  features.push_back(pooled);
  nn::Tensor full_pool = TileRows(ctx.full_pool, n);
  features.push_back(full_pool);
  nn::Tensor product_s = nn::Mul(pooled, cand);
  features.push_back(product_s);
  features.push_back(nn::SumAxis(product_s, 1, /*keepdims=*/true));
  nn::Tensor product_full = nn::Mul(full_pool, cand);
  features.push_back(product_full);
  features.push_back(nn::SumAxis(product_full, 1, /*keepdims=*/true));
  for (const nn::Tensor& pool : ctx.other_pools) {
    features.push_back(TileRows(pool, n));
  }
  nn::Tensor x = nn::Concat(features, /*axis=*/1);
  return nn::Reshape(deep_->Forward(ApplyDropout(x, /*training=*/false)), {n});
}

bool DmrModel::SupportsRankSplit() const {
  return schema().CandidateField() >= 0;
}

std::unique_ptr<RankContext> DmrModel::EncodeUser(const data::Batch& user) {
  auto ctx = std::make_unique<DmrRankContext>();
  FillCommon(ctx.get(), *this, user);
  ctx->item_seq = embeddings().SequenceEmbeddings(user, kPrimarySeq);
  ctx->keys = i2i_key_->Forward(ctx->item_seq);
  for (int j = 0; j < user.num_seq; ++j) {
    ctx->pools.push_back(MaskedMeanPool(
        embeddings().SequenceEmbeddings(user, j), user.seq_mask));
  }
  return ctx;
}

nn::Tensor DmrModel::ScoreCandidates(const RankContext& context,
                                     const std::vector<int64_t>& candidates) {
  const auto& ctx = static_cast<const DmrRankContext&>(context);
  const int64_t n = static_cast<int64_t>(candidates.size());
  const int64_t k_dim = config_.embedding_dim;
  const int64_t l_dim = ctx.seq_len;
  nn::Tensor cand = embeddings().IdsEmbedding(ctx.cand_field, candidates);
  const std::vector<float> mask = TileMask(ctx.mask, n);
  nn::Tensor seq_t = TileRows(ctx.item_seq, n);

  nn::Tensor u = u2i_->Forward(seq_t, cand, mask);
  nn::Tensor r1 = nn::SumAxis(nn::Mul(u, cand), /*axis=*/1,
                              /*keepdims=*/true);

  nn::Tensor q = i2i_query_->Forward(cand);
  nn::Tensor keys = TileRows(ctx.keys, n);
  nn::Tensor scores = nn::Reshape(
      nn::BatchMatMul(keys, nn::Reshape(q, {n, k_dim, 1})), {n, l_dim});
  nn::Tensor probs = nn::MaskedSoftmaxLastDim(scores, mask);
  nn::Tensor v = WeightedSum(probs, seq_t);
  std::vector<float> mask_copy = mask;
  nn::Tensor mask_tensor =
      nn::Tensor::FromData({n, l_dim}, std::move(mask_copy));
  nn::Tensor r2 = nn::MulScalar(
      nn::SumAxis(nn::Mul(nn::Sigmoid(scores), mask_tensor),
                  /*axis=*/1, /*keepdims=*/true),
      1.0f / static_cast<float>(l_dim));

  std::vector<nn::Tensor> features;
  features.push_back(RankCatFeature(ctx, cand, n, k_dim));
  for (const nn::Tensor& pool : ctx.pools) {
    features.push_back(TileRows(pool, n));
  }
  features.push_back(u);
  features.push_back(v);
  features.push_back(nn::Mul(u, cand));
  features.push_back(nn::Mul(v, cand));
  features.push_back(r1);
  features.push_back(r2);
  nn::Tensor x = nn::Concat(features, /*axis=*/1);
  return nn::Reshape(deep_->Forward(ApplyDropout(x, /*training=*/false)), {n});
}

}  // namespace miss::models
