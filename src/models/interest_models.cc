#include "models/interest_models.h"

#include <algorithm>
#include <numeric>

#include "models/pooling.h"
#include "nn/ops.h"

namespace miss::models {

namespace {

std::vector<int64_t> MlpDims(int64_t in_dim, const ModelConfig& config) {
  std::vector<int64_t> dims = {in_dim};
  dims.insert(dims.end(), config.mlp_hidden.begin(), config.mlp_hidden.end());
  dims.push_back(1);
  return dims;
}

// Tiles a [B, K] candidate embedding to [B, L, K] (broadcast add with a
// constant zero tensor keeps the tape small).
nn::Tensor TileCandidate(const nn::Tensor& candidate, int64_t l_dim) {
  const int64_t b_dim = candidate.dim(0);
  const int64_t k_dim = candidate.dim(1);
  nn::Tensor zero = nn::Tensor::Zeros({b_dim, l_dim, k_dim});
  return nn::Add(zero, nn::Reshape(candidate, {b_dim, 1, k_dim}));
}

// Weighted sum pooling: probs [B, L] applied to seq [B, L, K] -> [B, K].
nn::Tensor WeightedSum(const nn::Tensor& probs, const nn::Tensor& seq) {
  const int64_t b_dim = seq.dim(0);
  const int64_t l_dim = seq.dim(1);
  nn::Tensor w = nn::Reshape(probs, {b_dim, l_dim, 1});
  return nn::SumAxis(nn::Mul(w, seq), /*axis=*/1);
}

// Candidate counterpart field for sequence j, or -1 when none exists.
int CandidateFieldFor(const data::DatasetSchema& schema, int j) {
  const int field = schema.seq_shares_table_with[j];
  return field;
}

// By convention, sequence field 0 is the primary (item-id) behavior
// sequence; DIEN/SIM/DMR model interests over it.
constexpr int kPrimarySeq = 0;

}  // namespace

// ----------------------------------------------------------------------------
// LocalActivationUnit
// ----------------------------------------------------------------------------

LocalActivationUnit::LocalActivationUnit(int64_t dim, common::Rng& rng) {
  att_mlp_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{4 * dim, 16, 1}, nn::Activation::kPRelu,
      nn::Activation::kNone, rng);
  RegisterChild(att_mlp_.get());
}

nn::Tensor LocalActivationUnit::AttentionProbs(
    const nn::Tensor& seq, const nn::Tensor& candidate,
    const std::vector<float>& mask) const {
  const int64_t b_dim = seq.dim(0);
  const int64_t l_dim = seq.dim(1);
  nn::Tensor cand = TileCandidate(candidate, l_dim);
  nn::Tensor features = nn::Concat(
      {cand, seq, nn::Sub(cand, seq), nn::Mul(cand, seq)}, /*axis=*/2);
  nn::Tensor scores =
      nn::Reshape(att_mlp_->Forward(features), {b_dim, l_dim});
  return nn::MaskedSoftmaxLastDim(scores, mask);
}

nn::Tensor LocalActivationUnit::Forward(const nn::Tensor& seq,
                                        const nn::Tensor& candidate,
                                        const std::vector<float>& mask) const {
  return WeightedSum(AttentionProbs(seq, candidate, mask), seq);
}

// ----------------------------------------------------------------------------
// DIN
// ----------------------------------------------------------------------------

DinModel::DinModel(const data::DatasetSchema& schema,
                   const ModelConfig& config, uint64_t seed)
    : CtrModel(schema, config, seed) {
  for (int64_t j = 0; j < schema.num_sequential(); ++j) {
    laups_.push_back(std::make_unique<LocalActivationUnit>(
        config.embedding_dim, init_rng()));
    RegisterChild(laups_.back().get());
  }
  int64_t product_fields = 0;
  for (int64_t j = 0; j < schema.num_sequential(); ++j) {
    if (schema.seq_shares_table_with[j] >= 0) ++product_fields;
  }
  const int64_t in_dim =
      (schema.num_fields() + product_fields) * config.embedding_dim +
      product_fields;
  deep_ = std::make_unique<nn::Mlp>(MlpDims(in_dim, config),
                                    nn::Activation::kPRelu,
                                    nn::Activation::kNone, init_rng());
  RegisterChild(deep_.get());
}

nn::Tensor DinModel::Forward(const data::Batch& batch, bool training) {
  const int64_t b_dim = batch.batch_size;
  const int64_t k_dim = config_.embedding_dim;

  std::vector<nn::Tensor> features;
  features.push_back(nn::Reshape(embeddings().CategoricalEmbeddings(batch),
                                 {b_dim, batch.num_cat * k_dim}));
  for (int j = 0; j < batch.num_seq; ++j) {
    nn::Tensor seq = embeddings().SequenceEmbeddings(batch, j);
    const int cand_field = CandidateFieldFor(schema(), j);
    nn::Tensor pooled;
    if (cand_field >= 0) {
      nn::Tensor candidate = embeddings().FieldEmbedding(batch, cand_field);
      pooled = laups_[j]->Forward(seq, candidate, batch.seq_mask);
      // Explicit candidate-history interaction: MLPs struggle to learn the
      // multiplicative match from concatenation alone.
      nn::Tensor product = nn::Mul(candidate, pooled);
      features.push_back(product);
      features.push_back(nn::SumAxis(product, 1, /*keepdims=*/true));
    } else {
      pooled = MaskedMeanPool(seq, batch.seq_mask);
    }
    features.push_back(pooled);
  }
  nn::Tensor x = nn::Concat(features, /*axis=*/1);
  return nn::Reshape(deep_->Forward(ApplyDropout(x, training)), {b_dim});
}

// ----------------------------------------------------------------------------
// DIEN
// ----------------------------------------------------------------------------

DienModel::DienModel(const data::DatasetSchema& schema,
                     const ModelConfig& config, uint64_t seed)
    : CtrModel(schema, config, seed) {
  extractor_ = std::make_unique<nn::GruRunner>(
      config.embedding_dim, config.embedding_dim, init_rng());
  RegisterChild(extractor_.get());
  evolution_ = std::make_unique<nn::GruCell>(
      config.embedding_dim, config.embedding_dim, init_rng());
  RegisterChild(evolution_.get());
  const int64_t in_dim =
      (schema.num_fields() + 2) * config.embedding_dim + 2;
  deep_ = std::make_unique<nn::Mlp>(MlpDims(in_dim, config),
                                    nn::Activation::kPRelu,
                                    nn::Activation::kNone, init_rng());
  RegisterChild(deep_.get());
}

nn::Tensor DienModel::Forward(const data::Batch& batch, bool training) {
  const int64_t b_dim = batch.batch_size;
  const int64_t l_dim = batch.seq_len;
  const int64_t k_dim = config_.embedding_dim;

  // Interest extraction: GRU over the item sequence.
  nn::Tensor item_seq = embeddings().SequenceEmbeddings(batch, kPrimarySeq);
  nn::Tensor interests =
      extractor_->Forward(item_seq, batch.seq_mask);  // [B, L, K]

  // Attention of each interest state toward the target item.
  nn::Tensor candidate = embeddings().FieldEmbedding(batch, CandidateFieldFor(schema(), kPrimarySeq));
  nn::Tensor scores = nn::Reshape(
      nn::BatchMatMul(interests, nn::Reshape(candidate, {b_dim, k_dim, 1})),
      {b_dim, l_dim});
  nn::Tensor probs = nn::MaskedSoftmaxLastDim(scores, batch.seq_mask);

  // Interest evolution: AUGRU sweep with attention-scaled update gates.
  nn::Tensor h = nn::Tensor::Zeros({b_dim, k_dim});
  for (int64_t t = 0; t < l_dim; ++t) {
    nn::Tensor xt =
        nn::Reshape(nn::Slice(interests, 1, t, 1), {b_dim, k_dim});
    nn::Tensor at = nn::Reshape(nn::Slice(probs, 1, t, 1), {b_dim, 1});
    // Padded steps have zero attention, so the state is untouched there.
    h = evolution_->ForwardAttentional(xt, h, at);
  }

  std::vector<nn::Tensor> features;
  features.push_back(nn::Reshape(embeddings().CategoricalEmbeddings(batch),
                                 {b_dim, batch.num_cat * k_dim}));
  features.push_back(h);
  nn::Tensor product_h = nn::Mul(h, candidate);
  features.push_back(product_h);
  features.push_back(nn::SumAxis(product_h, 1, /*keepdims=*/true));
  nn::Tensor pooled_raw = MaskedMeanPool(item_seq, batch.seq_mask);
  nn::Tensor product_raw = nn::Mul(pooled_raw, candidate);
  features.push_back(product_raw);
  features.push_back(nn::SumAxis(product_raw, 1, /*keepdims=*/true));
  for (int j = 1; j < batch.num_seq; ++j) {
    features.push_back(MaskedMeanPool(embeddings().SequenceEmbeddings(batch, j),
                                      batch.seq_mask));
  }
  nn::Tensor x = nn::Concat(features, /*axis=*/1);
  return nn::Reshape(deep_->Forward(ApplyDropout(x, training)), {b_dim});
}

// ----------------------------------------------------------------------------
// SIM(soft)
// ----------------------------------------------------------------------------

SimModel::SimModel(const data::DatasetSchema& schema,
                   const ModelConfig& config, uint64_t seed)
    : CtrModel(schema, config, seed) {
  laup_ = std::make_unique<LocalActivationUnit>(config.embedding_dim,
                                                init_rng());
  RegisterChild(laup_.get());
  const int64_t in_dim =
      (schema.num_fields() + 3) * config.embedding_dim + 2;
  deep_ = std::make_unique<nn::Mlp>(MlpDims(in_dim, config),
                                    nn::Activation::kPRelu,
                                    nn::Activation::kNone, init_rng());
  RegisterChild(deep_.get());
}

nn::Tensor SimModel::Forward(const data::Batch& batch, bool training) {
  const int64_t b_dim = batch.batch_size;
  const int64_t l_dim = batch.seq_len;
  const int64_t k_dim = config_.embedding_dim;
  const int64_t top_k = std::min<int64_t>(config_.sim_top_k, l_dim);

  nn::Tensor item_seq = embeddings().SequenceEmbeddings(batch, kPrimarySeq);
  nn::Tensor candidate = embeddings().FieldEmbedding(batch, CandidateFieldFor(schema(), kPrimarySeq));

  // Soft search: rank valid behaviors by inner product with the target.
  // The selection itself is non-differentiable (a retrieval step); gradients
  // flow through the selected embeddings.
  const auto& seq_v = item_seq.value();
  const auto& cand_v = candidate.value();
  std::vector<int64_t> selected(b_dim * top_k, 0);
  std::vector<float> sub_mask(b_dim * top_k, 0.0f);
  for (int64_t b = 0; b < b_dim; ++b) {
    std::vector<std::pair<float, int64_t>> scored;
    for (int64_t l = 0; l < l_dim; ++l) {
      if (batch.seq_mask[b * l_dim + l] == 0.0f) continue;
      float dot = 0.0f;
      for (int64_t k = 0; k < k_dim; ++k) {
        dot += seq_v[(b * l_dim + l) * k_dim + k] * cand_v[b * k_dim + k];
      }
      scored.emplace_back(dot, l);
    }
    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    const int64_t take = std::min<int64_t>(top_k, scored.size());
    for (int64_t t = 0; t < take; ++t) {
      selected[b * top_k + t] = scored[t].second;
      sub_mask[b * top_k + t] = 1.0f;
    }
  }

  nn::Tensor retrieved = nn::SelectTimeSteps(item_seq, selected, top_k);
  nn::Tensor pooled = laup_->Forward(retrieved, candidate, sub_mask);

  std::vector<nn::Tensor> features;
  features.push_back(nn::Reshape(embeddings().CategoricalEmbeddings(batch),
                                 {b_dim, batch.num_cat * k_dim}));
  features.push_back(pooled);
  nn::Tensor full_pool = MaskedMeanPool(item_seq, batch.seq_mask);
  features.push_back(full_pool);
  nn::Tensor product_s = nn::Mul(pooled, candidate);
  features.push_back(product_s);
  features.push_back(nn::SumAxis(product_s, 1, /*keepdims=*/true));
  nn::Tensor product_full = nn::Mul(full_pool, candidate);
  features.push_back(product_full);
  features.push_back(nn::SumAxis(product_full, 1, /*keepdims=*/true));
  for (int j = 1; j < batch.num_seq; ++j) {
    features.push_back(MaskedMeanPool(embeddings().SequenceEmbeddings(batch, j),
                                      batch.seq_mask));
  }
  nn::Tensor x = nn::Concat(features, /*axis=*/1);
  return nn::Reshape(deep_->Forward(ApplyDropout(x, training)), {b_dim});
}

// ----------------------------------------------------------------------------
// DMR
// ----------------------------------------------------------------------------

DmrModel::DmrModel(const data::DatasetSchema& schema,
                   const ModelConfig& config, uint64_t seed)
    : CtrModel(schema, config, seed) {
  u2i_ = std::make_unique<LocalActivationUnit>(config.embedding_dim,
                                               init_rng());
  RegisterChild(u2i_.get());
  i2i_query_ = std::make_unique<nn::Linear>(config.embedding_dim,
                                            config.embedding_dim, init_rng());
  RegisterChild(i2i_query_.get());
  i2i_key_ = std::make_unique<nn::Linear>(config.embedding_dim,
                                          config.embedding_dim, init_rng());
  RegisterChild(i2i_key_.get());
  // Inputs: all fields + u2i/i2i summaries + their candidate products +
  // two relevance scalars.
  const int64_t in_dim =
      schema.num_fields() * config.embedding_dim + 4 * config.embedding_dim + 2;
  deep_ = std::make_unique<nn::Mlp>(MlpDims(in_dim, config),
                                    nn::Activation::kPRelu,
                                    nn::Activation::kNone, init_rng());
  RegisterChild(deep_.get());
}

nn::Tensor DmrModel::Forward(const data::Batch& batch, bool training) {
  const int64_t b_dim = batch.batch_size;
  const int64_t l_dim = batch.seq_len;
  const int64_t k_dim = config_.embedding_dim;

  nn::Tensor item_seq = embeddings().SequenceEmbeddings(batch, kPrimarySeq);
  nn::Tensor candidate = embeddings().FieldEmbedding(batch, CandidateFieldFor(schema(), kPrimarySeq));

  // User-to-item: attention summary + relevance <u, e_c>.
  nn::Tensor u = u2i_->Forward(item_seq, candidate, batch.seq_mask);
  nn::Tensor r1 = nn::SumAxis(nn::Mul(u, candidate), /*axis=*/1,
                              /*keepdims=*/true);  // [B, 1]

  // Item-to-item: projected inner-product attention; the pre-softmax score
  // mass doubles as a relevance feature.
  nn::Tensor q = i2i_query_->Forward(candidate);           // [B, K]
  nn::Tensor keys = i2i_key_->Forward(item_seq);           // [B, L, K]
  nn::Tensor scores = nn::Reshape(
      nn::BatchMatMul(keys, nn::Reshape(q, {b_dim, k_dim, 1})),
      {b_dim, l_dim});
  nn::Tensor probs = nn::MaskedSoftmaxLastDim(scores, batch.seq_mask);
  nn::Tensor v = WeightedSum(probs, item_seq);
  std::vector<float> mask_copy = batch.seq_mask;
  nn::Tensor mask_tensor =
      nn::Tensor::FromData({b_dim, l_dim}, std::move(mask_copy));
  nn::Tensor r2 = nn::MulScalar(
      nn::SumAxis(nn::Mul(nn::Sigmoid(scores), mask_tensor),
                  /*axis=*/1, /*keepdims=*/true),
      1.0f / static_cast<float>(l_dim));

  std::vector<nn::Tensor> features;
  features.push_back(nn::Reshape(embeddings().CategoricalEmbeddings(batch),
                                 {b_dim, batch.num_cat * k_dim}));
  for (int j = 0; j < batch.num_seq; ++j) {
    features.push_back(MaskedMeanPool(embeddings().SequenceEmbeddings(batch, j),
                                      batch.seq_mask));
  }
  features.push_back(u);
  features.push_back(v);
  features.push_back(nn::Mul(u, candidate));
  features.push_back(nn::Mul(v, candidate));
  features.push_back(r1);
  features.push_back(r2);
  nn::Tensor x = nn::Concat(features, /*axis=*/1);
  return nn::Reshape(deep_->Forward(ApplyDropout(x, training)), {b_dim});
}

}  // namespace miss::models
