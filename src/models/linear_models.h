// Shallow baselines: Logistic Regression and Factorization Machines.

#ifndef MISS_MODELS_LINEAR_MODELS_H_
#define MISS_MODELS_LINEAR_MODELS_H_

#include <memory>
#include <string>

#include "models/ctr_model.h"

namespace miss::models {

// LR: logit = b + sum of per-feature weights. Sequence fields contribute
// the mean of their members' weights. (Lee et al., KDD 2012 baseline.)
class LrModel : public CtrModel {
 public:
  LrModel(const data::DatasetSchema& schema, const ModelConfig& config,
          uint64_t seed);

  nn::Tensor Forward(const data::Batch& batch, bool training) override;
  std::string name() const override { return "LR"; }

 protected:
  // The first-order part; reused by FM.
  nn::Tensor FirstOrderLogit(const data::Batch& batch);

 private:
  std::unique_ptr<EmbeddingSet> weights_;  // dim-1 "embeddings" = weights
  nn::Tensor bias_;
};

// FM (Rendle, ICDM 2010): first-order term + pairwise interactions
// 0.5 * sum_k [(sum_f v_fk)^2 - sum_f v_fk^2].
class FmModel : public LrModel {
 public:
  FmModel(const data::DatasetSchema& schema, const ModelConfig& config,
          uint64_t seed);

  nn::Tensor Forward(const data::Batch& batch, bool training) override;
  std::string name() const override { return "FM"; }
};

}  // namespace miss::models

#endif  // MISS_MODELS_LINEAR_MODELS_H_
