#include "models/deep_models.h"

#include <utility>

#include "models/pooling.h"
#include "nn/ops.h"

namespace miss::models {

namespace {

// Appends the output layer to the configured hidden sizes.
std::vector<int64_t> MlpDims(int64_t in_dim, const ModelConfig& config,
                             int64_t out_dim = 1) {
  std::vector<int64_t> dims;
  dims.push_back(in_dim);
  dims.insert(dims.end(), config.mlp_hidden.begin(), config.mlp_hidden.end());
  dims.push_back(out_dim);
  return dims;
}

}  // namespace

// ----------------------------------------------------------------------------
// DeepFM
// ----------------------------------------------------------------------------

DeepFmModel::DeepFmModel(const data::DatasetSchema& schema,
                         const ModelConfig& config, uint64_t seed)
    : CtrModel(schema, config, seed) {
  lr_weights_ = std::make_unique<EmbeddingSet>(schema, /*dim=*/1, init_rng());
  RegisterChild(lr_weights_.get());
  bias_ = AddParameter(nn::Tensor::Zeros({1}, /*requires_grad=*/true));
  const int64_t fields = schema.num_fields();
  deep_ = std::make_unique<nn::Mlp>(
      MlpDims(fields * config.embedding_dim, config), nn::Activation::kRelu,
      nn::Activation::kNone, init_rng());
  RegisterChild(deep_.get());
}

nn::Tensor DeepFmModel::Forward(const data::Batch& batch, bool training) {
  const int64_t b_dim = batch.batch_size;
  nn::Tensor fields = FieldMatrix(embeddings(), batch);  // [B, F, K]

  // First order.
  nn::Tensor first =
      nn::Add(nn::SumAxis(FieldMatrix(*lr_weights_, batch), 1), bias_);

  // FM second order.
  nn::Tensor sum_f = nn::SumAxis(fields, 1);
  nn::Tensor pairwise = nn::MulScalar(
      nn::SumAxis(
          nn::Sub(nn::Square(sum_f), nn::SumAxis(nn::Square(fields), 1)), 1,
          /*keepdims=*/true),
      0.5f);

  // Deep component over the flattened embeddings.
  nn::Tensor flat =
      nn::Reshape(fields, {b_dim, fields.dim(1) * fields.dim(2)});
  nn::Tensor deep = deep_->Forward(ApplyDropout(flat, training));

  return nn::Reshape(nn::Add(nn::Add(first, pairwise), deep), {b_dim});
}

// ----------------------------------------------------------------------------
// IPNN
// ----------------------------------------------------------------------------

IpnnModel::IpnnModel(const data::DatasetSchema& schema,
                     const ModelConfig& config, uint64_t seed)
    : CtrModel(schema, config, seed) {
  const int64_t fields = schema.num_fields();
  const int64_t in_dim =
      fields * config.embedding_dim + fields * fields;  // z + all pair IPs
  deep_ = std::make_unique<nn::Mlp>(MlpDims(in_dim, config),
                                    nn::Activation::kRelu,
                                    nn::Activation::kNone, init_rng());
  RegisterChild(deep_.get());
}

nn::Tensor IpnnModel::Forward(const data::Batch& batch, bool training) {
  const int64_t b_dim = batch.batch_size;
  nn::Tensor fields = FieldMatrix(embeddings(), batch);  // [B, F, K]
  const int64_t f_dim = fields.dim(1);
  // Inner products between all field pairs: [B, F, F].
  nn::Tensor products = nn::BatchMatMul(fields, nn::TransposeLast2(fields));
  nn::Tensor flat = nn::Concat(
      {nn::Reshape(fields, {b_dim, f_dim * fields.dim(2)}),
       nn::Reshape(products, {b_dim, f_dim * f_dim})},
      /*axis=*/1);
  return nn::Reshape(deep_->Forward(ApplyDropout(flat, training)), {b_dim});
}

// ----------------------------------------------------------------------------
// DCN / DCN-M
// ----------------------------------------------------------------------------

DcnModel::DcnModel(const data::DatasetSchema& schema,
                   const ModelConfig& config, uint64_t seed, CrossForm form)
    : CtrModel(schema, config, seed), form_(form) {
  input_dim_ = schema.num_fields() * config.embedding_dim;
  for (int64_t l = 0; l < config.cross_layers; ++l) {
    if (form_ == CrossForm::kVector) {
      cross_weights_.push_back(AddParameter(nn::Tensor::XavierUniform(
          {input_dim_, 1}, init_rng(), /*requires_grad=*/true)));
    } else {
      cross_weights_.push_back(AddParameter(nn::Tensor::XavierUniform(
          {input_dim_, input_dim_}, init_rng(), /*requires_grad=*/true)));
    }
    cross_biases_.push_back(
        AddParameter(nn::Tensor::Zeros({input_dim_}, /*requires_grad=*/true)));
  }
  deep_ = std::make_unique<nn::Mlp>(
      MlpDims(input_dim_, config, config.mlp_hidden.back()),
      nn::Activation::kRelu, nn::Activation::kRelu, init_rng());
  RegisterChild(deep_.get());
  combine_ = std::make_unique<nn::Linear>(
      input_dim_ + config.mlp_hidden.back(), 1, init_rng());
  RegisterChild(combine_.get());
}

nn::Tensor DcnModel::Forward(const data::Batch& batch, bool training) {
  const int64_t b_dim = batch.batch_size;
  nn::Tensor fields = FieldMatrix(embeddings(), batch);
  nn::Tensor x0 = nn::Reshape(fields, {b_dim, input_dim_});

  nn::Tensor x = x0;
  for (size_t l = 0; l < cross_weights_.size(); ++l) {
    if (form_ == CrossForm::kVector) {
      // x_{l+1} = x0 * (x_l . w) + b + x_l
      nn::Tensor proj = nn::MatMul(x, cross_weights_[l]);  // [B, 1]
      x = nn::Add(nn::Add(nn::Mul(x0, proj), cross_biases_[l]), x);
    } else {
      // x_{l+1} = x0 o (W x_l + b) + x_l
      nn::Tensor proj =
          nn::Add(nn::MatMul(x, cross_weights_[l]), cross_biases_[l]);
      x = nn::Add(nn::Mul(x0, proj), x);
    }
  }

  nn::Tensor deep = deep_->Forward(ApplyDropout(x0, training));
  nn::Tensor logit = combine_->Forward(nn::Concat({x, deep}, /*axis=*/1));
  return nn::Reshape(logit, {b_dim});
}

// ----------------------------------------------------------------------------
// xDeepFM
// ----------------------------------------------------------------------------

XDeepFmModel::XDeepFmModel(const data::DatasetSchema& schema,
                           const ModelConfig& config, uint64_t seed)
    : CtrModel(schema, config, seed) {
  lr_weights_ = std::make_unique<EmbeddingSet>(schema, /*dim=*/1, init_rng());
  RegisterChild(lr_weights_.get());
  bias_ = AddParameter(nn::Tensor::Zeros({1}, /*requires_grad=*/true));

  const int64_t fields = schema.num_fields();
  int64_t prev = fields;
  int64_t cin_total = 0;
  for (int64_t size : config.cin_sizes) {
    cin_layers_.push_back(
        std::make_unique<nn::Linear>(prev * fields, size, init_rng()));
    RegisterChild(cin_layers_.back().get());
    prev = size;
    cin_total += size;
  }
  cin_out_ = std::make_unique<nn::Linear>(cin_total, 1, init_rng());
  RegisterChild(cin_out_.get());

  deep_ = std::make_unique<nn::Mlp>(
      MlpDims(fields * config.embedding_dim, config), nn::Activation::kRelu,
      nn::Activation::kNone, init_rng());
  RegisterChild(deep_.get());
}

nn::Tensor XDeepFmModel::Forward(const data::Batch& batch, bool training) {
  const int64_t b_dim = batch.batch_size;
  const int64_t k_dim = config_.embedding_dim;
  nn::Tensor x0 = FieldMatrix(embeddings(), batch);  // [B, m, K]
  const int64_t m_dim = x0.dim(1);

  // CIN: x^{l+1}_h = sum_{i,j} W_h[i,j] (x^l_i o x^0_j)
  nn::Tensor xl = x0;
  std::vector<nn::Tensor> pooled;  // sum over K of each layer's maps
  for (const auto& layer : cin_layers_) {
    const int64_t h_dim = xl.dim(1);
    // Outer interaction z: [B, h, m, K] via broadcasting.
    nn::Tensor a = nn::Reshape(xl, {b_dim, h_dim, 1, k_dim});
    nn::Tensor b = nn::Reshape(x0, {b_dim, 1, m_dim, k_dim});
    nn::Tensor z = nn::Mul(a, b);
    // Compress: treat (h*m) as features per channel k.
    nn::Tensor zt = nn::TransposeLast2(
        nn::Reshape(z, {b_dim, h_dim * m_dim, k_dim}));  // [B, K, h*m]
    nn::Tensor next = nn::Relu(layer->Forward(zt));      // [B, K, size]
    xl = nn::TransposeLast2(next);                       // [B, size, K]
    pooled.push_back(nn::SumAxis(xl, /*axis=*/2));       // [B, size]
  }
  nn::Tensor cin_logit = cin_out_->Forward(nn::Concat(pooled, /*axis=*/1));

  nn::Tensor first =
      nn::Add(nn::SumAxis(FieldMatrix(*lr_weights_, batch), 1), bias_);
  nn::Tensor flat = nn::Reshape(x0, {b_dim, m_dim * k_dim});
  nn::Tensor deep = deep_->Forward(ApplyDropout(flat, training));

  return nn::Reshape(nn::Add(nn::Add(first, cin_logit), deep), {b_dim});
}

}  // namespace miss::models
