// Creates CTR models by name; used by the experiment harness and benches.

#ifndef MISS_MODELS_MODEL_FACTORY_H_
#define MISS_MODELS_MODEL_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "models/ctr_model.h"

namespace miss::models {

// Known names: "lr", "fm", "deepfm", "ipnn", "dcn", "dcnm", "xdeepfm",
// "din", "dien", "sim", "dmr", "autoint", "fignn", "wide_deep", "dsin".
// Aborts on unknown names.
std::unique_ptr<CtrModel> CreateModel(const std::string& name,
                                      const data::DatasetSchema& schema,
                                      const ModelConfig& config,
                                      uint64_t seed);

// All names accepted by CreateModel (the 13 Table IV baselines first,
// then the extra related-work models Wide&Deep and DSIN).
std::vector<std::string> KnownModelNames();

}  // namespace miss::models

#endif  // MISS_MODELS_MODEL_FACTORY_H_
