// The common interface every CTR model implements, plus shared
// configuration. Models own an EmbeddingSet, which the MISS framework also
// reads — that is the entire plug-in contract.

#ifndef MISS_MODELS_CTR_MODEL_H_
#define MISS_MODELS_CTR_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "data/dataset.h"
#include "models/embedding_set.h"
#include "nn/module.h"
#include "nn/tensor.h"

namespace miss::models {

// Opaque per-request state produced by CtrModel::EncodeUser: everything in
// a forward pass that does not depend on the candidate id (behavior-sequence
// embeddings, GRU interest states, pooled context fields). Concrete models
// define their own subtypes; callers only move it between EncodeUser and
// ScoreCandidates.
struct RankContext {
  virtual ~RankContext() = default;
};

// Hyper-parameters shared across models (paper Section VI-A5) plus the
// per-architecture knobs. One struct keeps the experiment harness simple.
struct ModelConfig {
  int64_t embedding_dim = 10;            // K, fixed to 10 in the paper
  float embedding_init_stddev = 0.05f;
  std::vector<int64_t> mlp_hidden = {40, 40, 40};  // deep layers {40,40,40,1}
  float dropout = 0.1f;

  // DCN / DCN-M.
  int64_t cross_layers = 2;
  // xDeepFM CIN feature-map sizes.
  std::vector<int64_t> cin_sizes = {8, 8};
  // AutoInt / FiGNN / MISS-SA attention heads and propagation steps.
  int64_t attention_heads = 2;
  int64_t attention_layers = 2;
  int64_t fignn_steps = 2;
  // SIM soft-search retrieval size.
  int64_t sim_top_k = 10;
};

class CtrModel : public nn::Module {
 public:
  CtrModel(const data::DatasetSchema& schema, const ModelConfig& config,
           uint64_t seed)
      : config_(config), init_rng_(seed), dropout_rng_(init_rng_.Fork()) {
    embeddings_ = std::make_unique<EmbeddingSet>(
        schema, config.embedding_dim, init_rng_,
        config.embedding_init_stddev);
    RegisterChild(embeddings_.get());
  }

  // Computes CTR logits, shape [B]. `training` enables dropout.
  virtual nn::Tensor Forward(const data::Batch& batch, bool training) = 0;

  virtual std::string name() const = 0;

  // -- Two-tower rank split (candidate-ranking serving) ----------------------
  //
  // Models whose forward pass is candidate-conditioned only at the attention
  // query (DIN-style interest models) can encode the user once and score K
  // candidates against that context. The contract is bitwise: for each
  // candidate id c, row i of ScoreCandidates(EncodeUser(user), {..c..}) must
  // equal the logit of Forward() on the single (user, c) pair — same ops in
  // the same order, broadcast by verbatim value copy (every factory model is
  // row-wise over the batch axis, so batching candidates cannot change a
  // row's bits). Models without a split keep the default false and the rank
  // engine falls back to batched per-candidate Forward() calls.

  // Whether EncodeUser/ScoreCandidates are implemented for this
  // architecture + schema (requires schema().CandidateField() >= 0).
  virtual bool SupportsRankSplit() const { return false; }

  // Runs the candidate-independent part of Forward() on a batch holding
  // exactly one user sample (the candidate slot's value is ignored).
  // Inference-only: call under nn::InferenceScope.
  virtual std::unique_ptr<RankContext> EncodeUser(const data::Batch& user) {
    (void)user;
    MISS_CHECK(false) << name() << " does not implement the rank split";
    return nullptr;
  }

  // Scores K candidate ids against an EncodeUser context -> logits [K],
  // bitwise equal to K single-pair Forward() calls. Inference-only.
  virtual nn::Tensor ScoreCandidates(const RankContext& context,
                                     const std::vector<int64_t>& candidates) {
    (void)context;
    (void)candidates;
    MISS_CHECK(false) << name() << " does not implement the rank split";
    return nn::Tensor();
  }

  EmbeddingSet& embeddings() { return *embeddings_; }
  const EmbeddingSet& embeddings() const { return *embeddings_; }
  const data::DatasetSchema& schema() const { return embeddings_->schema(); }
  const ModelConfig& config() const { return config_; }

  // The models::CreateModel key and seed this instance was built from,
  // recorded by the factory (key is "" for directly constructed models).
  // Serving bundles persist them so a fresh process can rebuild the exact
  // same architecture before warm-loading the checkpoint.
  const std::string& factory_key() const { return factory_key_; }
  uint64_t factory_seed() const { return factory_seed_; }
  void SetFactoryOrigin(std::string key, uint64_t seed) {
    factory_key_ = std::move(key);
    factory_seed_ = seed;
  }

 protected:
  common::Rng& init_rng() { return init_rng_; }
  common::Rng& dropout_rng() { return dropout_rng_; }
  nn::Tensor ApplyDropout(const nn::Tensor& x, bool training) {
    return nn::Dropout(x, config_.dropout, training, dropout_rng_);
  }

  ModelConfig config_;

 private:
  common::Rng init_rng_;
  common::Rng dropout_rng_;
  std::unique_ptr<EmbeddingSet> embeddings_;
  std::string factory_key_;
  uint64_t factory_seed_ = 0;
};

}  // namespace miss::models

#endif  // MISS_MODELS_CTR_MODEL_H_
