// Attention- and graph-based baselines: AutoInt+ and FiGNN.

#ifndef MISS_MODELS_ATTENTION_MODELS_H_
#define MISS_MODELS_ATTENTION_MODELS_H_

#include <memory>
#include <string>
#include <vector>

#include "models/ctr_model.h"
#include "nn/attention.h"
#include "nn/layers.h"
#include "nn/rnn.h"

namespace miss::models {

// AutoInt+ (Song et al., CIKM 2019): stacked residual multi-head
// self-attention over field embeddings, with a parallel DNN branch (the
// "+" variant).
class AutoIntModel : public CtrModel {
 public:
  AutoIntModel(const data::DatasetSchema& schema, const ModelConfig& config,
               uint64_t seed);

  nn::Tensor Forward(const data::Batch& batch, bool training) override;
  std::string name() const override { return "AutoInt+"; }

 private:
  std::vector<std::unique_ptr<nn::MultiHeadSelfAttention>> layers_;
  std::unique_ptr<nn::Linear> attn_out_;
  std::unique_ptr<nn::Mlp> deep_;
};

// FiGNN (Li et al., CIKM 2019): fields form a fully connected graph; node
// states are refined over `fignn_steps` rounds of attention-weighted message
// passing with GRU state updates, then read out with per-field attentional
// scoring.
class FiGnnModel : public CtrModel {
 public:
  FiGnnModel(const data::DatasetSchema& schema, const ModelConfig& config,
             uint64_t seed);

  nn::Tensor Forward(const data::Batch& batch, bool training) override;
  std::string name() const override { return "FiGNN"; }

 private:
  std::unique_ptr<nn::MultiHeadSelfAttention> propagate_;
  std::unique_ptr<nn::GruCell> update_;
  std::unique_ptr<nn::Linear> score_;      // per-node scalar score
  std::unique_ptr<nn::Linear> attention_;  // per-node attention weight
};

}  // namespace miss::models

#endif  // MISS_MODELS_ATTENTION_MODELS_H_
