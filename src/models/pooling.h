// Sequence pooling helpers shared across models.

#ifndef MISS_MODELS_POOLING_H_
#define MISS_MODELS_POOLING_H_

#include <vector>

#include "data/dataset.h"
#include "nn/tensor.h"

namespace miss::models {

// Mean over valid positions: seq [B, L, K], mask [B, L] -> [B, K].
// All-padding rows yield zeros.
nn::Tensor MaskedMeanPool(const nn::Tensor& seq,
                          const std::vector<float>& mask);

// Builds the standard field list for feature-interaction models:
// I categorical embeddings plus J mean-pooled sequence embeddings,
// stacked to [B, I+J, K].
nn::Tensor FieldMatrix(const class EmbeddingSet& embeddings,
                       const data::Batch& batch);

}  // namespace miss::models

#endif  // MISS_MODELS_POOLING_H_
