#include "models/model_factory.h"

#include "common/check.h"
#include "models/attention_models.h"
#include "models/deep_models.h"
#include "models/interest_models.h"
#include "models/extra_models.h"
#include "models/linear_models.h"

namespace miss::models {

namespace {

std::unique_ptr<CtrModel> Build(const std::string& name,
                                const data::DatasetSchema& schema,
                                const ModelConfig& config, uint64_t seed) {
  if (name == "lr") return std::make_unique<LrModel>(schema, config, seed);
  if (name == "fm") return std::make_unique<FmModel>(schema, config, seed);
  if (name == "deepfm") {
    return std::make_unique<DeepFmModel>(schema, config, seed);
  }
  if (name == "ipnn") return std::make_unique<IpnnModel>(schema, config, seed);
  if (name == "dcn") {
    return std::make_unique<DcnModel>(schema, config, seed,
                                      DcnModel::CrossForm::kVector);
  }
  if (name == "dcnm") {
    return std::make_unique<DcnModel>(schema, config, seed,
                                      DcnModel::CrossForm::kMatrix);
  }
  if (name == "xdeepfm") {
    return std::make_unique<XDeepFmModel>(schema, config, seed);
  }
  if (name == "din") return std::make_unique<DinModel>(schema, config, seed);
  if (name == "dien") return std::make_unique<DienModel>(schema, config, seed);
  if (name == "sim") return std::make_unique<SimModel>(schema, config, seed);
  if (name == "dmr") return std::make_unique<DmrModel>(schema, config, seed);
  if (name == "autoint") {
    return std::make_unique<AutoIntModel>(schema, config, seed);
  }
  if (name == "fignn") {
    return std::make_unique<FiGnnModel>(schema, config, seed);
  }
  if (name == "wide_deep") {
    return std::make_unique<WideDeepModel>(schema, config, seed);
  }
  if (name == "dsin") {
    return std::make_unique<DsinModel>(schema, config, seed);
  }
  MISS_CHECK(false) << "unknown model name: " << name;
  return nullptr;
}

}  // namespace

std::unique_ptr<CtrModel> CreateModel(const std::string& name,
                                      const data::DatasetSchema& schema,
                                      const ModelConfig& config,
                                      uint64_t seed) {
  std::unique_ptr<CtrModel> model = Build(name, schema, config, seed);
  model->SetFactoryOrigin(name, seed);
  return model;
}

std::vector<std::string> KnownModelNames() {
  return {"lr",   "fm",  "deepfm", "ipnn", "dcn",     "dcnm",
          "xdeepfm", "din", "dien", "sim",  "dmr",     "autoint",
          "fignn", "wide_deep", "dsin"};
}

}  // namespace miss::models
