// Field-wise embedding tables shared by every CTR model and by the MISS SSL
// component.
//
// Sequential fields that share a vocabulary with a categorical field (e.g.
// the clicked-item sequence and the candidate item id) share one table, so
// self-supervision signals computed on behavior sequences back-propagate
// into the very embeddings the CTR tower scores candidates with — the
// mechanism behind the paper's "plug-in" compatibility claim.

#ifndef MISS_MODELS_EMBEDDING_SET_H_
#define MISS_MODELS_EMBEDDING_SET_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"
#include "data/schema.h"
#include "nn/layers.h"
#include "nn/module.h"

namespace miss::models {

class EmbeddingSet : public nn::Module {
 public:
  EmbeddingSet(const data::DatasetSchema& schema, int64_t dim,
               common::Rng& rng, float init_stddev = 0.05f);

  // Embeddings of all categorical fields: [B, I, K].
  nn::Tensor CategoricalEmbeddings(const data::Batch& batch) const;

  // Embedding of one categorical field: [B, K].
  nn::Tensor FieldEmbedding(const data::Batch& batch, int field) const;

  // Embeddings of explicit ids from one categorical field's table: [N, K].
  // Rank serving looks up candidate ids without materializing a batch; the
  // gather is the same as FieldEmbedding's, so rows are bitwise identical.
  nn::Tensor IdsEmbedding(int field, const std::vector<int64_t>& ids) const;

  // Embeddings of one sequential field: [B, L, K] (padding rows are zero).
  nn::Tensor SequenceEmbeddings(const data::Batch& batch, int seq_field) const;

  // The Eq. (18) tensor C: [B, J, L, K].
  nn::Tensor SequenceTensor(const data::Batch& batch) const;

  int64_t dim() const { return dim_; }
  const data::DatasetSchema& schema() const { return schema_; }

 private:
  const nn::Embedding& SeqTable(int seq_field) const;

  data::DatasetSchema schema_;
  int64_t dim_;
  std::vector<std::unique_ptr<nn::Embedding>> cat_tables_;
  // Private tables for sequential fields that don't share; indexed by j,
  // nullptr when shared.
  std::vector<std::unique_ptr<nn::Embedding>> seq_tables_;
};

}  // namespace miss::models

#endif  // MISS_MODELS_EMBEDDING_SET_H_
