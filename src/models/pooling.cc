#include "models/pooling.h"

#include "models/embedding_set.h"
#include "nn/ops.h"

namespace miss::models {

nn::Tensor MaskedMeanPool(const nn::Tensor& seq,
                          const std::vector<float>& mask) {
  MISS_CHECK_EQ(seq.ndim(), 3);
  const int64_t b_dim = seq.dim(0);
  const int64_t l_dim = seq.dim(1);
  MISS_CHECK_EQ(static_cast<int64_t>(mask.size()), b_dim * l_dim);

  // Multiply by the mask (as a constant [B, L, 1] tensor), sum over time,
  // divide by valid counts.
  std::vector<float> mask_data(mask);
  nn::Tensor mask_tensor =
      nn::Tensor::FromData({b_dim, l_dim, 1}, std::move(mask_data));
  nn::Tensor summed = nn::SumAxis(nn::Mul(seq, mask_tensor), /*axis=*/1);

  std::vector<float> inv_counts(b_dim);
  for (int64_t b = 0; b < b_dim; ++b) {
    float count = 0.0f;
    for (int64_t l = 0; l < l_dim; ++l) count += mask[b * l_dim + l];
    inv_counts[b] = count > 0.0f ? 1.0f / count : 0.0f;
  }
  nn::Tensor inv = nn::Tensor::FromData({b_dim, 1}, std::move(inv_counts));
  return nn::Mul(summed, inv);
}

nn::Tensor FieldMatrix(const EmbeddingSet& embeddings,
                       const data::Batch& batch) {
  const int64_t b_dim = batch.batch_size;
  const int64_t k_dim = embeddings.dim();
  std::vector<nn::Tensor> parts;
  parts.push_back(embeddings.CategoricalEmbeddings(batch));  // [B, I, K]
  for (int64_t j = 0; j < batch.num_seq; ++j) {
    nn::Tensor pooled =
        MaskedMeanPool(embeddings.SequenceEmbeddings(batch, j),
                       batch.seq_mask);  // [B, K]
    parts.push_back(nn::Reshape(pooled, {b_dim, 1, k_dim}));
  }
  return nn::Concat(parts, /*axis=*/1);  // [B, I+J, K]
}

}  // namespace miss::models
