// Additional mainstream baselines referenced in the paper's related work:
// Wide&Deep (Cheng et al., DLRS 2016) and DSIN (Feng et al., IJCAI 2019).

#ifndef MISS_MODELS_EXTRA_MODELS_H_
#define MISS_MODELS_EXTRA_MODELS_H_

#include <memory>
#include <string>
#include <vector>

#include "models/ctr_model.h"
#include "nn/attention.h"
#include "nn/layers.h"
#include "nn/rnn.h"

namespace miss::models {

// Wide&Deep: a linear ("wide") component over the raw features plus a DNN
// ("deep") component over the embeddings, summed into one logit.
class WideDeepModel : public CtrModel {
 public:
  WideDeepModel(const data::DatasetSchema& schema, const ModelConfig& config,
                uint64_t seed);

  nn::Tensor Forward(const data::Batch& batch, bool training) override;
  std::string name() const override { return "Wide&Deep"; }

 private:
  std::unique_ptr<EmbeddingSet> wide_weights_;
  nn::Tensor bias_;
  std::unique_ptr<nn::Mlp> deep_;
};

// DSIN: Deep Session Interest Network. The behavior sequence is divided
// into sessions; a self-attention layer models the homogeneous interest
// within each session, a Bi-LSTM models the evolution across sessions, and
// candidate-aware attention pools both levels.
//
// The original segments sessions by 30-minute gaps; our Batch carries no
// timestamps, so sessions are fixed-length windows (`session_len`), which
// preserves the two-level intra/inter-session structure.
class DsinModel : public CtrModel {
 public:
  DsinModel(const data::DatasetSchema& schema, const ModelConfig& config,
            uint64_t seed, int64_t session_len = 5);

  nn::Tensor Forward(const data::Batch& batch, bool training) override;
  std::string name() const override { return "DSIN"; }

 private:
  int64_t session_len_;
  std::unique_ptr<nn::MultiHeadSelfAttention> intra_session_;
  std::unique_ptr<nn::LstmRunner> inter_forward_;
  std::unique_ptr<nn::LstmRunner> inter_backward_;
  std::unique_ptr<nn::Linear> inter_merge_;  // 2K -> K
  std::unique_ptr<nn::Mlp> deep_;
};

}  // namespace miss::models

#endif  // MISS_MODELS_EXTRA_MODELS_H_
