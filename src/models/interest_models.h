// User-interest-modeling baselines: DIN, DIEN, SIM(soft), DMR.

#ifndef MISS_MODELS_INTEREST_MODELS_H_
#define MISS_MODELS_INTEREST_MODELS_H_

#include <memory>
#include <string>
#include <vector>

#include "models/ctr_model.h"
#include "nn/layers.h"
#include "nn/rnn.h"

namespace miss::models {

// DIN's local activation unit (Zhou et al., KDD 2018): candidate-aware
// attention pooling over a behavior sequence. The attention net scores
// concat(e_cand, e_l, e_cand - e_l, e_cand * e_l) per position.
class LocalActivationUnit : public nn::Module {
 public:
  LocalActivationUnit(int64_t dim, common::Rng& rng);

  // seq: [B, L, K], candidate: [B, K], mask: [B, L] -> attention
  // probabilities [B, L] (masked softmax).
  nn::Tensor AttentionProbs(const nn::Tensor& seq, const nn::Tensor& candidate,
                            const std::vector<float>& mask) const;

  // Attention-weighted sum pooling -> [B, K].
  nn::Tensor Forward(const nn::Tensor& seq, const nn::Tensor& candidate,
                     const std::vector<float>& mask) const;

 private:
  std::unique_ptr<nn::Mlp> att_mlp_;  // 4K -> 36 -> 1
};

// DIN: local-activation-unit pooling of every behavior sequence against its
// candidate counterpart field, followed by an MLP with PReLU activations.
class DinModel : public CtrModel {
 public:
  DinModel(const data::DatasetSchema& schema, const ModelConfig& config,
           uint64_t seed);

  nn::Tensor Forward(const data::Batch& batch, bool training) override;
  std::string name() const override { return "DIN"; }

  bool SupportsRankSplit() const override;
  std::unique_ptr<RankContext> EncodeUser(const data::Batch& user) override;
  nn::Tensor ScoreCandidates(const RankContext& context,
                             const std::vector<int64_t>& candidates) override;

 private:
  std::vector<std::unique_ptr<LocalActivationUnit>> laups_;  // one per J
  std::unique_ptr<nn::Mlp> deep_;
};

// DIEN (Zhou et al., AAAI 2019): a GRU interest-extraction layer over the
// item sequence followed by an attention-updated GRU (AUGRU) interest
// evolution layer. (The optional auxiliary next-behavior loss is omitted;
// the paper's MISS experiments treat DIEN as a plain CTR baseline.)
class DienModel : public CtrModel {
 public:
  DienModel(const data::DatasetSchema& schema, const ModelConfig& config,
            uint64_t seed);

  nn::Tensor Forward(const data::Batch& batch, bool training) override;
  std::string name() const override { return "DIEN"; }

  bool SupportsRankSplit() const override;
  std::unique_ptr<RankContext> EncodeUser(const data::Batch& user) override;
  nn::Tensor ScoreCandidates(const RankContext& context,
                             const std::vector<int64_t>& candidates) override;

 private:
  std::unique_ptr<nn::GruRunner> extractor_;
  std::unique_ptr<nn::GruCell> evolution_;
  std::unique_ptr<nn::Mlp> deep_;
};

// SIM(soft) (Pi et al., CIKM 2020): soft-search retrieves the top-k
// behaviors by embedding inner product with the target, then applies
// DIN-style attention over the retrieved subsequence.
class SimModel : public CtrModel {
 public:
  SimModel(const data::DatasetSchema& schema, const ModelConfig& config,
           uint64_t seed);

  nn::Tensor Forward(const data::Batch& batch, bool training) override;
  std::string name() const override { return "SIM(soft)"; }

  bool SupportsRankSplit() const override;
  std::unique_ptr<RankContext> EncodeUser(const data::Batch& user) override;
  nn::Tensor ScoreCandidates(const RankContext& context,
                             const std::vector<int64_t>& candidates) override;

 private:
  std::unique_ptr<LocalActivationUnit> laup_;
  std::unique_ptr<nn::Mlp> deep_;
};

// DMR (Lyu et al., AAAI 2020): user-to-item and item-to-item relevance
// networks whose attention summaries and relevance scalars feed the CTR MLP.
class DmrModel : public CtrModel {
 public:
  DmrModel(const data::DatasetSchema& schema, const ModelConfig& config,
           uint64_t seed);

  nn::Tensor Forward(const data::Batch& batch, bool training) override;
  std::string name() const override { return "DMR"; }

  bool SupportsRankSplit() const override;
  std::unique_ptr<RankContext> EncodeUser(const data::Batch& user) override;
  nn::Tensor ScoreCandidates(const RankContext& context,
                             const std::vector<int64_t>& candidates) override;

 private:
  std::unique_ptr<LocalActivationUnit> u2i_;
  std::unique_ptr<nn::Linear> i2i_query_;
  std::unique_ptr<nn::Linear> i2i_key_;
  std::unique_ptr<nn::Mlp> deep_;
};

}  // namespace miss::models

#endif  // MISS_MODELS_INTEREST_MODELS_H_
