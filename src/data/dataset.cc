#include "data/dataset.h"

#include <algorithm>
#include <numeric>

#include "obs/trace.h"

namespace miss::data {

Batch MakeBatch(const Dataset& dataset, const std::vector<int64_t>& indices) {
  Batch batch;
  MakeBatchInto(dataset, indices, &batch);
  return batch;
}

void MakeBatchInto(const Dataset& dataset, const std::vector<int64_t>& indices,
                   Batch* out) {
  MISS_TRACE_SCOPE("data/make_batch");
  const DatasetSchema& schema = dataset.schema;
  Batch& batch = *out;
  batch.batch_size = static_cast<int64_t>(indices.size());
  batch.num_cat = schema.num_categorical();
  batch.num_seq = schema.num_sequential();
  batch.seq_len = schema.max_seq_len;

  const int64_t b_dim = batch.batch_size;
  const int64_t i_dim = batch.num_cat;
  const int64_t j_dim = batch.num_seq;
  const int64_t l_dim = batch.seq_len;

  batch.cat.assign(b_dim * i_dim, 0);
  batch.seq.assign(b_dim * j_dim * l_dim, -1);
  batch.seq_mask.assign(b_dim * l_dim, 0.0f);
  batch.labels.assign(b_dim, 0.0f);
  batch.lengths.assign(b_dim, 0);

  for (int64_t b = 0; b < b_dim; ++b) {
    const Sample& s = dataset.samples[indices[b]];
    MISS_CHECK_EQ(static_cast<int64_t>(s.cat.size()), i_dim);
    MISS_CHECK_EQ(static_cast<int64_t>(s.seq.size()), j_dim);
    for (int64_t i = 0; i < i_dim; ++i) batch.cat[b * i_dim + i] = s.cat[i];

    // Keep the most recent l_dim behaviors; all J sequences are aligned.
    const int64_t history = static_cast<int64_t>(s.seq.empty()
                                                     ? 0
                                                     : s.seq[0].size());
    const int64_t keep = std::min(history, l_dim);
    const int64_t skip = history - keep;
    batch.lengths[b] = keep;
    for (int64_t j = 0; j < j_dim; ++j) {
      MISS_CHECK_EQ(static_cast<int64_t>(s.seq[j].size()), history)
          << "sequential fields must be time-aligned";
      for (int64_t l = 0; l < keep; ++l) {
        batch.seq[(b * j_dim + j) * l_dim + l] = s.seq[j][skip + l];
      }
    }
    for (int64_t l = 0; l < keep; ++l) batch.seq_mask[b * l_dim + l] = 1.0f;
    batch.labels[b] = s.label;
  }
}

BatchPlan::BatchPlan(int64_t dataset_size, int64_t batch_size)
    : order_(dataset_size), batch_size_(batch_size) {
  MISS_CHECK_GT(batch_size, 0);
  std::iota(order_.begin(), order_.end(), 0);
}

void BatchPlan::Shuffle(common::Rng& rng) { rng.Shuffle(order_); }

int64_t BatchPlan::num_batches() const {
  return (static_cast<int64_t>(order_.size()) + batch_size_ - 1) / batch_size_;
}

std::vector<int64_t> BatchPlan::BatchIndices(int64_t b) const {
  const int64_t begin = b * batch_size_;
  const int64_t end = std::min(begin + batch_size_,
                               static_cast<int64_t>(order_.size()));
  MISS_CHECK_LT(begin, end);
  return std::vector<int64_t>(order_.begin() + begin, order_.begin() + end);
}

}  // namespace miss::data
