#include "data/log_loader.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/rng.h"

namespace miss::data {

namespace {

// Parses one CSV line into an Interaction. Returns false on malformed rows.
bool ParseLine(const std::string& line, Interaction* out) {
  std::istringstream stream(line);
  std::string field;
  int64_t values[4];
  for (int i = 0; i < 4; ++i) {
    if (!std::getline(stream, field, ',')) return false;
    char* end = nullptr;
    values[i] = std::strtoll(field.c_str(), &end, 10);
    if (end == field.c_str()) return false;
  }
  out->user = values[0];
  out->item = values[1];
  out->category = values[2];
  out->timestamp = values[3];
  return true;
}

bool LooksLikeHeader(const std::string& line) {
  for (char c : line) {
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')) return true;
  }
  return false;
}

// Densifies raw ids; returns the dense id, assigning the next one on first
// sight.
int64_t Densify(std::unordered_map<int64_t, int64_t>& mapping, int64_t raw) {
  auto [it, inserted] = mapping.emplace(raw, mapping.size());
  return it->second;
}

}  // namespace

bool ParseInteractionCsv(const std::string& content,
                         std::vector<Interaction>* out, std::string* error) {
  std::istringstream stream(content);
  std::string line;
  int64_t line_number = 0;
  bool first_data_line = true;
  while (std::getline(stream, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    Interaction interaction;
    if (!ParseLine(line, &interaction)) {
      // Tolerate a single header line at the top.
      if (first_data_line && LooksLikeHeader(line)) {
        first_data_line = false;
        continue;
      }
      if (error != nullptr) {
        *error = "malformed CSV at line " + std::to_string(line_number) +
                 ": " + line;
      }
      return false;
    }
    first_data_line = false;
    out->push_back(interaction);
  }
  return true;
}

bool LoadInteractionCsv(const std::string& path, std::vector<Interaction>* out,
                        std::string* error) {
  std::ifstream file(path);
  if (!file) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  return ParseInteractionCsv(buffer.str(), out, error);
}

DatasetBundle BuildFromInteractionLog(std::vector<Interaction> interactions,
                                      const LogToDatasetOptions& options) {
  // -- Frequency filtering (iterate until stable, as dropping users can
  //    push items under the threshold and vice versa) ------------------------
  bool changed = true;
  while (changed && !interactions.empty()) {
    std::unordered_map<int64_t, int64_t> user_count;
    std::unordered_map<int64_t, int64_t> item_count;
    for (const Interaction& x : interactions) {
      ++user_count[x.user];
      ++item_count[x.item];
    }
    std::vector<Interaction> kept;
    kept.reserve(interactions.size());
    for (const Interaction& x : interactions) {
      if (user_count[x.user] >= options.min_count &&
          item_count[x.item] >= options.min_count) {
        kept.push_back(x);
      }
    }
    changed = kept.size() != interactions.size();
    interactions = std::move(kept);
  }

  // -- Dense id remapping -----------------------------------------------------
  std::unordered_map<int64_t, int64_t> user_ids, item_ids, category_ids;
  std::unordered_map<int64_t, int64_t> item_category;  // dense item -> cat
  for (Interaction& x : interactions) {
    x.user = Densify(user_ids, x.user);
    x.item = Densify(item_ids, x.item);
    x.category = Densify(category_ids, x.category);
    item_category[x.item] = x.category;
  }

  // -- Group per user, chronological order ------------------------------------
  std::vector<std::vector<Interaction>> per_user(user_ids.size());
  for (const Interaction& x : interactions) per_user[x.user].push_back(x);
  for (auto& trace : per_user) {
    std::stable_sort(trace.begin(), trace.end(),
                     [](const Interaction& a, const Interaction& b) {
                       return a.timestamp < b.timestamp;
                     });
  }

  // -- Schema -----------------------------------------------------------------
  DatasetSchema schema;
  schema.name = options.name;
  schema.categorical = {
      {"user_id", static_cast<int64_t>(user_ids.size())},
      {"item_id", static_cast<int64_t>(item_ids.size())},
      {"category_id", static_cast<int64_t>(category_ids.size())},
  };
  schema.sequential = {
      {"item_seq", static_cast<int64_t>(item_ids.size())},
      {"category_seq", static_cast<int64_t>(category_ids.size())},
  };
  schema.seq_shares_table_with = {kFieldItem, kFieldCategory};
  schema.max_seq_len = options.max_seq_len;
  schema.Validate();

  DatasetBundle bundle;
  bundle.train.schema = schema;
  bundle.valid.schema = schema;
  bundle.test.schema = schema;

  // -- Leave-one-out splits with negative sampling ----------------------------
  common::Rng rng(options.seed);
  const int64_t num_items = static_cast<int64_t>(item_ids.size());
  int64_t emitted_users = 0;
  for (const auto& trace : per_user) {
    const int64_t n = static_cast<int64_t>(trace.size());
    if (n < 4) continue;  // the split needs >= 4 behaviors
    ++emitted_users;

    std::unordered_set<int64_t> interacted;
    for (const Interaction& x : trace) interacted.insert(x.item);

    auto emit = [&](int64_t target_pos, Dataset* out) {
      std::vector<int64_t> item_seq(target_pos);
      std::vector<int64_t> cat_seq(target_pos);
      for (int64_t l = 0; l < target_pos; ++l) {
        item_seq[l] = trace[l].item;
        cat_seq[l] = trace[l].category;
      }
      auto make_sample = [&](int64_t candidate, float label) {
        Sample s;
        s.cat = {trace[0].user, candidate, item_category[candidate]};
        s.seq = {item_seq, cat_seq};
        s.label = label;
        return s;
      };
      out->samples.push_back(make_sample(trace[target_pos].item, 1.0f));
      int64_t negative = rng.UniformInt(num_items);
      for (int attempts = 0;
           interacted.count(negative) > 0 && attempts < 100; ++attempts) {
        negative = rng.UniformInt(num_items);
      }
      out->samples.push_back(make_sample(negative, 0.0f));
    };

    emit(n - 3, &bundle.train);
    emit(n - 2, &bundle.valid);
    emit(n - 1, &bundle.test);
  }

  bundle.num_users = emitted_users;
  bundle.num_items = num_items;
  bundle.num_instances = bundle.train.size();
  bundle.num_features = schema.TotalFeatures();
  bundle.num_fields = schema.num_fields();
  return bundle;
}

}  // namespace miss::data
