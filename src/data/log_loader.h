// Real-data ingestion: builds CTR datasets from raw interaction logs using
// exactly the paper's preprocessing protocol (Section VI-A2):
//
//   * drop users/items with fewer than `min_count` interactions,
//   * sort each user's interactions chronologically,
//   * leave-one-out split: behaviors [1, L-3] train (predict L-2),
//     [1, L-2] validation (predict L-1), [1, L-1] test (predict L),
//   * one uniformly sampled non-interacted negative per positive.
//
// This is the path for reproducing the paper on the actual Amazon / Alipay
// dumps once they are available: convert them to the 4-column CSV below and
// feed them through BuildFromInteractionLog.
//
// CSV format (one interaction per line, '#' comments and a header allowed):
//   user_id,item_id,category_id,timestamp

#ifndef MISS_DATA_LOG_LOADER_H_
#define MISS_DATA_LOG_LOADER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/synthetic.h"

namespace miss::data {

struct Interaction {
  int64_t user = 0;
  int64_t item = 0;
  int64_t category = 0;
  int64_t timestamp = 0;
};

struct LogToDatasetOptions {
  // Users and items with fewer interactions are dropped (the paper uses 5
  // for Amazon-Cds, 10 for Amazon-Books and Alipay).
  int64_t min_count = 5;
  // Padded history length for batching.
  int64_t max_seq_len = 30;
  // Seed for negative sampling.
  uint64_t seed = 1;
  // Dataset name recorded in the schema.
  std::string name = "log";
};

// Parses the 4-column CSV. Returns false on malformed input; on success
// appends the parsed interactions to `out`.
bool LoadInteractionCsv(const std::string& path, std::vector<Interaction>* out,
                        std::string* error);

// In-memory variant of the parser (used by tests and embedding scenarios).
bool ParseInteractionCsv(const std::string& content,
                         std::vector<Interaction>* out, std::string* error);

// Applies the paper's preprocessing and emits the three splits. Raw ids are
// remapped to dense [0, vocab) ranges; users with fewer than 4 surviving
// interactions are dropped (the split needs 4). Statistics in the returned
// bundle follow Table III conventions.
DatasetBundle BuildFromInteractionLog(std::vector<Interaction> interactions,
                                      const LogToDatasetOptions& options);

}  // namespace miss::data

#endif  // MISS_DATA_LOG_LOADER_H_
