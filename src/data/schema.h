// Dataset schema: the multi-field layout of CTR samples (paper Section III).
//
// A sample carries I categorical features (user id, candidate item id,
// candidate category, context fields, ...) and J sequential features (the
// behavior history: item-id sequence, category sequence, ...), all encoded
// as integer ids into per-field vocabularies. A sequential field may share
// its vocabulary — and hence its embedding table — with a categorical field
// (e.g. the item-id sequence shares the candidate item-id table), which is
// what lets DIN-style attention and MISS's SSL shape the very embeddings the
// CTR tower consumes.

#ifndef MISS_DATA_SCHEMA_H_
#define MISS_DATA_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"

namespace miss::data {

struct FieldSpec {
  std::string name;
  int64_t vocab_size = 0;
};

struct DatasetSchema {
  std::string name;
  // Categorical (single-valued) fields, in sample order.
  std::vector<FieldSpec> categorical;
  // Sequential (multi-valued, chronologically ordered) fields.
  std::vector<FieldSpec> sequential;
  // For each sequential field, the index of the categorical field whose
  // vocabulary/embedding table it shares, or -1 for a private table.
  std::vector<int> seq_shares_table_with;
  // Maximum (padded) history length L. Longer histories are truncated to
  // their most recent L entries.
  int64_t max_seq_len = 0;

  int64_t num_categorical() const {
    return static_cast<int64_t>(categorical.size());
  }
  int64_t num_sequential() const {
    return static_cast<int64_t>(sequential.size());
  }
  // Total field count as reported in Table III (#Fields).
  int64_t num_fields() const { return num_categorical() + num_sequential(); }

  // The categorical field that varies per candidate in rank-K serving: the
  // counterpart of the primary behavior sequence (sequential field 0), or -1
  // when there is no shared-table behavior sequence to rank against.
  int CandidateField() const {
    if (seq_shares_table_with.empty()) return -1;
    return seq_shares_table_with[0];
  }

  // Total feature count (#Features in Table III): the number of distinct
  // feature ids across all vocabularies, counting shared tables once.
  int64_t TotalFeatures() const {
    int64_t total = 0;
    for (const auto& f : categorical) total += f.vocab_size;
    for (size_t j = 0; j < sequential.size(); ++j) {
      if (seq_shares_table_with[j] < 0) total += sequential[j].vocab_size;
    }
    return total;
  }

  void Validate() const {
    MISS_CHECK_EQ(sequential.size(), seq_shares_table_with.size());
    MISS_CHECK_GT(max_seq_len, 0);
    for (size_t j = 0; j < sequential.size(); ++j) {
      const int shared = seq_shares_table_with[j];
      if (shared >= 0) {
        MISS_CHECK_LT(shared, static_cast<int>(categorical.size()));
        MISS_CHECK_EQ(sequential[j].vocab_size,
                      categorical[shared].vocab_size)
            << "shared table vocab mismatch for field " << sequential[j].name;
      }
    }
  }
};

}  // namespace miss::data

#endif  // MISS_DATA_SCHEMA_H_
