#include "data/transforms.h"

#include <numeric>

namespace miss::data {

Dataset DownsampleTrain(const Dataset& dataset, double rate,
                        common::Rng& rng) {
  MISS_CHECK_GT(rate, 0.0);
  MISS_CHECK_LE(rate, 1.0);
  if (rate >= 1.0) return dataset;

  std::vector<int64_t> order(dataset.size());
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);
  const int64_t keep =
      std::max<int64_t>(1, static_cast<int64_t>(dataset.size() * rate));

  Dataset out;
  out.schema = dataset.schema;
  out.samples.reserve(keep);
  for (int64_t i = 0; i < keep; ++i) {
    out.samples.push_back(dataset.samples[order[i]]);
  }
  return out;
}

Dataset InjectLabelNoise(const Dataset& dataset, double rate,
                         common::Rng& rng) {
  MISS_CHECK_GE(rate, 0.0);
  MISS_CHECK_LE(rate, 1.0);
  Dataset out = dataset;
  if (rate == 0.0) return out;

  // Flip exactly round(rate * n) labels, uniformly chosen.
  std::vector<int64_t> order(out.size());
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);
  const int64_t flips = static_cast<int64_t>(out.size() * rate + 0.5);
  for (int64_t i = 0; i < flips; ++i) {
    float& label = out.samples[order[i]].label;
    label = 1.0f - label;
  }
  return out;
}

}  // namespace miss::data
