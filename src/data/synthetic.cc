#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <utility>

#include "common/rng.h"

namespace miss::data {

namespace {

int64_t Scaled(int64_t base, double scale) {
  return std::max<int64_t>(4, static_cast<int64_t>(std::llround(base * scale)));
}

}  // namespace

SyntheticConfig SyntheticConfig::AmazonCds(double scale) {
  SyntheticConfig c;
  c.name = "amazon-cds";
  c.num_users = Scaled(3000, scale);
  c.num_items = Scaled(6000, scale);
  c.num_categories = Scaled(60, scale);
  c.num_sellers = 0;
  c.interests_min = 3;
  c.interests_max = 6;
  c.seq_len_min = 18;
  c.seq_len_max = 36;
  c.switch_prob = 0.22;
  c.behavior_noise = 0.08;
  c.max_seq_len = 30;
  c.seed = 101;
  return c;
}

SyntheticConfig SyntheticConfig::AmazonBooks(double scale) {
  SyntheticConfig c;
  c.name = "amazon-books";
  c.num_users = Scaled(4500, scale);
  c.num_items = Scaled(9000, scale);
  c.num_categories = Scaled(90, scale);
  c.num_sellers = 0;
  c.interests_min = 3;
  c.interests_max = 7;
  c.seq_len_min = 20;
  c.seq_len_max = 40;
  c.switch_prob = 0.22;
  c.behavior_noise = 0.08;
  c.max_seq_len = 30;
  c.seed = 202;
  return c;
}

SyntheticConfig SyntheticConfig::Alipay(double scale) {
  SyntheticConfig c;
  c.name = "alipay";
  c.num_users = Scaled(6000, scale);
  c.num_items = Scaled(6000, scale);
  c.num_categories = Scaled(80, scale);
  c.num_sellers = Scaled(300, scale);
  // Six months of logs vs ten years of reviews: far fewer latent interests
  // per user (the paper's explanation for the smaller MISS gains here).
  c.interests_min = 1;
  c.interests_max = 3;
  c.seq_len_min = 12;
  c.seq_len_max = 24;
  c.switch_prob = 0.10;
  c.behavior_noise = 0.05;
  c.max_seq_len = 20;
  c.seed = 303;
  return c;
}

SyntheticConfig SyntheticConfig::Tiny() {
  SyntheticConfig c;
  c.name = "tiny";
  c.num_users = 200;
  c.num_items = 120;
  c.num_categories = 8;
  c.num_sellers = 0;
  c.interests_min = 2;
  c.interests_max = 3;
  c.seq_len_min = 8;
  c.seq_len_max = 14;
  c.switch_prob = 0.2;
  c.behavior_noise = 0.05;
  c.max_seq_len = 12;
  c.seed = 7;
  return c;
}

DatasetSchema MakeSchema(const SyntheticConfig& config) {
  DatasetSchema schema;
  schema.name = config.name;
  schema.categorical = {
      {"user_id", config.num_users},
      {"item_id", config.num_items},
      {"category_id", config.num_categories},
  };
  if (config.num_sellers > 0) {
    schema.categorical.push_back({"seller_id", config.num_sellers});
    schema.categorical.push_back({"weekday", 7});
  }
  schema.sequential = {
      {"item_seq", config.num_items},
      {"category_seq", config.num_categories},
  };
  schema.seq_shares_table_with = {kFieldItem, kFieldCategory};
  schema.max_seq_len = config.max_seq_len;
  schema.Validate();
  return schema;
}

namespace {

// World state shared by all users: item -> topic/category/seller
// assignments. Latent interests are topics; observable categories agree
// with topics only up to `category_purity` (see synthetic.h).
struct ItemWorld {
  std::vector<int64_t> item_topic;
  std::vector<int64_t> item_category;
  std::vector<int64_t> item_seller;
  // Items grouped by latent topic for interest-conditioned sampling.
  std::vector<std::vector<int64_t>> topic_items;
  int64_t num_topics = 0;
};

ItemWorld BuildWorld(const SyntheticConfig& config, common::Rng& rng) {
  ItemWorld world;
  world.num_topics = config.num_topics > 0
                         ? config.num_topics
                         : std::max<int64_t>(2, config.num_categories);
  world.item_topic.resize(config.num_items);
  world.item_category.resize(config.num_items);
  world.item_seller.resize(config.num_items);
  world.topic_items.resize(world.num_topics);

  // Zipf-ish topic sizes: popular topics hold more items, mirroring the
  // Matthew effect discussed in the paper's limitation analysis. Each topic
  // has a primary observable category.
  std::vector<double> weights(world.num_topics);
  std::vector<int64_t> topic_primary_category(world.num_topics);
  for (int64_t t = 0; t < world.num_topics; ++t) {
    weights[t] =
        1.0 / std::pow(static_cast<double>(t + 1), config.category_skew);
    topic_primary_category[t] = rng.UniformInt(config.num_categories);
  }
  for (int64_t v = 0; v < config.num_items; ++v) {
    const int64_t t = rng.Categorical(weights);
    world.item_topic[v] = t;
    world.topic_items[t].push_back(v);
    world.item_category[v] = rng.Bernoulli(config.category_purity)
                                 ? topic_primary_category[t]
                                 : rng.UniformInt(config.num_categories);
    world.item_seller[v] =
        config.num_sellers > 0 ? rng.UniformInt(config.num_sellers) : 0;
  }
  // Guarantee every topic is non-empty so interest sampling can't stall.
  for (int64_t t = 0; t < world.num_topics; ++t) {
    if (world.topic_items[t].empty()) {
      const int64_t v = rng.UniformInt(config.num_items);
      auto& old_pool = world.topic_items[world.item_topic[v]];
      old_pool.erase(std::find(old_pool.begin(), old_pool.end(), v));
      world.item_topic[v] = t;
      world.topic_items[t].push_back(v);
    }
  }
  return world;
}

struct UserTrace {
  std::vector<int64_t> items;  // chronological behaviors
  std::unordered_set<int64_t> interacted;
};

UserTrace GenerateTrace(const SyntheticConfig& config, const ItemWorld& world,
                        common::Rng& rng) {
  UserTrace trace;
  // Clamp to the topic count: at small MISS_SCALE the scaled-down world can
  // hold fewer topics than interests_max, and drawing more distinct topics
  // than exist would spin forever.
  const int64_t n_interests = std::min(
      world.num_topics, rng.UniformInt(config.interests_min, config.interests_max));
  std::vector<int64_t> interests;  // latent topics
  interests.reserve(n_interests);
  while (static_cast<int64_t>(interests.size()) < n_interests) {
    const int64_t t = rng.UniformInt(world.num_topics);
    if (std::find(interests.begin(), interests.end(), t) == interests.end()) {
      interests.push_back(t);
    }
  }

  const int64_t n =
      std::max<int64_t>(4, rng.UniformInt(config.seq_len_min,
                                          config.seq_len_max));
  int64_t current = rng.UniformInt(static_cast<int64_t>(interests.size()));
  trace.items.reserve(n);
  for (int64_t t = 0; t < n; ++t) {
    if (interests.size() > 1 && rng.Bernoulli(config.switch_prob)) {
      int64_t next = rng.UniformInt(static_cast<int64_t>(interests.size()));
      while (next == current) {
        next = rng.UniformInt(static_cast<int64_t>(interests.size()));
      }
      current = next;
    }
    int64_t item;
    if (rng.Bernoulli(config.behavior_noise)) {
      item = rng.UniformInt(config.num_items);  // spurious click
    } else {
      const auto& pool = world.topic_items[interests[current]];
      item = pool[rng.UniformInt(static_cast<int64_t>(pool.size()))];
    }
    trace.items.push_back(item);
    trace.interacted.insert(item);
  }
  return trace;
}

// Builds the (positive, negative) sample pair for one user and one split.
// `target_pos` indexes the behavior used as the positive candidate; the
// history is everything before it.
void EmitSamples(const SyntheticConfig& config, const ItemWorld& world,
                 const UserTrace& trace, int64_t user, int64_t target_pos,
                 common::Rng& rng, Dataset* out) {
  const int64_t history_len = target_pos;
  MISS_CHECK_GE(history_len, 1);

  std::vector<int64_t> item_seq(trace.items.begin(),
                                trace.items.begin() + history_len);
  std::vector<int64_t> cat_seq(history_len);
  for (int64_t l = 0; l < history_len; ++l) {
    cat_seq[l] = world.item_category[item_seq[l]];
  }

  const int64_t weekday = rng.UniformInt(7);
  auto make_sample = [&](int64_t candidate, float label) {
    Sample s;
    s.cat = {user, candidate, world.item_category[candidate]};
    if (config.num_sellers > 0) {
      s.cat.push_back(world.item_seller[candidate]);
      s.cat.push_back(weekday);
    }
    s.seq = {item_seq, cat_seq};
    s.label = label;
    return s;
  };

  // Positive: the actual next behavior.
  out->samples.push_back(make_sample(trace.items[target_pos], 1.0f));

  // Negative: a uniformly random non-interacted item.
  int64_t negative = rng.UniformInt(config.num_items);
  for (int attempts = 0;
       trace.interacted.count(negative) > 0 && attempts < 100; ++attempts) {
    negative = rng.UniformInt(config.num_items);
  }
  out->samples.push_back(make_sample(negative, 0.0f));
}

}  // namespace

DatasetBundle GenerateSynthetic(const SyntheticConfig& config) {
  MISS_CHECK_GE(config.seq_len_min, 4)
      << "leave-one-out split needs >= 4 behaviors";
  common::Rng rng(config.seed);
  const ItemWorld world = BuildWorld(config, rng);
  const DatasetSchema schema = MakeSchema(config);

  DatasetBundle bundle;
  bundle.train.schema = schema;
  bundle.valid.schema = schema;
  bundle.test.schema = schema;

  for (int64_t user = 0; user < config.num_users; ++user) {
    const UserTrace trace = GenerateTrace(config, world, rng);
    const int64_t n = static_cast<int64_t>(trace.items.size());
    // Chronological split (Section VI-A2): targets n-3 / n-2 / n-1
    // (0-indexed) for train / valid / test.
    EmitSamples(config, world, trace, user, n - 3, rng, &bundle.train);
    EmitSamples(config, world, trace, user, n - 2, rng, &bundle.valid);
    EmitSamples(config, world, trace, user, n - 1, rng, &bundle.test);
  }

  bundle.num_users = config.num_users;
  bundle.num_items = config.num_items;
  bundle.num_instances = bundle.train.size();
  bundle.num_features = schema.TotalFeatures();
  bundle.num_fields = schema.num_fields();
  return bundle;
}

}  // namespace miss::data
