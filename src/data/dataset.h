// In-memory datasets and padded mini-batches.

#ifndef MISS_DATA_DATASET_H_
#define MISS_DATA_DATASET_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "data/schema.h"

namespace miss::data {

// One training/eval sample: a (user, candidate, context, history) tuple with
// a click label. All J sequences are time-aligned and equally long.
struct Sample {
  std::vector<int64_t> cat;               // size I
  std::vector<std::vector<int64_t>> seq;  // J x history_len
  float label = 0.0f;
};

struct Dataset {
  DatasetSchema schema;
  std::vector<Sample> samples;

  int64_t size() const { return static_cast<int64_t>(samples.size()); }
};

// A padded, dense mini-batch. Sequence padding uses id -1 (zero embedding,
// no gradient); `seq_mask` marks valid positions.
struct Batch {
  int64_t batch_size = 0;  // B
  int64_t num_cat = 0;     // I
  int64_t num_seq = 0;     // J
  int64_t seq_len = 0;     // L

  std::vector<int64_t> cat;      // B x I
  std::vector<int64_t> seq;      // B x J x L, -1 = padding
  std::vector<float> seq_mask;   // B x L, shared by all J fields
  std::vector<float> labels;     // B
  std::vector<int64_t> lengths;  // B, valid history length per sample
};

// Assembles the samples at `indices` into a padded batch. Histories longer
// than schema.max_seq_len are truncated to their most recent entries.
Batch MakeBatch(const Dataset& dataset, const std::vector<int64_t>& indices);

// As MakeBatch, but assembles into *out, reusing its buffers' capacity. A
// serving worker that stages every micro-batch through one long-lived Batch
// allocates nothing here in steady state.
void MakeBatchInto(const Dataset& dataset, const std::vector<int64_t>& indices,
                   Batch* out);

// Yields shuffled (or sequential) index slices of size <= batch_size
// covering the dataset once per epoch.
class BatchPlan {
 public:
  BatchPlan(int64_t dataset_size, int64_t batch_size);

  // Deterministically reshuffles sample order for a new epoch.
  void Shuffle(common::Rng& rng);

  int64_t num_batches() const;
  // Index list of batch `b` in the current order.
  std::vector<int64_t> BatchIndices(int64_t b) const;

 private:
  std::vector<int64_t> order_;
  int64_t batch_size_;
};

}  // namespace miss::data

#endif  // MISS_DATA_DATASET_H_
