// Training-set perturbations used by the case studies:
//   * down-sampling for the label-sparsity analysis (Table X);
//   * label swapping for the label-noise analysis (Table XI).
// Validation and test sets are never transformed (paper Section VI-E).

#ifndef MISS_DATA_TRANSFORMS_H_
#define MISS_DATA_TRANSFORMS_H_

#include "common/rng.h"
#include "data/dataset.h"

namespace miss::data {

// Keeps a uniformly sampled `rate` fraction of the samples (rate in (0, 1]).
Dataset DownsampleTrain(const Dataset& dataset, double rate,
                        common::Rng& rng);

// Flips the label of a uniformly chosen `rate` fraction of the samples
// ("randomly swapping the labels at an indicated proportion").
Dataset InjectLabelNoise(const Dataset& dataset, double rate,
                         common::Rng& rng);

}  // namespace miss::data

#endif  // MISS_DATA_TRANSFORMS_H_
