// Synthetic multi-interest behavior data.
//
// The paper evaluates on Amazon-Cds, Amazon-Books (review crawls) and Alipay
// (IJCAI-16 logs), none of which are available offline. This generator is
// the substitution documented in DESIGN.md §2: a latent multi-interest
// generative model that plants exactly the structures MISS exploits —
//
//   * every user has a small set of latent interests (item categories);
//   * behaviors arrive as a regime-switching process over those interests,
//     so behaviors of one interest cluster on the time line (the paper's
//     closeness assumption) while interests interleave at larger distances
//     (long-range dependencies);
//   * a fraction of behaviors are uniform-random noise (spurious clicks);
//   * held-out positives are real next behaviors; negatives are uniformly
//     sampled non-interacted items (which occasionally match a latent
//     interest: inherent label noise);
//   * one positive + one negative per user per split: label sparsity.
//
// The chronological leave-one-out split follows the paper (Section VI-A2):
// behaviors [1, L-3] train -> predict item L-2; [1, L-2] -> L-1 (valid);
// [1, L-1] -> L (test).

#ifndef MISS_DATA_SYNTHETIC_H_
#define MISS_DATA_SYNTHETIC_H_

#include <cstdint>
#include <string>

#include "data/dataset.h"

namespace miss::data {

// Categorical field indices shared by all synthetic profiles.
inline constexpr int kFieldUser = 0;
inline constexpr int kFieldItem = 1;
inline constexpr int kFieldCategory = 2;
inline constexpr int kFieldSeller = 3;   // Alipay-style profiles only
inline constexpr int kFieldWeekday = 4;  // Alipay-style profiles only

// Sequential field indices.
inline constexpr int kSeqItem = 0;
inline constexpr int kSeqCategory = 1;

struct SyntheticConfig {
  std::string name;
  int64_t num_users = 0;
  int64_t num_items = 0;
  int64_t num_categories = 0;
  // 0 disables the seller/weekday context fields (5-field Amazon layout);
  // > 0 enables them (7-field Alipay layout).
  int64_t num_sellers = 0;
  // Latent interests per user, inclusive range.
  int64_t interests_min = 2;
  int64_t interests_max = 5;
  // Generated behavior count per user, inclusive range (>= 4 required by
  // the leave-one-out split).
  int64_t seq_len_min = 12;
  int64_t seq_len_max = 30;
  // Probability of switching to another of the user's interests after each
  // behavior. Lower values -> longer same-interest runs.
  double switch_prob = 0.2;
  // Probability that a behavior is a uniform-random item (spurious click).
  double behavior_noise = 0.08;
  // Zipf exponent shaping category sizes (0 = uniform).
  double category_skew = 1.0;
  // Latent interests are TOPICS, not categories: a topic is a cluster of
  // items whose observable category labels only partially agree. With
  // probability `category_purity` an item carries its topic's primary
  // category; otherwise a uniform random category. This mirrors the paper's
  // observation that "item categories are usually defined in coarse
  // granularities" and motivates learning implicit interests. 1.0 makes
  // categories perfect interest markers; ~0.5 is realistic.
  double category_purity = 0.8;
  // Number of latent topics; 0 derives 1.5x num_categories.
  int64_t num_topics = 0;
  // Padded history length L used for batching.
  int64_t max_seq_len = 30;
  uint64_t seed = 2022;

  // Profiles mirroring the paper's three datasets at laptop scale. `scale`
  // multiplies user/item/category counts (benches read MISS_SCALE).
  static SyntheticConfig AmazonCds(double scale = 1.0);
  static SyntheticConfig AmazonBooks(double scale = 1.0);
  static SyntheticConfig Alipay(double scale = 1.0);
  // Minimal profile for unit tests.
  static SyntheticConfig Tiny();
};

struct DatasetBundle {
  Dataset train;
  Dataset valid;
  Dataset test;
  // Table III statistics.
  int64_t num_users = 0;
  int64_t num_items = 0;
  int64_t num_instances = 0;  // training instances (2 per user)
  int64_t num_features = 0;
  int64_t num_fields = 0;
};

// Builds the schema implied by a config (without generating data).
DatasetSchema MakeSchema(const SyntheticConfig& config);

// Generates the three chronological splits. Deterministic in config.seed.
DatasetBundle GenerateSynthetic(const SyntheticConfig& config);

}  // namespace miss::data

#endif  // MISS_DATA_SYNTHETIC_H_
