// Self-describing model bundles: one directory holding everything a fresh
// process needs to reconstruct a trained model and score traffic with it.
//
//   <dir>/manifest.json   model factory key, seed, dataset schema, and the
//                         ModelConfig hyper-parameters (JSON, format_version)
//   <dir>/params.ckpt     the nn/serialize checkpoint of Parameters()
//
// SaveBundle exports a factory-built model (models::CreateModel records its
// key/seed on the instance); LoadBundle re-reads the manifest, rebuilds the
// identical architecture through the factory, and warm-loads the checkpoint,
// so scores before export and after reload are bitwise identical.

#ifndef MISS_SERVE_BUNDLE_H_
#define MISS_SERVE_BUNDLE_H_

#include <memory>
#include <string>

#include "models/ctr_model.h"
#include "nn/plan.h"
#include "obs/health.h"

namespace miss::serve {

// Bumped when the manifest layout changes; LoadBundle rejects newer files
// but accepts every older version (v1 bundles simply lack the model-health
// baseline block added in v2).
inline constexpr int64_t kBundleFormatVersion = 2;

inline constexpr char kManifestFileName[] = "manifest.json";
inline constexpr char kParamsFileName[] = "params.ckpt";

// A reloaded bundle: the reconstructed model plus the manifest fields needed
// to assemble compatible batches (the schema lives in model->schema()).
struct Bundle {
  std::unique_ptr<models::CtrModel> model;
  std::string model_name;  // factory key, e.g. "din"
  uint64_t seed = 0;
  // Training-time model-health baseline (format v2+); null for v1 bundles
  // or v2 bundles saved without one — drift reporting is then disabled.
  std::shared_ptr<const obs::ModelBaseline> baseline;
  // Compiled inference plans for the model (see nn/plan.h), present when
  // LoadBundle ran with compile_plans. A plan-incompatible model still loads
  // — plans->compatible() is then false and engines keep the dynamic path.
  // Shared so engine configs can reference it across a hot-reload swap.
  std::shared_ptr<const nn::PlanSet> plans;
};

struct LoadBundleOptions {
  // Trace + compile the model's forward into per-bucket inference plans at
  // load (see nn::PlanSet::Compile). Adds a few probe forwards per bucket to
  // load time; serving then executes compatible models through the plans.
  bool compile_plans = false;
  nn::PlanCompileOptions plan_options;
};

// Writes manifest.json + params.ckpt for `model` into `dir` (created,
// including parents, when missing). The model must come from
// models::CreateModel so its factory key is known. When `baseline` is
// non-null it is embedded in the manifest so serving can monitor drift.
// Returns false on I/O failure, logging the reason.
bool SaveBundle(const models::CtrModel& model, const std::string& dir);
bool SaveBundle(const models::CtrModel& model, const std::string& dir,
                const obs::ModelBaseline* baseline);

// Rebuilds the bundled model in-process. Returns false — logging which
// stage failed (manifest parse, factory mismatch, checkpoint shape) — and
// leaves `*out` empty on any error.
bool LoadBundle(const std::string& dir, Bundle* out);
bool LoadBundle(const std::string& dir, const LoadBundleOptions& options,
                Bundle* out);

}  // namespace miss::serve

#endif  // MISS_SERVE_BUNDLE_H_
