#include "serve/health.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace miss::serve {

namespace {

// Live per-feature slot layout: the baseline's top-K ids individually, then
// one "other" slot (seen at training time but not top-K), then one OOV slot.
int OtherSlot(const obs::FeatureBaseline& fb) {
  return static_cast<int>(fb.top_ids.size());
}
int OovSlot(const obs::FeatureBaseline& fb) {
  return static_cast<int>(fb.top_ids.size()) + 1;
}

const obs::FeatureBaseline* FindFeatureBaseline(
    const obs::ModelBaseline* baseline, const std::string& name,
    bool sequential) {
  if (baseline == nullptr) return nullptr;
  for (const obs::FeatureBaseline& f : baseline->features) {
    if (f.name == name && f.sequential == sequential) return &f;
  }
  return nullptr;
}

int ResolveScoreBuckets(const obs::ModelBaseline* baseline,
                        const ModelHealthOptions& options) {
  // The live score sketch must share the baseline's geometry or PSI would
  // compare mismatched buckets; the manifest wins over the option.
  if (baseline != nullptr && baseline->score_buckets > 0) {
    return static_cast<int>(baseline->score_buckets);
  }
  return options.score_buckets;
}

double BaselineScoreMean(const obs::ModelBaseline& b) {
  int64_t total = 0;
  double weighted = 0.0;
  const int nb = static_cast<int>(b.score_counts.size());
  for (int i = 0; i < nb; ++i) {
    total += b.score_counts[i];
    weighted += static_cast<double>(b.score_counts[i]) *
                ((static_cast<double>(i) + 0.5) / static_cast<double>(nb));
  }
  return total > 0 ? weighted / static_cast<double>(total) : 0.0;
}

// Collapses live slot counts (top-K..., other, oov) into the K+1 categories
// the baseline knows about: OOV mass drifts into "other".
std::vector<int64_t> LiveVsBaselineCounts(const obs::FeatureBaseline& fb,
                                          const std::vector<int64_t>& live) {
  std::vector<int64_t> out(fb.top_ids.size() + 1, 0);
  for (size_t k = 0; k < fb.top_ids.size(); ++k) out[k] = live[k];
  out[fb.top_ids.size()] =
      live[static_cast<size_t>(OtherSlot(fb))] +
      live[static_cast<size_t>(OovSlot(fb))];
  return out;
}

std::vector<int64_t> BaselineCounts(const obs::FeatureBaseline& fb) {
  std::vector<int64_t> out(fb.top_counts);
  out.push_back(fb.other);
  return out;
}

void WriteCalibrationBuckets(obs::JsonWriter& w,
                             const std::vector<obs::CalibrationBucket>& rows) {
  const int nb = static_cast<int>(rows.size());
  w.BeginArray();
  for (int i = 0; i < nb; ++i) {
    const obs::CalibrationBucket& b = rows[static_cast<size_t>(i)];
    w.BeginObject();
    w.Key("lo").Number(static_cast<double>(i) / nb);
    w.Key("hi").Number(static_cast<double>(i + 1) / nb);
    w.Key("count").Int(b.count);
    if (b.count > 0) {
      const double n = static_cast<double>(b.count);
      w.Key("mean_predicted").Number(b.sum_predicted / n);
      w.Key("observed_ctr").Number(static_cast<double>(b.positives) / n);
    }
    w.EndObject();
  }
  w.EndArray();
}

}  // namespace

ModelHealthMonitor::ModelHealthMonitor(
    const data::DatasetSchema& schema,
    std::shared_ptr<const obs::ModelBaseline> baseline,
    const ModelHealthOptions& options)
    : schema_(schema),
      baseline_(std::move(baseline)),
      options_(options),
      metric_tag_(options.metric_model.empty()
                      ? ""
                      : "|model=" + options.metric_model),
      score_dist_(ResolveScoreBuckets(baseline_.get(), options), 0.0, 1.0,
                  options.num_windows, options.window_ns),
      auc_pos_(options.auc_buckets, 0.0, 1.0, options.num_windows,
               options.window_ns),
      auc_neg_(options.auc_buckets, 0.0, 1.0, options.num_windows,
               options.window_ns),
      calibration_(options.calibration_buckets, options.num_windows,
                   options.window_ns) {
  MISS_CHECK_GT(options.feedback_capacity, 0u);
  feedback_slots_.resize(options.feedback_capacity);

  auto add_feature = [&](const data::FieldSpec& spec, bool sequential) {
    FeatureState state;
    state.name = spec.name;
    state.sequential = sequential;
    state.baseline =
        FindFeatureBaseline(baseline_.get(), spec.name, sequential);
    if (state.baseline != nullptr) {
      const obs::FeatureBaseline& fb = *state.baseline;
      state.num_slots = static_cast<int>(fb.top_ids.size()) + 2;
      const int32_t other = static_cast<int32_t>(OtherSlot(fb));
      const int32_t oov = static_cast<int32_t>(OovSlot(fb));
      // Without an exact seen set, unseen ids are indistinguishable from
      // rare seen ids, so everything non-top lands in "other".
      state.slot_of_id.assign(static_cast<size_t>(spec.vocab_size),
                              fb.seen_exact ? oov : other);
      for (int64_t id : fb.seen_ids) {
        if (id >= 0 && id < spec.vocab_size) {
          state.slot_of_id[static_cast<size_t>(id)] = other;
        }
      }
      for (size_t k = 0; k < fb.top_ids.size(); ++k) {
        const int64_t id = fb.top_ids[k];
        if (id >= 0 && id < spec.vocab_size) {
          state.slot_of_id[static_cast<size_t>(id)] =
              static_cast<int32_t>(k);
        }
      }
      state.live = std::make_unique<obs::FixedDistribution>(
          state.num_slots, 0.0, static_cast<double>(state.num_slots),
          options_.num_windows, options_.window_ns);
    }
    features_.push_back(std::move(state));
  };
  for (const data::FieldSpec& spec : schema_.categorical) {
    add_feature(spec, /*sequential=*/false);
  }
  for (const data::FieldSpec& spec : schema_.sequential) {
    add_feature(spec, /*sequential=*/true);
  }
}

void ModelHealthMonitor::RecordBatch(const std::vector<data::Sample>& samples,
                                     const std::vector<float>& scores) {
  if (!obs::Enabled()) return;
  const size_t n = std::min(samples.size(), scores.size());
  if (n == 0) return;
  const int64_t now_ns = obs::NowNs();
  for (size_t i = 0; i < n; ++i) {
    score_dist_.RecordAt(static_cast<double>(scores[i]), now_ns);
  }

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("health/scores" + metric_tag_).Add(static_cast<int64_t>(n));
  if (baseline_ == nullptr) return;

  int64_t total_oov = 0;
  const size_t num_cat = schema_.categorical.size();
  std::vector<int64_t> slot_counts;
  for (size_t f = 0; f < features_.size(); ++f) {
    FeatureState& state = features_[f];
    if (state.live == nullptr) continue;
    const obs::FeatureBaseline& fb = *state.baseline;
    const size_t oov = static_cast<size_t>(OovSlot(fb));
    slot_counts.assign(static_cast<size_t>(state.num_slots), 0);
    const int64_t vocab = static_cast<int64_t>(state.slot_of_id.size());
    auto count_id = [&](int64_t id) {
      if (id < 0) return;  // padding / absent
      const size_t slot = id < vocab
                              ? static_cast<size_t>(
                                    state.slot_of_id[static_cast<size_t>(id)])
                              : oov;
      ++slot_counts[slot];
    };
    if (!state.sequential) {
      for (size_t i = 0; i < n; ++i) {
        if (f < samples[i].cat.size()) count_id(samples[i].cat[f]);
      }
    } else {
      const size_t j = f - num_cat;
      for (size_t i = 0; i < n; ++i) {
        if (j < samples[i].seq.size()) {
          for (int64_t id : samples[i].seq[j]) count_id(id);
        }
      }
    }
    state.live->MergeCountsAt(slot_counts, now_ns);
    const int64_t oov_here = slot_counts[oov];
    if (oov_here > 0) {
      total_oov += oov_here;
      reg.GetCounter("health/oov/" + state.name + metric_tag_).Add(oov_here);
    }
  }
  if (total_oov > 0) {
    reg.GetCounter("health/oov" + metric_tag_).Add(total_oov);
    reg.GetSlidingCounter("health/oov" + metric_tag_).Add(total_oov);
  }
}

void ModelHealthMonitor::RememberScore(uint64_t request_id, float score) {
  if (!obs::Enabled()) return;
  std::lock_guard<std::mutex> lock(feedback_mu_);
  FeedbackSlot& slot =
      feedback_slots_[request_id % feedback_slots_.size()];
  slot.request_id = request_id;
  slot.score = score;
  slot.used = true;
}

bool ModelHealthMonitor::Feedback(uint64_t request_id, float label) {
  if (!obs::Enabled()) return false;
  const bool positive = label >= 0.5f;
  float score = 0.0f;
  bool matched = false;
  {
    std::lock_guard<std::mutex> lock(feedback_mu_);
    ++feedback_received_;
    FeedbackSlot& slot =
        feedback_slots_[request_id % feedback_slots_.size()];
    if (slot.used && slot.request_id == request_id) {
      matched = true;
      score = slot.score;
      // Consume the slot: one label per scored request.
      slot.used = false;
      ++feedback_matched_;
      if (positive) ++feedback_positives_;
    }
  }
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("health/feedback/received" + metric_tag_).Add(1);
  if (!matched) return false;
  reg.GetCounter("health/feedback/matched" + metric_tag_).Add(1);
  calibration_.Record(static_cast<double>(score), positive);
  if (positive) {
    auc_pos_.Record(static_cast<double>(score));
  } else {
    auc_neg_.Record(static_cast<double>(score));
  }
  return true;
}

int64_t ModelHealthMonitor::feedback_received() const {
  std::lock_guard<std::mutex> lock(feedback_mu_);
  return feedback_received_;
}

int64_t ModelHealthMonitor::feedback_matched() const {
  std::lock_guard<std::mutex> lock(feedback_mu_);
  return feedback_matched_;
}

void ModelHealthMonitor::AppendFeatureJson(obs::JsonWriter& w,
                                           int64_t now_ns) const {
  // Sorted by lifetime PSI descending so the top drift offenders lead.
  struct Row {
    const FeatureState* state;
    double psi;
    double psi_window;
    std::vector<int64_t> live;
    std::vector<int64_t> live_window;
  };
  std::vector<Row> rows;
  for (const FeatureState& state : features_) {
    if (state.live == nullptr) continue;
    Row row;
    row.state = &state;
    row.live = state.live->Counts();
    row.live_window = state.live->WindowCountsAt(now_ns);
    const std::vector<int64_t> expected = BaselineCounts(*state.baseline);
    row.psi = obs::Psi(expected, LiveVsBaselineCounts(*state.baseline,
                                                      row.live));
    row.psi_window = obs::Psi(
        expected, LiveVsBaselineCounts(*state.baseline, row.live_window));
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.psi > b.psi; });

  w.BeginArray();
  for (const Row& row : rows) {
    const obs::FeatureBaseline& fb = *row.state->baseline;
    int64_t total = 0;
    for (int64_t c : row.live) total += c;
    int64_t window_total = 0;
    for (int64_t c : row.live_window) window_total += c;
    const int64_t oov = row.live[static_cast<size_t>(OovSlot(fb))];
    const int64_t window_oov =
        row.live_window[static_cast<size_t>(OovSlot(fb))];
    w.BeginObject();
    w.Key("name").String(row.state->name);
    w.Key("sequential").Bool(row.state->sequential);
    w.Key("psi").Number(row.psi);
    w.Key("psi_window").Number(row.psi_window);
    w.Key("total").Int(total);
    w.Key("oov").Int(oov);
    w.Key("oov_rate")
        .Number(total > 0 ? static_cast<double>(oov) /
                                static_cast<double>(total)
                          : 0.0);
    w.Key("oov_exact").Bool(fb.seen_exact);
    w.Key("window_total").Int(window_total);
    w.Key("window_oov").Int(window_oov);
    w.EndObject();
  }
  w.EndArray();
}

std::string ModelHealthMonitor::ModelzJson() const {
  return ModelzJsonAt(obs::NowNs());
}

std::string ModelHealthMonitor::ModelzJsonAt(int64_t now_ns) const {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("enabled").Bool(obs::Enabled());
  w.Key("baseline_present").Bool(baseline_ != nullptr);
  w.Key("requests_recorded").Int(score_dist_.count());

  w.Key("score").BeginObject();
  w.Key("count").Int(score_dist_.count());
  w.Key("mean").Number(score_dist_.mean());
  w.Key("window_count").Int(score_dist_.WindowCountAt(now_ns));
  if (baseline_ != nullptr) {
    w.Key("baseline_mean").Number(BaselineScoreMean(*baseline_));
    w.Key("psi").Number(obs::Psi(baseline_->score_counts,
                                 score_dist_.Counts()));
    w.Key("psi_window")
        .Number(obs::Psi(baseline_->score_counts,
                         score_dist_.WindowCountsAt(now_ns)));
  }
  w.EndObject();

  if (baseline_ != nullptr) {
    w.Key("baseline").BeginObject();
    w.Key("sample_count").Int(baseline_->sample_count);
    w.Key("positive_rate").Number(baseline_->positive_rate);
    w.EndObject();
    w.Key("features");
    AppendFeatureJson(w, now_ns);
  }

  const std::vector<obs::CalibrationBucket> life = calibration_.Snapshot();
  const std::vector<obs::CalibrationBucket> window =
      calibration_.WindowSnapshotAt(now_ns);
  int64_t window_count = 0;
  for (const obs::CalibrationBucket& b : window) window_count += b.count;
  w.Key("calibration").BeginObject();
  w.Key("count").Int(calibration_.count());
  w.Key("ece").Number(obs::CalibrationTable::ExpectedCalibrationError(life));
  w.Key("buckets");
  WriteCalibrationBuckets(w, life);
  w.Key("window").BeginObject();
  w.Key("count").Int(window_count);
  w.Key("ece").Number(
      obs::CalibrationTable::ExpectedCalibrationError(window));
  w.Key("buckets");
  WriteCalibrationBuckets(w, window);
  w.EndObject();
  w.EndObject();

  int64_t received = 0;
  int64_t matched = 0;
  int64_t positives = 0;
  {
    std::lock_guard<std::mutex> lock(feedback_mu_);
    received = feedback_received_;
    matched = feedback_matched_;
    positives = feedback_positives_;
  }
  const int64_t recorded = score_dist_.count();
  w.Key("feedback").BeginObject();
  w.Key("received").Int(received);
  w.Key("matched").Int(matched);
  w.Key("coverage")
      .Number(recorded > 0 ? static_cast<double>(matched) /
                                 static_cast<double>(recorded)
                           : 0.0);
  w.Key("positive_rate")
      .Number(matched > 0 ? static_cast<double>(positives) /
                                static_cast<double>(matched)
                          : 0.0);
  w.Key("online_auc")
      .Number(obs::AucFromCounts(auc_pos_.Counts(), auc_neg_.Counts()));
  w.EndObject();

  w.EndObject();
  return w.str();
}

void ModelHealthMonitor::UpdateGauges() const {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  const int64_t now_ns = obs::NowNs();
  if (baseline_ != nullptr) {
    reg.GetGauge("health/score_psi" + metric_tag_)
        .Set(obs::Psi(baseline_->score_counts, score_dist_.Counts()));
    reg.GetGauge("health/score_psi_window" + metric_tag_)
        .Set(obs::Psi(baseline_->score_counts,
                      score_dist_.WindowCountsAt(now_ns)));
    for (const FeatureState& state : features_) {
      if (state.live == nullptr) continue;
      const std::vector<int64_t> expected = BaselineCounts(*state.baseline);
      const std::vector<int64_t> live = state.live->Counts();
      reg.GetGauge("health/feature_psi/" + state.name + metric_tag_)
          .Set(obs::Psi(expected,
                        LiveVsBaselineCounts(*state.baseline, live)));
      int64_t total = 0;
      for (int64_t c : live) total += c;
      const int64_t oov =
          live[static_cast<size_t>(OovSlot(*state.baseline))];
      reg.GetGauge("health/oov_rate/" + state.name + metric_tag_)
          .Set(total > 0
                   ? static_cast<double>(oov) / static_cast<double>(total)
                   : 0.0);
    }
  }
  reg.GetGauge("health/calibration_ece" + metric_tag_)
      .Set(obs::CalibrationTable::ExpectedCalibrationError(
          calibration_.Snapshot()));
  reg.GetGauge("health/calibration_ece_window" + metric_tag_)
      .Set(obs::CalibrationTable::ExpectedCalibrationError(
          calibration_.WindowSnapshotAt(now_ns)));
  reg.GetGauge("health/online_auc" + metric_tag_)
      .Set(obs::AucFromCounts(auc_pos_.Counts(), auc_neg_.Counts()));
  int64_t matched = 0;
  {
    std::lock_guard<std::mutex> lock(feedback_mu_);
    matched = feedback_matched_;
  }
  const int64_t recorded = score_dist_.count();
  reg.GetGauge("health/feedback_coverage" + metric_tag_)
      .Set(recorded > 0 ? static_cast<double>(matched) /
                              static_cast<double>(recorded)
                        : 0.0);
}

}  // namespace miss::serve
