#include "serve/bundle.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "common/logging.h"
#include "models/model_factory.h"
#include "nn/serialize.h"
#include "obs/json.h"

namespace miss::serve {

namespace {

void WriteFields(obs::JsonWriter& w, const std::vector<data::FieldSpec>& fields) {
  w.BeginArray();
  for (const data::FieldSpec& f : fields) {
    w.BeginObject();
    w.Key("name").String(f.name);
    w.Key("vocab_size").Int(f.vocab_size);
    w.EndObject();
  }
  w.EndArray();
}

std::string ManifestJson(const models::CtrModel& model,
                         const obs::ModelBaseline* baseline) {
  const data::DatasetSchema& schema = model.schema();
  const models::ModelConfig& config = model.config();

  obs::JsonWriter w;
  w.BeginObject();
  w.Key("format_version").Int(kBundleFormatVersion);
  w.Key("model").String(model.factory_key());
  w.Key("seed").Int(static_cast<int64_t>(model.factory_seed()));

  w.Key("schema").BeginObject();
  w.Key("name").String(schema.name);
  w.Key("max_seq_len").Int(schema.max_seq_len);
  w.Key("categorical");
  WriteFields(w, schema.categorical);
  w.Key("sequential");
  WriteFields(w, schema.sequential);
  w.Key("seq_shares_table_with").BeginArray();
  for (int shared : schema.seq_shares_table_with) w.Int(shared);
  w.EndArray();
  w.EndObject();

  w.Key("config").BeginObject();
  w.Key("embedding_dim").Int(config.embedding_dim);
  w.Key("embedding_init_stddev")
      .Number(static_cast<double>(config.embedding_init_stddev));
  w.Key("mlp_hidden").BeginArray();
  for (int64_t h : config.mlp_hidden) w.Int(h);
  w.EndArray();
  w.Key("dropout").Number(static_cast<double>(config.dropout));
  w.Key("cross_layers").Int(config.cross_layers);
  w.Key("cin_sizes").BeginArray();
  for (int64_t s : config.cin_sizes) w.Int(s);
  w.EndArray();
  w.Key("attention_heads").Int(config.attention_heads);
  w.Key("attention_layers").Int(config.attention_layers);
  w.Key("fignn_steps").Int(config.fignn_steps);
  w.Key("sim_top_k").Int(config.sim_top_k);
  w.EndObject();

  if (baseline != nullptr) {
    w.Key("baseline");
    obs::WriteModelBaselineJson(w, *baseline);
  }

  w.EndObject();
  return w.str();
}

// -- Manifest readback helpers. Each returns false (without logging) on a
// missing/mistyped key; LoadBundle reports the file-level context.

bool ReadInt(const obs::JsonValue& obj, const std::string& key, int64_t* out) {
  const obs::JsonValue* v = obj.Find(key);
  if (v == nullptr || !v->IsNumber()) return false;
  *out = static_cast<int64_t>(v->number);
  return true;
}

bool ReadDouble(const obs::JsonValue& obj, const std::string& key,
                double* out) {
  const obs::JsonValue* v = obj.Find(key);
  if (v == nullptr || !v->IsNumber()) return false;
  *out = v->number;
  return true;
}

bool ReadString(const obs::JsonValue& obj, const std::string& key,
                std::string* out) {
  const obs::JsonValue* v = obj.Find(key);
  if (v == nullptr || !v->IsString()) return false;
  *out = v->string;
  return true;
}

bool ReadIntArray(const obs::JsonValue& obj, const std::string& key,
                  std::vector<int64_t>* out) {
  const obs::JsonValue* v = obj.Find(key);
  if (v == nullptr || !v->IsArray()) return false;
  out->clear();
  for (const obs::JsonValue& e : v->array) {
    if (!e.IsNumber()) return false;
    out->push_back(static_cast<int64_t>(e.number));
  }
  return true;
}

bool ReadFields(const obs::JsonValue& obj, const std::string& key,
                std::vector<data::FieldSpec>* out) {
  const obs::JsonValue* v = obj.Find(key);
  if (v == nullptr || !v->IsArray()) return false;
  out->clear();
  for (const obs::JsonValue& e : v->array) {
    data::FieldSpec spec;
    if (!ReadString(e, "name", &spec.name)) return false;
    if (!ReadInt(e, "vocab_size", &spec.vocab_size)) return false;
    out->push_back(std::move(spec));
  }
  return true;
}

bool ParseManifest(const std::string& text, std::string* model_name,
                   uint64_t* seed, data::DatasetSchema* schema,
                   models::ModelConfig* config,
                   std::shared_ptr<const obs::ModelBaseline>* baseline) {
  obs::JsonValue root;
  if (!obs::JsonParse(text, &root) || !root.IsObject()) return false;

  int64_t version = 0;
  if (!ReadInt(root, "format_version", &version)) return false;
  if (version > kBundleFormatVersion || version < 1) {
    MISS_LOG(WARNING) << "bundle manifest format_version " << version
                      << " is not supported (current "
                      << kBundleFormatVersion << ")";
    return false;
  }
  if (!ReadString(root, "model", model_name)) return false;
  int64_t seed_int = 0;
  if (!ReadInt(root, "seed", &seed_int)) return false;
  *seed = static_cast<uint64_t>(seed_int);

  const obs::JsonValue* s = root.Find("schema");
  if (s == nullptr || !s->IsObject()) return false;
  if (!ReadString(*s, "name", &schema->name)) return false;
  if (!ReadInt(*s, "max_seq_len", &schema->max_seq_len)) return false;
  if (!ReadFields(*s, "categorical", &schema->categorical)) return false;
  if (!ReadFields(*s, "sequential", &schema->sequential)) return false;
  std::vector<int64_t> shared;
  if (!ReadIntArray(*s, "seq_shares_table_with", &shared)) return false;
  schema->seq_shares_table_with.assign(shared.begin(), shared.end());

  const obs::JsonValue* c = root.Find("config");
  if (c == nullptr || !c->IsObject()) return false;
  double stddev = 0.0;
  double dropout = 0.0;
  if (!ReadInt(*c, "embedding_dim", &config->embedding_dim)) return false;
  if (!ReadDouble(*c, "embedding_init_stddev", &stddev)) return false;
  if (!ReadIntArray(*c, "mlp_hidden", &config->mlp_hidden)) return false;
  if (!ReadDouble(*c, "dropout", &dropout)) return false;
  if (!ReadInt(*c, "cross_layers", &config->cross_layers)) return false;
  if (!ReadIntArray(*c, "cin_sizes", &config->cin_sizes)) return false;
  if (!ReadInt(*c, "attention_heads", &config->attention_heads)) return false;
  if (!ReadInt(*c, "attention_layers", &config->attention_layers)) {
    return false;
  }
  if (!ReadInt(*c, "fignn_steps", &config->fignn_steps)) return false;
  if (!ReadInt(*c, "sim_top_k", &config->sim_top_k)) return false;
  config->embedding_init_stddev = static_cast<float>(stddev);
  config->dropout = static_cast<float>(dropout);

  // Optional since format v2; a v1 manifest (or a v2 one saved without a
  // baseline) simply has no block. A present-but-malformed block is a
  // corrupt manifest, not a missing feature.
  baseline->reset();
  const obs::JsonValue* b = root.Find("baseline");
  if (b != nullptr) {
    auto parsed = std::make_shared<obs::ModelBaseline>();
    if (!obs::ParseModelBaselineJson(*b, parsed.get())) return false;
    *baseline = std::move(parsed);
  }
  return true;
}

}  // namespace

bool SaveBundle(const models::CtrModel& model, const std::string& dir) {
  return SaveBundle(model, dir, /*baseline=*/nullptr);
}

bool SaveBundle(const models::CtrModel& model, const std::string& dir,
                const obs::ModelBaseline* baseline) {
  if (model.factory_key().empty()) {
    MISS_LOG(WARNING) << "SaveBundle: model " << model.name()
                      << " was not built by models::CreateModel; no factory "
                         "key to record";
    return false;
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    MISS_LOG(WARNING) << "SaveBundle: cannot create " << dir << ": "
                      << ec.message();
    return false;
  }

  const std::string manifest_path = dir + "/" + kManifestFileName;
  {
    std::ofstream out(manifest_path, std::ios::trunc);
    if (!out) {
      MISS_LOG(WARNING) << "SaveBundle: cannot write " << manifest_path;
      return false;
    }
    out << ManifestJson(model, baseline) << "\n";
    if (!out.flush()) {
      MISS_LOG(WARNING) << "SaveBundle: short write to " << manifest_path;
      return false;
    }
  }

  const std::string params_path = dir + "/" + kParamsFileName;
  if (!nn::SaveParameters(model.Parameters(), params_path)) {
    MISS_LOG(WARNING) << "SaveBundle: cannot write " << params_path;
    return false;
  }
  return true;
}

bool LoadBundle(const std::string& dir, Bundle* out) {
  return LoadBundle(dir, LoadBundleOptions(), out);
}

bool LoadBundle(const std::string& dir, const LoadBundleOptions& options,
                Bundle* out) {
  *out = Bundle();
  const std::string manifest_path = dir + "/" + kManifestFileName;
  std::ifstream in(manifest_path);
  if (!in) {
    MISS_LOG(WARNING) << "LoadBundle: cannot read " << manifest_path;
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();

  data::DatasetSchema schema;
  models::ModelConfig config;
  std::string model_name;
  uint64_t seed = 0;
  std::shared_ptr<const obs::ModelBaseline> baseline;
  if (!ParseManifest(text.str(), &model_name, &seed, &schema, &config,
                     &baseline)) {
    MISS_LOG(WARNING) << "LoadBundle: malformed manifest " << manifest_path;
    return false;
  }
  schema.Validate();
  if (baseline == nullptr) {
    MISS_LOG(WARNING) << "LoadBundle: " << manifest_path
                      << " carries no model-health baseline (pre-v2 bundle?)"
                         "; drift reporting will be disabled";
  }

  bool known = false;
  for (const std::string& name : models::KnownModelNames()) {
    if (name == model_name) known = true;
  }
  if (!known) {
    MISS_LOG(WARNING) << "LoadBundle: manifest names unknown model \""
                      << model_name << "\"";
    return false;
  }

  std::unique_ptr<models::CtrModel> model =
      models::CreateModel(model_name, schema, config, seed);
  const std::string params_path = dir + "/" + kParamsFileName;
  if (!nn::LoadParameters(model->Parameters(), params_path)) {
    MISS_LOG(WARNING) << "LoadBundle: checkpoint " << params_path
                      << " does not match the manifest-built " << model_name
                      << " (see preceding shape diagnostics)";
    return false;
  }

  if (options.compile_plans) {
    models::CtrModel* raw = model.get();
    out->plans = nn::PlanSet::Compile(
        schema, raw->Parameters(),
        [raw](const data::Batch& batch) {
          return raw->Forward(batch, /*training=*/false);
        },
        options.plan_options);
    if (!out->plans->compatible()) {
      MISS_LOG(WARNING) << "LoadBundle: " << model_name
                        << " is plan-incompatible ("
                        << out->plans->fallback_reason()
                        << "); serving falls back to the dynamic path";
    }
  }

  out->model = std::move(model);
  out->model_name = model_name;
  out->seed = seed;
  out->baseline = std::move(baseline);
  return true;
}

}  // namespace miss::serve
