#include "serve/engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace miss::serve {

Engine::Engine(models::CtrModel& model, const EngineConfig& config)
    : model_(model), config_(config) {
  MISS_CHECK_GT(config_.num_workers, 0);
  MISS_CHECK_GT(config_.max_batch_size, 0);
  MISS_CHECK_GE(config_.max_queue_delay_us, 0);
  workers_.reserve(config_.num_workers);
  for (int i = 0; i < config_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Engine::~Engine() { Shutdown(); }

std::future<float> Engine::Submit(data::Sample sample) {
  Request req;
  req.sample = std::move(sample);
  req.enqueue_ns = obs::NowNs();
  std::future<float> future = req.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    MISS_CHECK(!stopping_) << "Engine::Submit after Shutdown";
    queue_.push_back(std::move(req));
    if (obs::Enabled()) {
      obs::MetricsRegistry::Global()
          .GetGauge("serve/queue_depth")
          .Set(static_cast<double>(queue_.size()));
    }
  }
  cv_.notify_one();
  return future;
}

void Engine::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

int64_t Engine::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(queue_.size());
}

void Engine::WorkerLoop() {
  for (;;) {
    std::vector<Request> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }

      // Dynamic micro-batching: hold the batch open until it is full or the
      // oldest request has aged past the configured delay. During shutdown
      // everything queued is scored immediately.
      const int64_t deadline_ns =
          queue_.front().enqueue_ns + config_.max_queue_delay_us * 1000;
      while (!stopping_ &&
             static_cast<int64_t>(queue_.size()) < config_.max_batch_size) {
        const int64_t now_ns = obs::NowNs();
        if (now_ns >= deadline_ns) break;
        cv_.wait_for(lock, std::chrono::nanoseconds(deadline_ns - now_ns));
        if (queue_.empty()) break;  // another worker claimed the batch
      }
      if (queue_.empty()) continue;

      const int64_t take =
          std::min(static_cast<int64_t>(queue_.size()), config_.max_batch_size);
      batch.reserve(take);
      for (int64_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      if (obs::Enabled()) {
        obs::MetricsRegistry::Global()
            .GetGauge("serve/queue_depth")
            .Set(static_cast<double>(queue_.size()));
      }
    }
    cv_.notify_all();  // residual requests may form another worker's batch
    ScoreBatch(std::move(batch));
  }
}

void Engine::ScoreBatch(std::vector<Request> batch) {
  MISS_TRACE_SCOPE("serve/score_batch");
  const int64_t n = static_cast<int64_t>(batch.size());

  // MakeBatch wants (dataset, indices); wrap the requests in a throwaway
  // dataset sharing the model's schema.
  data::Dataset staging;
  staging.schema = model_.schema();
  staging.samples.reserve(n);
  std::vector<int64_t> indices(n);
  for (int64_t i = 0; i < n; ++i) {
    staging.samples.push_back(std::move(batch[i].sample));
    indices[i] = i;
  }
  data::Batch assembled = data::MakeBatch(staging, indices);

  nn::Tensor logits;
  {
    nn::InferenceScope inference;
    logits = model_.Forward(assembled, /*training=*/false);
  }

  for (int64_t i = 0; i < n; ++i) {
    const float x = logits.at(i);
    batch[i].promise.set_value(1.0f / (1.0f + std::exp(-x)));
  }

  if (obs::Enabled()) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    reg.GetCounter("serve/requests").Add(n);
    reg.GetCounter("serve/batches").Add(1);
    reg.GetHistogram("serve/batch_size").Record(static_cast<double>(n));
    obs::Histogram& latency = reg.GetHistogram("serve/latency_ms");
    const int64_t done_ns = obs::NowNs();
    for (int64_t i = 0; i < n; ++i) {
      latency.Record(static_cast<double>(done_ns - batch[i].enqueue_ns) / 1e6);
    }
  }
}

}  // namespace miss::serve
