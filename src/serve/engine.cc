#include "serve/engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "common/check.h"
#include "common/thread_pool.h"
#include "nn/plan.h"
#include "nn/tensor.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/health.h"

namespace miss::serve {

Engine::Engine(models::CtrModel& model, const EngineConfig& config)
    : model_(model), config_(config) {
  const std::string tag =
      config_.metric_model.empty() ? "" : "|model=" + config_.metric_model;
  name_requests_ = "serve/requests" + tag;
  name_batches_ = "serve/batches" + tag;
  name_batch_size_ = "serve/batch_size" + tag;
  name_latency_ = "serve/latency_ms" + tag;
  name_queue_depth_ = "serve/queue_depth" + tag;
  name_alloc_count_ = "serve/alloc/count" + tag;
  name_alloc_bytes_ = "serve/alloc/bytes" + tag;
  name_plan_requests_ = "serve/plan/requests" + tag;
  name_plan_fallback_ = "serve/plan/fallback" + tag;
  MISS_CHECK_GT(config_.num_workers, 0);
  MISS_CHECK_GT(config_.max_batch_size, 0);
  MISS_CHECK_GE(config_.max_queue_delay_us, 0);
  MISS_CHECK_GT(config_.nn_threads, 0);
  workers_.reserve(config_.num_workers);
  for (int i = 0; i < config_.num_workers; ++i) {
    workers_.emplace_back([this, i] {
      obs::SetCurrentThreadName("engine-worker-" + std::to_string(i));
      // Pin this worker's intra-op width for every forward it runs;
      // thread-local, so other submitters/workers are unaffected.
      common::ScopedIntraOpThreads intra_op(config_.nn_threads);
      WorkerLoop();
    });
  }
}

Engine::~Engine() { StopAndJoin(/*flush=*/false); }

void Engine::Fail(Request& req, const char* what) {
  if (req.traced_callback) {
    req.traced_callback(0.0f, /*ok=*/false, req.trace);
    return;
  }
  if (req.callback) {
    req.callback(0.0f, /*ok=*/false);
    return;
  }
  req.promise.set_exception(
      std::make_exception_ptr(std::runtime_error(what)));
}

bool Engine::EnqueueLocked(Request req) {
  if (stopping_) return false;
  queue_.push_back(std::move(req));
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  if (obs::Enabled()) {
    obs::MetricsRegistry::Global()
        .GetGauge(name_queue_depth_)
        .Set(static_cast<double>(queue_.size()));
  }
  return true;
}

std::future<float> Engine::Submit(data::Sample sample) {
  Request req;
  req.sample = std::move(sample);
  req.enqueue_ns = obs::NowNs();
  std::future<float> future = req.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!EnqueueLocked(std::move(req))) {
      std::promise<float> failed;
      failed.set_exception(std::make_exception_ptr(
          std::runtime_error("serve::Engine::Submit after Drain")));
      return failed.get_future();
    }
  }
  cv_.notify_one();
  return future;
}

void Engine::SubmitAsync(data::Sample sample, ScoreCallback callback) {
  MISS_CHECK(callback != nullptr);
  Request req;
  req.sample = std::move(sample);
  req.callback = std::move(callback);
  req.enqueue_ns = obs::NowNs();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stopping_) {
      MISS_CHECK(EnqueueLocked(std::move(req)));
      cv_.notify_one();
      return;
    }
  }
  req.callback(0.0f, /*ok=*/false);
}

void Engine::SubmitTraced(data::Sample sample, RequestTrace trace,
                          TracedScoreCallback callback) {
  MISS_CHECK(callback != nullptr);
  Request req;
  req.sample = std::move(sample);
  req.traced_callback = std::move(callback);
  req.trace = trace;
  req.enqueue_ns = obs::NowNs();
  if (req.trace.trace_id != 0) req.trace.enqueue_ns = req.enqueue_ns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stopping_) {
      MISS_CHECK(EnqueueLocked(std::move(req)));
      cv_.notify_one();
      return;
    }
  }
  req.traced_callback(0.0f, /*ok=*/false, req.trace);
}

void Engine::Drain() { StopAndJoin(/*flush=*/true); }

void Engine::Shutdown() { Drain(); }

bool Engine::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stopping_;
}

void Engine::StopAndJoin(bool flush) {
  std::lock_guard<std::mutex> join_lock(join_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stopping_) {
      stopping_ = true;
      flush_on_stop_ = flush;
    }
  }
  cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();

  // Fast stop (destructor without a prior Drain) abandons the queue to us:
  // fail every request so no caller blocks on a dead future.
  std::deque<Request> leftover;
  {
    std::lock_guard<std::mutex> lock(mu_);
    leftover.swap(queue_);
    if (obs::Enabled() && !leftover.empty()) {
      obs::MetricsRegistry::Global().GetGauge(name_queue_depth_).Set(0.0);
    }
  }
  for (Request& req : leftover) {
    Fail(req, "serve::Engine destroyed with the request still queued");
  }
  in_flight_.fetch_sub(static_cast<int64_t>(leftover.size()),
                       std::memory_order_relaxed);
}

int64_t Engine::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(queue_.size());
}

void Engine::WorkerLoop() {
  WorkerState state;
  state.staging.schema = model_.schema();
  for (;;) {
    std::vector<Request> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && !flush_on_stop_) return;
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }

      // Dynamic micro-batching: hold the batch open until it is full or the
      // oldest request has aged past the configured delay. During a graceful
      // drain everything queued is scored immediately.
      const int64_t deadline_ns =
          queue_.front().enqueue_ns + config_.max_queue_delay_us * 1000;
      while (!stopping_ &&
             static_cast<int64_t>(queue_.size()) < config_.max_batch_size) {
        const int64_t now_ns = obs::NowNs();
        if (now_ns >= deadline_ns) break;
        cv_.wait_for(lock, std::chrono::nanoseconds(deadline_ns - now_ns));
        if (queue_.empty()) break;  // another worker claimed the batch
      }
      if (stopping_ && !flush_on_stop_) return;
      if (queue_.empty()) continue;

      const int64_t take =
          std::min(static_cast<int64_t>(queue_.size()), config_.max_batch_size);
      batch.reserve(take);
      for (int64_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      if (obs::Enabled()) {
        obs::MetricsRegistry::Global()
            .GetGauge(name_queue_depth_)
            .Set(static_cast<double>(queue_.size()));
      }
    }
    cv_.notify_all();  // residual requests may form another worker's batch
    ScoreBatch(std::move(batch), state);
  }
}

void Engine::ScoreBatch(std::vector<Request> batch, WorkerState& state) {
  MISS_TRACE_SCOPE("serve/score_batch");
  const int64_t n = static_cast<int64_t>(batch.size());

  // Batch sealed: queue wait ends here, assembly + forward begins.
  if (obs::Enabled()) {
    const int64_t close_ns = obs::NowNs();
    for (Request& req : batch) {
      if (req.trace.trace_id != 0) req.trace.batch_close_ns = close_ns;
    }
  }

  // MakeBatch wants (dataset, indices); wrap the requests in the worker's
  // long-lived staging dataset (sample slots and batch buffers keep their
  // capacity, so steady-state assembly allocates nothing).
  data::Dataset& staging = state.staging;
  staging.samples.clear();
  staging.samples.reserve(n);
  state.indices.resize(n);
  for (int64_t i = 0; i < n; ++i) {
    staging.samples.push_back(std::move(batch[i].sample));
    state.indices[i] = i;
  }
  // Per-request allocation accounting brackets assembly + forward: both run
  // on this worker thread, so the thread-local tally sees exactly this
  // batch's tensor allocations.
  const bool record_alloc = config_.alloc_stats && obs::Enabled();
  nn::AllocTally alloc_tally;
  data::MakeBatchInto(staging, state.indices, &state.assembled);

  // Compiled plan first: static execution, arena intermediates, no tensor
  // graph. Falls back to the dynamic tape-free forward when no plan fits
  // (incompatible model or batch larger than every bucket).
  bool plan_used = false;
  if (config_.plans != nullptr) {
    state.plan_logits.resize(n);
    plan_used = config_.plans->Score(state.assembled, state.plan_logits.data());
  }
  nn::Tensor logits;
  if (!plan_used) {
    nn::InferenceScope inference;
    logits = model_.Forward(state.assembled, /*training=*/false);
  }
  if (record_alloc) {
    // One record per batch of the per-request average, into the lifetime
    // histogram and the /statusz rolling window.
    const double per_req_nodes =
        static_cast<double>(alloc_tally.nodes()) / static_cast<double>(n);
    const double per_req_bytes =
        static_cast<double>(alloc_tally.bytes()) / static_cast<double>(n);
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    reg.GetHistogram(name_alloc_count_).Record(per_req_nodes);
    reg.GetHistogram(name_alloc_bytes_).Record(per_req_bytes);
    reg.GetSlidingHistogram(name_alloc_count_).Record(per_req_nodes);
    reg.GetSlidingHistogram(name_alloc_bytes_).Record(per_req_bytes);
  }

  // Forward done; stamp traced requests and, when a trace file is active,
  // emit the flow-finish half of each request's arrow. The finish timestamp
  // sits inside this serve/score_batch span (bp:"e" binds it to the
  // enclosing slice on this worker's lane).
  const bool enabled = obs::Enabled();
  const int64_t forward_done_ns = enabled ? obs::NowNs() : 0;
  const bool tracing = enabled && obs::TracingActive();
  const bool record_health = enabled && config_.health != nullptr;
  std::vector<float> scores;
  if (record_health) scores.resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    Request& req = batch[i];
    if (enabled && req.trace.trace_id != 0) {
      req.trace.forward_done_ns = forward_done_ns;
      if (tracing) obs::EmitFlowFinish(req.trace.trace_id, forward_done_ns);
    }
    const float x = plan_used ? state.plan_logits[i] : logits.at(i);
    const float score = 1.0f / (1.0f + std::exp(-x));
    if (record_health) scores[static_cast<size_t>(i)] = score;
    if (req.traced_callback) {
      req.traced_callback(score, /*ok=*/true, req.trace);
    } else if (req.callback) {
      req.callback(score, /*ok=*/true);
    } else {
      req.promise.set_value(score);
    }
  }

  in_flight_.fetch_sub(n, std::memory_order_relaxed);

  // The batch's samples were moved into `staging`, still alive here and
  // index-aligned with `scores`.
  if (record_health) config_.health->RecordBatch(staging.samples, scores);

  if (obs::Enabled()) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    reg.GetCounter(name_requests_).Add(n);
    reg.GetCounter(name_batches_).Add(1);
    if (config_.plans != nullptr) {
      reg.GetCounter(plan_used ? name_plan_requests_ : name_plan_fallback_)
          .Add(n);
    }
    reg.GetHistogram(name_batch_size_).Record(static_cast<double>(n));
    obs::Histogram& latency = reg.GetHistogram(name_latency_);
    const int64_t done_ns = obs::NowNs();
    for (int64_t i = 0; i < n; ++i) {
      latency.Record(static_cast<double>(done_ns - batch[i].enqueue_ns) / 1e6);
    }
  }
}

}  // namespace miss::serve
