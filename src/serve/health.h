// ModelHealthMonitor: the serving-time half of model-health observability.
//
// One monitor per served model joins three telemetry streams:
//
//   1. The engine's scoring hot path calls RecordBatch() with each scored
//      micro-batch: scores feed an obs::FixedDistribution, feature ids feed
//      per-field category counters (top-K-of-baseline / other / OOV slots).
//   2. The net front-end calls RememberScore(request_id, score) per
//      completed response so a later /feedback can be joined to the score
//      the client actually saw.
//   3. /feedback delivers (request_id, label); matched pairs drive the
//      calibration table and the progressive online-AUC sketches.
//
// Drift is quantified on demand as PSI of live counts vs. the training-time
// obs::ModelBaseline shipped in the bundle manifest. Without a baseline
// (pre-format-v2 bundles) the monitor still tracks scores, calibration, and
// AUC — only drift-vs-baseline reporting is disabled.
//
// All recording is inert unless obs::Enabled(); callers on the hot path
// should additionally gate their calls to skip argument setup.

#ifndef MISS_SERVE_HEALTH_H_
#define MISS_SERVE_HEALTH_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/schema.h"
#include "obs/health.h"

namespace miss::serve {

struct ModelHealthOptions {
  // Score-distribution geometry; must match the baseline's score_buckets
  // when a baseline is present (the constructor checks).
  int score_buckets = obs::kScoreDistributionBuckets;
  // Buckets for the progressive-AUC positive/negative score sketches.
  int auc_buckets = 100;
  int calibration_buckets = 10;
  // Rolling-window geometry for all windowed state (12 x 5 s default, the
  // obs convention). Tests shrink this to exercise decay quickly.
  int num_windows = 12;
  int64_t window_ns = 5'000'000'000;
  // Capacity of the request_id -> score join table (ring-hashed; older
  // entries are evicted by collision once feedback lags this far behind).
  size_t feedback_capacity = 1 << 16;
  // Per-model metric label, as serve::EngineConfig::metric_model: empty
  // keeps the plain health/* names, non-empty records health/...|model=<name>
  // (a {model="..."} label in the Prometheus exposition).
  std::string metric_model;
};

class ModelHealthMonitor {
 public:
  // `baseline` may be null (bundle without a baseline block): drift
  // reporting is disabled, everything else works.
  ModelHealthMonitor(const data::DatasetSchema& schema,
                     std::shared_ptr<const obs::ModelBaseline> baseline,
                     const ModelHealthOptions& options = {});

  bool has_baseline() const { return baseline_ != nullptr; }

  // Engine hot path: one call per scored micro-batch, samples[i] paired
  // with scores[i]. No-op when obs::Enabled() is false.
  void RecordBatch(const std::vector<data::Sample>& samples,
                   const std::vector<float>& scores);

  // Net completion path: remember the score sent for `request_id` so a
  // later Feedback() can join it. No-op when telemetry is off.
  void RememberScore(uint64_t request_id, float score);

  // Feedback ingestion. Returns true when `request_id` was joined to a
  // remembered score (and calibration/AUC were updated); false when the id
  // is unknown, already consumed, or telemetry is off.
  bool Feedback(uint64_t request_id, float label);

  // The /modelz document: score + feature PSI, OOV rates, calibration
  // table (lifetime and window), feedback coverage, online AUC.
  std::string ModelzJson() const;
  std::string ModelzJsonAt(int64_t now_ns) const;

  // Pushes the headline numbers into the global MetricsRegistry as
  // health/* gauges so /metricz(?format=prom) exports them.
  void UpdateGauges() const;

  // Introspection for tests.
  int64_t requests_recorded() const { return score_dist_.count(); }
  int64_t feedback_received() const;
  int64_t feedback_matched() const;

 private:
  struct FeatureState {
    std::string name;
    bool sequential = false;
    const obs::FeatureBaseline* baseline = nullptr;  // owned by baseline_
    // slot_of_id[id]: 0..K-1 top-id slots, K = other, K+1 = OOV. Dense so
    // the hot path is one load per id, no hashing.
    std::vector<int32_t> slot_of_id;
    int num_slots = 0;
    std::unique_ptr<obs::FixedDistribution> live;  // bucket mode, num_slots
  };

  struct FeedbackSlot {
    uint64_t request_id = 0;
    float score = 0.0f;
    bool used = false;
  };

  void AppendFeatureJson(obs::JsonWriter& w, int64_t now_ns) const;

  const data::DatasetSchema schema_;
  const std::shared_ptr<const obs::ModelBaseline> baseline_;
  const ModelHealthOptions options_;
  // "|model=<name>" suffix appended to every health/* metric name (empty
  // when options_.metric_model is empty — exactly the legacy names).
  const std::string metric_tag_;

  obs::FixedDistribution score_dist_;
  obs::FixedDistribution auc_pos_;
  obs::FixedDistribution auc_neg_;
  obs::CalibrationTable calibration_;
  std::vector<FeatureState> features_;  // categorical then sequential

  mutable std::mutex feedback_mu_;
  std::vector<FeedbackSlot> feedback_slots_;
  int64_t feedback_received_ = 0;
  int64_t feedback_matched_ = 0;
  int64_t feedback_positives_ = 0;
};

}  // namespace miss::serve

#endif  // MISS_SERVE_HEALTH_H_
