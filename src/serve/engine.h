// Concurrent scoring engine with dynamic micro-batching.
//
// Callers submit single data::Sample requests from any thread and receive
// std::future<float> click probabilities. A pool of worker threads drains a
// shared queue: each worker coalesces requests until either max_batch_size
// are waiting or the oldest request has waited max_queue_delay_us, assembles
// them with data::MakeBatch, and runs ONE forward pass under
// nn::InferenceScope (tape-free, activations only). Per-sample results are
// independent of batch composition — every op in the engine is row-wise over
// the batch axis and padding is fixed by schema.max_seq_len — so scores are
// bitwise identical to an unbatched forward.
//
// The model's Forward must be read-only, which holds for every factory model
// when training == false (dropout is identity and never touches its RNG);
// multiple workers therefore share one model with no locking.
//
// Telemetry (behind obs::Enabled()): counters serve/requests and
// serve/batches, gauge serve/queue_depth, histograms serve/batch_size and
// serve/latency_ms (submit -> promise fulfilled, the end-to-end number whose
// p50/p95/p99 the serving bench reports).

#ifndef MISS_SERVE_ENGINE_H_
#define MISS_SERVE_ENGINE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "data/dataset.h"
#include "models/ctr_model.h"

namespace miss::serve {

struct EngineConfig {
  // Worker threads running forward passes. 1 preserves submission order.
  int num_workers = 2;
  // A batch closes as soon as this many requests are queued...
  int64_t max_batch_size = 32;
  // ...or once the oldest queued request has waited this long. 0 scores
  // whatever is queued immediately (latency-optimal, batch of ~1 under low
  // load).
  int64_t max_queue_delay_us = 200;
};

class Engine {
 public:
  // `model` must outlive the engine and is shared, unlocked, by all
  // workers (see file comment for the thread-safety contract).
  Engine(models::CtrModel& model, const EngineConfig& config);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Enqueues one sample (fields must match the model's schema) and returns
  // a future resolving to the predicted click probability sigmoid(logit).
  // Aborts if called after Shutdown().
  std::future<float> Submit(data::Sample sample);

  // Drains every queued request, then stops and joins the workers.
  // Idempotent; also run by the destructor.
  void Shutdown();

  // Requests currently waiting for a batch slot (diagnostic).
  int64_t QueueDepth() const;

 private:
  struct Request {
    data::Sample sample;
    std::promise<float> promise;
    int64_t enqueue_ns = 0;
  };

  void WorkerLoop();
  void ScoreBatch(std::vector<Request> batch);

  models::CtrModel& model_;
  const EngineConfig config_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Request> queue_;
  bool stopping_ = false;

  std::vector<std::thread> workers_;
};

}  // namespace miss::serve

#endif  // MISS_SERVE_ENGINE_H_
