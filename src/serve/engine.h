// Concurrent scoring engine with dynamic micro-batching.
//
// Callers submit single data::Sample requests from any thread and receive
// std::future<float> click probabilities. A pool of worker threads drains a
// shared queue: each worker coalesces requests until either max_batch_size
// are waiting or the oldest request has waited max_queue_delay_us, assembles
// them with data::MakeBatch, and runs ONE forward pass under
// nn::InferenceScope (tape-free, activations only). Per-sample results are
// independent of batch composition — every op in the engine is row-wise over
// the batch axis and padding is fixed by schema.max_seq_len — so scores are
// bitwise identical to an unbatched forward.
//
// The model's Forward must be read-only, which holds for every factory model
// when training == false (dropout is identity and never touches its RNG);
// multiple workers therefore share one model with no locking.
//
// Lifecycle: Drain() stops intake (subsequent submissions fail with an
// error, never block), scores everything already queued, and joins the
// workers — the SIGTERM path for a serving process. The destructor instead
// stops the workers fast and fulfills any still-queued promises with a
// std::runtime_error, so no caller is ever left blocked on an abandoned
// future. Shutdown() is a pre-Drain alias kept for existing callers.
//
// Telemetry (behind obs::Enabled()): counters serve/requests and
// serve/batches, gauge serve/queue_depth, histograms serve/batch_size and
// serve/latency_ms (submit -> promise fulfilled, the end-to-end number whose
// p50/p95/p99 the serving bench reports).
//
// Request-scoped tracing: SubmitTraced carries a RequestTrace through the
// queue, stamping each lifecycle transition (enqueue -> batch close ->
// forward done) so the caller can attribute latency to queue wait vs batch
// assembly + forward vs its own response write. When a Chrome trace file is
// active the worker also emits a flow-finish event per traced request,
// connecting the caller's span to the worker's serve/score_batch span.

#ifndef MISS_SERVE_ENGINE_H_
#define MISS_SERVE_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "data/dataset.h"
#include "models/ctr_model.h"

namespace miss::nn {
class PlanSet;
}  // namespace miss::nn

namespace miss::serve {

class ModelHealthMonitor;

// Per-request stage timestamps (obs::NowNs() clock), stamped as the request
// moves through the serving path. trace_id == 0 means "untraced": the engine
// skips all stamping and flow-event work for the request. The caller stamps
// recv_ns (wire entry); the engine stamps the rest up to forward_done_ns;
// the reply timestamp stays with the caller, which owns the response write.
struct RequestTrace {
  uint64_t trace_id = 0;
  int64_t recv_ns = 0;          // caller: first byte of the request read
  int64_t enqueue_ns = 0;       // engine: request entered the queue
  int64_t batch_close_ns = 0;   // engine: batch sealed, assembly begins
  int64_t forward_done_ns = 0;  // engine: forward pass + sigmoid finished
  // Replica index the fleet routed this request to (-1 when not applicable:
  // rank requests, direct-engine submission). Stamped by
  // fleet::ServingModel::SubmitScore so slow-log entries name the replica.
  int32_t replica = -1;
};

struct EngineConfig {
  // Worker threads running forward passes. 1 preserves submission order.
  int num_workers = 2;
  // A batch closes as soon as this many requests are queued...
  int64_t max_batch_size = 32;
  // ...or once the oldest queued request has waited this long. 0 scores
  // whatever is queued immediately (latency-optimal, batch of ~1 under low
  // load).
  int64_t max_queue_delay_us = 200;
  // Intra-op threads each worker's forward pass may use (common::
  // ScopedIntraOpThreads). Defaults to 1: the engine already provides
  // inter-op parallelism via num_workers, and num_workers * nn_threads
  // threads contending for cores inflates tail latency. Raise only when
  // cores outnumber workers and per-request latency is dominated by one
  // large forward.
  int nn_threads = 1;
  // Optional model-health monitor (must outlive the engine): every scored
  // micro-batch is recorded — score distribution plus per-feature id
  // coverage — when telemetry is enabled. Null disables recording.
  ModelHealthMonitor* health = nullptr;
  // Record per-request tensor allocation (node count + value-buffer bytes,
  // averaged over the batch) into serve/alloc/{count,bytes} lifetime +
  // sliding histograms when telemetry is enabled. The counters themselves
  // are plain thread-locals (nn::AllocTally) — this only gates the
  // histogram recording, so benches can A/B it.
  bool alloc_stats = true;
  // Compiled inference plans for the model (nn::PlanSet::Compile on the
  // model's Forward; must outlive the engine). When set and compatible,
  // workers execute batches through the static plan — bitwise identical
  // scores, zero tensor allocations — and fall back to the dynamic
  // InferenceScope forward per batch when the batch exceeds every bucket.
  // Null keeps the dynamic path only.
  const nn::PlanSet* plans = nullptr;
  // Per-model metric label. Empty keeps the plain serve/* metric names;
  // non-empty records them as serve/...|model=<metric_model> instead, which
  // /metricz?format=prom renders as a {model="..."} label (how a fleet keeps
  // each entry's engines tellable apart on one registry).
  std::string metric_model;
};

class Engine {
 public:
  // Invoked exactly once per SubmitAsync call: on the scoring worker thread
  // with ok == true, or (when the engine is draining/destroyed) with
  // ok == false — possibly inline from SubmitAsync itself.
  using ScoreCallback = std::function<void(float score, bool ok)>;

  // As ScoreCallback, plus the request's RequestTrace with every stage the
  // engine owns stamped (zeros when the request was submitted untraced or
  // the engine failed it before scoring).
  using TracedScoreCallback =
      std::function<void(float score, bool ok, const RequestTrace& trace)>;

  // `model` must outlive the engine and is shared, unlocked, by all
  // workers (see file comment for the thread-safety contract).
  Engine(models::CtrModel& model, const EngineConfig& config);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Enqueues one sample (fields must match the model's schema) and returns
  // a future resolving to the predicted click probability sigmoid(logit).
  // After Drain()/Shutdown() the future holds a std::runtime_error instead.
  std::future<float> Submit(data::Sample sample);

  // Callback form for event-driven callers (the net::Server): no future, no
  // blocked thread. See ScoreCallback for the invocation contract.
  void SubmitAsync(data::Sample sample, ScoreCallback callback);

  // SubmitAsync carrying a RequestTrace. The engine stamps enqueue_ns /
  // batch_close_ns / forward_done_ns (when trace.trace_id != 0 and telemetry
  // is enabled) and hands the trace back through the callback.
  void SubmitTraced(data::Sample sample, RequestTrace trace,
                    TracedScoreCallback callback);

  // Stops intake, scores every queued request, then joins the workers.
  // Idempotent and safe to call from multiple threads.
  void Drain();

  // Pre-Drain name for the same graceful stop (kept for existing callers).
  void Shutdown();

  // True once Drain()/Shutdown()/destruction has begun; new submissions fail.
  bool draining() const;

  // Requests currently waiting for a batch slot (diagnostic).
  int64_t QueueDepth() const;

  // Requests accepted but not yet answered (queued or mid-batch). The
  // fleet's least-outstanding replica selection reads this; lock-free.
  int64_t InFlight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }

 private:
  struct Request {
    data::Sample sample;
    std::promise<float> promise;
    ScoreCallback callback;  // when set, used instead of the promise
    TracedScoreCallback traced_callback;  // takes precedence over both
    RequestTrace trace;
    int64_t enqueue_ns = 0;
  };

  // Shared stop path: flush scores the queue before the workers exit,
  // !flush abandons it to the post-join sweep (destructor semantics).
  void StopAndJoin(bool flush);
  bool EnqueueLocked(Request req);  // false once stopping
  static void Fail(Request& req, const char* what);

  // Per-worker reusable staging: the throwaway Dataset wrapper, the
  // assembled Batch, the index list, and the plan-path logit buffer all keep
  // their capacity across batches, so steady-state assembly allocates
  // nothing.
  struct WorkerState {
    data::Dataset staging;
    data::Batch assembled;
    std::vector<int64_t> indices;
    std::vector<float> plan_logits;
  };

  void WorkerLoop();
  void ScoreBatch(std::vector<Request> batch, WorkerState& state);

  models::CtrModel& model_;
  const EngineConfig config_;

  // Metric names, resolved once from config_.metric_model (hot-path strings).
  std::string name_requests_;
  std::string name_batches_;
  std::string name_batch_size_;
  std::string name_latency_;
  std::string name_queue_depth_;
  std::string name_alloc_count_;
  std::string name_alloc_bytes_;
  std::string name_plan_requests_;
  std::string name_plan_fallback_;

  std::atomic<int64_t> in_flight_{0};

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Request> queue_;
  bool stopping_ = false;
  bool flush_on_stop_ = true;

  std::mutex join_mu_;  // serializes concurrent StopAndJoin callers
  std::vector<std::thread> workers_;
};

}  // namespace miss::serve

#endif  // MISS_SERVE_ENGINE_H_
