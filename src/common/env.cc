#include "common/env.h"

#include <cstdlib>

namespace miss::common {

double GetEnvDouble(const std::string& name, double default_value) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr) return default_value;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value) return default_value;
  return parsed;
}

int64_t GetEnvInt(const std::string& name, int64_t default_value) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr) return default_value;
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  if (end == value) return default_value;
  return static_cast<int64_t>(parsed);
}

std::string GetEnvString(const std::string& name,
                         const std::string& default_value) {
  const char* value = std::getenv(name.c_str());
  return value == nullptr ? default_value : std::string(value);
}

}  // namespace miss::common
