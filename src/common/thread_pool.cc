#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

#include "common/check.h"
#include "common/env.h"

namespace miss::common {

namespace {

constexpr int kMaxThreads = 256;

std::atomic<int> g_default_threads{0};  // 0 = read MISS_NUM_THREADS on first use
thread_local int t_override_threads = 0;
thread_local bool t_in_region = false;

std::mutex g_hook_mu;
std::function<void(int)> g_start_hook;  // guarded by g_hook_mu

int ClampThreads(int n) { return std::min(std::max(n, 1), kMaxThreads); }

}  // namespace

int HardwareConcurrency() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int IntraOpThreads() {
  if (t_override_threads > 0) return t_override_threads;
  int v = g_default_threads.load(std::memory_order_relaxed);
  if (v == 0) {
    const int64_t env = GetEnvInt("MISS_NUM_THREADS", 0);
    const int resolved =
        ClampThreads(env > 0 ? static_cast<int>(env) : HardwareConcurrency());
    int expected = 0;
    g_default_threads.compare_exchange_strong(expected, resolved,
                                              std::memory_order_relaxed);
    v = g_default_threads.load(std::memory_order_relaxed);
  }
  return v;
}

void SetIntraOpThreads(int n) {
  g_default_threads.store(ClampThreads(n), std::memory_order_relaxed);
}

ScopedIntraOpThreads::ScopedIntraOpThreads(int n) : prev_(t_override_threads) {
  t_override_threads = n > 0 ? ClampThreads(n) : 0;
}

ScopedIntraOpThreads::~ScopedIntraOpThreads() { t_override_threads = prev_; }

void SetThreadPoolStartHook(std::function<void(int)> hook) {
  std::lock_guard<std::mutex> lock(g_hook_mu);
  g_start_hook = std::move(hook);
}

// One parallel dispatch. Tasks are claimed by atomic increment; `joined`
// caps how many threads participate so a grown pool still honors a smaller
// max_threads (the bench sweeps 1/2/4/8 against one pool). Heap-allocated
// and shared so a worker that claims its "no more tasks" sentinel after the
// dispatcher returned cannot touch freed memory.
struct ThreadPool::Region {
  std::atomic<int64_t> next{0};
  std::atomic<int64_t> done{0};
  std::atomic<int> joined{0};
  int64_t num_tasks = 0;
  int max_participants = 0;
  const std::function<void(int64_t)>* fn = nullptr;
  std::mutex ex_mu;
  std::exception_ptr first_exception;
};

ThreadPool::ThreadPool(int num_threads) {
  MISS_CHECK_GE(num_threads, 1);
  target_threads_ = std::min(num_threads, kMaxThreads);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

int ThreadPool::num_threads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return target_threads_;
}

void ThreadPool::EnsureThreads(int num_threads) {
  num_threads = std::min(num_threads, kMaxThreads);
  std::lock_guard<std::mutex> lock(mu_);
  if (stop_) return;
  target_threads_ = std::max(target_threads_, num_threads);
  SpawnWorkersLocked();
}

void ThreadPool::SpawnWorkersLocked() {
  while (static_cast<int>(workers_.size()) < target_threads_ - 1) {
    const int index = static_cast<int>(workers_.size());
    workers_.emplace_back([this, index] { WorkerMain(index); });
  }
}

bool ThreadPool::InParallelRegion() { return t_in_region; }

void ThreadPool::RunTasks(Region& region) {
  t_in_region = true;
  for (;;) {
    const int64_t i = region.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= region.num_tasks) break;
    try {
      (*region.fn)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(region.ex_mu);
      if (!region.first_exception) {
        region.first_exception = std::current_exception();
      }
    }
    if (region.done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        region.num_tasks) {
      // Lock before notifying so the dispatcher cannot check the predicate
      // and sleep between our increment and the notify.
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
  t_in_region = false;
}

void ThreadPool::WorkerMain(int index) {
  {
    std::lock_guard<std::mutex> lock(g_hook_mu);
    if (g_start_hook) g_start_hook(index);
  }
  uint64_t seen_epoch = 0;
  for (;;) {
    std::shared_ptr<Region> region;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || (region_ != nullptr && epoch_ != seen_epoch);
      });
      if (stop_) return;
      seen_epoch = epoch_;
      region = region_;
    }
    if (region->joined.fetch_add(1, std::memory_order_relaxed) <
        region->max_participants) {
      RunTasks(*region);
    }
  }
}

void ThreadPool::ParallelRun(int64_t num_tasks, int max_threads,
                             const std::function<void(int64_t)>& fn) {
  if (num_tasks <= 0) return;
  bool have_workers = false;
  if (num_tasks > 1 && max_threads > 1 && !t_in_region) {
    std::lock_guard<std::mutex> lock(mu_);
    // Lazy start: the ctor only records the size; the first dispatch that
    // could use workers actually spawns them.
    if (!stop_) SpawnWorkersLocked();
    have_workers = !workers_.empty() && !stop_;
  }
  if (num_tasks == 1 || max_threads <= 1 || !have_workers || t_in_region ||
      !dispatch_mu_.try_lock()) {
    // Inline serial fallback: identical per-task order, zero pool traffic.
    // Matches the parallel path's exception contract: every task runs, the
    // first exception is rethrown at the end.
    std::exception_ptr first_exception;
    for (int64_t i = 0; i < num_tasks; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (!first_exception) first_exception = std::current_exception();
      }
    }
    if (first_exception) std::rethrow_exception(first_exception);
    return;
  }

  auto region = std::make_shared<Region>();
  region->num_tasks = num_tasks;
  region->max_participants = max_threads;
  region->fn = &fn;
  region->joined.store(1, std::memory_order_relaxed);  // the caller
  {
    std::lock_guard<std::mutex> lock(mu_);
    region_ = region;
    ++epoch_;
  }
  work_cv_.notify_all();

  RunTasks(*region);

  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
      return region->done.load(std::memory_order_acquire) == num_tasks;
    });
    region_.reset();
  }
  dispatch_mu_.unlock();
  if (region->first_exception) std::rethrow_exception(region->first_exception);
}

ThreadPool& GlobalThreadPool() {
  // Meyers singleton: the destructor joins the workers at exit, after every
  // possible dispatcher (nothing parallel runs from static destructors).
  static ThreadPool pool(1);
  return pool;
}

}  // namespace miss::common
