#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>

#include "common/env.h"

namespace miss::common {

namespace {

// Parses MISS_LOG_LEVEL: a number (0=debug .. 3=fatal) or a level name.
// Returns true on success.
bool ParseLevel(const std::string& text, LogLevel* out) {
  if (text.empty()) return false;
  if (text == "0" || text == "debug" || text == "DEBUG") {
    *out = LogLevel::kDebug;
  } else if (text == "1" || text == "info" || text == "INFO") {
    *out = LogLevel::kInfo;
  } else if (text == "2" || text == "warning" || text == "WARNING" ||
             text == "warn" || text == "WARN") {
    *out = LogLevel::kWarning;
  } else if (text == "3" || text == "fatal" || text == "FATAL") {
    *out = LogLevel::kFatal;
  } else {
    return false;
  }
  return true;
}

// When MISS_LOG_LEVEL is set it pins the threshold: SetMinLogLevel calls
// from code (benches silencing themselves, tests) are ignored, so CI can
// raise or silence verbosity without code changes.
struct LevelState {
  LogLevel level = LogLevel::kInfo;
  bool pinned_by_env = false;

  LevelState() {
    LogLevel parsed;
    if (ParseLevel(GetEnvString("MISS_LOG_LEVEL", ""), &parsed)) {
      level = parsed;
      pinned_by_env = true;
    }
  }
};

LevelState& State() {
  static LevelState state;
  return state;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

// Small dense per-thread id, assigned in first-log order.
int LogThreadId() {
  static std::atomic<int> next{0};
  thread_local int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

// ISO-8601 UTC timestamp with millisecond resolution, e.g.
// 2026-08-05T14:03:07.512Z.
void AppendTimestamp(std::ostream& os) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm_utc;
  gmtime_r(&secs, &tm_utc);
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm_utc.tm_year + 1900, tm_utc.tm_mon + 1, tm_utc.tm_mday,
                tm_utc.tm_hour, tm_utc.tm_min, tm_utc.tm_sec,
                static_cast<int>(ms));
  os << buf;
}

}  // namespace

LogLevel MinLogLevel() { return State().level; }

void SetMinLogLevel(LogLevel level) {
  LevelState& state = State();
  if (state.pinned_by_env) return;
  state.level = level;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), enabled_(static_cast<int>(level) >=
                              static_cast<int>(MinLogLevel())) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level) << " ";
    AppendTimestamp(stream_);
    stream_ << " t" << LogThreadId() << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) std::cerr << stream_.str() << std::endl;
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace miss::common
