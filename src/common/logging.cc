#include "common/logging.h"

#include <cstdlib>

namespace miss::common {

namespace {
LogLevel g_min_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}
}  // namespace

LogLevel MinLogLevel() { return g_min_level; }
void SetMinLogLevel(LogLevel level) { g_min_level = level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), enabled_(static_cast<int>(level) >=
                              static_cast<int>(MinLogLevel())) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) std::cerr << stream_.str() << std::endl;
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace miss::common
