// Build identity stamped at CMake configure time (git describe, build type,
// compiler). Surfaced by /statusz and as the Prometheus miss_build_info
// gauge so fleet dashboards can correlate serving regressions with binary
// rollouts. Values are configure-time constants: re-run CMake to restamp.

#ifndef MISS_COMMON_BUILD_INFO_H_
#define MISS_COMMON_BUILD_INFO_H_

namespace miss::common {

struct BuildInfo {
  const char* git_describe;  // `git describe --always --dirty` or "unknown"
  const char* build_type;    // CMAKE_BUILD_TYPE, e.g. "Release"
  const char* compiler;      // compiler id + version, e.g. "GNU 12.2.0"
  const char* cxx_standard;  // e.g. "c++20"
};

const BuildInfo& GetBuildInfo();

}  // namespace miss::common

#endif  // MISS_COMMON_BUILD_INFO_H_
