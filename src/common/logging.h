// Minimal leveled logging to stderr.
//
// Usage: MISS_LOG(INFO) << "epoch " << epoch << " auc=" << auc;
// Severity FATAL aborts after printing. Each line is prefixed with the
// severity letter, an ISO-8601 UTC timestamp, and a dense thread id:
//   [I 2026-08-05T14:03:07.512Z t0 trainer.cc:139] ...
//
// The verbosity threshold can be raised via SetMinLogLevel (benches use
// this to keep table output clean). When the MISS_LOG_LEVEL env var is set
// (0-3 or debug/info/warning/fatal) it pins the threshold and
// SetMinLogLevel becomes a no-op, so CI can silence or raise verbosity
// without code changes.

#ifndef MISS_COMMON_LOGGING_H_
#define MISS_COMMON_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace miss::common {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kFatal = 3 };

// Returns the current minimum level; messages below it are dropped.
LogLevel MinLogLevel();
void SetMinLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace miss::common

#define MISS_LOG_DEBUG                                      \
  ::miss::common::internal::LogMessage(                     \
      ::miss::common::LogLevel::kDebug, __FILE__, __LINE__)
#define MISS_LOG_INFO                                       \
  ::miss::common::internal::LogMessage(                     \
      ::miss::common::LogLevel::kInfo, __FILE__, __LINE__)
#define MISS_LOG_WARNING                                    \
  ::miss::common::internal::LogMessage(                     \
      ::miss::common::LogLevel::kWarning, __FILE__, __LINE__)
#define MISS_LOG_FATAL                                      \
  ::miss::common::internal::LogMessage(                     \
      ::miss::common::LogLevel::kFatal, __FILE__, __LINE__)

#define MISS_LOG(severity) MISS_LOG_##severity

#endif  // MISS_COMMON_LOGGING_H_
