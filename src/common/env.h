// Helpers for reading experiment knobs from environment variables.
//
// Benches use MISS_SCALE / MISS_EPOCHS / MISS_SEEDS so the whole suite can be
// scaled up or down without recompiling (see DESIGN.md section 2).

#ifndef MISS_COMMON_ENV_H_
#define MISS_COMMON_ENV_H_

#include <cstdint>
#include <string>

namespace miss::common {

// Returns the value of `name` parsed as the requested type, or
// `default_value` when unset or unparseable.
double GetEnvDouble(const std::string& name, double default_value);
int64_t GetEnvInt(const std::string& name, int64_t default_value);
std::string GetEnvString(const std::string& name,
                         const std::string& default_value);

}  // namespace miss::common

#endif  // MISS_COMMON_ENV_H_
