// Assertion macros for invariant and precondition checking.
//
// Following the Google C++ style used across this project, the library does
// not use exceptions: violated invariants are programming errors and abort
// the process with a diagnostic message. The CHECK macros are active in all
// build modes (Release included) because silent corruption in a numerical
// library is far more expensive than the branch.

#ifndef MISS_COMMON_CHECK_H_
#define MISS_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace miss::internal {

// Accumulates a failure message and aborts on destruction. Used as the
// right-hand side of the CHECK macros so that user code can stream extra
// context: MISS_CHECK(ok) << "details " << value;
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << condition
            << " ";
  }

  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;

  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

// Swallows the streamed message when the check passes.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace miss::internal

#define MISS_CHECK(condition)                                     \
  if (condition) {                                                \
  } else                                                          \
    ::miss::internal::CheckFailure(__FILE__, __LINE__, #condition)

// The binary forms print both operands on failure.
#define MISS_CHECK_EQ(a, b)                                             \
  if ((a) == (b)) {                                                     \
  } else                                                                \
    ::miss::internal::CheckFailure(__FILE__, __LINE__, #a " == " #b)    \
        << "(" << (a) << " vs " << (b) << ") "
#define MISS_CHECK_NE(a, b)                                             \
  if ((a) != (b)) {                                                     \
  } else                                                                \
    ::miss::internal::CheckFailure(__FILE__, __LINE__, #a " != " #b)    \
        << "(" << (a) << " vs " << (b) << ") "
#define MISS_CHECK_LT(a, b)                                             \
  if ((a) < (b)) {                                                      \
  } else                                                                \
    ::miss::internal::CheckFailure(__FILE__, __LINE__, #a " < " #b)     \
        << "(" << (a) << " vs " << (b) << ") "
#define MISS_CHECK_LE(a, b)                                             \
  if ((a) <= (b)) {                                                     \
  } else                                                                \
    ::miss::internal::CheckFailure(__FILE__, __LINE__, #a " <= " #b)    \
        << "(" << (a) << " vs " << (b) << ") "
#define MISS_CHECK_GT(a, b)                                             \
  if ((a) > (b)) {                                                      \
  } else                                                                \
    ::miss::internal::CheckFailure(__FILE__, __LINE__, #a " > " #b)     \
        << "(" << (a) << " vs " << (b) << ") "
#define MISS_CHECK_GE(a, b)                                             \
  if ((a) >= (b)) {                                                     \
  } else                                                                \
    ::miss::internal::CheckFailure(__FILE__, __LINE__, #a " >= " #b)    \
        << "(" << (a) << " vs " << (b) << ") "

#endif  // MISS_COMMON_CHECK_H_
