#include "common/rng.h"

#include <cmath>

namespace miss::common {

namespace {

// SplitMix64: used only to expand the user seed into the xoshiro state.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
}

uint64_t Rng::Next() {
  // xoshiro256**
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random bits into [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

int64_t Rng::UniformInt(int64_t n) {
  MISS_CHECK_GT(n, 0);
  // Rejection-free for our purposes: modulo bias is negligible for n << 2^64.
  return static_cast<int64_t>(Next() % static_cast<uint64_t>(n));
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  MISS_CHECK_LE(lo, hi);
  return lo + UniformInt(hi - lo + 1);
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

int64_t Rng::Categorical(const std::vector<double>& weights) {
  MISS_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    MISS_CHECK_GE(w, 0.0);
    total += w;
  }
  MISS_CHECK_GT(total, 0.0);
  double r = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return static_cast<int64_t>(i);
  }
  return static_cast<int64_t>(weights.size()) - 1;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xa02bdbf7bb3c0a7ULL); }

}  // namespace miss::common
