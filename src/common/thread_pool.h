// Persistent intra-op worker pool shared by the parallel nn kernels.
//
// Sizing: the process-wide default thread count comes from MISS_NUM_THREADS
// (default: hardware_concurrency), clamped to [1, 256]. A count of 1 means
// strictly serial — ParallelRun degenerates to an inline loop on the caller
// and the global pool never starts a thread. Threads are started lazily on
// the first parallel dispatch and reused for the life of the process.
//
// Determinism contract (the "bitwise-parallel rule", DESIGN.md): ParallelRun
// promises only that fn(i) runs exactly once per index, possibly
// concurrently and in any interleaving. Callers partition work so each
// output element is written by exactly one task with the same accumulation
// order as the serial loop, which makes results bitwise identical for every
// thread count. nn::ParallelFor (nn/parallel.h) packages that contract.
//
// Per-thread override: serving-engine workers run with intra-op = 1 by
// default (the engine already provides inter-op parallelism; fanning each
// forward into the pool would oversubscribe the machine). ScopedIntraOpThreads
// installs a thread-local override that wins over the global default.

#ifndef MISS_COMMON_THREAD_POOL_H_
#define MISS_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace miss::common {

// std::thread::hardware_concurrency(), but never 0.
int HardwareConcurrency();

// Effective intra-op thread count for the calling thread: the thread-local
// ScopedIntraOpThreads override when active, else the process default
// (MISS_NUM_THREADS or hardware_concurrency on first use).
int IntraOpThreads();

// Replaces the process-wide default (benches sweep 1/2/4/8 in one process).
// Clamped to [1, 256]. Does not shrink an already-started pool; a lower
// count simply caps how many threads join each parallel region.
void SetIntraOpThreads(int n);

// RAII thread-local override of IntraOpThreads(); n <= 0 restores the
// process default for the scope instead.
class ScopedIntraOpThreads {
 public:
  explicit ScopedIntraOpThreads(int n);
  ~ScopedIntraOpThreads();
  ScopedIntraOpThreads(const ScopedIntraOpThreads&) = delete;
  ScopedIntraOpThreads& operator=(const ScopedIntraOpThreads&) = delete;

 private:
  int prev_;
};

class ThreadPool {
 public:
  // `num_threads` counts the caller: the pool spawns num_threads - 1
  // workers, lazily on the first ParallelRun that can use them.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total threads a region may use (workers + caller).
  int num_threads() const;

  // Grows the pool so ParallelRun can use up to `num_threads` total threads.
  // Never shrinks.
  void EnsureThreads(int num_threads);

  // Runs fn(0) .. fn(num_tasks - 1) exactly once each, on at most
  // max_threads threads (the caller participates and counts). Blocks until
  // every task finished. Rethrows the first task exception after all tasks
  // ran. Falls back to an inline serial loop when max_threads <= 1, when
  // called from inside a pool task (no nested parallelism), or when another
  // thread is already dispatching a region (no queueing, no deadlock).
  void ParallelRun(int64_t num_tasks, int max_threads,
                   const std::function<void(int64_t)>& fn);

  // True while the calling thread is executing ParallelRun tasks (both pool
  // workers and a participating caller). Used to run nested parallel loops
  // inline.
  static bool InParallelRegion();

 private:
  struct Region;

  void WorkerMain(int index);
  void RunTasks(Region& region);
  void SpawnWorkersLocked();  // grows workers_ to target_threads_ - 1

  mutable std::mutex mu_;             // guards region_/epoch_/stop_/workers_
  std::condition_variable work_cv_;   // workers wait for a new epoch
  std::condition_variable done_cv_;   // dispatcher waits for region completion
  std::shared_ptr<Region> region_;
  uint64_t epoch_ = 0;
  bool stop_ = false;
  int target_threads_ = 1;
  std::vector<std::thread> workers_;

  std::mutex dispatch_mu_;  // one region at a time; losers run inline
};

// The process-wide pool used by nn::ParallelFor. Lazily constructed; sized
// on demand by EnsureThreads.
ThreadPool& GlobalThreadPool();

// Called once on each newly spawned pool thread with its dense index, before
// it processes any task. Lets higher layers (nn/parallel.cc) attach
// telemetry thread names without common depending on obs. Install before
// the first parallel dispatch.
void SetThreadPoolStartHook(std::function<void(int)> hook);

}  // namespace miss::common

#endif  // MISS_COMMON_THREAD_POOL_H_
