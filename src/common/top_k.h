// Deterministic heap-based partial selection: the indices of the k largest
// values without sorting the whole array. Used by rank::RankEngine to turn
// K candidate scores into a top-K listing.

#ifndef MISS_COMMON_TOP_K_H_
#define MISS_COMMON_TOP_K_H_

#include <cstdint>
#include <vector>

namespace miss::common {

// Indices of the k largest values, best first. Deterministic: equal values
// rank by ascending index, so duplicate scores cannot reorder between runs.
// k >= values.size() returns a full ordering; k <= 0 returns empty. O(n log k)
// via a bounded min-heap of the kept indices. Values must not be NaN.
std::vector<int32_t> TopKIndices(const std::vector<float>& values, int64_t k);

}  // namespace miss::common

#endif  // MISS_COMMON_TOP_K_H_
