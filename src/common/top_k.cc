#include "common/top_k.h"

#include <algorithm>

namespace miss::common {

std::vector<int32_t> TopKIndices(const std::vector<float>& values, int64_t k) {
  const int64_t n = static_cast<int64_t>(values.size());
  if (k > n) k = n;
  if (k <= 0) return {};

  // Strict ranking: larger value first, ties to the smaller index.
  auto better = [&values](int32_t a, int32_t b) {
    if (values[a] != values[b]) return values[a] > values[b];
    return a < b;
  };

  // With `better` as the comparator, std::push_heap keeps the *worst* kept
  // index at the front — the one a new candidate must beat to enter.
  std::vector<int32_t> kept;
  kept.reserve(static_cast<size_t>(k));
  for (int32_t i = 0; i < n; ++i) {
    if (static_cast<int64_t>(kept.size()) < k) {
      kept.push_back(i);
      std::push_heap(kept.begin(), kept.end(), better);
    } else if (better(i, kept.front())) {
      std::pop_heap(kept.begin(), kept.end(), better);
      kept.back() = i;
      std::push_heap(kept.begin(), kept.end(), better);
    }
  }
  std::sort(kept.begin(), kept.end(), better);
  return kept;
}

}  // namespace miss::common
