// Deterministic pseudo-random number generation.
//
// All randomness in the library (parameter initialization, shuffling,
// sampling, data generation, augmentation) flows through explicitly seeded
// Rng instances so that every experiment is reproducible bit-for-bit.
//
// The generator is xoshiro256** seeded through SplitMix64, which is fast,
// has good statistical quality, and is trivially portable (unlike
// std::mt19937 distributions, whose outputs differ across standard library
// implementations).

#ifndef MISS_COMMON_RNG_H_
#define MISS_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace miss::common {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Next raw 64-bit value.
  uint64_t Next();

  // Uniform double in [0, 1).
  double Uniform();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [0, n). Requires n > 0.
  int64_t UniformInt(int64_t n);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Standard normal via Box-Muller.
  double Normal();

  // Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  // True with probability p.
  bool Bernoulli(double p);

  // Samples an index in [0, weights.size()) proportionally to weights.
  // Weights must be non-negative with a positive sum.
  int64_t Categorical(const std::vector<double>& weights);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (int64_t i = static_cast<int64_t>(v.size()) - 1; i > 0; --i) {
      int64_t j = UniformInt(i + 1);
      std::swap(v[i], v[j]);
    }
  }

  // Derives an independent child generator; useful for giving each
  // component (data, model init, augmentation) its own stream.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace miss::common

#endif  // MISS_COMMON_RNG_H_
