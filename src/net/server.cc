#include "net/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/build_info.h"
#include "common/logging.h"
#include "net/http.h"
#include "net/protocol.h"
#include "nn/plan.h"
#include "obs/event_log.h"
#include "obs/health.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "rank/rank_engine.h"
#include "serve/health.h"

namespace miss::net {

namespace {

// Compact the consumed prefix of a parse buffer once it is worth the move.
constexpr size_t kCompactThreshold = 64 * 1024;
// Per-connection cap on buffered-but-unparsed input; a client that exceeds
// it (only possible while responses stall parsing) stops being read until
// the backlog drains.
constexpr size_t kMaxRxBuffer = 4 * (1 << 20);

std::string ErrorJson(const std::string& message) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("error").String(message);
  w.EndObject();
  return w.str();
}

// request_id is the server-assigned correlation key the client can echo back
// through POST /feedback to label this prediction.
std::string ScoreJson(float score, uint64_t request_id) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("score").Number(static_cast<double>(score));
  w.Key("request_id").Int(static_cast<int64_t>(request_id));
  w.EndObject();
  return w.str();
}

std::string FeedbackJson(bool matched) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("matched").Bool(matched);
  w.EndObject();
  return w.str();
}

// POST /rank response: scores index-aligned with the request's candidate
// array, plus the best-first top listing with candidate ids resolved.
std::string RankJson(uint64_t request_id, const std::vector<float>& scores,
                     const std::vector<uint32_t>& top,
                     const std::vector<int64_t>& candidates) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("request_id").Int(static_cast<int64_t>(request_id));
  w.Key("scores").BeginArray();
  for (float s : scores) w.Number(static_cast<double>(s));
  w.EndArray();
  w.Key("top").BeginArray();
  for (uint32_t index : top) {
    w.BeginObject();
    w.Key("index").Int(static_cast<int64_t>(index));
    if (index < candidates.size()) {
      w.Key("candidate").Int(candidates[index]);
    }
    if (index < scores.size()) {
      w.Key("score").Number(static_cast<double>(scores[index]));
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

// Escapes a value for a Prometheus label (backslash, quote, newline).
std::string PromLabelEscape(const char* s) {
  std::string out;
  for (const char* p = s; *p != '\0'; ++p) {
    if (*p == '\\' || *p == '"') out.push_back('\\');
    if (*p == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(*p);
  }
  return out;
}

// The build-identity exposition block: a constant 1-valued gauge whose labels
// carry the interesting data (the node_exporter convention). The registry's
// metrics are unlabeled, so this block is emitted here instead.
std::string BuildInfoProm() {
  const common::BuildInfo& info = common::GetBuildInfo();
  std::string out;
  out += "# HELP miss_build_info Build identity of the serving binary; "
         "value is always 1.\n";
  out += "# TYPE miss_build_info gauge\n";
  out += "miss_build_info{git_describe=\"" +
         PromLabelEscape(info.git_describe) + "\",build_type=\"" +
         PromLabelEscape(info.build_type) + "\",compiler=\"" +
         PromLabelEscape(info.compiler) + "\",cxx_standard=\"" +
         PromLabelEscape(info.cxx_standard) + "\"} 1\n";
  return out;
}

// /statusz keeps this many recent slow requests.
constexpr size_t kSlowRingCapacity = 16;

// The serving stage histograms (milliseconds). Each is recorded twice per
// request: into the lifetime Histogram of this name and into the
// SlidingHistogram of the same name (the /statusz rolling window).
constexpr const char* kStageParse = "serve/stage/parse_ms";
constexpr const char* kStageQueue = "serve/stage/queue_ms";
constexpr const char* kStageForward = "serve/stage/forward_ms";
constexpr const char* kStageWrite = "serve/stage/write_ms";
constexpr const char* kStageTotal = "serve/stage/total_ms";

double MsBetween(int64_t from_ns, int64_t to_ns) {
  return static_cast<double>(to_ns - from_ns) / 1e6;
}

// /pprofz profile duration: ?seconds=N, clamped to [1, 60]; default 5.
int64_t ParseProfileSeconds(const std::string& query) {
  int64_t seconds = 5;
  const size_t pos = query.find("seconds=");
  if (pos != std::string::npos &&
      (pos == 0 || query[pos - 1] == '&' || query[pos - 1] == '?')) {
    seconds = std::atoll(query.c_str() + pos + 8);
  }
  return std::clamp<int64_t>(seconds, 1, 60);
}

// Emits one window summary object {count, mean, p50, p95, p99,
// window_seconds} — the /statusz convention for rolling-window histograms.
void WriteWindow(obs::JsonWriter& w, const obs::WindowSnapshot& win) {
  w.BeginObject();
  w.Key("count").Int(win.count);
  w.Key("mean").Number(win.mean);
  w.Key("p50").Number(win.p50);
  w.Key("p95").Number(win.p95);
  w.Key("p99").Number(win.p99);
  w.Key("window_seconds").Number(win.window_seconds);
  w.EndObject();
}

}  // namespace

// Engine callbacks hold a shared_ptr to this sink, not to the Server: a
// worker finishing after a forced teardown (drain timeout) writes into live
// memory and a dup'd pipe end, never a dead Server.
struct Server::CompletionSink {
  std::mutex mu;
  std::vector<Completion> items;
  int wake_fd = -1;  // owned dup of the loop's wake-pipe write end

  ~CompletionSink() {
    if (wake_fd >= 0) ::close(wake_fd);
  }

  void Push(const Completion& c) {
    bool was_empty;
    {
      std::lock_guard<std::mutex> lock(mu);
      was_empty = items.empty();
      items.push_back(c);
    }
    if (was_empty && wake_fd >= 0) {
      const char byte = 1;
      [[maybe_unused]] ssize_t n = ::write(wake_fd, &byte, 1);
    }
  }
};

struct Server::Conn {
  uint64_t id = 0;
  int fd = -1;
  enum class Proto { kSniff, kBinary, kHttp } proto = Proto::kSniff;

  std::string rx;
  size_t rx_off = 0;
  std::string tx;
  size_t tx_off = 0;

  int64_t in_flight = 0;
  bool http_busy = false;       // a /score is waiting on the engine
  bool http_keep_alive = true;  // of that pending /score
  bool read_closed = false;     // peer EOF; still flushing responses
  bool close_after_flush = false;

  int64_t opened_ns = 0;
  int64_t last_read_ns = 0;  // wire entry of the request(s) now buffered
  int64_t requests = 0;
  int64_t bytes_rx = 0;
  int64_t bytes_tx = 0;

  size_t rx_pending() const { return rx.size() - rx_off; }
  size_t tx_pending() const { return tx.size() - tx_off; }
};

Server::Server(serve::Engine& engine, const data::DatasetSchema& schema,
               const ServerConfig& config)
    : owned_fleet_(std::make_unique<fleet::ModelFleet>()),
      fleet_(owned_fleet_.get()),
      config_(config) {
  // One external entry with unlabeled metrics: routing, telemetry, and
  // every response byte match the pre-fleet single-engine server.
  owned_fleet_->AddExternal(
      config.model_name.empty() ? "default" : config.model_name, schema,
      &engine, config.rank, config.health);
}

Server::Server(fleet::ModelFleet& fleet, const ServerConfig& config)
    : fleet_(&fleet), config_(config) {}

Server::~Server() {
  Stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_rd_ >= 0) ::close(wake_rd_);
  if (wake_wr_ >= 0) ::close(wake_wr_);
}

bool Server::Start() {
  MISS_CHECK(!started_) << "net::Server::Start called twice";
  started_ = true;

  listen_fd_ =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    MISS_LOG(WARNING) << "net::Server: socket(): " << std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(config_.port));
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    MISS_LOG(WARNING) << "net::Server: bad bind address \""
                      << config_.bind_address << "\"";
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    MISS_LOG(WARNING) << "net::Server: bind(" << config_.bind_address << ":"
                      << config_.port << "): " << std::strerror(errno);
    return false;
  }
  if (::listen(listen_fd_, config_.backlog) != 0) {
    MISS_LOG(WARNING) << "net::Server: listen(): " << std::strerror(errno);
    return false;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = ntohs(bound.sin_port);

  int pipe_fds[2];
  if (::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) != 0) {
    MISS_LOG(WARNING) << "net::Server: pipe2(): " << std::strerror(errno);
    return false;
  }
  wake_rd_ = pipe_fds[0];
  wake_wr_ = pipe_fds[1];

  sink_ = std::make_shared<CompletionSink>();
  sink_->wake_fd = ::fcntl(wake_wr_, F_DUPFD_CLOEXEC, 0);

  start_ns_ = obs::NowNs();
  flight_ = std::make_unique<obs::FlightRecorder>(obs::FlightRecorderConfig{
      config_.flight_capacity, config_.flight_sample_every});
  if (config_.slow_request_ms > 0 && !config_.slow_log_path.empty()) {
    slow_log_ = std::make_unique<std::ofstream>(config_.slow_log_path,
                                                std::ios::app);
    if (!*slow_log_) {
      MISS_LOG(WARNING) << "net::Server: cannot open slow-request log \""
                        << config_.slow_log_path << "\"";
      slow_log_.reset();
    }
  }

  running_.store(true, std::memory_order_release);
  loop_ = std::thread([this] { EventLoop(); });
  MISS_LOG(INFO) << "net::Server listening on " << config_.bind_address << ":"
                 << port_;
  return true;
}

void Server::RequestStop() {
  stop_requested_.store(true, std::memory_order_release);
  if (wake_wr_ >= 0) {
    const char byte = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_wr_, &byte, 1);
  }
}

void Server::Stop() {
  RequestStop();
  WaitUntilStopped();
}

void Server::WaitUntilStopped() {
  std::lock_guard<std::mutex> lock(join_mu_);
  if (loop_.joinable()) loop_.join();
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void Server::EventLoop() {
  obs::SetCurrentThreadName("net-loop");
  bool listener_open = true;
  bool drain_started = false;
  int64_t drain_deadline_ns = 0;
  std::vector<pollfd> pfds;
  std::vector<uint64_t> pfd_conn;  // conn id per pfds entry; 0 = not a conn

  for (;;) {
    if (stop_requested_.load(std::memory_order_acquire) && !drain_started) {
      drain_started = true;
      draining_ = true;
      drain_deadline_ns = obs::NowNs() + config_.drain_timeout_ms * 1'000'000;
      if (listener_open) {
        ::close(listen_fd_);  // refuse new connections from here on
        listen_fd_ = -1;
        listener_open = false;
      }
      // A profile must not outlive the loop that would serve its response.
      FinishPprofz();
      obs::LogEvent("drain", "", /*ok=*/true,
                    "drain started; timeout " +
                        std::to_string(config_.drain_timeout_ms) + " ms");
    }
    if (pprof_active_ && obs::NowNs() >= pprof_deadline_ns_) FinishPprofz();
    if (drain_started) {
      bool idle = true;
      for (const auto& [id, conn] : conns_) {
        if (conn->in_flight > 0 || conn->tx_pending() > 0) {
          idle = false;
          break;
        }
      }
      if (idle || obs::NowNs() >= drain_deadline_ns) {
        obs::LogEvent("drain", "", /*ok=*/idle,
                      idle ? "drain finished; all connections idle"
                           : "drain deadline hit with requests in flight");
        break;
      }
    }

    pfds.clear();
    pfd_conn.clear();
    pfds.push_back({wake_rd_, POLLIN, 0});
    pfd_conn.push_back(0);
    if (listener_open &&
        static_cast<int>(conns_.size()) < config_.max_connections) {
      pfds.push_back({listen_fd_, POLLIN, 0});
      pfd_conn.push_back(0);
    }
    for (const auto& [id, conn] : conns_) {
      short events = 0;
      if (!draining_ && !conn->read_closed &&
          conn->rx_pending() < kMaxRxBuffer) {
        events |= POLLIN;
      }
      if (conn->tx_pending() > 0) events |= POLLOUT;
      pfds.push_back({conn->fd, events, 0});
      pfd_conn.push_back(id);
    }

    int timeout_ms = -1;
    if (drain_started) {
      timeout_ms = static_cast<int>(std::max<int64_t>(
          1, (drain_deadline_ns - obs::NowNs()) / 1'000'000));
    }
    if (pprof_active_) {
      // Wake by the profile deadline so the /pprofz response is not stuck
      // behind an otherwise-idle poll.
      const int pprof_ms = static_cast<int>(std::max<int64_t>(
          1, (pprof_deadline_ns_ - obs::NowNs()) / 1'000'000));
      if (timeout_ms < 0 || pprof_ms < timeout_ms) timeout_ms = pprof_ms;
    }
    const int ready = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (ready < 0 && errno != EINTR) {
      MISS_LOG(WARNING) << "net::Server: poll(): " << std::strerror(errno);
      obs::LogEvent("listener_error", "", /*ok=*/false,
                    std::string("poll(): ") + std::strerror(errno));
      break;
    }

    if (pfds[0].revents & POLLIN) {
      char buf[256];
      while (::read(wake_rd_, buf, sizeof(buf)) > 0) {
      }
    }
    ProcessCompletions();

    for (size_t i = 1; i < pfds.size(); ++i) {
      if (pfds[i].revents == 0) continue;
      if (pfd_conn[i] == 0) {
        AcceptNew();
        continue;
      }
      auto it = conns_.find(pfd_conn[i]);
      if (it == conns_.end()) continue;  // closed earlier this iteration
      Conn& conn = *it->second;
      if (pfds[i].revents & (POLLERR | POLLNVAL)) {
        CloseConn(conn.id);
        continue;
      }
      if (pfds[i].revents & (POLLIN | POLLHUP)) {
        HandleReadable(conn);
        if (conns_.find(pfd_conn[i]) == conns_.end()) continue;
      }
      if ((pfds[i].revents & POLLOUT) && conn.tx_pending() > 0) {
        FlushWrites(conn);
      }
    }
  }

  // Teardown: anything still open is force-closed (drain timeout, poll
  // failure, or a clean drain whose idle connections simply remain). Late
  // completions land in the shared sink and are dropped.
  FinishPprofz();  // poll-failure exit skips the drain path's stop
  std::vector<uint64_t> remaining;
  remaining.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) remaining.push_back(id);
  for (uint64_t id : remaining) CloseConn(id);
  if (listener_open && listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

void Server::AcceptNew() {
  for (;;) {
    if (static_cast<int>(conns_.size()) >= config_.max_connections) return;
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      MISS_LOG(WARNING) << "net::Server: accept(): " << std::strerror(errno);
      obs::LogEvent("listener_error", "", /*ok=*/false,
                    std::string("accept(): ") + std::strerror(errno));
      return;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto conn = std::make_unique<Conn>();
    conn->id = next_conn_id_++;
    conn->fd = fd;
    conn->opened_ns = obs::NowNs();
    conns_[conn->id] = std::move(conn);
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.connections_accepted;
      ++stats_.connections_active;
    }
    if (obs::Enabled()) {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      reg.GetCounter("net/connections").Add(1);
      reg.GetGauge("net/active_connections")
          .Set(static_cast<double>(conns_.size()));
    }
  }
}

void Server::HandleReadable(Conn& conn) {
  // Wire-entry stamp for the request(s) about to land: only taken when the
  // buffer holds no partial request, so a request split across reads keeps
  // the timestamp of its first byte.
  if (obs::Enabled() && conn.rx_pending() == 0) {
    conn.last_read_ns = obs::NowNs();
  }
  char buf[64 * 1024];
  int64_t read_now = 0;
  // Bounded rounds keep one firehose connection from starving the rest.
  for (int round = 0; round < 4; ++round) {
    const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
    if (n > 0) {
      conn.rx.append(buf, static_cast<size_t>(n));
      conn.bytes_rx += n;
      read_now += n;
      if (static_cast<size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) {
      conn.read_closed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConn(conn.id);
    return;
  }
  if (read_now > 0) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.bytes_rx += read_now;
    }
    if (obs::Enabled()) {
      obs::MetricsRegistry::Global().GetCounter("net/bytes_rx").Add(read_now);
    }
  }
  ParseBuffered(conn);
}

void Server::ParseBuffered(Conn& conn) {
  if (conn.proto == Conn::Proto::kSniff) {
    if (conn.rx_pending() < kBinaryMagicLen) {
      if (conn.read_closed) CloseConn(conn.id);
      return;
    }
    if (std::memcmp(conn.rx.data() + conn.rx_off, kBinaryMagic,
                    kBinaryMagicLen) == 0) {
      conn.proto = Conn::Proto::kBinary;
      conn.rx_off += kBinaryMagicLen;
    } else {
      conn.proto = Conn::Proto::kHttp;
    }
  }
  const uint64_t conn_id = conn.id;
  if (conn.proto == Conn::Proto::kBinary) {
    ParseBinary(conn);
  } else {
    ParseHttp(conn);
  }
  if (conns_.find(conn_id) == conns_.end()) return;  // closed while parsing

  if (conn.rx_off > kCompactThreshold) {
    conn.rx.erase(0, conn.rx_off);
    conn.rx_off = 0;
  }
  if (conn.tx_pending() > 0) FlushWrites(conn);
}

void Server::ParseBinary(Conn& conn) {
  // Each frame routes through the fleet: unnamed frames to the default
  // entry, named frames through the decode resolver. The acquired
  // shared_ptr rides the Completion, so a hot swap cannot retire this
  // generation before the response is written. Acquire() takes the fleet
  // mutex, so the default entry is resolved once per drain, not per frame —
  // a swap mid-buffer only means the tail frames land on the outgoing
  // generation, whose retirement bounces them into the submit retry loop.
  std::shared_ptr<fleet::ServingModel> def = fleet_->Acquire("");
  std::shared_ptr<fleet::ServingModel> named;
  const ModelResolver resolver =
      [this, &named](const std::string& model) -> const data::DatasetSchema* {
    named = fleet_->Acquire(model);
    return named != nullptr ? &named->schema() : nullptr;
  };
  while (!draining_ && !conn.close_after_flush) {
    if (def == nullptr) def = fleet_->Acquire("");
    named.reset();
    WireRequest req;
    std::string error;
    const DecodeStatus status = DecodeRequest(
        conn.rx.data(), conn.rx.size(), &conn.rx_off,
        def != nullptr ? &def->schema() : nullptr, resolver, &req, &error);
    if (status == DecodeStatus::kNeedMoreData) break;
    if (status == DecodeStatus::kMalformed) {
      // Framing is lost: answer once (request id unknown -> 0) and close.
      WireResponse resp;
      resp.request_id = 0;
      resp.ok = false;
      resp.error = error;
      EncodeResponse(resp, &conn.tx);
      conn.close_after_flush = true;
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.protocol_errors;
      ++stats_.responses;
      break;
    }
    if (!req.model_known) {
      // Routing miss: the model name (or the missing/unloaded default) did
      // not resolve. The frame was consumed whole, so framing survives —
      // answer this request id and keep the connection.
      WireResponse resp;
      resp.request_id = req.request_id;
      resp.ok = false;
      resp.error = req.model.empty()
                       ? "default model is not loaded"
                       : "unknown model \"" + req.model + "\"";
      EncodeResponse(resp, &conn.tx);
      // Not a protocol error (the frame was well-formed): only responses.
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.responses;
      continue;
    }
    std::shared_ptr<fleet::ServingModel> entry =
        req.model.empty() ? std::move(def) : std::move(named);
    if (req.kind == WireRequest::Kind::kFeedback) {
      // Feedback is answered inline (no engine round trip): ok with score 1
      // when the id matched a remembered prediction, 0 when unknown; an
      // error frame when model health is not running. Feedback frames are
      // unnamed, so they join against the default model's monitor.
      serve::ModelHealthMonitor* health =
          entry != nullptr ? entry->health() : nullptr;
      WireResponse resp;
      resp.request_id = req.request_id;
      if (health != nullptr && obs::Enabled()) {
        resp.ok = true;
        resp.score = health->Feedback(req.request_id, req.label) ? 1.0f : 0.0f;
      } else {
        resp.ok = false;
        resp.error = "model health is disabled";
      }
      EncodeResponse(resp, &conn.tx);
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.responses;
      }
      continue;
    }
    if (req.kind == WireRequest::Kind::kRank) {
      WireResponse resp;
      resp.request_id = req.request_id;
      if (!entry->rank_enabled()) {
        resp.ok = false;
        resp.error = "candidate ranking is not enabled";
        EncodeResponse(resp, &conn.tx);
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.responses;
        continue;
      }
      if (!ValidateRankRequest(req.sample, req.candidates, entry->schema(),
                               &error)) {
        resp.ok = false;
        resp.error = error;
        EncodeResponse(resp, &conn.tx);
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.protocol_errors;
        ++stats_.responses;
        continue;
      }
      SubmitRank(conn, req.request_id, /*http=*/false, std::move(entry),
                 std::move(req.sample), std::move(req.candidates),
                 static_cast<int64_t>(req.top_k));
      continue;
    }
    if (!ValidateSample(req.sample, entry->schema(), &error)) {
      // The frame itself was well-formed, so framing survives: report the
      // defect against its request id and keep the connection.
      WireResponse resp;
      resp.request_id = req.request_id;
      resp.ok = false;
      resp.error = error;
      EncodeResponse(resp, &conn.tx);
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.protocol_errors;
        ++stats_.responses;
      }
      continue;
    }
    SubmitScore(conn, req.request_id, /*http=*/false, std::move(entry),
                std::move(req.sample));
  }
  if (conn.read_closed && conn.in_flight == 0 && conn.tx_pending() == 0) {
    CloseConn(conn.id);
  }
}

void Server::ParseHttp(Conn& conn) {
  while (!draining_ && !conn.http_busy && !conn.close_after_flush) {
    HttpRequest req;
    int status_code = 400;
    std::string error;
    const HttpParseStatus status = ParseHttpRequest(
        conn.rx.data(), conn.rx.size(), &conn.rx_off,
        config_.max_http_head_bytes, config_.max_http_body_bytes, &req,
        &status_code, &error);
    if (status == HttpParseStatus::kNeedMoreData) break;
    if (status == HttpParseStatus::kBad) {
      conn.tx += MakeHttpResponse(status_code, "application/json",
                                  ErrorJson(error), /*keep_alive=*/false);
      conn.close_after_flush = true;
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.protocol_errors;
      ++stats_.responses;
      break;
    }

    bool responded = true;
    // The origin-form target keeps its query string; route on the path part.
    std::string route = req.path;
    std::string query;
    const size_t qpos = route.find('?');
    if (qpos != std::string::npos) {
      query = route.substr(qpos + 1);
      route.resize(qpos);
    }
    // Model-addressed routes: /score/<name> etc.; "" = the default model.
    std::string model;
    if (req.method == "GET" && route == "/healthz") {
      conn.tx += MakeHttpResponse(200, "application/json", HealthzJson(),
                                  req.keep_alive);
    } else if (req.method == "GET" && route == "/metricz") {
      // Health gauges are computed on demand; refresh every entry's monitor
      // so the scrape sees current drift/calibration values, not the last
      // request's.
      if (obs::Enabled()) {
        for (const std::string& name : fleet_->ModelNames()) {
          std::shared_ptr<fleet::ServingModel> e = fleet_->Acquire(name);
          if (e != nullptr && e->health() != nullptr) {
            e->health()->UpdateGauges();
          }
        }
      }
      if (query == "format=prom") {
        conn.tx += MakeHttpResponse(
            200, "text/plain; version=0.0.4",
            BuildInfoProm() +
                obs::MetricsRegistry::Global().ToPrometheusText(),
            req.keep_alive);
      } else {
        conn.tx += MakeHttpResponse(200, "application/json",
                                    obs::MetricsRegistry::Global().ToJson(),
                                    req.keep_alive);
      }
    } else if (req.method == "GET" && route == "/statusz") {
      conn.tx += MakeHttpResponse(200, "application/json", StatuszJson(),
                                  req.keep_alive);
    } else if (req.method == "GET" && route == "/tracez") {
      conn.tx += MakeHttpResponse(200, "application/json", TracezJson(),
                                  req.keep_alive);
    } else if (req.method == "GET" && route == "/eventz") {
      conn.tx += MakeHttpResponse(200, "application/json", EventzJson(),
                                  req.keep_alive);
    } else if (req.method == "GET" && route == "/pprofz") {
      if (!config_.enable_pprofz) {
        conn.tx += MakeHttpResponse(
            403, "application/json",
            ErrorJson("profiling is not enabled on this server"),
            req.keep_alive);
      } else if (pprof_active_ || obs::ProfilerActive()) {
        conn.tx += MakeHttpResponse(
            409, "application/json",
            ErrorJson("a profile is already running"), req.keep_alive);
      } else {
        // The response is deferred to the profile deadline; the loop keeps
        // serving everything else meanwhile.
        responded = false;
        StartPprofz(conn, query, req.keep_alive);
      }
    } else if (req.method == "GET" && SplitModelRoute(route, "/modelz",
                                                      &model)) {
      std::shared_ptr<fleet::ServingModel> entry = fleet_->Acquire(model);
      if (entry == nullptr) {
        conn.tx += MakeHttpResponse(
            404, "application/json",
            ErrorJson(model.empty() ? "default model is not loaded"
                                    : "unknown model \"" + model + "\""),
            req.keep_alive);
      } else if (entry->health() != nullptr && obs::Enabled()) {
        conn.tx += MakeHttpResponse(200, "application/json",
                                    entry->health()->ModelzJson(),
                                    req.keep_alive);
      } else {
        conn.tx += MakeHttpResponse(
            503, "application/json",
            ErrorJson(entry->health() == nullptr
                          ? "model health monitoring is not attached"
                          : "telemetry is disabled (set MISS_OBS=1)"),
            req.keep_alive);
      }
    } else if (req.method == "POST" && SplitModelRoute(route, "/feedback",
                                                       &model)) {
      std::shared_ptr<fleet::ServingModel> entry = fleet_->Acquire(model);
      obs::JsonValue body;
      const obs::JsonValue* id_v = nullptr;
      const obs::JsonValue* label_v = nullptr;
      if (obs::JsonParse(req.body, &body) && body.IsObject()) {
        id_v = body.Find("request_id");
        label_v = body.Find("label");
      }
      if (id_v == nullptr || !id_v->IsNumber() || label_v == nullptr ||
          !label_v->IsNumber()) {
        conn.tx += MakeHttpResponse(
            400, "application/json",
            ErrorJson("feedback body must be {\"request_id\": <number>, "
                      "\"label\": <number>}"),
            req.keep_alive);
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.protocol_errors;
      } else if (entry == nullptr) {
        conn.tx += MakeHttpResponse(
            404, "application/json",
            ErrorJson(model.empty() ? "default model is not loaded"
                                    : "unknown model \"" + model + "\""),
            req.keep_alive);
      } else if (entry->health() == nullptr || !obs::Enabled()) {
        conn.tx += MakeHttpResponse(
            503, "application/json",
            ErrorJson(entry->health() == nullptr
                          ? "model health monitoring is not attached"
                          : "telemetry is disabled (set MISS_OBS=1)"),
            req.keep_alive);
      } else {
        const bool matched = entry->health()->Feedback(
            static_cast<uint64_t>(id_v->number),
            static_cast<float>(label_v->number));
        conn.tx += MakeHttpResponse(200, "application/json",
                                    FeedbackJson(matched), req.keep_alive);
      }
    } else if (req.method == "POST" && SplitModelRoute(route, "/score",
                                                       &model)) {
      std::shared_ptr<fleet::ServingModel> entry = fleet_->Acquire(model);
      data::Sample sample;
      if (entry == nullptr) {
        conn.tx += MakeHttpResponse(
            404, "application/json",
            ErrorJson(model.empty() ? "default model is not loaded"
                                    : "unknown model \"" + model + "\""),
            req.keep_alive);
      } else if (!ParseScoreRequestJson(req.body, entry->schema(), &sample,
                                        &error)) {
        conn.tx += MakeHttpResponse(400, "application/json", ErrorJson(error),
                                    req.keep_alive);
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.protocol_errors;
      } else {
        conn.http_busy = true;
        conn.http_keep_alive = req.keep_alive;
        responded = false;
        SubmitScore(conn, next_http_request_id_++, /*http=*/true,
                    std::move(entry), std::move(sample));
      }
    } else if (req.method == "POST" && SplitModelRoute(route, "/rank",
                                                       &model)) {
      std::shared_ptr<fleet::ServingModel> entry = fleet_->Acquire(model);
      data::Sample user;
      std::vector<int64_t> candidates;
      int64_t top_k = 0;
      if (entry == nullptr) {
        conn.tx += MakeHttpResponse(
            404, "application/json",
            ErrorJson(model.empty() ? "default model is not loaded"
                                    : "unknown model \"" + model + "\""),
            req.keep_alive);
      } else if (!entry->rank_enabled()) {
        conn.tx += MakeHttpResponse(
            503, "application/json",
            ErrorJson("candidate ranking is not enabled"), req.keep_alive);
      } else if (!ParseRankRequestJson(req.body, entry->schema(), &user,
                                       &candidates, &top_k, &error)) {
        conn.tx += MakeHttpResponse(400, "application/json", ErrorJson(error),
                                    req.keep_alive);
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.protocol_errors;
      } else {
        conn.http_busy = true;
        conn.http_keep_alive = req.keep_alive;
        responded = false;
        SubmitRank(conn, next_http_request_id_++, /*http=*/true,
                   std::move(entry), std::move(user), std::move(candidates),
                   top_k);
      }
    } else if (req.method == "POST" &&
               (route == "/admin/reload" || route == "/admin/unload")) {
      // Optional JSON body {"model": "<name>"}; empty body targets the
      // default model. The swap runs on the fleet worker thread and answers
      // back through the completion queue — the event loop never blocks on
      // a bundle load.
      bool bad_body = false;
      if (!req.body.empty()) {
        obs::JsonValue body;
        const obs::JsonValue* model_v = nullptr;
        if (obs::JsonParse(req.body, &body) && body.IsObject()) {
          model_v = body.Find("model");
        }
        if (model_v != nullptr && model_v->IsString()) {
          model = model_v->string;
        } else {
          bad_body = true;
        }
      }
      if (bad_body) {
        conn.tx += MakeHttpResponse(
            400, "application/json",
            ErrorJson("admin body must be empty or {\"model\": <string>}"),
            req.keep_alive);
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.protocol_errors;
      } else {
        if (model.empty()) model = fleet_->default_model();
        conn.http_busy = true;
        conn.http_keep_alive = req.keep_alive;
        responded = false;
        SubmitAdmin(conn, route == "/admin/reload", model);
      }
    } else if (req.method != "GET" && req.method != "POST") {
      conn.tx += MakeHttpResponse(405, "application/json",
                                  ErrorJson("method not allowed"),
                                  req.keep_alive);
    } else {
      conn.tx += MakeHttpResponse(
          404, "application/json",
          ErrorJson("no such endpoint; try POST /score[/<model>], "
                    "POST /rank[/<model>], POST /feedback, "
                    "POST /admin/reload, POST /admin/unload, GET /healthz, "
                    "GET /metricz, GET /statusz, GET /modelz[/<model>], "
                    "GET /tracez, GET /eventz, GET /pprofz?seconds=N"),
          req.keep_alive);
    }
    if (responded) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.responses;
    }
    if (!req.keep_alive && !conn.http_busy) {
      conn.close_after_flush = true;
      break;
    }
  }
  if (conn.read_closed && conn.in_flight == 0 && conn.tx_pending() == 0 &&
      !conn.http_busy) {
    CloseConn(conn.id);
  }
}

void Server::SubmitScore(Conn& conn, uint64_t request_id, bool http,
                         std::shared_ptr<fleet::ServingModel> entry,
                         data::Sample sample) {
  ++conn.in_flight;
  ++conn.requests;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.requests;
    ++stats_.in_flight;
  }
  Completion pending;
  pending.conn_id = conn.id;
  pending.request_id = request_id;
  pending.http = http;
  pending.parsed_ns = obs::NowNs();
  if (obs::Enabled()) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    reg.GetCounter("net/requests").Add(1);
    reg.GetSlidingCounter("net/requests").Add(1);
    if (!entry->metric_suffix().empty()) {
      reg.GetCounter(entry->metric_names().net_requests).Add(1);
      reg.GetSlidingCounter(entry->metric_names().net_requests).Add(1);
    }
    // Trace the request through the engine. recv falls back to parse time
    // for requests that arrived glued to an earlier one in the same read.
    pending.trace.trace_id = next_trace_id_++;
    pending.trace.recv_ns =
        conn.last_read_ns != 0 ? conn.last_read_ns : pending.parsed_ns;
    if (obs::TracingActive()) {
      // The net-loop half of the request's Perfetto lane: one slice from
      // wire entry to engine submit, with the flow arrow starting inside it
      // (at the slice start, which the slice contains).
      obs::EmitTraceEvent("net/request", pending.trace.recv_ns,
                          pending.parsed_ns - pending.trace.recv_ns);
      obs::EmitFlowStart(pending.trace.trace_id, pending.trace.recv_ns);
    }
  }
  std::shared_ptr<CompletionSink> sink = sink_;
  const std::string model_name = entry->name();
  // A false SubmitScore means the generation retired between Acquire and
  // submit (the sample is untouched): re-Acquire and land on the successor.
  // Null after a retire means the entry was unloaded — fail the request.
  for (;;) {
    pending.entry = entry;
    if (entry->SubmitScore(
            &sample, pending.trace,
            [sink, pending](float score, bool ok,
                            const serve::RequestTrace& trace) {
              Completion done = pending;
              done.ok = ok;
              done.score = score;
              done.trace = trace;
              sink->Push(done);
            })) {
      return;
    }
    entry = fleet_->Acquire(model_name);
    if (entry == nullptr) {
      Completion done = pending;
      done.ok = false;
      sink->Push(done);
      return;
    }
  }
}

void Server::SubmitRank(Conn& conn, uint64_t request_id, bool http,
                        std::shared_ptr<fleet::ServingModel> entry,
                        data::Sample user, std::vector<int64_t> candidates,
                        int64_t top_k) {
  ++conn.in_flight;
  ++conn.requests;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.requests;
    ++stats_.rank_requests;
    ++stats_.in_flight;
  }
  Completion pending;
  pending.conn_id = conn.id;
  pending.request_id = request_id;
  pending.http = http;
  pending.rank = true;
  pending.candidates = candidates;
  pending.parsed_ns = obs::NowNs();
  if (obs::Enabled()) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    reg.GetCounter("net/requests").Add(1);
    reg.GetSlidingCounter("net/requests").Add(1);
    if (!entry->metric_suffix().empty()) {
      reg.GetCounter(entry->metric_names().net_requests).Add(1);
      reg.GetSlidingCounter(entry->metric_names().net_requests).Add(1);
    }
    pending.trace.trace_id = next_trace_id_++;
    pending.trace.recv_ns =
        conn.last_read_ns != 0 ? conn.last_read_ns : pending.parsed_ns;
    if (obs::TracingActive()) {
      obs::EmitTraceEvent("net/request", pending.trace.recv_ns,
                          pending.parsed_ns - pending.trace.recv_ns);
      obs::EmitFlowStart(pending.trace.trace_id, pending.trace.recv_ns);
    }
  }
  rank::RankRequest request;
  request.user = std::move(user);
  request.candidates = std::move(candidates);
  request.top_k = top_k;
  std::shared_ptr<CompletionSink> sink = sink_;
  const std::string model_name = entry->name();
  for (;;) {
    pending.entry = entry;
    if (entry->SubmitRank(
            &request, pending.trace,
            [sink, pending](rank::RankResult result, bool ok,
                            const serve::RequestTrace& trace) {
              Completion done = pending;
              done.ok = ok;
              done.scores = std::move(result.scores);
              done.top.reserve(result.top.size());
              for (int32_t index : result.top) {
                done.top.push_back(static_cast<uint32_t>(index));
              }
              done.trace = trace;
              sink->Push(done);
            })) {
      return;
    }
    // Retired between Acquire and submit; retry on the successor — which
    // may no longer rank (schema-compatible bundles share a candidate
    // field, but an unloaded entry yields null).
    entry = fleet_->Acquire(model_name);
    if (entry == nullptr || !entry->rank_enabled()) {
      Completion done = pending;
      done.ok = false;
      sink->Push(done);
      return;
    }
  }
}

void Server::SubmitAdmin(Conn& conn, bool reload, const std::string& model) {
  ++conn.in_flight;
  ++conn.requests;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.requests;
    ++stats_.in_flight;
  }
  Completion pending;
  pending.conn_id = conn.id;
  pending.http = true;
  pending.admin = true;
  pending.parsed_ns = obs::NowNs();
  std::shared_ptr<CompletionSink> sink = sink_;
  const auto done_cb = [sink, pending, reload,
                        model](bool ok, std::string error) {
    Completion done = pending;
    done.ok = true;  // app-level failure, not an engine drain: keep-alive
    if (ok) {
      done.admin_status = 200;
      obs::JsonWriter w;
      w.BeginObject();
      w.Key("ok").Bool(true);
      w.Key("action").String(reload ? "reload" : "unload");
      w.Key("model").String(model);
      w.EndObject();
      done.admin_body = w.str();
    } else {
      done.admin_status =
          error.rfind("unknown model", 0) == 0 ? 404 : 409;
      done.admin_body = ErrorJson(error);
    }
    sink->Push(done);
  };
  if (reload) {
    fleet_->ReloadAsync(model, done_cb);
  } else {
    fleet_->UnloadAsync(model, done_cb);
  }
}

void Server::StartPprofz(Conn& conn, const std::string& query,
                         bool keep_alive) {
  const int64_t seconds = ParseProfileSeconds(query);
  if (!obs::ProfilerStart()) {
    conn.tx += MakeHttpResponse(500, "application/json",
                                ErrorJson("profiler failed to start"),
                                keep_alive);
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.responses;
    return;
  }
  pprof_active_ = true;
  pprof_deadline_ns_ = obs::NowNs() + seconds * 1'000'000'000;
  pprof_conn_id_ = conn.id;
  pprof_keep_alive_ = keep_alive;
  conn.http_busy = true;  // one request in flight per HTTP connection
  obs::LogEvent("profiler", "", /*ok=*/true,
                "profile started via /pprofz (" + std::to_string(seconds) +
                    " s)");
}

void Server::FinishPprofz() {
  if (!pprof_active_) return;
  pprof_active_ = false;
  const std::string folded = obs::ProfilerStop();
  obs::LogEvent("profiler", "", /*ok=*/true,
                "profile finished (" +
                    std::to_string(obs::ProfilerSampleCount()) + " samples)");
  auto it = conns_.find(pprof_conn_id_);
  pprof_conn_id_ = 0;
  if (it == conns_.end()) return;  // requester hung up mid-profile
  Conn& conn = *it->second;
  conn.tx += MakeHttpResponse(200, "text/plain; charset=utf-8", folded,
                              pprof_keep_alive_);
  conn.http_busy = false;
  if (!pprof_keep_alive_) conn.close_after_flush = true;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.responses;
  }
  FlushWrites(conn);
}

void Server::ProcessCompletions() {
  std::vector<Completion> items;
  {
    std::lock_guard<std::mutex> lock(sink_->mu);
    items.swap(sink_->items);
  }
  if (items.empty()) return;

  const int64_t now_ns = obs::NowNs();
  obs::Histogram* latency =
      obs::Enabled() ? &obs::MetricsRegistry::Global().GetHistogram(
                           "net/request_latency_ms")
                     : nullptr;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.in_flight -= static_cast<int64_t>(items.size());
    stats_.responses += static_cast<int64_t>(items.size());
  }

  for (const Completion& c : items) {
    if (latency != nullptr && !c.admin) {
      const double ms = static_cast<double>(now_ns - c.parsed_ns) / 1e6;
      latency->Record(ms);
      if (c.entry != nullptr && !c.entry->metric_suffix().empty()) {
        obs::MetricsRegistry::Global()
            .GetHistogram(c.entry->metric_names().net_latency)
            .Record(ms);
      }
      RecordStages(c, now_ns);
    }
    // Remember the served score so later feedback can be joined to it —
    // including for clients whose connection died before the reply landed.
    // Rank scores are not remembered: one request id covers K candidates,
    // so a scalar feedback label has no single score to join against.
    if (c.ok && !c.rank && !c.admin && c.entry != nullptr &&
        c.entry->health() != nullptr && obs::Enabled()) {
      c.entry->health()->RememberScore(c.request_id, c.score);
    }
    auto it = conns_.find(c.conn_id);
    if (it == conns_.end()) continue;  // connection died while scoring
    Conn& conn = *it->second;
    --conn.in_flight;
    if (c.admin) {
      // Admin responses were prebuilt on the fleet worker; an app-level
      // failure (409/404 body) keeps the connection alive.
      const bool keep = conn.http_keep_alive;
      conn.tx += MakeHttpResponse(c.admin_status, "application/json",
                                  c.admin_body, keep);
      conn.http_busy = false;
      if (!keep) conn.close_after_flush = true;
    } else if (c.http) {
      const bool keep = conn.http_keep_alive && c.ok;
      if (!c.ok) {
        conn.tx += MakeHttpResponse(503, "application/json",
                                    ErrorJson("engine is draining"), false);
      } else if (c.rank) {
        conn.tx += MakeHttpResponse(
            200, "application/json",
            RankJson(c.request_id, c.scores, c.top, c.candidates), keep);
      } else {
        conn.tx += MakeHttpResponse(200, "application/json",
                                    ScoreJson(c.score, c.request_id), keep);
      }
      conn.http_busy = false;
      if (!keep) conn.close_after_flush = true;
    } else if (c.rank && c.ok) {
      EncodeRankResponse(c.request_id, c.scores, c.top, &conn.tx);
    } else {
      WireResponse resp;
      resp.request_id = c.request_id;
      resp.ok = c.ok;
      resp.score = c.score;
      if (!c.ok) resp.error = "engine is draining";
      EncodeResponse(resp, &conn.tx);
    }
  }

  // One flush per touched connection; a freed-up HTTP connection may have
  // the next pipelined request already buffered.
  std::vector<uint64_t> ids;
  ids.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) ids.push_back(id);
  for (uint64_t id : ids) {
    auto it = conns_.find(id);
    if (it == conns_.end()) continue;
    Conn& conn = *it->second;
    if (conn.tx_pending() > 0 || conn.close_after_flush || conn.read_closed) {
      if (!FlushWrites(conn)) continue;
    }
    if (conns_.find(id) == conns_.end()) continue;
    if (conn.proto == Conn::Proto::kHttp && !conn.http_busy &&
        conn.rx_pending() > 0 && !draining_) {
      ParseBuffered(conn);
    }
  }
}

void Server::RecordStages(const Completion& c, int64_t reply_ns) {
  // Requests failed before scoring (drain) or submitted with telemetry off
  // carry zero stamps; they get no stage histograms, but failures still
  // reach the flight recorder — an error tail with no /tracez entry would
  // defeat tail-based retention.
  const serve::RequestTrace& t = c.trace;
  const bool stamped = t.trace_id != 0 && t.enqueue_ns != 0 &&
                       t.batch_close_ns != 0 && t.forward_done_ns != 0;
  double parse_ms = 0, queue_ms = 0, forward_ms = 0, write_ms = 0,
         total_ms = 0;
  if (stamped) {
    parse_ms = MsBetween(t.recv_ns, t.enqueue_ns);
    queue_ms = MsBetween(t.enqueue_ns, t.batch_close_ns);
    forward_ms = MsBetween(t.batch_close_ns, t.forward_done_ns);
    write_ms = MsBetween(t.forward_done_ns, reply_ns);
    total_ms = MsBetween(t.recv_ns, reply_ns);
  } else if (t.recv_ns != 0) {
    total_ms = MsBetween(t.recv_ns, reply_ns);
  }
  const bool slow = config_.slow_request_ms > 0 && stamped &&
                    total_ms >= static_cast<double>(config_.slow_request_ms);

  if (flight_ != nullptr && flight_->enabled()) {
    obs::FlightRecord rec;
    rec.trace_id = t.trace_id;
    rec.recv_ns = t.recv_ns;
    rec.proto = c.http ? "http" : "binary";
    rec.endpoint = c.rank ? "rank" : "score";
    rec.model = c.entry != nullptr ? c.entry->name() : "";
    rec.replica = t.replica;
    rec.ok = c.ok;
    rec.slow = slow;
    if (!c.ok) rec.error = "engine is draining";
    rec.total_ms = total_ms;
    rec.parse_ms = parse_ms;
    rec.queue_ms = queue_ms;
    rec.forward_ms = forward_ms;
    rec.write_ms = write_ms;
    flight_->Record(rec);
  }

  if (!stamped) return;

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.GetHistogram(kStageParse).Record(parse_ms);
  reg.GetHistogram(kStageQueue).Record(queue_ms);
  reg.GetHistogram(kStageForward).Record(forward_ms);
  reg.GetHistogram(kStageWrite).Record(write_ms);
  reg.GetHistogram(kStageTotal).Record(total_ms);
  reg.GetSlidingHistogram(kStageParse).Record(parse_ms);
  reg.GetSlidingHistogram(kStageQueue).Record(queue_ms);
  reg.GetSlidingHistogram(kStageForward).Record(forward_ms);
  reg.GetSlidingHistogram(kStageWrite).Record(write_ms);
  reg.GetSlidingHistogram(kStageTotal).Record(total_ms);
  if (c.entry != nullptr && !c.entry->metric_suffix().empty()) {
    // The per-model view of the same breakdown; the unlabeled series above
    // stay the server-wide aggregate.
    const fleet::EntryMetricNames& names = c.entry->metric_names();
    reg.GetHistogram(names.stage_parse).Record(parse_ms);
    reg.GetHistogram(names.stage_queue).Record(queue_ms);
    reg.GetHistogram(names.stage_forward).Record(forward_ms);
    reg.GetHistogram(names.stage_write).Record(write_ms);
    reg.GetHistogram(names.stage_total).Record(total_ms);
    reg.GetSlidingHistogram(names.stage_parse).Record(parse_ms);
    reg.GetSlidingHistogram(names.stage_queue).Record(queue_ms);
    reg.GetSlidingHistogram(names.stage_forward).Record(forward_ms);
    reg.GetSlidingHistogram(names.stage_write).Record(write_ms);
    reg.GetSlidingHistogram(names.stage_total).Record(total_ms);
  }

  if (!slow) return;
  SlowRequest entry;
  entry.trace_id = t.trace_id;
  entry.http = c.http;
  entry.ok = c.ok;
  entry.model = c.entry != nullptr ? c.entry->name() : "";
  entry.replica = t.replica;
  entry.total_ms = total_ms;
  entry.parse_ms = parse_ms;
  entry.queue_ms = queue_ms;
  entry.forward_ms = forward_ms;
  entry.write_ms = write_ms;
  if (slow_ring_.size() < kSlowRingCapacity) {
    slow_ring_.push_back(entry);
  } else {
    slow_ring_[slow_ring_next_] = entry;
  }
  slow_ring_next_ = (slow_ring_next_ + 1) % kSlowRingCapacity;
  ++slow_count_;
  if (slow_log_ != nullptr) {
    obs::JsonWriter w;
    w.BeginObject();
    w.Key("trace_id").Int(static_cast<int64_t>(t.trace_id));
    w.Key("proto").String(c.http ? "http" : "binary");
    w.Key("model").String(entry.model);
    w.Key("replica").Int(entry.replica);
    w.Key("ok").Bool(c.ok);
    w.Key("total_ms").Number(total_ms);
    w.Key("parse_ms").Number(parse_ms);
    w.Key("queue_ms").Number(queue_ms);
    w.Key("forward_ms").Number(forward_ms);
    w.Key("write_ms").Number(write_ms);
    w.EndObject();
    (*slow_log_) << w.str() << "\n";
    slow_log_->flush();
  }
}

bool Server::FlushWrites(Conn& conn) {
  int64_t wrote_now = 0;
  while (conn.tx_pending() > 0) {
    const ssize_t n =
        ::write(conn.fd, conn.tx.data() + conn.tx_off, conn.tx_pending());
    if (n > 0) {
      conn.tx_off += static_cast<size_t>(n);
      conn.bytes_tx += n;
      wrote_now += n;
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConn(conn.id);
    return false;
  }
  if (wrote_now > 0) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.bytes_tx += wrote_now;
    }
    if (obs::Enabled()) {
      obs::MetricsRegistry::Global().GetCounter("net/bytes_tx").Add(wrote_now);
    }
  }
  if (conn.tx_pending() > 0) return true;  // kernel buffer full; poll POLLOUT
  conn.tx.clear();
  conn.tx_off = 0;
  // Fully flushed: honor deferred closes (protocol error, Connection: close,
  // or peer EOF with nothing left to answer).
  const bool drained = conn.in_flight == 0 && !conn.http_busy;
  if (drained && (conn.close_after_flush ||
                  (conn.read_closed && conn.rx_pending() == 0))) {
    CloseConn(conn.id);
    return false;
  }
  return true;
}

void Server::CloseConn(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Conn& conn = *it->second;
  if (obs::Enabled()) {
    obs::MetricsRegistry::Global()
        .GetGauge("net/active_connections")
        .Set(static_cast<double>(conns_.size() - 1));
    MISS_LOG(DEBUG) << "net::Server conn " << conn.id << " closed: "
                    << conn.requests << " requests, " << conn.bytes_rx
                    << " B in, " << conn.bytes_tx << " B out, "
                    << (obs::NowNs() - conn.opened_ns) / 1'000'000 << " ms";
  }
  ::close(conn.fd);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    --stats_.connections_active;
  }
  conns_.erase(it);
}

std::string Server::HealthzJson() const {
  const ServerStats s = stats();
  const std::shared_ptr<fleet::ServingModel> def = fleet_->Acquire("");
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("status").String(draining_ ? "draining" : "ok");
  w.Key("connections").Int(s.connections_active);
  w.Key("connections_total").Int(s.connections_accepted);
  w.Key("requests").Int(s.requests);
  w.Key("responses").Int(s.responses);
  w.Key("in_flight").Int(s.in_flight);
  w.Key("protocol_errors").Int(s.protocol_errors);
  w.Key("bytes_rx").Int(s.bytes_rx);
  w.Key("bytes_tx").Int(s.bytes_tx);
  w.Key("engine_queue_depth").Int(def != nullptr ? def->QueueDepth() : 0);
  w.Key("telemetry_enabled").Bool(obs::Enabled());
  if (obs::Enabled()) {
    // The serve/* and net/* slices of the registry snapshot — the numbers
    // an operator actually wants from a scoring tier. /metricz has it all.
    const obs::RegistrySnapshot snap =
        obs::MetricsRegistry::Global().SnapshotAll();
    w.Key("metrics").BeginObject();
    for (const auto& [name, value] : snap.counters) {
      if (name.rfind("serve/", 0) == 0 || name.rfind("net/", 0) == 0) {
        w.Key(name).Int(value);
      }
    }
    for (const auto& [name, value] : snap.gauges) {
      if (name.rfind("serve/", 0) == 0 || name.rfind("net/", 0) == 0) {
        w.Key(name).Number(value);
      }
    }
    for (const auto& [name, hist] : snap.histograms) {
      if (name.rfind("serve/", 0) != 0 && name.rfind("net/", 0) != 0) {
        continue;
      }
      w.Key(name).BeginObject();
      w.Key("count").Int(hist.count);
      w.Key("p50").Number(hist.p50);
      w.Key("p95").Number(hist.p95);
      w.Key("p99").Number(hist.p99);
      w.EndObject();
    }
    w.EndObject();
  }
  w.EndObject();
  return w.str();
}

std::string Server::StatuszJson() const {
  const ServerStats s = stats();
  const std::shared_ptr<fleet::ServingModel> def = fleet_->Acquire("");
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("status").String(draining_ ? "draining" : "ok");
  w.Key("uptime_seconds")
      .Number(static_cast<double>(obs::NowNs() - start_ns_) / 1e9);
  // Legacy single-model keys: the configured identity when set, else the
  // fleet default's.
  w.Key("model").String(!config_.model_name.empty() || def == nullptr
                            ? config_.model_name
                            : def->name());
  w.Key("bundle").String(!config_.bundle_path.empty() || def == nullptr
                             ? config_.bundle_path
                             : def->bundle_path());
  {
    const common::BuildInfo& info = common::GetBuildInfo();
    w.Key("build").BeginObject();
    w.Key("git_describe").String(info.git_describe);
    w.Key("build_type").String(info.build_type);
    w.Key("compiler").String(info.compiler);
    w.Key("cxx_standard").String(info.cxx_standard);
    w.EndObject();
  }
  w.Key("telemetry_enabled").Bool(obs::Enabled());
  obs::RegistrySnapshot snap;
  if (obs::Enabled()) snap = obs::MetricsRegistry::Global().SnapshotAll();

  // Transport-level view.
  w.Key("net").BeginObject();
  w.Key("connections").Int(s.connections_active);
  w.Key("in_flight").Int(s.in_flight);
  w.Key("requests_total").Int(s.requests);
  if (obs::Enabled()) {
    w.Key("qps_window").Number(snap.RateOr("net/requests", 0.0));
  }
  w.EndObject();

  // Scoring-path view: queue, stage breakdown, slow tail, allocations.
  w.Key("serve").BeginObject();
  w.Key("engine_queue_depth").Int(def != nullptr ? def->QueueDepth() : 0);
  w.Key("model_health_attached")
      .Bool(def != nullptr && def->health() != nullptr);
  {
    // Compiled-plan view of the default model: per-bucket plan shape and
    // the plan-vs-fallback request split. The fleet models array below
    // carries the per-entry equivalents.
    const serve::Bundle* bundle = def != nullptr ? def->bundle() : nullptr;
    const nn::PlanSet* plans =
        bundle != nullptr ? bundle->plans.get() : nullptr;
    w.Key("plan").BeginObject();
    w.Key("enabled").Bool(plans != nullptr);
    if (plans != nullptr) {
      w.Key("compiled").Bool(plans->compatible());
      if (!plans->compatible()) {
        w.Key("fallback_reason").String(plans->fallback_reason());
      } else {
        w.Key("max_batch").Int(plans->max_batch());
        w.Key("buckets").BeginArray();
        for (const nn::PlanBucketStats& b : plans->BucketStats()) {
          w.BeginObject();
          w.Key("batch").Int(b.batch_size);
          w.Key("ops").Int(b.ops);
          w.Key("fused_chains").Int(b.fused_chains);
          w.Key("arena_bytes").Int(b.arena_bytes);
          w.Key("intermediate_bytes").Int(b.intermediate_bytes);
          w.EndObject();
        }
        w.EndArray();
      }
      if (obs::Enabled() && def != nullptr) {
        const std::string& suffix = def->metric_suffix();
        w.Key("requests_total")
            .Int(snap.CounterOr("serve/plan/requests" + suffix, 0));
        w.Key("fallback_total")
            .Int(snap.CounterOr("serve/plan/fallback" + suffix, 0));
        w.Key("rank_requests_total")
            .Int(snap.CounterOr("rank/plan/requests" + suffix, 0));
        w.Key("rank_fallback_total")
            .Int(snap.CounterOr("rank/plan/fallback" + suffix, 0));
      }
    }
    w.EndObject();
  }
  if (obs::Enabled()) {
    // The rolling-window stage breakdown — what the last minute looked
    // like, not the process lifetime (that lives in /metricz).
    w.Key("stages").BeginObject();
    for (const auto& [name, win] : snap.windows) {
      if (name.rfind("serve/stage/", 0) != 0) continue;
      w.Key(name);
      WriteWindow(w, win);
    }
    w.EndObject();
    // Per-request tensor-allocation accounting (obs/: AllocTally around
    // each engine forward); lifetime histogram + rolling window, and the
    // per-model labeled series where the fleet labels metrics.
    w.Key("alloc").BeginObject();
    auto write_hist = [&w](const char* key,
                           const obs::HistogramSnapshot* hist) {
      if (hist == nullptr) return;
      w.Key(key).BeginObject();
      w.Key("count").Int(hist->count);
      w.Key("mean").Number(hist->mean);
      w.Key("p50").Number(hist->p50);
      w.Key("p95").Number(hist->p95);
      w.Key("p99").Number(hist->p99);
      w.EndObject();
    };
    write_hist("per_request_count",
               snap.FindHistogram("serve/alloc/count"));
    write_hist("per_request_bytes",
               snap.FindHistogram("serve/alloc/bytes"));
    if (const obs::WindowSnapshot* win =
            snap.FindWindow("serve/alloc/count")) {
      w.Key("per_request_count_window");
      WriteWindow(w, *win);
    }
    if (const obs::WindowSnapshot* win =
            snap.FindWindow("serve/alloc/bytes")) {
      w.Key("per_request_bytes_window");
      WriteWindow(w, *win);
    }
    w.Key("models").BeginArray();
    for (const std::string& name : fleet_->ModelNames()) {
      const std::string suffix = "|model=" + name;
      const obs::HistogramSnapshot* hc =
          snap.FindHistogram("serve/alloc/count" + suffix);
      const obs::HistogramSnapshot* hb =
          snap.FindHistogram("serve/alloc/bytes" + suffix);
      if (hc == nullptr && hb == nullptr) continue;
      w.BeginObject();
      w.Key("name").String(name);
      if (hc != nullptr) {
        w.Key("requests").Int(hc->count);
        w.Key("count_mean").Number(hc->mean);
      }
      if (hb != nullptr) w.Key("bytes_mean").Number(hb->mean);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.Key("slow_request_ms").Int(config_.slow_request_ms);
  w.Key("slow_requests_total").Int(slow_count_);
  w.Key("slow_requests").BeginArray();
  for (const SlowRequest& slow : slow_ring_) {
    w.BeginObject();
    w.Key("trace_id").Int(static_cast<int64_t>(slow.trace_id));
    w.Key("proto").String(slow.http ? "http" : "binary");
    w.Key("model").String(slow.model);
    w.Key("replica").Int(slow.replica);
    w.Key("ok").Bool(slow.ok);
    w.Key("total_ms").Number(slow.total_ms);
    w.Key("parse_ms").Number(slow.parse_ms);
    w.Key("queue_ms").Number(slow.queue_ms);
    w.Key("forward_ms").Number(slow.forward_ms);
    w.Key("write_ms").Number(slow.write_ms);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();

  rank::RankEngine* def_rank =
      def != nullptr ? def->rank_engine() : nullptr;
  w.Key("rank").BeginObject();
  w.Key("enabled").Bool(def_rank != nullptr);
  if (def_rank != nullptr) {
    w.Key("requests_total").Int(s.rank_requests);
    w.Key("split_active").Bool(def_rank->split_active());
    w.Key("queue_depth").Int(def_rank->QueueDepth());
    if (obs::Enabled()) {
      w.Key("qps_window").Number(snap.RateOr("rank/requests", 0.0));
      w.Key("candidates_per_sec_window")
          .Number(snap.RateOr("rank/candidates", 0.0));
      if (const obs::WindowSnapshot* win = snap.FindWindow("rank/latency_ms")) {
        w.Key("latency_ms_window");
        WriteWindow(w, *win);
      }
    }
  }
  w.EndObject();
  w.Key("fleet").BeginObject();
  w.Key("default").String(fleet_->default_model());
  w.Key("swaps_total").Int(fleet_->swaps_total());
  w.Key("models").BeginArray();
  for (const std::string& name : fleet_->ModelNames()) {
    const std::shared_ptr<fleet::ServingModel> entry = fleet_->Acquire(name);
    w.BeginObject();
    w.Key("name").String(name);
    if (entry == nullptr) {
      w.Key("loaded").Bool(false);
    } else {
      w.Key("loaded").Bool(true);
      w.Key("bundle").String(entry->bundle_path());
      w.Key("manifest_hash").String(entry->manifest_hash());
      w.Key("generation").Int(static_cast<int64_t>(entry->generation()));
      w.Key("replicas").Int(entry->num_replicas());
      w.Key("queue_depth").Int(entry->QueueDepth());
      w.Key("in_flight").Int(entry->InFlight());
      w.Key("reloadable").Bool(entry->reloadable());
      w.Key("rank_enabled").Bool(entry->rank_enabled());
      w.Key("health_attached").Bool(entry->health() != nullptr);
      const serve::Bundle* bundle = entry->bundle();
      const nn::PlanSet* plans =
          bundle != nullptr ? bundle->plans.get() : nullptr;
      w.Key("plan_compiled").Bool(plans != nullptr && plans->compatible());
      if (plans != nullptr && !plans->compatible()) {
        w.Key("plan_fallback_reason").String(plans->fallback_reason());
      }
      if (obs::Enabled() && plans != nullptr) {
        const std::string& suffix = entry->metric_suffix();
        w.Key("plan_requests")
            .Int(snap.CounterOr("serve/plan/requests" + suffix, 0));
        w.Key("plan_fallback")
            .Int(snap.CounterOr("serve/plan/fallback" + suffix, 0));
      }
    }
    w.EndObject();
  }
  w.EndArray();
  // Newest-first swap journal: one row per load/reload/unload attempt.
  w.Key("swaps").BeginArray();
  for (const fleet::FleetSwapRecord& r : fleet_->Journal()) {
    w.BeginObject();
    w.Key("model").String(r.model);
    w.Key("kind").String(r.kind);
    w.Key("ok").Bool(r.ok);
    if (!r.ok) w.Key("error").String(r.error);
    w.Key("old_manifest_hash").String(r.old_manifest_hash);
    w.Key("new_manifest_hash").String(r.new_manifest_hash);
    w.Key("generation").Int(static_cast<int64_t>(r.generation));
    w.Key("load_ms").Number(r.load_ms);
    w.Key("drain_ms").Number(r.drain_ms);
    w.Key("unix_ms").Int(r.unix_ms);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();

  // The tail of the structured event log (GET /eventz has the full ring).
  const int64_t now_ns = obs::NowNs();
  w.Key("events").BeginObject();
  w.Key("total")
      .Int(static_cast<int64_t>(obs::EventLog::Global().total_logged()));
  w.Key("recent").BeginArray();
  for (const obs::Event& e : obs::EventLog::Global().Snapshot(8)) {
    w.BeginObject();
    w.Key("seq").Int(static_cast<int64_t>(e.seq));
    w.Key("age_seconds")
        .Number(static_cast<double>(now_ns - e.ts_ns) / 1e9);
    w.Key("kind").String(e.kind);
    if (!e.model.empty()) w.Key("model").String(e.model);
    w.Key("ok").Bool(e.ok);
    w.Key("message").String(e.message);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  w.EndObject();
  return w.str();
}

std::string Server::TracezJson() const {
  obs::JsonWriter w;
  w.BeginObject();
  const bool enabled = flight_ != nullptr && flight_->enabled();
  w.Key("enabled").Bool(enabled);
  if (enabled) {
    w.Key("capacity").Int(static_cast<int64_t>(flight_->config().capacity));
    w.Key("sample_every")
        .Int(static_cast<int64_t>(flight_->config().sample_every));
    w.Key("seen").Int(static_cast<int64_t>(flight_->seen()));
    w.Key("retained").Int(static_cast<int64_t>(flight_->retained()));
  }
  w.Key("records").BeginArray();
  if (enabled) {
    const int64_t now_ns = obs::NowNs();
    for (const obs::FlightRecord& r : flight_->Snapshot()) {
      w.BeginObject();
      w.Key("trace_id").Int(static_cast<int64_t>(r.trace_id));
      w.Key("age_seconds")
          .Number(static_cast<double>(now_ns - r.recv_ns) / 1e9);
      w.Key("proto").String(r.proto);
      w.Key("endpoint").String(r.endpoint);
      w.Key("model").String(r.model);
      w.Key("replica").Int(r.replica);
      w.Key("ok").Bool(r.ok);
      w.Key("slow").Bool(r.slow);
      if (!r.ok) w.Key("error").String(r.error);
      w.Key("total_ms").Number(r.total_ms);
      w.Key("parse_ms").Number(r.parse_ms);
      w.Key("queue_ms").Number(r.queue_ms);
      w.Key("forward_ms").Number(r.forward_ms);
      w.Key("write_ms").Number(r.write_ms);
      w.EndObject();
    }
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

std::string Server::EventzJson() const {
  const obs::EventLog& log = obs::EventLog::Global();
  const int64_t now_ns = obs::NowNs();
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("total").Int(static_cast<int64_t>(log.total_logged()));
  w.Key("capacity").Int(static_cast<int64_t>(log.capacity()));
  w.Key("events").BeginArray();
  for (const obs::Event& e : log.Snapshot()) {
    w.BeginObject();
    w.Key("seq").Int(static_cast<int64_t>(e.seq));
    w.Key("age_seconds")
        .Number(static_cast<double>(now_ns - e.ts_ns) / 1e9);
    w.Key("kind").String(e.kind);
    w.Key("model").String(e.model);
    w.Key("ok").Bool(e.ok);
    w.Key("message").String(e.message);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

}  // namespace miss::net
