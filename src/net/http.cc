#include "net/http.h"

#include <algorithm>
#include <cctype>
#include <cstring>

#include "net/protocol.h"
#include "obs/json.h"

namespace miss::net {

namespace {

std::string ToLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool IsToken(const std::string& s) {
  if (s.empty()) return false;
  for (unsigned char c : s) {
    if (c <= ' ' || c >= 127) return false;
  }
  return true;
}

}  // namespace

const std::string* HttpRequest::FindHeader(const std::string& name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return &value;
  }
  return nullptr;
}

const char* HttpStatusText(int status_code) {
  switch (status_code) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 411: return "Length Required";
    case 413: return "Payload Too Large";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

bool SplitModelRoute(const std::string& route, const std::string& base,
                     std::string* model) {
  if (route == base) {
    model->clear();
    return true;
  }
  if (route.size() <= base.size() + 1 ||
      route.compare(0, base.size(), base) != 0 || route[base.size()] != '/') {
    return false;
  }
  const std::string rest = route.substr(base.size() + 1);
  if (rest.find('/') != std::string::npos) return false;
  *model = rest;
  return true;
}

HttpParseStatus ParseHttpRequest(const char* data, size_t size, size_t* offset,
                                 size_t max_head_bytes, size_t max_body_bytes,
                                 HttpRequest* out, int* status_code,
                                 std::string* error) {
  *status_code = 400;
  const char* begin = data + *offset;
  const size_t avail = size - *offset;

  // Locate the end of the head (CRLFCRLF; bare LFLF tolerated).
  size_t head_len = 0;  // bytes up to and including the blank line
  for (size_t i = 0; i + 1 < avail; ++i) {
    if (begin[i] == '\n' &&
        (begin[i + 1] == '\n' ||
         (i + 2 < avail && begin[i + 1] == '\r' && begin[i + 2] == '\n'))) {
      head_len = i + (begin[i + 1] == '\n' ? 2 : 3);
      break;
    }
  }
  if (head_len == 0) {
    if (avail > max_head_bytes) {
      *error = "request head exceeds " + std::to_string(max_head_bytes) +
               " bytes";
      return HttpParseStatus::kBad;
    }
    return HttpParseStatus::kNeedMoreData;
  }
  if (head_len > max_head_bytes) {
    *error = "request head exceeds " + std::to_string(max_head_bytes) +
             " bytes";
    return HttpParseStatus::kBad;
  }

  // Split the head into lines.
  HttpRequest req;
  std::vector<std::string> lines;
  {
    size_t line_start = 0;
    for (size_t i = 0; i < head_len; ++i) {
      if (begin[i] != '\n') continue;
      size_t line_end = i;
      if (line_end > line_start && begin[line_end - 1] == '\r') --line_end;
      lines.emplace_back(begin + line_start, line_end - line_start);
      line_start = i + 1;
    }
  }
  if (lines.empty() || lines[0].empty()) {
    *error = "empty request line";
    return HttpParseStatus::kBad;
  }

  // Request line: METHOD SP TARGET SP VERSION.
  {
    const std::string& line = lines[0];
    const size_t sp1 = line.find(' ');
    const size_t sp2 = line.rfind(' ');
    if (sp1 == std::string::npos || sp2 == sp1) {
      *error = "malformed request line";
      return HttpParseStatus::kBad;
    }
    req.method = line.substr(0, sp1);
    req.path = Trim(line.substr(sp1 + 1, sp2 - sp1 - 1));
    req.version = line.substr(sp2 + 1);
    if (!IsToken(req.method) || !IsToken(req.path)) {
      *error = "malformed request line";
      return HttpParseStatus::kBad;
    }
    if (req.version != "HTTP/1.1" && req.version != "HTTP/1.0") {
      *error = "unsupported version \"" + req.version + "\"";
      return HttpParseStatus::kBad;
    }
  }

  for (size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) break;  // blank line terminating the head
    const size_t colon = lines[i].find(':');
    if (colon == std::string::npos || colon == 0) {
      *error = "malformed header line";
      return HttpParseStatus::kBad;
    }
    req.headers.emplace_back(ToLower(Trim(lines[i].substr(0, colon))),
                             Trim(lines[i].substr(colon + 1)));
  }

  // Body framing: Content-Length only. Chunked uploads are refused rather
  // than mis-framed.
  size_t content_length = 0;
  if (const std::string* te = req.FindHeader("transfer-encoding")) {
    *error = "transfer-encoding \"" + *te + "\" not supported";
    *status_code = 411;
    return HttpParseStatus::kBad;
  }
  if (const std::string* cl = req.FindHeader("content-length")) {
    if (cl->empty() ||
        cl->find_first_not_of("0123456789") != std::string::npos ||
        cl->size() > 9) {
      *error = "malformed content-length \"" + *cl + "\"";
      return HttpParseStatus::kBad;
    }
    content_length = static_cast<size_t>(std::stoul(*cl));
    if (content_length > max_body_bytes) {
      *error = "request body of " + *cl + " bytes exceeds the " +
               std::to_string(max_body_bytes) + "-byte limit";
      *status_code = 413;
      return HttpParseStatus::kBad;
    }
  }
  if (avail < head_len + content_length) return HttpParseStatus::kNeedMoreData;
  req.body.assign(begin + head_len, content_length);

  req.keep_alive = req.version == "HTTP/1.1";
  if (const std::string* conn = req.FindHeader("connection")) {
    const std::string v = ToLower(*conn);
    if (v == "close") req.keep_alive = false;
    if (v == "keep-alive") req.keep_alive = true;
  }

  *out = std::move(req);
  *offset += head_len + content_length;
  return HttpParseStatus::kOk;
}

std::string MakeHttpResponse(int status_code, const std::string& content_type,
                             const std::string& body, bool keep_alive) {
  std::string out;
  out.reserve(128 + body.size());
  out += "HTTP/1.1 ";
  out += std::to_string(status_code);
  out += " ";
  out += HttpStatusText(status_code);
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += keep_alive ? "\r\nConnection: keep-alive"
                    : "\r\nConnection: close";
  out += "\r\n\r\n";
  out += body;
  return out;
}

bool ParseScoreRequestJson(const std::string& body,
                           const data::DatasetSchema& schema,
                           data::Sample* out, std::string* error) {
  obs::JsonValue root;
  if (!obs::JsonParse(body, &root) || !root.IsObject()) {
    *error = "body is not a JSON object";
    return false;
  }
  const obs::JsonValue* cat = root.Find("cat");
  const obs::JsonValue* seq = root.Find("seq");
  if (cat == nullptr || !cat->IsArray()) {
    *error = "missing \"cat\" array";
    return false;
  }
  if (seq == nullptr || !seq->IsArray()) {
    *error = "missing \"seq\" array";
    return false;
  }
  if (static_cast<int64_t>(cat->array.size()) != schema.num_categorical() ||
      static_cast<int64_t>(seq->array.size()) != schema.num_sequential()) {
    *error = "field counts (" + std::to_string(cat->array.size()) +
             " cat, " + std::to_string(seq->array.size()) +
             " seq) do not match schema \"" + schema.name + "\" (" +
             std::to_string(schema.num_categorical()) + " cat, " +
             std::to_string(schema.num_sequential()) + " seq)";
    return false;
  }

  data::Sample sample;
  sample.cat.reserve(cat->array.size());
  for (const obs::JsonValue& v : cat->array) {
    if (!v.IsNumber()) {
      *error = "\"cat\" entries must be integers";
      return false;
    }
    sample.cat.push_back(static_cast<int64_t>(v.number));
  }
  sample.seq.reserve(seq->array.size());
  for (const obs::JsonValue& row : seq->array) {
    if (!row.IsArray()) {
      *error = "\"seq\" entries must be arrays (one per sequential field)";
      return false;
    }
    std::vector<int64_t> ids;
    ids.reserve(row.array.size());
    for (const obs::JsonValue& v : row.array) {
      if (!v.IsNumber()) {
        *error = "\"seq\" ids must be integers";
        return false;
      }
      ids.push_back(static_cast<int64_t>(v.number));
    }
    sample.seq.push_back(std::move(ids));
  }
  sample.label = 0.0f;
  if (!ValidateSample(sample, schema, error)) return false;
  *out = std::move(sample);
  return true;
}

bool ParseRankRequestJson(const std::string& body,
                          const data::DatasetSchema& schema, data::Sample* user,
                          std::vector<int64_t>* candidates, int64_t* top_k,
                          std::string* error) {
  // The user fields share the /score body shape; extra keys are ignored by
  // ParseScoreRequestJson, so it handles the cat/seq half verbatim.
  if (!ParseScoreRequestJson(body, schema, user, error)) return false;
  obs::JsonValue root;
  if (!obs::JsonParse(body, &root) || !root.IsObject()) {
    *error = "body is not a JSON object";
    return false;
  }
  const obs::JsonValue* cands = root.Find("candidates");
  if (cands == nullptr || !cands->IsArray()) {
    *error = "missing \"candidates\" array";
    return false;
  }
  candidates->clear();
  candidates->reserve(cands->array.size());
  for (const obs::JsonValue& v : cands->array) {
    if (!v.IsNumber()) {
      *error = "\"candidates\" entries must be integers";
      return false;
    }
    candidates->push_back(static_cast<int64_t>(v.number));
  }
  *top_k = 0;
  if (const obs::JsonValue* tk = root.Find("top_k")) {
    if (!tk->IsNumber() || tk->number < 0) {
      *error = "\"top_k\" must be a non-negative integer";
      return false;
    }
    *top_k = static_cast<int64_t>(tk->number);
  }
  return ValidateRankRequest(*user, *candidates, schema, error);
}

std::string RankRequestJson(const data::Sample& user,
                            const std::vector<int64_t>& candidates,
                            int64_t top_k) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("cat").BeginArray();
  for (int64_t id : user.cat) w.Int(id);
  w.EndArray();
  w.Key("seq").BeginArray();
  for (const auto& row : user.seq) {
    w.BeginArray();
    for (int64_t id : row) w.Int(id);
    w.EndArray();
  }
  w.EndArray();
  w.Key("candidates").BeginArray();
  for (int64_t id : candidates) w.Int(id);
  w.EndArray();
  w.Key("top_k").Int(top_k);
  w.EndObject();
  return w.str();
}

std::string ScoreRequestJson(const data::Sample& sample) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("cat").BeginArray();
  for (int64_t id : sample.cat) w.Int(id);
  w.EndArray();
  w.Key("seq").BeginArray();
  for (const auto& row : sample.seq) {
    w.BeginArray();
    for (int64_t id : row) w.Int(id);
    w.EndArray();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

}  // namespace miss::net
