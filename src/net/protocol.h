// Length-prefixed binary scoring protocol (the "MIB1" wire format).
//
// A connection opens with the 4-byte magic "MIB1" (how the server's
// protocol sniffer tells a binary client from an HTTP one), then carries any
// number of pipelined frames. All integers are little-endian; the request
// layout mirrors data::Sample against the serving bundle's
// data::DatasetSchema:
//
//   request   u32 payload_len        bytes after this field
//             u64 request_id         echoed verbatim in the response
//             u32 num_cat            must equal schema.num_categorical()
//             u32 num_seq            must equal schema.num_sequential()
//             u32 seq_len            shared history length, >= 1
//             i64 cat[num_cat]
//             i64 seq[num_seq * seq_len]   field-major: seq[j][l]
//
//   feedback  u32 payload_len        always 16
//             u64 request_id         a previously scored request's id
//             u32 0xFFFFFFFF         kFeedbackMarker, where num_cat sits (no
//                                    schema has 2^32-1 categorical fields)
//             f32 label              observed outcome, conventionally 0 or 1
//
//   rank      u32 payload_len
//             u64 request_id
//             u32 0xFFFFFFFE         kRankMarker, where num_cat sits
//             u32 num_cat            user fields, as in a score request
//             u32 num_seq
//             u32 seq_len
//             i64 cat[num_cat]       candidate-slot value ignored
//             i64 seq[num_seq * seq_len]
//             u32 top_k              0 = order every candidate
//             u32 K
//             i64 candidate_ids[K]   ids for schema.CandidateField()
//
//   named     u32 payload_len        fleet routing: any score/rank body
//             u64 request_id         addressed to a model by name
//             u32 0xFFFFFFFD         kNamedMarker, where num_cat sits
//             u8  kind               0 = score, 1 = rank
//             u8  name_len           1..255
//             char name[name_len]    model name, matched exactly
//             <body>                 the score frame from num_cat on
//                                    (kind 0) or the rank frame from its
//                                    num_cat on (kind 1)
//
// Unnamed frames route to the server's default model, so a pre-fleet client
// speaks to a fleet unchanged. An unknown model name yields a per-request
// error response (status 1) — the frame is consumed and the connection
// lives on, unlike a structurally malformed frame.
//
//   response  u32 payload_len
//             u64 request_id
//             u8  status             0 = ok, 1 = error, 2 = rank ok
//             f32 score              status 0: sigmoid(logit), verbatim bits
//                                    (for feedback: 1.0 joined, 0.0 unknown id)
//             u8  error[]            status 1: message, payload_len-9 bytes
//
//   rank resp u32 payload_len        status 2 layout after the u8
//             u64 request_id
//             u8  2
//             u32 K
//             f32 scores[K]          index-aligned with candidate_ids
//             u32 top_n
//             u32 top[top_n]         indices into candidate_ids, best first
//
// Responses may arrive in any order; request_id is the correlation key.
// Feedback frames report a scored request's observed label back to the
// server's model-health monitor (calibration + online AUC); they share the
// response format so clients need one decoder.
// Decoders are incremental (kNeedMoreData) and defensive: payload_len is
// capped (MaxFrameBytes(), runtime-configurable via --max-frame-bytes so
// K=500-candidate rank frames fit), field counts are checked against the
// schema before any allocation sized from the wire, and id range checks
// (ValidateSample / ValidateRankRequest) run before a sample ever reaches
// an engine — a malformed frame yields a per-connection error, never a
// crash.

#ifndef MISS_NET_PROTOCOL_H_
#define MISS_NET_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/schema.h"

namespace miss::net {

inline constexpr char kBinaryMagic[4] = {'M', 'I', 'B', '1'};
inline constexpr size_t kBinaryMagicLen = 4;

// Default ceiling on payload_len for both directions. Generous: a request
// for a 7-field schema with a 4096-step history is ~230 KiB, and a K=500
// rank frame adds ~4 KiB on top.
inline constexpr uint32_t kDefaultMaxFrameBytes = 4u << 20;

// The process-wide frame cap, kDefaultMaxFrameBytes unless overridden.
uint32_t MaxFrameBytes();
// Overrides the cap (miss_serve --max-frame-bytes). Set before serving
// traffic; decoders read it per frame.
void SetMaxFrameBytes(uint32_t limit);

// Sentinel in the num_cat position marking a feedback frame.
inline constexpr uint32_t kFeedbackMarker = 0xFFFFFFFFu;
// Sentinel in the num_cat position marking a rank frame.
inline constexpr uint32_t kRankMarker = 0xFFFFFFFEu;
// Sentinel in the num_cat position marking a named (fleet-routed) frame.
inline constexpr uint32_t kNamedMarker = 0xFFFFFFFDu;
// Kind byte of a named frame.
inline constexpr uint8_t kNamedScoreKind = 0;
inline constexpr uint8_t kNamedRankKind = 1;

struct WireResponse {
  uint64_t request_id = 0;
  bool ok = false;
  float score = 0.0f;
  std::string error;  // meaningful when !ok
  // Rank responses (status 2, ok == true): per-candidate scores
  // index-aligned with the request's candidate array, and best-first
  // indices into it.
  bool rank = false;
  std::vector<float> scores;
  std::vector<uint32_t> top;
};

// One decoded client->server frame: a scoring request, a feedback report,
// or a rank request.
struct WireRequest {
  enum class Kind { kScore, kFeedback, kRank };
  Kind kind = Kind::kScore;
  uint64_t request_id = 0;
  data::Sample sample;  // kScore / kRank (the user fields)
  float label = 0.0f;   // kind == kFeedback
  // kind == kRank only.
  std::vector<int64_t> candidates;
  uint32_t top_k = 0;
  // Fleet routing: the named frame's model name ("" for an unnamed frame,
  // which routes to the default model). When the name (or the missing
  // default) did not resolve to a schema, model_known is false, the frame
  // was consumed without parsing its body, and the caller should answer a
  // per-request error.
  std::string model;
  bool model_known = true;
};

enum class DecodeStatus { kOk, kNeedMoreData, kMalformed };

// Appends the connection preamble / one encoded frame to `out`.
void EncodeMagic(std::string* out);
void EncodeRequest(uint64_t request_id, const data::Sample& sample,
                   std::string* out);
// Named (fleet-routed) frames; `model` must be 1..255 bytes.
void EncodeNamedRequest(uint64_t request_id, const std::string& model,
                        const data::Sample& sample, std::string* out);
void EncodeNamedRankRequest(uint64_t request_id, const std::string& model,
                            const data::Sample& user,
                            const std::vector<int64_t>& candidates,
                            uint32_t top_k, std::string* out);
void EncodeFeedback(uint64_t request_id, float label, std::string* out);
void EncodeRankRequest(uint64_t request_id, const data::Sample& user,
                       const std::vector<int64_t>& candidates, uint32_t top_k,
                       std::string* out);
void EncodeResponse(const WireResponse& response, std::string* out);
// Status-2 response: `top` holds indices into the request's candidate array.
void EncodeRankResponse(uint64_t request_id, const std::vector<float>& scores,
                        const std::vector<uint32_t>& top, std::string* out);

// Maps a named frame's model name to that model's schema; null means the
// name is unknown (the frame is consumed with model_known == false).
using ModelResolver =
    std::function<const data::DatasetSchema*(const std::string& model)>;

// Incremental decoders over data[*offset..size): on kOk the frame is
// consumed (*offset advanced); on kNeedMoreData nothing is consumed; on
// kMalformed `*error` names the defect and the connection should be failed.
// DecodeRequest checks a score frame's structure against the schema (field
// counts, length arithmetic) but not id ranges — run ValidateSample next.
DecodeStatus DecodeRequest(const char* data, size_t size, size_t* offset,
                           const data::DatasetSchema& schema,
                           WireRequest* out, std::string* error);

// Fleet form: unnamed frames parse against `default_schema` (null = no
// default model, frame consumed with model_known == false); named frames
// resolve through `resolver` (a null resolver rejects every name). Unknown
// names consume the whole frame and return kOk with model_known == false —
// a routing miss, not a protocol error.
DecodeStatus DecodeRequest(const char* data, size_t size, size_t* offset,
                           const data::DatasetSchema* default_schema,
                           const ModelResolver& resolver, WireRequest* out,
                           std::string* error);
DecodeStatus DecodeResponse(const char* data, size_t size, size_t* offset,
                            WireResponse* out, std::string* error);

// Range-checks a structurally valid sample against the schema: every cat id
// in [0, vocab), every sequence id in [0, vocab), history length >= 1.
// Shared by the binary and HTTP request paths.
bool ValidateSample(const data::Sample& sample,
                    const data::DatasetSchema& schema, std::string* error);

// Range-checks a structurally valid rank request: the user sample via
// ValidateSample, the schema must expose a candidate field, and every
// candidate id must lie in that field's vocabulary. Shared by the binary
// and HTTP rank paths.
bool ValidateRankRequest(const data::Sample& user,
                         const std::vector<int64_t>& candidates,
                         const data::DatasetSchema& schema,
                         std::string* error);

}  // namespace miss::net

#endif  // MISS_NET_PROTOCOL_H_
