// TCP serving front-end over a fleet::ModelFleet.
//
// One poll(2)-driven event-loop thread owns the listener and every
// connection; scoring runs on the engine's worker threads, which hand
// results back through a completion queue + self-pipe wakeup, so the loop
// never blocks on a score and a worker never touches a socket. Each
// connection speaks one of two protocols, sniffed from its first bytes:
//
//   * the length-prefixed binary protocol (net/protocol.h) — pipelined
//     requests, out-of-order responses correlated by request id; named
//     frames (kNamedMarker) route to a fleet model by name, unnamed frames
//     to the fleet's default model;
//   * HTTP/1.1 (net/http.h) — POST /score[/<model>], POST /rank[/<model>],
//     POST /feedback[/<model>], POST /admin/reload, POST /admin/unload,
//     GET /healthz, GET /metricz (?format=prom for Prometheus text),
//     GET /statusz, GET /modelz[/<model>], keep-alive, one request in
//     flight per connection.
//
// Model routing: every request Acquire()s a fleet entry's current
// generation and holds the shared_ptr until its response is written, so a
// hot bundle swap never drops an in-flight request — it finishes on the old
// generation, which drains and retires in the background. An unknown (or
// unloaded) model name is a per-request error — an error frame or a 404
// JSON body — never a connection close. POST /admin/reload and
// /admin/unload run on the fleet's worker thread and complete back through
// the completion queue, so the event loop never blocks on a bundle load.
//
// The legacy constructor (one engine + schema) wraps its arguments in an
// internal single-entry fleet with unlabeled metrics: a one-model
// one-replica server is byte-for-byte the pre-fleet server.
//
// Malformed input of either kind produces a per-connection error (an error
// frame or a 4xx) and at worst closes that connection — never the server.
//
// Shutdown is graceful by design: RequestStop() is async-signal-safe (the
// miss_serve SIGTERM handler calls it), after which the loop closes the
// listener (new connections are refused), stops parsing new requests,
// waits for every in-flight score to come back and flush — bounded by
// drain_timeout_ms — then closes all connections and exits.
//
// Telemetry (behind obs::Enabled()): counters net/connections,
// net/requests, net/bytes_rx, net/bytes_tx; gauge net/active_connections;
// histogram net/request_latency_ms (request parsed -> response enqueued).
// ServerStats mirrors the counters unconditionally for tests and /healthz.
//
// Request tracing (also behind obs::Enabled()): every scored request gets a
// trace id at wire entry and a serve::RequestTrace that rides through the
// engine; the stage breakdown (parse / queue / forward / write / total)
// lands in both lifetime serve/stage/* histograms and rolling-window
// SlidingHistograms of the same names — /statusz reports the windowed
// p50/p95/p99 plus qps, /metricz?format=prom exports both. Requests slower
// than ServerConfig::slow_request_ms (0 = off) are kept in a small ring
// buffer (shown by /statusz) and appended as one JSONL line to
// slow_log_path when set.
//
// Model health (ServerConfig::health, optional): every ok score response is
// remembered by request id so a later /feedback (binary frame or HTTP POST)
// can be joined to the score the client saw; GET /modelz serves the
// monitor's drift/calibration report. HTTP /score responses carry a
// server-assigned "request_id" for exactly this feedback loop.
//
// Candidate ranking (ServerConfig::rank, optional): rank frames and
// POST /rank route to a rank::RankEngine, which scores one user against a
// candidate list sharing the user encoding where the model supports it.
// Null serves an error frame / 503 on rank requests; /statusz reports the
// rank queue, split status, and windowed rank latency.
//
// Always-on diagnostics (this layer's half of src/obs):
//
//   * GET /tracez — the flight recorder: a tail-sampled ring of completed
//     requests' stage breakdowns. Retention is decided at completion time:
//     slow and errored requests are ALWAYS kept, normal traffic 1-in-N
//     (ServerConfig::flight_sample_every); flight_capacity = 0 disables.
//   * GET /eventz — the process-wide structured event log (bundle swaps,
//     watcher failures, drain phases, listener errors, profiler runs).
//   * GET /pprofz?seconds=N — runs the sampling CPU profiler
//     (obs/profiler.h) for N seconds and answers with folded-stack text.
//     Gated behind ServerConfig::enable_pprofz (403 when off) because
//     SIGPROF delivery is a process-wide opt-in; 409 while a profile is
//     already running. The wait is folded into the event loop's poll
//     timeout — the loop keeps serving while the profile runs.

#ifndef MISS_NET_SERVER_H_
#define MISS_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "data/schema.h"
#include "fleet/model_fleet.h"
#include "obs/flight_recorder.h"
#include "serve/engine.h"

namespace miss::rank {
class RankEngine;
}  // namespace miss::rank

namespace miss::net {

struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  int port = 0;  // 0 = ephemeral; read the chosen one back via port()
  int backlog = 128;
  int max_connections = 1024;
  size_t max_http_head_bytes = 16 * 1024;
  size_t max_http_body_bytes = 1 << 20;
  // Upper bound on the graceful-drain wait once a stop is requested.
  int64_t drain_timeout_ms = 5000;
  // Shown by /statusz so an operator can tell which bundle is serving.
  std::string model_name;
  std::string bundle_path;
  // Requests whose recv -> reply time exceeds this are recorded in the
  // /statusz slow-request ring and appended to slow_log_path (JSONL, one
  // object per request with the full stage breakdown). 0 disables both.
  int64_t slow_request_ms = 0;
  std::string slow_log_path;
  // Optional model-health monitor (must outlive the server, and should be
  // the same one the engine records into). Enables /modelz and /feedback;
  // null serves 503 on both.
  serve::ModelHealthMonitor* health = nullptr;
  // Optional rank engine (must outlive the server, built over the same
  // model as `engine`). Enables rank frames and POST /rank; null answers
  // rank requests with an error frame / 503.
  rank::RankEngine* rank = nullptr;
  // Serve GET /pprofz (the SIGPROF sampling profiler). Off by default:
  // profiling must be an explicit operator opt-in, so SIGPROF never fires
  // in a default run.
  bool enable_pprofz = false;
  // Flight-recorder ring size for GET /tracez; 0 disables the recorder
  // (the bench's diagnostics-off mode).
  size_t flight_capacity = 128;
  // Keep every Nth normal (fast, ok) request in the flight ring; slow and
  // errored requests are always kept regardless.
  uint64_t flight_sample_every = 16;
};

// Monotonic totals since Start(). Plain counters (always on, unlike the
// obs:: metrics) so tests and /healthz can read them cheaply.
struct ServerStats {
  int64_t connections_accepted = 0;
  int64_t connections_active = 0;
  int64_t requests = 0;         // successfully parsed + submitted
  int64_t responses = 0;        // responses enqueued (ok or error)
  int64_t protocol_errors = 0;  // malformed frames / bad HTTP
  int64_t in_flight = 0;        // submitted to the engine, not yet answered
  int64_t bytes_rx = 0;
  int64_t bytes_tx = 0;
  int64_t rank_requests = 0;  // of `requests`, how many were rank requests
};

class Server {
 public:
  // Legacy single-model front-end: wraps `engine` (and config.rank /
  // config.health) in an internal one-entry fleet whose entry keeps the
  // plain unlabeled metric names. `engine` and `schema` must outlive the
  // server; `schema` is the serving bundle's and is what request validation
  // runs against.
  Server(serve::Engine& engine, const data::DatasetSchema& schema,
         const ServerConfig& config = {});

  // Fleet front-end: routes named requests across `fleet`'s entries and
  // unnamed requests to its default model. `fleet` must outlive the server;
  // config.rank and config.health are ignored (each entry carries its own).
  Server(fleet::ModelFleet& fleet, const ServerConfig& config = {});

  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds, listens, and starts the event loop. False on bind/listen failure
  // (logged). At most one successful Start per Server.
  bool Start();

  // The bound port (after a successful Start).
  int port() const { return port_; }

  // Async-signal-safe stop trigger: flags the loop and pokes the self-pipe.
  void RequestStop();

  // RequestStop() + block until the loop finished draining and exited.
  void Stop();

  // Blocks until the event loop exits (something else must stop it).
  void WaitUntilStopped();

  bool running() const { return running_.load(std::memory_order_acquire); }

  ServerStats stats() const;

 private:
  struct Conn;
  struct Completion {
    uint64_t conn_id = 0;
    uint64_t request_id = 0;  // binary protocol correlation key
    bool http = false;
    bool ok = false;
    float score = 0.0f;
    // Rank completions: per-candidate scores, best-first indices, and the
    // candidate ids echoed back so the HTTP body can pair index with id.
    bool rank = false;
    std::vector<float> scores;
    std::vector<uint32_t> top;
    std::vector<int64_t> candidates;
    // The generation this request scored on. Held from submit until the
    // response is written, which is what keeps a hot-swapped-out generation
    // (engines, monitor, model) alive through its in-flight requests. Also
    // carries the entry's labeled metric names and health monitor.
    std::shared_ptr<fleet::ServingModel> entry;
    // Admin completions (POST /admin/reload|unload): the response is
    // prebuilt on the fleet worker thread.
    bool admin = false;
    int admin_status = 200;
    std::string admin_body;
    int64_t parsed_ns = 0;  // request-parse time, for net/request_latency_ms
    // Stage timestamps; trace_id == 0 when telemetry was off at submit.
    serve::RequestTrace trace;
  };
  // One /statusz ring entry: the stage breakdown of a slow request, with
  // the resolved model and replica so a tail can be attributed to one
  // engine pool.
  struct SlowRequest {
    uint64_t trace_id = 0;
    bool http = false;
    bool ok = true;
    std::string model;
    int32_t replica = -1;
    double total_ms = 0.0;
    double parse_ms = 0.0;
    double queue_ms = 0.0;
    double forward_ms = 0.0;
    double write_ms = 0.0;
  };
  // Engine callbacks write completions here through a shared_ptr, so a score
  // finishing after a forced teardown never touches a dead Server.
  struct CompletionSink;

  void EventLoop();
  void AcceptNew();
  void HandleReadable(Conn& conn);
  void ParseBuffered(Conn& conn);
  void ParseBinary(Conn& conn);
  void ParseHttp(Conn& conn);
  void SubmitScore(Conn& conn, uint64_t request_id, bool http,
                   std::shared_ptr<fleet::ServingModel> entry,
                   data::Sample sample);
  void SubmitRank(Conn& conn, uint64_t request_id, bool http,
                  std::shared_ptr<fleet::ServingModel> entry, data::Sample user,
                  std::vector<int64_t> candidates, int64_t top_k);
  void SubmitAdmin(Conn& conn, bool reload, const std::string& model);
  void ProcessCompletions();
  void RecordStages(const Completion& c, int64_t reply_ns);
  bool FlushWrites(Conn& conn);  // false when the conn died
  void CloseConn(uint64_t conn_id);
  // Arms the profiler for a pending /pprofz request (event-loop thread).
  void StartPprofz(Conn& conn, const std::string& query, bool keep_alive);
  // Stops the profiler and writes the folded-stack response (if the
  // requesting connection is still alive). Safe to call when inactive.
  void FinishPprofz();
  std::string HealthzJson() const;
  std::string StatuszJson() const;
  std::string TracezJson() const;
  std::string EventzJson() const;

  // Legacy-constructor fleet wrapping the caller's engine; null when the
  // caller supplied its own fleet.
  std::unique_ptr<fleet::ModelFleet> owned_fleet_;
  fleet::ModelFleet* fleet_ = nullptr;
  const ServerConfig config_;

  int listen_fd_ = -1;
  int wake_rd_ = -1;
  int wake_wr_ = -1;
  int port_ = 0;
  std::thread loop_;
  std::mutex join_mu_;  // serializes concurrent Stop/WaitUntilStopped joins
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  bool started_ = false;
  bool draining_ = false;  // event-loop thread only

  uint64_t next_conn_id_ = 1;
  std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns_;

  std::shared_ptr<CompletionSink> sink_;

  int64_t start_ns_ = 0;        // Start() time, for /statusz uptime
  uint64_t next_trace_id_ = 1;  // event-loop thread only
  // Server-assigned ids for HTTP /score responses (feedback correlation).
  // High base keeps them visually distinct from typical binary client ids,
  // but must stay below 2^53 so the id survives the JSON double round-trip
  // back through POST /feedback; the join tolerates collisions either way.
  uint64_t next_http_request_id_ = (1ull << 48) + 1;

  // Slow-request ring (newest overwrite oldest) and its JSONL sink; both
  // touched only from the event-loop thread.
  std::vector<SlowRequest> slow_ring_;
  size_t slow_ring_next_ = 0;
  int64_t slow_count_ = 0;
  std::unique_ptr<std::ofstream> slow_log_;

  // Flight recorder backing GET /tracez (built in Start(); null before).
  // Internally locked — TracezJson reads it from any thread.
  std::unique_ptr<obs::FlightRecorder> flight_;

  // Pending /pprofz state; event-loop thread only. While active the poll
  // timeout is clamped to the deadline, and the requesting connection sits
  // http_busy until FinishPprofz writes the folded text.
  bool pprof_active_ = false;
  int64_t pprof_deadline_ns_ = 0;
  uint64_t pprof_conn_id_ = 0;
  bool pprof_keep_alive_ = true;

  mutable std::mutex stats_mu_;
  ServerStats stats_;
};

}  // namespace miss::net

#endif  // MISS_NET_SERVER_H_
