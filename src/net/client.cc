#include "net/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cstdlib>
#include <cstring>

#include "net/http.h"
#include "obs/json.h"

namespace miss::net {

namespace {

int ConnectTcp(const std::string& host, int port, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    *error = std::string("socket(): ") + std::strerror(errno);
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    *error = "bad host address \"" + host + "\" (IPv4 literal expected)";
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    *error = "connect(" + host + ":" + std::to_string(port) +
             "): " + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool WriteAll(int fd, const char* data, size_t size, std::string* error) {
  size_t off = 0;
  while (off < size) {
    const ssize_t n = ::write(fd, data + off, size - off);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    *error = std::string("write(): ") + std::strerror(errno);
    return false;
  }
  return true;
}

// Reads more bytes into `*buf`; false on error, sets *eof on clean close.
bool ReadMore(int fd, std::string* buf, bool* eof, std::string* error) {
  char chunk[64 * 1024];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n > 0) {
      buf->append(chunk, static_cast<size_t>(n));
      return true;
    }
    if (n == 0) {
      *eof = true;
      return true;
    }
    if (errno == EINTR) continue;
    *error = std::string("read(): ") + std::strerror(errno);
    return false;
  }
}

// Parses one HTTP response from data[*offset..size); mirrors the shape of
// the server's request parser but only needs status + Content-Length body.
// Returns 0 = ok, 1 = need more data, 2 = malformed.
int ParseHttpResponse(const char* data, size_t size, size_t* offset,
                      int* status_code, std::string* body, bool* keep_alive,
                      std::string* error) {
  const char* begin = data + *offset;
  const size_t avail = size - *offset;
  size_t head_len = 0;
  for (size_t i = 0; i + 3 < avail; ++i) {
    if (begin[i] == '\r' && begin[i + 1] == '\n' && begin[i + 2] == '\r' &&
        begin[i + 3] == '\n') {
      head_len = i + 4;
      break;
    }
  }
  if (head_len == 0) return 1;

  const std::string head(begin, head_len);
  if (head.rfind("HTTP/1.", 0) != 0 || head.size() < 12) {
    *error = "malformed status line";
    return 2;
  }
  *status_code = std::atoi(head.c_str() + 9);
  if (*status_code < 100 || *status_code > 599) {
    *error = "malformed status code";
    return 2;
  }

  size_t content_length = 0;
  *keep_alive = true;
  size_t line_start = head.find("\r\n") + 2;
  while (line_start < head.size()) {
    const size_t line_end = head.find("\r\n", line_start);
    if (line_end == std::string::npos || line_end == line_start) break;
    std::string line = head.substr(line_start, line_end - line_start);
    for (char& c : line) c = static_cast<char>(std::tolower(c));
    if (line.rfind("content-length:", 0) == 0) {
      content_length = static_cast<size_t>(
          std::atoll(line.c_str() + sizeof("content-length:") - 1));
    } else if (line.rfind("connection:", 0) == 0 &&
               line.find("close") != std::string::npos) {
      *keep_alive = false;
    }
    line_start = line_end + 2;
  }
  if (content_length > MaxFrameBytes()) {
    *error = "response body too large";
    return 2;
  }
  if (avail < head_len + content_length) return 1;
  body->assign(begin + head_len, content_length);
  *offset += head_len + content_length;
  return 0;
}

}  // namespace

Client::~Client() { Close(); }

bool Client::Connect(const std::string& host, int port, std::string* error) {
  if (!ConnectRaw(host, port, error)) return false;
  std::string preamble;
  EncodeMagic(&preamble);
  if (!WriteAll(fd_, preamble.data(), preamble.size(), error)) {
    Close();
    return false;
  }
  return true;
}

bool Client::ConnectRaw(const std::string& host, int port,
                        std::string* error) {
  Close();
  fd_ = ConnectTcp(host, port, error);
  return fd_ >= 0;
}

void Client::Close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  rx_.clear();
  rx_off_ = 0;
}

bool Client::Send(uint64_t request_id, const data::Sample& sample,
                  std::string* error) {
  if (fd_ < 0) {
    *error = "not connected";
    return false;
  }
  std::string frame;
  EncodeRequest(request_id, sample, &frame);
  return SendRaw(frame, error);
}

bool Client::SendNamed(uint64_t request_id, const std::string& model,
                       const data::Sample& sample, std::string* error) {
  if (fd_ < 0) {
    *error = "not connected";
    return false;
  }
  std::string frame;
  EncodeNamedRequest(request_id, model, sample, &frame);
  return SendRaw(frame, error);
}

bool Client::SendRaw(const std::string& bytes, std::string* error) {
  if (fd_ < 0) {
    *error = "not connected";
    return false;
  }
  if (!WriteAll(fd_, bytes.data(), bytes.size(), error)) {
    Close();
    return false;
  }
  return true;
}

bool Client::Receive(WireResponse* out, std::string* error) {
  if (fd_ < 0) {
    *error = "not connected";
    return false;
  }
  for (;;) {
    const DecodeStatus status =
        DecodeResponse(rx_.data(), rx_.size(), &rx_off_, out, error);
    if (status == DecodeStatus::kOk) {
      if (rx_off_ > 64 * 1024) {
        rx_.erase(0, rx_off_);
        rx_off_ = 0;
      }
      return true;
    }
    if (status == DecodeStatus::kMalformed) {
      Close();
      return false;
    }
    bool eof = false;
    if (!ReadMore(fd_, &rx_, &eof, error)) {
      Close();
      return false;
    }
    if (eof) {
      *error = "connection closed by server";
      Close();
      return false;
    }
  }
}

bool Client::ReceiveScore(uint64_t id, float* score, std::string* error) {
  WireResponse resp;
  if (!Receive(&resp, error)) return false;
  if (resp.request_id != id) {
    *error = "response correlates to request " +
             std::to_string(resp.request_id) + ", expected " +
             std::to_string(id);
    Close();
    return false;
  }
  if (!resp.ok) {
    *error = "server error: " + resp.error;
    return false;
  }
  *score = resp.score;
  return true;
}

bool Client::Score(const data::Sample& sample, float* score,
                   std::string* error) {
  const uint64_t id = next_request_id_++;
  if (!Send(id, sample, error)) return false;
  return ReceiveScore(id, score, error);
}

bool Client::ScoreModel(const std::string& model, const data::Sample& sample,
                        float* score, std::string* error) {
  const uint64_t id = next_request_id_++;
  if (!SendNamed(id, model, sample, error)) return false;
  return ReceiveScore(id, score, error);
}

bool Client::SendFeedback(uint64_t request_id, float label,
                          std::string* error) {
  if (fd_ < 0) {
    *error = "not connected";
    return false;
  }
  std::string frame;
  EncodeFeedback(request_id, label, &frame);
  return SendRaw(frame, error);
}

bool Client::Feedback(uint64_t request_id, float label, bool* matched,
                      std::string* error) {
  if (!SendFeedback(request_id, label, error)) return false;
  WireResponse resp;
  if (!Receive(&resp, error)) return false;
  if (resp.request_id != request_id) {
    *error = "response correlates to request " +
             std::to_string(resp.request_id) + ", expected " +
             std::to_string(request_id);
    Close();
    return false;
  }
  if (!resp.ok) {
    *error = "server error: " + resp.error;
    return false;
  }
  *matched = resp.score != 0.0f;
  return true;
}

bool Client::SendRank(uint64_t request_id, const data::Sample& user,
                      const std::vector<int64_t>& candidates, uint32_t top_k,
                      std::string* error) {
  if (fd_ < 0) {
    *error = "not connected";
    return false;
  }
  std::string frame;
  EncodeRankRequest(request_id, user, candidates, top_k, &frame);
  return SendRaw(frame, error);
}

bool Client::SendNamedRank(uint64_t request_id, const std::string& model,
                           const data::Sample& user,
                           const std::vector<int64_t>& candidates,
                           uint32_t top_k, std::string* error) {
  if (fd_ < 0) {
    *error = "not connected";
    return false;
  }
  std::string frame;
  EncodeNamedRankRequest(request_id, model, user, candidates, top_k, &frame);
  return SendRaw(frame, error);
}

bool Client::ReceiveRank(uint64_t id, std::vector<float>* scores,
                         std::vector<uint32_t>* top, std::string* error) {
  WireResponse resp;
  if (!Receive(&resp, error)) return false;
  if (resp.request_id != id) {
    *error = "response correlates to request " +
             std::to_string(resp.request_id) + ", expected " +
             std::to_string(id);
    Close();
    return false;
  }
  if (!resp.ok) {
    *error = "server error: " + resp.error;
    return false;
  }
  if (!resp.rank) {
    *error = "response is not a rank response";
    return false;
  }
  *scores = std::move(resp.scores);
  *top = std::move(resp.top);
  return true;
}

bool Client::Rank(const data::Sample& user,
                  const std::vector<int64_t>& candidates, uint32_t top_k,
                  std::vector<float>* scores, std::vector<uint32_t>* top,
                  std::string* error) {
  const uint64_t id = next_request_id_++;
  if (!SendRank(id, user, candidates, top_k, error)) return false;
  return ReceiveRank(id, scores, top, error);
}

bool Client::RankModel(const std::string& model, const data::Sample& user,
                       const std::vector<int64_t>& candidates, uint32_t top_k,
                       std::vector<float>* scores, std::vector<uint32_t>* top,
                       std::string* error) {
  const uint64_t id = next_request_id_++;
  if (!SendNamedRank(id, model, user, candidates, top_k, error)) return false;
  return ReceiveRank(id, scores, top, error);
}

HttpClient::~HttpClient() { Close(); }

bool HttpClient::Connect(const std::string& host, int port,
                         std::string* error) {
  Close();
  host_ = host;
  port_ = port;
  return EnsureConnected(error);
}

void HttpClient::Close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

bool HttpClient::EnsureConnected(std::string* error) {
  if (fd_ >= 0) return true;
  fd_ = ConnectTcp(host_, port_, error);
  return fd_ >= 0;
}

bool HttpClient::Roundtrip(const std::string& request, int* status_code,
                           std::string* body, bool* server_closed,
                           std::string* error) {
  if (!EnsureConnected(error)) return false;
  if (!WriteAll(fd_, request.data(), request.size(), error)) {
    Close();
    return false;
  }
  std::string rx;
  size_t off = 0;
  bool keep_alive = true;
  for (;;) {
    const int status = ParseHttpResponse(rx.data(), rx.size(), &off,
                                         status_code, body, &keep_alive,
                                         error);
    if (status == 0) break;
    if (status == 2) {
      Close();
      return false;
    }
    bool eof = false;
    if (!ReadMore(fd_, &rx, &eof, error)) {
      Close();
      return false;
    }
    if (eof) {
      *error = "connection closed by server mid-response";
      Close();
      return false;
    }
  }
  *server_closed = !keep_alive;
  if (!keep_alive) Close();
  return true;
}

bool HttpClient::Score(const data::Sample& sample, int* status_code,
                       float* score, std::string* body, std::string* error,
                       uint64_t* request_id) {
  return ScoreModel("", sample, status_code, score, body, error, request_id);
}

bool HttpClient::ScoreModel(const std::string& model,
                            const data::Sample& sample, int* status_code,
                            float* score, std::string* body,
                            std::string* error, uint64_t* request_id) {
  const std::string payload = ScoreRequestJson(sample);
  std::string request;
  request.reserve(128 + payload.size());
  request += "POST /score";
  if (!model.empty()) request += "/" + model;
  request += " HTTP/1.1\r\nHost: ";
  request += host_;
  request += "\r\nContent-Type: application/json\r\nContent-Length: ";
  request += std::to_string(payload.size());
  request += "\r\n\r\n";
  request += payload;

  bool server_closed = false;
  if (!Roundtrip(request, status_code, body, &server_closed, error)) {
    return false;
  }
  if (*status_code != 200) return true;  // error JSON is in *body
  obs::JsonValue root;
  const obs::JsonValue* v = nullptr;
  if (!obs::JsonParse(*body, &root) || !root.IsObject() ||
      (v = root.Find("score")) == nullptr || !v->IsNumber()) {
    *error = "malformed score response body: " + *body;
    return false;
  }
  *score = static_cast<float>(v->number);
  if (request_id != nullptr) {
    const obs::JsonValue* id = root.Find("request_id");
    *request_id =
        id != nullptr && id->IsNumber() ? static_cast<uint64_t>(id->number)
                                        : 0;
  }
  return true;
}

bool HttpClient::Rank(const data::Sample& user,
                      const std::vector<int64_t>& candidates, int64_t top_k,
                      int* status_code, std::vector<float>* scores,
                      std::vector<uint32_t>* top, std::string* body,
                      std::string* error, uint64_t* request_id) {
  return RankModel("", user, candidates, top_k, status_code, scores, top,
                   body, error, request_id);
}

bool HttpClient::RankModel(const std::string& model, const data::Sample& user,
                           const std::vector<int64_t>& candidates,
                           int64_t top_k, int* status_code,
                           std::vector<float>* scores,
                           std::vector<uint32_t>* top, std::string* body,
                           std::string* error, uint64_t* request_id) {
  const std::string payload = RankRequestJson(user, candidates, top_k);
  std::string request;
  request.reserve(128 + payload.size());
  request += "POST /rank";
  if (!model.empty()) request += "/" + model;
  request += " HTTP/1.1\r\nHost: ";
  request += host_;
  request += "\r\nContent-Type: application/json\r\nContent-Length: ";
  request += std::to_string(payload.size());
  request += "\r\n\r\n";
  request += payload;

  bool server_closed = false;
  if (!Roundtrip(request, status_code, body, &server_closed, error)) {
    return false;
  }
  if (*status_code != 200) return true;  // error JSON is in *body
  obs::JsonValue root;
  const obs::JsonValue* scores_v = nullptr;
  const obs::JsonValue* top_v = nullptr;
  if (!obs::JsonParse(*body, &root) || !root.IsObject() ||
      (scores_v = root.Find("scores")) == nullptr || !scores_v->IsArray() ||
      (top_v = root.Find("top")) == nullptr || !top_v->IsArray()) {
    *error = "malformed rank response body: " + *body;
    return false;
  }
  scores->clear();
  scores->reserve(scores_v->array.size());
  for (const obs::JsonValue& v : scores_v->array) {
    if (!v.IsNumber()) {
      *error = "malformed rank response body: " + *body;
      return false;
    }
    scores->push_back(static_cast<float>(v.number));
  }
  top->clear();
  top->reserve(top_v->array.size());
  for (const obs::JsonValue& entry : top_v->array) {
    const obs::JsonValue* index =
        entry.IsObject() ? entry.Find("index") : nullptr;
    if (index == nullptr || !index->IsNumber()) {
      *error = "malformed rank response body: " + *body;
      return false;
    }
    top->push_back(static_cast<uint32_t>(index->number));
  }
  if (request_id != nullptr) {
    const obs::JsonValue* id = root.Find("request_id");
    *request_id =
        id != nullptr && id->IsNumber() ? static_cast<uint64_t>(id->number)
                                        : 0;
  }
  return true;
}

bool HttpClient::Get(const std::string& path, int* status_code,
                     std::string* body, std::string* error) {
  std::string request = "GET " + path + " HTTP/1.1\r\nHost: " + host_ +
                        "\r\n\r\n";
  bool server_closed = false;
  return Roundtrip(request, status_code, body, &server_closed, error);
}

bool HttpClient::Post(const std::string& path, const std::string& payload,
                      int* status_code, std::string* body,
                      std::string* error) {
  std::string request;
  request.reserve(128 + payload.size());
  request += "POST " + path + " HTTP/1.1\r\nHost: " + host_;
  request += "\r\nContent-Type: application/json\r\nContent-Length: ";
  request += std::to_string(payload.size());
  request += "\r\n\r\n";
  request += payload;
  bool server_closed = false;
  return Roundtrip(request, status_code, body, &server_closed, error);
}

bool HttpGet(const std::string& host, int port, const std::string& path,
             int* status_code, std::string* body, std::string* error) {
  HttpClient client;
  if (!client.Connect(host, port, error)) return false;
  return client.Get(path, status_code, body, error);
}

}  // namespace miss::net
