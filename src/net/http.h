// Minimal HTTP/1.1 support for the serving front-end.
//
// Just enough of the protocol for a scoring tier: request parsing with
// Content-Length bodies (no chunked encoding, no continuations), keep-alive
// by HTTP/1.1 default, and response assembly. The server mounts
//
//   POST /score     {"cat":[...],"seq":[[...],...]} -> {"score":p}
//   POST /rank      score body + "candidates":[...] (+ optional "top_k")
//                   -> {"scores":[...],"top":[{index,candidate,score},...]}
//   GET  /healthz   serving status + the serve/* metrics
//   GET  /metricz   the full obs::MetricsRegistry snapshot as JSON
//
// Parsing is incremental (kNeedMoreData) and bounded: the head and body
// limits come from the caller (net::ServerConfig), oversized or garbled
// input is kBad with a message suitable for a 400 body.

#ifndef MISS_NET_HTTP_H_
#define MISS_NET_HTTP_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "data/dataset.h"
#include "data/schema.h"

namespace miss::net {

struct HttpRequest {
  std::string method;   // uppercase, e.g. "POST"
  std::string path;     // origin-form target, query string left attached
  std::string version;  // "HTTP/1.0" or "HTTP/1.1"
  // Header names lower-cased; values trimmed of surrounding whitespace.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  bool keep_alive = true;

  // nullptr when absent; `name` must be given lower-case.
  const std::string* FindHeader(const std::string& name) const;
};

enum class HttpParseStatus { kOk, kNeedMoreData, kBad };

// Parses one request from data[*offset..size); advances *offset past it on
// kOk. kBad sets `*error` and, for oversized bodies, `*status_code` to 413
// (400 otherwise) — the connection should answer once and close.
HttpParseStatus ParseHttpRequest(const char* data, size_t size, size_t* offset,
                                 size_t max_head_bytes, size_t max_body_bytes,
                                 HttpRequest* out, int* status_code,
                                 std::string* error);

// Serializes a complete response with Content-Length and Connection headers.
std::string MakeHttpResponse(int status_code, const std::string& content_type,
                             const std::string& body, bool keep_alive);

// Standard reason phrase for the handful of codes the server emits.
const char* HttpStatusText(int status_code);

// Model-addressed route split: true when `route` is exactly `base` (*model
// cleared — the default model) or `base` + "/" + a non-empty model name
// with no further slash (*model set to it). "/score" and "/score/m1" match
// base "/score"; "/scores", "/score/" and "/score/a/b" do not.
bool SplitModelRoute(const std::string& route, const std::string& base,
                     std::string* model);

// JSON body of POST /score -> data::Sample (label 0), validated against the
// schema (field counts; id ranges via ValidateSample). False sets `*error`.
bool ParseScoreRequestJson(const std::string& body,
                           const data::DatasetSchema& schema,
                           data::Sample* out, std::string* error);

// The inverse, for clients and the demo-bundle sample file.
std::string ScoreRequestJson(const data::Sample& sample);

// JSON body of POST /rank: the /score user fields plus a "candidates" id
// array and an optional "top_k" number (default 0 = order every candidate).
// Validated via ValidateRankRequest (user sample, candidate-field presence,
// candidate id ranges). False sets `*error`.
bool ParseRankRequestJson(const std::string& body,
                          const data::DatasetSchema& schema, data::Sample* user,
                          std::vector<int64_t>* candidates, int64_t* top_k,
                          std::string* error);

// The inverse, for clients and curl walkthroughs.
std::string RankRequestJson(const data::Sample& user,
                            const std::vector<int64_t>& candidates,
                            int64_t top_k);

}  // namespace miss::net

#endif  // MISS_NET_HTTP_H_
