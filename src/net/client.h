// Client side of the serving front-end, used by tests, the load-gen bench,
// and examples/net_client.
//
// Client speaks the binary protocol (net/protocol.h) over a blocking
// socket: Score() is the one-request convenience, Send()/Receive() expose
// the pipelined form (fire N requests, then collect N responses — the
// server may answer out of order, correlate by request id).
//
// HttpClient holds one keep-alive HTTP/1.1 connection: Score() POSTs
// /score, Rank() POSTs /rank, Get() fetches /healthz | /metricz. HttpGet()
// is the one-shot helper when no connection reuse is wanted.
//
// Every method reports failure via a bool + `*error` message rather than
// exceptions, matching how the callers react (fail the test, skip the
// sample, print and exit).

#ifndef MISS_NET_CLIENT_H_
#define MISS_NET_CLIENT_H_

#include <cstdint>
#include <string>

#include "data/dataset.h"
#include "net/protocol.h"

namespace miss::net {

// Binary-protocol client. Not thread-safe; one connection per instance.
class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Connects and sends the "MIB1" preamble.
  bool Connect(const std::string& host, int port, std::string* error);
  // Connects WITHOUT the preamble — for tests that want to drive the
  // server's protocol sniffer with arbitrary first bytes.
  bool ConnectRaw(const std::string& host, int port, std::string* error);
  void Close();
  bool connected() const { return fd_ >= 0; }

  // Writes one request frame (flushes to the socket immediately).
  bool Send(uint64_t request_id, const data::Sample& sample,
            std::string* error);

  // Writes one named score frame addressing a fleet model by name (1..255
  // bytes; an unknown name gets a per-request error frame back).
  bool SendNamed(uint64_t request_id, const std::string& model,
                 const data::Sample& sample, std::string* error);

  // Writes arbitrary bytes — for malformed-input tests.
  bool SendRaw(const std::string& bytes, std::string* error);

  // Blocks for the next response frame. False on EOF / malformed response /
  // socket error; a server-side error frame is kOk here with out->ok false.
  bool Receive(WireResponse* out, std::string* error);

  // Send + Receive for the single-request case.
  bool Score(const data::Sample& sample, float* score, std::string* error);

  // SendNamed + Receive: score against a named fleet model.
  bool ScoreModel(const std::string& model, const data::Sample& sample,
                  float* score, std::string* error);

  // Writes one feedback frame labeling an earlier response (pipelined form).
  bool SendFeedback(uint64_t request_id, float label, std::string* error);

  // SendFeedback + Receive: `*matched` reports whether the server could
  // still join the id to a remembered score. False (with *error) when the
  // server has model health disabled.
  bool Feedback(uint64_t request_id, float label, bool* matched,
                std::string* error);

  // Writes one rank frame (pipelined form; the status-2 response carries
  // scores index-aligned with `candidates` plus the best-first listing).
  bool SendRank(uint64_t request_id, const data::Sample& user,
                const std::vector<int64_t>& candidates, uint32_t top_k,
                std::string* error);

  // Named rank frame (fleet model addressed by name).
  bool SendNamedRank(uint64_t request_id, const std::string& model,
                     const data::Sample& user,
                     const std::vector<int64_t>& candidates, uint32_t top_k,
                     std::string* error);

  // SendRank + Receive for the single-request case. `top` receives indices
  // into `candidates`, best first. False (with *error) when the server has
  // ranking disabled or answered with a non-rank frame.
  bool Rank(const data::Sample& user, const std::vector<int64_t>& candidates,
            uint32_t top_k, std::vector<float>* scores,
            std::vector<uint32_t>* top, std::string* error);

  // SendNamedRank + Receive for the single-request case.
  bool RankModel(const std::string& model, const data::Sample& user,
                 const std::vector<int64_t>& candidates, uint32_t top_k,
                 std::vector<float>* scores, std::vector<uint32_t>* top,
                 std::string* error);

 private:
  bool ReceiveScore(uint64_t id, float* score, std::string* error);
  bool ReceiveRank(uint64_t id, std::vector<float>* scores,
                   std::vector<uint32_t>* top, std::string* error);
  int fd_ = -1;
  uint64_t next_request_id_ = 1;
  std::string rx_;
  size_t rx_off_ = 0;
};

// Minimal keep-alive HTTP/1.1 client for the three serving endpoints.
// Not thread-safe; one connection per instance. Reconnects transparently
// when the server closed the previous exchange.
class HttpClient {
 public:
  HttpClient() = default;
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  bool Connect(const std::string& host, int port, std::string* error);
  void Close();

  // POST /score. False on transport failure; an HTTP error status is
  // reported as success with `*status_code` set and `*body` the error JSON.
  // `request_id` (optional) receives the server-assigned id to feed back.
  bool Score(const data::Sample& sample, int* status_code, float* score,
             std::string* body, std::string* error,
             uint64_t* request_id = nullptr);

  // POST /score/<model> — a named fleet model ("" = POST /score, the
  // default model). An unknown model answers 404 with the error JSON in
  // `*body`.
  bool ScoreModel(const std::string& model, const data::Sample& sample,
                  int* status_code, float* score, std::string* body,
                  std::string* error, uint64_t* request_id = nullptr);

  // POST /rank. Same status-code convention as Score(); on 200, `scores`
  // is index-aligned with `candidates` and `top` holds best-first indices
  // into it.
  bool Rank(const data::Sample& user, const std::vector<int64_t>& candidates,
            int64_t top_k, int* status_code, std::vector<float>* scores,
            std::vector<uint32_t>* top, std::string* body, std::string* error,
            uint64_t* request_id = nullptr);

  // POST /rank/<model> ("" = POST /rank).
  bool RankModel(const std::string& model, const data::Sample& user,
                 const std::vector<int64_t>& candidates, int64_t top_k,
                 int* status_code, std::vector<float>* scores,
                 std::vector<uint32_t>* top, std::string* body,
                 std::string* error, uint64_t* request_id = nullptr);

  // GET `path` (e.g. "/healthz").
  bool Get(const std::string& path, int* status_code, std::string* body,
           std::string* error);

  // POST a JSON `payload` to `path` (e.g. "/feedback").
  bool Post(const std::string& path, const std::string& payload,
            int* status_code, std::string* body, std::string* error);

 private:
  bool Roundtrip(const std::string& request, int* status_code,
                 std::string* body, bool* server_closed, std::string* error);
  bool EnsureConnected(std::string* error);

  std::string host_;
  int port_ = 0;
  int fd_ = -1;
};

// One-shot GET without connection reuse: connect, request, read, close.
bool HttpGet(const std::string& host, int port, const std::string& path,
             int* status_code, std::string* body, std::string* error);

}  // namespace miss::net

#endif  // MISS_NET_CLIENT_H_
