#include "net/protocol.h"

#include <cstring>

namespace miss::net {

namespace {

// The wire format is little-endian; x86/ARM64 hosts memcpy verbatim. (A
// big-endian port would byte-swap here — one chokepoint per direction.)
template <typename T>
void AppendRaw(T v, std::string* out) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out->append(buf, sizeof(T));
}

template <typename T>
T ReadRaw(const char* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

constexpr size_t kRequestHeaderLen = 8 + 4 + 4 + 4;  // after payload_len
constexpr size_t kFeedbackLen = 8 + 4 + 4;           // id, marker, label
constexpr size_t kResponseOkLen = 8 + 1 + 4;

}  // namespace

void EncodeMagic(std::string* out) { out->append(kBinaryMagic, 4); }

void EncodeRequest(uint64_t request_id, const data::Sample& sample,
                   std::string* out) {
  const uint32_t num_cat = static_cast<uint32_t>(sample.cat.size());
  const uint32_t num_seq = static_cast<uint32_t>(sample.seq.size());
  const uint32_t seq_len =
      sample.seq.empty() ? 0 : static_cast<uint32_t>(sample.seq[0].size());
  const uint32_t payload_len = static_cast<uint32_t>(
      kRequestHeaderLen +
      8 * (num_cat + static_cast<size_t>(num_seq) * seq_len));
  out->reserve(out->size() + 4 + payload_len);
  AppendRaw<uint32_t>(payload_len, out);
  AppendRaw<uint64_t>(request_id, out);
  AppendRaw<uint32_t>(num_cat, out);
  AppendRaw<uint32_t>(num_seq, out);
  AppendRaw<uint32_t>(seq_len, out);
  for (int64_t id : sample.cat) AppendRaw<int64_t>(id, out);
  for (const auto& row : sample.seq) {
    for (int64_t id : row) AppendRaw<int64_t>(id, out);
  }
}

void EncodeFeedback(uint64_t request_id, float label, std::string* out) {
  AppendRaw<uint32_t>(static_cast<uint32_t>(kFeedbackLen), out);
  AppendRaw<uint64_t>(request_id, out);
  AppendRaw<uint32_t>(kFeedbackMarker, out);
  AppendRaw<float>(label, out);
}

void EncodeResponse(const WireResponse& response, std::string* out) {
  if (response.ok) {
    AppendRaw<uint32_t>(static_cast<uint32_t>(kResponseOkLen), out);
    AppendRaw<uint64_t>(response.request_id, out);
    out->push_back(static_cast<char>(0));
    AppendRaw<float>(response.score, out);
    return;
  }
  std::string message = response.error;
  if (message.size() > 512) message.resize(512);
  AppendRaw<uint32_t>(static_cast<uint32_t>(8 + 1 + message.size()), out);
  AppendRaw<uint64_t>(response.request_id, out);
  out->push_back(static_cast<char>(1));
  out->append(message);
}

DecodeStatus DecodeRequest(const char* data, size_t size, size_t* offset,
                           const data::DatasetSchema& schema,
                           WireRequest* out, std::string* error) {
  const size_t avail = size - *offset;
  if (avail < 4) return DecodeStatus::kNeedMoreData;
  const char* p = data + *offset;
  const uint32_t payload_len = ReadRaw<uint32_t>(p);
  if (payload_len > kMaxFrameBytes) {
    *error = "frame payload of " + std::to_string(payload_len) +
             " bytes exceeds the " + std::to_string(kMaxFrameBytes) +
             "-byte limit";
    return DecodeStatus::kMalformed;
  }
  // A feedback frame (16 payload bytes) is the shortest legal frame.
  if (payload_len < kFeedbackLen) {
    *error = "frame payload of " + std::to_string(payload_len) +
             " bytes is shorter than any request";
    return DecodeStatus::kMalformed;
  }
  if (avail < 4 + static_cast<size_t>(payload_len)) {
    return DecodeStatus::kNeedMoreData;
  }
  p += 4;
  out->request_id = ReadRaw<uint64_t>(p);
  p += 8;
  const uint32_t num_cat = ReadRaw<uint32_t>(p);
  p += 4;

  if (num_cat == kFeedbackMarker) {
    if (payload_len != kFeedbackLen) {
      *error = "feedback frame payload of " + std::to_string(payload_len) +
               " bytes, expected " + std::to_string(kFeedbackLen);
      return DecodeStatus::kMalformed;
    }
    out->kind = WireRequest::Kind::kFeedback;
    out->label = ReadRaw<float>(p);
    out->sample = data::Sample();
    *offset += 4 + payload_len;
    return DecodeStatus::kOk;
  }

  if (payload_len < kRequestHeaderLen) {
    *error = "frame payload of " + std::to_string(payload_len) +
             " bytes is shorter than the request header";
    return DecodeStatus::kMalformed;
  }
  out->kind = WireRequest::Kind::kScore;
  out->label = 0.0f;
  const uint32_t num_seq = ReadRaw<uint32_t>(p);
  p += 4;
  const uint32_t seq_len = ReadRaw<uint32_t>(p);
  p += 4;

  if (num_cat != static_cast<uint32_t>(schema.num_categorical()) ||
      num_seq != static_cast<uint32_t>(schema.num_sequential())) {
    *error = "field counts (" + std::to_string(num_cat) + " cat, " +
             std::to_string(num_seq) + " seq) do not match schema \"" +
             schema.name + "\" (" + std::to_string(schema.num_categorical()) +
             " cat, " + std::to_string(schema.num_sequential()) + " seq)";
    return DecodeStatus::kMalformed;
  }
  // payload_len bounds the id count, so this multiply cannot overflow into
  // a huge allocation: both factors are < kMaxFrameBytes.
  const uint64_t num_ids =
      static_cast<uint64_t>(num_cat) +
      static_cast<uint64_t>(num_seq) * static_cast<uint64_t>(seq_len);
  if (static_cast<uint64_t>(payload_len) != kRequestHeaderLen + 8 * num_ids) {
    *error = "frame payload of " + std::to_string(payload_len) +
             " bytes does not match its declared field counts";
    return DecodeStatus::kMalformed;
  }

  data::Sample& sample = out->sample;
  sample.cat.resize(num_cat);
  for (uint32_t i = 0; i < num_cat; ++i) {
    sample.cat[i] = ReadRaw<int64_t>(p);
    p += 8;
  }
  sample.seq.assign(num_seq, {});
  for (uint32_t j = 0; j < num_seq; ++j) {
    sample.seq[j].resize(seq_len);
    for (uint32_t l = 0; l < seq_len; ++l) {
      sample.seq[j][l] = ReadRaw<int64_t>(p);
      p += 8;
    }
  }
  sample.label = 0.0f;
  *offset += 4 + payload_len;
  return DecodeStatus::kOk;
}

DecodeStatus DecodeResponse(const char* data, size_t size, size_t* offset,
                            WireResponse* out, std::string* error) {
  const size_t avail = size - *offset;
  if (avail < 4) return DecodeStatus::kNeedMoreData;
  const char* p = data + *offset;
  const uint32_t payload_len = ReadRaw<uint32_t>(p);
  if (payload_len > kMaxFrameBytes) {
    *error = "response payload of " + std::to_string(payload_len) +
             " bytes exceeds the " + std::to_string(kMaxFrameBytes) +
             "-byte limit";
    return DecodeStatus::kMalformed;
  }
  if (payload_len < 8 + 1) {
    *error = "response payload of " + std::to_string(payload_len) +
             " bytes is shorter than the response header";
    return DecodeStatus::kMalformed;
  }
  if (avail < 4 + static_cast<size_t>(payload_len)) {
    return DecodeStatus::kNeedMoreData;
  }
  p += 4;
  out->request_id = ReadRaw<uint64_t>(p);
  p += 8;
  const uint8_t status = static_cast<uint8_t>(*p);
  p += 1;
  if (status == 0) {
    if (payload_len != kResponseOkLen) {
      *error = "ok response carries " + std::to_string(payload_len) +
               " payload bytes, expected " + std::to_string(kResponseOkLen);
      return DecodeStatus::kMalformed;
    }
    out->ok = true;
    out->score = ReadRaw<float>(p);
    out->error.clear();
  } else if (status == 1) {
    out->ok = false;
    out->score = 0.0f;
    out->error.assign(p, payload_len - 9);
  } else {
    *error = "unknown response status " + std::to_string(status);
    return DecodeStatus::kMalformed;
  }
  *offset += 4 + payload_len;
  return DecodeStatus::kOk;
}

bool ValidateSample(const data::Sample& sample,
                    const data::DatasetSchema& schema, std::string* error) {
  for (size_t i = 0; i < sample.cat.size(); ++i) {
    const int64_t id = sample.cat[i];
    const int64_t vocab = schema.categorical[i].vocab_size;
    if (id < 0 || id >= vocab) {
      *error = "categorical field \"" + schema.categorical[i].name +
               "\" id " + std::to_string(id) + " outside [0, " +
               std::to_string(vocab) + ")";
      return false;
    }
  }
  if (sample.seq.empty() || sample.seq[0].empty()) {
    *error = "empty behavior history (seq_len must be >= 1)";
    return false;
  }
  const size_t history = sample.seq[0].size();
  for (size_t j = 0; j < sample.seq.size(); ++j) {
    if (sample.seq[j].size() != history) {
      *error = "sequential fields must be time-aligned (field \"" +
               schema.sequential[j].name + "\" has " +
               std::to_string(sample.seq[j].size()) + " steps, expected " +
               std::to_string(history) + ")";
      return false;
    }
    const int64_t vocab = schema.sequential[j].vocab_size;
    for (int64_t id : sample.seq[j]) {
      if (id < 0 || id >= vocab) {
        *error = "sequential field \"" + schema.sequential[j].name +
                 "\" id " + std::to_string(id) + " outside [0, " +
                 std::to_string(vocab) + ")";
        return false;
      }
    }
  }
  return true;
}

}  // namespace miss::net
