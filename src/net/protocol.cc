#include "net/protocol.h"

#include <atomic>
#include <cstring>

#include "common/check.h"

namespace miss::net {

namespace {

// Process-wide frame cap; relaxed is fine — it is set once at startup and
// only read afterwards.
std::atomic<uint32_t> g_max_frame_bytes{kDefaultMaxFrameBytes};

// The wire format is little-endian; x86/ARM64 hosts memcpy verbatim. (A
// big-endian port would byte-swap here — one chokepoint per direction.)
template <typename T>
void AppendRaw(T v, std::string* out) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out->append(buf, sizeof(T));
}

template <typename T>
T ReadRaw(const char* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

constexpr size_t kRequestHeaderLen = 8 + 4 + 4 + 4;  // after payload_len
constexpr size_t kFeedbackLen = 8 + 4 + 4;           // id, marker, label
constexpr size_t kResponseOkLen = 8 + 1 + 4;
// Rank frame: id, marker, num_cat, num_seq, seq_len before the ids...
constexpr size_t kRankHeaderLen = 8 + 4 + 4 + 4 + 4;
// ...plus top_k and K after them.
constexpr size_t kRankTrailerLen = 4 + 4;
// Rank response before the scores: id, status, K.
constexpr size_t kRankResponseHeaderLen = 8 + 1 + 4;
// Named frame before the model name: id, marker, kind, name_len.
constexpr size_t kNamedHeaderLen = 8 + 4 + 1 + 1;
// Score body (both frame flavors) from num_cat on: num_cat, num_seq,
// seq_len before the ids.
constexpr size_t kScoreBodyHeaderLen = 4 + 4 + 4;
// Rank body from its num_cat on adds top_k and K after the ids.
constexpr size_t kRankBodyHeaderLen = 4 + 4 + 4;

// Appends the score/rank body shared by the unnamed and named encoders:
// num_cat, num_seq, seq_len, then the ids field-major.
void AppendSampleBody(const data::Sample& sample, std::string* out) {
  const uint32_t num_cat = static_cast<uint32_t>(sample.cat.size());
  const uint32_t num_seq = static_cast<uint32_t>(sample.seq.size());
  const uint32_t seq_len =
      sample.seq.empty() ? 0 : static_cast<uint32_t>(sample.seq[0].size());
  AppendRaw<uint32_t>(num_cat, out);
  AppendRaw<uint32_t>(num_seq, out);
  AppendRaw<uint32_t>(seq_len, out);
  for (int64_t id : sample.cat) AppendRaw<int64_t>(id, out);
  for (const auto& row : sample.seq) {
    for (int64_t id : row) AppendRaw<int64_t>(id, out);
  }
}

uint64_t SampleBodyLen(const data::Sample& sample) {
  const uint64_t seq_len =
      sample.seq.empty() ? 0 : static_cast<uint64_t>(sample.seq[0].size());
  return kScoreBodyHeaderLen +
         8 * (static_cast<uint64_t>(sample.cat.size()) +
              static_cast<uint64_t>(sample.seq.size()) * seq_len);
}

// Parses a score body — u32 num_cat, u32 num_seq, u32 seq_len, then the
// ids — with `p` at num_cat and `body_len` bytes from there to the end of
// the payload. On success fills `out` as a kScore request.
bool ParseScoreBody(const char* p, uint64_t body_len,
                    const data::DatasetSchema& schema, WireRequest* out,
                    std::string* error) {
  if (body_len < kScoreBodyHeaderLen) {
    *error = "score body of " + std::to_string(body_len) +
             " bytes is shorter than the request header";
    return false;
  }
  const uint32_t num_cat = ReadRaw<uint32_t>(p);
  p += 4;
  const uint32_t num_seq = ReadRaw<uint32_t>(p);
  p += 4;
  const uint32_t seq_len = ReadRaw<uint32_t>(p);
  p += 4;
  if (num_cat != static_cast<uint32_t>(schema.num_categorical()) ||
      num_seq != static_cast<uint32_t>(schema.num_sequential())) {
    *error = "field counts (" + std::to_string(num_cat) + " cat, " +
             std::to_string(num_seq) + " seq) do not match schema \"" +
             schema.name + "\" (" + std::to_string(schema.num_categorical()) +
             " cat, " + std::to_string(schema.num_sequential()) + " seq)";
    return false;
  }
  // body_len bounds the id count, so this multiply cannot overflow into a
  // huge allocation: both factors are < MaxFrameBytes().
  const uint64_t num_ids =
      static_cast<uint64_t>(num_cat) +
      static_cast<uint64_t>(num_seq) * static_cast<uint64_t>(seq_len);
  if (body_len != kScoreBodyHeaderLen + 8 * num_ids) {
    *error = "score body of " + std::to_string(body_len) +
             " bytes does not match its declared field counts";
    return false;
  }
  data::Sample& sample = out->sample;
  sample.cat.resize(num_cat);
  for (uint32_t i = 0; i < num_cat; ++i) {
    sample.cat[i] = ReadRaw<int64_t>(p);
    p += 8;
  }
  sample.seq.assign(num_seq, {});
  for (uint32_t j = 0; j < num_seq; ++j) {
    sample.seq[j].resize(seq_len);
    for (uint32_t l = 0; l < seq_len; ++l) {
      sample.seq[j][l] = ReadRaw<int64_t>(p);
      p += 8;
    }
  }
  sample.label = 0.0f;
  out->kind = WireRequest::Kind::kScore;
  out->label = 0.0f;
  out->candidates.clear();
  out->top_k = 0;
  return true;
}

// Parses a rank body — u32 num_cat, u32 num_seq, u32 seq_len, the user
// ids, u32 top_k, u32 K, the candidate ids — with `p` at num_cat and
// `body_len` bytes from there to the end of the payload.
bool ParseRankBody(const char* p, uint64_t body_len,
                   const data::DatasetSchema& schema, WireRequest* out,
                   std::string* error) {
  if (body_len < kRankBodyHeaderLen + kRankTrailerLen) {
    *error = "rank body of " + std::to_string(body_len) +
             " bytes is shorter than the rank header";
    return false;
  }
  const uint32_t user_cat = ReadRaw<uint32_t>(p);
  p += 4;
  const uint32_t user_seq = ReadRaw<uint32_t>(p);
  p += 4;
  const uint32_t seq_len = ReadRaw<uint32_t>(p);
  p += 4;
  if (user_cat != static_cast<uint32_t>(schema.num_categorical()) ||
      user_seq != static_cast<uint32_t>(schema.num_sequential())) {
    *error = "rank frame field counts (" + std::to_string(user_cat) +
             " cat, " + std::to_string(user_seq) +
             ") do not match schema \"" + schema.name + "\" (" +
             std::to_string(schema.num_categorical()) + " cat, " +
             std::to_string(schema.num_sequential()) + " seq)";
    return false;
  }
  // body_len bounds every count below, so no wire-sized allocation can
  // exceed the frame cap.
  const uint64_t num_ids =
      static_cast<uint64_t>(user_cat) +
      static_cast<uint64_t>(user_seq) * static_cast<uint64_t>(seq_len);
  const uint64_t ids_end = kRankBodyHeaderLen + 8 * num_ids + kRankTrailerLen;
  if (body_len < ids_end) {
    *error = "rank body of " + std::to_string(body_len) +
             " bytes does not cover its declared user fields";
    return false;
  }
  data::Sample& user = out->sample;
  user.cat.resize(user_cat);
  for (uint32_t i = 0; i < user_cat; ++i) {
    user.cat[i] = ReadRaw<int64_t>(p);
    p += 8;
  }
  user.seq.assign(user_seq, {});
  for (uint32_t j = 0; j < user_seq; ++j) {
    user.seq[j].resize(seq_len);
    for (uint32_t l = 0; l < seq_len; ++l) {
      user.seq[j][l] = ReadRaw<int64_t>(p);
      p += 8;
    }
  }
  user.label = 0.0f;
  out->top_k = ReadRaw<uint32_t>(p);
  p += 4;
  const uint32_t k = ReadRaw<uint32_t>(p);
  p += 4;
  if (body_len != ids_end + 8 * static_cast<uint64_t>(k)) {
    *error = "rank body of " + std::to_string(body_len) +
             " bytes does not match its declared candidate count " +
             std::to_string(k);
    return false;
  }
  out->kind = WireRequest::Kind::kRank;
  out->label = 0.0f;
  out->candidates.resize(k);
  for (uint32_t i = 0; i < k; ++i) {
    out->candidates[i] = ReadRaw<int64_t>(p);
    p += 8;
  }
  return true;
}

}  // namespace

uint32_t MaxFrameBytes() {
  return g_max_frame_bytes.load(std::memory_order_relaxed);
}

void SetMaxFrameBytes(uint32_t limit) {
  g_max_frame_bytes.store(limit, std::memory_order_relaxed);
}

void EncodeMagic(std::string* out) { out->append(kBinaryMagic, 4); }

void EncodeRequest(uint64_t request_id, const data::Sample& sample,
                   std::string* out) {
  const uint32_t num_cat = static_cast<uint32_t>(sample.cat.size());
  const uint32_t num_seq = static_cast<uint32_t>(sample.seq.size());
  const uint32_t seq_len =
      sample.seq.empty() ? 0 : static_cast<uint32_t>(sample.seq[0].size());
  const uint32_t payload_len = static_cast<uint32_t>(
      kRequestHeaderLen +
      8 * (num_cat + static_cast<size_t>(num_seq) * seq_len));
  out->reserve(out->size() + 4 + payload_len);
  AppendRaw<uint32_t>(payload_len, out);
  AppendRaw<uint64_t>(request_id, out);
  AppendRaw<uint32_t>(num_cat, out);
  AppendRaw<uint32_t>(num_seq, out);
  AppendRaw<uint32_t>(seq_len, out);
  for (int64_t id : sample.cat) AppendRaw<int64_t>(id, out);
  for (const auto& row : sample.seq) {
    for (int64_t id : row) AppendRaw<int64_t>(id, out);
  }
}

void EncodeFeedback(uint64_t request_id, float label, std::string* out) {
  AppendRaw<uint32_t>(static_cast<uint32_t>(kFeedbackLen), out);
  AppendRaw<uint64_t>(request_id, out);
  AppendRaw<uint32_t>(kFeedbackMarker, out);
  AppendRaw<float>(label, out);
}

void EncodeRankRequest(uint64_t request_id, const data::Sample& user,
                       const std::vector<int64_t>& candidates, uint32_t top_k,
                       std::string* out) {
  const uint32_t num_cat = static_cast<uint32_t>(user.cat.size());
  const uint32_t num_seq = static_cast<uint32_t>(user.seq.size());
  const uint32_t seq_len =
      user.seq.empty() ? 0 : static_cast<uint32_t>(user.seq[0].size());
  const uint32_t k = static_cast<uint32_t>(candidates.size());
  const uint32_t payload_len = static_cast<uint32_t>(
      kRankHeaderLen +
      8 * (num_cat + static_cast<size_t>(num_seq) * seq_len) +
      kRankTrailerLen + 8 * static_cast<size_t>(k));
  out->reserve(out->size() + 4 + payload_len);
  AppendRaw<uint32_t>(payload_len, out);
  AppendRaw<uint64_t>(request_id, out);
  AppendRaw<uint32_t>(kRankMarker, out);
  AppendRaw<uint32_t>(num_cat, out);
  AppendRaw<uint32_t>(num_seq, out);
  AppendRaw<uint32_t>(seq_len, out);
  for (int64_t id : user.cat) AppendRaw<int64_t>(id, out);
  for (const auto& row : user.seq) {
    for (int64_t id : row) AppendRaw<int64_t>(id, out);
  }
  AppendRaw<uint32_t>(top_k, out);
  AppendRaw<uint32_t>(k, out);
  for (int64_t id : candidates) AppendRaw<int64_t>(id, out);
}

void EncodeNamedRequest(uint64_t request_id, const std::string& model,
                        const data::Sample& sample, std::string* out) {
  MISS_CHECK(!model.empty());
  MISS_CHECK_LE(model.size(), size_t{255});
  const uint32_t payload_len = static_cast<uint32_t>(
      kNamedHeaderLen + model.size() + SampleBodyLen(sample));
  out->reserve(out->size() + 4 + payload_len);
  AppendRaw<uint32_t>(payload_len, out);
  AppendRaw<uint64_t>(request_id, out);
  AppendRaw<uint32_t>(kNamedMarker, out);
  out->push_back(static_cast<char>(kNamedScoreKind));
  out->push_back(static_cast<char>(model.size()));
  out->append(model);
  AppendSampleBody(sample, out);
}

void EncodeNamedRankRequest(uint64_t request_id, const std::string& model,
                            const data::Sample& user,
                            const std::vector<int64_t>& candidates,
                            uint32_t top_k, std::string* out) {
  MISS_CHECK(!model.empty());
  MISS_CHECK_LE(model.size(), size_t{255});
  const uint32_t k = static_cast<uint32_t>(candidates.size());
  const uint32_t payload_len = static_cast<uint32_t>(
      kNamedHeaderLen + model.size() + SampleBodyLen(user) + kRankTrailerLen +
      8 * static_cast<size_t>(k));
  out->reserve(out->size() + 4 + payload_len);
  AppendRaw<uint32_t>(payload_len, out);
  AppendRaw<uint64_t>(request_id, out);
  AppendRaw<uint32_t>(kNamedMarker, out);
  out->push_back(static_cast<char>(kNamedRankKind));
  out->push_back(static_cast<char>(model.size()));
  out->append(model);
  AppendSampleBody(user, out);
  AppendRaw<uint32_t>(top_k, out);
  AppendRaw<uint32_t>(k, out);
  for (int64_t id : candidates) AppendRaw<int64_t>(id, out);
}

void EncodeResponse(const WireResponse& response, std::string* out) {
  if (response.ok) {
    AppendRaw<uint32_t>(static_cast<uint32_t>(kResponseOkLen), out);
    AppendRaw<uint64_t>(response.request_id, out);
    out->push_back(static_cast<char>(0));
    AppendRaw<float>(response.score, out);
    return;
  }
  std::string message = response.error;
  if (message.size() > 512) message.resize(512);
  AppendRaw<uint32_t>(static_cast<uint32_t>(8 + 1 + message.size()), out);
  AppendRaw<uint64_t>(response.request_id, out);
  out->push_back(static_cast<char>(1));
  out->append(message);
}

void EncodeRankResponse(uint64_t request_id, const std::vector<float>& scores,
                        const std::vector<uint32_t>& top, std::string* out) {
  const uint32_t k = static_cast<uint32_t>(scores.size());
  const uint32_t top_n = static_cast<uint32_t>(top.size());
  const uint32_t payload_len = static_cast<uint32_t>(
      kRankResponseHeaderLen + 4 * static_cast<size_t>(k) + 4 +
      4 * static_cast<size_t>(top_n));
  out->reserve(out->size() + 4 + payload_len);
  AppendRaw<uint32_t>(payload_len, out);
  AppendRaw<uint64_t>(request_id, out);
  out->push_back(static_cast<char>(2));
  AppendRaw<uint32_t>(k, out);
  for (float s : scores) AppendRaw<float>(s, out);
  AppendRaw<uint32_t>(top_n, out);
  for (uint32_t i : top) AppendRaw<uint32_t>(i, out);
}

DecodeStatus DecodeRequest(const char* data, size_t size, size_t* offset,
                           const data::DatasetSchema& schema,
                           WireRequest* out, std::string* error) {
  return DecodeRequest(data, size, offset, &schema, ModelResolver(), out,
                       error);
}

DecodeStatus DecodeRequest(const char* data, size_t size, size_t* offset,
                           const data::DatasetSchema* default_schema,
                           const ModelResolver& resolver, WireRequest* out,
                           std::string* error) {
  const size_t avail = size - *offset;
  if (avail < 4) return DecodeStatus::kNeedMoreData;
  const char* p = data + *offset;
  const uint32_t payload_len = ReadRaw<uint32_t>(p);
  const uint32_t max_frame = MaxFrameBytes();
  if (payload_len > max_frame) {
    *error = "frame payload of " + std::to_string(payload_len) +
             " bytes exceeds the " + std::to_string(max_frame) +
             "-byte limit";
    return DecodeStatus::kMalformed;
  }
  // A feedback frame (16 payload bytes) is the shortest legal frame.
  if (payload_len < kFeedbackLen) {
    *error = "frame payload of " + std::to_string(payload_len) +
             " bytes is shorter than any request";
    return DecodeStatus::kMalformed;
  }
  if (avail < 4 + static_cast<size_t>(payload_len)) {
    return DecodeStatus::kNeedMoreData;
  }
  p += 4;
  out->request_id = ReadRaw<uint64_t>(p);
  p += 8;
  out->model.clear();
  out->model_known = true;
  const uint32_t num_cat = ReadRaw<uint32_t>(p);
  p += 4;

  // Consumes the frame without parsing its body: the model name (or the
  // missing default) did not resolve, so there is no schema to parse
  // against. A routing miss, not a protocol error.
  auto routing_miss = [&](WireRequest::Kind kind) {
    out->kind = kind;
    out->model_known = false;
    out->sample = data::Sample();
    out->label = 0.0f;
    out->candidates.clear();
    out->top_k = 0;
    *offset += 4 + payload_len;
    return DecodeStatus::kOk;
  };

  if (num_cat == kFeedbackMarker) {
    if (payload_len != kFeedbackLen) {
      *error = "feedback frame payload of " + std::to_string(payload_len) +
               " bytes, expected " + std::to_string(kFeedbackLen);
      return DecodeStatus::kMalformed;
    }
    out->kind = WireRequest::Kind::kFeedback;
    out->label = ReadRaw<float>(p);
    out->sample = data::Sample();
    out->candidates.clear();
    out->top_k = 0;
    *offset += 4 + payload_len;
    return DecodeStatus::kOk;
  }

  if (num_cat == kNamedMarker) {
    if (payload_len < kNamedHeaderLen + 1) {
      *error = "named frame payload of " + std::to_string(payload_len) +
               " bytes is shorter than the named header";
      return DecodeStatus::kMalformed;
    }
    const uint8_t kind = static_cast<uint8_t>(*p);
    p += 1;
    const uint8_t name_len = static_cast<uint8_t>(*p);
    p += 1;
    if (kind > kNamedRankKind) {
      *error = "named frame kind " + std::to_string(kind) +
               " is not score (0) or rank (1)";
      return DecodeStatus::kMalformed;
    }
    if (name_len == 0) {
      *error = "named frame carries an empty model name";
      return DecodeStatus::kMalformed;
    }
    if (static_cast<size_t>(payload_len) <
        kNamedHeaderLen + static_cast<size_t>(name_len)) {
      *error = "named frame model name runs past the payload";
      return DecodeStatus::kMalformed;
    }
    out->model.assign(p, name_len);
    p += name_len;
    const uint64_t body_len = static_cast<uint64_t>(payload_len) -
                              kNamedHeaderLen -
                              static_cast<uint64_t>(name_len);
    const data::DatasetSchema* schema =
        resolver ? resolver(out->model) : nullptr;
    const WireRequest::Kind wire_kind = kind == kNamedRankKind
                                            ? WireRequest::Kind::kRank
                                            : WireRequest::Kind::kScore;
    if (schema == nullptr) return routing_miss(wire_kind);
    const bool ok = kind == kNamedRankKind
                        ? ParseRankBody(p, body_len, *schema, out, error)
                        : ParseScoreBody(p, body_len, *schema, out, error);
    if (!ok) return DecodeStatus::kMalformed;
    *offset += 4 + payload_len;
    return DecodeStatus::kOk;
  }

  if (num_cat == kRankMarker) {
    if (default_schema == nullptr) {
      return routing_miss(WireRequest::Kind::kRank);
    }
    if (!ParseRankBody(p, static_cast<uint64_t>(payload_len) - 12,
                       *default_schema, out, error)) {
      return DecodeStatus::kMalformed;
    }
    *offset += 4 + payload_len;
    return DecodeStatus::kOk;
  }

  if (default_schema == nullptr) {
    return routing_miss(WireRequest::Kind::kScore);
  }
  // Score frame: num_cat was already consumed to check for a marker; the
  // body helper re-reads from it.
  if (!ParseScoreBody(p - 4, static_cast<uint64_t>(payload_len) - 8,
                      *default_schema, out, error)) {
    return DecodeStatus::kMalformed;
  }
  *offset += 4 + payload_len;
  return DecodeStatus::kOk;
}

DecodeStatus DecodeResponse(const char* data, size_t size, size_t* offset,
                            WireResponse* out, std::string* error) {
  const size_t avail = size - *offset;
  if (avail < 4) return DecodeStatus::kNeedMoreData;
  const char* p = data + *offset;
  const uint32_t payload_len = ReadRaw<uint32_t>(p);
  const uint32_t max_frame = MaxFrameBytes();
  if (payload_len > max_frame) {
    *error = "response payload of " + std::to_string(payload_len) +
             " bytes exceeds the " + std::to_string(max_frame) +
             "-byte limit";
    return DecodeStatus::kMalformed;
  }
  if (payload_len < 8 + 1) {
    *error = "response payload of " + std::to_string(payload_len) +
             " bytes is shorter than the response header";
    return DecodeStatus::kMalformed;
  }
  if (avail < 4 + static_cast<size_t>(payload_len)) {
    return DecodeStatus::kNeedMoreData;
  }
  p += 4;
  out->request_id = ReadRaw<uint64_t>(p);
  p += 8;
  const uint8_t status = static_cast<uint8_t>(*p);
  p += 1;
  out->rank = false;
  out->scores.clear();
  out->top.clear();
  if (status == 0) {
    if (payload_len != kResponseOkLen) {
      *error = "ok response carries " + std::to_string(payload_len) +
               " payload bytes, expected " + std::to_string(kResponseOkLen);
      return DecodeStatus::kMalformed;
    }
    out->ok = true;
    out->score = ReadRaw<float>(p);
    out->error.clear();
  } else if (status == 1) {
    out->ok = false;
    out->score = 0.0f;
    out->error.assign(p, payload_len - 9);
  } else if (status == 2) {
    if (payload_len < kRankResponseHeaderLen + 4) {
      *error = "rank response payload of " + std::to_string(payload_len) +
               " bytes is shorter than the rank response header";
      return DecodeStatus::kMalformed;
    }
    const uint32_t k = ReadRaw<uint32_t>(p);
    p += 4;
    const uint64_t scores_end =
        kRankResponseHeaderLen + 4 * static_cast<uint64_t>(k) + 4;
    if (static_cast<uint64_t>(payload_len) < scores_end) {
      *error = "rank response payload of " + std::to_string(payload_len) +
               " bytes does not cover its declared " + std::to_string(k) +
               " scores";
      return DecodeStatus::kMalformed;
    }
    out->scores.resize(k);
    for (uint32_t i = 0; i < k; ++i) {
      out->scores[i] = ReadRaw<float>(p);
      p += 4;
    }
    const uint32_t top_n = ReadRaw<uint32_t>(p);
    p += 4;
    if (top_n > k ||
        static_cast<uint64_t>(payload_len) !=
            scores_end + 4 * static_cast<uint64_t>(top_n)) {
      *error = "rank response payload of " + std::to_string(payload_len) +
               " bytes does not match its declared top-" +
               std::to_string(top_n) + " listing";
      return DecodeStatus::kMalformed;
    }
    out->top.resize(top_n);
    for (uint32_t i = 0; i < top_n; ++i) {
      out->top[i] = ReadRaw<uint32_t>(p);
      p += 4;
    }
    out->ok = true;
    out->rank = true;
    out->score = 0.0f;
    out->error.clear();
  } else {
    *error = "unknown response status " + std::to_string(status);
    return DecodeStatus::kMalformed;
  }
  *offset += 4 + payload_len;
  return DecodeStatus::kOk;
}

bool ValidateSample(const data::Sample& sample,
                    const data::DatasetSchema& schema, std::string* error) {
  for (size_t i = 0; i < sample.cat.size(); ++i) {
    const int64_t id = sample.cat[i];
    const int64_t vocab = schema.categorical[i].vocab_size;
    if (id < 0 || id >= vocab) {
      *error = "categorical field \"" + schema.categorical[i].name +
               "\" id " + std::to_string(id) + " outside [0, " +
               std::to_string(vocab) + ")";
      return false;
    }
  }
  if (sample.seq.empty() || sample.seq[0].empty()) {
    *error = "empty behavior history (seq_len must be >= 1)";
    return false;
  }
  const size_t history = sample.seq[0].size();
  for (size_t j = 0; j < sample.seq.size(); ++j) {
    if (sample.seq[j].size() != history) {
      *error = "sequential fields must be time-aligned (field \"" +
               schema.sequential[j].name + "\" has " +
               std::to_string(sample.seq[j].size()) + " steps, expected " +
               std::to_string(history) + ")";
      return false;
    }
    const int64_t vocab = schema.sequential[j].vocab_size;
    for (int64_t id : sample.seq[j]) {
      if (id < 0 || id >= vocab) {
        *error = "sequential field \"" + schema.sequential[j].name +
                 "\" id " + std::to_string(id) + " outside [0, " +
                 std::to_string(vocab) + ")";
        return false;
      }
    }
  }
  return true;
}

bool ValidateRankRequest(const data::Sample& user,
                         const std::vector<int64_t>& candidates,
                         const data::DatasetSchema& schema,
                         std::string* error) {
  if (!ValidateSample(user, schema, error)) return false;
  const int cand_field = schema.CandidateField();
  if (cand_field < 0) {
    *error = "schema \"" + schema.name +
             "\" has no candidate field to rank against";
    return false;
  }
  const int64_t vocab = schema.categorical[cand_field].vocab_size;
  for (int64_t id : candidates) {
    if (id < 0 || id >= vocab) {
      *error = "candidate id " + std::to_string(id) + " outside [0, " +
               std::to_string(vocab) + ") for field \"" +
               schema.categorical[cand_field].name + "\"";
      return false;
    }
  }
  return true;
}

}  // namespace miss::net
