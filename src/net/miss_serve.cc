// miss_serve: the network scoring server.
//
//   miss_serve --bundle <dir> [--host 127.0.0.1] [--port 8080]
//              [--port-file <path>] [--workers N] [--nn-threads N]
//              [--max-batch N] [--max-delay-us N] [--drain-timeout-ms N]
//              [--slow-ms N] [--slow-log <path>] [--model-health]
//              [--rank-workers N] [--rank-chunk N] [--max-frame-bytes N]
//
// Loads a serve::SaveBundle directory, stands up a serve::Engine plus a
// rank::RankEngine over it, and serves the binary protocol plus HTTP
// (POST /score, POST /rank, POST /feedback, GET /healthz,
// GET /metricz[?format=prom], GET /statusz, GET /modelz) on one listener. --slow-ms turns on the slow-request log (requests over the
// threshold appear in /statusz's ring and, with --slow-log, as JSONL lines)
// and forces telemetry on. --model-health attaches a
// serve::ModelHealthMonitor (drift vs. the bundle's training baseline,
// calibration from /feedback labels, /modelz report) and also forces
// telemetry on. SIGTERM/SIGINT trigger a graceful stop:
// the listener closes, in-flight requests finish and flush, then the
// process exits 0. --port 0 picks an ephemeral port; --port-file writes the
// chosen port for harnesses (the net_smoke test uses both).
//
//   miss_serve --export-demo-bundle <dir>
//
// writes a tiny untrained "din" bundle — including a model-health baseline
// computed over the synthetic validation split — plus a matching
// sample.json scoring request into <dir> and exits — enough to try the
// server (and run the smoke test) without a training run.

#include <signal.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "common/logging.h"
#include "data/synthetic.h"
#include "obs/health.h"
#include "obs/trace.h"
#include "models/model_factory.h"
#include "net/http.h"
#include "net/protocol.h"
#include "net/server.h"
#include "rank/rank_engine.h"
#include "serve/bundle.h"
#include "serve/engine.h"
#include "serve/health.h"
#include "train/baseline.h"

namespace {

miss::net::Server* g_server = nullptr;

void HandleStopSignal(int /*sig*/) {
  if (g_server != nullptr) g_server->RequestStop();  // async-signal-safe
}

int ExportDemoBundle(const std::string& dir) {
  miss::data::SyntheticConfig config = miss::data::SyntheticConfig::Tiny();
  config.seed = 42;
  const miss::data::DatasetBundle data = GenerateSynthetic(config);
  miss::models::ModelConfig mc;
  auto model = miss::models::CreateModel("din", data.test.schema, mc, 42);
  const miss::obs::ModelBaseline baseline =
      miss::train::ComputeBaseline(*model, data.valid);
  if (!miss::serve::SaveBundle(*model, dir, &baseline)) {
    std::fprintf(stderr, "failed to write bundle to %s\n", dir.c_str());
    return 1;
  }
  const std::string sample_path = dir + "/sample.json";
  std::ofstream out(sample_path);
  out << miss::net::ScoreRequestJson(data.test.samples[0]) << "\n";
  if (!out.good()) {
    std::fprintf(stderr, "failed to write %s\n", sample_path.c_str());
    return 1;
  }
  std::printf("demo bundle written to %s (scoring request: %s)\n",
              dir.c_str(), sample_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string bundle_dir;
  std::string export_dir;
  std::string port_file;
  bool model_health = false;
  miss::net::ServerConfig server_config;
  server_config.port = 8080;
  miss::serve::EngineConfig engine_config;
  miss::rank::RankEngineConfig rank_config;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--bundle") {
      bundle_dir = next("--bundle");
    } else if (arg == "--export-demo-bundle") {
      export_dir = next("--export-demo-bundle");
    } else if (arg == "--host") {
      server_config.bind_address = next("--host");
    } else if (arg == "--port") {
      server_config.port = std::atoi(next("--port"));
    } else if (arg == "--port-file") {
      port_file = next("--port-file");
    } else if (arg == "--workers") {
      engine_config.num_workers = std::atoi(next("--workers"));
    } else if (arg == "--nn-threads") {
      // Intra-op threads per engine worker. Default 1: inter-op
      // parallelism across workers already uses the cores, and
      // oversubscribing (workers * nn_threads > cores) hurts tail latency.
      engine_config.nn_threads = std::atoi(next("--nn-threads"));
    } else if (arg == "--max-batch") {
      engine_config.max_batch_size = std::atoll(next("--max-batch"));
    } else if (arg == "--max-delay-us") {
      engine_config.max_queue_delay_us = std::atoll(next("--max-delay-us"));
    } else if (arg == "--drain-timeout-ms") {
      server_config.drain_timeout_ms = std::atoll(next("--drain-timeout-ms"));
    } else if (arg == "--slow-ms") {
      server_config.slow_request_ms = std::atoll(next("--slow-ms"));
    } else if (arg == "--slow-log") {
      server_config.slow_log_path = next("--slow-log");
    } else if (arg == "--model-health") {
      model_health = true;
    } else if (arg == "--rank-workers") {
      rank_config.num_workers = std::atoi(next("--rank-workers"));
    } else if (arg == "--rank-chunk") {
      rank_config.max_chunk = std::atoll(next("--rank-chunk"));
    } else if (arg == "--max-frame-bytes") {
      miss::net::SetMaxFrameBytes(static_cast<uint32_t>(
          std::atoll(next("--max-frame-bytes"))));
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: miss_serve --bundle <dir> [--host H] [--port P]\n"
          "                  [--port-file F] [--workers N] [--nn-threads N]\n"
          "                  [--max-batch N] [--max-delay-us N]\n"
          "                  [--drain-timeout-ms N] [--slow-ms N]\n"
          "                  [--slow-log F] [--model-health]\n"
          "                  [--rank-workers N] [--rank-chunk N]\n"
          "                  [--max-frame-bytes N]\n"
          "       miss_serve --export-demo-bundle <dir>\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag %s (try --help)\n", arg.c_str());
      return 2;
    }
  }

  if (!export_dir.empty()) return ExportDemoBundle(export_dir);
  if (bundle_dir.empty()) {
    std::fprintf(stderr, "--bundle is required (or --export-demo-bundle)\n");
    return 2;
  }

  miss::serve::Bundle bundle;
  if (!miss::serve::LoadBundle(bundle_dir, &bundle)) {
    std::fprintf(stderr, "failed to load bundle from %s\n",
                 bundle_dir.c_str());
    return 1;
  }
  MISS_LOG(INFO) << "miss_serve: loaded \"" << bundle.model_name
                 << "\" bundle (schema " << bundle.model->schema().name
                 << ") from " << bundle_dir;
  server_config.model_name = bundle.model_name;
  server_config.bundle_path = bundle_dir;

  // The slow-request log and the model-health monitor both need telemetry;
  // make --slow-ms / --model-health imply it. Read Enabled() first so the
  // MISS_* env init runs (and opens MISS_TRACE_FILE) before the override.
  if ((server_config.slow_request_ms > 0 || model_health) &&
      !miss::obs::Enabled()) {
    miss::obs::SetEnabled(true);
  }

  std::unique_ptr<miss::serve::ModelHealthMonitor> monitor;
  if (model_health) {
    monitor = std::make_unique<miss::serve::ModelHealthMonitor>(
        bundle.model->schema(), bundle.baseline);
    engine_config.health = monitor.get();
    server_config.health = monitor.get();
    MISS_LOG(INFO) << "miss_serve: model-health monitoring on ("
                   << (monitor->has_baseline()
                           ? "baseline loaded; drift reporting active"
                           : "no baseline in bundle; drift reporting off")
                   << ")";
  }

  miss::serve::Engine engine(*bundle.model, engine_config);
  // The rank engine shares the model (read-only forwards) and the health
  // monitor, so drift tracking covers rank traffic too.
  rank_config.nn_threads = engine_config.nn_threads;
  rank_config.health = monitor.get();
  miss::rank::RankEngine rank_engine(*bundle.model, rank_config);
  server_config.rank = &rank_engine;
  if (rank_engine.candidate_field() < 0) {
    MISS_LOG(INFO) << "miss_serve: schema has no candidate field; "
                      "/rank will answer with errors";
  } else {
    MISS_LOG(INFO) << "miss_serve: candidate ranking on ("
                   << (rank_engine.split_active()
                           ? "shared user encoding"
                           : "per-candidate forward fallback")
                   << ")";
  }
  miss::net::Server server(engine, bundle.model->schema(), server_config);
  if (!server.Start()) return 1;

  if (!port_file.empty()) {
    std::ofstream out(port_file);
    out << server.port() << "\n";
    if (!out.good()) {
      std::fprintf(stderr, "failed to write port file %s\n",
                   port_file.c_str());
      return 1;
    }
  }

  g_server = &server;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleStopSignal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
  signal(SIGPIPE, SIG_IGN);  // broken clients must not kill the server

  std::printf("miss_serve listening on %s:%d (model %s, %d workers)\n",
              server_config.bind_address.c_str(), server.port(),
              bundle.model_name.c_str(), engine_config.num_workers);
  std::fflush(stdout);

  server.WaitUntilStopped();
  engine.Drain();
  rank_engine.Drain();
  g_server = nullptr;

  const miss::net::ServerStats stats = server.stats();
  MISS_LOG(INFO) << "miss_serve: drained; served " << stats.responses
                 << " responses over " << stats.connections_accepted
                 << " connections (" << stats.protocol_errors
                 << " protocol errors)";
  return 0;
}
