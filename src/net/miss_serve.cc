// miss_serve: the network scoring server.
//
//   miss_serve --bundle <dir> [--host 127.0.0.1] [--port 8080]
//              [--port-file <path>] [--workers N] [--nn-threads N]
//              [--max-batch N] [--max-delay-us N] [--drain-timeout-ms N]
//              [--slow-ms N] [--slow-log <path>] [--model-health]
//              [--rank-workers N] [--rank-chunk N] [--max-frame-bytes N]
//              [--replicas N] [--watch-ms N] [--plan | --no-plan]
//              [--pprofz] [--profile-file <path>]
//
//   miss_serve --model <name>=<dir> [--model <name2>=<dir2> ...]
//              [--default-model <name>] [... same flags ...]
//
// Every boot builds a fleet::ModelFleet behind one listener. --bundle is
// the single-model form: one entry named "default" with unlabeled metrics —
// byte-for-byte the pre-fleet server. --model (repeatable) is the fleet
// form: each entry serves /score/<name>, /rank/<name>, and named binary
// frames, with every serve/rank/health/net metric labeled {model="<name>"}
// in /metricz?format=prom; unnamed requests route to the default model
// (the first --model, or --default-model). --replicas N shards each entry
// across N engines picked by least-outstanding-requests. --watch-ms N polls
// each entry's bundle directory and hot-reloads when manifest.json changes
// (0 = off); POST /admin/reload and /admin/unload drive the same
// zero-downtime swap path on demand, journaled in /statusz.
//
// --slow-ms turns on the slow-request log (requests over the threshold
// appear in /statusz's ring and, with --slow-log, as JSONL lines) and
// forces telemetry on. --model-health attaches a serve::ModelHealthMonitor
// per entry (drift vs. the bundle's training baseline, calibration from
// /feedback labels, /modelz report) and also forces telemetry on.
//
// Compiled inference plans are on by default: each loaded bundle's forward
// is traced once per batch-size bucket into a static execution plan
// (arena-allocated intermediates, fused elementwise chains, pre-packed GEMM
// weights) that engine workers run instead of rebuilding the autograd graph
// per batch. Models whose forward cannot be traced statically fall back to
// the dynamic path automatically — identical scores either way, journaled
// as a plan_fallback event. --no-plan disables compilation entirely;
// /statusz's serve.plan block shows per-bucket plan shape and the
// plan-vs-fallback request split.
//
// Profiling is an explicit opt-in (SIGPROF never fires otherwise):
// --pprofz enables GET /pprofz?seconds=N (an on-demand sampling profile,
// answered as folded-stack text), and --profile-file <path> profiles the
// whole run — ProfilerStart at boot, folded stacks written to <path> after
// the graceful drain. Both force telemetry on.
// SIGTERM/SIGINT trigger a graceful stop: the listener closes, in-flight
// requests finish and flush, the fleet drains, then the process exits 0.
// --port 0 picks an ephemeral port; --port-file writes the chosen port for
// harnesses (the net_smoke test uses both).
//
//   miss_serve --export-demo-bundle <dir> [--export-count N]
//
// writes a tiny untrained "din" bundle — including a model-health baseline
// computed over the synthetic validation split — plus a matching
// sample.json scoring request into <dir> and exits — enough to try the
// server (and run the smoke test) without a training run. --export-count N
// writes N differently-seeded bundles into <dir>/m0 .. <dir>/m<N-1> for
// multi-model fleet walkthroughs.

#include <signal.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "data/synthetic.h"
#include "fleet/bundle_watcher.h"
#include "fleet/model_fleet.h"
#include "obs/health.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "models/model_factory.h"
#include "net/http.h"
#include "net/protocol.h"
#include "net/server.h"
#include "rank/rank_engine.h"
#include "serve/bundle.h"
#include "serve/engine.h"
#include "serve/health.h"
#include "train/baseline.h"

namespace {

miss::net::Server* g_server = nullptr;

void HandleStopSignal(int /*sig*/) {
  if (g_server != nullptr) g_server->RequestStop();  // async-signal-safe
}

int ExportOneDemoBundle(const std::string& dir, uint64_t seed) {
  miss::data::SyntheticConfig config = miss::data::SyntheticConfig::Tiny();
  config.seed = seed;
  const miss::data::DatasetBundle data = GenerateSynthetic(config);
  miss::models::ModelConfig mc;
  auto model = miss::models::CreateModel("din", data.test.schema, mc, seed);
  const miss::obs::ModelBaseline baseline =
      miss::train::ComputeBaseline(*model, data.valid);
  if (!miss::serve::SaveBundle(*model, dir, &baseline)) {
    std::fprintf(stderr, "failed to write bundle to %s\n", dir.c_str());
    return 1;
  }
  const std::string sample_path = dir + "/sample.json";
  std::ofstream out(sample_path);
  out << miss::net::ScoreRequestJson(data.test.samples[0]) << "\n";
  if (!out.good()) {
    std::fprintf(stderr, "failed to write %s\n", sample_path.c_str());
    return 1;
  }
  std::printf("demo bundle written to %s (scoring request: %s)\n",
              dir.c_str(), sample_path.c_str());
  return 0;
}

int ExportDemoBundle(const std::string& dir, int count) {
  if (count <= 1) return ExportOneDemoBundle(dir, 42);
  // Differently-seeded bundles (same schema, different weights) so a fleet
  // walkthrough can tell the models apart by their scores.
  for (int i = 0; i < count; ++i) {
    const int rc =
        ExportOneDemoBundle(dir + "/m" + std::to_string(i),
                            static_cast<uint64_t>(42 + i));
    if (rc != 0) return rc;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string bundle_dir;
  std::string export_dir;
  int export_count = 1;
  std::string port_file;
  std::string profile_file;
  std::string default_model;
  // --model name=path pairs, in flag order (the first becomes the default).
  std::vector<std::pair<std::string, std::string>> named_models;
  bool model_health = false;
  // Compiled inference plans: on by default; --no-plan forces every batch
  // down the dynamic per-request graph path.
  bool compile_plans = true;
  int replicas = 1;
  int64_t watch_ms = 0;
  miss::net::ServerConfig server_config;
  server_config.port = 8080;
  miss::serve::EngineConfig engine_config;
  miss::rank::RankEngineConfig rank_config;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--bundle") {
      bundle_dir = next("--bundle");
    } else if (arg == "--model") {
      const std::string spec = next("--model");
      const size_t eq = spec.find('=');
      if (eq == 0 || eq == std::string::npos || eq + 1 >= spec.size()) {
        std::fprintf(stderr, "--model expects <name>=<bundle-dir>, got %s\n",
                     spec.c_str());
        return 2;
      }
      named_models.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else if (arg == "--default-model") {
      default_model = next("--default-model");
    } else if (arg == "--replicas") {
      replicas = std::atoi(next("--replicas"));
    } else if (arg == "--watch-ms") {
      watch_ms = std::atoll(next("--watch-ms"));
    } else if (arg == "--export-demo-bundle") {
      export_dir = next("--export-demo-bundle");
    } else if (arg == "--export-count") {
      export_count = std::atoi(next("--export-count"));
    } else if (arg == "--host") {
      server_config.bind_address = next("--host");
    } else if (arg == "--port") {
      server_config.port = std::atoi(next("--port"));
    } else if (arg == "--port-file") {
      port_file = next("--port-file");
    } else if (arg == "--workers") {
      engine_config.num_workers = std::atoi(next("--workers"));
    } else if (arg == "--nn-threads") {
      // Intra-op threads per engine worker. Default 1: inter-op
      // parallelism across workers already uses the cores, and
      // oversubscribing (workers * nn_threads > cores) hurts tail latency.
      engine_config.nn_threads = std::atoi(next("--nn-threads"));
    } else if (arg == "--max-batch") {
      engine_config.max_batch_size = std::atoll(next("--max-batch"));
    } else if (arg == "--max-delay-us") {
      engine_config.max_queue_delay_us = std::atoll(next("--max-delay-us"));
    } else if (arg == "--drain-timeout-ms") {
      server_config.drain_timeout_ms = std::atoll(next("--drain-timeout-ms"));
    } else if (arg == "--slow-ms") {
      server_config.slow_request_ms = std::atoll(next("--slow-ms"));
    } else if (arg == "--slow-log") {
      server_config.slow_log_path = next("--slow-log");
    } else if (arg == "--model-health") {
      model_health = true;
    } else if (arg == "--plan") {
      compile_plans = true;
    } else if (arg == "--no-plan") {
      compile_plans = false;
    } else if (arg == "--rank-workers") {
      rank_config.num_workers = std::atoi(next("--rank-workers"));
    } else if (arg == "--rank-chunk") {
      rank_config.max_chunk = std::atoll(next("--rank-chunk"));
    } else if (arg == "--max-frame-bytes") {
      miss::net::SetMaxFrameBytes(static_cast<uint32_t>(
          std::atoll(next("--max-frame-bytes"))));
    } else if (arg == "--pprofz") {
      server_config.enable_pprofz = true;
    } else if (arg == "--profile-file") {
      profile_file = next("--profile-file");
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: miss_serve --bundle <dir> [--host H] [--port P]\n"
          "                  [--port-file F] [--workers N] [--nn-threads N]\n"
          "                  [--max-batch N] [--max-delay-us N]\n"
          "                  [--drain-timeout-ms N] [--slow-ms N]\n"
          "                  [--slow-log F] [--model-health]\n"
          "                  [--rank-workers N] [--rank-chunk N]\n"
          "                  [--max-frame-bytes N] [--replicas N]\n"
          "                  [--watch-ms N] [--plan | --no-plan]\n"
          "                  [--pprofz] [--profile-file F]\n"
          "  --plan          compile static inference plans per bundle\n"
          "                  (default on); --no-plan serves every batch\n"
          "                  through the dynamic graph path\n"
          "  --pprofz        serve GET /pprofz?seconds=N (sampling CPU\n"
          "                  profiler, folded-stack text response)\n"
          "  --profile-file  profile the whole run; folded stacks are\n"
          "                  written to F after the graceful drain\n"
          "       miss_serve --model <name>=<dir> [--model <n2>=<d2> ...]\n"
          "                  [--default-model <name>] [... same flags ...]\n"
          "       miss_serve --export-demo-bundle <dir> [--export-count N]\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag %s (try --help)\n", arg.c_str());
      return 2;
    }
  }

  if (!export_dir.empty()) return ExportDemoBundle(export_dir, export_count);
  if (bundle_dir.empty() && named_models.empty()) {
    std::fprintf(stderr,
                 "--bundle or --model is required (or --export-demo-bundle)\n");
    return 2;
  }
  if (!bundle_dir.empty() && !named_models.empty()) {
    std::fprintf(stderr, "--bundle and --model are mutually exclusive\n");
    return 2;
  }
  if (replicas < 1) {
    std::fprintf(stderr, "--replicas must be >= 1\n");
    return 2;
  }

  // The slow-request log, the model-health monitor, and the profiler all
  // need telemetry; make --slow-ms / --model-health / --pprofz /
  // --profile-file imply it. Read Enabled() first so the MISS_* env init
  // runs (and opens MISS_TRACE_FILE) before the override.
  if ((server_config.slow_request_ms > 0 || model_health ||
       server_config.enable_pprofz || !profile_file.empty()) &&
      !miss::obs::Enabled()) {
    miss::obs::SetEnabled(true);
  }

  // The single-bundle form keeps the plain unlabeled metric names; the
  // --model form labels every entry's metrics with {model="<name>"}.
  const bool fleet_mode = !named_models.empty();
  if (!fleet_mode) named_models.emplace_back("default", bundle_dir);

  miss::fleet::ServingModelConfig entry_config;
  entry_config.replicas = replicas;
  entry_config.engine = engine_config;
  entry_config.rank = rank_config;
  entry_config.rank.nn_threads = engine_config.nn_threads;
  entry_config.model_health = model_health;
  entry_config.label_metrics = fleet_mode;
  entry_config.load.compile_plans = compile_plans;

  miss::fleet::ModelFleet fleet;
  for (const auto& [name, path] : named_models) {
    std::string error;
    if (!fleet.AddModel(name, path, entry_config, &error)) {
      std::fprintf(stderr, "failed to load model %s: %s\n", name.c_str(),
                   error.c_str());
      return 1;
    }
    const std::shared_ptr<miss::fleet::ServingModel> entry =
        fleet.Acquire(name);
    MISS_LOG(INFO) << "miss_serve: loaded \"" << entry->bundle()->model_name
                   << "\" bundle (schema " << entry->schema().name
                   << ") from " << path << " as model \"" << name << "\" ("
                   << replicas << " replica" << (replicas == 1 ? "" : "s")
                   << ", rank "
                   << (entry->rank_enabled() ? "on" : "off — no candidate "
                                                      "field")
                   << (entry->health() != nullptr
                           ? entry->health()->has_baseline()
                                 ? ", health on with baseline"
                                 : ", health on without baseline"
                           : "")
                   << ", plans "
                   << (entry->bundle()->plans != nullptr
                           ? entry->bundle()->plans->compatible()
                                 ? "compiled"
                                 : "fallback"
                           : "off")
                   << ")";
  }
  if (!default_model.empty() && !fleet.SetDefaultModel(default_model)) {
    std::fprintf(stderr, "--default-model %s is not a loaded model\n",
                 default_model.c_str());
    return 2;
  }
  if (!fleet_mode) {
    // /statusz identity of the single-bundle form: the model name from the
    // manifest and the bundle directory, as before the fleet existed.
    server_config.model_name =
        fleet.Acquire("")->bundle()->model_name;
    server_config.bundle_path = bundle_dir;
  }

  miss::net::Server server(fleet, server_config);
  if (!server.Start()) return 1;

  miss::fleet::BundleWatcherConfig watcher_config;
  watcher_config.poll_interval_ms = watch_ms;
  miss::fleet::BundleWatcher watcher(fleet, watcher_config);
  if (watch_ms > 0) {
    watcher.Start();
    MISS_LOG(INFO) << "miss_serve: watching bundle manifests every "
                   << watch_ms << " ms for hot reload";
  }

  if (!port_file.empty()) {
    std::ofstream out(port_file);
    out << server.port() << "\n";
    if (!out.good()) {
      std::fprintf(stderr, "failed to write port file %s\n",
                   port_file.c_str());
      return 1;
    }
  }

  if (!profile_file.empty()) {
    if (server_config.enable_pprofz) {
      // One profile at a time, process-wide: a whole-run profile would make
      // every /pprofz answer 409 anyway, so reject the combination up front.
      std::fprintf(stderr,
                   "--profile-file and --pprofz are mutually exclusive\n");
      return 2;
    }
    if (!miss::obs::ProfilerStart()) {
      std::fprintf(stderr, "failed to start the whole-run profiler\n");
      return 1;
    }
    MISS_LOG(INFO) << "miss_serve: profiling the whole run to "
                   << profile_file;
  }

  g_server = &server;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleStopSignal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
  signal(SIGPIPE, SIG_IGN);  // broken clients must not kill the server

  std::printf("miss_serve listening on %s:%d (%zu model%s, default %s, "
              "%d workers)\n",
              server_config.bind_address.c_str(), server.port(),
              fleet.num_models(), fleet.num_models() == 1 ? "" : "s",
              fleet.default_model().c_str(), engine_config.num_workers);
  std::fflush(stdout);

  server.WaitUntilStopped();
  watcher.Stop();
  fleet.DrainAll();
  g_server = nullptr;

  if (!profile_file.empty()) {
    // Stop after the drain so the profile covers the full serving lifetime,
    // shutdown included.
    const int64_t samples = miss::obs::ProfilerSampleCount();
    const std::string folded = miss::obs::ProfilerStop();
    std::ofstream out(profile_file);
    out << folded;
    if (!out.good()) {
      std::fprintf(stderr, "failed to write profile to %s\n",
                   profile_file.c_str());
      return 1;
    }
    MISS_LOG(INFO) << "miss_serve: wrote " << samples
                   << "-sample folded profile to " << profile_file;
  }

  const miss::net::ServerStats stats = server.stats();
  MISS_LOG(INFO) << "miss_serve: drained; served " << stats.responses
                 << " responses over " << stats.connections_accepted
                 << " connections (" << stats.protocol_errors
                 << " protocol errors)";
  return 0;
}
