// Statistical comparison of repeated experiment runs. The paper marks
// Table IV improvements with a star when p < 0.05 over 5 repetitions; this
// provides the corresponding two-sample Welch t-test.

#ifndef MISS_TRAIN_STATS_H_
#define MISS_TRAIN_STATS_H_

#include <vector>

namespace miss::train {

struct TTestResult {
  double t_statistic = 0.0;
  double degrees_of_freedom = 0.0;
  // Two-sided p-value.
  double p_value = 1.0;
  double mean_difference = 0.0;  // mean(a) - mean(b)
};

// Welch's unequal-variance t-test between two samples (each needs >= 2
// observations). Degenerate inputs (zero variance in both samples) yield
// p = 0 when the means differ and p = 1 when they are equal.
TTestResult WelchTTest(const std::vector<double>& a,
                       const std::vector<double>& b);

// Sample mean and (n-1)-normalized standard deviation.
double Mean(const std::vector<double>& values);
double StdDev(const std::vector<double>& values);

// Regularized incomplete beta function I_x(a, b), exposed for testing; used
// by the t-distribution CDF.
double IncompleteBeta(double a, double b, double x);

}  // namespace miss::train

#endif  // MISS_TRAIN_STATS_H_
