#include "train/stats.h"

#include <cmath>

#include "common/check.h"

namespace miss::train {

double Mean(const std::vector<double>& values) {
  MISS_CHECK(!values.empty());
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  MISS_CHECK_GE(values.size(), 2u);
  const double mean = Mean(values);
  double sq = 0.0;
  for (double v : values) sq += (v - mean) * (v - mean);
  return std::sqrt(sq / static_cast<double>(values.size() - 1));
}

namespace {

// Continued-fraction evaluation of the incomplete beta function
// (Numerical Recipes' betacf).
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIterations = 200;
  constexpr double kEpsilon = 3e-12;
  constexpr double kTiny = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::abs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < kEpsilon) break;
  }
  return h;
}

}  // namespace

double IncompleteBeta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_beta = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b);
  const double front =
      std::exp(ln_beta + a * std::log(x) + b * std::log(1.0 - x));
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

TTestResult WelchTTest(const std::vector<double>& a,
                       const std::vector<double>& b) {
  MISS_CHECK_GE(a.size(), 2u);
  MISS_CHECK_GE(b.size(), 2u);
  TTestResult result;
  const double mean_a = Mean(a);
  const double mean_b = Mean(b);
  const double var_a = StdDev(a) * StdDev(a);
  const double var_b = StdDev(b) * StdDev(b);
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());

  result.mean_difference = mean_a - mean_b;
  const double se2 = var_a / na + var_b / nb;
  if (se2 <= 0.0) {
    result.p_value = result.mean_difference == 0.0 ? 1.0 : 0.0;
    result.t_statistic =
        result.mean_difference == 0.0
            ? 0.0
            : std::copysign(std::numeric_limits<double>::infinity(),
                            result.mean_difference);
    result.degrees_of_freedom = na + nb - 2.0;
    return result;
  }
  result.t_statistic = result.mean_difference / std::sqrt(se2);
  // Welch-Satterthwaite degrees of freedom.
  result.degrees_of_freedom =
      se2 * se2 /
      (var_a * var_a / (na * na * (na - 1.0)) +
       var_b * var_b / (nb * nb * (nb - 1.0)));

  // Two-sided p-value via the t-distribution CDF expressed through the
  // incomplete beta function.
  const double dof = result.degrees_of_freedom;
  const double t2 = result.t_statistic * result.t_statistic;
  result.p_value = IncompleteBeta(dof / 2.0, 0.5, dof / (dof + t2));
  return result;
}

}  // namespace miss::train
