#include "train/baseline.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <utility>
#include <vector>

#include "nn/ops.h"
#include "obs/trace.h"

namespace miss::train {

namespace {

obs::FeatureBaseline SummarizeFeature(
    const std::string& name, bool sequential,
    const std::unordered_map<int64_t, int64_t>& counts) {
  obs::FeatureBaseline f;
  f.name = name;
  f.sequential = sequential;
  f.distinct = static_cast<int64_t>(counts.size());

  std::vector<std::pair<int64_t, int64_t>> by_count(counts.begin(),
                                                    counts.end());
  // Most frequent first; ties broken by ascending id so the snapshot is
  // deterministic across unordered_map iteration orders.
  std::sort(by_count.begin(), by_count.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  const size_t k =
      std::min(by_count.size(), static_cast<size_t>(obs::kBaselineTopK));
  for (size_t i = 0; i < by_count.size(); ++i) {
    f.total += by_count[i].second;
    if (i < k) {
      f.top_ids.push_back(by_count[i].first);
      f.top_counts.push_back(by_count[i].second);
    } else {
      f.other += by_count[i].second;
    }
  }
  if (f.distinct <= obs::kBaselineMaxExactIds) {
    f.seen_exact = true;
    f.seen_ids.reserve(counts.size());
    for (const auto& [id, _] : counts) f.seen_ids.push_back(id);
    std::sort(f.seen_ids.begin(), f.seen_ids.end());
  }
  return f;
}

}  // namespace

obs::ModelBaseline ComputeBaseline(models::CtrModel& model,
                                   const data::Dataset& dataset,
                                   int64_t batch_size) {
  MISS_TRACE_SCOPE("trainer/compute_baseline");
  const data::DatasetSchema& schema = dataset.schema;
  obs::ModelBaseline baseline;
  baseline.score_buckets = obs::kScoreDistributionBuckets;
  baseline.score_counts.assign(
      static_cast<size_t>(obs::kScoreDistributionBuckets), 0);
  baseline.sample_count = dataset.size();

  // Score distribution + positive rate via the Evaluate-style batched loop.
  int64_t positives = 0;
  data::BatchPlan plan(dataset.size(), batch_size);
  for (int64_t b = 0; b < plan.num_batches(); ++b) {
    data::Batch batch = data::MakeBatch(dataset, plan.BatchIndices(b));
    nn::InferenceScope inference;
    nn::Tensor logits = model.Forward(batch, /*training=*/false);
    for (int64_t i = 0; i < batch.batch_size; ++i) {
      // The exact float expression serving uses (serve::Engine), then the
      // exact bucketing obs::FixedDistribution uses: replaying baseline
      // traffic through the engine reproduces these counts bit-for-bit, so
      // in-distribution PSI is genuinely zero.
      const float p = 1.0f / (1.0f + std::exp(-logits.at(i)));
      const int nb = obs::kScoreDistributionBuckets;
      const int bucket = std::min(
          static_cast<int>(static_cast<double>(p) * nb), nb - 1);
      ++baseline.score_counts[static_cast<size_t>(bucket)];
      if (batch.labels[i] >= 0.5f) ++positives;
    }
  }
  baseline.positive_rate =
      dataset.size() > 0
          ? static_cast<double>(positives) /
                static_cast<double>(dataset.size())
          : 0.0;

  // Per-field id frequencies straight off the raw samples (no padding).
  const size_t num_cat = schema.categorical.size();
  const size_t num_seq = schema.sequential.size();
  std::vector<std::unordered_map<int64_t, int64_t>> cat_counts(num_cat);
  std::vector<std::unordered_map<int64_t, int64_t>> seq_counts(num_seq);
  for (const data::Sample& sample : dataset.samples) {
    for (size_t i = 0; i < num_cat && i < sample.cat.size(); ++i) {
      ++cat_counts[i][sample.cat[i]];
    }
    for (size_t j = 0; j < num_seq && j < sample.seq.size(); ++j) {
      for (int64_t id : sample.seq[j]) {
        if (id >= 0) ++seq_counts[j][id];
      }
    }
  }
  for (size_t i = 0; i < num_cat; ++i) {
    baseline.features.push_back(SummarizeFeature(
        schema.categorical[i].name, /*sequential=*/false, cat_counts[i]));
  }
  for (size_t j = 0; j < num_seq; ++j) {
    baseline.features.push_back(SummarizeFeature(
        schema.sequential[j].name, /*sequential=*/true, seq_counts[j]));
  }
  return baseline;
}

}  // namespace miss::train
