// High-level experiment runner: (dataset bundle, model, SSL method, training
// config, seeds) -> averaged AUC/Logloss. Every bench builds its table rows
// through this.

#ifndef MISS_TRAIN_EXPERIMENT_H_
#define MISS_TRAIN_EXPERIMENT_H_

#include <string>
#include <vector>

#include "core/miss_module.h"
#include "data/synthetic.h"
#include "models/ctr_model.h"
#include "train/trainer.h"

namespace miss::train {

struct ExperimentSpec {
  std::string model = "din";  // model_factory name
  std::string ssl;            // "", "miss", "rule", "irssl", "s3rec", "cl4srec"
  core::MissConfig miss;      // used when ssl == "miss"
  models::ModelConfig model_config;
  TrainConfig train_config;
  int64_t num_seeds = 1;  // paper repeats 5x; benches default lower for speed
};

struct ExperimentResult {
  double auc = 0.0;
  double logloss = 0.0;
  double auc_stddev = 0.0;
  // Per-step similarity trace of the last seed (Figure 5).
  std::vector<double> similarity_trace;
  // Per-epoch traces of the last seed (Figure 6-style curves and run
  // reports read these instead of re-evaluating).
  std::vector<double> loss_trace;
  std::vector<double> valid_auc_trace;
};

// Trains on bundle.train (optionally replaced by `train_override`), selects
// on bundle.valid, reports bundle.test metrics averaged over seeds.
ExperimentResult RunExperiment(const data::DatasetBundle& bundle,
                               const ExperimentSpec& spec,
                               const data::Dataset* train_override = nullptr);

// Environment-controlled knobs for benches: MISS_SCALE (dataset size
// multiplier), MISS_EPOCHS (training epochs), MISS_SEEDS (repetitions).
double BenchScale();
int64_t BenchEpochs(int64_t default_epochs);
int64_t BenchSeeds(int64_t default_seeds);

}  // namespace miss::train

#endif  // MISS_TRAIN_EXPERIMENT_H_
