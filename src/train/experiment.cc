#include "train/experiment.h"

#include <cmath>

#include "common/env.h"
#include "core/ssl_factory.h"
#include "models/model_factory.h"
#include "obs/trace.h"

namespace miss::train {

ExperimentResult RunExperiment(const data::DatasetBundle& bundle,
                               const ExperimentSpec& spec,
                               const data::Dataset* train_override) {
  MISS_TRACE_SCOPE("experiment/run");
  const data::Dataset& train =
      train_override != nullptr ? *train_override : bundle.train;

  std::vector<double> aucs;
  std::vector<double> loglosses;
  ExperimentResult result;

  for (int64_t s = 0; s < spec.num_seeds; ++s) {
    const uint64_t seed = spec.train_config.seed + 1000 * s;
    std::unique_ptr<models::CtrModel> model = models::CreateModel(
        spec.model, bundle.train.schema, spec.model_config, seed);
    std::unique_ptr<core::SslMethod> ssl = core::CreateSslMethod(
        spec.ssl, bundle.train.schema, spec.model_config.embedding_dim,
        spec.miss.tau, seed + 17, spec.miss);

    TrainConfig tc = spec.train_config;
    tc.seed = seed;
    Trainer trainer(tc);
    FitResult fit =
        trainer.Fit(*model, ssl.get(), train, bundle.valid, bundle.test);
    aucs.push_back(fit.test.auc);
    loglosses.push_back(fit.test.logloss);
    result.similarity_trace = std::move(fit.similarity_trace);
    result.loss_trace = std::move(fit.loss_trace);
    result.valid_auc_trace = std::move(fit.valid_auc_trace);
  }

  double auc_sum = 0.0;
  double ll_sum = 0.0;
  for (size_t i = 0; i < aucs.size(); ++i) {
    auc_sum += aucs[i];
    ll_sum += loglosses[i];
  }
  result.auc = auc_sum / aucs.size();
  result.logloss = ll_sum / loglosses.size();

  double var = 0.0;
  for (double a : aucs) var += (a - result.auc) * (a - result.auc);
  result.auc_stddev =
      aucs.size() > 1 ? std::sqrt(var / (aucs.size() - 1)) : 0.0;
  return result;
}

double BenchScale() { return common::GetEnvDouble("MISS_SCALE", 1.0); }

int64_t BenchEpochs(int64_t default_epochs) {
  return common::GetEnvInt("MISS_EPOCHS", default_epochs);
}

int64_t BenchSeeds(int64_t default_seeds) {
  return common::GetEnvInt("MISS_SEEDS", default_seeds);
}

}  // namespace miss::train
