// Evaluation metrics: AUC and Logloss (paper Section VI-A4).

#ifndef MISS_TRAIN_METRICS_H_
#define MISS_TRAIN_METRICS_H_

#include <vector>

namespace miss::train {

// Area under the ROC curve via the rank-sum formulation with average ranks
// for ties. Requires at least one positive and one negative; returns 0.5
// otherwise.
double Auc(const std::vector<double>& scores, const std::vector<float>& labels);

// Mean binary cross-entropy of predicted probabilities (clamped away from
// {0, 1} for numerical safety).
double LogLoss(const std::vector<double>& probs,
               const std::vector<float>& labels);

}  // namespace miss::train

#endif  // MISS_TRAIN_METRICS_H_
