#include "train/trainer.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"
#include "nn/ops.h"
#include "nn/optimizer.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "train/baseline.h"
#include "train/metrics.h"

namespace miss::train {

namespace {

// Parameter snapshot for best-on-validation model selection.
std::vector<std::vector<float>> Snapshot(const std::vector<nn::Tensor>& params) {
  std::vector<std::vector<float>> out;
  out.reserve(params.size());
  for (const nn::Tensor& p : params) out.push_back(p.value());
  return out;
}

void Restore(const std::vector<nn::Tensor>& params,
             const std::vector<std::vector<float>>& snapshot) {
  MISS_CHECK_EQ(params.size(), snapshot.size());
  for (size_t i = 0; i < params.size(); ++i) {
    params[i].node()->value = snapshot[i];
  }
}

// Accumulates the enclosing scope's wall time into *acc_ns; free when
// telemetry is disabled (no clock reads).
class PhaseTimer {
 public:
  PhaseTimer(bool on, int64_t* acc_ns)
      : acc_(on ? acc_ns : nullptr), start_(acc_ != nullptr ? obs::NowNs() : 0) {}
  ~PhaseTimer() {
    if (acc_ != nullptr) *acc_ += obs::NowNs() - start_;
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  int64_t* acc_;
  int64_t start_;
};

// Wall time spent in each training phase, in nanoseconds.
struct PhaseNs {
  int64_t batch_assembly = 0;
  int64_t forward = 0;
  int64_t backward = 0;
  int64_t optimizer = 0;
  int64_t eval = 0;

  int64_t TrainTotal() const {
    return batch_assembly + forward + backward + optimizer;
  }
};

}  // namespace

EvalResult Evaluate(models::CtrModel& model, const data::Dataset& dataset,
                    int64_t batch_size) {
  MISS_TRACE_SCOPE("trainer/evaluate");
  std::vector<double> probs;
  std::vector<float> labels;
  probs.reserve(dataset.size());
  labels.reserve(dataset.size());

  data::BatchPlan plan(dataset.size(), batch_size);
  for (int64_t b = 0; b < plan.num_batches(); ++b) {
    data::Batch batch = data::MakeBatch(dataset, plan.BatchIndices(b));
    // Forward-only: no tape nodes, no gradient buffers — intermediates are
    // freed as soon as the model's expressions release them.
    nn::InferenceScope inference;
    nn::Tensor logits = model.Forward(batch, /*training=*/false);
    for (int64_t i = 0; i < batch.batch_size; ++i) {
      const double x = logits.at(i);
      probs.push_back(1.0 / (1.0 + std::exp(-x)));
      labels.push_back(batch.labels[i]);
    }
  }
  return {Auc(probs, labels), LogLoss(probs, labels)};
}

FitResult Trainer::Fit(models::CtrModel& model, core::SslMethod* ssl,
                       const data::Dataset& train, const data::Dataset& valid,
                       const data::Dataset& test) {
  MISS_TRACE_SCOPE("trainer/fit");
  const bool telemetry = obs::Enabled();
  const int64_t fit_start_ns = telemetry ? obs::NowNs() : 0;
  if (telemetry) nn::ResetTensorAllocStats();  // per-run peak accounting
  PhaseNs phase;
  int64_t train_steps = 0;
  int64_t train_samples = 0;

  FitResult result;
  common::Rng rng(config_.seed);

  std::vector<nn::Tensor> params = model.Parameters();
  if (ssl != nullptr) {
    std::vector<nn::Tensor> ssl_params = ssl->TrainableParameters();
    params.insert(params.end(), ssl_params.begin(), ssl_params.end());
  }
  nn::Adam optimizer(config_.learning_rate, config_.weight_decay);

  std::vector<std::vector<float>> best_params;
  double best_valid_auc = -1.0;

  const bool pretraining_enabled =
      ssl != nullptr && config_.strategy == Strategy::kPretrain;

  // Pre-training stage: SSL losses only (MISS-Pre in Table IX).
  if (pretraining_enabled) {
    MISS_TRACE_SCOPE("trainer/pretrain");
    data::BatchPlan plan(train.size(), config_.batch_size);
    for (int64_t epoch = 0; epoch < config_.pretrain_epochs; ++epoch) {
      MISS_TRACE_SCOPE("trainer/pretrain_epoch");
      plan.Shuffle(rng);
      for (int64_t b = 0; b < plan.num_batches(); ++b) {
        data::Batch batch = [&] {
          PhaseTimer t(telemetry, &phase.batch_assembly);
          return data::MakeBatch(train, plan.BatchIndices(b));
        }();
        nn::Tensor loss;
        {
          PhaseTimer t(telemetry, &phase.forward);
          core::SslLossResult ssl_losses = ssl->ComputeLoss(model, batch);
          if (ssl_losses.interest_loss.defined()) {
            loss = nn::MulScalar(ssl_losses.interest_loss, config_.alpha1);
          }
          if (ssl_losses.feature_loss.defined()) {
            nn::Tensor f =
                nn::MulScalar(ssl_losses.feature_loss, config_.alpha2);
            loss = loss.defined() ? nn::Add(loss, f) : f;
          }
        }
        if (!loss.defined()) continue;
        {
          PhaseTimer t(telemetry, &phase.backward);
          nn::Optimizer::ZeroGrad(params);
          nn::Backward(loss);
          nn::ClipGradNorm(params, config_.grad_clip_norm);
        }
        {
          PhaseTimer t(telemetry, &phase.optimizer);
          optimizer.Step(params);
        }
        ++train_steps;
        train_samples += batch.batch_size;
      }
    }
  }

  // Main stage: CTR loss, plus SSL losses when training jointly.
  const bool joint_ssl =
      ssl != nullptr && config_.strategy == Strategy::kJoint;
  data::BatchPlan plan(train.size(), config_.batch_size);
  for (int64_t epoch = 0; epoch < config_.epochs; ++epoch) {
    MISS_TRACE_SCOPE("trainer/epoch");
    plan.Shuffle(rng);
    double epoch_loss = 0.0;
    for (int64_t b = 0; b < plan.num_batches(); ++b) {
      data::Batch batch = [&] {
        PhaseTimer t(telemetry, &phase.batch_assembly);
        return data::MakeBatch(train, plan.BatchIndices(b));
      }();
      nn::Tensor loss;
      {
        PhaseTimer t(telemetry, &phase.forward);
        nn::Tensor logits = model.Forward(batch, /*training=*/true);
        loss = nn::BceWithLogitsLoss(logits, batch.labels);

        if (joint_ssl) {
          core::SslLossResult ssl_losses = ssl->ComputeLoss(model, batch);
          if (ssl_losses.interest_loss.defined() && config_.alpha1 > 0.0f) {
            loss = nn::Add(
                loss, nn::MulScalar(ssl_losses.interest_loss, config_.alpha1));
          }
          if (ssl_losses.feature_loss.defined() && config_.alpha2 > 0.0f) {
            loss = nn::Add(
                loss, nn::MulScalar(ssl_losses.feature_loss, config_.alpha2));
          }
          result.similarity_trace.push_back(ssl_losses.mean_pair_similarity);
        }
      }

      epoch_loss += loss.item();
      {
        PhaseTimer t(telemetry, &phase.backward);
        nn::Optimizer::ZeroGrad(params);
        nn::Backward(loss);
        nn::ClipGradNorm(params, config_.grad_clip_norm);
      }
      {
        PhaseTimer t(telemetry, &phase.optimizer);
        optimizer.Step(params);
      }
      ++train_steps;
      train_samples += batch.batch_size;
    }
    result.loss_trace.push_back(epoch_loss / plan.num_batches());

    if (config_.select_best_on_valid) {
      const EvalResult valid_result = [&] {
        PhaseTimer t(telemetry, &phase.eval);
        return Evaluate(model, valid);
      }();
      result.valid_auc_trace.push_back(valid_result.auc);
      if (valid_result.auc > best_valid_auc) {
        best_valid_auc = valid_result.auc;
        best_params = Snapshot(params);
      }
      if (config_.verbose) {
        MISS_LOG(INFO) << model.name() << (ssl ? "+" + ssl->name() : "")
                       << " epoch " << epoch + 1 << "/" << config_.epochs
                       << " loss=" << result.loss_trace.back()
                       << " valid_auc=" << valid_result.auc;
      }
    }
  }

  if (config_.select_best_on_valid && !best_params.empty()) {
    Restore(params, best_params);
    result.best_valid_auc = best_valid_auc;
  } else {
    PhaseTimer t(telemetry, &phase.eval);
    result.best_valid_auc = Evaluate(model, valid).auc;
  }
  {
    PhaseTimer t(telemetry, &phase.eval);
    result.test = Evaluate(model, test);
  }
  if (config_.compute_baseline) {
    // On the final (post-restore) parameters, so the snapshot matches what
    // a bundle exported from this model would serve.
    PhaseTimer t(telemetry, &phase.eval);
    result.baseline = std::make_shared<const obs::ModelBaseline>(
        ComputeBaseline(model, valid));
  }

  if (telemetry) {
    const double wall_ms =
        static_cast<double>(obs::NowNs() - fit_start_ns) / 1e6;
    const double train_s = static_cast<double>(phase.TrainTotal()) / 1e9;
    const double samples_per_sec =
        train_s > 0.0 ? static_cast<double>(train_samples) / train_s : 0.0;
    const nn::TensorAllocStats allocs = nn::GetTensorAllocStats();

    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    reg.GetCounter("trainer/steps").Add(train_steps);
    reg.GetCounter("trainer/samples").Add(train_samples);
    reg.GetGauge("trainer/phase_ms/batch_assembly")
        .Set(static_cast<double>(phase.batch_assembly) / 1e6);
    reg.GetGauge("trainer/phase_ms/forward")
        .Set(static_cast<double>(phase.forward) / 1e6);
    reg.GetGauge("trainer/phase_ms/backward")
        .Set(static_cast<double>(phase.backward) / 1e6);
    reg.GetGauge("trainer/phase_ms/optimizer")
        .Set(static_cast<double>(phase.optimizer) / 1e6);
    reg.GetGauge("trainer/phase_ms/eval")
        .Set(static_cast<double>(phase.eval) / 1e6);
    reg.GetGauge("trainer/samples_per_sec").Set(samples_per_sec);

    const std::string report_path = obs::RunReportPath();
    if (!report_path.empty()) {
      obs::RunReporter reporter("trainer_fit");
      reporter.AddConfig("model", model.name());
      reporter.AddConfig("ssl", ssl != nullptr ? ssl->name() : "");
      reporter.AddConfig(
          "strategy",
          config_.strategy == Strategy::kJoint ? "joint" : "pretrain");
      reporter.AddConfig("epochs", config_.epochs);
      reporter.AddConfig("batch_size", config_.batch_size);
      reporter.AddConfig("learning_rate",
                         static_cast<double>(config_.learning_rate));
      reporter.AddConfig("weight_decay",
                         static_cast<double>(config_.weight_decay));
      reporter.AddConfig("alpha1", static_cast<double>(config_.alpha1));
      reporter.AddConfig("alpha2", static_cast<double>(config_.alpha2));
      reporter.AddConfig("seed", static_cast<int64_t>(config_.seed));
      reporter.AddConfig("train_size", train.size());

      for (size_t e = 0; e < result.loss_trace.size(); ++e) {
        std::map<std::string, double> row;
        row["loss"] = result.loss_trace[e];
        if (e < result.valid_auc_trace.size()) {
          row["valid_auc"] = result.valid_auc_trace[e];
        }
        reporter.LogEpoch(static_cast<int64_t>(e) + 1, row);
      }

      reporter.SetSummary("wall_ms", wall_ms);
      reporter.SetSummary("phase_ms/batch_assembly",
                          static_cast<double>(phase.batch_assembly) / 1e6);
      reporter.SetSummary("phase_ms/forward",
                          static_cast<double>(phase.forward) / 1e6);
      reporter.SetSummary("phase_ms/backward",
                          static_cast<double>(phase.backward) / 1e6);
      reporter.SetSummary("phase_ms/optimizer",
                          static_cast<double>(phase.optimizer) / 1e6);
      reporter.SetSummary("phase_ms/eval",
                          static_cast<double>(phase.eval) / 1e6);
      reporter.SetSummary("samples_per_sec", samples_per_sec);
      reporter.SetSummary("steps", static_cast<double>(train_steps));
      reporter.SetSummary("best_valid_auc", result.best_valid_auc);
      reporter.SetSummary("test_auc", result.test.auc);
      reporter.SetSummary("test_logloss", result.test.logloss);
      reporter.SetSummary("peak_live_tensor_nodes",
                          static_cast<double>(allocs.peak_live_nodes));
      reporter.SetSummary("tensor_nodes_total",
                          static_cast<double>(allocs.total_nodes));
      if (!reporter.AppendJsonl(report_path)) {
        MISS_LOG(WARNING) << "failed to append run report to " << report_path;
      }
    }
  }
  return result;
}

}  // namespace miss::train
