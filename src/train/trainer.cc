#include "train/trainer.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"
#include "nn/ops.h"
#include "nn/optimizer.h"
#include "train/metrics.h"

namespace miss::train {

namespace {

// Parameter snapshot for best-on-validation model selection.
std::vector<std::vector<float>> Snapshot(const std::vector<nn::Tensor>& params) {
  std::vector<std::vector<float>> out;
  out.reserve(params.size());
  for (const nn::Tensor& p : params) out.push_back(p.value());
  return out;
}

void Restore(const std::vector<nn::Tensor>& params,
             const std::vector<std::vector<float>>& snapshot) {
  MISS_CHECK_EQ(params.size(), snapshot.size());
  for (size_t i = 0; i < params.size(); ++i) {
    params[i].node()->value = snapshot[i];
  }
}

}  // namespace

EvalResult Evaluate(models::CtrModel& model, const data::Dataset& dataset,
                    int64_t batch_size) {
  std::vector<double> probs;
  std::vector<float> labels;
  probs.reserve(dataset.size());
  labels.reserve(dataset.size());

  data::BatchPlan plan(dataset.size(), batch_size);
  for (int64_t b = 0; b < plan.num_batches(); ++b) {
    data::Batch batch = data::MakeBatch(dataset, plan.BatchIndices(b));
    nn::Tensor logits = model.Forward(batch, /*training=*/false);
    for (int64_t i = 0; i < batch.batch_size; ++i) {
      const double x = logits.at(i);
      probs.push_back(1.0 / (1.0 + std::exp(-x)));
      labels.push_back(batch.labels[i]);
    }
  }
  return {Auc(probs, labels), LogLoss(probs, labels)};
}

FitResult Trainer::Fit(models::CtrModel& model, core::SslMethod* ssl,
                       const data::Dataset& train, const data::Dataset& valid,
                       const data::Dataset& test) {
  FitResult result;
  common::Rng rng(config_.seed);

  std::vector<nn::Tensor> params = model.Parameters();
  if (ssl != nullptr) {
    std::vector<nn::Tensor> ssl_params = ssl->TrainableParameters();
    params.insert(params.end(), ssl_params.begin(), ssl_params.end());
  }
  nn::Adam optimizer(config_.learning_rate, config_.weight_decay);

  std::vector<std::vector<float>> best_params;
  double best_valid_auc = -1.0;

  const bool pretraining_enabled =
      ssl != nullptr && config_.strategy == Strategy::kPretrain;

  // Pre-training stage: SSL losses only (MISS-Pre in Table IX).
  if (pretraining_enabled) {
    data::BatchPlan plan(train.size(), config_.batch_size);
    for (int64_t epoch = 0; epoch < config_.pretrain_epochs; ++epoch) {
      plan.Shuffle(rng);
      for (int64_t b = 0; b < plan.num_batches(); ++b) {
        data::Batch batch = data::MakeBatch(train, plan.BatchIndices(b));
        core::SslLossResult ssl_losses = ssl->ComputeLoss(model, batch);
        nn::Tensor loss;
        if (ssl_losses.interest_loss.defined()) {
          loss = nn::MulScalar(ssl_losses.interest_loss, config_.alpha1);
        }
        if (ssl_losses.feature_loss.defined()) {
          nn::Tensor f = nn::MulScalar(ssl_losses.feature_loss, config_.alpha2);
          loss = loss.defined() ? nn::Add(loss, f) : f;
        }
        if (!loss.defined()) continue;
        nn::Optimizer::ZeroGrad(params);
        nn::Backward(loss);
        nn::ClipGradNorm(params, config_.grad_clip_norm);
        optimizer.Step(params);
      }
    }
  }

  // Main stage: CTR loss, plus SSL losses when training jointly.
  const bool joint_ssl =
      ssl != nullptr && config_.strategy == Strategy::kJoint;
  data::BatchPlan plan(train.size(), config_.batch_size);
  for (int64_t epoch = 0; epoch < config_.epochs; ++epoch) {
    plan.Shuffle(rng);
    double epoch_loss = 0.0;
    for (int64_t b = 0; b < plan.num_batches(); ++b) {
      data::Batch batch = data::MakeBatch(train, plan.BatchIndices(b));
      nn::Tensor logits = model.Forward(batch, /*training=*/true);
      nn::Tensor loss = nn::BceWithLogitsLoss(logits, batch.labels);

      if (joint_ssl) {
        core::SslLossResult ssl_losses = ssl->ComputeLoss(model, batch);
        if (ssl_losses.interest_loss.defined() && config_.alpha1 > 0.0f) {
          loss = nn::Add(
              loss, nn::MulScalar(ssl_losses.interest_loss, config_.alpha1));
        }
        if (ssl_losses.feature_loss.defined() && config_.alpha2 > 0.0f) {
          loss = nn::Add(
              loss, nn::MulScalar(ssl_losses.feature_loss, config_.alpha2));
        }
        result.similarity_trace.push_back(ssl_losses.mean_pair_similarity);
      }

      epoch_loss += loss.item();
      nn::Optimizer::ZeroGrad(params);
      nn::Backward(loss);
      nn::ClipGradNorm(params, config_.grad_clip_norm);
      optimizer.Step(params);
    }
    result.loss_trace.push_back(epoch_loss / plan.num_batches());

    if (config_.select_best_on_valid) {
      const EvalResult valid_result = Evaluate(model, valid);
      if (valid_result.auc > best_valid_auc) {
        best_valid_auc = valid_result.auc;
        best_params = Snapshot(params);
      }
      if (config_.verbose) {
        MISS_LOG(INFO) << model.name() << (ssl ? "+" + ssl->name() : "")
                       << " epoch " << epoch + 1 << "/" << config_.epochs
                       << " loss=" << result.loss_trace.back()
                       << " valid_auc=" << valid_result.auc;
      }
    }
  }

  if (config_.select_best_on_valid && !best_params.empty()) {
    Restore(params, best_params);
    result.best_valid_auc = best_valid_auc;
  } else {
    result.best_valid_auc = Evaluate(model, valid).auc;
  }
  result.test = Evaluate(model, test);
  return result;
}

}  // namespace miss::train
