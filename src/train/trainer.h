// Mini-batch trainer with multi-task SSL support (paper Section IV-C):
// joint optimization L = L_ll + a1*L_ssl + a2*L_ssl' (Eq. 17), or the
// two-stage pre-train/fine-tune strategy compared in Table IX.

#ifndef MISS_TRAIN_TRAINER_H_
#define MISS_TRAIN_TRAINER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/ssl_method.h"
#include "data/dataset.h"
#include "models/ctr_model.h"
#include "obs/health.h"

namespace miss::train {

enum class Strategy {
  kJoint,     // MISS-Joint: one loss, end to end
  kPretrain,  // MISS-Pre: SSL-only warmup, then CTR-only fine-tuning
};

struct TrainConfig {
  int64_t epochs = 3;
  int64_t batch_size = 128;
  float learning_rate = 1e-3f;
  float weight_decay = 1e-6f;
  // SSL loss weights a1 (interest level) and a2 (feature level), Eq. 17.
  float alpha1 = 1.0f;
  float alpha2 = 1.0f;
  Strategy strategy = Strategy::kJoint;
  int64_t pretrain_epochs = 2;
  float grad_clip_norm = 10.0f;
  uint64_t seed = 1;
  // Evaluate on the validation split each epoch and report the test metrics
  // of the best-validation parameters (paper Section VI-A5).
  bool select_best_on_valid = true;
  bool verbose = false;
  // Capture a model-health baseline (train::ComputeBaseline) on the
  // validation split after final parameter selection, for embedding in a
  // serving bundle (serve::SaveBundle).
  bool compute_baseline = false;
};

struct EvalResult {
  double auc = 0.0;
  double logloss = 0.0;
};

struct FitResult {
  EvalResult test;
  double best_valid_auc = 0.0;
  // Mean positive-pair cosine similarity per training step (Figure 5).
  std::vector<double> similarity_trace;
  // Total training loss per epoch.
  std::vector<double> loss_trace;
  // Validation AUC per epoch, aligned with loss_trace. Empty when
  // select_best_on_valid is off (no per-epoch evaluation happens then).
  std::vector<double> valid_auc_trace;
  // Model-health baseline on the validation split (the distributions the
  // serving tier diffs live traffic against). Null unless
  // TrainConfig::compute_baseline was set.
  std::shared_ptr<const obs::ModelBaseline> baseline;
};

// Scores a dataset with the model (no dropout) and computes AUC/Logloss.
EvalResult Evaluate(models::CtrModel& model, const data::Dataset& dataset,
                    int64_t batch_size = 256);

class Trainer {
 public:
  explicit Trainer(const TrainConfig& config) : config_(config) {}

  // Trains `model` (optionally with the auxiliary `ssl` task; pass nullptr
  // for plain CTR training) and returns test metrics.
  FitResult Fit(models::CtrModel& model, core::SslMethod* ssl,
                const data::Dataset& train, const data::Dataset& valid,
                const data::Dataset& test);

 private:
  TrainConfig config_;
};

}  // namespace miss::train

#endif  // MISS_TRAIN_TRAINER_H_
