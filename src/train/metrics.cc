#include "train/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace miss::train {

double Auc(const std::vector<double>& scores,
           const std::vector<float>& labels) {
  MISS_CHECK_EQ(scores.size(), labels.size());
  const int64_t n = static_cast<int64_t>(scores.size());
  std::vector<int64_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    return scores[a] < scores[b];
  });

  // Average ranks over tie groups.
  std::vector<double> ranks(n);
  int64_t i = 0;
  while (i < n) {
    int64_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double avg_rank = (static_cast<double>(i) + j) / 2.0 + 1.0;
    for (int64_t k = i; k <= j; ++k) ranks[order[k]] = avg_rank;
    i = j + 1;
  }

  double positive_rank_sum = 0.0;
  int64_t positives = 0;
  for (int64_t k = 0; k < n; ++k) {
    if (labels[k] > 0.5f) {
      positive_rank_sum += ranks[k];
      ++positives;
    }
  }
  const int64_t negatives = n - positives;
  if (positives == 0 || negatives == 0) return 0.5;
  return (positive_rank_sum -
          static_cast<double>(positives) * (positives + 1) / 2.0) /
         (static_cast<double>(positives) * negatives);
}

double LogLoss(const std::vector<double>& probs,
               const std::vector<float>& labels) {
  MISS_CHECK_EQ(probs.size(), labels.size());
  MISS_CHECK(!probs.empty());
  double total = 0.0;
  for (size_t k = 0; k < probs.size(); ++k) {
    const double p = std::clamp(probs[k], 1e-7, 1.0 - 1e-7);
    total += labels[k] > 0.5f ? -std::log(p) : -std::log(1.0 - p);
  }
  return total / static_cast<double>(probs.size());
}

}  // namespace miss::train
