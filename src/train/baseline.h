// Training-time model-health baseline: the distribution snapshot a serving
// process compares live traffic against (obs::Psi). Computed on held-out
// data — conventionally the validation split, after best-on-valid parameter
// selection — and persisted into the bundle manifest by serve::SaveBundle.

#ifndef MISS_TRAIN_BASELINE_H_
#define MISS_TRAIN_BASELINE_H_

#include <cstdint>

#include "data/dataset.h"
#include "models/ctr_model.h"
#include "obs/health.h"

namespace miss::train {

// Scores `dataset` with `model` (inference mode, batched) and returns the
// baseline snapshot: score distribution over obs::kScoreDistributionBuckets,
// empirical positive rate, and per-field id frequencies (top-K + other, the
// exact seen-id set when small enough for exact OOV detection at serving
// time). Sequential fields count every history element as one observation.
obs::ModelBaseline ComputeBaseline(models::CtrModel& model,
                                   const data::Dataset& dataset,
                                   int64_t batch_size = 256);

}  // namespace miss::train

#endif  // MISS_TRAIN_BASELINE_H_
