// Creates SSL methods by name for the experiment harness.

#ifndef MISS_CORE_SSL_FACTORY_H_
#define MISS_CORE_SSL_FACTORY_H_

#include <memory>
#include <string>

#include "core/miss_module.h"
#include "core/ssl_method.h"
#include "data/schema.h"

namespace miss::core {

// names: "miss" (uses `miss_config`), "rule", "irssl", "s3rec", "cl4srec".
// Returns nullptr for "" / "none" (plain CTR training).
std::unique_ptr<SslMethod> CreateSslMethod(const std::string& name,
                                           const data::DatasetSchema& schema,
                                           int64_t embedding_dim, float tau,
                                           uint64_t seed,
                                           const MissConfig& miss_config);

}  // namespace miss::core

#endif  // MISS_CORE_SSL_FACTORY_H_
