// InfoNCE contrastive loss (van den Oord et al., 2018), as instantiated in
// the paper's Eq. (15)/(16): cosine-similarity logits with temperature tau,
// positives on the diagonal, in-batch negatives.

#ifndef MISS_CORE_INFO_NCE_H_
#define MISS_CORE_INFO_NCE_H_

#include <utility>

#include "nn/tensor.h"

namespace miss::core {

struct InfoNceResult {
  nn::Tensor loss;  // scalar
  // Mean cosine similarity of the positive (diagonal) pairs.
  double mean_positive_similarity = 0.0;
};

// z1, z2: [B, d] encoded views; positives are (z1[b], z2[b]).
InfoNceResult InfoNce(const nn::Tensor& z1, const nn::Tensor& z2, float tau);

}  // namespace miss::core

#endif  // MISS_CORE_INFO_NCE_H_
