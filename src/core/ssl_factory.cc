#include "core/ssl_factory.h"

#include "common/check.h"
#include "core/ssl_baselines.h"

namespace miss::core {

std::unique_ptr<SslMethod> CreateSslMethod(const std::string& name,
                                           const data::DatasetSchema& schema,
                                           int64_t embedding_dim, float tau,
                                           uint64_t seed,
                                           const MissConfig& miss_config) {
  if (name.empty() || name == "none") return nullptr;
  if (name == "miss") {
    MissConfig config = miss_config;
    config.tau = tau;
    config.seed = seed;
    return std::make_unique<MissModule>(schema, embedding_dim, config);
  }
  if (name == "rule") {
    return std::make_unique<RuleSsl>(embedding_dim, tau, seed);
  }
  if (name == "irssl") {
    return std::make_unique<IrsslSsl>(schema, embedding_dim, tau, seed);
  }
  if (name == "s3rec") {
    return std::make_unique<S3RecSsl>(embedding_dim, tau, seed);
  }
  if (name == "cl4srec") {
    return std::make_unique<Cl4SrecSsl>(embedding_dim, tau, seed);
  }
  MISS_CHECK(false) << "unknown ssl method: " << name;
  return nullptr;
}

}  // namespace miss::core
