#include "core/info_nce.h"

#include "common/check.h"
#include "nn/ops.h"

namespace miss::core {

InfoNceResult InfoNce(const nn::Tensor& z1, const nn::Tensor& z2, float tau) {
  MISS_CHECK_EQ(z1.ndim(), 2);
  MISS_CHECK_EQ(z2.ndim(), 2);
  MISS_CHECK_EQ(z1.dim(0), z2.dim(0));
  MISS_CHECK_EQ(z1.dim(1), z2.dim(1));
  MISS_CHECK_GT(tau, 0.0f);

  nn::Tensor n1 = nn::RowL2Normalize(z1);
  nn::Tensor n2 = nn::RowL2Normalize(z2);
  // Cosine-similarity matrix [B, B], scaled by 1/tau.
  nn::Tensor logits =
      nn::MulScalar(nn::MatMul(n1, nn::TransposeLast2(n2)), 1.0f / tau);

  InfoNceResult result;
  result.loss = nn::DiagonalNllFromLogits(logits);

  const int64_t b_dim = z1.dim(0);
  double sim = 0.0;
  for (int64_t b = 0; b < b_dim; ++b) {
    sim += logits.at(b * b_dim + b) * tau;
  }
  result.mean_positive_similarity = sim / static_cast<double>(b_dim);
  return result;
}

}  // namespace miss::core
