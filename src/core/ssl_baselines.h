// Competing self-supervised methods used in the superiority analysis
// (Table VI): rule-based category segmentation, IRSSL feature masking,
// S3Rec sequence-segment MIM, and CL4SRec crop/mask/reorder.
//
// Each is adapted to the CTR setting the same way the paper does: the
// auxiliary InfoNCE loss is computed on views derived from the sample's
// behavior sequence (or feature set) and back-propagates into the shared
// embedding tables.

#ifndef MISS_CORE_SSL_BASELINES_H_
#define MISS_CORE_SSL_BASELINES_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/ssl_method.h"
#include "nn/layers.h"
#include "nn/module.h"

namespace miss::core {

// Shared scaffolding: an encoder MLP over pooled sequence views + InfoNCE.
class SequenceSslBase : public nn::Module, public SslMethod {
 public:
  SequenceSslBase(int64_t embedding_dim, float tau, uint64_t seed);

  std::vector<nn::Tensor> TrainableParameters() const override {
    return Parameters();
  }

 protected:
  // Recency-weighted masked mean over selected positions; `weights` is a
  // [B, L] buffer (zeros drop a position). Order-sensitive so that reorder
  // augmentations are not no-ops.
  nn::Tensor PoolPositions(const nn::Tensor& seq,
                           const std::vector<float>& weights) const;

  // Encodes a [B, K] view and returns it.
  nn::Tensor Encode(const nn::Tensor& view) const;

  float tau_;
  common::Rng rng_;

 private:
  std::unique_ptr<nn::Mlp> encoder_;
};

// Rule-based SSL: segment the behavior sequence by item category, take the
// user's dominant category segment, and contrast two dropout views of its
// pooled representation.
class RuleSsl : public SequenceSslBase {
 public:
  RuleSsl(int64_t embedding_dim, float tau, uint64_t seed,
          float dropout = 0.3f);

  SslLossResult ComputeLoss(models::CtrModel& model,
                            const data::Batch& batch) override;
  std::string name() const override { return "Rule"; }

 private:
  float dropout_;
};

// IRSSL (Yao et al., 2021): two complementary random maskings of the item's
// categorical features; the views are the concatenated surviving field
// embeddings. Loses efficacy when few item features exist — exactly the
// paper's observation.
class IrsslSsl : public nn::Module, public SslMethod {
 public:
  IrsslSsl(const data::DatasetSchema& schema, int64_t embedding_dim,
           float tau, uint64_t seed);

  SslLossResult ComputeLoss(models::CtrModel& model,
                            const data::Batch& batch) override;
  std::vector<nn::Tensor> TrainableParameters() const override {
    return Parameters();
  }
  std::string name() const override { return "IRSSL"; }

 private:
  float tau_;
  common::Rng rng_;
  std::vector<int> item_fields_;  // candidate-side categorical fields
  std::unique_ptr<nn::Mlp> encoder_;
};

// S3Rec (Zhou et al., CIKM 2020), sequence-segment MIM variant: contrast a
// random in-sequence segment with the rest of the sequence.
class S3RecSsl : public SequenceSslBase {
 public:
  S3RecSsl(int64_t embedding_dim, float tau, uint64_t seed);

  SslLossResult ComputeLoss(models::CtrModel& model,
                            const data::Batch& batch) override;
  std::string name() const override { return "S3Rec"; }
};

// CL4SRec (Xie et al., 2020): two independent augmentations drawn from
// {crop, mask, reorder} applied to the whole behavior sequence.
class Cl4SrecSsl : public SequenceSslBase {
 public:
  Cl4SrecSsl(int64_t embedding_dim, float tau, uint64_t seed);

  SslLossResult ComputeLoss(models::CtrModel& model,
                            const data::Batch& batch) override;
  std::string name() const override { return "CL4SRec"; }

 private:
  // Fills `weights` (length L) for one sample according to one random
  // augmentation operator.
  void Augment(int64_t valid_len, int64_t l_dim, float* weights);
};

}  // namespace miss::core

#endif  // MISS_CORE_SSL_BASELINES_H_
