#include "core/ssl_baselines.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <utility>

#include "core/info_nce.h"
#include "nn/ops.h"

namespace miss::core {

namespace {

// Position-dependent base weight making pooled views order-sensitive (so the
// reorder augmentation is not a no-op under pooling).
float RecencyWeight(int64_t l) {
  return std::exp(0.08f * static_cast<float>(l));
}

// By convention sequence field 0 is the item-id sequence and field 1 (when
// present) the category sequence.
constexpr int kItemSeq = 0;
constexpr int kCategorySeq = 1;

}  // namespace

SequenceSslBase::SequenceSslBase(int64_t embedding_dim, float tau,
                                 uint64_t seed)
    : tau_(tau), rng_(seed) {
  encoder_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{embedding_dim, 20, 20}, nn::Activation::kRelu,
      nn::Activation::kNone, rng_);
  RegisterChild(encoder_.get());
}

nn::Tensor SequenceSslBase::PoolPositions(
    const nn::Tensor& seq, const std::vector<float>& weights) const {
  const int64_t b_dim = seq.dim(0);
  const int64_t l_dim = seq.dim(1);
  MISS_CHECK_EQ(static_cast<int64_t>(weights.size()), b_dim * l_dim);
  std::vector<float> normalized(weights);
  for (int64_t b = 0; b < b_dim; ++b) {
    float total = 0.0f;
    for (int64_t l = 0; l < l_dim; ++l) total += normalized[b * l_dim + l];
    if (total <= 0.0f) continue;
    for (int64_t l = 0; l < l_dim; ++l) normalized[b * l_dim + l] /= total;
  }
  nn::Tensor w =
      nn::Tensor::FromData({b_dim, l_dim, 1}, std::move(normalized));
  return nn::SumAxis(nn::Mul(w, seq), /*axis=*/1);
}

nn::Tensor SequenceSslBase::Encode(const nn::Tensor& view) const {
  return encoder_->Forward(view);
}

// ----------------------------------------------------------------------------
// Rule-based SSL
// ----------------------------------------------------------------------------

RuleSsl::RuleSsl(int64_t embedding_dim, float tau, uint64_t seed,
                 float dropout)
    : SequenceSslBase(embedding_dim, tau, seed), dropout_(dropout) {}

SslLossResult RuleSsl::ComputeLoss(models::CtrModel& model,
                                   const data::Batch& batch) {
  const int64_t b_dim = batch.batch_size;
  const int64_t l_dim = batch.seq_len;
  const int64_t j_dim = batch.num_seq;
  nn::Tensor item_seq =
      model.embeddings().SequenceEmbeddings(batch, kItemSeq);

  // Segment by category: keep the user's dominant category.
  const int cat_seq = j_dim > 1 ? kCategorySeq : kItemSeq;
  std::vector<float> weights(b_dim * l_dim, 0.0f);
  for (int64_t b = 0; b < b_dim; ++b) {
    std::unordered_map<int64_t, int64_t> counts;
    for (int64_t l = 0; l < l_dim; ++l) {
      if (batch.seq_mask[b * l_dim + l] == 0.0f) continue;
      ++counts[batch.seq[(b * j_dim + cat_seq) * l_dim + l]];
    }
    int64_t best = -1;
    int64_t best_count = 0;
    for (const auto& [cat, count] : counts) {
      if (count > best_count) {
        best = cat;
        best_count = count;
      }
    }
    for (int64_t l = 0; l < l_dim; ++l) {
      if (batch.seq_mask[b * l_dim + l] == 0.0f) continue;
      if (batch.seq[(b * j_dim + cat_seq) * l_dim + l] == best) {
        weights[b * l_dim + l] = RecencyWeight(l);
      }
    }
  }

  nn::Tensor pooled = PoolPositions(item_seq, weights);
  nn::Tensor v1 = nn::Dropout(pooled, dropout_, /*training=*/true, rng_);
  nn::Tensor v2 = nn::Dropout(pooled, dropout_, /*training=*/true, rng_);
  InfoNceResult nce = InfoNce(Encode(v1), Encode(v2), tau_);
  SslLossResult result;
  result.interest_loss = nce.loss;
  result.mean_pair_similarity = nce.mean_positive_similarity;
  return result;
}

// ----------------------------------------------------------------------------
// IRSSL
// ----------------------------------------------------------------------------

IrsslSsl::IrsslSsl(const data::DatasetSchema& schema, int64_t embedding_dim,
                   float tau, uint64_t seed)
    : tau_(tau), rng_(seed) {
  // Candidate-side fields: everything except the user id (field 0).
  for (int i = 1; i < schema.num_categorical(); ++i) item_fields_.push_back(i);
  MISS_CHECK(!item_fields_.empty());
  encoder_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{
          static_cast<int64_t>(item_fields_.size()) * embedding_dim, 20, 20},
      nn::Activation::kRelu, nn::Activation::kNone, rng_);
  RegisterChild(encoder_.get());
}

SslLossResult IrsslSsl::ComputeLoss(models::CtrModel& model,
                                    const data::Batch& batch) {
  const int64_t b_dim = batch.batch_size;
  // Complementary random feature masking: each item field goes to exactly
  // one of the two views.
  std::vector<float> keep1(item_fields_.size());
  for (auto& k : keep1) k = rng_.Bernoulli(0.5) ? 1.0f : 0.0f;
  // Guarantee both views are non-empty when >= 2 fields exist.
  if (item_fields_.size() >= 2) {
    keep1[0] = 1.0f;
    keep1[1] = 0.0f;
  }

  std::vector<nn::Tensor> parts1, parts2;
  for (size_t f = 0; f < item_fields_.size(); ++f) {
    nn::Tensor emb = model.embeddings().FieldEmbedding(batch, item_fields_[f]);
    nn::Tensor m1 = nn::Tensor::Full({1}, keep1[f]);
    nn::Tensor m2 = nn::Tensor::Full({1}, 1.0f - keep1[f]);
    parts1.push_back(nn::Mul(emb, m1));
    parts2.push_back(nn::Mul(emb, m2));
  }
  nn::Tensor v1 = nn::Concat(parts1, /*axis=*/1);
  nn::Tensor v2 = nn::Concat(parts2, /*axis=*/1);
  InfoNceResult nce =
      InfoNce(encoder_->Forward(v1), encoder_->Forward(v2), tau_);
  SslLossResult result;
  result.interest_loss = nce.loss;
  result.mean_pair_similarity = nce.mean_positive_similarity;
  (void)b_dim;
  return result;
}

// ----------------------------------------------------------------------------
// S3Rec (sequence-segment MIM)
// ----------------------------------------------------------------------------

S3RecSsl::S3RecSsl(int64_t embedding_dim, float tau, uint64_t seed)
    : SequenceSslBase(embedding_dim, tau, seed) {}

SslLossResult S3RecSsl::ComputeLoss(models::CtrModel& model,
                                    const data::Batch& batch) {
  const int64_t b_dim = batch.batch_size;
  const int64_t l_dim = batch.seq_len;
  nn::Tensor item_seq =
      model.embeddings().SequenceEmbeddings(batch, kItemSeq);

  std::vector<float> seg(b_dim * l_dim, 0.0f);
  std::vector<float> rest(b_dim * l_dim, 0.0f);
  for (int64_t b = 0; b < b_dim; ++b) {
    const int64_t valid = std::max<int64_t>(1, batch.lengths[b]);
    const int64_t seg_len =
        std::max<int64_t>(1, rng_.UniformInt(1, std::max<int64_t>(1, valid / 2)));
    const int64_t start = rng_.UniformInt(valid - seg_len + 1);
    for (int64_t l = 0; l < valid && l < l_dim; ++l) {
      const bool in_segment = (l >= start && l < start + seg_len);
      (in_segment ? seg : rest)[b * l_dim + l] = RecencyWeight(l);
    }
  }
  InfoNceResult nce = InfoNce(Encode(PoolPositions(item_seq, seg)),
                              Encode(PoolPositions(item_seq, rest)), tau_);
  SslLossResult result;
  result.interest_loss = nce.loss;
  result.mean_pair_similarity = nce.mean_positive_similarity;
  return result;
}

// ----------------------------------------------------------------------------
// CL4SRec
// ----------------------------------------------------------------------------

Cl4SrecSsl::Cl4SrecSsl(int64_t embedding_dim, float tau, uint64_t seed)
    : SequenceSslBase(embedding_dim, tau, seed) {}

void Cl4SrecSsl::Augment(int64_t valid_len, int64_t l_dim, float* weights) {
  for (int64_t l = 0; l < valid_len && l < l_dim; ++l) {
    weights[l] = RecencyWeight(l);
  }
  const int64_t op = rng_.UniformInt(3);
  if (op == 0) {
    // Crop: keep a contiguous window of 60-80% of the sequence.
    const double ratio = rng_.Uniform(0.6, 0.8);
    const int64_t keep =
        std::max<int64_t>(1, static_cast<int64_t>(valid_len * ratio));
    const int64_t start = rng_.UniformInt(valid_len - keep + 1);
    for (int64_t l = 0; l < valid_len; ++l) {
      if (l < start || l >= start + keep) weights[l] = 0.0f;
    }
  } else if (op == 1) {
    // Mask: drop 30% of positions (keeping at least one).
    int64_t kept = valid_len;
    for (int64_t l = 0; l < valid_len && kept > 1; ++l) {
      if (rng_.Bernoulli(0.3)) {
        weights[l] = 0.0f;
        --kept;
      }
    }
  } else {
    // Reorder: shuffle a window covering ~30% of the sequence. Under the
    // recency-weighted pooling this permutes which items carry which weight.
    const int64_t win =
        std::max<int64_t>(2, static_cast<int64_t>(valid_len * 0.3));
    if (valid_len >= 2) {
      const int64_t len = std::min(win, valid_len);
      const int64_t start = rng_.UniformInt(valid_len - len + 1);
      for (int64_t l = len - 1; l > 0; --l) {
        const int64_t other = rng_.UniformInt(l + 1);
        std::swap(weights[start + l], weights[start + other]);
      }
    }
  }
}

SslLossResult Cl4SrecSsl::ComputeLoss(models::CtrModel& model,
                                      const data::Batch& batch) {
  const int64_t b_dim = batch.batch_size;
  const int64_t l_dim = batch.seq_len;
  nn::Tensor item_seq =
      model.embeddings().SequenceEmbeddings(batch, kItemSeq);

  std::vector<float> w1(b_dim * l_dim, 0.0f);
  std::vector<float> w2(b_dim * l_dim, 0.0f);
  for (int64_t b = 0; b < b_dim; ++b) {
    const int64_t valid = std::max<int64_t>(1, batch.lengths[b]);
    Augment(valid, l_dim, w1.data() + b * l_dim);
    Augment(valid, l_dim, w2.data() + b * l_dim);
  }
  InfoNceResult nce = InfoNce(Encode(PoolPositions(item_seq, w1)),
                              Encode(PoolPositions(item_seq, w2)), tau_);
  SslLossResult result;
  result.interest_loss = nce.loss;
  result.mean_pair_similarity = nce.mean_positive_similarity;
  return result;
}

}  // namespace miss::core
