// The MISS framework (paper Sections IV-V): CNN multi-interest extraction,
// interest-level and fine-grained feature-level augmentation, view encoding,
// and InfoNCE losses — packaged as a plug-in SslMethod.

#ifndef MISS_CORE_MISS_MODULE_H_
#define MISS_CORE_MISS_MODULE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/ssl_method.h"
#include "nn/attention.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "nn/rnn.h"

namespace miss::core {

struct MissConfig {
  // Horizontal convolution branches g_1..g_M (Eq. 19). m = 1 captures
  // point-wise interests; m > 1 union-wise interests.
  int64_t M = 4;
  // Vertical convolution branches (Eq. 22) for intra-item correlations.
  int64_t N = 2;
  // Maximum interest-dependency distance H for RS^i (Eq. 21).
  int64_t H = 4;
  // Number of interest-level view pairs P (Eq. 11) sampled per batch.
  int64_t P = 6;
  // Number of feature-level view pairs Q (Eq. 12) sampled per batch.
  int64_t Q = 6;
  // InfoNCE temperature (Figure 7 sweeps this; 0.1 is the paper's turning
  // point).
  float tau = 0.1f;

  // -- Ablation toggles (Table VII) ------------------------------------------
  // M practice: interest-level SSL. When false, augmentation degrades to the
  // sample-level scheme of prior work (two dropout views of the pooled
  // sequence representation) — the MISS/M/F/U/L variant.
  bool multi_interest = true;
  // U practice: union-wise representations. When false only the m = 1
  // point-wise kernel is used.
  bool union_wise = true;
  // L practice: long-range dependencies. When false the pair distance h is
  // fixed to 1 (adjacent views only).
  bool long_range = true;
  // F practice: fine-grained feature-level branch (MIMFE + Eq. 16). When
  // false the feature loss is absent.
  bool fine_grained = true;

  // -- Extractor choice (Table VIII) ------------------------------------------
  enum class Extractor { kCnn, kSelfAttention, kLstm };
  Extractor extractor = Extractor::kCnn;

  // -- Future-work extensions (Section V-B / IV-B3 of the paper) --------------
  // Distribution of the interest-dependency distance h. The paper assumes
  // uniform and names Gaussian as future work; both are provided. Gaussian
  // draws |round(N(0, H/2))| clamped to [1, H], biasing toward short-range
  // dependencies while keeping a long-range tail.
  enum class DistanceDistribution { kUniform, kGaussian };
  DistanceDistribution distance_distribution = DistanceDistribution::kUniform;
  // View encoder structure. The paper uses MLPs and names Transformer
  // encoders as future work; kTransformer encodes the J field views of an
  // interest representation with one self-attention layer before projecting.
  enum class EncoderKind { kMlp, kTransformer };
  EncoderKind interest_encoder = EncoderKind::kMlp;

  // Encoder hidden sizes (paper: {20, 20} and {10, 10}).
  std::vector<int64_t> enc_i_hidden = {20, 20};
  std::vector<int64_t> enc_if_hidden = {10, 10};

  // When true, RS^i measures the pair distance h in units of the kernel
  // width m (so sampled windows never overlap and the contrastive task
  // cannot be solved by shared-item identity alone).
  bool stride_by_kernel = true;

  // Dropout used by the sample-level fallback views.
  float sample_view_dropout = 0.2f;

  uint64_t seed = 97;

  // Named variants from Table VII.
  static MissConfig Full() { return MissConfig(); }
  static MissConfig WithoutF();
  static MissConfig WithoutFU();
  static MissConfig WithoutFL();
  static MissConfig WithoutFUL();
  static MissConfig WithoutMFUL();
};

class MissModule : public nn::Module, public SslMethod {
 public:
  // `schema` must match the batches later passed to ComputeLoss; it fixes
  // J (field count) and hence the encoder input sizes.
  MissModule(const data::DatasetSchema& schema, int64_t embedding_dim,
             const MissConfig& config);

  SslLossResult ComputeLoss(models::CtrModel& model,
                            const data::Batch& batch) override;

  std::vector<nn::Tensor> TrainableParameters() const override {
    return Parameters();
  }

  std::string name() const override;

  const MissConfig& config() const { return config_; }

  // |T| for a given valid length (Eq. 20): sum over m of (len - m + 1).
  int64_t InterestCount(int64_t len) const;
  // Omega (Eq. 23): sum over n of (J - n + 1).
  int64_t FeatureRepresentationCount() const;

  // The convolution kernels g_m / g_hat_n (exposed for tests and analysis).
  const std::vector<nn::Tensor>& horizontal_kernels() const {
    return horizontal_kernels_;
  }
  const std::vector<nn::Tensor>& vertical_kernels() const {
    return vertical_kernels_;
  }

 private:
  struct ViewPair {
    nn::Tensor first;   // [B, d]
    nn::Tensor second;  // [B, d]
  };

  // Interest sequences per horizontal branch: G_m = ReLU(C * g_m).
  std::vector<nn::Tensor> ExtractInterests(const nn::Tensor& c);
  // One RS^i draw (Eq. 21) across the batch from branch G_m.
  ViewPair SampleInterestPair(const std::vector<nn::Tensor>& interests,
                              const data::Batch& batch);
  // One RS^if draw (Eq. 24).
  ViewPair SampleFeaturePair(const std::vector<nn::Tensor>& interests,
                             const data::Batch& batch);
  // Sample-level fallback used when multi_interest is off.
  ViewPair SampleLevelViews(const nn::Tensor& c, const data::Batch& batch);

  // Alternative extractors (Table VIII): sequences of per-position interest
  // representations [B, L, J*K].
  nn::Tensor ExtractWithSelfAttention(const nn::Tensor& c,
                                      const data::Batch& batch);
  nn::Tensor ExtractWithLstm(const nn::Tensor& c, const data::Batch& batch);
  ViewPair SampleSequencePair(const nn::Tensor& reps,
                              const data::Batch& batch);

  MissConfig config_;
  int64_t j_dim_;
  int64_t k_dim_;
  common::Rng rng_;

  // Samples a distance according to config_.distance_distribution.
  int64_t SampleDistanceUnits(int64_t max_units);
  // Applies Enc^i (MLP or Transformer variant) to a [B, J*K] view.
  nn::Tensor EncodeInterestView(const nn::Tensor& view) const;

  std::vector<nn::Tensor> horizontal_kernels_;  // g_m, m = 1..M_eff
  std::vector<nn::Tensor> vertical_kernels_;    // g_n, n = 1..N_eff
  std::unique_ptr<nn::Mlp> enc_i_;
  std::unique_ptr<nn::MultiHeadSelfAttention> enc_i_attention_;
  std::unique_ptr<nn::Linear> enc_i_projection_;
  std::unique_ptr<nn::Mlp> enc_if_;
  std::unique_ptr<nn::MultiHeadSelfAttention> sa_extractor_;
  std::unique_ptr<nn::LstmRunner> lstm_extractor_;
};

}  // namespace miss::core

#endif  // MISS_CORE_MISS_MODULE_H_
