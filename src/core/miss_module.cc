#include "core/miss_module.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/info_nce.h"
#include "nn/ops.h"

namespace miss::core {

MissConfig MissConfig::WithoutF() {
  MissConfig c;
  c.fine_grained = false;
  return c;
}

MissConfig MissConfig::WithoutFU() {
  MissConfig c = WithoutF();
  c.union_wise = false;
  return c;
}

MissConfig MissConfig::WithoutFL() {
  MissConfig c = WithoutF();
  c.long_range = false;
  return c;
}

MissConfig MissConfig::WithoutFUL() {
  MissConfig c = WithoutFU();
  c.long_range = false;
  return c;
}

MissConfig MissConfig::WithoutMFUL() {
  MissConfig c = WithoutFUL();
  c.multi_interest = false;
  return c;
}

MissModule::MissModule(const data::DatasetSchema& schema,
                       int64_t embedding_dim, const MissConfig& config)
    : config_(config),
      j_dim_(schema.num_sequential()),
      k_dim_(embedding_dim),
      rng_(config.seed) {
  const int64_t m_eff = config_.union_wise ? config_.M : 1;
  for (int64_t m = 1; m <= m_eff; ++m) {
    // Initialized near an averaging filter so early interest representations
    // are meaningful behavior aggregates.
    nn::Tensor kernel = nn::Tensor::RandomNormal({m}, 0.1f, rng_,
                                                 /*requires_grad=*/true);
    for (int64_t i = 0; i < m; ++i) {
      kernel.set(i, kernel.at(i) + 1.0f / static_cast<float>(m));
    }
    horizontal_kernels_.push_back(AddParameter(kernel));
  }
  const int64_t n_eff = std::min<int64_t>(config_.N, j_dim_);
  for (int64_t n = 1; n <= n_eff; ++n) {
    nn::Tensor kernel = nn::Tensor::RandomNormal({n}, 0.1f, rng_,
                                                 /*requires_grad=*/true);
    for (int64_t i = 0; i < n; ++i) {
      kernel.set(i, kernel.at(i) + 1.0f / static_cast<float>(n));
    }
    vertical_kernels_.push_back(AddParameter(kernel));
  }

  // Enc^i: input is a flattened interest representation t in R^{JK}.
  if (config_.interest_encoder == MissConfig::EncoderKind::kTransformer) {
    // Future-work variant: self-attention over the J field views followed
    // by a projection to the encoder output width.
    enc_i_attention_ = std::make_unique<nn::MultiHeadSelfAttention>(
        k_dim_, /*num_heads=*/1, /*residual=*/true, rng_);
    RegisterChild(enc_i_attention_.get());
    enc_i_projection_ = std::make_unique<nn::Linear>(
        k_dim_, config_.enc_i_hidden.back(), rng_);
    RegisterChild(enc_i_projection_.get());
  } else {
    std::vector<int64_t> enc_i_dims = {j_dim_ * k_dim_};
    enc_i_dims.insert(enc_i_dims.end(), config_.enc_i_hidden.begin(),
                      config_.enc_i_hidden.end());
    enc_i_ = std::make_unique<nn::Mlp>(enc_i_dims, nn::Activation::kRelu,
                                       nn::Activation::kNone, rng_);
    RegisterChild(enc_i_.get());
  }

  // Enc^if: input is a single feature-level representation r in R^K.
  std::vector<int64_t> enc_if_dims = {k_dim_};
  enc_if_dims.insert(enc_if_dims.end(), config_.enc_if_hidden.begin(),
                     config_.enc_if_hidden.end());
  enc_if_ = std::make_unique<nn::Mlp>(enc_if_dims, nn::Activation::kRelu,
                                      nn::Activation::kNone, rng_);
  RegisterChild(enc_if_.get());

  if (config_.extractor == MissConfig::Extractor::kSelfAttention) {
    sa_extractor_ = std::make_unique<nn::MultiHeadSelfAttention>(
        j_dim_ * k_dim_, /*num_heads=*/2, /*residual=*/false, rng_);
    RegisterChild(sa_extractor_.get());
  } else if (config_.extractor == MissConfig::Extractor::kLstm) {
    lstm_extractor_ = std::make_unique<nn::LstmRunner>(
        j_dim_ * k_dim_, j_dim_ * k_dim_, rng_);
    RegisterChild(lstm_extractor_.get());
  }
}

std::string MissModule::name() const {
  switch (config_.extractor) {
    case MissConfig::Extractor::kSelfAttention:
      return "MISS-SA";
    case MissConfig::Extractor::kLstm:
      return "MISS-LSTM";
    case MissConfig::Extractor::kCnn:
      break;
  }
  std::string suffix;
  if (!config_.multi_interest) suffix += "/M";
  if (!config_.fine_grained) suffix += "/F";
  if (!config_.union_wise) suffix += "/U";
  if (!config_.long_range) suffix += "/L";
  return "MISS" + suffix;
}

int64_t MissModule::InterestCount(int64_t len) const {
  int64_t total = 0;
  for (const nn::Tensor& kernel : horizontal_kernels_) {
    const int64_t m = kernel.dim(0);
    if (len >= m) total += len - m + 1;
  }
  return total;
}

int64_t MissModule::FeatureRepresentationCount() const {
  int64_t total = 0;
  for (const nn::Tensor& kernel : vertical_kernels_) {
    total += j_dim_ - kernel.dim(0) + 1;
  }
  return total;
}

int64_t MissModule::SampleDistanceUnits(int64_t max_units) {
  if (max_units <= 1) return 1;
  if (config_.distance_distribution ==
      MissConfig::DistanceDistribution::kGaussian) {
    const double stddev = static_cast<double>(config_.H) / 2.0;
    const int64_t h = static_cast<int64_t>(
        std::llround(std::abs(rng_.Normal(0.0, stddev))));
    return std::clamp<int64_t>(h, 1, max_units);
  }
  return rng_.UniformInt(1, max_units);
}

nn::Tensor MissModule::EncodeInterestView(const nn::Tensor& view) const {
  if (config_.interest_encoder == MissConfig::EncoderKind::kTransformer) {
    const int64_t b_dim = view.dim(0);
    nn::Tensor tokens = nn::Reshape(view, {b_dim, j_dim_, k_dim_});
    nn::Tensor attended = enc_i_attention_->Forward(tokens, /*mask=*/{});
    return enc_i_projection_->Forward(nn::MeanAxis(attended, /*axis=*/1));
  }
  return enc_i_->Forward(view);
}

std::vector<nn::Tensor> MissModule::ExtractInterests(const nn::Tensor& c) {
  std::vector<nn::Tensor> interests;
  interests.reserve(horizontal_kernels_.size());
  for (const nn::Tensor& kernel : horizontal_kernels_) {
    interests.push_back(nn::Relu(nn::HorizontalConv(c, kernel)));
  }
  return interests;
}

MissModule::ViewPair MissModule::SampleInterestPair(
    const std::vector<nn::Tensor>& interests, const data::Batch& batch) {
  // RS^i (Eq. 21): one branch per draw; per sample, positions (l, l+h) with
  // h uniform in [1, H] (clamped by the sample's valid window).
  const int64_t branch =
      rng_.UniformInt(static_cast<int64_t>(interests.size()));
  const nn::Tensor& g = interests[branch];
  const int64_t m = horizontal_kernels_[branch].dim(0);
  const int64_t l_out = g.dim(2);

  const int64_t b_dim = batch.batch_size;
  std::vector<int64_t> first(b_dim, 0);
  std::vector<int64_t> second(b_dim, 0);
  const int64_t stride = config_.stride_by_kernel ? m : 1;
  const int64_t max_h = (config_.long_range ? config_.H : 1) * stride;
  for (int64_t b = 0; b < b_dim; ++b) {
    // Valid interest positions for this sample: windows fully inside the
    // un-padded prefix (at least one position always exists).
    const int64_t valid =
        std::max<int64_t>(1, std::min(l_out, batch.lengths[b] - m + 1));
    if (valid == 1) continue;  // degenerate: identical views at position 0
    const int64_t h = std::min<int64_t>(
        stride * SampleDistanceUnits(max_h / stride), valid - 1);
    const int64_t l = rng_.UniformInt(valid - h);
    first[b] = l;
    second[b] = l + h;
  }
  return {nn::GatherInterest(g, first), nn::GatherInterest(g, second)};
}

MissModule::ViewPair MissModule::SampleFeaturePair(
    const std::vector<nn::Tensor>& interests, const data::Batch& batch) {
  // RS^if (Eq. 24): apply a vertical kernel to a random branch, then per
  // sample pick one time position and two (distinct when possible) feature
  // rows of the resulting fine-grained tensor.
  const int64_t branch =
      rng_.UniformInt(static_cast<int64_t>(interests.size()));
  const int64_t v_branch =
      rng_.UniformInt(static_cast<int64_t>(vertical_kernels_.size()));
  const nn::Tensor& kernel = vertical_kernels_[v_branch];
  nn::Tensor fine = nn::Relu(nn::VerticalConv(interests[branch], kernel));

  const int64_t m = horizontal_kernels_[branch].dim(0);
  const int64_t j_out = fine.dim(1);
  const int64_t l_out = fine.dim(2);
  const int64_t b_dim = batch.batch_size;

  std::vector<int64_t> j1(b_dim, 0), j2(b_dim, 0), l_idx(b_dim, 0);
  for (int64_t b = 0; b < b_dim; ++b) {
    const int64_t valid =
        std::max<int64_t>(1, std::min(l_out, batch.lengths[b] - m + 1));
    l_idx[b] = rng_.UniformInt(valid);
    if (j_out > 1) {
      j1[b] = rng_.UniformInt(j_out);
      j2[b] = rng_.UniformInt(j_out);
      if (j2[b] == j1[b]) j2[b] = (j1[b] + 1) % j_out;
    }
  }
  return {nn::GatherFeatureVector(fine, j1, l_idx),
          nn::GatherFeatureVector(fine, j2, l_idx)};
}

MissModule::ViewPair MissModule::SampleLevelViews(const nn::Tensor& c,
                                                  const data::Batch& batch) {
  // Prior-work augmentation (Figure 1 styles, collapsed to dropout views of
  // the whole-sequence representation). Used by the /M ablation.
  const int64_t b_dim = batch.batch_size;
  const int64_t l_dim = c.dim(2);
  std::vector<float> mask(b_dim * l_dim * 1, 0.0f);
  std::vector<float> inv(b_dim, 0.0f);
  for (int64_t b = 0; b < b_dim; ++b) {
    float count = 0.0f;
    for (int64_t l = 0; l < l_dim; ++l) count += batch.seq_mask[b * l_dim + l];
    inv[b] = count > 0 ? 1.0f / count : 0.0f;
  }
  // Mean over time of C: [B, J, L, K] -> [B, J, K] -> [B, J*K].
  nn::Tensor pooled = nn::MeanAxis(c, /*axis=*/2);
  // Rescale by L / valid_len to make the mean a masked mean.
  std::vector<float> scale(b_dim);
  for (int64_t b = 0; b < b_dim; ++b) {
    scale[b] = inv[b] * static_cast<float>(l_dim);
  }
  nn::Tensor scale_t =
      nn::Tensor::FromData({b_dim, 1, 1}, std::move(scale));
  pooled = nn::Reshape(nn::Mul(pooled, scale_t), {b_dim, j_dim_ * k_dim_});

  nn::Tensor v1 = nn::Dropout(pooled, config_.sample_view_dropout,
                              /*training=*/true, rng_);
  nn::Tensor v2 = nn::Dropout(pooled, config_.sample_view_dropout,
                              /*training=*/true, rng_);
  return {v1, v2};
}

nn::Tensor MissModule::ExtractWithSelfAttention(const nn::Tensor& c,
                                                const data::Batch& batch) {
  const int64_t b_dim = c.dim(0);
  const int64_t l_dim = c.dim(2);
  // [B, J, L, K] -> [B, L, J*K]: per-position field concatenation.
  std::vector<nn::Tensor> per_field;
  per_field.reserve(j_dim_);
  for (int64_t j = 0; j < j_dim_; ++j) {
    per_field.push_back(
        nn::Reshape(nn::Slice(c, 1, j, 1), {b_dim, l_dim, k_dim_}));
  }
  nn::Tensor seq = nn::Concat(per_field, /*axis=*/2);
  return sa_extractor_->Forward(seq, batch.seq_mask);
}

nn::Tensor MissModule::ExtractWithLstm(const nn::Tensor& c,
                                       const data::Batch& batch) {
  const int64_t b_dim = c.dim(0);
  const int64_t l_dim = c.dim(2);
  std::vector<nn::Tensor> per_field;
  per_field.reserve(j_dim_);
  for (int64_t j = 0; j < j_dim_; ++j) {
    per_field.push_back(
        nn::Reshape(nn::Slice(c, 1, j, 1), {b_dim, l_dim, k_dim_}));
  }
  nn::Tensor seq = nn::Concat(per_field, /*axis=*/2);
  return lstm_extractor_->Forward(seq, batch.seq_mask);
}

MissModule::ViewPair MissModule::SampleSequencePair(const nn::Tensor& reps,
                                                    const data::Batch& batch) {
  // reps: [B, L, D] per-position interest representations (SA/LSTM paths).
  const int64_t b_dim = reps.dim(0);
  const int64_t l_dim = reps.dim(1);
  const int64_t d_dim = reps.dim(2);
  nn::Tensor as4d = nn::Reshape(reps, {b_dim, 1, l_dim, d_dim});

  std::vector<int64_t> first(b_dim, 0), second(b_dim, 0);
  const int64_t max_h = config_.long_range ? config_.H : 1;
  for (int64_t b = 0; b < b_dim; ++b) {
    const int64_t valid =
        std::max<int64_t>(1, std::min<int64_t>(l_dim, batch.lengths[b]));
    if (valid == 1) continue;
    const int64_t h =
        std::min<int64_t>(SampleDistanceUnits(max_h), valid - 1);
    const int64_t l = rng_.UniformInt(valid - h);
    first[b] = l;
    second[b] = l + h;
  }
  return {nn::GatherInterest(as4d, first), nn::GatherInterest(as4d, second)};
}

SslLossResult MissModule::ComputeLoss(models::CtrModel& model,
                                      const data::Batch& batch) {
  SslLossResult result;
  nn::Tensor c = model.embeddings().SequenceTensor(batch);  // [B, J, L, K]
  MISS_CHECK_EQ(c.dim(1), j_dim_);
  MISS_CHECK_EQ(c.dim(3), k_dim_);

  double similarity_sum = 0.0;
  int64_t similarity_count = 0;

  if (!config_.multi_interest) {
    // Sample-level SSL fallback (the /M variant).
    ViewPair views = SampleLevelViews(c, batch);
    InfoNceResult nce = InfoNce(EncodeInterestView(views.first),
                                EncodeInterestView(views.second), config_.tau);
    result.interest_loss = nce.loss;
    result.mean_pair_similarity = nce.mean_positive_similarity;
    return result;
  }

  // -- Interest-level branch (Eq. 9, 11, 13, 15) -------------------------------
  std::vector<nn::Tensor> interests;  // CNN path only
  nn::Tensor sequence_reps;           // SA/LSTM paths
  if (config_.extractor == MissConfig::Extractor::kCnn) {
    interests = ExtractInterests(c);
  } else if (config_.extractor == MissConfig::Extractor::kSelfAttention) {
    sequence_reps = ExtractWithSelfAttention(c, batch);
  } else {
    sequence_reps = ExtractWithLstm(c, batch);
  }

  nn::Tensor interest_loss;
  for (int64_t p = 0; p < config_.P; ++p) {
    ViewPair views = config_.extractor == MissConfig::Extractor::kCnn
                         ? SampleInterestPair(interests, batch)
                         : SampleSequencePair(sequence_reps, batch);
    InfoNceResult nce = InfoNce(EncodeInterestView(views.first),
                                EncodeInterestView(views.second), config_.tau);
    interest_loss = interest_loss.defined()
                        ? nn::Add(interest_loss, nce.loss)
                        : nce.loss;
    similarity_sum += nce.mean_positive_similarity;
    ++similarity_count;
  }
  result.interest_loss =
      nn::MulScalar(interest_loss, 1.0f / static_cast<float>(config_.P));

  // -- Feature-level branch (Eq. 10, 12, 14, 16) -------------------------------
  if (config_.fine_grained &&
      config_.extractor == MissConfig::Extractor::kCnn) {
    nn::Tensor feature_loss;
    for (int64_t q = 0; q < config_.Q; ++q) {
      ViewPair views = SampleFeaturePair(interests, batch);
      InfoNceResult nce = InfoNce(enc_if_->Forward(views.first),
                                  enc_if_->Forward(views.second), config_.tau);
      feature_loss = feature_loss.defined() ? nn::Add(feature_loss, nce.loss)
                                            : nce.loss;
    }
    result.feature_loss =
        nn::MulScalar(feature_loss, 1.0f / static_cast<float>(config_.Q));
  }

  result.mean_pair_similarity =
      similarity_count > 0 ? similarity_sum / similarity_count : 0.0;
  return result;
}

}  // namespace miss::core
