// Interface for auxiliary self-supervised learning components that plug into
// CTR training (paper Section IV-C). MISS and all the competing SSL methods
// of Table VI implement this.

#ifndef MISS_CORE_SSL_METHOD_H_
#define MISS_CORE_SSL_METHOD_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "models/ctr_model.h"
#include "nn/tensor.h"

namespace miss::core {

struct SslLossResult {
  // Interest-level contrastive loss, Eq. (15). Undefined tensor = absent.
  nn::Tensor interest_loss;
  // Feature-level contrastive loss, Eq. (16). Undefined tensor = absent.
  nn::Tensor feature_loss;
  // Mean cosine similarity of the positive view pairs produced this step
  // (the quantity plotted in Figure 5).
  double mean_pair_similarity = 0.0;
};

class SslMethod {
 public:
  virtual ~SslMethod() = default;

  // Computes the auxiliary losses for one batch. The returned graph shares
  // embedding nodes with `model` so gradients flow into the shared tables.
  virtual SslLossResult ComputeLoss(models::CtrModel& model,
                                    const data::Batch& batch) = 0;

  // Parameters owned by the SSL component itself (encoders, kernels), to be
  // optimized jointly with the model.
  virtual std::vector<nn::Tensor> TrainableParameters() const = 0;

  virtual std::string name() const = 0;
};

}  // namespace miss::core

#endif  // MISS_CORE_SSL_METHOD_H_
