// Differentiable tensor operations.
//
// All ops are free functions returning new tensors wired into the autograd
// tape (see tensor.h). Binary arithmetic follows numpy broadcasting rules.
// Every op's backward pass is verified against central finite differences in
// tests/nn_ops_grad_test.cc.

#ifndef MISS_NN_OPS_H_
#define MISS_NN_OPS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "nn/tensor.h"

namespace miss::nn {

// -- Broadcast arithmetic ----------------------------------------------------

Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);

Tensor AddScalar(const Tensor& a, float s);
Tensor MulScalar(const Tensor& a, float s);
Tensor Neg(const Tensor& a);

// -- Elementwise nonlinearities ----------------------------------------------

Tensor Relu(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Exp(const Tensor& a);
// Natural log of (a + eps); eps guards against log(0).
Tensor Log(const Tensor& a, float eps = 0.0f);
Tensor Sqrt(const Tensor& a);
Tensor Square(const Tensor& a);

// -- Linear algebra ------------------------------------------------------------

// a: [..., M, K] x b: [K, N] -> [..., M, N]. Leading dims of `a` are
// flattened; `b` must be 2-D. This is the workhorse behind Linear layers.
Tensor MatMul(const Tensor& a, const Tensor& b);

// a: [..., M, K] x b: [..., K, N] with identical leading dims
// -> [..., M, N]. Used by attention.
Tensor BatchMatMul(const Tensor& a, const Tensor& b);

// Swaps the last two axes: [..., M, N] -> [..., N, M].
Tensor TransposeLast2(const Tensor& a);

// -- Shape manipulation --------------------------------------------------------

// Same data, new shape (sizes must match). Gradient flows through.
Tensor Reshape(const Tensor& a, std::vector<int64_t> shape);

// Concatenates along `axis` (negative axes allowed).
Tensor Concat(const std::vector<Tensor>& parts, int axis);

// Contiguous slice [start, start+len) along `axis`.
Tensor Slice(const Tensor& a, int axis, int64_t start, int64_t len);

// -- Reductions ------------------------------------------------------------------

Tensor SumAll(const Tensor& a);
Tensor MeanAll(const Tensor& a);
// Reduce a single axis. keepdims retains the axis with size 1.
Tensor SumAxis(const Tensor& a, int axis, bool keepdims = false);
Tensor MeanAxis(const Tensor& a, int axis, bool keepdims = false);

// -- Softmax / losses ---------------------------------------------------------------

// Numerically stable softmax over the last axis.
Tensor SoftmaxLastDim(const Tensor& a);

// Softmax over the last axis where mask==0 positions receive zero
// probability. `mask` is a raw (non-differentiable) buffer of the same total
// size as `a`, with entries in {0, 1}. Rows that are entirely masked yield
// all-zero probabilities.
Tensor MaskedSoftmaxLastDim(const Tensor& a, const std::vector<float>& mask);

// InfoNCE core: given a similarity-logit matrix s of shape [B, B] whose
// diagonal holds positive-pair logits, returns
//   (1/B) * sum_b [ logsumexp_c s[b, c] - s[b, b] ]
// This is Eq. (15)/(16) of the paper once s = cos-sim / tau.
Tensor DiagonalNllFromLogits(const Tensor& s);

// Mean binary cross-entropy over a batch of logits (shape [B]) with
// non-differentiable 0/1 labels. Numerically stable (softplus form).
Tensor BceWithLogitsLoss(const Tensor& logits,
                         const std::vector<float>& labels);

// -- Normalization / regularization -----------------------------------------------

// L2-normalizes along the last axis: y = x / max(||x||, eps).
Tensor RowL2Normalize(const Tensor& a, float eps = 1e-8f);

// Inverted dropout. Identity when !training or p == 0.
Tensor Dropout(const Tensor& a, float p, bool training, common::Rng& rng);

// -- Gather / scatter -----------------------------------------------------------------

// table: [V, K]; ids: flat index buffer with logical shape `leading_shape`.
// Returns [leading_shape..., K]. Negative ids produce zero rows and receive
// no gradient (used for padding).
Tensor EmbeddingLookup(const Tensor& table, const std::vector<int64_t>& ids,
                       std::vector<int64_t> leading_shape);

// x: [B, L, K]; idx: B*T indices into [0, L). Returns [B, T, K] where
// out[b, t] = x[b, idx[b*T + t]]. Used by SIM's soft-search top-k stage.
Tensor SelectTimeSteps(const Tensor& x, const std::vector<int64_t>& idx,
                       int64_t t_count);

// g: [B, J, L, K]; l_idx: one time index per batch row. Returns [B, J*K]:
// the flattened interest representation Flat(G_m[:, l, :]) of Eq. (20),
// selected per sample.
Tensor GatherInterest(const Tensor& g, const std::vector<int64_t>& l_idx);

// g: [B, J, L, K]; (j_idx, l_idx): one (field, time) pair per batch row.
// Returns [B, K]: the fine-grained feature-level view of Eq. (24).
Tensor GatherFeatureVector(const Tensor& g, const std::vector<int64_t>& j_idx,
                           const std::vector<int64_t>& l_idx);

// -- MISS convolutions (Eq. 19 and Eq. 22) --------------------------------------------

// c: [B, J, L, K]; kernel: [m]. Depth-wise convolution along the time axis
// with the kernel shared across fields and channels:
//   out[b, j, l, k] = sum_i c[b, j, l+i, k] * kernel[i],  out: [B,J,L-m+1,K]
Tensor HorizontalConv(const Tensor& c, const Tensor& kernel);

// g: [B, J, L, K]; kernel: [n]. Depth-wise convolution along the field axis:
//   out[b, j, l, k] = sum_i g[b, j+i, l, k] * kernel[i],  out: [B,J-n+1,L,K]
Tensor VerticalConv(const Tensor& g, const Tensor& kernel);

// -- Utilities -------------------------------------------------------------------------

// Result shape of broadcasting a against b; aborts if incompatible.
std::vector<int64_t> BroadcastShape(const std::vector<int64_t>& a,
                                    const std::vector<int64_t>& b);

}  // namespace miss::nn

#endif  // MISS_NN_OPS_H_
