// First-order optimizers. Adam is the paper's choice (Section VI-A5);
// SGD is kept for tests and ablations. Both support decoupled L2
// regularization via weight_decay (the paper tunes the "L2 norm
// regularization weight").

#ifndef MISS_NN_OPTIMIZER_H_
#define MISS_NN_OPTIMIZER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "nn/tensor.h"

namespace miss::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  // Applies one update using the gradients accumulated in `params`.
  virtual void Step(const std::vector<Tensor>& params) = 0;

  // Clears gradients ahead of the next backward pass.
  static void ZeroGrad(const std::vector<Tensor>& params);
};

class Sgd : public Optimizer {
 public:
  explicit Sgd(float lr, float weight_decay = 0.0f)
      : lr_(lr), weight_decay_(weight_decay) {}

  void Step(const std::vector<Tensor>& params) override;

 private:
  float lr_;
  float weight_decay_;
};

class Adam : public Optimizer {
 public:
  explicit Adam(float lr, float weight_decay = 0.0f, float beta1 = 0.9f,
                float beta2 = 0.999f, float eps = 1e-8f)
      : lr_(lr),
        weight_decay_(weight_decay),
        beta1_(beta1),
        beta2_(beta2),
        eps_(eps) {}

  void Step(const std::vector<Tensor>& params) override;

 private:
  struct State {
    std::vector<float> m;
    std::vector<float> v;
    int64_t t = 0;
  };

  float lr_;
  float weight_decay_;
  float beta1_;
  float beta2_;
  float eps_;
  std::unordered_map<Node*, State> state_;
};

// Scales all gradients so their global L2 norm is at most `max_norm`.
// Returns the pre-clip norm.
double ClipGradNorm(const std::vector<Tensor>& params, double max_norm);

}  // namespace miss::nn

#endif  // MISS_NN_OPTIMIZER_H_
