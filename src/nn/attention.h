// Multi-head self-attention over a sequence of vectors.
// Used by AutoInt (+), FiGNN edge attention, DSIN-style session modeling
// and the MISS-SA extractor ablation.

#ifndef MISS_NN_ATTENTION_H_
#define MISS_NN_ATTENTION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/layers.h"
#include "nn/module.h"

namespace miss::nn {

class MultiHeadSelfAttention : public Module {
 public:
  // dim must be divisible by num_heads. If `residual`, the output is
  // relu(x + attention(x)) as in AutoInt.
  MultiHeadSelfAttention(int64_t dim, int64_t num_heads, bool residual,
                         common::Rng& rng);

  // x: [B, L, dim]; mask: per-position key mask [B, L] (1 = valid) or empty
  // for no masking. Returns [B, L, dim].
  Tensor Forward(const Tensor& x, const std::vector<float>& mask) const;

 private:
  int64_t dim_;
  int64_t num_heads_;
  int64_t head_dim_;
  bool residual_;
  std::unique_ptr<Linear> wq_, wk_, wv_, wo_;
};

}  // namespace miss::nn

#endif  // MISS_NN_ATTENTION_H_
