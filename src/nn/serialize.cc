#include "nn/serialize.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>

namespace miss::nn {

namespace {

constexpr char kMagic[8] = {'M', 'I', 'S', 'S', 'C', 'K', 'P', 'T'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool WriteBytes(std::FILE* f, const void* data, size_t n) {
  return std::fwrite(data, 1, n, f) == n;
}

bool ReadBytes(std::FILE* f, void* data, size_t n) {
  return std::fread(data, 1, n, f) == n;
}

}  // namespace

bool SaveParameters(const std::vector<Tensor>& params,
                    const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) return false;

  if (!WriteBytes(f.get(), kMagic, sizeof(kMagic))) return false;
  const uint64_t count = params.size();
  if (!WriteBytes(f.get(), &count, sizeof(count))) return false;

  for (const Tensor& p : params) {
    const uint64_t ndim = p.shape().size();
    if (!WriteBytes(f.get(), &ndim, sizeof(ndim))) return false;
    if (!WriteBytes(f.get(), p.shape().data(), ndim * sizeof(int64_t))) {
      return false;
    }
    if (!WriteBytes(f.get(), p.value().data(),
                    p.value().size() * sizeof(float))) {
      return false;
    }
  }
  return true;
}

bool LoadParameters(const std::vector<Tensor>& params,
                    const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) return false;

  char magic[8];
  if (!ReadBytes(f.get(), magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return false;
  }
  uint64_t count = 0;
  if (!ReadBytes(f.get(), &count, sizeof(count))) return false;
  if (count != params.size()) return false;

  // Stage everything first so a partial read can't corrupt the model.
  std::vector<std::vector<float>> staged(params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    uint64_t ndim = 0;
    if (!ReadBytes(f.get(), &ndim, sizeof(ndim))) return false;
    std::vector<int64_t> shape(ndim);
    if (!ReadBytes(f.get(), shape.data(), ndim * sizeof(int64_t))) {
      return false;
    }
    if (shape != params[i].shape()) return false;
    staged[i].resize(params[i].size());
    if (!ReadBytes(f.get(), staged[i].data(),
                   staged[i].size() * sizeof(float))) {
      return false;
    }
  }
  for (size_t i = 0; i < params.size(); ++i) {
    params[i].node()->value = std::move(staged[i]);
  }
  return true;
}

}  // namespace miss::nn
