#include "nn/serialize.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <sstream>

#include "common/logging.h"

namespace miss::nn {

namespace {

// First 7 header bytes. The 8th byte is the version: kCheckpointVersion for
// current files, 'T' for legacy files whose magic was "MISSCKPT".
constexpr char kMagic[7] = {'M', 'I', 'S', 'S', 'C', 'K', 'P'};
constexpr uint8_t kLegacyVersion = 'T';

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool WriteBytes(std::FILE* f, const void* data, size_t n) {
  return std::fwrite(data, 1, n, f) == n;
}

bool ReadBytes(std::FILE* f, void* data, size_t n) {
  return std::fread(data, 1, n, f) == n;
}

std::string ShapeToString(const std::vector<int64_t>& shape) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ",";
    os << shape[i];
  }
  os << "]";
  return os.str();
}

bool WriteTo(std::FILE* f, const std::vector<Tensor>& params) {
  if (!WriteBytes(f, kMagic, sizeof(kMagic))) return false;
  const uint8_t version = kCheckpointVersion;
  if (!WriteBytes(f, &version, sizeof(version))) return false;
  const uint64_t count = params.size();
  if (!WriteBytes(f, &count, sizeof(count))) return false;

  for (const Tensor& p : params) {
    const uint64_t ndim = p.shape().size();
    if (!WriteBytes(f, &ndim, sizeof(ndim))) return false;
    if (!WriteBytes(f, p.shape().data(), ndim * sizeof(int64_t))) {
      return false;
    }
    if (!WriteBytes(f, p.value().data(), p.value().size() * sizeof(float))) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool SaveParameters(const std::vector<Tensor>& params,
                    const std::string& path) {
  // Stream to a sibling and rename into place so a crash mid-save can never
  // truncate an existing checkpoint at `path`.
  const std::string tmp_path = path + ".tmp";
  {
    FilePtr f(std::fopen(tmp_path.c_str(), "wb"));
    if (f == nullptr) return false;
    if (!WriteTo(f.get(), params)) {
      f.reset();
      std::remove(tmp_path.c_str());
      return false;
    }
    if (std::fflush(f.get()) != 0) {
      f.reset();
      std::remove(tmp_path.c_str());
      return false;
    }
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return false;
  }
  return true;
}

bool LoadParameters(const std::vector<Tensor>& params,
                    const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) return false;

  char magic[7];
  if (!ReadBytes(f.get(), magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return false;
  }
  uint8_t version = 0;
  if (!ReadBytes(f.get(), &version, sizeof(version))) return false;
  if (version != kCheckpointVersion && version != kLegacyVersion) {
    MISS_LOG(WARNING) << "checkpoint " << path
                      << ": unsupported format version "
                      << static_cast<int>(version);
    return false;
  }
  uint64_t count = 0;
  if (!ReadBytes(f.get(), &count, sizeof(count))) return false;
  if (count != params.size()) {
    MISS_LOG(WARNING) << "checkpoint " << path << ": holds " << count
                      << " tensors but the model expects " << params.size();
    return false;
  }

  // Stage everything first so a partial read can't corrupt the model.
  std::vector<std::vector<float>> staged(params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    uint64_t ndim = 0;
    if (!ReadBytes(f.get(), &ndim, sizeof(ndim))) return false;
    std::vector<int64_t> shape(ndim);
    if (!ReadBytes(f.get(), shape.data(), ndim * sizeof(int64_t))) {
      return false;
    }
    if (shape != params[i].shape()) {
      MISS_LOG(WARNING) << "checkpoint " << path << ": tensor " << i
                        << " has shape " << ShapeToString(shape)
                        << " but the model expects "
                        << params[i].ShapeString();
      return false;
    }
    staged[i].resize(params[i].size());
    if (!ReadBytes(f.get(), staged[i].data(),
                   staged[i].size() * sizeof(float))) {
      return false;
    }
  }
  for (size_t i = 0; i < params.size(); ++i) {
    params[i].node()->value = std::move(staged[i]);
  }
  return true;
}

}  // namespace miss::nn
