#include "nn/tensor.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <sstream>
#include <unordered_set>

namespace miss::nn {

namespace {
std::atomic<int64_t> g_total_nodes{0};
std::atomic<int64_t> g_live_nodes{0};
std::atomic<int64_t> g_peak_live_nodes{0};

// Nesting depth of InferenceScope on this thread; > 0 disables the tape.
thread_local int t_inference_depth = 0;

// Monotonic per-thread allocation counters read via GetThreadAllocCounters.
thread_local int64_t t_nodes_created = 0;
thread_local int64_t t_bytes_allocated = 0;
}  // namespace

InferenceScope::InferenceScope() { ++t_inference_depth; }

InferenceScope::~InferenceScope() { --t_inference_depth; }

bool InferenceMode() { return t_inference_depth > 0; }

namespace internal {

void NodeCreated() {
  ++t_nodes_created;
  g_total_nodes.fetch_add(1, std::memory_order_relaxed);
  const int64_t live = g_live_nodes.fetch_add(1, std::memory_order_relaxed) + 1;
  int64_t peak = g_peak_live_nodes.load(std::memory_order_relaxed);
  while (live > peak && !g_peak_live_nodes.compare_exchange_weak(
                            peak, live, std::memory_order_relaxed)) {
  }
}

void NodeDestroyed() {
  g_live_nodes.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace internal

TensorAllocStats GetTensorAllocStats() {
  TensorAllocStats stats;
  stats.total_nodes = g_total_nodes.load(std::memory_order_relaxed);
  stats.live_nodes = g_live_nodes.load(std::memory_order_relaxed);
  stats.peak_live_nodes = g_peak_live_nodes.load(std::memory_order_relaxed);
  return stats;
}

void ResetTensorAllocStats() {
  g_total_nodes.store(0, std::memory_order_relaxed);
  g_peak_live_nodes.store(g_live_nodes.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
}

ThreadAllocCounters GetThreadAllocCounters() {
  ThreadAllocCounters c;
  c.nodes = t_nodes_created;
  c.bytes = t_bytes_allocated;
  return c;
}

int64_t NumElements(const std::vector<int64_t>& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    MISS_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

Tensor Tensor::Zeros(std::vector<int64_t> shape, bool requires_grad) {
  return Full(std::move(shape), 0.0f, requires_grad);
}

Tensor Tensor::Full(std::vector<int64_t> shape, float fill,
                    bool requires_grad) {
  const int64_t n = NumElements(shape);
  return FromData(std::move(shape), std::vector<float>(n, fill),
                  requires_grad);
}

Tensor Tensor::FromData(std::vector<int64_t> shape, std::vector<float> data,
                        bool requires_grad) {
  MISS_CHECK_EQ(NumElements(shape), static_cast<int64_t>(data.size()));
  t_bytes_allocated += static_cast<int64_t>(data.size() * sizeof(float));
  Tensor t;
  t.node_ = std::make_shared<Node>();
  t.node_->shape = std::move(shape);
  t.node_->value = std::move(data);
  t.node_->requires_grad = requires_grad;
  return t;
}

Tensor Tensor::Scalar(float v, bool requires_grad) {
  return FromData({1}, {v}, requires_grad);
}

Tensor Tensor::RandomNormal(std::vector<int64_t> shape, float stddev,
                            common::Rng& rng, bool requires_grad) {
  const int64_t n = NumElements(shape);
  std::vector<float> data(n);
  for (auto& x : data) x = static_cast<float>(rng.Normal(0.0, stddev));
  return FromData(std::move(shape), std::move(data), requires_grad);
}

Tensor Tensor::XavierUniform(std::vector<int64_t> shape, common::Rng& rng,
                             bool requires_grad) {
  MISS_CHECK_GE(shape.size(), 1u);
  const int64_t fan_out = shape.back();
  int64_t fan_in = 1;
  for (size_t i = 0; i + 1 < shape.size(); ++i) fan_in *= shape[i];
  if (fan_in == 0) fan_in = 1;
  const double limit = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  const int64_t n = NumElements(shape);
  std::vector<float> data(n);
  for (auto& x : data) x = static_cast<float>(rng.Uniform(-limit, limit));
  return FromData(std::move(shape), std::move(data), requires_grad);
}

int64_t Tensor::dim(int i) const {
  const auto& s = node()->shape;
  if (i < 0) i += static_cast<int>(s.size());
  MISS_CHECK_GE(i, 0);
  MISS_CHECK_LT(i, static_cast<int>(s.size()));
  return s[i];
}

float Tensor::item() const {
  MISS_CHECK_EQ(size(), 1);
  return node()->value[0];
}

std::string Tensor::ShapeString() const {
  std::ostringstream os;
  os << "[";
  const auto& s = node()->shape;
  for (size_t i = 0; i < s.size(); ++i) {
    if (i) os << ",";
    os << s[i];
  }
  os << "]";
  return os.str();
}

Tensor Detach(const Tensor& t) {
  return Tensor::FromData(t.shape(), t.value(), /*requires_grad=*/false);
}

namespace internal {

Tensor MakeResult(std::vector<int64_t> shape, std::vector<float> value,
                  std::vector<Tensor> parents,
                  std::function<void(Node&)> backward) {
  Tensor out = Tensor::FromData(std::move(shape), std::move(value));
  if (InferenceMode()) return out;  // forward-only: never build the tape
  bool needs_grad = false;
  for (const Tensor& p : parents) {
    if (p.defined() && p.requires_grad()) {
      needs_grad = true;
      break;
    }
  }
  if (!needs_grad) return out;  // constant: keep the tape empty
  Node* node = out.node();
  node->requires_grad = true;
  node->parents.reserve(parents.size());
  for (const Tensor& p : parents) {
    if (p.defined()) node->parents.push_back(p.node_ptr());
  }
  node->backward = [node, fn = std::move(backward)]() { fn(*node); };
  return out;
}

}  // namespace internal

void Backward(const Tensor& loss) {
  Node* root = loss.node();
  MISS_CHECK(root->requires_grad)
      << "Backward() on a tensor with no gradient path";

  // Iterative post-order topological sort over the tape.
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  struct Frame {
    Node* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  stack.push_back({root, 0});
  visited.insert(root);
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_parent < frame.node->parents.size()) {
      Node* parent = frame.node->parents[frame.next_parent++].get();
      if (parent->requires_grad && visited.insert(parent).second) {
        stack.push_back({parent, 0});
      }
    } else {
      order.push_back(frame.node);
      stack.pop_back();
    }
  }

  // Seed gradient: d(loss)/d(loss) = 1 elementwise.
  auto& seed = root->EnsureGrad();
  for (auto& g : seed) g += 1.0f;

  // Reverse topological order: every node's grad is complete before its
  // backward runs.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    if (node->backward && !node->grad.empty()) node->backward();
  }
}

}  // namespace miss::nn
