// Base class for parameterized network components.
//
// A Module owns trainable parameters (requires_grad tensors) and may
// aggregate child modules; Parameters() walks the tree so optimizers see a
// flat list. Modules are neither copyable nor movable: they are identity
// objects referenced by the models that own them.

#ifndef MISS_NN_MODULE_H_
#define MISS_NN_MODULE_H_

#include <vector>

#include "nn/tensor.h"

namespace miss::nn {

class Module {
 public:
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;
  virtual ~Module() = default;

  // All trainable parameters of this module and its registered children.
  std::vector<Tensor> Parameters() const {
    std::vector<Tensor> out = params_;
    for (const Module* child : children_) {
      std::vector<Tensor> sub = child->Parameters();
      out.insert(out.end(), sub.begin(), sub.end());
    }
    return out;
  }

  // Total number of scalar parameters (for complexity reporting).
  int64_t NumParameters() const {
    int64_t n = 0;
    for (const Tensor& p : Parameters()) n += p.size();
    return n;
  }

 protected:
  // Registers `t` as a trainable parameter and returns it.
  Tensor AddParameter(Tensor t) {
    MISS_CHECK(t.requires_grad());
    params_.push_back(t);
    return t;
  }

  // Registers a child whose parameters are reported by Parameters().
  // The child must outlive this module (typically a member).
  void RegisterChild(Module* child) { children_.push_back(child); }

 private:
  std::vector<Tensor> params_;
  std::vector<Module*> children_;
};

}  // namespace miss::nn

#endif  // MISS_NN_MODULE_H_
