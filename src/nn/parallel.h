// nn::ParallelFor — intra-op range partitioning over the shared thread pool.
//
// ParallelFor(begin, end, grain, fn) calls fn(chunk_begin, chunk_end) for
// disjoint, contiguous, ascending chunks that exactly cover [begin, end);
// each index lands in one chunk. Chunks may run concurrently on the
// common::ThreadPool.
//
// The bitwise-parallel rule (DESIGN.md "Threading model"): kernels must
// (a) write each output element from exactly one chunk and (b) keep the
// within-chunk loop order identical to the serial loop. Floating-point
// accumulation order per output element is then independent of the thread
// count and chunking, so results are bitwise identical to serial execution.
// Reductions that fold many chunks into one scalar cannot keep that order
// and stay serial (e.g. SumAll's forward).
//
// With an effective intra-op thread count of 1, a range no bigger than
// `grain`, or when already inside a pool task, fn(begin, end) runs inline on
// the caller — the exact serial path with zero pool involvement and zero
// std::function construction (the template below only type-erases on the
// parallel branch).

#ifndef MISS_NN_PARALLEL_H_
#define MISS_NN_PARALLEL_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>

namespace miss::nn {

namespace internal {

// True when the parallel dispatch path should be taken for `range` items of
// at least `grain` per chunk (threads > 1, enough work, not nested).
bool ShouldParallelize(int64_t range, int64_t grain);

// Chunks [begin, end) and dispatches onto the global pool. Only called on
// the parallel branch.
void ParallelForImpl(int64_t begin, int64_t end, int64_t grain,
                     const std::function<void(int64_t, int64_t)>& fn);

}  // namespace internal

template <typename Fn>
inline void ParallelFor(int64_t begin, int64_t end, int64_t grain, Fn&& fn) {
  const int64_t range = end - begin;
  if (range <= 0) return;
  if (!internal::ShouldParallelize(range, grain)) {
    fn(begin, end);
    return;
  }
  internal::ParallelForImpl(begin, end, grain, std::forward<Fn>(fn));
}

// Smallest chunk length that amortizes one task dispatch, given the
// approximate flop count per index. Keeps tiny ops (small rows, small
// batches) on the serial path automatically.
inline int64_t GrainFor(int64_t cost_per_index) {
  constexpr int64_t kMinTaskCost = 1 << 14;  // ~16k flops per task
  return std::max<int64_t>(1, kMinTaskCost / std::max<int64_t>(cost_per_index, 1));
}

}  // namespace miss::nn

#endif  // MISS_NN_PARALLEL_H_
