#include "nn/rnn.h"

#include <utility>

#include "nn/ops.h"

namespace miss::nn {

namespace {

// Extracts time step t of a [B, L] float mask as a constant [B, 1] tensor.
Tensor MaskColumn(const std::vector<float>& mask, int64_t b_dim, int64_t l_dim,
                  int64_t t) {
  std::vector<float> col(b_dim);
  for (int64_t b = 0; b < b_dim; ++b) col[b] = mask[b * l_dim + t];
  return Tensor::FromData({b_dim, 1}, std::move(col));
}

// h_keep = m * h_new + (1 - m) * h_prev
Tensor MaskedUpdate(const Tensor& h_new, const Tensor& h_prev,
                    const Tensor& m) {
  return Add(Mul(m, h_new), Mul(AddScalar(Neg(m), 1.0f), h_prev));
}

}  // namespace

GruCell::GruCell(int64_t in_dim, int64_t hidden_dim, common::Rng& rng)
    : hidden_dim_(hidden_dim) {
  xz_ = std::make_unique<Linear>(in_dim, hidden_dim, rng);
  hz_ = std::make_unique<Linear>(hidden_dim, hidden_dim, rng);
  xr_ = std::make_unique<Linear>(in_dim, hidden_dim, rng);
  hr_ = std::make_unique<Linear>(hidden_dim, hidden_dim, rng);
  xn_ = std::make_unique<Linear>(in_dim, hidden_dim, rng);
  hn_ = std::make_unique<Linear>(hidden_dim, hidden_dim, rng);
  for (Module* m : {static_cast<Module*>(xz_.get()), (Module*)hz_.get(),
                    (Module*)xr_.get(), (Module*)hr_.get(), (Module*)xn_.get(),
                    (Module*)hn_.get()}) {
    RegisterChild(m);
  }
}

GruCell::Gates GruCell::ComputeGates(const Tensor& x, const Tensor& h) const {
  Tensor z = Sigmoid(Add(xz_->Forward(x), hz_->Forward(h)));
  Tensor r = Sigmoid(Add(xr_->Forward(x), hr_->Forward(h)));
  Tensor n = Tanh(Add(xn_->Forward(x), hn_->Forward(Mul(r, h))));
  return {z, n};
}

Tensor GruCell::Forward(const Tensor& x, const Tensor& h) const {
  Gates g = ComputeGates(x, h);
  // h' = (1 - z) * n + z * h
  return Add(Mul(AddScalar(Neg(g.z), 1.0f), g.n), Mul(g.z, h));
}

Tensor GruCell::ForwardAttentional(const Tensor& x, const Tensor& h,
                                   const Tensor& attention) const {
  Gates g = ComputeGates(x, h);
  // AUGRU: z' = a * z, so low-attention steps barely move the state.
  Tensor z = Mul(attention, g.z);
  return Add(Mul(AddScalar(Neg(z), 1.0f), h), Mul(z, g.n));
}

LstmCell::LstmCell(int64_t in_dim, int64_t hidden_dim, common::Rng& rng)
    : hidden_dim_(hidden_dim) {
  xi_ = std::make_unique<Linear>(in_dim, hidden_dim, rng);
  hi_ = std::make_unique<Linear>(hidden_dim, hidden_dim, rng);
  xf_ = std::make_unique<Linear>(in_dim, hidden_dim, rng);
  hf_ = std::make_unique<Linear>(hidden_dim, hidden_dim, rng);
  xo_ = std::make_unique<Linear>(in_dim, hidden_dim, rng);
  ho_ = std::make_unique<Linear>(hidden_dim, hidden_dim, rng);
  xg_ = std::make_unique<Linear>(in_dim, hidden_dim, rng);
  hg_ = std::make_unique<Linear>(hidden_dim, hidden_dim, rng);
  for (Module* m :
       {(Module*)xi_.get(), (Module*)hi_.get(), (Module*)xf_.get(),
        (Module*)hf_.get(), (Module*)xo_.get(), (Module*)ho_.get(),
        (Module*)xg_.get(), (Module*)hg_.get()}) {
    RegisterChild(m);
  }
}

LstmCell::State LstmCell::Forward(const Tensor& x, const State& state) const {
  Tensor i = Sigmoid(Add(xi_->Forward(x), hi_->Forward(state.h)));
  Tensor f = Sigmoid(Add(xf_->Forward(x), hf_->Forward(state.h)));
  Tensor o = Sigmoid(Add(xo_->Forward(x), ho_->Forward(state.h)));
  Tensor g = Tanh(Add(xg_->Forward(x), hg_->Forward(state.h)));
  Tensor c = Add(Mul(f, state.c), Mul(i, g));
  Tensor h = Mul(o, Tanh(c));
  return {h, c};
}

GruRunner::GruRunner(int64_t in_dim, int64_t hidden_dim, common::Rng& rng) {
  cell_ = std::make_unique<GruCell>(in_dim, hidden_dim, rng);
  RegisterChild(cell_.get());
}

Tensor GruRunner::Forward(const Tensor& x,
                          const std::vector<float>& mask) const {
  MISS_CHECK_EQ(x.ndim(), 3);
  const int64_t b_dim = x.dim(0);
  const int64_t l_dim = x.dim(1);
  MISS_CHECK_EQ(static_cast<int64_t>(mask.size()), b_dim * l_dim);

  Tensor h = Tensor::Zeros({b_dim, cell_->hidden_dim()});
  std::vector<Tensor> states;
  states.reserve(l_dim);
  for (int64_t t = 0; t < l_dim; ++t) {
    Tensor xt = Reshape(Slice(x, /*axis=*/1, t, 1),
                        {b_dim, x.dim(2)});
    Tensor h_new = cell_->Forward(xt, h);
    h = MaskedUpdate(h_new, h, MaskColumn(mask, b_dim, l_dim, t));
    states.push_back(Reshape(h, {b_dim, 1, cell_->hidden_dim()}));
  }
  return Concat(states, /*axis=*/1);
}

LstmRunner::LstmRunner(int64_t in_dim, int64_t hidden_dim, common::Rng& rng) {
  cell_ = std::make_unique<LstmCell>(in_dim, hidden_dim, rng);
  RegisterChild(cell_.get());
}

Tensor LstmRunner::Forward(const Tensor& x,
                           const std::vector<float>& mask) const {
  MISS_CHECK_EQ(x.ndim(), 3);
  const int64_t b_dim = x.dim(0);
  const int64_t l_dim = x.dim(1);
  MISS_CHECK_EQ(static_cast<int64_t>(mask.size()), b_dim * l_dim);

  LstmCell::State state{Tensor::Zeros({b_dim, cell_->hidden_dim()}),
                        Tensor::Zeros({b_dim, cell_->hidden_dim()})};
  std::vector<Tensor> states;
  states.reserve(l_dim);
  for (int64_t t = 0; t < l_dim; ++t) {
    Tensor xt = Reshape(Slice(x, /*axis=*/1, t, 1), {b_dim, x.dim(2)});
    LstmCell::State next = cell_->Forward(xt, state);
    Tensor m = MaskColumn(mask, b_dim, l_dim, t);
    state.h = MaskedUpdate(next.h, state.h, m);
    state.c = MaskedUpdate(next.c, state.c, m);
    states.push_back(Reshape(state.h, {b_dim, 1, cell_->hidden_dim()}));
  }
  return Concat(states, /*axis=*/1);
}

}  // namespace miss::nn
