// Standard feed-forward building blocks: Linear, MLP, PReLU, Embedding.

#ifndef MISS_NN_LAYERS_H_
#define MISS_NN_LAYERS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "nn/module.h"
#include "nn/ops.h"
#include "nn/tensor.h"

namespace miss::nn {

// Activation applied between MLP layers.
enum class Activation { kNone, kRelu, kSigmoid, kTanh, kPRelu };

// Fully connected layer: y = x W + b, applied to the last axis of x.
class Linear : public Module {
 public:
  Linear(int64_t in_dim, int64_t out_dim, common::Rng& rng);

  // x: [..., in_dim] -> [..., out_dim]
  Tensor Forward(const Tensor& x) const;

  int64_t in_dim() const { return in_dim_; }
  int64_t out_dim() const { return out_dim_; }

 private:
  int64_t in_dim_;
  int64_t out_dim_;
  Tensor weight_;  // [in, out]
  Tensor bias_;    // [out]
};

// Parametric ReLU with a single learnable slope (used by DIN-style towers).
class PRelu : public Module {
 public:
  explicit PRelu(float init_slope = 0.25f);
  Tensor Forward(const Tensor& x) const;

 private:
  Tensor slope_;  // [1]
};

// Multi-layer perceptron. `dims` = {in, h1, ..., out}. The hidden
// activation is applied between layers; `output_activation` after the last.
class Mlp : public Module {
 public:
  Mlp(std::vector<int64_t> dims, Activation hidden, Activation output,
      common::Rng& rng);

  Tensor Forward(const Tensor& x) const;

  int64_t in_dim() const { return dims_.front(); }
  int64_t out_dim() const { return dims_.back(); }

 private:
  Tensor Activate(const Tensor& x, Activation act, size_t layer) const;

  std::vector<int64_t> dims_;
  Activation hidden_;
  Activation output_;
  std::vector<std::unique_ptr<Linear>> layers_;
  std::vector<std::unique_ptr<PRelu>> prelus_;  // one per layer if kPRelu
};

// Embedding table of shape [vocab, dim]. Index -1 denotes padding and maps
// to a zero vector with no gradient.
class Embedding : public Module {
 public:
  Embedding(int64_t vocab, int64_t dim, common::Rng& rng,
            float init_stddev = 0.05f);

  // ids laid out in row-major `leading_shape` order; result
  // [leading_shape..., dim].
  Tensor Forward(const std::vector<int64_t>& ids,
                 std::vector<int64_t> leading_shape) const;

  const Tensor& table() const { return table_; }
  int64_t vocab() const { return table_.dim(0); }
  int64_t dim() const { return table_.dim(1); }

 private:
  Tensor table_;
};

}  // namespace miss::nn

#endif  // MISS_NN_LAYERS_H_
