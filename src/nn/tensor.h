// Dense float tensors with reverse-mode automatic differentiation.
//
// A Tensor is a cheap shared handle onto a graph node holding the value
// buffer, the (lazily allocated) gradient buffer, the shape, and — when the
// node was produced by a differentiable op — references to its parents and a
// backward closure. Graphs are built dynamically as ops execute (a "tape");
// nn::Backward(loss) topologically sorts the tape and propagates gradients.
//
// Conventions:
//   * dtype is always float32; shapes are row-major, batch-first.
//   * Gradient tracking is opt-in via requires_grad on leaf tensors
//     (parameters); it propagates to results automatically. Ops on
//     non-tracked inputs skip tape construction entirely, so inference is
//     allocation-light.
//   * The library does not use exceptions; shape errors abort via MISS_CHECK.

#ifndef MISS_NN_TENSOR_H_
#define MISS_NN_TENSOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace miss::nn {

class Tensor;

// Lightweight always-on allocation accounting (two relaxed atomic ops per
// node — negligible next to the value-buffer allocation). The telemetry run
// reporter surfaces peak_live_nodes as a proxy for tape memory pressure.
struct TensorAllocStats {
  int64_t total_nodes = 0;      // nodes created since last reset
  int64_t live_nodes = 0;       // currently alive
  int64_t peak_live_nodes = 0;  // high-water mark since last reset
};
TensorAllocStats GetTensorAllocStats();
// Zeroes total and drops the peak to the current live count.
void ResetTensorAllocStats();

namespace internal {
void NodeCreated();
void NodeDestroyed();
}  // namespace internal

// Per-thread monotonic allocation counters: every graph node created on the
// calling thread bumps `nodes`, every value buffer installed by
// Tensor::FromData bumps `bytes`. Plain thread_local increments — no
// atomics — so the cost is negligible even on the serving hot path, and
// the counters never reset (deltas, not levels, are the unit of use).
struct ThreadAllocCounters {
  int64_t nodes = 0;
  int64_t bytes = 0;
};
ThreadAllocCounters GetThreadAllocCounters();

// RAII delta over the calling thread's allocation counters: construct
// before the work, read nodes()/bytes() after. Because the underlying
// counters are monotonic, tallies nest and overlap freely — an inner tally
// is simply a sub-range of the outer one's delta.
//
//   nn::AllocTally tally;
//   model.Forward(batch, /*training=*/false);
//   histogram.Record(tally.nodes());
class AllocTally {
 public:
  AllocTally() : start_(GetThreadAllocCounters()) {}
  int64_t nodes() const { return GetThreadAllocCounters().nodes - start_.nodes; }
  int64_t bytes() const { return GetThreadAllocCounters().bytes - start_.bytes; }

 private:
  ThreadAllocCounters start_;
};

// Internal graph node. Users interact with Tensor handles; Node is exposed
// so optimizers can key state off stable node addresses.
struct Node {
  Node() { internal::NodeCreated(); }
  ~Node() { internal::NodeDestroyed(); }
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  std::vector<float> value;
  std::vector<float> grad;  // empty until gradients are first accumulated
  std::vector<int64_t> shape;
  std::vector<std::shared_ptr<Node>> parents;
  // Propagates this node's grad into parents' grads. Null for leaves.
  std::function<void()> backward;
  bool requires_grad = false;

  int64_t size() const {
    int64_t n = 1;
    for (int64_t d : shape) n *= d;
    return n;
  }

  // Ensures the grad buffer exists (zero-filled) and returns it.
  std::vector<float>& EnsureGrad() {
    if (grad.empty()) grad.assign(value.size(), 0.0f);
    return grad;
  }
};

class Tensor {
 public:
  // Null handle; most APIs require a non-null tensor.
  Tensor() = default;

  // -- Factories ------------------------------------------------------------

  static Tensor Zeros(std::vector<int64_t> shape, bool requires_grad = false);
  static Tensor Full(std::vector<int64_t> shape, float fill,
                     bool requires_grad = false);
  static Tensor FromData(std::vector<int64_t> shape, std::vector<float> data,
                         bool requires_grad = false);
  static Tensor Scalar(float v, bool requires_grad = false);
  // I.i.d. normal entries with the given stddev.
  static Tensor RandomNormal(std::vector<int64_t> shape, float stddev,
                             common::Rng& rng, bool requires_grad = false);
  // Xavier/Glorot uniform initialization for a [fan_in, fan_out] matrix
  // (generalized: fan_in = shape[0], fan_out = last dim).
  static Tensor XavierUniform(std::vector<int64_t> shape, common::Rng& rng,
                              bool requires_grad = false);

  // -- Introspection ----------------------------------------------------------

  bool defined() const { return node_ != nullptr; }
  const std::vector<int64_t>& shape() const { return node()->shape; }
  int64_t dim(int i) const;
  int ndim() const { return static_cast<int>(node()->shape.size()); }
  int64_t size() const { return node()->size(); }
  bool requires_grad() const { return node()->requires_grad; }

  std::vector<float>& value() { return node()->value; }
  const std::vector<float>& value() const { return node()->value; }
  // Gradient buffer (may be empty if never written).
  std::vector<float>& grad() { return node()->grad; }
  const std::vector<float>& grad() const { return node()->grad; }

  // Scalar convenience accessor; requires size() == 1.
  float item() const;

  // Flat element accessors.
  float at(int64_t i) const { return node()->value[i]; }
  void set(int64_t i, float v) { node()->value[i] = v; }

  std::shared_ptr<Node>& node_ptr() { return node_; }
  const std::shared_ptr<Node>& node_ptr() const { return node_; }
  Node* node() const {
    MISS_CHECK(node_ != nullptr) << "use of undefined Tensor";
    return node_.get();
  }

  std::string ShapeString() const;

 private:
  std::shared_ptr<Node> node_;
};

// Number of elements described by a shape.
int64_t NumElements(const std::vector<int64_t>& shape);

// Scoped forward-only mode: while any InferenceScope is alive on the current
// thread, ops skip tape construction entirely — results carry no parent
// edges, no backward closures, and requires_grad == false even when inputs
// are parameters. Intermediates are therefore freed as soon as their handles
// go out of scope, so a forward pass allocates only its live activations.
// The flag is thread-local: serving workers run under their own scope while
// a trainer thread keeps building tapes. Scopes nest.
//
//   {
//     nn::InferenceScope guard;
//     nn::Tensor logits = model.Forward(batch, /*training=*/false);
//   }  // tape-free; Backward() on `logits` would abort
class InferenceScope {
 public:
  InferenceScope();
  ~InferenceScope();
  InferenceScope(const InferenceScope&) = delete;
  InferenceScope& operator=(const InferenceScope&) = delete;
};

// True when an InferenceScope is active on the calling thread.
bool InferenceMode();

// Runs reverse-mode differentiation from `loss` (any shape; the seed
// gradient is 1 for every element). Gradients accumulate into each
// requires_grad node reachable from `loss`.
void Backward(const Tensor& loss);

// Creates a detached copy sharing no graph history (value is copied).
Tensor Detach(const Tensor& t);

namespace internal {

// Builds a result node wired to `parents` with the given backward closure.
// If no parent requires grad, the closure is dropped and the node is a
// constant (tape-free).
Tensor MakeResult(std::vector<int64_t> shape, std::vector<float> value,
                  std::vector<Tensor> parents,
                  std::function<void(Node&)> backward);

}  // namespace internal

}  // namespace miss::nn

#endif  // MISS_NN_TENSOR_H_
