// Parameter checkpointing.
//
// Parameters are serialized in registration order (the order returned by
// Module::Parameters()), which is deterministic for a given model
// configuration. The binary format is:
//
//   magic "MISSCKPT" | uint64 tensor_count
//   per tensor: uint64 ndim | int64 shape[ndim] | float data[numel]
//
// Little-endian, float32. Loading validates shapes and fails (returns
// false) on any mismatch without modifying the target tensors.

#ifndef MISS_NN_SERIALIZE_H_
#define MISS_NN_SERIALIZE_H_

#include <string>
#include <vector>

#include "nn/tensor.h"

namespace miss::nn {

// Writes `params` to `path`. Returns false on I/O failure.
bool SaveParameters(const std::vector<Tensor>& params,
                    const std::string& path);

// Reads a checkpoint into `params` (shapes must match exactly, in order).
// Returns false on I/O failure, bad magic, or any shape mismatch; in that
// case no tensor is modified.
bool LoadParameters(const std::vector<Tensor>& params,
                    const std::string& path);

}  // namespace miss::nn

#endif  // MISS_NN_SERIALIZE_H_
