// Parameter checkpointing.
//
// Parameters are serialized in registration order (the order returned by
// Module::Parameters()), which is deterministic for a given model
// configuration. The binary format is:
//
//   magic "MISSCKP" | uint8 version | uint64 tensor_count
//   per tensor: uint64 ndim | int64 shape[ndim] | float data[numel]
//
// Little-endian, float32. The version byte is 0x01 for files written today;
// legacy files (written before the header carried a version) spell
// "MISSCKPT" — their eighth byte 'T' is accepted as the legacy version and
// the payload layout is identical, so old checkpoints keep loading.
//
// Writes are atomic: SaveParameters streams to a ".tmp" sibling and renames
// it into place, so a crash mid-save never corrupts an existing checkpoint.
// Loading validates shapes and fails (returns false) on any mismatch
// without modifying the target tensors.

#ifndef MISS_NN_SERIALIZE_H_
#define MISS_NN_SERIALIZE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "nn/tensor.h"

namespace miss::nn {

// Current checkpoint format version (see file comment for the history).
inline constexpr uint8_t kCheckpointVersion = 0x01;

// Writes `params` to `path` via a temporary sibling + rename. Returns false
// on I/O failure (the temporary is cleaned up; `path` is left untouched).
bool SaveParameters(const std::vector<Tensor>& params,
                    const std::string& path);

// Reads a checkpoint into `params` (shapes must match exactly, in order).
// Returns false on I/O failure, bad magic/version, or any shape mismatch —
// logging which tensor index and shapes diverged — and in that case no
// tensor is modified.
bool LoadParameters(const std::vector<Tensor>& params,
                    const std::string& path);

}  // namespace miss::nn

#endif  // MISS_NN_SERIALIZE_H_
