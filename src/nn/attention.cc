#include "nn/attention.h"

#include <cmath>
#include <utility>

#include "nn/ops.h"

namespace miss::nn {

MultiHeadSelfAttention::MultiHeadSelfAttention(int64_t dim, int64_t num_heads,
                                               bool residual, common::Rng& rng)
    : dim_(dim),
      num_heads_(num_heads),
      head_dim_(dim / num_heads),
      residual_(residual) {
  MISS_CHECK_EQ(head_dim_ * num_heads_, dim_)
      << "dim must be divisible by num_heads";
  wq_ = std::make_unique<Linear>(dim, dim, rng);
  wk_ = std::make_unique<Linear>(dim, dim, rng);
  wv_ = std::make_unique<Linear>(dim, dim, rng);
  wo_ = std::make_unique<Linear>(dim, dim, rng);
  for (Module* m : {(Module*)wq_.get(), (Module*)wk_.get(), (Module*)wv_.get(),
                    (Module*)wo_.get()}) {
    RegisterChild(m);
  }
}

Tensor MultiHeadSelfAttention::Forward(const Tensor& x,
                                       const std::vector<float>& mask) const {
  MISS_CHECK_EQ(x.ndim(), 3);
  const int64_t b_dim = x.dim(0);
  const int64_t l_dim = x.dim(1);
  MISS_CHECK_EQ(x.dim(2), dim_);

  Tensor q = wq_->Forward(x);
  Tensor k = wk_->Forward(x);
  Tensor v = wv_->Forward(x);

  // Tile the key mask to [B, L, L]: every query row shares the key mask.
  std::vector<float> tiled_mask;
  if (!mask.empty()) {
    MISS_CHECK_EQ(static_cast<int64_t>(mask.size()), b_dim * l_dim);
    tiled_mask.resize(b_dim * l_dim * l_dim);
    for (int64_t b = 0; b < b_dim; ++b) {
      for (int64_t i = 0; i < l_dim; ++i) {
        for (int64_t j = 0; j < l_dim; ++j) {
          tiled_mask[(b * l_dim + i) * l_dim + j] = mask[b * l_dim + j];
        }
      }
    }
  }

  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  std::vector<Tensor> head_outputs;
  head_outputs.reserve(num_heads_);
  for (int64_t h = 0; h < num_heads_; ++h) {
    Tensor qh = Slice(q, /*axis=*/2, h * head_dim_, head_dim_);
    Tensor kh = Slice(k, /*axis=*/2, h * head_dim_, head_dim_);
    Tensor vh = Slice(v, /*axis=*/2, h * head_dim_, head_dim_);
    Tensor scores = MulScalar(BatchMatMul(qh, TransposeLast2(kh)), scale);
    Tensor probs = mask.empty() ? SoftmaxLastDim(scores)
                                : MaskedSoftmaxLastDim(scores, tiled_mask);
    head_outputs.push_back(BatchMatMul(probs, vh));
  }
  Tensor out = wo_->Forward(Concat(head_outputs, /*axis=*/2));
  if (residual_) out = Relu(Add(x, out));
  return out;
}

}  // namespace miss::nn
