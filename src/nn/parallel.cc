#include "nn/parallel.h"

#include <mutex>
#include <string>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace miss::nn::internal {

bool ShouldParallelize(int64_t range, int64_t grain) {
  if (range <= std::max<int64_t>(grain, 1)) return false;
  if (common::ThreadPool::InParallelRegion()) return false;
  return common::IntraOpThreads() > 1;
}

void ParallelForImpl(int64_t begin, int64_t end, int64_t grain,
                     const std::function<void(int64_t, int64_t)>& fn) {
  // Name pool threads for trace output the first time the pool is used.
  static std::once_flag hook_once;
  std::call_once(hook_once, [] {
    common::SetThreadPoolStartHook([](int index) {
      if (obs::Enabled()) {
        obs::SetCurrentThreadName("nn-pool-" + std::to_string(index));
      }
    });
  });

  const int64_t range = end - begin;
  const int threads = common::IntraOpThreads();
  if (grain < 1) grain = 1;

  // Aim for a few chunks per thread (load balancing across uneven rows)
  // without dropping below the grain.
  const int64_t target_chunks = static_cast<int64_t>(threads) * 4;
  int64_t chunk = (range + target_chunks - 1) / target_chunks;
  if (chunk < grain) chunk = grain;
  const int64_t num_chunks = (range + chunk - 1) / chunk;
  if (num_chunks <= 1) {
    fn(begin, end);
    return;
  }

  common::ThreadPool& pool = common::GlobalThreadPool();
  pool.EnsureThreads(threads);
  if (obs::Enabled()) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    registry.GetCounter("pool/parallel_regions").Add(1);
    registry.GetGauge("pool/threads")
        .Set(static_cast<double>(pool.num_threads()));
  }
  pool.ParallelRun(num_chunks, threads, [&](int64_t c) {
    const int64_t chunk_begin = begin + c * chunk;
    const int64_t chunk_end = std::min(end, chunk_begin + chunk);
    fn(chunk_begin, chunk_end);
  });
}

}  // namespace miss::nn::internal
