// Compiled inference plans: static forward execution for serving.
//
// The dynamic op layer re-derives shapes, dispatches per op, and heap-
// allocates every intermediate on each forward. For serving — where the
// model and the batch-size buckets are fixed at bundle load — PlanSet
// captures the forward once per bucket into a static InferencePlan:
//
//   * a topo-sorted op list with every shape resolved at compile time,
//   * all intermediates placed in one preallocated arena via liveness
//     analysis (values with disjoint lifetimes share storage),
//   * adjacent elementwise/activation ops fused into single loop nests and
//     GEMM bias/activation epilogues folded into the tile store,
//   * GEMM weight operands pre-packed into the register-tile layout,
//   * host-derived op attributes (embedding ids, attention masks, pooling
//     counts) bound to derivations from the raw data::Batch.
//
// Capture works by re-running the model's own Forward under a thread-local
// PlanTracer several times with distinct random probe batches: ops record
// themselves as they execute, leaves that differ across probes must match a
// known Batch derivation (otherwise the model is plan-incompatible and the
// caller keeps the dynamic InferenceScope path), and every compiled bucket
// is verified bitwise against the dynamic forward on fresh probes before
// the plan is accepted. Execution reuses the exact kernels (nn/kernels.h)
// and ParallelFor grains of the dynamic path, so plan scores are bit-for-bit
// identical to InferenceScope scores at every thread count.

#ifndef MISS_NN_PLAN_H_
#define MISS_NN_PLAN_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "nn/tensor.h"

namespace miss::nn {

// Op vocabulary of the tracer/executor. Kinds past kFusedChain are
// synthesized by the compiler and never appear in traces.
enum class OpKind : int {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kAddScalar,
  kMulScalar,
  kRelu,
  kSigmoid,
  kTanh,
  kExp,
  kLog,
  kSqrt,
  kSquare,
  kMatMul,
  kBatchMatMul,
  kTransposeLast2,
  kReshape,
  kConcat,
  kSlice,
  kReduceAxis,
  kSoftmaxLastDim,
  kMaskedSoftmaxLastDim,
  kRowL2Normalize,
  kEmbeddingLookup,
  kSelectTimeSteps,
  // Compiler-synthesized:
  kGemmEpilogue,  // MatMul + bias add (+ optional activation) in one pass
  kFusedChain,    // run of elementwise ops as one loop nest
  kNone,
};

const char* OpKindName(OpKind kind);

// One traced op application. Inputs/output are node handles (not raw
// pointers) so the traced graph stays alive until the compiler has bound
// every value — under InferenceScope intermediates would otherwise be freed
// (and their addresses reused) as soon as the model drops them.
struct TraceRecord {
  OpKind kind = OpKind::kNone;
  std::vector<std::shared_ptr<Node>> inputs;
  std::shared_ptr<Node> output;
  float scalar = 0.0f;  // AddScalar/MulScalar value, Log/RowL2Normalize eps,
                        // ReduceAxis scale
  int axis = 0;
  int64_t start = 0;  // Slice start
  int64_t len = 0;    // Slice len / SelectTimeSteps t_count
  std::vector<int64_t> int_attr;   // EmbeddingLookup ids, SelectTimeSteps idx
  std::vector<float> float_attr;   // MaskedSoftmaxLastDim mask
};

// Thread-local op recorder. While one is installed, every public op in
// ops.cc appends a TraceRecord after computing its result; ops the plan
// executor cannot replay mark the trace unsupported instead. Install only
// around forwards you control (the compiler's probe runs) — never on the
// serving hot path.
class PlanTracer {
 public:
  PlanTracer();
  ~PlanTracer();
  PlanTracer(const PlanTracer&) = delete;
  PlanTracer& operator=(const PlanTracer&) = delete;

  // The tracer installed on the calling thread, or nullptr.
  static PlanTracer* Current();

  void MarkUnsupported(const std::string& what);

  std::vector<TraceRecord> records;
  bool ok = true;
  std::string unsupported;

 private:
  PlanTracer* prev_ = nullptr;
};

namespace internal {
// Record helpers called from ops.cc (no-ops when no tracer is installed).
void TraceOp(TraceRecord record);
void Trace1(OpKind kind, const Tensor& a, const Tensor& out);
void Trace2(OpKind kind, const Tensor& a, const Tensor& b, const Tensor& out);
// Marks the active trace (if any) unsupported: `what` op cannot be compiled.
void TraceUnsupported(const char* what);
}  // namespace internal

// Per-bucket plan shape, surfaced in /statusz.
struct PlanBucketStats {
  int64_t batch_size = 0;
  int ops = 0;                      // executable ops after fusion
  int fused_chains = 0;             // fused elementwise chains + epilogues
  int64_t arena_bytes = 0;          // arena size after liveness slot reuse
  int64_t intermediate_bytes = 0;   // sum of live intermediate sizes
                                    // (>= arena_bytes; gap == sharing)
};

struct PlanCompileOptions {
  // Batch-size buckets, ascending. A batch of n executes the smallest
  // bucket >= n with rows [n, bucket) bound to row 0 and the first n logits
  // sliced out; batches above the largest bucket fall back to the dynamic
  // path.
  std::vector<int64_t> buckets = {1, 8, 32, 64, 128, 256};
  // Probe forwards whose traces must align and bind (>= 2).
  int trace_probes = 3;
  // Extra random batches per bucket verified bitwise against the dynamic
  // forward before the plan is accepted.
  int verify_batches = 2;
  uint64_t seed = 0x9e3779b97f4a7c15ull;
};

class InferencePlan;

// A model's compiled plans, one per batch-size bucket. Immutable and
// internally synchronized after Compile: Score may be called concurrently
// from any number of workers (execution contexts are pooled, so the steady
// state allocates nothing).
class PlanSet {
 public:
  using ForwardFn = std::function<Tensor(const data::Batch&)>;

  // Traces `forward` (which must run the model tape-free over the given
  // schema's batches) and compiles every bucket. Never fails hard: if the
  // model is plan-incompatible the returned set has compatible() == false
  // and fallback_reason() says why — callers keep serving via the dynamic
  // path.
  static std::shared_ptr<const PlanSet> Compile(
      const data::DatasetSchema& schema, const std::vector<Tensor>& params,
      const ForwardFn& forward, const PlanCompileOptions& options = {});

  ~PlanSet();

  bool compatible() const { return compatible_; }
  const std::string& fallback_reason() const { return fallback_reason_; }

  // Largest compiled bucket; 0 when incompatible.
  int64_t max_batch() const;

  // Scores `batch` through the round-up bucket plan and writes
  // batch.batch_size logits to `out`. Returns false (out untouched) when
  // incompatible or the batch exceeds every bucket; the caller then runs
  // the dynamic path.
  bool Score(const data::Batch& batch, float* out) const;

  std::vector<PlanBucketStats> BucketStats() const;

 private:
  PlanSet();

  bool compatible_ = false;
  std::string fallback_reason_;
  std::vector<std::unique_ptr<InferencePlan>> plans_;  // ascending bucket
};

}  // namespace miss::nn

#endif  // MISS_NN_PLAN_H_
