// Shared forward compute kernels.
//
// The dynamic op layer (ops.cc) and the compiled inference-plan executor
// (plan.cc) must produce bit-for-bit identical results, so the actual
// arithmetic lives here exactly once: broadcast iteration, the register-tiled
// GEMMs, and the scalar math of every elementwise op. Each kernel writes
// every output element from exactly one caller-assigned chunk in the serial
// accumulation order (the bitwise-parallel rule in DESIGN.md), so both call
// sites may partition rows across the shared pool freely.

#ifndef MISS_NN_KERNELS_H_
#define MISS_NN_KERNELS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/check.h"
#include "nn/tensor.h"

namespace miss::nn::kernels {

// ----------------------------------------------------------------------------
// Broadcasting machinery
// ----------------------------------------------------------------------------

// Pads `shape` with leading 1s to `nd` dims.
inline std::vector<int64_t> PadShape(const std::vector<int64_t>& shape,
                                     size_t nd) {
  std::vector<int64_t> out(nd, 1);
  std::copy(shape.begin(), shape.end(), out.begin() + (nd - shape.size()));
  return out;
}

// Result shape of broadcasting a against b; aborts if incompatible.
inline std::vector<int64_t> BroadcastShape(const std::vector<int64_t>& a,
                                           const std::vector<int64_t>& b) {
  const size_t nd = std::max(a.size(), b.size());
  const std::vector<int64_t> pa = PadShape(a, nd);
  const std::vector<int64_t> pb = PadShape(b, nd);
  std::vector<int64_t> out(nd);
  for (size_t i = 0; i < nd; ++i) {
    if (pa[i] == pb[i]) {
      out[i] = pa[i];
    } else if (pa[i] == 1) {
      out[i] = pb[i];
    } else if (pb[i] == 1) {
      out[i] = pa[i];
    } else {
      MISS_CHECK(false) << "cannot broadcast dim " << i << ": " << pa[i]
                        << " vs " << pb[i];
    }
  }
  return out;
}

// Row-major strides, with stride 0 on broadcast (size-1) dims relative to
// the output shape.
inline std::vector<int64_t> BroadcastStrides(
    const std::vector<int64_t>& padded, const std::vector<int64_t>& out_shape) {
  const size_t nd = out_shape.size();
  std::vector<int64_t> strides(nd, 0);
  int64_t s = 1;
  for (size_t i = nd; i-- > 0;) {
    if (padded[i] == out_shape[i]) {
      strides[i] = (padded[i] == 1) ? 0 : s;
    } else {
      MISS_CHECK_EQ(padded[i], 1)
          << "incompatible broadcast dim " << i << ": " << padded[i] << " vs "
          << out_shape[i];
      strides[i] = 0;
    }
    s *= padded[i];
  }
  return strides;
}

struct BroadcastPlan {
  std::vector<int64_t> out_shape;
  std::vector<int64_t> a_strides;
  std::vector<int64_t> b_strides;
  int64_t out_size = 0;
  bool same_shape = false;  // fast path: identical shapes
  bool b_scalar = false;    // fast path: b has a single element
  // Row decomposition for the vectorized forward: the output is `rows`
  // contiguous runs of length `inner` (the stride-1 innermost output dim),
  // and each operand advances by a_step/b_step (always 0 or 1) within a run.
  // flat == true collapses the whole output into one run (identical shapes
  // or a scalar operand — the common [B,D] op [B,D] / op scalar cases),
  // which ParallelFor then chunks directly.
  int64_t inner = 1;
  int64_t rows = 0;
  int a_step = 0;
  int b_step = 0;
  bool flat = false;
};

inline BroadcastPlan MakeBroadcastPlan(const std::vector<int64_t>& a,
                                       const std::vector<int64_t>& b) {
  BroadcastPlan plan;
  plan.out_shape = BroadcastShape(a, b);
  plan.out_size = NumElements(plan.out_shape);
  plan.same_shape = (a == b);
  plan.b_scalar = (NumElements(b) == 1);
  const size_t nd = plan.out_shape.size();
  plan.a_strides = BroadcastStrides(PadShape(a, nd), plan.out_shape);
  plan.b_strides = BroadcastStrides(PadShape(b, nd), plan.out_shape);
  const int64_t a_size = NumElements(a);
  const int64_t b_size = NumElements(b);
  // An operand whose size matches the output is fully contiguous over it
  // (broadcast compatibility forces the padded shapes to be equal).
  plan.flat = (a_size == plan.out_size || a_size == 1) &&
              (b_size == plan.out_size || b_size == 1);
  if (plan.flat) {
    plan.inner = plan.out_size;
    plan.rows = plan.out_size > 0 ? 1 : 0;
    plan.a_step = a_size == 1 ? 0 : 1;
    plan.b_step = b_size == 1 ? 0 : 1;
  } else {
    plan.inner = plan.out_shape.back();
    plan.rows = plan.inner > 0 ? plan.out_size / plan.inner : 0;
    plan.a_step = plan.a_strides.back() != 0 ? 1 : 0;
    plan.b_step = plan.b_strides.back() != 0 ? 1 : 0;
  }
  return plan;
}

// Calls visit(out_index, a_index, b_index) for every output element.
template <typename Visitor>
void ForEachBroadcast(const BroadcastPlan& plan, Visitor&& visit) {
  if (plan.same_shape) {
    for (int64_t o = 0; o < plan.out_size; ++o) visit(o, o, o);
    return;
  }
  if (plan.b_scalar) {
    for (int64_t o = 0; o < plan.out_size; ++o) visit(o, o, 0);
    return;
  }
  const size_t nd = plan.out_shape.size();
  std::vector<int64_t> idx(nd, 0);
  int64_t ai = 0;
  int64_t bi = 0;
  for (int64_t o = 0; o < plan.out_size; ++o) {
    visit(o, ai, bi);
    for (size_t d = nd; d-- > 0;) {
      ++idx[d];
      ai += plan.a_strides[d];
      bi += plan.b_strides[d];
      if (idx[d] < plan.out_shape[d]) break;
      ai -= plan.a_strides[d] * plan.out_shape[d];
      bi -= plan.b_strides[d] * plan.out_shape[d];
      idx[d] = 0;
    }
  }
}

// Calls visit(row, a_base, b_base) for output rows [r0, r1): the offsets of
// the start of each length-`inner` run in a and b. Only used when
// !plan.flat, so there is at least one leading dim.
template <typename Visitor>
void ForEachBroadcastRow(const BroadcastPlan& plan, int64_t r0, int64_t r1,
                         Visitor&& visit) {
  const size_t lead = plan.out_shape.size() - 1;
  std::vector<int64_t> idx(lead, 0);
  int64_t ai = 0;
  int64_t bi = 0;
  int64_t rem = r0;
  for (size_t d = lead; d-- > 0;) {
    idx[d] = rem % plan.out_shape[d];
    rem /= plan.out_shape[d];
    ai += idx[d] * plan.a_strides[d];
    bi += idx[d] * plan.b_strides[d];
  }
  for (int64_t r = r0; r < r1; ++r) {
    visit(r, ai, bi);
    for (size_t d = lead; d-- > 0;) {
      ++idx[d];
      ai += plan.a_strides[d];
      bi += plan.b_strides[d];
      if (idx[d] < plan.out_shape[d]) break;
      ai -= plan.a_strides[d] * plan.out_shape[d];
      bi -= plan.b_strides[d] * plan.out_shape[d];
      idx[d] = 0;
    }
  }
}

// One contiguous inner run with compile-time operand steps (0 = broadcast
// the single value, 1 = advance). Constant steps let the compiler vectorize
// the [B,D] op [1,D] and op-scalar cases.
template <int kAStep, int kBStep, typename Fwd>
void ApplyRun(const float* ap, const float* bp, float* op, int64_t n,
              Fwd fwd) {
  for (int64_t i = 0; i < n; ++i) {
    op[i] = fwd(ap[kAStep ? i : 0], bp[kBStep ? i : 0]);
  }
}

template <typename Fwd>
void ApplyRunDispatch(const float* ap, int a_step, const float* bp,
                      int b_step, float* op, int64_t n, Fwd fwd) {
  if (a_step != 0) {
    if (b_step != 0) {
      ApplyRun<1, 1>(ap, bp, op, n, fwd);
    } else {
      ApplyRun<1, 0>(ap, bp, op, n, fwd);
    }
  } else {
    if (b_step != 0) {
      ApplyRun<0, 1>(ap, bp, op, n, fwd);
    } else {
      ApplyRun<0, 0>(ap, bp, op, n, fwd);
    }
  }
}

// ----------------------------------------------------------------------------
// Scalar math of the elementwise ops. The dynamic tape ops and the fused
// plan chains both call these, so one definition fixes the bit patterns.
// ----------------------------------------------------------------------------

inline float ReluScalar(float x) { return x > 0.0f ? x : 0.0f; }

inline float SigmoidScalar(float x) {
  return x >= 0.0f ? 1.0f / (1.0f + std::exp(-x))
                   : std::exp(x) / (1.0f + std::exp(x));
}

inline float TanhScalar(float x) { return std::tanh(x); }
inline float ExpScalar(float x) { return std::exp(x); }
inline float LogScalar(float x, float eps) { return std::log(x + eps); }
inline float SqrtScalar(float x) { return std::sqrt(x); }
inline float SquareScalar(float x) { return x * x; }

// ---------------------------------------------------------------------------
// GEMM kernels. All three are register-tiled and take an explicit range of
// output rows so ParallelFor can hand disjoint row blocks to different
// threads. Value preservation: per output element, terms accumulate in
// exactly the order of the original naive triple loops (ascending reduction
// index, same zero-skips); the tiling only moves the partial sums from
// memory into a register strip, so both the serial rewrite and every
// parallel partition are bitwise identical to the original kernels.
// ---------------------------------------------------------------------------

// Output strip kept in registers across the reduction loop: 16 floats = two
// AVX2 vectors.
constexpr int64_t kGemmStrip = 16;

// C[m, n] (+)= sum_k A[m, k] * B[k, n], for rows m in [m0, m1).
inline void GemmNN(const float* a, const float* b, float* c, int64_t m0,
                   int64_t m1, int64_t k_dim, int64_t n_dim) {
  for (int64_t m = m0; m < m1; ++m) {
    const float* arow = a + m * k_dim;
    float* crow = c + m * n_dim;
    int64_t n0 = 0;
    for (; n0 + kGemmStrip <= n_dim; n0 += kGemmStrip) {
      float acc[kGemmStrip];
      for (int64_t j = 0; j < kGemmStrip; ++j) acc[j] = crow[n0 + j];
      for (int64_t k = 0; k < k_dim; ++k) {
        const float av = arow[k];
        if (av == 0.0f) continue;
        const float* brow = b + k * n_dim + n0;
        for (int64_t j = 0; j < kGemmStrip; ++j) acc[j] += av * brow[j];
      }
      for (int64_t j = 0; j < kGemmStrip; ++j) crow[n0 + j] = acc[j];
    }
    if (n0 < n_dim) {
      const int64_t nr = n_dim - n0;
      float acc[kGemmStrip];
      for (int64_t j = 0; j < nr; ++j) acc[j] = crow[n0 + j];
      for (int64_t k = 0; k < k_dim; ++k) {
        const float av = arow[k];
        if (av == 0.0f) continue;
        const float* brow = b + k * n_dim + n0;
        for (int64_t j = 0; j < nr; ++j) acc[j] += av * brow[j];
      }
      for (int64_t j = 0; j < nr; ++j) crow[n0 + j] = acc[j];
    }
  }
}

// Strip-major repack of a [K, N] GEMM B operand: for each kGemmStrip-wide
// column strip, the K x strip block is stored contiguously (remainder
// columns form a final narrower block). GemmNNPacked then streams each strip
// with unit stride instead of jumping N floats between reduction steps.
// Packing permutes storage only — the multiply/add sequence per output
// element is untouched, so packed and unpacked runs are bitwise identical.
inline std::vector<float> PackGemmB(const float* b, int64_t k_dim,
                                    int64_t n_dim) {
  std::vector<float> packed(k_dim * n_dim);
  float* dst = packed.data();
  for (int64_t n0 = 0; n0 < n_dim; n0 += kGemmStrip) {
    const int64_t w = std::min(kGemmStrip, n_dim - n0);
    for (int64_t k = 0; k < k_dim; ++k) {
      std::memcpy(dst, b + k * n_dim + n0, sizeof(float) * w);
      dst += w;
    }
  }
  return packed;
}

// GemmNN against a PackGemmB-packed operand.
inline void GemmNNPacked(const float* a, const float* packed_b, float* c,
                         int64_t m0, int64_t m1, int64_t k_dim,
                         int64_t n_dim) {
  for (int64_t m = m0; m < m1; ++m) {
    const float* arow = a + m * k_dim;
    float* crow = c + m * n_dim;
    int64_t n0 = 0;
    for (; n0 + kGemmStrip <= n_dim; n0 += kGemmStrip) {
      const float* bstrip = packed_b + n0 * k_dim;
      float acc[kGemmStrip];
      for (int64_t j = 0; j < kGemmStrip; ++j) acc[j] = crow[n0 + j];
      for (int64_t k = 0; k < k_dim; ++k) {
        const float av = arow[k];
        if (av == 0.0f) continue;
        const float* brow = bstrip + k * kGemmStrip;
        for (int64_t j = 0; j < kGemmStrip; ++j) acc[j] += av * brow[j];
      }
      for (int64_t j = 0; j < kGemmStrip; ++j) crow[n0 + j] = acc[j];
    }
    if (n0 < n_dim) {
      const int64_t nr = n_dim - n0;
      const float* bstrip = packed_b + n0 * k_dim;
      float acc[kGemmStrip];
      for (int64_t j = 0; j < nr; ++j) acc[j] = crow[n0 + j];
      for (int64_t k = 0; k < k_dim; ++k) {
        const float av = arow[k];
        if (av == 0.0f) continue;
        const float* brow = bstrip + k * nr;
        for (int64_t j = 0; j < nr; ++j) acc[j] += av * brow[j];
      }
      for (int64_t j = 0; j < nr; ++j) crow[n0 + j] = acc[j];
    }
  }
}

// GemmNNPacked with a 4-row register tile and NO zero-skip, for packed B
// operands that are verified all-finite at pack time. Four A rows stream
// each packed strip together, so one strip load feeds 8 independent,
// branch-free accumulator vectors — the single-row kernel is latency-bound
// on its 2 float-add chains, and the zero-skip branches would force the
// wider tile's accumulators out of registers.
//
// Bitwise contract: with every B element finite, a skipped k step (a == 0)
// and an accumulated one differ only by adding a * b == +/-0. Under
// round-to-nearest x + (+/-0) == x bit-for-bit unless x is -0, and the
// accumulator can never be -0: it starts at +0 (zero-filled output) and a
// round-to-nearest sum only yields -0 when both addends are -0, which
// would require the accumulator to already hold -0. So this kernel is
// bitwise identical to GemmNNPacked (which still handles the <4-row
// remainder, same argument in reverse).
inline void GemmNNPackedDense4(const float* a, const float* packed_b,
                               float* c, int64_t m0, int64_t m1,
                               int64_t k_dim, int64_t n_dim) {
  int64_t m = m0;
  for (; m + 4 <= m1; m += 4) {
    const float* arow0 = a + m * k_dim;
    const float* arow1 = arow0 + k_dim;
    const float* arow2 = arow1 + k_dim;
    const float* arow3 = arow2 + k_dim;
    float* crow0 = c + m * n_dim;
    float* crow1 = crow0 + n_dim;
    float* crow2 = crow1 + n_dim;
    float* crow3 = crow2 + n_dim;
    for (int64_t n0 = 0; n0 < n_dim; n0 += kGemmStrip) {
      const int64_t w = std::min(kGemmStrip, n_dim - n0);
      const float* bstrip = packed_b + n0 * k_dim;
      float acc0[kGemmStrip], acc1[kGemmStrip], acc2[kGemmStrip],
          acc3[kGemmStrip];
      for (int64_t j = 0; j < w; ++j) {
        acc0[j] = crow0[n0 + j];
        acc1[j] = crow1[n0 + j];
        acc2[j] = crow2[n0 + j];
        acc3[j] = crow3[n0 + j];
      }
      for (int64_t k = 0; k < k_dim; ++k) {
        const float* brow = bstrip + k * w;
        const float av0 = arow0[k];
        const float av1 = arow1[k];
        const float av2 = arow2[k];
        const float av3 = arow3[k];
        for (int64_t j = 0; j < w; ++j) {
          acc0[j] += av0 * brow[j];
          acc1[j] += av1 * brow[j];
          acc2[j] += av2 * brow[j];
          acc3[j] += av3 * brow[j];
        }
      }
      for (int64_t j = 0; j < w; ++j) {
        crow0[n0 + j] = acc0[j];
        crow1[n0 + j] = acc1[j];
        crow2[n0 + j] = acc2[j];
        crow3[n0 + j] = acc3[j];
      }
    }
  }
  if (m < m1) GemmNNPacked(a, packed_b, c, m, m1, k_dim, n_dim);
}

// C[m, k] += sum_n A[m, n] * B[k, n]   (i.e. C += A * B^T), rows [m0, m1).
// Runs kGemmDots independent dot products per pass over A's row: without
// -ffast-math a single float dot product is one serial dependency chain, so
// the instruction-level parallelism across the k strip is where the
// throughput comes from.
constexpr int64_t kGemmDots = 8;

inline void GemmNT(const float* a, const float* b, float* c, int64_t m0,
                   int64_t m1, int64_t n_dim, int64_t k_dim) {
  for (int64_t m = m0; m < m1; ++m) {
    const float* arow = a + m * n_dim;
    float* crow = c + m * k_dim;
    int64_t k0 = 0;
    for (; k0 + kGemmDots <= k_dim; k0 += kGemmDots) {
      float acc[kGemmDots] = {};
      for (int64_t n = 0; n < n_dim; ++n) {
        const float av = arow[n];
        for (int64_t j = 0; j < kGemmDots; ++j) {
          acc[j] += av * b[(k0 + j) * n_dim + n];
        }
      }
      for (int64_t j = 0; j < kGemmDots; ++j) crow[k0 + j] += acc[j];
    }
    if (k0 < k_dim) {
      const int64_t kr = k_dim - k0;
      float acc[kGemmDots] = {};
      for (int64_t n = 0; n < n_dim; ++n) {
        const float av = arow[n];
        for (int64_t j = 0; j < kr; ++j) {
          acc[j] += av * b[(k0 + j) * n_dim + n];
        }
      }
      for (int64_t j = 0; j < kr; ++j) crow[k0 + j] += acc[j];
    }
  }
}

// C[k, n] += sum_m A[m, k] * B[m, n]   (i.e. C += A^T * B), C rows
// [k_begin, k_end). The original kernel streamed m outermost and re-wrote
// every C element per m; holding a C strip in registers across the whole m
// loop keeps the same per-element term order with one store per element.
inline void GemmTN(const float* a, const float* b, float* c, int64_t m_dim,
                   int64_t k_dim, int64_t n_dim, int64_t k_begin,
                   int64_t k_end) {
  for (int64_t k = k_begin; k < k_end; ++k) {
    float* crow = c + k * n_dim;
    int64_t n0 = 0;
    for (; n0 + kGemmStrip <= n_dim; n0 += kGemmStrip) {
      float acc[kGemmStrip];
      for (int64_t j = 0; j < kGemmStrip; ++j) acc[j] = crow[n0 + j];
      for (int64_t m = 0; m < m_dim; ++m) {
        const float av = a[m * k_dim + k];
        if (av == 0.0f) continue;
        const float* brow = b + m * n_dim + n0;
        for (int64_t j = 0; j < kGemmStrip; ++j) acc[j] += av * brow[j];
      }
      for (int64_t j = 0; j < kGemmStrip; ++j) crow[n0 + j] = acc[j];
    }
    if (n0 < n_dim) {
      const int64_t nr = n_dim - n0;
      float acc[kGemmStrip];
      for (int64_t j = 0; j < nr; ++j) acc[j] = crow[n0 + j];
      for (int64_t m = 0; m < m_dim; ++m) {
        const float av = a[m * k_dim + k];
        if (av == 0.0f) continue;
        const float* brow = b + m * n_dim + n0;
        for (int64_t j = 0; j < nr; ++j) acc[j] += av * brow[j];
      }
      for (int64_t j = 0; j < nr; ++j) crow[n0 + j] = acc[j];
    }
  }
}

inline int NormalizeAxis(int axis, int ndim) {
  if (axis < 0) axis += ndim;
  MISS_CHECK_GE(axis, 0);
  MISS_CHECK_LT(axis, ndim);
  return axis;
}

}  // namespace miss::nn::kernels

#endif  // MISS_NN_KERNELS_H_
