#include "nn/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "obs/trace.h"

namespace miss::nn {

namespace {

using internal::MakeResult;

// ----------------------------------------------------------------------------
// Broadcasting machinery
// ----------------------------------------------------------------------------

// Pads `shape` with leading 1s to `nd` dims.
std::vector<int64_t> PadShape(const std::vector<int64_t>& shape, size_t nd) {
  std::vector<int64_t> out(nd, 1);
  std::copy(shape.begin(), shape.end(), out.begin() + (nd - shape.size()));
  return out;
}

// Row-major strides, with stride 0 on broadcast (size-1) dims relative to
// the output shape.
std::vector<int64_t> BroadcastStrides(const std::vector<int64_t>& padded,
                                      const std::vector<int64_t>& out_shape) {
  const size_t nd = out_shape.size();
  std::vector<int64_t> strides(nd, 0);
  int64_t s = 1;
  for (size_t i = nd; i-- > 0;) {
    if (padded[i] == out_shape[i]) {
      strides[i] = (padded[i] == 1) ? 0 : s;
    } else {
      MISS_CHECK_EQ(padded[i], 1)
          << "incompatible broadcast dim " << i << ": " << padded[i] << " vs "
          << out_shape[i];
      strides[i] = 0;
    }
    s *= padded[i];
  }
  return strides;
}

struct BroadcastPlan {
  std::vector<int64_t> out_shape;
  std::vector<int64_t> a_strides;
  std::vector<int64_t> b_strides;
  int64_t out_size = 0;
  bool same_shape = false;  // fast path: identical shapes
  bool b_scalar = false;    // fast path: b has a single element
};

BroadcastPlan MakeBroadcastPlan(const std::vector<int64_t>& a,
                                const std::vector<int64_t>& b) {
  BroadcastPlan plan;
  plan.out_shape = BroadcastShape(a, b);
  plan.out_size = NumElements(plan.out_shape);
  plan.same_shape = (a == b);
  plan.b_scalar = (NumElements(b) == 1);
  const size_t nd = plan.out_shape.size();
  plan.a_strides = BroadcastStrides(PadShape(a, nd), plan.out_shape);
  plan.b_strides = BroadcastStrides(PadShape(b, nd), plan.out_shape);
  return plan;
}

// Calls visit(out_index, a_index, b_index) for every output element.
template <typename Visitor>
void ForEachBroadcast(const BroadcastPlan& plan, Visitor&& visit) {
  if (plan.same_shape) {
    for (int64_t o = 0; o < plan.out_size; ++o) visit(o, o, o);
    return;
  }
  if (plan.b_scalar) {
    for (int64_t o = 0; o < plan.out_size; ++o) visit(o, o, 0);
    return;
  }
  const size_t nd = plan.out_shape.size();
  std::vector<int64_t> idx(nd, 0);
  int64_t ai = 0;
  int64_t bi = 0;
  for (int64_t o = 0; o < plan.out_size; ++o) {
    visit(o, ai, bi);
    for (size_t d = nd; d-- > 0;) {
      ++idx[d];
      ai += plan.a_strides[d];
      bi += plan.b_strides[d];
      if (idx[d] < plan.out_shape[d]) break;
      ai -= plan.a_strides[d] * plan.out_shape[d];
      bi -= plan.b_strides[d] * plan.out_shape[d];
      idx[d] = 0;
    }
  }
}

// Shared implementation for broadcast binary ops. `fwd(x, y)` computes the
// value; `bwd(g, x, y, &dx, &dy)` adds the local gradients for one element.
template <typename Fwd, typename Bwd>
Tensor BinaryOp(const Tensor& a, const Tensor& b, Fwd fwd, Bwd bwd) {
  BroadcastPlan plan = MakeBroadcastPlan(a.shape(), b.shape());
  std::vector<float> out(plan.out_size);
  const auto& av = a.value();
  const auto& bv = b.value();
  ForEachBroadcast(plan, [&](int64_t o, int64_t ai, int64_t bi) {
    out[o] = fwd(av[ai], bv[bi]);
  });
  Tensor ta = a;
  Tensor tb = b;
  return MakeResult(
      plan.out_shape, std::move(out), {a, b},
      [ta, tb, plan, bwd](Node& node) mutable {
        const auto& g = node.grad;
        const bool need_a = ta.requires_grad();
        const bool need_b = tb.requires_grad();
        auto* ga = need_a ? &ta.node()->EnsureGrad() : nullptr;
        auto* gb = need_b ? &tb.node()->EnsureGrad() : nullptr;
        const auto& av = ta.value();
        const auto& bv = tb.value();
        ForEachBroadcast(plan, [&](int64_t o, int64_t ai, int64_t bi) {
          float dx = 0.0f;
          float dy = 0.0f;
          bwd(g[o], av[ai], bv[bi], &dx, &dy);
          if (need_a) (*ga)[ai] += dx;
          if (need_b) (*gb)[bi] += dy;
        });
      });
}

// Shared implementation for elementwise unary ops. `bwd(g, x, y)` returns
// the input gradient given upstream g, input x and output y.
template <typename Fwd, typename Bwd>
Tensor UnaryOp(const Tensor& a, Fwd fwd, Bwd bwd) {
  const int64_t n = a.size();
  std::vector<float> out(n);
  const auto& av = a.value();
  for (int64_t i = 0; i < n; ++i) out[i] = fwd(av[i]);
  Tensor ta = a;
  return MakeResult(a.shape(), std::move(out), {a},
                    [ta, bwd](Node& node) mutable {
                      if (!ta.requires_grad()) return;
                      auto& ga = ta.node()->EnsureGrad();
                      const auto& av = ta.value();
                      const auto& yv = node.value;
                      const auto& g = node.grad;
                      const int64_t n = static_cast<int64_t>(g.size());
                      for (int64_t i = 0; i < n; ++i) {
                        ga[i] += bwd(g[i], av[i], yv[i]);
                      }
                    });
}

// C[m, n] (+)= sum_k A[m, k] * B[k, n]
void GemmNN(const float* a, const float* b, float* c, int64_t m_dim,
            int64_t k_dim, int64_t n_dim) {
  for (int64_t m = 0; m < m_dim; ++m) {
    float* crow = c + m * n_dim;
    const float* arow = a + m * k_dim;
    for (int64_t k = 0; k < k_dim; ++k) {
      const float av = arow[k];
      if (av == 0.0f) continue;
      const float* brow = b + k * n_dim;
      for (int64_t n = 0; n < n_dim; ++n) crow[n] += av * brow[n];
    }
  }
}

// C[m, k] += sum_n A[m, n] * B[k, n]   (i.e. C += A * B^T)
void GemmNT(const float* a, const float* b, float* c, int64_t m_dim,
            int64_t n_dim, int64_t k_dim) {
  for (int64_t m = 0; m < m_dim; ++m) {
    const float* arow = a + m * n_dim;
    float* crow = c + m * k_dim;
    for (int64_t k = 0; k < k_dim; ++k) {
      const float* brow = b + k * n_dim;
      float acc = 0.0f;
      for (int64_t n = 0; n < n_dim; ++n) acc += arow[n] * brow[n];
      crow[k] += acc;
    }
  }
}

// C[k, n] += sum_m A[m, k] * B[m, n]   (i.e. C += A^T * B)
void GemmTN(const float* a, const float* b, float* c, int64_t m_dim,
            int64_t k_dim, int64_t n_dim) {
  for (int64_t m = 0; m < m_dim; ++m) {
    const float* arow = a + m * k_dim;
    const float* brow = b + m * n_dim;
    for (int64_t k = 0; k < k_dim; ++k) {
      const float av = arow[k];
      if (av == 0.0f) continue;
      float* crow = c + k * n_dim;
      for (int64_t n = 0; n < n_dim; ++n) crow[n] += av * brow[n];
    }
  }
}

int NormalizeAxis(int axis, int ndim) {
  if (axis < 0) axis += ndim;
  MISS_CHECK_GE(axis, 0);
  MISS_CHECK_LT(axis, ndim);
  return axis;
}

}  // namespace

std::vector<int64_t> BroadcastShape(const std::vector<int64_t>& a,
                                    const std::vector<int64_t>& b) {
  const size_t nd = std::max(a.size(), b.size());
  const std::vector<int64_t> pa = PadShape(a, nd);
  const std::vector<int64_t> pb = PadShape(b, nd);
  std::vector<int64_t> out(nd);
  for (size_t i = 0; i < nd; ++i) {
    if (pa[i] == pb[i]) {
      out[i] = pa[i];
    } else if (pa[i] == 1) {
      out[i] = pb[i];
    } else if (pb[i] == 1) {
      out[i] = pa[i];
    } else {
      MISS_CHECK(false) << "cannot broadcast dim " << i << ": " << pa[i]
                        << " vs " << pb[i];
    }
  }
  return out;
}

// ----------------------------------------------------------------------------
// Arithmetic
// ----------------------------------------------------------------------------

Tensor Add(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      a, b, [](float x, float y) { return x + y; },
      [](float g, float, float, float* dx, float* dy) {
        *dx = g;
        *dy = g;
      });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      a, b, [](float x, float y) { return x - y; },
      [](float g, float, float, float* dx, float* dy) {
        *dx = g;
        *dy = -g;
      });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      a, b, [](float x, float y) { return x * y; },
      [](float g, float x, float y, float* dx, float* dy) {
        *dx = g * y;
        *dy = g * x;
      });
}

Tensor Div(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      a, b, [](float x, float y) { return x / y; },
      [](float g, float x, float y, float* dx, float* dy) {
        *dx = g / y;
        *dy = -g * x / (y * y);
      });
}

Tensor AddScalar(const Tensor& a, float s) {
  return UnaryOp(
      a, [s](float x) { return x + s; },
      [](float g, float, float) { return g; });
}

Tensor MulScalar(const Tensor& a, float s) {
  return UnaryOp(
      a, [s](float x) { return x * s; },
      [s](float g, float, float) { return g * s; });
}

Tensor Neg(const Tensor& a) { return MulScalar(a, -1.0f); }

// ----------------------------------------------------------------------------
// Nonlinearities
// ----------------------------------------------------------------------------

Tensor Relu(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float g, float x, float) { return x > 0.0f ? g : 0.0f; });
}

Tensor Sigmoid(const Tensor& a) {
  return UnaryOp(
      a,
      [](float x) {
        return x >= 0.0f ? 1.0f / (1.0f + std::exp(-x))
                         : std::exp(x) / (1.0f + std::exp(x));
      },
      [](float g, float, float y) { return g * y * (1.0f - y); });
}

Tensor Tanh(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::tanh(x); },
      [](float g, float, float y) { return g * (1.0f - y * y); });
}

Tensor Exp(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::exp(x); },
      [](float g, float, float y) { return g * y; });
}

Tensor Log(const Tensor& a, float eps) {
  return UnaryOp(
      a, [eps](float x) { return std::log(x + eps); },
      [eps](float g, float x, float) { return g / (x + eps); });
}

Tensor Sqrt(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::sqrt(x); },
      [](float g, float, float y) { return g * 0.5f / (y + 1e-12f); });
}

Tensor Square(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return x * x; },
      [](float g, float x, float) { return g * 2.0f * x; });
}

// ----------------------------------------------------------------------------
// Linear algebra
// ----------------------------------------------------------------------------

Tensor MatMul(const Tensor& a, const Tensor& b) {
  MISS_TRACE_SCOPE("nn/matmul");
  MISS_CHECK_GE(a.ndim(), 2);
  MISS_CHECK_EQ(b.ndim(), 2);
  const int64_t k_dim = a.dim(-1);
  MISS_CHECK_EQ(k_dim, b.dim(0));
  const int64_t n_dim = b.dim(1);
  const int64_t rows = a.size() / k_dim;

  std::vector<float> out(rows * n_dim, 0.0f);
  GemmNN(a.value().data(), b.value().data(), out.data(), rows, k_dim, n_dim);

  std::vector<int64_t> out_shape = a.shape();
  out_shape.back() = n_dim;

  Tensor ta = a;
  Tensor tb = b;
  return MakeResult(
      std::move(out_shape), std::move(out), {a, b},
      [ta, tb, rows, k_dim, n_dim](Node& node) mutable {
        const float* g = node.grad.data();
        if (ta.requires_grad()) {
          auto& ga = ta.node()->EnsureGrad();
          // dA = dC * B^T
          GemmNT(g, tb.value().data(), ga.data(), rows, n_dim, k_dim);
        }
        if (tb.requires_grad()) {
          auto& gb = tb.node()->EnsureGrad();
          // dB = A^T * dC
          GemmTN(ta.value().data(), g, gb.data(), rows, k_dim, n_dim);
        }
      });
}

Tensor BatchMatMul(const Tensor& a, const Tensor& b) {
  MISS_TRACE_SCOPE("nn/batch_matmul");
  MISS_CHECK_GE(a.ndim(), 3);
  MISS_CHECK_EQ(a.ndim(), b.ndim());
  for (int i = 0; i < a.ndim() - 2; ++i) MISS_CHECK_EQ(a.dim(i), b.dim(i));
  const int64_t m_dim = a.dim(-2);
  const int64_t k_dim = a.dim(-1);
  MISS_CHECK_EQ(k_dim, b.dim(-2));
  const int64_t n_dim = b.dim(-1);
  const int64_t batches = a.size() / (m_dim * k_dim);

  std::vector<float> out(batches * m_dim * n_dim, 0.0f);
  for (int64_t i = 0; i < batches; ++i) {
    GemmNN(a.value().data() + i * m_dim * k_dim,
           b.value().data() + i * k_dim * n_dim, out.data() + i * m_dim * n_dim,
           m_dim, k_dim, n_dim);
  }

  std::vector<int64_t> out_shape = a.shape();
  out_shape[out_shape.size() - 1] = n_dim;

  Tensor ta = a;
  Tensor tb = b;
  return MakeResult(
      std::move(out_shape), std::move(out), {a, b},
      [ta, tb, batches, m_dim, k_dim, n_dim](Node& node) mutable {
        const float* g = node.grad.data();
        if (ta.requires_grad()) {
          auto& ga = ta.node()->EnsureGrad();
          for (int64_t i = 0; i < batches; ++i) {
            GemmNT(g + i * m_dim * n_dim, tb.value().data() + i * k_dim * n_dim,
                   ga.data() + i * m_dim * k_dim, m_dim, n_dim, k_dim);
          }
        }
        if (tb.requires_grad()) {
          auto& gb = tb.node()->EnsureGrad();
          for (int64_t i = 0; i < batches; ++i) {
            GemmTN(ta.value().data() + i * m_dim * k_dim, g + i * m_dim * n_dim,
                   gb.data() + i * k_dim * n_dim, m_dim, k_dim, n_dim);
          }
        }
      });
}

Tensor TransposeLast2(const Tensor& a) {
  MISS_CHECK_GE(a.ndim(), 2);
  const int64_t m_dim = a.dim(-2);
  const int64_t n_dim = a.dim(-1);
  const int64_t batches = a.size() / (m_dim * n_dim);
  std::vector<float> out(a.size());
  const auto& av = a.value();
  for (int64_t i = 0; i < batches; ++i) {
    const float* src = av.data() + i * m_dim * n_dim;
    float* dst = out.data() + i * m_dim * n_dim;
    for (int64_t m = 0; m < m_dim; ++m) {
      for (int64_t n = 0; n < n_dim; ++n) dst[n * m_dim + m] = src[m * n_dim + n];
    }
  }
  std::vector<int64_t> out_shape = a.shape();
  std::swap(out_shape[out_shape.size() - 1], out_shape[out_shape.size() - 2]);

  Tensor ta = a;
  return MakeResult(std::move(out_shape), std::move(out), {a},
                    [ta, batches, m_dim, n_dim](Node& node) mutable {
                      if (!ta.requires_grad()) return;
                      auto& ga = ta.node()->EnsureGrad();
                      const float* g = node.grad.data();
                      for (int64_t i = 0; i < batches; ++i) {
                        const float* src = g + i * m_dim * n_dim;
                        float* dst = ga.data() + i * m_dim * n_dim;
                        for (int64_t m = 0; m < m_dim; ++m) {
                          for (int64_t n = 0; n < n_dim; ++n) {
                            dst[m * n_dim + n] += src[n * m_dim + m];
                          }
                        }
                      }
                    });
}

// ----------------------------------------------------------------------------
// Shape manipulation
// ----------------------------------------------------------------------------

Tensor Reshape(const Tensor& a, std::vector<int64_t> shape) {
  MISS_CHECK_EQ(NumElements(shape), a.size())
      << "reshape " << a.ShapeString() << " to incompatible size";
  Tensor ta = a;
  return MakeResult(std::move(shape), a.value(), {a}, [ta](Node& node) mutable {
    if (!ta.requires_grad()) return;
    auto& ga = ta.node()->EnsureGrad();
    const auto& g = node.grad;
    for (size_t i = 0; i < g.size(); ++i) ga[i] += g[i];
  });
}

Tensor Concat(const std::vector<Tensor>& parts, int axis) {
  MISS_CHECK(!parts.empty());
  const int nd = parts[0].ndim();
  const int ax = NormalizeAxis(axis, nd);
  std::vector<int64_t> out_shape = parts[0].shape();
  int64_t concat_dim = 0;
  for (const Tensor& p : parts) {
    MISS_CHECK_EQ(p.ndim(), nd);
    for (int i = 0; i < nd; ++i) {
      if (i != ax) {
        MISS_CHECK_EQ(p.dim(i), parts[0].dim(i));
      }
    }
    concat_dim += p.dim(ax);
  }
  out_shape[ax] = concat_dim;

  int64_t outer = 1;
  for (int i = 0; i < ax; ++i) outer *= out_shape[i];
  int64_t inner = 1;
  for (int i = ax + 1; i < nd; ++i) inner *= out_shape[i];

  std::vector<float> out(NumElements(out_shape));
  int64_t offset = 0;  // offset along the concat axis
  for (const Tensor& p : parts) {
    const int64_t p_ax = p.dim(ax);
    const auto& pv = p.value();
    for (int64_t o = 0; o < outer; ++o) {
      std::memcpy(out.data() + (o * concat_dim + offset) * inner,
                  pv.data() + o * p_ax * inner,
                  sizeof(float) * p_ax * inner);
    }
    offset += p_ax;
  }

  std::vector<Tensor> parents = parts;
  return MakeResult(
      std::move(out_shape), std::move(out), parts,
      [parents, outer, inner, concat_dim, ax](Node& node) mutable {
        const auto& g = node.grad;
        int64_t offset = 0;
        for (Tensor& p : parents) {
          const int64_t p_ax = p.dim(ax);
          if (p.requires_grad()) {
            auto& gp = p.node()->EnsureGrad();
            for (int64_t o = 0; o < outer; ++o) {
              const float* src = g.data() + (o * concat_dim + offset) * inner;
              float* dst = gp.data() + o * p_ax * inner;
              for (int64_t i = 0; i < p_ax * inner; ++i) dst[i] += src[i];
            }
          }
          offset += p_ax;
        }
      });
}

Tensor Slice(const Tensor& a, int axis, int64_t start, int64_t len) {
  const int nd = a.ndim();
  const int ax = NormalizeAxis(axis, nd);
  MISS_CHECK_GE(start, 0);
  MISS_CHECK_GE(len, 0);
  MISS_CHECK_LE(start + len, a.dim(ax));

  int64_t outer = 1;
  for (int i = 0; i < ax; ++i) outer *= a.dim(i);
  int64_t inner = 1;
  for (int i = ax + 1; i < nd; ++i) inner *= a.dim(i);
  const int64_t a_ax = a.dim(ax);

  std::vector<int64_t> out_shape = a.shape();
  out_shape[ax] = len;
  std::vector<float> out(NumElements(out_shape));
  const auto& av = a.value();
  for (int64_t o = 0; o < outer; ++o) {
    std::memcpy(out.data() + o * len * inner,
                av.data() + (o * a_ax + start) * inner,
                sizeof(float) * len * inner);
  }

  Tensor ta = a;
  return MakeResult(std::move(out_shape), std::move(out), {a},
                    [ta, outer, inner, a_ax, start, len](Node& node) mutable {
                      if (!ta.requires_grad()) return;
                      auto& ga = ta.node()->EnsureGrad();
                      const auto& g = node.grad;
                      for (int64_t o = 0; o < outer; ++o) {
                        const float* src = g.data() + o * len * inner;
                        float* dst = ga.data() + (o * a_ax + start) * inner;
                        for (int64_t i = 0; i < len * inner; ++i) dst[i] += src[i];
                      }
                    });
}

// ----------------------------------------------------------------------------
// Reductions
// ----------------------------------------------------------------------------

Tensor SumAll(const Tensor& a) {
  double acc = 0.0;
  for (float v : a.value()) acc += v;
  Tensor ta = a;
  return MakeResult({1}, {static_cast<float>(acc)}, {a},
                    [ta](Node& node) mutable {
                      if (!ta.requires_grad()) return;
                      auto& ga = ta.node()->EnsureGrad();
                      const float g = node.grad[0];
                      for (auto& v : ga) v += g;
                    });
}

Tensor MeanAll(const Tensor& a) {
  return MulScalar(SumAll(a), 1.0f / static_cast<float>(a.size()));
}

namespace {

Tensor ReduceAxis(const Tensor& a, int axis, bool keepdims, float scale) {
  const int nd = a.ndim();
  const int ax = NormalizeAxis(axis, nd);
  int64_t outer = 1;
  for (int i = 0; i < ax; ++i) outer *= a.dim(i);
  const int64_t n = a.dim(ax);
  int64_t inner = 1;
  for (int i = ax + 1; i < nd; ++i) inner *= a.dim(i);

  std::vector<int64_t> out_shape;
  for (int i = 0; i < nd; ++i) {
    if (i == ax) {
      if (keepdims) out_shape.push_back(1);
    } else {
      out_shape.push_back(a.dim(i));
    }
  }
  if (out_shape.empty()) out_shape.push_back(1);

  std::vector<float> out(outer * inner, 0.0f);
  const auto& av = a.value();
  for (int64_t o = 0; o < outer; ++o) {
    for (int64_t j = 0; j < n; ++j) {
      const float* src = av.data() + (o * n + j) * inner;
      float* dst = out.data() + o * inner;
      for (int64_t i = 0; i < inner; ++i) dst[i] += src[i];
    }
  }
  if (scale != 1.0f) {
    for (auto& v : out) v *= scale;
  }

  Tensor ta = a;
  return MakeResult(std::move(out_shape), std::move(out), {a},
                    [ta, outer, n, inner, scale](Node& node) mutable {
                      if (!ta.requires_grad()) return;
                      auto& ga = ta.node()->EnsureGrad();
                      const auto& g = node.grad;
                      for (int64_t o = 0; o < outer; ++o) {
                        const float* src = g.data() + o * inner;
                        for (int64_t j = 0; j < n; ++j) {
                          float* dst = ga.data() + (o * n + j) * inner;
                          for (int64_t i = 0; i < inner; ++i) {
                            dst[i] += src[i] * scale;
                          }
                        }
                      }
                    });
}

}  // namespace

Tensor SumAxis(const Tensor& a, int axis, bool keepdims) {
  return ReduceAxis(a, axis, keepdims, 1.0f);
}

Tensor MeanAxis(const Tensor& a, int axis, bool keepdims) {
  const int ax = NormalizeAxis(axis, a.ndim());
  return ReduceAxis(a, axis, keepdims,
                    1.0f / static_cast<float>(a.dim(ax)));
}

// ----------------------------------------------------------------------------
// Softmax and losses
// ----------------------------------------------------------------------------

Tensor SoftmaxLastDim(const Tensor& a) {
  const int64_t n = a.dim(-1);
  const int64_t rows = a.size() / n;
  std::vector<float> out(a.size());
  const auto& av = a.value();
  for (int64_t r = 0; r < rows; ++r) {
    const float* src = av.data() + r * n;
    float* dst = out.data() + r * n;
    float max_v = src[0];
    for (int64_t i = 1; i < n; ++i) max_v = std::max(max_v, src[i]);
    float sum = 0.0f;
    for (int64_t i = 0; i < n; ++i) {
      dst[i] = std::exp(src[i] - max_v);
      sum += dst[i];
    }
    const float inv = 1.0f / sum;
    for (int64_t i = 0; i < n; ++i) dst[i] *= inv;
  }
  Tensor ta = a;
  return MakeResult(a.shape(), std::move(out), {a},
                    [ta, rows, n](Node& node) mutable {
                      if (!ta.requires_grad()) return;
                      auto& ga = ta.node()->EnsureGrad();
                      const auto& y = node.value;
                      const auto& g = node.grad;
                      for (int64_t r = 0; r < rows; ++r) {
                        const float* yr = y.data() + r * n;
                        const float* gr = g.data() + r * n;
                        float dot = 0.0f;
                        for (int64_t i = 0; i < n; ++i) dot += yr[i] * gr[i];
                        float* dst = ga.data() + r * n;
                        for (int64_t i = 0; i < n; ++i) {
                          dst[i] += yr[i] * (gr[i] - dot);
                        }
                      }
                    });
}

Tensor MaskedSoftmaxLastDim(const Tensor& a, const std::vector<float>& mask) {
  MISS_CHECK_EQ(static_cast<int64_t>(mask.size()), a.size());
  const int64_t n = a.dim(-1);
  const int64_t rows = a.size() / n;
  std::vector<float> out(a.size(), 0.0f);
  const auto& av = a.value();
  for (int64_t r = 0; r < rows; ++r) {
    const float* src = av.data() + r * n;
    const float* msk = mask.data() + r * n;
    float* dst = out.data() + r * n;
    float max_v = -std::numeric_limits<float>::infinity();
    for (int64_t i = 0; i < n; ++i) {
      if (msk[i] > 0.0f) max_v = std::max(max_v, src[i]);
    }
    if (max_v == -std::numeric_limits<float>::infinity()) continue;  // all pad
    float sum = 0.0f;
    for (int64_t i = 0; i < n; ++i) {
      if (msk[i] > 0.0f) {
        dst[i] = std::exp(src[i] - max_v);
        sum += dst[i];
      }
    }
    const float inv = 1.0f / sum;
    for (int64_t i = 0; i < n; ++i) dst[i] *= inv;
  }
  Tensor ta = a;
  return MakeResult(a.shape(), std::move(out), {a},
                    [ta, rows, n](Node& node) mutable {
                      if (!ta.requires_grad()) return;
                      auto& ga = ta.node()->EnsureGrad();
                      const auto& y = node.value;
                      const auto& g = node.grad;
                      for (int64_t r = 0; r < rows; ++r) {
                        const float* yr = y.data() + r * n;
                        const float* gr = g.data() + r * n;
                        float dot = 0.0f;
                        for (int64_t i = 0; i < n; ++i) dot += yr[i] * gr[i];
                        float* dst = ga.data() + r * n;
                        for (int64_t i = 0; i < n; ++i) {
                          dst[i] += yr[i] * (gr[i] - dot);
                        }
                      }
                    });
}

Tensor DiagonalNllFromLogits(const Tensor& s) {
  MISS_CHECK_EQ(s.ndim(), 2);
  const int64_t b_dim = s.dim(0);
  MISS_CHECK_EQ(b_dim, s.dim(1));
  const auto& sv = s.value();
  double loss = 0.0;
  for (int64_t r = 0; r < b_dim; ++r) {
    const float* row = sv.data() + r * b_dim;
    float max_v = row[0];
    for (int64_t c = 1; c < b_dim; ++c) max_v = std::max(max_v, row[c]);
    double sum = 0.0;
    for (int64_t c = 0; c < b_dim; ++c) sum += std::exp(row[c] - max_v);
    loss += (max_v + std::log(sum)) - row[r];
  }
  loss /= static_cast<double>(b_dim);

  Tensor ts = s;
  return MakeResult(
      {1}, {static_cast<float>(loss)}, {s}, [ts, b_dim](Node& node) mutable {
        if (!ts.requires_grad()) return;
        auto& gs = ts.node()->EnsureGrad();
        const auto& sv = ts.value();
        const float g = node.grad[0] / static_cast<float>(b_dim);
        for (int64_t r = 0; r < b_dim; ++r) {
          const float* row = sv.data() + r * b_dim;
          float* grow = gs.data() + r * b_dim;
          float max_v = row[0];
          for (int64_t c = 1; c < b_dim; ++c) max_v = std::max(max_v, row[c]);
          double sum = 0.0;
          for (int64_t c = 0; c < b_dim; ++c) sum += std::exp(row[c] - max_v);
          for (int64_t c = 0; c < b_dim; ++c) {
            const float p =
                static_cast<float>(std::exp(row[c] - max_v) / sum);
            grow[c] += g * (p - (c == r ? 1.0f : 0.0f));
          }
        }
      });
}

Tensor BceWithLogitsLoss(const Tensor& logits,
                         const std::vector<float>& labels) {
  MISS_CHECK_EQ(logits.size(), static_cast<int64_t>(labels.size()));
  const int64_t n = logits.size();
  const auto& x = logits.value();
  double loss = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const float xi = x[i];
    // max(x, 0) - x*y + log(1 + exp(-|x|))
    loss += std::max(xi, 0.0f) - xi * labels[i] +
            std::log1p(std::exp(-std::abs(xi)));
  }
  loss /= static_cast<double>(n);

  Tensor tl = logits;
  return MakeResult(
      {1}, {static_cast<float>(loss)}, {logits},
      [tl, labels, n](Node& node) mutable {
        if (!tl.requires_grad()) return;
        auto& gl = tl.node()->EnsureGrad();
        const auto& x = tl.value();
        const float g = node.grad[0] / static_cast<float>(n);
        for (int64_t i = 0; i < n; ++i) {
          const float xi = x[i];
          const float sig = xi >= 0.0f ? 1.0f / (1.0f + std::exp(-xi))
                                       : std::exp(xi) / (1.0f + std::exp(xi));
          gl[i] += g * (sig - labels[i]);
        }
      });
}

// ----------------------------------------------------------------------------
// Normalization / dropout
// ----------------------------------------------------------------------------

Tensor RowL2Normalize(const Tensor& a, float eps) {
  const int64_t n = a.dim(-1);
  const int64_t rows = a.size() / n;
  std::vector<float> out(a.size());
  std::vector<float> norms(rows);
  const auto& av = a.value();
  for (int64_t r = 0; r < rows; ++r) {
    const float* src = av.data() + r * n;
    double sq = 0.0;
    for (int64_t i = 0; i < n; ++i) sq += static_cast<double>(src[i]) * src[i];
    const float norm = static_cast<float>(std::sqrt(sq + eps));
    norms[r] = norm;
    float* dst = out.data() + r * n;
    for (int64_t i = 0; i < n; ++i) dst[i] = src[i] / norm;
  }
  Tensor ta = a;
  return MakeResult(
      a.shape(), std::move(out), {a},
      [ta, rows, n, norms = std::move(norms)](Node& node) mutable {
        if (!ta.requires_grad()) return;
        auto& ga = ta.node()->EnsureGrad();
        const auto& y = node.value;
        const auto& g = node.grad;
        for (int64_t r = 0; r < rows; ++r) {
          const float* yr = y.data() + r * n;
          const float* gr = g.data() + r * n;
          float dot = 0.0f;
          for (int64_t i = 0; i < n; ++i) dot += yr[i] * gr[i];
          const float inv = 1.0f / norms[r];
          float* dst = ga.data() + r * n;
          for (int64_t i = 0; i < n; ++i) {
            dst[i] += (gr[i] - yr[i] * dot) * inv;
          }
        }
      });
}

Tensor Dropout(const Tensor& a, float p, bool training, common::Rng& rng) {
  if (!training || p <= 0.0f) return a;
  MISS_CHECK_LT(p, 1.0f);
  const float scale = 1.0f / (1.0f - p);
  const int64_t n = a.size();
  std::vector<float> mask(n);
  for (auto& m : mask) m = rng.Bernoulli(p) ? 0.0f : scale;
  std::vector<float> out(n);
  const auto& av = a.value();
  for (int64_t i = 0; i < n; ++i) out[i] = av[i] * mask[i];
  Tensor ta = a;
  return MakeResult(a.shape(), std::move(out), {a},
                    [ta, mask = std::move(mask)](Node& node) mutable {
                      if (!ta.requires_grad()) return;
                      auto& ga = ta.node()->EnsureGrad();
                      const auto& g = node.grad;
                      for (size_t i = 0; i < g.size(); ++i) {
                        ga[i] += g[i] * mask[i];
                      }
                    });
}

// ----------------------------------------------------------------------------
// Gather / scatter
// ----------------------------------------------------------------------------

Tensor EmbeddingLookup(const Tensor& table, const std::vector<int64_t>& ids,
                       std::vector<int64_t> leading_shape) {
  MISS_TRACE_SCOPE("nn/embedding_lookup");
  MISS_CHECK_EQ(table.ndim(), 2);
  MISS_CHECK_EQ(NumElements(leading_shape),
                static_cast<int64_t>(ids.size()));
  const int64_t vocab = table.dim(0);
  const int64_t k_dim = table.dim(1);
  std::vector<float> out(ids.size() * k_dim, 0.0f);
  const auto& tv = table.value();
  for (size_t i = 0; i < ids.size(); ++i) {
    const int64_t id = ids[i];
    if (id < 0) continue;  // padding: zero row
    MISS_CHECK_LT(id, vocab) << "embedding id out of range";
    std::memcpy(out.data() + i * k_dim, tv.data() + id * k_dim,
                sizeof(float) * k_dim);
  }
  std::vector<int64_t> out_shape = std::move(leading_shape);
  out_shape.push_back(k_dim);

  Tensor tt = table;
  return MakeResult(std::move(out_shape), std::move(out), {table},
                    [tt, ids, k_dim](Node& node) mutable {
                      if (!tt.requires_grad()) return;
                      auto& gt = tt.node()->EnsureGrad();
                      const auto& g = node.grad;
                      for (size_t i = 0; i < ids.size(); ++i) {
                        const int64_t id = ids[i];
                        if (id < 0) continue;
                        const float* src = g.data() + i * k_dim;
                        float* dst = gt.data() + id * k_dim;
                        for (int64_t k = 0; k < k_dim; ++k) dst[k] += src[k];
                      }
                    });
}

Tensor SelectTimeSteps(const Tensor& x, const std::vector<int64_t>& idx,
                       int64_t t_count) {
  MISS_CHECK_EQ(x.ndim(), 3);
  const int64_t b_dim = x.dim(0);
  const int64_t l_dim = x.dim(1);
  const int64_t k_dim = x.dim(2);
  MISS_CHECK_EQ(static_cast<int64_t>(idx.size()), b_dim * t_count);
  std::vector<float> out(b_dim * t_count * k_dim);
  const auto& xv = x.value();
  for (int64_t b = 0; b < b_dim; ++b) {
    for (int64_t t = 0; t < t_count; ++t) {
      const int64_t l = idx[b * t_count + t];
      MISS_CHECK_GE(l, 0);
      MISS_CHECK_LT(l, l_dim);
      std::memcpy(out.data() + (b * t_count + t) * k_dim,
                  xv.data() + (b * l_dim + l) * k_dim, sizeof(float) * k_dim);
    }
  }
  Tensor tx = x;
  return MakeResult(
      {b_dim, t_count, k_dim}, std::move(out), {x},
      [tx, idx, b_dim, l_dim, t_count, k_dim](Node& node) mutable {
        if (!tx.requires_grad()) return;
        auto& gx = tx.node()->EnsureGrad();
        const auto& g = node.grad;
        for (int64_t b = 0; b < b_dim; ++b) {
          for (int64_t t = 0; t < t_count; ++t) {
            const int64_t l = idx[b * t_count + t];
            const float* src = g.data() + (b * t_count + t) * k_dim;
            float* dst = gx.data() + (b * l_dim + l) * k_dim;
            for (int64_t k = 0; k < k_dim; ++k) dst[k] += src[k];
          }
        }
      });
}

Tensor GatherInterest(const Tensor& g, const std::vector<int64_t>& l_idx) {
  MISS_CHECK_EQ(g.ndim(), 4);
  const int64_t b_dim = g.dim(0);
  const int64_t j_dim = g.dim(1);
  const int64_t l_dim = g.dim(2);
  const int64_t k_dim = g.dim(3);
  MISS_CHECK_EQ(static_cast<int64_t>(l_idx.size()), b_dim);
  std::vector<float> out(b_dim * j_dim * k_dim);
  const auto& gv = g.value();
  for (int64_t b = 0; b < b_dim; ++b) {
    const int64_t l = l_idx[b];
    MISS_CHECK_GE(l, 0);
    MISS_CHECK_LT(l, l_dim);
    for (int64_t j = 0; j < j_dim; ++j) {
      std::memcpy(out.data() + (b * j_dim + j) * k_dim,
                  gv.data() + ((b * j_dim + j) * l_dim + l) * k_dim,
                  sizeof(float) * k_dim);
    }
  }
  Tensor tg = g;
  return MakeResult(
      {b_dim, j_dim * k_dim}, std::move(out), {g},
      [tg, l_idx, b_dim, j_dim, l_dim, k_dim](Node& node) mutable {
        if (!tg.requires_grad()) return;
        auto& gg = tg.node()->EnsureGrad();
        const auto& grad = node.grad;
        for (int64_t b = 0; b < b_dim; ++b) {
          const int64_t l = l_idx[b];
          for (int64_t j = 0; j < j_dim; ++j) {
            const float* src = grad.data() + (b * j_dim + j) * k_dim;
            float* dst = gg.data() + ((b * j_dim + j) * l_dim + l) * k_dim;
            for (int64_t k = 0; k < k_dim; ++k) dst[k] += src[k];
          }
        }
      });
}

Tensor GatherFeatureVector(const Tensor& g, const std::vector<int64_t>& j_idx,
                           const std::vector<int64_t>& l_idx) {
  MISS_CHECK_EQ(g.ndim(), 4);
  const int64_t b_dim = g.dim(0);
  const int64_t j_dim = g.dim(1);
  const int64_t l_dim = g.dim(2);
  const int64_t k_dim = g.dim(3);
  MISS_CHECK_EQ(static_cast<int64_t>(j_idx.size()), b_dim);
  MISS_CHECK_EQ(static_cast<int64_t>(l_idx.size()), b_dim);
  std::vector<float> out(b_dim * k_dim);
  const auto& gv = g.value();
  for (int64_t b = 0; b < b_dim; ++b) {
    const int64_t j = j_idx[b];
    const int64_t l = l_idx[b];
    MISS_CHECK_GE(j, 0);
    MISS_CHECK_LT(j, j_dim);
    MISS_CHECK_GE(l, 0);
    MISS_CHECK_LT(l, l_dim);
    std::memcpy(out.data() + b * k_dim,
                gv.data() + ((b * j_dim + j) * l_dim + l) * k_dim,
                sizeof(float) * k_dim);
  }
  Tensor tg = g;
  return MakeResult(
      {b_dim, k_dim}, std::move(out), {g},
      [tg, j_idx, l_idx, b_dim, j_dim, l_dim, k_dim](Node& node) mutable {
        if (!tg.requires_grad()) return;
        auto& gg = tg.node()->EnsureGrad();
        const auto& grad = node.grad;
        for (int64_t b = 0; b < b_dim; ++b) {
          const float* src = grad.data() + b * k_dim;
          float* dst = gg.data() +
                       ((b * j_dim + j_idx[b]) * l_dim + l_idx[b]) * k_dim;
          for (int64_t k = 0; k < k_dim; ++k) dst[k] += src[k];
        }
      });
}

// ----------------------------------------------------------------------------
// MISS convolutions
// ----------------------------------------------------------------------------

Tensor HorizontalConv(const Tensor& c, const Tensor& kernel) {
  MISS_TRACE_SCOPE("nn/horizontal_conv");
  MISS_CHECK_EQ(c.ndim(), 4);
  MISS_CHECK_EQ(kernel.ndim(), 1);
  const int64_t b_dim = c.dim(0);
  const int64_t j_dim = c.dim(1);
  const int64_t l_dim = c.dim(2);
  const int64_t k_dim = c.dim(3);
  const int64_t m = kernel.dim(0);
  MISS_CHECK_LE(m, l_dim) << "horizontal kernel wider than sequence";
  const int64_t l_out = l_dim - m + 1;

  std::vector<float> out(b_dim * j_dim * l_out * k_dim, 0.0f);
  const auto& cv = c.value();
  const auto& w = kernel.value();
  for (int64_t bj = 0; bj < b_dim * j_dim; ++bj) {
    const float* src = cv.data() + bj * l_dim * k_dim;
    float* dst = out.data() + bj * l_out * k_dim;
    for (int64_t l = 0; l < l_out; ++l) {
      for (int64_t i = 0; i < m; ++i) {
        const float wi = w[i];
        const float* row = src + (l + i) * k_dim;
        float* orow = dst + l * k_dim;
        for (int64_t k = 0; k < k_dim; ++k) orow[k] += wi * row[k];
      }
    }
  }

  Tensor tc = c;
  Tensor tk = kernel;
  return MakeResult(
      {b_dim, j_dim, l_out, k_dim}, std::move(out), {c, kernel},
      [tc, tk, b_dim, j_dim, l_dim, k_dim, m, l_out](Node& node) mutable {
        const auto& g = node.grad;
        const auto& cv = tc.value();
        const auto& w = tk.value();
        const bool need_c = tc.requires_grad();
        const bool need_k = tk.requires_grad();
        auto* gc = need_c ? &tc.node()->EnsureGrad() : nullptr;
        auto* gk = need_k ? &tk.node()->EnsureGrad() : nullptr;
        for (int64_t bj = 0; bj < b_dim * j_dim; ++bj) {
          const float* gsrc = g.data() + bj * l_out * k_dim;
          const float* csrc = cv.data() + bj * l_dim * k_dim;
          for (int64_t l = 0; l < l_out; ++l) {
            const float* grow = gsrc + l * k_dim;
            for (int64_t i = 0; i < m; ++i) {
              if (need_c) {
                float* dst = gc->data() + (bj * l_dim + l + i) * k_dim;
                const float wi = w[i];
                for (int64_t k = 0; k < k_dim; ++k) dst[k] += wi * grow[k];
              }
              if (need_k) {
                const float* crow = csrc + (l + i) * k_dim;
                float acc = 0.0f;
                for (int64_t k = 0; k < k_dim; ++k) acc += crow[k] * grow[k];
                (*gk)[i] += acc;
              }
            }
          }
        }
      });
}

Tensor VerticalConv(const Tensor& g_in, const Tensor& kernel) {
  MISS_TRACE_SCOPE("nn/vertical_conv");
  MISS_CHECK_EQ(g_in.ndim(), 4);
  MISS_CHECK_EQ(kernel.ndim(), 1);
  const int64_t b_dim = g_in.dim(0);
  const int64_t j_dim = g_in.dim(1);
  const int64_t l_dim = g_in.dim(2);
  const int64_t k_dim = g_in.dim(3);
  const int64_t n = kernel.dim(0);
  MISS_CHECK_LE(n, j_dim) << "vertical kernel taller than field count";
  const int64_t j_out = j_dim - n + 1;

  const int64_t plane = l_dim * k_dim;
  std::vector<float> out(b_dim * j_out * plane, 0.0f);
  const auto& gv = g_in.value();
  const auto& w = kernel.value();
  for (int64_t b = 0; b < b_dim; ++b) {
    const float* src = gv.data() + b * j_dim * plane;
    float* dst = out.data() + b * j_out * plane;
    for (int64_t j = 0; j < j_out; ++j) {
      for (int64_t i = 0; i < n; ++i) {
        const float wi = w[i];
        const float* row = src + (j + i) * plane;
        float* orow = dst + j * plane;
        for (int64_t p = 0; p < plane; ++p) orow[p] += wi * row[p];
      }
    }
  }

  Tensor tg = g_in;
  Tensor tk = kernel;
  return MakeResult(
      {b_dim, j_out, l_dim, k_dim}, std::move(out), {g_in, kernel},
      [tg, tk, b_dim, j_dim, plane, n, j_out](Node& node) mutable {
        const auto& g = node.grad;
        const auto& gv = tg.value();
        const auto& w = tk.value();
        const bool need_g = tg.requires_grad();
        const bool need_k = tk.requires_grad();
        auto* gg = need_g ? &tg.node()->EnsureGrad() : nullptr;
        auto* gk = need_k ? &tk.node()->EnsureGrad() : nullptr;
        for (int64_t b = 0; b < b_dim; ++b) {
          const float* gsrc = g.data() + b * j_out * plane;
          const float* xsrc = gv.data() + b * j_dim * plane;
          for (int64_t j = 0; j < j_out; ++j) {
            const float* grow = gsrc + j * plane;
            for (int64_t i = 0; i < n; ++i) {
              if (need_g) {
                float* dst = gg->data() + (b * j_dim + j + i) * plane;
                const float wi = w[i];
                for (int64_t p = 0; p < plane; ++p) dst[p] += wi * grow[p];
              }
              if (need_k) {
                const float* xrow = xsrc + (j + i) * plane;
                float acc = 0.0f;
                for (int64_t p = 0; p < plane; ++p) acc += xrow[p] * grow[p];
                (*gk)[i] += acc;
              }
            }
          }
        }
      });
}

}  // namespace miss::nn
