#include "nn/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "nn/kernels.h"
#include "nn/parallel.h"
#include "nn/plan.h"
#include "obs/trace.h"

namespace miss::nn {

namespace {

using internal::MakeResult;
using internal::Trace1;
using internal::Trace2;
using internal::TraceUnsupported;
using kernels::ApplyRunDispatch;
using kernels::BroadcastPlan;
using kernels::ForEachBroadcast;
using kernels::ForEachBroadcastRow;
using kernels::GemmNN;
using kernels::GemmNT;
using kernels::GemmTN;
using kernels::MakeBroadcastPlan;
using kernels::NormalizeAxis;

// Record helpers for ops whose TraceRecord carries attributes beyond the
// tensor operands. All are no-ops when no tracer is installed.

void TraceScalarOp(OpKind kind, const Tensor& a, const Tensor& out, float s) {
  if (PlanTracer::Current() == nullptr) return;
  TraceRecord r;
  r.kind = kind;
  r.inputs = {a.node_ptr()};
  r.output = out.node_ptr();
  r.scalar = s;
  internal::TraceOp(std::move(r));
}

// Shared implementation for broadcast binary ops. `fwd(x, y)` computes the
// value; `bwd(g, x, y, &dx, &dy)` adds the local gradients for one element.
// Forward chunks over contiguous output runs (every element has one
// writer). Backward parallelizes only the same-shape case: a broadcast
// operand's gradient is a cross-row reduction whose serial accumulation
// order defines the result (bitwise-parallel rule), so it stays serial.
template <typename Fwd, typename Bwd>
Tensor BinaryOp(const Tensor& a, const Tensor& b, Fwd fwd, Bwd bwd) {
  BroadcastPlan plan = MakeBroadcastPlan(a.shape(), b.shape());
  std::vector<float> out(plan.out_size);
  {
    const float* av = a.value().data();
    const float* bv = b.value().data();
    float* op = out.data();
    if (plan.flat) {
      ParallelFor(0, plan.out_size, GrainFor(2),
                  [&](int64_t c0, int64_t c1) {
                    ApplyRunDispatch(av + (plan.a_step ? c0 : 0), plan.a_step,
                                     bv + (plan.b_step ? c0 : 0), plan.b_step,
                                     op + c0, c1 - c0, fwd);
                  });
    } else {
      ParallelFor(0, plan.rows, GrainFor(2 * plan.inner),
                  [&](int64_t r0, int64_t r1) {
                    ForEachBroadcastRow(
                        plan, r0, r1, [&](int64_t r, int64_t ai, int64_t bi) {
                          ApplyRunDispatch(av + ai, plan.a_step, bv + bi,
                                           plan.b_step, op + r * plan.inner,
                                           plan.inner, fwd);
                        });
                  });
    }
  }
  Tensor ta = a;
  Tensor tb = b;
  return MakeResult(
      plan.out_shape, std::move(out), {a, b},
      [ta, tb, plan, bwd](Node& node) mutable {
        const bool need_a = ta.requires_grad();
        const bool need_b = tb.requires_grad();
        auto* ga = need_a ? &ta.node()->EnsureGrad() : nullptr;
        auto* gb = need_b ? &tb.node()->EnsureGrad() : nullptr;
        const float* g = node.grad.data();
        const float* av = ta.value().data();
        const float* bv = tb.value().data();
        if (plan.same_shape) {
          float* gap = need_a ? ga->data() : nullptr;
          float* gbp = need_b ? gb->data() : nullptr;
          ParallelFor(0, plan.out_size, GrainFor(4),
                      [&](int64_t c0, int64_t c1) {
                        for (int64_t o = c0; o < c1; ++o) {
                          float dx = 0.0f;
                          float dy = 0.0f;
                          bwd(g[o], av[o], bv[o], &dx, &dy);
                          if (gap) gap[o] += dx;
                          if (gbp) gbp[o] += dy;
                        }
                      });
          return;
        }
        ForEachBroadcast(plan, [&](int64_t o, int64_t ai, int64_t bi) {
          float dx = 0.0f;
          float dy = 0.0f;
          bwd(g[o], av[ai], bv[bi], &dx, &dy);
          if (need_a) (*ga)[ai] += dx;
          if (need_b) (*gb)[bi] += dy;
        });
      });
}

// Shared implementation for elementwise unary ops. `bwd(g, x, y)` returns
// the input gradient given upstream g, input x and output y. Forward and
// backward are both elementwise (one writer per slot), so both chunk.
template <typename Fwd, typename Bwd>
Tensor UnaryOp(const Tensor& a, Fwd fwd, Bwd bwd) {
  const int64_t n = a.size();
  std::vector<float> out(n);
  {
    const float* av = a.value().data();
    float* op = out.data();
    ParallelFor(0, n, GrainFor(4), [&](int64_t c0, int64_t c1) {
      for (int64_t i = c0; i < c1; ++i) op[i] = fwd(av[i]);
    });
  }
  Tensor ta = a;
  return MakeResult(a.shape(), std::move(out), {a},
                    [ta, bwd](Node& node) mutable {
                      if (!ta.requires_grad()) return;
                      auto& ga = ta.node()->EnsureGrad();
                      float* gap = ga.data();
                      const float* av = ta.value().data();
                      const float* yv = node.value.data();
                      const float* g = node.grad.data();
                      const int64_t n = static_cast<int64_t>(node.grad.size());
                      ParallelFor(0, n, GrainFor(4),
                                  [&](int64_t c0, int64_t c1) {
                                    for (int64_t i = c0; i < c1; ++i) {
                                      gap[i] += bwd(g[i], av[i], yv[i]);
                                    }
                                  });
                    });
}

}  // namespace

std::vector<int64_t> BroadcastShape(const std::vector<int64_t>& a,
                                    const std::vector<int64_t>& b) {
  return kernels::BroadcastShape(a, b);
}

// ----------------------------------------------------------------------------
// Arithmetic
// ----------------------------------------------------------------------------

Tensor Add(const Tensor& a, const Tensor& b) {
  Tensor out = BinaryOp(
      a, b, [](float x, float y) { return x + y; },
      [](float g, float, float, float* dx, float* dy) {
        *dx = g;
        *dy = g;
      });
  Trace2(OpKind::kAdd, a, b, out);
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  Tensor out = BinaryOp(
      a, b, [](float x, float y) { return x - y; },
      [](float g, float, float, float* dx, float* dy) {
        *dx = g;
        *dy = -g;
      });
  Trace2(OpKind::kSub, a, b, out);
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  Tensor out = BinaryOp(
      a, b, [](float x, float y) { return x * y; },
      [](float g, float x, float y, float* dx, float* dy) {
        *dx = g * y;
        *dy = g * x;
      });
  Trace2(OpKind::kMul, a, b, out);
  return out;
}

Tensor Div(const Tensor& a, const Tensor& b) {
  Tensor out = BinaryOp(
      a, b, [](float x, float y) { return x / y; },
      [](float g, float x, float y, float* dx, float* dy) {
        *dx = g / y;
        *dy = -g * x / (y * y);
      });
  Trace2(OpKind::kDiv, a, b, out);
  return out;
}

Tensor AddScalar(const Tensor& a, float s) {
  Tensor out = UnaryOp(
      a, [s](float x) { return x + s; },
      [](float g, float, float) { return g; });
  TraceScalarOp(OpKind::kAddScalar, a, out, s);
  return out;
}

Tensor MulScalar(const Tensor& a, float s) {
  Tensor out = UnaryOp(
      a, [s](float x) { return x * s; },
      [s](float g, float, float) { return g * s; });
  TraceScalarOp(OpKind::kMulScalar, a, out, s);
  return out;
}

Tensor Neg(const Tensor& a) { return MulScalar(a, -1.0f); }

// ----------------------------------------------------------------------------
// Nonlinearities
// ----------------------------------------------------------------------------

Tensor Relu(const Tensor& a) {
  Tensor out = UnaryOp(
      a, [](float x) { return kernels::ReluScalar(x); },
      [](float g, float x, float) { return x > 0.0f ? g : 0.0f; });
  Trace1(OpKind::kRelu, a, out);
  return out;
}

Tensor Sigmoid(const Tensor& a) {
  Tensor out = UnaryOp(
      a, [](float x) { return kernels::SigmoidScalar(x); },
      [](float g, float, float y) { return g * y * (1.0f - y); });
  Trace1(OpKind::kSigmoid, a, out);
  return out;
}

Tensor Tanh(const Tensor& a) {
  Tensor out = UnaryOp(
      a, [](float x) { return kernels::TanhScalar(x); },
      [](float g, float, float y) { return g * (1.0f - y * y); });
  Trace1(OpKind::kTanh, a, out);
  return out;
}

Tensor Exp(const Tensor& a) {
  Tensor out = UnaryOp(
      a, [](float x) { return kernels::ExpScalar(x); },
      [](float g, float, float y) { return g * y; });
  Trace1(OpKind::kExp, a, out);
  return out;
}

Tensor Log(const Tensor& a, float eps) {
  Tensor out = UnaryOp(
      a, [eps](float x) { return kernels::LogScalar(x, eps); },
      [eps](float g, float x, float) { return g / (x + eps); });
  TraceScalarOp(OpKind::kLog, a, out, eps);
  return out;
}

Tensor Sqrt(const Tensor& a) {
  Tensor out = UnaryOp(
      a, [](float x) { return kernels::SqrtScalar(x); },
      [](float g, float, float y) { return g * 0.5f / (y + 1e-12f); });
  Trace1(OpKind::kSqrt, a, out);
  return out;
}

Tensor Square(const Tensor& a) {
  Tensor out = UnaryOp(
      a, [](float x) { return kernels::SquareScalar(x); },
      [](float g, float x, float) { return g * 2.0f * x; });
  Trace1(OpKind::kSquare, a, out);
  return out;
}

// ----------------------------------------------------------------------------
// Linear algebra
// ----------------------------------------------------------------------------

Tensor MatMul(const Tensor& a, const Tensor& b) {
  MISS_TRACE_SCOPE("nn/matmul");
  MISS_CHECK_GE(a.ndim(), 2);
  MISS_CHECK_EQ(b.ndim(), 2);
  const int64_t k_dim = a.dim(-1);
  MISS_CHECK_EQ(k_dim, b.dim(0));
  const int64_t n_dim = b.dim(1);
  const int64_t rows = a.size() / k_dim;

  std::vector<float> out(rows * n_dim, 0.0f);
  {
    const float* ap = a.value().data();
    const float* bp = b.value().data();
    float* op = out.data();
    ParallelFor(0, rows, GrainFor(k_dim * n_dim),
                [&](int64_t r0, int64_t r1) {
                  GemmNN(ap, bp, op, r0, r1, k_dim, n_dim);
                });
  }

  std::vector<int64_t> out_shape = a.shape();
  out_shape.back() = n_dim;

  Tensor ta = a;
  Tensor tb = b;
  Tensor result = MakeResult(
      std::move(out_shape), std::move(out), {a, b},
      [ta, tb, rows, k_dim, n_dim](Node& node) mutable {
        const float* g = node.grad.data();
        if (ta.requires_grad()) {
          auto& ga = ta.node()->EnsureGrad();
          float* gap = ga.data();
          const float* bp = tb.value().data();
          // dA = dC * B^T; dA rows are written by exactly one chunk each.
          ParallelFor(0, rows, GrainFor(n_dim * k_dim),
                      [&](int64_t r0, int64_t r1) {
                        GemmNT(g, bp, gap, r0, r1, n_dim, k_dim);
                      });
        }
        if (tb.requires_grad()) {
          auto& gb = tb.node()->EnsureGrad();
          float* gbp = gb.data();
          const float* ap = ta.value().data();
          // dB = A^T * dC; dB rows (k index) are independent.
          ParallelFor(0, k_dim, GrainFor(rows * n_dim),
                      [&](int64_t c0, int64_t c1) {
                        GemmTN(ap, g, gbp, rows, k_dim, n_dim, c0, c1);
                      });
        }
      });
  Trace2(OpKind::kMatMul, a, b, result);
  return result;
}

Tensor BatchMatMul(const Tensor& a, const Tensor& b) {
  MISS_TRACE_SCOPE("nn/batch_matmul");
  MISS_CHECK_GE(a.ndim(), 3);
  MISS_CHECK_EQ(a.ndim(), b.ndim());
  for (int i = 0; i < a.ndim() - 2; ++i) MISS_CHECK_EQ(a.dim(i), b.dim(i));
  const int64_t m_dim = a.dim(-2);
  const int64_t k_dim = a.dim(-1);
  MISS_CHECK_EQ(k_dim, b.dim(-2));
  const int64_t n_dim = b.dim(-1);
  const int64_t batches = a.size() / (m_dim * k_dim);

  std::vector<float> out(batches * m_dim * n_dim, 0.0f);
  {
    const float* ap = a.value().data();
    const float* bp = b.value().data();
    float* op = out.data();
    // Batches are fully independent slices — the natural partition axis.
    ParallelFor(0, batches, GrainFor(m_dim * k_dim * n_dim),
                [&](int64_t i0, int64_t i1) {
                  for (int64_t i = i0; i < i1; ++i) {
                    GemmNN(ap + i * m_dim * k_dim, bp + i * k_dim * n_dim,
                           op + i * m_dim * n_dim, 0, m_dim, k_dim, n_dim);
                  }
                });
  }

  std::vector<int64_t> out_shape = a.shape();
  out_shape[out_shape.size() - 1] = n_dim;

  Tensor ta = a;
  Tensor tb = b;
  Tensor result = MakeResult(
      std::move(out_shape), std::move(out), {a, b},
      [ta, tb, batches, m_dim, k_dim, n_dim](Node& node) mutable {
        const float* g = node.grad.data();
        if (ta.requires_grad()) {
          auto& ga = ta.node()->EnsureGrad();
          float* gap = ga.data();
          const float* bp = tb.value().data();
          ParallelFor(0, batches, GrainFor(m_dim * n_dim * k_dim),
                      [&](int64_t i0, int64_t i1) {
                        for (int64_t i = i0; i < i1; ++i) {
                          GemmNT(g + i * m_dim * n_dim, bp + i * k_dim * n_dim,
                                 gap + i * m_dim * k_dim, 0, m_dim, n_dim,
                                 k_dim);
                        }
                      });
        }
        if (tb.requires_grad()) {
          auto& gb = tb.node()->EnsureGrad();
          float* gbp = gb.data();
          const float* ap = ta.value().data();
          ParallelFor(0, batches, GrainFor(m_dim * k_dim * n_dim),
                      [&](int64_t i0, int64_t i1) {
                        for (int64_t i = i0; i < i1; ++i) {
                          GemmTN(ap + i * m_dim * k_dim, g + i * m_dim * n_dim,
                                 gbp + i * k_dim * n_dim, m_dim, k_dim, n_dim,
                                 0, k_dim);
                        }
                      });
        }
      });
  Trace2(OpKind::kBatchMatMul, a, b, result);
  return result;
}

Tensor TransposeLast2(const Tensor& a) {
  MISS_CHECK_GE(a.ndim(), 2);
  const int64_t m_dim = a.dim(-2);
  const int64_t n_dim = a.dim(-1);
  const int64_t batches = a.size() / (m_dim * n_dim);
  std::vector<float> out(a.size());
  {
    const float* av = a.value().data();
    float* op = out.data();
    ParallelFor(0, batches, GrainFor(m_dim * n_dim),
                [&](int64_t i0, int64_t i1) {
                  for (int64_t i = i0; i < i1; ++i) {
                    const float* src = av + i * m_dim * n_dim;
                    float* dst = op + i * m_dim * n_dim;
                    for (int64_t m = 0; m < m_dim; ++m) {
                      for (int64_t n = 0; n < n_dim; ++n) {
                        dst[n * m_dim + m] = src[m * n_dim + n];
                      }
                    }
                  }
                });
  }
  std::vector<int64_t> out_shape = a.shape();
  std::swap(out_shape[out_shape.size() - 1], out_shape[out_shape.size() - 2]);

  Tensor ta = a;
  Tensor result =
      MakeResult(std::move(out_shape), std::move(out), {a},
                 [ta, batches, m_dim, n_dim](Node& node) mutable {
                   if (!ta.requires_grad()) return;
                   auto& ga = ta.node()->EnsureGrad();
                   float* gap = ga.data();
                   const float* g = node.grad.data();
                   ParallelFor(
                       0, batches, GrainFor(m_dim * n_dim),
                       [&](int64_t i0, int64_t i1) {
                         for (int64_t i = i0; i < i1; ++i) {
                           const float* src = g + i * m_dim * n_dim;
                           float* dst = gap + i * m_dim * n_dim;
                           for (int64_t m = 0; m < m_dim; ++m) {
                             for (int64_t n = 0; n < n_dim; ++n) {
                               dst[m * n_dim + n] += src[n * m_dim + m];
                             }
                           }
                         }
                       });
                 });
  Trace1(OpKind::kTransposeLast2, a, result);
  return result;
}

// ----------------------------------------------------------------------------
// Shape manipulation
// ----------------------------------------------------------------------------

Tensor Reshape(const Tensor& a, std::vector<int64_t> shape) {
  MISS_CHECK_EQ(NumElements(shape), a.size())
      << "reshape " << a.ShapeString() << " to incompatible size";
  Tensor ta = a;
  Tensor result =
      MakeResult(std::move(shape), a.value(), {a}, [ta](Node& node) mutable {
        if (!ta.requires_grad()) return;
        auto& ga = ta.node()->EnsureGrad();
        const auto& g = node.grad;
        for (size_t i = 0; i < g.size(); ++i) ga[i] += g[i];
      });
  Trace1(OpKind::kReshape, a, result);
  return result;
}

Tensor Concat(const std::vector<Tensor>& parts, int axis) {
  MISS_CHECK(!parts.empty());
  const int nd = parts[0].ndim();
  const int ax = NormalizeAxis(axis, nd);
  std::vector<int64_t> out_shape = parts[0].shape();
  int64_t concat_dim = 0;
  for (const Tensor& p : parts) {
    MISS_CHECK_EQ(p.ndim(), nd);
    for (int i = 0; i < nd; ++i) {
      if (i != ax) {
        MISS_CHECK_EQ(p.dim(i), parts[0].dim(i));
      }
    }
    concat_dim += p.dim(ax);
  }
  out_shape[ax] = concat_dim;

  int64_t outer = 1;
  for (int i = 0; i < ax; ++i) outer *= out_shape[i];
  int64_t inner = 1;
  for (int i = ax + 1; i < nd; ++i) inner *= out_shape[i];

  std::vector<float> out(NumElements(out_shape));
  int64_t offset = 0;  // offset along the concat axis
  for (const Tensor& p : parts) {
    const int64_t p_ax = p.dim(ax);
    const auto& pv = p.value();
    for (int64_t o = 0; o < outer; ++o) {
      std::memcpy(out.data() + (o * concat_dim + offset) * inner,
                  pv.data() + o * p_ax * inner,
                  sizeof(float) * p_ax * inner);
    }
    offset += p_ax;
  }

  std::vector<Tensor> parents = parts;
  Tensor result = MakeResult(
      std::move(out_shape), std::move(out), parts,
      [parents, outer, inner, concat_dim, ax](Node& node) mutable {
        const auto& g = node.grad;
        int64_t offset = 0;
        for (Tensor& p : parents) {
          const int64_t p_ax = p.dim(ax);
          if (p.requires_grad()) {
            auto& gp = p.node()->EnsureGrad();
            for (int64_t o = 0; o < outer; ++o) {
              const float* src = g.data() + (o * concat_dim + offset) * inner;
              float* dst = gp.data() + o * p_ax * inner;
              for (int64_t i = 0; i < p_ax * inner; ++i) dst[i] += src[i];
            }
          }
          offset += p_ax;
        }
      });
  if (PlanTracer::Current() != nullptr) {
    TraceRecord r;
    r.kind = OpKind::kConcat;
    for (const Tensor& p : parts) r.inputs.push_back(p.node_ptr());
    r.output = result.node_ptr();
    r.axis = ax;
    internal::TraceOp(std::move(r));
  }
  return result;
}

Tensor Slice(const Tensor& a, int axis, int64_t start, int64_t len) {
  const int nd = a.ndim();
  const int ax = NormalizeAxis(axis, nd);
  MISS_CHECK_GE(start, 0);
  MISS_CHECK_GE(len, 0);
  MISS_CHECK_LE(start + len, a.dim(ax));

  int64_t outer = 1;
  for (int i = 0; i < ax; ++i) outer *= a.dim(i);
  int64_t inner = 1;
  for (int i = ax + 1; i < nd; ++i) inner *= a.dim(i);
  const int64_t a_ax = a.dim(ax);

  std::vector<int64_t> out_shape = a.shape();
  out_shape[ax] = len;
  std::vector<float> out(NumElements(out_shape));
  const auto& av = a.value();
  for (int64_t o = 0; o < outer; ++o) {
    std::memcpy(out.data() + o * len * inner,
                av.data() + (o * a_ax + start) * inner,
                sizeof(float) * len * inner);
  }

  Tensor ta = a;
  Tensor result =
      MakeResult(std::move(out_shape), std::move(out), {a},
                 [ta, outer, inner, a_ax, start, len](Node& node) mutable {
                   if (!ta.requires_grad()) return;
                   auto& ga = ta.node()->EnsureGrad();
                   const auto& g = node.grad;
                   for (int64_t o = 0; o < outer; ++o) {
                     const float* src = g.data() + o * len * inner;
                     float* dst = ga.data() + (o * a_ax + start) * inner;
                     for (int64_t i = 0; i < len * inner; ++i) dst[i] += src[i];
                   }
                 });
  if (PlanTracer::Current() != nullptr) {
    TraceRecord r;
    r.kind = OpKind::kSlice;
    r.inputs = {a.node_ptr()};
    r.output = result.node_ptr();
    r.axis = ax;
    r.start = start;
    r.len = len;
    internal::TraceOp(std::move(r));
  }
  return result;
}

// ----------------------------------------------------------------------------
// Reductions
// ----------------------------------------------------------------------------

Tensor SumAll(const Tensor& a) {
  TraceUnsupported("SumAll");
  double acc = 0.0;
  for (float v : a.value()) acc += v;
  Tensor ta = a;
  return MakeResult({1}, {static_cast<float>(acc)}, {a},
                    [ta](Node& node) mutable {
                      if (!ta.requires_grad()) return;
                      auto& ga = ta.node()->EnsureGrad();
                      const float g = node.grad[0];
                      float* gap = ga.data();
                      ParallelFor(0, static_cast<int64_t>(ga.size()),
                                  GrainFor(1), [&](int64_t i0, int64_t i1) {
                                    for (int64_t i = i0; i < i1; ++i) {
                                      gap[i] += g;
                                    }
                                  });
                    });
}

Tensor MeanAll(const Tensor& a) {
  return MulScalar(SumAll(a), 1.0f / static_cast<float>(a.size()));
}

namespace {

Tensor ReduceAxis(const Tensor& a, int axis, bool keepdims, float scale) {
  const int nd = a.ndim();
  const int ax = NormalizeAxis(axis, nd);
  int64_t outer = 1;
  for (int i = 0; i < ax; ++i) outer *= a.dim(i);
  const int64_t n = a.dim(ax);
  int64_t inner = 1;
  for (int i = ax + 1; i < nd; ++i) inner *= a.dim(i);

  std::vector<int64_t> out_shape;
  for (int i = 0; i < nd; ++i) {
    if (i == ax) {
      if (keepdims) out_shape.push_back(1);
    } else {
      out_shape.push_back(a.dim(i));
    }
  }
  if (out_shape.empty()) out_shape.push_back(1);

  std::vector<float> out(outer * inner, 0.0f);
  {
    const float* av = a.value().data();
    float* op = out.data();
    // Each output row o is owned by one chunk, so the j-ascending
    // accumulation order per element matches the serial loop exactly.
    ParallelFor(0, outer, GrainFor(n * inner),
                [&](int64_t o0, int64_t o1) {
                  for (int64_t o = o0; o < o1; ++o) {
                    for (int64_t j = 0; j < n; ++j) {
                      const float* src = av + (o * n + j) * inner;
                      float* dst = op + o * inner;
                      for (int64_t i = 0; i < inner; ++i) dst[i] += src[i];
                    }
                    if (scale != 1.0f) {
                      float* dst = op + o * inner;
                      for (int64_t i = 0; i < inner; ++i) dst[i] *= scale;
                    }
                  }
                });
  }

  Tensor ta = a;
  Tensor result =
      MakeResult(std::move(out_shape), std::move(out), {a},
                 [ta, outer, n, inner, scale](Node& node) mutable {
                   if (!ta.requires_grad()) return;
                   auto& ga = ta.node()->EnsureGrad();
                   const float* g = node.grad.data();
                   float* gap = ga.data();
                   ParallelFor(
                       0, outer, GrainFor(n * inner),
                       [&](int64_t o0, int64_t o1) {
                         for (int64_t o = o0; o < o1; ++o) {
                           const float* src = g + o * inner;
                           for (int64_t j = 0; j < n; ++j) {
                             float* dst = gap + (o * n + j) * inner;
                             for (int64_t i = 0; i < inner; ++i) {
                               dst[i] += src[i] * scale;
                             }
                           }
                         }
                       });
                 });
  TraceScalarOp(OpKind::kReduceAxis, a, result, scale);
  if (PlanTracer::Current() != nullptr && !PlanTracer::Current()->records.empty()) {
    PlanTracer::Current()->records.back().axis = ax;
  }
  return result;
}

}  // namespace

Tensor SumAxis(const Tensor& a, int axis, bool keepdims) {
  return ReduceAxis(a, axis, keepdims, 1.0f);
}

Tensor MeanAxis(const Tensor& a, int axis, bool keepdims) {
  const int ax = NormalizeAxis(axis, a.ndim());
  return ReduceAxis(a, axis, keepdims,
                    1.0f / static_cast<float>(a.dim(ax)));
}

// ----------------------------------------------------------------------------
// Softmax and losses
// ----------------------------------------------------------------------------

Tensor SoftmaxLastDim(const Tensor& a) {
  const int64_t n = a.dim(-1);
  const int64_t rows = a.size() / n;
  std::vector<float> out(a.size());
  {
    const float* av = a.value().data();
    float* op = out.data();
    ParallelFor(0, rows, GrainFor(4 * n), [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        const float* src = av + r * n;
        float* dst = op + r * n;
        float max_v = src[0];
        for (int64_t i = 1; i < n; ++i) max_v = std::max(max_v, src[i]);
        float sum = 0.0f;
        for (int64_t i = 0; i < n; ++i) {
          dst[i] = std::exp(src[i] - max_v);
          sum += dst[i];
        }
        const float inv = 1.0f / sum;
        for (int64_t i = 0; i < n; ++i) dst[i] *= inv;
      }
    });
  }
  Tensor ta = a;
  Tensor result =
      MakeResult(a.shape(), std::move(out), {a},
                 [ta, rows, n](Node& node) mutable {
                   if (!ta.requires_grad()) return;
                   auto& ga = ta.node()->EnsureGrad();
                   const float* y = node.value.data();
                   const float* g = node.grad.data();
                   float* gap = ga.data();
                   ParallelFor(
                       0, rows, GrainFor(4 * n),
                       [&](int64_t r0, int64_t r1) {
                         for (int64_t r = r0; r < r1; ++r) {
                           const float* yr = y + r * n;
                           const float* gr = g + r * n;
                           float dot = 0.0f;
                           for (int64_t i = 0; i < n; ++i) {
                             dot += yr[i] * gr[i];
                           }
                           float* dst = gap + r * n;
                           for (int64_t i = 0; i < n; ++i) {
                             dst[i] += yr[i] * (gr[i] - dot);
                           }
                         }
                       });
                 });
  Trace1(OpKind::kSoftmaxLastDim, a, result);
  return result;
}

Tensor MaskedSoftmaxLastDim(const Tensor& a, const std::vector<float>& mask) {
  MISS_CHECK_EQ(static_cast<int64_t>(mask.size()), a.size());
  const int64_t n = a.dim(-1);
  const int64_t rows = a.size() / n;
  std::vector<float> out(a.size(), 0.0f);
  {
    const float* av = a.value().data();
    const float* mp = mask.data();
    float* op = out.data();
    ParallelFor(0, rows, GrainFor(4 * n), [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        const float* src = av + r * n;
        const float* msk = mp + r * n;
        float* dst = op + r * n;
        float max_v = -std::numeric_limits<float>::infinity();
        for (int64_t i = 0; i < n; ++i) {
          if (msk[i] > 0.0f) max_v = std::max(max_v, src[i]);
        }
        if (max_v == -std::numeric_limits<float>::infinity()) {
          continue;  // all pad
        }
        float sum = 0.0f;
        for (int64_t i = 0; i < n; ++i) {
          if (msk[i] > 0.0f) {
            dst[i] = std::exp(src[i] - max_v);
            sum += dst[i];
          }
        }
        const float inv = 1.0f / sum;
        for (int64_t i = 0; i < n; ++i) dst[i] *= inv;
      }
    });
  }
  Tensor ta = a;
  Tensor result = MakeResult(
      a.shape(), std::move(out), {a}, [ta, mask, rows, n](Node& node) mutable {
        if (!ta.requires_grad()) return;
        auto& ga = ta.node()->EnsureGrad();
        const float* y = node.value.data();
        const float* g = node.grad.data();
        float* gap = ga.data();
        ParallelFor(0, rows, GrainFor(4 * n), [&](int64_t r0, int64_t r1) {
          for (int64_t r = r0; r < r1; ++r) {
            const float* yr = y + r * n;
            const float* gr = g + r * n;
            float dot = 0.0f;
            for (int64_t i = 0; i < n; ++i) {
              dot += yr[i] * gr[i];
            }
            float* dst = gap + r * n;
            for (int64_t i = 0; i < n; ++i) {
              dst[i] += yr[i] * (gr[i] - dot);
            }
          }
        });
      });
  if (PlanTracer::Current() != nullptr) {
    TraceRecord r;
    r.kind = OpKind::kMaskedSoftmaxLastDim;
    r.inputs = {a.node_ptr()};
    r.output = result.node_ptr();
    r.float_attr = mask;
    internal::TraceOp(std::move(r));
  }
  return result;
}

Tensor DiagonalNllFromLogits(const Tensor& s) {
  TraceUnsupported("DiagonalNllFromLogits");
  MISS_CHECK_EQ(s.ndim(), 2);
  const int64_t b_dim = s.dim(0);
  MISS_CHECK_EQ(b_dim, s.dim(1));
  const auto& sv = s.value();
  double loss = 0.0;
  for (int64_t r = 0; r < b_dim; ++r) {
    const float* row = sv.data() + r * b_dim;
    float max_v = row[0];
    for (int64_t c = 1; c < b_dim; ++c) max_v = std::max(max_v, row[c]);
    double sum = 0.0;
    for (int64_t c = 0; c < b_dim; ++c) sum += std::exp(row[c] - max_v);
    loss += (max_v + std::log(sum)) - row[r];
  }
  loss /= static_cast<double>(b_dim);

  Tensor ts = s;
  return MakeResult(
      {1}, {static_cast<float>(loss)}, {s}, [ts, b_dim](Node& node) mutable {
        if (!ts.requires_grad()) return;
        auto& gs = ts.node()->EnsureGrad();
        const float* sv = ts.value().data();
        float* gsp = gs.data();
        const float g = node.grad[0] / static_cast<float>(b_dim);
        ParallelFor(0, b_dim, GrainFor(8 * b_dim), [&](int64_t r0, int64_t r1) {
          for (int64_t r = r0; r < r1; ++r) {
            const float* row = sv + r * b_dim;
            float* grow = gsp + r * b_dim;
            float max_v = row[0];
            for (int64_t c = 1; c < b_dim; ++c) max_v = std::max(max_v, row[c]);
            double sum = 0.0;
            for (int64_t c = 0; c < b_dim; ++c) sum += std::exp(row[c] - max_v);
            for (int64_t c = 0; c < b_dim; ++c) {
              const float p =
                  static_cast<float>(std::exp(row[c] - max_v) / sum);
              grow[c] += g * (p - (c == r ? 1.0f : 0.0f));
            }
          }
        });
      });
}

Tensor BceWithLogitsLoss(const Tensor& logits,
                         const std::vector<float>& labels) {
  TraceUnsupported("BceWithLogitsLoss");
  MISS_CHECK_EQ(logits.size(), static_cast<int64_t>(labels.size()));
  const int64_t n = logits.size();
  const auto& x = logits.value();
  double loss = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const float xi = x[i];
    // max(x, 0) - x*y + log(1 + exp(-|x|))
    loss += std::max(xi, 0.0f) - xi * labels[i] +
            std::log1p(std::exp(-std::abs(xi)));
  }
  loss /= static_cast<double>(n);

  Tensor tl = logits;
  return MakeResult(
      {1}, {static_cast<float>(loss)}, {logits},
      [tl, labels, n](Node& node) mutable {
        if (!tl.requires_grad()) return;
        auto& gl = tl.node()->EnsureGrad();
        const float* x = tl.value().data();
        const float* lp = labels.data();
        float* glp = gl.data();
        const float g = node.grad[0] / static_cast<float>(n);
        ParallelFor(0, n, GrainFor(16), [&](int64_t i0, int64_t i1) {
          for (int64_t i = i0; i < i1; ++i) {
            const float xi = x[i];
            const float sig = xi >= 0.0f ? 1.0f / (1.0f + std::exp(-xi))
                                         : std::exp(xi) / (1.0f + std::exp(xi));
            glp[i] += g * (sig - lp[i]);
          }
        });
      });
}

// ----------------------------------------------------------------------------
// Normalization / dropout
// ----------------------------------------------------------------------------

Tensor RowL2Normalize(const Tensor& a, float eps) {
  const int64_t n = a.dim(-1);
  const int64_t rows = a.size() / n;
  std::vector<float> out(a.size());
  std::vector<float> norms(rows);
  {
    const float* av = a.value().data();
    float* op = out.data();
    float* np = norms.data();
    ParallelFor(0, rows, GrainFor(4 * n), [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        const float* src = av + r * n;
        double sq = 0.0;
        for (int64_t i = 0; i < n; ++i) {
          sq += static_cast<double>(src[i]) * src[i];
        }
        const float norm = static_cast<float>(std::sqrt(sq + eps));
        np[r] = norm;
        float* dst = op + r * n;
        for (int64_t i = 0; i < n; ++i) dst[i] = src[i] / norm;
      }
    });
  }
  Tensor ta = a;
  Tensor result = MakeResult(
      a.shape(), std::move(out), {a},
      [ta, rows, n, norms = std::move(norms)](Node& node) mutable {
        if (!ta.requires_grad()) return;
        auto& ga = ta.node()->EnsureGrad();
        const float* y = node.value.data();
        const float* g = node.grad.data();
        const float* np = norms.data();
        float* gap = ga.data();
        ParallelFor(0, rows, GrainFor(4 * n), [&](int64_t r0, int64_t r1) {
          for (int64_t r = r0; r < r1; ++r) {
            const float* yr = y + r * n;
            const float* gr = g + r * n;
            float dot = 0.0f;
            for (int64_t i = 0; i < n; ++i) dot += yr[i] * gr[i];
            const float inv = 1.0f / np[r];
            float* dst = gap + r * n;
            for (int64_t i = 0; i < n; ++i) {
              dst[i] += (gr[i] - yr[i] * dot) * inv;
            }
          }
        });
      });
  TraceScalarOp(OpKind::kRowL2Normalize, a, result, eps);
  return result;
}

Tensor Dropout(const Tensor& a, float p, bool training, common::Rng& rng) {
  if (!training || p <= 0.0f) return a;
  // A live dropout cannot be replayed from a static plan (fresh randomness
  // per forward); inference forwards never reach here.
  TraceUnsupported("Dropout(training)");
  MISS_CHECK_LT(p, 1.0f);
  const float scale = 1.0f / (1.0f - p);
  const int64_t n = a.size();
  std::vector<float> mask(n);
  for (auto& m : mask) m = rng.Bernoulli(p) ? 0.0f : scale;
  std::vector<float> out(n);
  const auto& av = a.value();
  for (int64_t i = 0; i < n; ++i) out[i] = av[i] * mask[i];
  Tensor ta = a;
  return MakeResult(a.shape(), std::move(out), {a},
                    [ta, mask = std::move(mask)](Node& node) mutable {
                      if (!ta.requires_grad()) return;
                      auto& ga = ta.node()->EnsureGrad();
                      const float* g = node.grad.data();
                      const float* mp = mask.data();
                      float* gap = ga.data();
                      ParallelFor(0, static_cast<int64_t>(node.grad.size()),
                                  GrainFor(2), [&](int64_t i0, int64_t i1) {
                                    for (int64_t i = i0; i < i1; ++i) {
                                      gap[i] += g[i] * mp[i];
                                    }
                                  });
                    });
}

// ----------------------------------------------------------------------------
// Gather / scatter
// ----------------------------------------------------------------------------

Tensor EmbeddingLookup(const Tensor& table, const std::vector<int64_t>& ids,
                       std::vector<int64_t> leading_shape) {
  MISS_TRACE_SCOPE("nn/embedding_lookup");
  MISS_CHECK_EQ(table.ndim(), 2);
  MISS_CHECK_EQ(NumElements(leading_shape),
                static_cast<int64_t>(ids.size()));
  const int64_t vocab = table.dim(0);
  const int64_t k_dim = table.dim(1);
  std::vector<float> out(ids.size() * k_dim, 0.0f);
  {
    const float* tv = table.value().data();
    const int64_t* idp = ids.data();
    float* op = out.data();
    ParallelFor(0, static_cast<int64_t>(ids.size()), GrainFor(k_dim),
                [&](int64_t i0, int64_t i1) {
                  for (int64_t i = i0; i < i1; ++i) {
                    const int64_t id = idp[i];
                    if (id < 0) continue;  // padding: zero row
                    MISS_CHECK_LT(id, vocab) << "embedding id out of range";
                    std::memcpy(op + i * k_dim, tv + id * k_dim,
                                sizeof(float) * k_dim);
                  }
                });
  }
  std::vector<int64_t> out_shape = std::move(leading_shape);
  out_shape.push_back(k_dim);

  Tensor tt = table;
  Tensor result =
      MakeResult(std::move(out_shape), std::move(out), {table},
                 [tt, ids, k_dim](Node& node) mutable {
                   if (!tt.requires_grad()) return;
                   auto& gt = tt.node()->EnsureGrad();
                   const auto& g = node.grad;
                   // Serial: repeated ids scatter-add into the same table
                   // row, so id-order accumulation must be preserved.
                   for (size_t i = 0; i < ids.size(); ++i) {
                     const int64_t id = ids[i];
                     if (id < 0) continue;
                     const float* src = g.data() + i * k_dim;
                     float* dst = gt.data() + id * k_dim;
                     for (int64_t k = 0; k < k_dim; ++k) dst[k] += src[k];
                   }
                 });
  if (PlanTracer::Current() != nullptr) {
    TraceRecord r;
    r.kind = OpKind::kEmbeddingLookup;
    r.inputs = {table.node_ptr()};
    r.output = result.node_ptr();
    r.int_attr = ids;
    internal::TraceOp(std::move(r));
  }
  return result;
}

Tensor SelectTimeSteps(const Tensor& x, const std::vector<int64_t>& idx,
                       int64_t t_count) {
  MISS_CHECK_EQ(x.ndim(), 3);
  const int64_t b_dim = x.dim(0);
  const int64_t l_dim = x.dim(1);
  const int64_t k_dim = x.dim(2);
  MISS_CHECK_EQ(static_cast<int64_t>(idx.size()), b_dim * t_count);
  std::vector<float> out(b_dim * t_count * k_dim);
  {
    const float* xv = x.value().data();
    float* op = out.data();
    ParallelFor(0, b_dim, GrainFor(t_count * k_dim),
                [&](int64_t b0, int64_t b1) {
                  for (int64_t b = b0; b < b1; ++b) {
                    for (int64_t t = 0; t < t_count; ++t) {
                      const int64_t l = idx[b * t_count + t];
                      MISS_CHECK_GE(l, 0);
                      MISS_CHECK_LT(l, l_dim);
                      std::memcpy(op + (b * t_count + t) * k_dim,
                                  xv + (b * l_dim + l) * k_dim,
                                  sizeof(float) * k_dim);
                    }
                  }
                });
  }
  Tensor tx = x;
  Tensor result = MakeResult(
      {b_dim, t_count, k_dim}, std::move(out), {x},
      [tx, idx, b_dim, l_dim, t_count, k_dim](Node& node) mutable {
        if (!tx.requires_grad()) return;
        auto& gx = tx.node()->EnsureGrad();
        const float* g = node.grad.data();
        float* gxp = gx.data();
        // Scatter targets stay within batch row b, so chunking over b keeps
        // every gradient element owned by one task.
        ParallelFor(0, b_dim, GrainFor(t_count * k_dim),
                    [&](int64_t b0, int64_t b1) {
                      for (int64_t b = b0; b < b1; ++b) {
                        for (int64_t t = 0; t < t_count; ++t) {
                          const int64_t l = idx[b * t_count + t];
                          const float* src = g + (b * t_count + t) * k_dim;
                          float* dst = gxp + (b * l_dim + l) * k_dim;
                          for (int64_t k = 0; k < k_dim; ++k) dst[k] += src[k];
                        }
                      }
                    });
      });
  if (PlanTracer::Current() != nullptr) {
    TraceRecord r;
    r.kind = OpKind::kSelectTimeSteps;
    r.inputs = {x.node_ptr()};
    r.output = result.node_ptr();
    r.int_attr = idx;
    r.len = t_count;
    internal::TraceOp(std::move(r));
  }
  return result;
}

Tensor GatherInterest(const Tensor& g, const std::vector<int64_t>& l_idx) {
  TraceUnsupported("GatherInterest");
  MISS_CHECK_EQ(g.ndim(), 4);
  const int64_t b_dim = g.dim(0);
  const int64_t j_dim = g.dim(1);
  const int64_t l_dim = g.dim(2);
  const int64_t k_dim = g.dim(3);
  MISS_CHECK_EQ(static_cast<int64_t>(l_idx.size()), b_dim);
  std::vector<float> out(b_dim * j_dim * k_dim);
  {
    const float* gv = g.value().data();
    float* op = out.data();
    ParallelFor(0, b_dim, GrainFor(j_dim * k_dim),
                [&](int64_t b0, int64_t b1) {
                  for (int64_t b = b0; b < b1; ++b) {
                    const int64_t l = l_idx[b];
                    MISS_CHECK_GE(l, 0);
                    MISS_CHECK_LT(l, l_dim);
                    for (int64_t j = 0; j < j_dim; ++j) {
                      std::memcpy(op + (b * j_dim + j) * k_dim,
                                  gv + ((b * j_dim + j) * l_dim + l) * k_dim,
                                  sizeof(float) * k_dim);
                    }
                  }
                });
  }
  Tensor tg = g;
  return MakeResult(
      {b_dim, j_dim * k_dim}, std::move(out), {g},
      [tg, l_idx, b_dim, j_dim, l_dim, k_dim](Node& node) mutable {
        if (!tg.requires_grad()) return;
        auto& gg = tg.node()->EnsureGrad();
        const float* grad = node.grad.data();
        float* ggp = gg.data();
        ParallelFor(0, b_dim, GrainFor(j_dim * k_dim),
                    [&](int64_t b0, int64_t b1) {
                      for (int64_t b = b0; b < b1; ++b) {
                        const int64_t l = l_idx[b];
                        for (int64_t j = 0; j < j_dim; ++j) {
                          const float* src = grad + (b * j_dim + j) * k_dim;
                          float* dst =
                              ggp + ((b * j_dim + j) * l_dim + l) * k_dim;
                          for (int64_t k = 0; k < k_dim; ++k) dst[k] += src[k];
                        }
                      }
                    });
      });
}

Tensor GatherFeatureVector(const Tensor& g, const std::vector<int64_t>& j_idx,
                           const std::vector<int64_t>& l_idx) {
  TraceUnsupported("GatherFeatureVector");
  MISS_CHECK_EQ(g.ndim(), 4);
  const int64_t b_dim = g.dim(0);
  const int64_t j_dim = g.dim(1);
  const int64_t l_dim = g.dim(2);
  const int64_t k_dim = g.dim(3);
  MISS_CHECK_EQ(static_cast<int64_t>(j_idx.size()), b_dim);
  MISS_CHECK_EQ(static_cast<int64_t>(l_idx.size()), b_dim);
  std::vector<float> out(b_dim * k_dim);
  {
    const float* gv = g.value().data();
    float* op = out.data();
    ParallelFor(0, b_dim, GrainFor(k_dim), [&](int64_t b0, int64_t b1) {
      for (int64_t b = b0; b < b1; ++b) {
        const int64_t j = j_idx[b];
        const int64_t l = l_idx[b];
        MISS_CHECK_GE(j, 0);
        MISS_CHECK_LT(j, j_dim);
        MISS_CHECK_GE(l, 0);
        MISS_CHECK_LT(l, l_dim);
        std::memcpy(op + b * k_dim,
                    gv + ((b * j_dim + j) * l_dim + l) * k_dim,
                    sizeof(float) * k_dim);
      }
    });
  }
  Tensor tg = g;
  return MakeResult(
      {b_dim, k_dim}, std::move(out), {g},
      [tg, j_idx, l_idx, b_dim, j_dim, l_dim, k_dim](Node& node) mutable {
        if (!tg.requires_grad()) return;
        auto& gg = tg.node()->EnsureGrad();
        const float* grad = node.grad.data();
        float* ggp = gg.data();
        ParallelFor(0, b_dim, GrainFor(k_dim), [&](int64_t b0, int64_t b1) {
          for (int64_t b = b0; b < b1; ++b) {
            const float* src = grad + b * k_dim;
            float* dst =
                ggp + ((b * j_dim + j_idx[b]) * l_dim + l_idx[b]) * k_dim;
            for (int64_t k = 0; k < k_dim; ++k) dst[k] += src[k];
          }
        });
      });
}

// ----------------------------------------------------------------------------
// MISS convolutions
// ----------------------------------------------------------------------------

Tensor HorizontalConv(const Tensor& c, const Tensor& kernel) {
  MISS_TRACE_SCOPE("nn/horizontal_conv");
  TraceUnsupported("HorizontalConv");
  MISS_CHECK_EQ(c.ndim(), 4);
  MISS_CHECK_EQ(kernel.ndim(), 1);
  const int64_t b_dim = c.dim(0);
  const int64_t j_dim = c.dim(1);
  const int64_t l_dim = c.dim(2);
  const int64_t k_dim = c.dim(3);
  const int64_t m = kernel.dim(0);
  MISS_CHECK_LE(m, l_dim) << "horizontal kernel wider than sequence";
  const int64_t l_out = l_dim - m + 1;

  std::vector<float> out(b_dim * j_dim * l_out * k_dim, 0.0f);
  {
    const float* cv = c.value().data();
    const float* w = kernel.value().data();
    float* op = out.data();
    ParallelFor(0, b_dim * j_dim, GrainFor(l_out * m * k_dim),
                [&](int64_t bj0, int64_t bj1) {
                  for (int64_t bj = bj0; bj < bj1; ++bj) {
                    const float* src = cv + bj * l_dim * k_dim;
                    float* dst = op + bj * l_out * k_dim;
                    for (int64_t l = 0; l < l_out; ++l) {
                      for (int64_t i = 0; i < m; ++i) {
                        const float wi = w[i];
                        const float* row = src + (l + i) * k_dim;
                        float* orow = dst + l * k_dim;
                        for (int64_t k = 0; k < k_dim; ++k) {
                          orow[k] += wi * row[k];
                        }
                      }
                    }
                  }
                });
  }

  Tensor tc = c;
  Tensor tk = kernel;
  return MakeResult(
      {b_dim, j_dim, l_out, k_dim}, std::move(out), {c, kernel},
      [tc, tk, b_dim, j_dim, l_dim, k_dim, m, l_out](Node& node) mutable {
        const auto& g = node.grad;
        const auto& cv = tc.value();
        const auto& w = tk.value();
        const bool need_c = tc.requires_grad();
        const bool need_k = tk.requires_grad();
        auto* gc = need_c ? &tc.node()->EnsureGrad() : nullptr;
        auto* gk = need_k ? &tk.node()->EnsureGrad() : nullptr;
        if (need_c) {
          // Input-gradient writes stay inside plane bj, so bj chunks own
          // disjoint output ranges.
          float* gcp = gc->data();
          const float* gp = g.data();
          const float* wp = w.data();
          ParallelFor(0, b_dim * j_dim, GrainFor(l_out * m * k_dim),
                      [&](int64_t bj0, int64_t bj1) {
                        for (int64_t bj = bj0; bj < bj1; ++bj) {
                          const float* gsrc = gp + bj * l_out * k_dim;
                          for (int64_t l = 0; l < l_out; ++l) {
                            const float* grow = gsrc + l * k_dim;
                            for (int64_t i = 0; i < m; ++i) {
                              float* dst =
                                  gcp + (bj * l_dim + l + i) * k_dim;
                              const float wi = wp[i];
                              for (int64_t k = 0; k < k_dim; ++k) {
                                dst[k] += wi * grow[k];
                              }
                            }
                          }
                        }
                      });
        }
        if (need_k) {
          // Serial: gk[i] reduces across every bj plane, so bj-order
          // accumulation must be preserved.
          for (int64_t bj = 0; bj < b_dim * j_dim; ++bj) {
            const float* gsrc = g.data() + bj * l_out * k_dim;
            const float* csrc = cv.data() + bj * l_dim * k_dim;
            for (int64_t l = 0; l < l_out; ++l) {
              const float* grow = gsrc + l * k_dim;
              for (int64_t i = 0; i < m; ++i) {
                const float* crow = csrc + (l + i) * k_dim;
                float acc = 0.0f;
                for (int64_t k = 0; k < k_dim; ++k) acc += crow[k] * grow[k];
                (*gk)[i] += acc;
              }
            }
          }
        }
      });
}

Tensor VerticalConv(const Tensor& g_in, const Tensor& kernel) {
  MISS_TRACE_SCOPE("nn/vertical_conv");
  TraceUnsupported("VerticalConv");
  MISS_CHECK_EQ(g_in.ndim(), 4);
  MISS_CHECK_EQ(kernel.ndim(), 1);
  const int64_t b_dim = g_in.dim(0);
  const int64_t j_dim = g_in.dim(1);
  const int64_t l_dim = g_in.dim(2);
  const int64_t k_dim = g_in.dim(3);
  const int64_t n = kernel.dim(0);
  MISS_CHECK_LE(n, j_dim) << "vertical kernel taller than field count";
  const int64_t j_out = j_dim - n + 1;

  const int64_t plane = l_dim * k_dim;
  std::vector<float> out(b_dim * j_out * plane, 0.0f);
  {
    const float* gv = g_in.value().data();
    const float* w = kernel.value().data();
    float* op = out.data();
    ParallelFor(0, b_dim, GrainFor(j_out * n * plane),
                [&](int64_t b0, int64_t b1) {
                  for (int64_t b = b0; b < b1; ++b) {
                    const float* src = gv + b * j_dim * plane;
                    float* dst = op + b * j_out * plane;
                    for (int64_t j = 0; j < j_out; ++j) {
                      for (int64_t i = 0; i < n; ++i) {
                        const float wi = w[i];
                        const float* row = src + (j + i) * plane;
                        float* orow = dst + j * plane;
                        for (int64_t p = 0; p < plane; ++p) {
                          orow[p] += wi * row[p];
                        }
                      }
                    }
                  }
                });
  }

  Tensor tg = g_in;
  Tensor tk = kernel;
  return MakeResult(
      {b_dim, j_out, l_dim, k_dim}, std::move(out), {g_in, kernel},
      [tg, tk, b_dim, j_dim, plane, n, j_out](Node& node) mutable {
        const auto& g = node.grad;
        const auto& gv = tg.value();
        const auto& w = tk.value();
        const bool need_g = tg.requires_grad();
        const bool need_k = tk.requires_grad();
        auto* gg = need_g ? &tg.node()->EnsureGrad() : nullptr;
        auto* gk = need_k ? &tk.node()->EnsureGrad() : nullptr;
        if (need_g) {
          float* ggp = gg->data();
          const float* gp = g.data();
          const float* wp = w.data();
          ParallelFor(0, b_dim, GrainFor(j_out * n * plane),
                      [&](int64_t b0, int64_t b1) {
                        for (int64_t b = b0; b < b1; ++b) {
                          const float* gsrc = gp + b * j_out * plane;
                          for (int64_t j = 0; j < j_out; ++j) {
                            const float* grow = gsrc + j * plane;
                            for (int64_t i = 0; i < n; ++i) {
                              float* dst = ggp + (b * j_dim + j + i) * plane;
                              const float wi = wp[i];
                              for (int64_t p = 0; p < plane; ++p) {
                                dst[p] += wi * grow[p];
                              }
                            }
                          }
                        }
                      });
        }
        if (need_k) {
          // Serial: gk[i] reduces across every batch, so batch-order
          // accumulation must be preserved.
          for (int64_t b = 0; b < b_dim; ++b) {
            const float* gsrc = g.data() + b * j_out * plane;
            const float* xsrc = gv.data() + b * j_dim * plane;
            for (int64_t j = 0; j < j_out; ++j) {
              const float* grow = gsrc + j * plane;
              for (int64_t i = 0; i < n; ++i) {
                const float* xrow = xsrc + (j + i) * plane;
                float acc = 0.0f;
                for (int64_t p = 0; p < plane; ++p) acc += xrow[p] * grow[p];
                (*gk)[i] += acc;
              }
            }
          }
        }
      });
}

}  // namespace miss::nn
