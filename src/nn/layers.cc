#include "nn/layers.h"

#include <memory>
#include <utility>

namespace miss::nn {

Linear::Linear(int64_t in_dim, int64_t out_dim, common::Rng& rng)
    : in_dim_(in_dim), out_dim_(out_dim) {
  weight_ = AddParameter(
      Tensor::XavierUniform({in_dim, out_dim}, rng, /*requires_grad=*/true));
  bias_ = AddParameter(Tensor::Zeros({out_dim}, /*requires_grad=*/true));
}

Tensor Linear::Forward(const Tensor& x) const {
  MISS_CHECK_EQ(x.dim(-1), in_dim_);
  return Add(MatMul(x, weight_), bias_);
}

PRelu::PRelu(float init_slope) {
  slope_ = AddParameter(Tensor::Full({1}, init_slope, /*requires_grad=*/true));
}

Tensor PRelu::Forward(const Tensor& x) const {
  // prelu(x) = relu(x) - slope * relu(-x)
  return Sub(Relu(x), Mul(slope_, Relu(Neg(x))));
}

Mlp::Mlp(std::vector<int64_t> dims, Activation hidden, Activation output,
         common::Rng& rng)
    : dims_(std::move(dims)), hidden_(hidden), output_(output) {
  MISS_CHECK_GE(dims_.size(), 2u);
  for (size_t i = 0; i + 1 < dims_.size(); ++i) {
    layers_.push_back(std::make_unique<Linear>(dims_[i], dims_[i + 1], rng));
    RegisterChild(layers_.back().get());
    prelus_.push_back(std::make_unique<PRelu>());
    RegisterChild(prelus_.back().get());
  }
}

Tensor Mlp::Activate(const Tensor& x, Activation act, size_t layer) const {
  switch (act) {
    case Activation::kNone:
      return x;
    case Activation::kRelu:
      return Relu(x);
    case Activation::kSigmoid:
      return Sigmoid(x);
    case Activation::kTanh:
      return Tanh(x);
    case Activation::kPRelu:
      return prelus_[layer]->Forward(x);
  }
  return x;
}

Tensor Mlp::Forward(const Tensor& x) const {
  Tensor h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i]->Forward(h);
    const bool last = (i + 1 == layers_.size());
    h = Activate(h, last ? output_ : hidden_, i);
  }
  return h;
}

Embedding::Embedding(int64_t vocab, int64_t dim, common::Rng& rng,
                     float init_stddev) {
  table_ = AddParameter(Tensor::RandomNormal({vocab, dim}, init_stddev, rng,
                                             /*requires_grad=*/true));
}

Tensor Embedding::Forward(const std::vector<int64_t>& ids,
                          std::vector<int64_t> leading_shape) const {
  return EmbeddingLookup(table_, ids, std::move(leading_shape));
}

}  // namespace miss::nn
