#include "nn/plan.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "nn/kernels.h"
#include "nn/parallel.h"

namespace miss::nn {

// ----------------------------------------------------------------------------
// PlanTracer
// ----------------------------------------------------------------------------

namespace {
thread_local PlanTracer* g_tracer = nullptr;
}  // namespace

PlanTracer::PlanTracer() : prev_(g_tracer) { g_tracer = this; }
PlanTracer::~PlanTracer() { g_tracer = prev_; }
PlanTracer* PlanTracer::Current() { return g_tracer; }

void PlanTracer::MarkUnsupported(const std::string& what) {
  if (ok) {
    ok = false;
    unsupported = what;
  }
}

namespace internal {

void TraceOp(TraceRecord record) {
  if (g_tracer != nullptr) g_tracer->records.push_back(std::move(record));
}

void Trace1(OpKind kind, const Tensor& a, const Tensor& out) {
  if (g_tracer == nullptr) return;
  TraceRecord r;
  r.kind = kind;
  r.inputs = {a.node_ptr()};
  r.output = out.node_ptr();
  TraceOp(std::move(r));
}

void Trace2(OpKind kind, const Tensor& a, const Tensor& b, const Tensor& out) {
  if (g_tracer == nullptr) return;
  TraceRecord r;
  r.kind = kind;
  r.inputs = {a.node_ptr(), b.node_ptr()};
  r.output = out.node_ptr();
  TraceOp(std::move(r));
}

void TraceUnsupported(const char* what) {
  if (g_tracer != nullptr) g_tracer->MarkUnsupported(what);
}

}  // namespace internal

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kAdd: return "Add";
    case OpKind::kSub: return "Sub";
    case OpKind::kMul: return "Mul";
    case OpKind::kDiv: return "Div";
    case OpKind::kAddScalar: return "AddScalar";
    case OpKind::kMulScalar: return "MulScalar";
    case OpKind::kRelu: return "Relu";
    case OpKind::kSigmoid: return "Sigmoid";
    case OpKind::kTanh: return "Tanh";
    case OpKind::kExp: return "Exp";
    case OpKind::kLog: return "Log";
    case OpKind::kSqrt: return "Sqrt";
    case OpKind::kSquare: return "Square";
    case OpKind::kMatMul: return "MatMul";
    case OpKind::kBatchMatMul: return "BatchMatMul";
    case OpKind::kTransposeLast2: return "TransposeLast2";
    case OpKind::kReshape: return "Reshape";
    case OpKind::kConcat: return "Concat";
    case OpKind::kSlice: return "Slice";
    case OpKind::kReduceAxis: return "ReduceAxis";
    case OpKind::kSoftmaxLastDim: return "SoftmaxLastDim";
    case OpKind::kMaskedSoftmaxLastDim: return "MaskedSoftmaxLastDim";
    case OpKind::kRowL2Normalize: return "RowL2Normalize";
    case OpKind::kEmbeddingLookup: return "EmbeddingLookup";
    case OpKind::kSelectTimeSteps: return "SelectTimeSteps";
    case OpKind::kGemmEpilogue: return "GemmEpilogue";
    case OpKind::kFusedChain: return "FusedChain";
    case OpKind::kNone: return "None";
  }
  return "?";
}

// ----------------------------------------------------------------------------
// Compiler internals. Named (not anonymous) namespace: InferencePlan has
// external linkage and holds these types as members.
// ----------------------------------------------------------------------------

namespace plan_internal {

// How a probe-dependent leaf (embedding ids, attention masks, pooling
// counts...) is recomputed from a raw data::Batch at execution time. Padded
// rows b >= n bind batch row 0 (round-up-and-slice).
struct Derivation {
  enum class Kind {
    kCatColumn,       // int64 [B]:   cat[row*I + field]
    kSeqWindow,       // int64 [B,m]: seq[(row*J + field)*L + begin + l]
    kLengthIndex,     // int64 [B]:   lengths[row] + offset, clamped at 0
    kMaskWindow,      // float [B,reps,len]: mask[row*L + begin + i] (rep-major)
    kMaskWindowInner, // float [B,len,reps]: same, rep innermost
    kMaskCountFn,     // float [B,m]: fn(sum_i mask[row*L + begin + i]), m reps
    kMaskAny,         // float [B,m]: per session s of width len (the last one
                      // truncated to L), any(mask in session) ? 1 : 0
    kLengthFn,        // float [B,m]: fn((float)lengths[row]), m reps
  };
  Kind kind = Kind::kCatColumn;
  int64_t field = 0;              // cat field f or seq field j
  int64_t begin = 0;
  int64_t len = 0;
  int64_t reps = 0;
  int64_t offset = 0;             // kLengthIndex
  bool clamp0 = false;            // kLengthIndex: max(., 0)
  bool invert = false;            // mask windows: 1 - mask
  int fn = 0;  // kMaskCountFn: 0=cnt 1=(cnt>0?1/cnt:0) 2=1/max(cnt,1)
               //               3=(cnt>0?1:0)
               // kLengthFn:    0=len 1=1/len
  int64_t m = 0;                  // elements per batch row
};

inline float MaskCountFn(int fn, float cnt) {
  switch (fn) {
    case 0: return cnt;
    case 1: return cnt > 0.0f ? 1.0f / cnt : 0.0f;
    case 3: return cnt > 0.0f ? 1.0f : 0.0f;
    default: return 1.0f / std::max(cnt, 1.0f);
  }
}

// Evaluates `d` for a padded batch: `bucket` output rows over `n` real batch
// rows. Exactly one of fdst/idst is used, matching the derivation's type.
void EvalDerivation(const Derivation& d, const data::Batch& batch,
                    int64_t bucket, int64_t n, float* fdst, int64_t* idst) {
  const int64_t I = batch.num_cat;
  const int64_t J = batch.num_seq;
  const int64_t L = batch.seq_len;
  for (int64_t b = 0; b < bucket; ++b) {
    const int64_t row = b < n ? b : 0;
    switch (d.kind) {
      case Derivation::Kind::kCatColumn:
        idst[b] = batch.cat[row * I + d.field];
        break;
      case Derivation::Kind::kSeqWindow:
        for (int64_t l = 0; l < d.m; ++l) {
          idst[b * d.m + l] = batch.seq[(row * J + d.field) * L + d.begin + l];
        }
        break;
      case Derivation::Kind::kLengthIndex: {
        int64_t v = batch.lengths[row] + d.offset;
        if (d.clamp0) v = std::max<int64_t>(v, 0);
        idst[b] = v;
        break;
      }
      case Derivation::Kind::kMaskWindow:
        for (int64_t r = 0; r < d.reps; ++r) {
          for (int64_t i = 0; i < d.len; ++i) {
            float v = batch.seq_mask[row * L + d.begin + i];
            if (d.invert) v = 1.0f - v;
            fdst[(b * d.reps + r) * d.len + i] = v;
          }
        }
        break;
      case Derivation::Kind::kMaskWindowInner:
        for (int64_t i = 0; i < d.len; ++i) {
          float v = batch.seq_mask[row * L + d.begin + i];
          if (d.invert) v = 1.0f - v;
          for (int64_t r = 0; r < d.reps; ++r) {
            fdst[(b * d.len + i) * d.reps + r] = v;
          }
        }
        break;
      case Derivation::Kind::kMaskCountFn: {
        float cnt = 0.0f;
        for (int64_t i = 0; i < d.len; ++i) {
          cnt += batch.seq_mask[row * L + d.begin + i];
        }
        const float v = MaskCountFn(d.fn, cnt);
        for (int64_t r = 0; r < d.m; ++r) fdst[b * d.m + r] = v;
        break;
      }
      case Derivation::Kind::kMaskAny:
        for (int64_t s = 0; s < d.m; ++s) {
          float any = 0.0f;
          const int64_t wl = std::min(d.len, L - s * d.len);
          for (int64_t i = 0; i < wl; ++i) {
            if (batch.seq_mask[row * L + s * d.len + i] > 0.0f) {
              any = 1.0f;
              break;
            }
          }
          fdst[b * d.m + s] = any;
        }
        break;
      case Derivation::Kind::kLengthFn: {
        const float l = static_cast<float>(batch.lengths[row]);
        const float v = d.fn == 0 ? l : 1.0f / l;
        for (int64_t r = 0; r < d.m; ++r) fdst[b * d.m + r] = v;
        break;
      }
    }
  }
}

// Candidate fitting: a derivation is accepted only if EvalDerivation
// reproduces the observed leaf bitwise on EVERY probe batch. Ambiguity at
// tiny buckets is caught by load-time verification on fresh batches.

bool CheckIntCandidate(const Derivation& d,
                       const std::vector<const data::Batch*>& batches,
                       const std::vector<const std::vector<int64_t>*>& datas) {
  std::vector<int64_t> scratch(datas[0]->size());
  for (size_t t = 0; t < batches.size(); ++t) {
    const int64_t n = batches[t]->batch_size;
    EvalDerivation(d, *batches[t], n, n, nullptr, scratch.data());
    if (std::memcmp(scratch.data(), datas[t]->data(),
                    scratch.size() * sizeof(int64_t)) != 0) {
      return false;
    }
  }
  return true;
}

bool CheckFloatCandidate(const Derivation& d,
                         const std::vector<const data::Batch*>& batches,
                         const std::vector<const std::vector<float>*>& datas) {
  std::vector<float> scratch(datas[0]->size());
  for (size_t t = 0; t < batches.size(); ++t) {
    const int64_t n = batches[t]->batch_size;
    EvalDerivation(d, *batches[t], n, n, scratch.data(), nullptr);
    if (std::memcmp(scratch.data(), datas[t]->data(),
                    scratch.size() * sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

bool FitIntDerivation(const std::vector<const data::Batch*>& batches,
                      const std::vector<const std::vector<int64_t>*>& datas,
                      Derivation* out) {
  const data::Batch& b0 = *batches[0];
  const int64_t B = b0.batch_size;
  const int64_t size = static_cast<int64_t>(datas[0]->size());
  if (B <= 0 || size <= 0 || size % B != 0) return false;
  const int64_t m = size / B;
  Derivation d;
  d.m = m;
  if (m == 1) {
    d.kind = Derivation::Kind::kCatColumn;
    for (int64_t f = 0; f < b0.num_cat; ++f) {
      d.field = f;
      if (CheckIntCandidate(d, batches, datas)) {
        *out = d;
        return true;
      }
    }
    d = Derivation{};
    d.m = 1;
    d.kind = Derivation::Kind::kLengthIndex;
    for (const auto& [off, clamp] :
         {std::pair<int64_t, bool>{-1, true}, {-1, false}, {0, false}}) {
      d.offset = off;
      d.clamp0 = clamp;
      if (CheckIntCandidate(d, batches, datas)) {
        *out = d;
        return true;
      }
    }
  }
  if (m <= b0.seq_len) {
    d = Derivation{};
    d.kind = Derivation::Kind::kSeqWindow;
    d.m = m;
    for (int64_t j = 0; j < b0.num_seq; ++j) {
      d.field = j;
      for (int64_t begin = 0; begin + m <= b0.seq_len; ++begin) {
        d.begin = begin;
        if (CheckIntCandidate(d, batches, datas)) {
          *out = d;
          return true;
        }
      }
    }
  }
  return false;
}

bool FitFloatDerivation(const std::vector<const data::Batch*>& batches,
                        const std::vector<const std::vector<float>*>& datas,
                        Derivation* out) {
  const data::Batch& b0 = *batches[0];
  const int64_t B = b0.batch_size;
  const int64_t L = b0.seq_len;
  const int64_t size = static_cast<int64_t>(datas[0]->size());
  if (B <= 0 || size <= 0 || size % B != 0) return false;
  const int64_t m = size / B;
  Derivation d;
  // Mask windows, longest window first so the full-mask layout wins over a
  // degenerate short fit.
  for (int64_t len = std::min(m, L); len >= 1; --len) {
    if (m % len != 0) continue;
    const int64_t reps = m / len;
    for (int64_t begin = 0; begin + len <= L; ++begin) {
      for (const bool inner : {false, true}) {
        if (inner && reps == 1) continue;  // identical layout to rep-major
        for (const bool inv : {false, true}) {
          d = Derivation{};
          d.kind = inner ? Derivation::Kind::kMaskWindowInner
                         : Derivation::Kind::kMaskWindow;
          d.begin = begin;
          d.len = len;
          d.reps = reps;
          d.invert = inv;
          d.m = m;
          if (CheckFloatCandidate(d, batches, datas)) {
            *out = d;
            return true;
          }
        }
      }
    }
  }
  // Mask-count scalars over any (begin, len) window, longest first — covers
  // full-sequence pooling and session splits including truncated tails.
  std::vector<std::pair<int64_t, int64_t>> windows;
  for (int64_t len = L; len >= 1; --len) {
    for (int64_t begin = 0; begin + len <= L; ++begin) {
      windows.emplace_back(begin, len);
    }
  }
  for (const int fn : {1, 2, 0, 3}) {
    for (const auto& [begin, len] : windows) {
      d = Derivation{};
      d.kind = Derivation::Kind::kMaskCountFn;
      d.begin = begin;
      d.len = len;
      d.fn = fn;
      d.m = m;
      if (CheckFloatCandidate(d, batches, datas)) {
        *out = d;
        return true;
      }
    }
  }
  // Session-activity mask: m sessions of width w (ceil division, the last
  // session truncated to the sequence end).
  if (m > 1) {
    for (int64_t w = 1; w <= L; ++w) {
      if ((L + w - 1) / w != m) continue;
      d = Derivation{};
      d.kind = Derivation::Kind::kMaskAny;
      d.len = w;
      d.m = m;
      if (CheckFloatCandidate(d, batches, datas)) {
        *out = d;
        return true;
      }
    }
  }
  for (const int fn : {0, 1}) {
    d = Derivation{};
    d.kind = Derivation::Kind::kLengthFn;
    d.fn = fn;
    d.m = m;
    if (CheckFloatCandidate(d, batches, datas)) {
      *out = d;
      return true;
    }
  }
  return false;
}

// A compiled value: where its bytes live at execution time.
struct Value {
  enum class Kind { kParam, kConst, kInputF, kInputI, kArena, kDead };
  Kind kind = Kind::kDead;
  bool is_int = false;
  int64_t size = 0;                 // elements
  std::shared_ptr<Node> param;      // kParam: keep-alive; data = param->value
  std::vector<float> fconst;        // kConst float
  std::vector<int64_t> iconst;      // kConst int
  Derivation deriv;                 // kInputF / kInputI
  int64_t arena_off = -1;           // kArena: offset in floats
};

struct Micro {
  OpKind kind = OpKind::kNone;
  int other = -1;       // -1: unary micro-op
  int other_step = 0;   // 0: broadcast the single value
  bool prev_is_a = true;
  float scalar = 0.0f;
};

// Maximum micro-ops per fused chain (fits the pointer array Execute keeps on
// the stack).
constexpr size_t kMaxChain = 15;

struct ExecOp {
  OpKind kind = OpKind::kNone;
  int a = -1, b = -1, out = -1;
  std::vector<int> inputs;       // kConcat parts
  kernels::BroadcastPlan bplan;  // non-flat binary
  float scalar = 0.0f;           // eps / ReduceAxis scale / first-op scalar
  int64_t rows = 0, k = 0, n = 0, m = 0, batches = 0;
  int64_t outer = 0, inner = 0;
  int64_t start = 0, len = 0, a_ax = 0, concat_dim = 0;
  std::vector<int64_t> part_ax;  // kConcat per-part axis dims
  int ids = -1, mask = -1;       // attr value ids (EmbeddingLookup ids,
                                 // SelectTimeSteps idx, softmax mask)
  int64_t vocab = 0, kdim = 0, b_dim = 0, l_dim = 0, t_count = 0;
  std::vector<float> packed_b;   // prepacked GEMM weights (PackGemmB layout)
  bool dense_gemm = false;       // packed_b all finite: dense 4-row tile ok
  int bias = -1;                 // kGemmEpilogue
  int act = 0;                   // 0 none, 1 relu, 2 sigmoid, 3 tanh
  OpKind first = OpKind::kNone;  // kFusedChain head op
  int a_step = 1, b_step = 1;    // kFusedChain head operand steps
  std::vector<Micro> chain;
  int64_t out_size = 0;
  bool zero_fill = false;
};

// Per-execution scratch. Pointers are resolved once at creation (arena and
// input buffers never reallocate), so steady-state Run touches no heap.
struct ExecContext {
  std::vector<float> arena;
  std::vector<std::vector<float>> fin;    // one per kInputF value
  std::vector<std::vector<int64_t>> iin;  // one per kInputI value
  std::vector<const float*> f;            // per-value data
  std::vector<const int64_t*> ip;
  std::vector<float*> wf;                 // writable (arena values only)
};

inline float ApplyUnaryK(OpKind k, float x, float scalar) {
  switch (k) {
    case OpKind::kAddScalar: return x + scalar;
    case OpKind::kMulScalar: return x * scalar;
    case OpKind::kRelu: return kernels::ReluScalar(x);
    case OpKind::kSigmoid: return kernels::SigmoidScalar(x);
    case OpKind::kTanh: return kernels::TanhScalar(x);
    case OpKind::kExp: return kernels::ExpScalar(x);
    case OpKind::kLog: return kernels::LogScalar(x, scalar);
    case OpKind::kSqrt: return kernels::SqrtScalar(x);
    case OpKind::kSquare: return kernels::SquareScalar(x);
    default: return x;
  }
}

inline float ApplyBinaryK(OpKind k, float x, float y) {
  switch (k) {
    case OpKind::kAdd: return x + y;
    case OpKind::kSub: return x - y;
    case OpKind::kMul: return x * y;
    case OpKind::kDiv: return x / y;
    default: return x;
  }
}

inline bool IsBinaryEW(OpKind k) {
  return k == OpKind::kAdd || k == OpKind::kSub || k == OpKind::kMul ||
         k == OpKind::kDiv;
}

inline bool IsUnaryEW(OpKind k) {
  return k == OpKind::kAddScalar || k == OpKind::kMulScalar ||
         k == OpKind::kRelu || k == OpKind::kSigmoid || k == OpKind::kTanh ||
         k == OpKind::kExp || k == OpKind::kLog || k == OpKind::kSqrt ||
         k == OpKind::kSquare;
}

inline float ApplyAct(int act, float v) {
  switch (act) {
    case 1: return kernels::ReluScalar(v);
    case 2: return kernels::SigmoidScalar(v);
    case 3: return kernels::TanhScalar(v);
    default: return v;
  }
}

// ---------------------------------------------------------------------------
// Tiled chain execution. A fused chain runs per cache-resident tile: the
// head op fills a stack buffer, each micro-op rewrites it, one store to the
// output. Dispatching the op kind once per (tile, op) instead of once per
// element keeps the inner loops branch-free and vectorizable — the whole
// point of fusing was to beat the dynamic path's one-pass-per-op memory
// traffic without giving up its tight per-op loops. Every chain op is flat
// elementwise, so tiling cannot change bit patterns.
// ---------------------------------------------------------------------------

constexpr int64_t kChainTile = 512;  // floats; 2 KB fits L1 comfortably

// buf[i] = unary(src[i]) for one tile; the op switch is per tile.
inline void UnaryTile(OpKind k, const float* src, float scalar, float* buf,
                      int64_t n) {
  switch (k) {
    case OpKind::kAddScalar:
      for (int64_t i = 0; i < n; ++i) buf[i] = src[i] + scalar;
      break;
    case OpKind::kMulScalar:
      for (int64_t i = 0; i < n; ++i) buf[i] = src[i] * scalar;
      break;
    case OpKind::kRelu:
      for (int64_t i = 0; i < n; ++i) buf[i] = kernels::ReluScalar(src[i]);
      break;
    case OpKind::kSigmoid:
      for (int64_t i = 0; i < n; ++i) buf[i] = kernels::SigmoidScalar(src[i]);
      break;
    case OpKind::kTanh:
      for (int64_t i = 0; i < n; ++i) buf[i] = kernels::TanhScalar(src[i]);
      break;
    case OpKind::kExp:
      for (int64_t i = 0; i < n; ++i) buf[i] = kernels::ExpScalar(src[i]);
      break;
    case OpKind::kLog:
      for (int64_t i = 0; i < n; ++i) {
        buf[i] = kernels::LogScalar(src[i], scalar);
      }
      break;
    case OpKind::kSqrt:
      for (int64_t i = 0; i < n; ++i) buf[i] = kernels::SqrtScalar(src[i]);
      break;
    case OpKind::kSquare:
      for (int64_t i = 0; i < n; ++i) buf[i] = kernels::SquareScalar(src[i]);
      break;
    default:
      if (src != buf) for (int64_t i = 0; i < n; ++i) buf[i] = src[i];
      break;
  }
}

// dst[i] = a op b for one tile, with 0/1 operand steps (0 broadcasts the
// single value). dst may alias either operand.
inline void BinaryTile(OpKind k, const float* a, int a_step, const float* b,
                       int b_step, float* dst, int64_t n) {
  switch (k) {
    case OpKind::kAdd:
      kernels::ApplyRunDispatch(a, a_step, b, b_step, dst, n,
                                [](float x, float y) { return x + y; });
      break;
    case OpKind::kSub:
      kernels::ApplyRunDispatch(a, a_step, b, b_step, dst, n,
                                [](float x, float y) { return x - y; });
      break;
    case OpKind::kMul:
      kernels::ApplyRunDispatch(a, a_step, b, b_step, dst, n,
                                [](float x, float y) { return x * y; });
      break;
    case OpKind::kDiv:
      kernels::ApplyRunDispatch(a, a_step, b, b_step, dst, n,
                                [](float x, float y) { return x / y; });
      break;
    default:
      break;
  }
}

template <typename F>
void RunBroadcast(const ExecOp& op, const float* av, const float* bv,
                  float* outp, F fwd) {
  const kernels::BroadcastPlan& plan = op.bplan;
  ParallelFor(0, plan.rows, GrainFor(2 * plan.inner),
              [&](int64_t r0, int64_t r1) {
                kernels::ForEachBroadcastRow(
                    plan, r0, r1, [&](int64_t r, int64_t ai, int64_t bi) {
                      kernels::ApplyRunDispatch(av + ai, plan.a_step, bv + bi,
                                                plan.b_step,
                                                outp + r * plan.inner,
                                                plan.inner, fwd);
                    });
              });
}

}  // namespace plan_internal

// ----------------------------------------------------------------------------
// InferencePlan: one bucket's executable program.
// ----------------------------------------------------------------------------

class InferencePlan {
 public:
  int64_t bucket = 0;
  // Batch geometry the derivations were compiled against.
  int64_t num_cat = 0, num_seq = 0, seq_len = 0;
  std::vector<plan_internal::Value> values;
  std::vector<plan_internal::ExecOp> ops;
  std::vector<int> input_vals;  // value ids with kInputF/kInputI, ctx order
  int out_val = -1;
  int64_t arena_floats = 0;
  PlanBucketStats stats;

  // Executes the plan over `batch` (batch_size <= bucket; padded rows bind
  // batch row 0) and writes batch_size logits to `out`. Thread-safe.
  bool Run(const data::Batch& batch, float* out) const;

 private:
  std::unique_ptr<plan_internal::ExecContext> MakeContext() const;
  void Execute(const plan_internal::ExecOp& op,
               plan_internal::ExecContext& ctx) const;

  mutable std::mutex pool_mu_;
  mutable std::vector<std::unique_ptr<plan_internal::ExecContext>> pool_;
};

std::unique_ptr<plan_internal::ExecContext> InferencePlan::MakeContext() const {
  using plan_internal::Value;
  auto ctx = std::make_unique<plan_internal::ExecContext>();
  ctx->arena.assign(static_cast<size_t>(arena_floats), 0.0f);
  const size_t num_values = values.size();
  ctx->f.assign(num_values, nullptr);
  ctx->ip.assign(num_values, nullptr);
  ctx->wf.assign(num_values, nullptr);
  ctx->fin.resize(input_vals.size());
  ctx->iin.resize(input_vals.size());
  for (size_t s = 0; s < input_vals.size(); ++s) {
    const int v = input_vals[s];
    if (values[v].kind == Value::Kind::kInputF) {
      ctx->fin[s].assign(static_cast<size_t>(values[v].size), 0.0f);
      ctx->f[v] = ctx->fin[s].data();
    } else {
      ctx->iin[s].assign(static_cast<size_t>(values[v].size), 0);
      ctx->ip[v] = ctx->iin[s].data();
    }
  }
  for (size_t v = 0; v < num_values; ++v) {
    const Value& val = values[v];
    switch (val.kind) {
      case Value::Kind::kParam:
        ctx->f[v] = val.param->value.data();
        break;
      case Value::Kind::kConst:
        if (val.is_int) {
          ctx->ip[v] = val.iconst.data();
        } else {
          ctx->f[v] = val.fconst.data();
        }
        break;
      case Value::Kind::kArena:
        ctx->wf[v] = ctx->arena.data() + val.arena_off;
        ctx->f[v] = ctx->wf[v];
        break;
      default:
        break;
    }
  }
  return ctx;
}

bool InferencePlan::Run(const data::Batch& batch, float* out) const {
  const int64_t n = batch.batch_size;
  if (n <= 0 || n > bucket) return false;
  if (batch.num_cat != num_cat || batch.num_seq != num_seq ||
      batch.seq_len != seq_len) {
    return false;
  }
  std::unique_ptr<plan_internal::ExecContext> ctx;
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    if (!pool_.empty()) {
      ctx = std::move(pool_.back());
      pool_.pop_back();
    }
  }
  if (!ctx) ctx = MakeContext();
  for (size_t s = 0; s < input_vals.size(); ++s) {
    const plan_internal::Value& val = values[input_vals[s]];
    plan_internal::EvalDerivation(val.deriv, batch, bucket, n,
                                  ctx->fin[s].data(), ctx->iin[s].data());
  }
  for (const plan_internal::ExecOp& op : ops) Execute(op, *ctx);
  std::memcpy(out, ctx->f[out_val], sizeof(float) * n);
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    pool_.push_back(std::move(ctx));
  }
  return true;
}

void InferencePlan::Execute(const plan_internal::ExecOp& op,
                            plan_internal::ExecContext& ctx) const {
  using plan_internal::ApplyAct;
  using plan_internal::ApplyBinaryK;
  using plan_internal::ApplyUnaryK;
  using plan_internal::Micro;
  float* outp = ctx.wf[op.out];
  if (op.zero_fill) std::memset(outp, 0, sizeof(float) * op.out_size);
  switch (op.kind) {
    // Non-flat broadcast binaries (flat ones lower to kFusedChain).
    case OpKind::kAdd:
      RunBroadcast(op, ctx.f[op.a], ctx.f[op.b], outp,
                   [](float x, float y) { return x + y; });
      break;
    case OpKind::kSub:
      RunBroadcast(op, ctx.f[op.a], ctx.f[op.b], outp,
                   [](float x, float y) { return x - y; });
      break;
    case OpKind::kMul:
      RunBroadcast(op, ctx.f[op.a], ctx.f[op.b], outp,
                   [](float x, float y) { return x * y; });
      break;
    case OpKind::kDiv:
      RunBroadcast(op, ctx.f[op.a], ctx.f[op.b], outp,
                   [](float x, float y) { return x / y; });
      break;
    case OpKind::kFusedChain: {
      const float* av = ctx.f[op.a];
      const float* bv = op.b >= 0 ? ctx.f[op.b] : nullptr;
      const float* others[plan_internal::kMaxChain] = {};
      const size_t cn = op.chain.size();
      for (size_t c = 0; c < cn; ++c) {
        if (op.chain[c].other >= 0) others[c] = ctx.f[op.chain[c].other];
      }
      ParallelFor(
          0, op.out_size, GrainFor(2 * static_cast<int64_t>(1 + cn)),
          [&](int64_t c0, int64_t c1) {
            float buf[plan_internal::kChainTile];
            for (int64_t t = c0; t < c1; t += plan_internal::kChainTile) {
              const int64_t len =
                  std::min<int64_t>(plan_internal::kChainTile, c1 - t);
              if (op.b >= 0) {
                plan_internal::BinaryTile(op.first,
                                          av + (op.a_step ? t : 0), op.a_step,
                                          bv + (op.b_step ? t : 0), op.b_step,
                                          buf, len);
              } else {
                plan_internal::UnaryTile(op.first, av + t, op.scalar, buf,
                                         len);
              }
              for (size_t c = 0; c < cn; ++c) {
                const Micro& mo = op.chain[c];
                if (mo.other < 0) {
                  plan_internal::UnaryTile(mo.kind, buf, mo.scalar, buf, len);
                } else {
                  const float* o = others[c] + (mo.other_step ? t : 0);
                  if (mo.prev_is_a) {
                    plan_internal::BinaryTile(mo.kind, buf, 1, o,
                                              mo.other_step, buf, len);
                  } else {
                    plan_internal::BinaryTile(mo.kind, o, mo.other_step, buf,
                                              1, buf, len);
                  }
                }
              }
              std::memcpy(outp + t, buf, sizeof(float) * len);
            }
          });
      break;
    }
    case OpKind::kMatMul: {
      const float* ap = ctx.f[op.a];
      if (!op.packed_b.empty()) {
        const float* pb = op.packed_b.data();
        const bool dense = op.dense_gemm;
        ParallelFor(0, op.rows, GrainFor(op.k * op.n),
                    [&](int64_t r0, int64_t r1) {
                      if (dense) {
                        kernels::GemmNNPackedDense4(ap, pb, outp, r0, r1, op.k,
                                                    op.n);
                      } else {
                        kernels::GemmNNPacked(ap, pb, outp, r0, r1, op.k,
                                              op.n);
                      }
                    });
      } else {
        const float* bp = ctx.f[op.b];
        ParallelFor(0, op.rows, GrainFor(op.k * op.n),
                    [&](int64_t r0, int64_t r1) {
                      kernels::GemmNN(ap, bp, outp, r0, r1, op.k, op.n);
                    });
      }
      break;
    }
    case OpKind::kGemmEpilogue: {
      const float* ap = ctx.f[op.a];
      const float* bias = ctx.f[op.bias];
      const float* pb = op.packed_b.empty() ? nullptr : op.packed_b.data();
      const float* bp = pb == nullptr ? ctx.f[op.b] : nullptr;
      ParallelFor(
          0, op.rows, GrainFor(op.k * op.n + 2 * op.n),
          [&](int64_t r0, int64_t r1) {
            if (pb != nullptr && op.dense_gemm) {
              kernels::GemmNNPackedDense4(ap, pb, outp, r0, r1, op.k, op.n);
            } else if (pb != nullptr) {
              kernels::GemmNNPacked(ap, pb, outp, r0, r1, op.k, op.n);
            } else {
              kernels::GemmNN(ap, bp, outp, r0, r1, op.k, op.n);
            }
            // Same per-element float sequence as the dynamic path: full
            // k-sum, then one bias add, then the activation. The act switch
            // stays outside the row loops so each variant vectorizes.
            switch (op.act) {
              case 1:
                for (int64_t mr = r0; mr < r1; ++mr) {
                  float* crow = outp + mr * op.n;
                  for (int64_t j = 0; j < op.n; ++j) {
                    crow[j] = kernels::ReluScalar(crow[j] + bias[j]);
                  }
                }
                break;
              case 2:
                for (int64_t mr = r0; mr < r1; ++mr) {
                  float* crow = outp + mr * op.n;
                  for (int64_t j = 0; j < op.n; ++j) {
                    crow[j] = kernels::SigmoidScalar(crow[j] + bias[j]);
                  }
                }
                break;
              case 3:
                for (int64_t mr = r0; mr < r1; ++mr) {
                  float* crow = outp + mr * op.n;
                  for (int64_t j = 0; j < op.n; ++j) {
                    crow[j] = kernels::TanhScalar(crow[j] + bias[j]);
                  }
                }
                break;
              default:
                for (int64_t mr = r0; mr < r1; ++mr) {
                  float* crow = outp + mr * op.n;
                  for (int64_t j = 0; j < op.n; ++j) crow[j] += bias[j];
                }
                break;
            }
          });
      break;
    }
    case OpKind::kBatchMatMul: {
      const float* ap = ctx.f[op.a];
      const float* bp = ctx.f[op.b];
      ParallelFor(0, op.batches, GrainFor(op.m * op.k * op.n),
                  [&](int64_t i0, int64_t i1) {
                    for (int64_t i = i0; i < i1; ++i) {
                      kernels::GemmNN(ap + i * op.m * op.k,
                                      bp + i * op.k * op.n,
                                      outp + i * op.m * op.n, 0, op.m, op.k,
                                      op.n);
                    }
                  });
      break;
    }
    case OpKind::kTransposeLast2: {
      const float* av = ctx.f[op.a];
      ParallelFor(0, op.batches, GrainFor(op.m * op.n),
                  [&](int64_t i0, int64_t i1) {
                    for (int64_t i = i0; i < i1; ++i) {
                      const float* src = av + i * op.m * op.n;
                      float* dst = outp + i * op.m * op.n;
                      for (int64_t mr = 0; mr < op.m; ++mr) {
                        for (int64_t nc = 0; nc < op.n; ++nc) {
                          dst[nc * op.m + mr] = src[mr * op.n + nc];
                        }
                      }
                    }
                  });
      break;
    }
    case OpKind::kConcat: {
      int64_t offset = 0;
      for (size_t p = 0; p < op.inputs.size(); ++p) {
        const float* pv = ctx.f[op.inputs[p]];
        const int64_t p_ax = op.part_ax[p];
        for (int64_t o = 0; o < op.outer; ++o) {
          std::memcpy(outp + (o * op.concat_dim + offset) * op.inner,
                      pv + o * p_ax * op.inner,
                      sizeof(float) * p_ax * op.inner);
        }
        offset += p_ax;
      }
      break;
    }
    case OpKind::kSlice: {
      const float* av = ctx.f[op.a];
      for (int64_t o = 0; o < op.outer; ++o) {
        std::memcpy(outp + o * op.len * op.inner,
                    av + (o * op.a_ax + op.start) * op.inner,
                    sizeof(float) * op.len * op.inner);
      }
      break;
    }
    case OpKind::kReduceAxis: {
      const float* av = ctx.f[op.a];
      const float scale = op.scalar;
      ParallelFor(0, op.outer, GrainFor(op.n * op.inner),
                  [&](int64_t o0, int64_t o1) {
                    for (int64_t o = o0; o < o1; ++o) {
                      for (int64_t j = 0; j < op.n; ++j) {
                        const float* src = av + (o * op.n + j) * op.inner;
                        float* dst = outp + o * op.inner;
                        for (int64_t i = 0; i < op.inner; ++i) dst[i] += src[i];
                      }
                      if (scale != 1.0f) {
                        float* dst = outp + o * op.inner;
                        for (int64_t i = 0; i < op.inner; ++i) dst[i] *= scale;
                      }
                    }
                  });
      break;
    }
    case OpKind::kSoftmaxLastDim: {
      const float* av = ctx.f[op.a];
      ParallelFor(0, op.rows, GrainFor(4 * op.n), [&](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          const float* src = av + r * op.n;
          float* dst = outp + r * op.n;
          float max_v = src[0];
          for (int64_t i = 1; i < op.n; ++i) max_v = std::max(max_v, src[i]);
          float sum = 0.0f;
          for (int64_t i = 0; i < op.n; ++i) {
            dst[i] = std::exp(src[i] - max_v);
            sum += dst[i];
          }
          const float inv = 1.0f / sum;
          for (int64_t i = 0; i < op.n; ++i) dst[i] *= inv;
        }
      });
      break;
    }
    case OpKind::kMaskedSoftmaxLastDim: {
      const float* av = ctx.f[op.a];
      const float* mp = ctx.f[op.mask];
      ParallelFor(0, op.rows, GrainFor(4 * op.n), [&](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          const float* src = av + r * op.n;
          const float* msk = mp + r * op.n;
          float* dst = outp + r * op.n;
          float max_v = -std::numeric_limits<float>::infinity();
          for (int64_t i = 0; i < op.n; ++i) {
            if (msk[i] > 0.0f) max_v = std::max(max_v, src[i]);
          }
          if (max_v == -std::numeric_limits<float>::infinity()) {
            continue;  // all pad: stays zero
          }
          float sum = 0.0f;
          for (int64_t i = 0; i < op.n; ++i) {
            if (msk[i] > 0.0f) {
              dst[i] = std::exp(src[i] - max_v);
              sum += dst[i];
            }
          }
          const float inv = 1.0f / sum;
          for (int64_t i = 0; i < op.n; ++i) dst[i] *= inv;
        }
      });
      break;
    }
    case OpKind::kRowL2Normalize: {
      const float* av = ctx.f[op.a];
      const float eps = op.scalar;
      ParallelFor(0, op.rows, GrainFor(4 * op.n), [&](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          const float* src = av + r * op.n;
          double sq = 0.0;
          for (int64_t i = 0; i < op.n; ++i) {
            sq += static_cast<double>(src[i]) * src[i];
          }
          const float norm = static_cast<float>(std::sqrt(sq + eps));
          float* dst = outp + r * op.n;
          for (int64_t i = 0; i < op.n; ++i) dst[i] = src[i] / norm;
        }
      });
      break;
    }
    case OpKind::kEmbeddingLookup: {
      const float* tv = ctx.f[op.a];
      const int64_t* idp = ctx.ip[op.ids];
      ParallelFor(0, op.rows, GrainFor(op.kdim), [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
          const int64_t id = idp[i];
          if (id < 0) continue;  // padding: zero row
          MISS_CHECK_LT(id, op.vocab) << "embedding id out of range";
          std::memcpy(outp + i * op.kdim, tv + id * op.kdim,
                      sizeof(float) * op.kdim);
        }
      });
      break;
    }
    case OpKind::kSelectTimeSteps: {
      const float* xv = ctx.f[op.a];
      const int64_t* idx = ctx.ip[op.ids];
      ParallelFor(0, op.b_dim, GrainFor(op.t_count * op.kdim),
                  [&](int64_t b0, int64_t b1) {
                    for (int64_t b = b0; b < b1; ++b) {
                      for (int64_t t = 0; t < op.t_count; ++t) {
                        const int64_t l = idx[b * op.t_count + t];
                        MISS_CHECK_GE(l, 0);
                        MISS_CHECK_LT(l, op.l_dim);
                        std::memcpy(outp + (b * op.t_count + t) * op.kdim,
                                    xv + (b * op.l_dim + l) * op.kdim,
                                    sizeof(float) * op.kdim);
                      }
                    }
                  });
      break;
    }
    default:
      MISS_CHECK(false) << "unexecutable plan op " << OpKindName(op.kind);
  }
}

// ----------------------------------------------------------------------------
// Compilation
// ----------------------------------------------------------------------------

namespace plan_internal {

// Synthesizes a random batch over `schema` through the real MakeBatch so the
// mask/truncation invariants (prefix-of-ones mask, most-recent-keep) hold.
// History lengths span [1, L+1] to exercise both padding and truncation.
// With length_phase >= 0, row s gets the deterministic history length
// 1 + (length_phase + s) % (L + 1) instead of a random one: compile probes
// sweep the phase so every prefix length appears in some probe, which pins
// down mask/count derivations exactly (masks are prefix-of-ones, so two
// derivations agreeing on all L+1 prefixes agree on every real batch).
data::Batch MakeProbeBatch(const data::DatasetSchema& schema, int64_t n,
                           common::Rng& rng, int64_t length_phase = -1) {
  data::Dataset ds;
  ds.schema = schema;
  const int64_t L = schema.max_seq_len;
  std::vector<int64_t> indices(n);
  ds.samples.reserve(n);
  for (int64_t s = 0; s < n; ++s) {
    indices[s] = s;
    data::Sample smp;
    smp.cat.resize(schema.categorical.size());
    for (size_t i = 0; i < schema.categorical.size(); ++i) {
      smp.cat[i] =
          rng.UniformInt(std::max<int64_t>(1, schema.categorical[i].vocab_size));
    }
    const int64_t h = length_phase >= 0
                          ? 1 + (length_phase + s) % (L + 1)
                          : 1 + rng.UniformInt(L + 1);
    smp.seq.resize(schema.sequential.size());
    for (size_t j = 0; j < schema.sequential.size(); ++j) {
      int64_t vocab = schema.sequential[j].vocab_size;
      if (j < schema.seq_shares_table_with.size() &&
          schema.seq_shares_table_with[j] >= 0) {
        vocab = std::min(
            vocab,
            schema.categorical[schema.seq_shares_table_with[j]].vocab_size);
      }
      vocab = std::max<int64_t>(1, vocab);
      smp.seq[j].resize(h);
      for (int64_t t = 0; t < h; ++t) smp.seq[j][t] = rng.UniformInt(vocab);
    }
    smp.label = rng.Uniform() < 0.5 ? 0.0f : 1.0f;
    ds.samples.push_back(std::move(smp));
  }
  return data::MakeBatch(ds, indices);
}

struct TraceRun {
  std::vector<TraceRecord> records;
  std::shared_ptr<Node> output;
};

std::unique_ptr<InferencePlan> CompileBucket(
    const data::DatasetSchema& schema,
    const std::unordered_map<Node*, std::shared_ptr<Node>>& params,
    const PlanSet::ForwardFn& forward, int64_t bucket,
    const PlanCompileOptions& opt, std::string* why) {
  // Enough probes that the stratified history lengths cover every prefix
  // length at least once, even for tiny buckets.
  const int64_t L = schema.max_seq_len;
  const int P = std::max<int64_t>(std::max(2, opt.trace_probes),
                                  (L + bucket) / bucket);
  std::vector<data::Batch> probes;
  probes.reserve(P);
  for (int p = 0; p < P; ++p) {
    common::Rng rng(opt.seed + 0x100000ull * (bucket + 1) + p);
    probes.push_back(
        MakeProbeBatch(schema, bucket, rng, /*length_phase=*/p * bucket));
  }

  // 1. Trace the forward once per probe.
  std::vector<TraceRun> runs(P);
  for (int p = 0; p < P; ++p) {
    PlanTracer tracer;
    InferenceScope scope;
    Tensor out = forward(probes[p]);
    if (!tracer.ok) {
      *why = "unsupported op: " + tracer.unsupported;
      return nullptr;
    }
    runs[p].records = std::move(tracer.records);
    runs[p].output = out.node_ptr();
  }

  // 2. Align: the op sequence and all static attributes must agree across
  // probes — otherwise control flow depends on batch content.
  const size_t R = runs[0].records.size();
  if (R == 0) {
    *why = "forward traced no ops";
    return nullptr;
  }
  for (int p = 1; p < P; ++p) {
    if (runs[p].records.size() != R) {
      *why = "trace divergence: op count varies across probes";
      return nullptr;
    }
  }
  for (size_t i = 0; i < R; ++i) {
    const TraceRecord& r0 = runs[0].records[i];
    for (int p = 1; p < P; ++p) {
      const TraceRecord& rp = runs[p].records[i];
      bool same = rp.kind == r0.kind && rp.inputs.size() == r0.inputs.size() &&
                  rp.scalar == r0.scalar && rp.axis == r0.axis &&
                  rp.start == r0.start && rp.len == r0.len &&
                  rp.output->shape == r0.output->shape;
      for (size_t j = 0; same && j < r0.inputs.size(); ++j) {
        same = rp.inputs[j]->shape == r0.inputs[j]->shape;
      }
      if (!same) {
        *why = std::string("trace divergence at op ") + std::to_string(i) +
               " (" + OpKindName(r0.kind) + ")";
        return nullptr;
      }
    }
  }

  // 3. Build the value graph, binding leaves to params, constants, or batch
  // derivations.
  std::vector<Value> values;
  std::vector<std::unordered_map<Node*, int>> node2val(P);
  std::unordered_map<Node*, int> param_vals;
  std::vector<const data::Batch*> bptrs;
  for (int p = 0; p < P; ++p) bptrs.push_back(&probes[p]);

  auto new_value = [&]() -> int {
    values.emplace_back();
    return static_cast<int>(values.size()) - 1;
  };

  // Binds the leaf tensor at (record ri, input slot j). Returns -1 + *why.
  auto bind_tensor_leaf = [&](size_t ri, size_t j) -> int {
    Node* n0 = runs[0].records[ri].inputs[j].get();
    auto pit = params.find(n0);
    if (pit != params.end()) {
      for (int p = 1; p < P; ++p) {
        if (runs[p].records[ri].inputs[j].get() != n0) {
          *why = "param identity diverges across probes";
          return -1;
        }
      }
      auto seen = param_vals.find(n0);
      if (seen != param_vals.end()) return seen->second;
      const int v = new_value();
      values[v].kind = Value::Kind::kParam;
      values[v].param = pit->second;
      values[v].size = static_cast<int64_t>(n0->value.size());
      param_vals[n0] = v;
      return v;
    }
    bool same = true;
    for (int p = 1; p < P && same; ++p) {
      same = runs[p].records[ri].inputs[j]->value == n0->value;
    }
    const int v = new_value();
    values[v].size = static_cast<int64_t>(n0->value.size());
    if (same) {
      values[v].kind = Value::Kind::kConst;
      values[v].fconst = n0->value;
      return v;
    }
    std::vector<const std::vector<float>*> datas;
    for (int p = 0; p < P; ++p) {
      datas.push_back(&runs[p].records[ri].inputs[j]->value);
    }
    Derivation d;
    if (!FitFloatDerivation(bptrs, datas, &d)) {
      *why = std::string("underivable input of op ") + std::to_string(ri) +
             " (" + OpKindName(runs[0].records[ri].kind) + ")";
      return -1;
    }
    values[v].kind = Value::Kind::kInputF;
    values[v].deriv = d;
    return v;
  };

  auto bind_int_attr = [&](size_t ri) -> int {
    const std::vector<int64_t>& a0 = runs[0].records[ri].int_attr;
    bool same = true;
    for (int p = 1; p < P && same; ++p) {
      same = runs[p].records[ri].int_attr == a0;
    }
    const int v = new_value();
    values[v].is_int = true;
    values[v].size = static_cast<int64_t>(a0.size());
    if (same) {
      values[v].kind = Value::Kind::kConst;
      values[v].iconst = a0;
      return v;
    }
    std::vector<const std::vector<int64_t>*> datas;
    for (int p = 0; p < P; ++p) datas.push_back(&runs[p].records[ri].int_attr);
    Derivation d;
    if (!FitIntDerivation(bptrs, datas, &d)) {
      *why = std::string("underivable ids of op ") + std::to_string(ri) + " (" +
             OpKindName(runs[0].records[ri].kind) + ")";
      return -1;
    }
    values[v].kind = Value::Kind::kInputI;
    values[v].deriv = d;
    return v;
  };

  auto bind_float_attr = [&](size_t ri) -> int {
    const std::vector<float>& a0 = runs[0].records[ri].float_attr;
    bool same = true;
    for (int p = 1; p < P && same; ++p) {
      same = runs[p].records[ri].float_attr == a0;
    }
    const int v = new_value();
    values[v].size = static_cast<int64_t>(a0.size());
    if (same) {
      values[v].kind = Value::Kind::kConst;
      values[v].fconst = a0;
      return v;
    }
    std::vector<const std::vector<float>*> datas;
    for (int p = 0; p < P; ++p) {
      datas.push_back(&runs[p].records[ri].float_attr);
    }
    Derivation d;
    if (!FitFloatDerivation(bptrs, datas, &d)) {
      *why = std::string("underivable mask of op ") + std::to_string(ri) +
             " (" + OpKindName(runs[0].records[ri].kind) + ")";
      return -1;
    }
    values[v].kind = Value::Kind::kInputF;
    values[v].deriv = d;
    return v;
  };

  struct IRNode {
    OpKind kind = OpKind::kNone;
    std::vector<int> in;
    int ids = -1, mask = -1;
    int out = -1;
    float scalar = 0.0f;
    int axis = 0;
    int64_t start = 0, len = 0;
    std::vector<std::vector<int64_t>> in_shapes;
    std::vector<int64_t> out_shape;
    int64_t out_size = 0;
    bool dead = false;
    // Fusion annotations:
    int bias = -1;
    int act = 0;
    OpKind first = OpKind::kNone;
    std::vector<Micro> chain;
  };
  std::vector<IRNode> ir;

  for (size_t i = 0; i < R; ++i) {
    const TraceRecord& r0 = runs[0].records[i];
    IRNode node;
    node.kind = r0.kind;
    node.scalar = r0.scalar;
    node.axis = r0.axis;
    node.start = r0.start;
    node.len = r0.len;
    for (size_t j = 0; j < r0.inputs.size(); ++j) {
      Node* raw = r0.inputs[j].get();
      int v = -1;
      auto it = node2val[0].find(raw);
      if (it != node2val[0].end()) {
        v = it->second;
        for (int p = 1; p < P; ++p) {
          auto itp = node2val[p].find(runs[p].records[i].inputs[j].get());
          if (itp == node2val[p].end() || itp->second != v) {
            *why = "trace structure diverges across probes";
            return nullptr;
          }
        }
      } else {
        for (int p = 1; p < P; ++p) {
          if (node2val[p].count(runs[p].records[i].inputs[j].get()) != 0) {
            *why = "trace structure diverges across probes";
            return nullptr;
          }
        }
        v = bind_tensor_leaf(i, j);
        if (v < 0) return nullptr;
      }
      node.in.push_back(v);
      node.in_shapes.push_back(r0.inputs[j]->shape);
    }
    if (r0.kind == OpKind::kEmbeddingLookup ||
        r0.kind == OpKind::kSelectTimeSteps) {
      node.ids = bind_int_attr(i);
      if (node.ids < 0) return nullptr;
    }
    if (r0.kind == OpKind::kMaskedSoftmaxLastDim) {
      node.mask = bind_float_attr(i);
      if (node.mask < 0) return nullptr;
    }
    if (r0.kind == OpKind::kReshape) {
      // Pure alias: consumers read the producer's storage directly.
      for (int p = 0; p < P; ++p) {
        node2val[p][runs[p].records[i].output.get()] = node.in[0];
      }
      continue;
    }
    const int out_v = new_value();
    values[out_v].kind = Value::Kind::kArena;
    values[out_v].size = static_cast<int64_t>(r0.output->value.size());
    node.out = out_v;
    node.out_shape = r0.output->shape;
    node.out_size = values[out_v].size;
    for (int p = 0; p < P; ++p) {
      node2val[p][runs[p].records[i].output.get()] = out_v;
    }
    ir.push_back(std::move(node));
  }

  int out_val = -1;
  {
    auto it = node2val[0].find(runs[0].output.get());
    if (it == node2val[0].end()) {
      *why = "model output is not a traced op";
      return nullptr;
    }
    out_val = it->second;
    for (int p = 1; p < P; ++p) {
      auto itp = node2val[p].find(runs[p].output.get());
      if (itp == node2val[p].end() || itp->second != out_val) {
        *why = "model output diverges across probes";
        return nullptr;
      }
    }
  }
  if (values[out_val].kind != Value::Kind::kArena) {
    *why = "model output is not computed by a traced op";
    return nullptr;
  }
  if (values[out_val].size != bucket) {
    *why = "model output is not one logit per batch row";
    return nullptr;
  }

  // 4. Dead-code elimination (auxiliary branches that never reach the
  // output — e.g. values only consumed by an unsupported training head
  // would already have failed; this trims plain dead ends).
  {
    std::vector<char> needed(values.size(), 0);
    needed[out_val] = 1;
    for (int i = static_cast<int>(ir.size()) - 1; i >= 0; --i) {
      IRNode& nd = ir[i];
      if (!needed[nd.out]) {
        nd.dead = true;
        continue;
      }
      for (int v : nd.in) needed[v] = 1;
      if (nd.ids >= 0) needed[nd.ids] = 1;
      if (nd.mask >= 0) needed[nd.mask] = 1;
    }
    for (size_t v = 0; v < values.size(); ++v) {
      if (!needed[v]) values[v].kind = Value::Kind::kDead;
    }
  }

  auto build_cons = [&]() {
    std::vector<std::vector<int>> cons(values.size());
    for (size_t i = 0; i < ir.size(); ++i) {
      if (ir[i].dead) continue;
      for (int v : ir[i].in) cons[v].push_back(static_cast<int>(i));
    }
    return cons;
  };

  // 5a. GEMM epilogue fusion: MatMul -> (+bias) -> optional activation,
  // single-consumer intermediates only.
  {
    auto cons = build_cons();
    for (size_t i = 0; i < ir.size(); ++i) {
      IRNode& g = ir[i];
      if (g.dead || g.kind != OpKind::kMatMul) continue;
      const int64_t n_dim = g.in_shapes[1][1];
      const int v = g.out;
      if (v == out_val || cons[v].size() != 1) continue;
      const int add_i = cons[v][0];
      IRNode& c = ir[add_i];
      if (c.dead || c.kind != OpKind::kAdd || c.out_size != g.out_size) {
        continue;
      }
      const int ov = c.in[0] == v ? c.in[1] : c.in[0];
      if (ov == v) continue;
      const Value& bval = values[ov];
      if ((bval.kind != Value::Kind::kParam &&
           bval.kind != Value::Kind::kConst) ||
          bval.size != n_dim) {
        continue;
      }
      int final_i = add_i;
      int act = 0;
      const int cv = c.out;
      if (cv != out_val && cons[cv].size() == 1) {
        const int act_i = cons[cv][0];
        IRNode& a = ir[act_i];
        const int a_act = a.kind == OpKind::kRelu      ? 1
                          : a.kind == OpKind::kSigmoid ? 2
                          : a.kind == OpKind::kTanh    ? 3
                                                       : 0;
        if (!a.dead && a_act != 0 && a.out_size == g.out_size) {
          act = a_act;
          final_i = act_i;
        }
      }
      values[v].kind = Value::Kind::kDead;
      if (act != 0) values[cv].kind = Value::Kind::kDead;
      g.kind = OpKind::kGemmEpilogue;
      g.bias = ov;
      g.act = act;
      g.out = ir[final_i].out;
      ir[add_i].dead = true;
      if (final_i != add_i) ir[final_i].dead = true;
      cons = build_cons();
    }
  }

  // 5b. Elementwise chain fusion: runs of flat elementwise ops where each
  // link is the sole consumer of its predecessor become one loop nest.
  {
    auto cons = build_cons();
    std::vector<int> def(values.size(), -1);
    for (size_t i = 0; i < ir.size(); ++i) {
      if (!ir[i].dead) def[ir[i].out] = static_cast<int>(i);
    }
    auto elig = [&](const IRNode& nd) -> bool {
      if (nd.dead) return false;
      if (IsUnaryEW(nd.kind)) return true;
      if (!IsBinaryEW(nd.kind)) return false;
      return kernels::MakeBroadcastPlan(nd.in_shapes[0], nd.in_shapes[1]).flat;
    };
    std::vector<char> fused(ir.size(), 0);
    for (size_t i = 0; i < ir.size(); ++i) {
      if (fused[i] || !elig(ir[i])) continue;
      std::vector<int> members = {static_cast<int>(i)};
      int cur = static_cast<int>(i);
      while (members.size() < 1 + kMaxChain) {
        const int v = ir[cur].out;
        if (v == out_val || cons[v].size() != 1) break;
        const int ci = cons[v][0];
        IRNode& c = ir[ci];
        if (fused[ci] || !elig(c) || c.out_size != ir[i].out_size) break;
        if (IsBinaryEW(c.kind)) {
          const int other = c.in[0] == v ? c.in[1] : c.in[0];
          if (other == v) break;
          if (values[other].size != 1 &&
              values[other].size != ir[i].out_size) {
            break;
          }
          // The chain executes at the head's position: the other operand
          // must already exist there.
          if (def[other] >= static_cast<int>(i)) break;
        }
        members.push_back(ci);
        cur = ci;
      }
      if (members.size() < 2) continue;
      IRNode& head = ir[members[0]];
      head.first = head.kind;
      head.kind = OpKind::kFusedChain;
      for (size_t t = 1; t < members.size(); ++t) {
        IRNode& c = ir[members[t]];
        Micro mo;
        mo.kind = c.kind;
        mo.scalar = c.scalar;
        if (IsBinaryEW(c.kind)) {
          const int prev = ir[members[t - 1]].out;
          mo.prev_is_a = c.in[0] == prev;
          mo.other = mo.prev_is_a ? c.in[1] : c.in[0];
          mo.other_step = values[mo.other].size == 1 ? 0 : 1;
        }
        head.chain.push_back(mo);
        values[ir[members[t - 1]].out].kind = Value::Kind::kDead;
        c.dead = true;
        fused[members[t]] = 1;
      }
      head.out = ir[members.back()].out;
      fused[i] = 1;
      cons = build_cons();
    }
  }

  // 6. Lower to executable ops with all dims resolved; prepack static GEMM
  // weights.
  std::vector<ExecOp> ops;
  int fused_chains = 0;
  for (IRNode& nd : ir) {
    if (nd.dead) continue;
    ExecOp op;
    op.kind = nd.kind;
    op.out = nd.out;
    op.out_size = nd.out_size;
    op.scalar = nd.scalar;
    auto dim = [](const std::vector<int64_t>& s, int i) {
      return s[i < 0 ? s.size() + i : i];
    };
    auto prepack = [&](ExecOp& o) {
      const Value& bval = values[o.b];
      const float* data =
          bval.kind == Value::Kind::kParam   ? bval.param->value.data()
          : bval.kind == Value::Kind::kConst ? bval.fconst.data()
                                             : nullptr;
      if (data != nullptr) {
        o.packed_b = kernels::PackGemmB(data, o.k, o.n);
        // All-finite weights license the branch-free dense tile: every
        // zero-skipped contribution is then exactly +/-0, which cannot
        // change accumulator bits (see GemmNNPackedDense4).
        o.dense_gemm = true;
        for (const float v : o.packed_b) {
          if (!std::isfinite(v)) {
            o.dense_gemm = false;
            break;
          }
        }
      }
    };
    switch (nd.kind) {
      case OpKind::kAdd:
      case OpKind::kSub:
      case OpKind::kMul:
      case OpKind::kDiv: {
        op.a = nd.in[0];
        op.b = nd.in[1];
        op.bplan = kernels::MakeBroadcastPlan(nd.in_shapes[0], nd.in_shapes[1]);
        if (op.bplan.flat) {
          op.first = nd.kind;
          op.kind = OpKind::kFusedChain;
          op.a_step = op.bplan.a_step;
          op.b_step = op.bplan.b_step;
        }
        break;
      }
      case OpKind::kAddScalar:
      case OpKind::kMulScalar:
      case OpKind::kRelu:
      case OpKind::kSigmoid:
      case OpKind::kTanh:
      case OpKind::kExp:
      case OpKind::kLog:
      case OpKind::kSqrt:
      case OpKind::kSquare:
        op.first = nd.kind;
        op.kind = OpKind::kFusedChain;
        op.a = nd.in[0];
        op.b = -1;
        op.a_step = 1;
        break;
      case OpKind::kFusedChain:
        ++fused_chains;
        op.first = nd.first;
        op.chain = std::move(nd.chain);
        op.a = nd.in[0];
        if (IsBinaryEW(nd.first)) {
          op.b = nd.in[1];
          const auto bp =
              kernels::MakeBroadcastPlan(nd.in_shapes[0], nd.in_shapes[1]);
          op.a_step = bp.a_step;
          op.b_step = bp.b_step;
        } else {
          op.b = -1;
          op.a_step = 1;
        }
        break;
      case OpKind::kMatMul:
        op.a = nd.in[0];
        op.b = nd.in[1];
        op.k = dim(nd.in_shapes[1], 0);
        op.n = dim(nd.in_shapes[1], 1);
        op.rows = NumElements(nd.in_shapes[0]) / op.k;
        op.zero_fill = true;
        prepack(op);
        break;
      case OpKind::kGemmEpilogue:
        ++fused_chains;
        op.a = nd.in[0];
        op.b = nd.in[1];
        op.bias = nd.bias;
        op.act = nd.act;
        op.k = dim(nd.in_shapes[1], 0);
        op.n = dim(nd.in_shapes[1], 1);
        op.rows = NumElements(nd.in_shapes[0]) / op.k;
        op.zero_fill = true;
        prepack(op);
        break;
      case OpKind::kBatchMatMul:
        op.a = nd.in[0];
        op.b = nd.in[1];
        op.m = dim(nd.in_shapes[0], -2);
        op.k = dim(nd.in_shapes[0], -1);
        op.n = dim(nd.in_shapes[1], -1);
        op.batches = NumElements(nd.in_shapes[0]) / (op.m * op.k);
        op.zero_fill = true;
        break;
      case OpKind::kTransposeLast2:
        op.a = nd.in[0];
        op.m = dim(nd.in_shapes[0], -2);
        op.n = dim(nd.in_shapes[0], -1);
        op.batches = NumElements(nd.in_shapes[0]) / (op.m * op.n);
        break;
      case OpKind::kConcat: {
        op.inputs = nd.in;
        const int ax = nd.axis;
        op.concat_dim = nd.out_shape[ax];
        op.outer = 1;
        for (int d = 0; d < ax; ++d) op.outer *= nd.out_shape[d];
        op.inner = 1;
        for (size_t d = ax + 1; d < nd.out_shape.size(); ++d) {
          op.inner *= nd.out_shape[d];
        }
        for (const auto& s : nd.in_shapes) op.part_ax.push_back(s[ax]);
        break;
      }
      case OpKind::kSlice: {
        op.a = nd.in[0];
        const int ax = nd.axis;
        op.a_ax = nd.in_shapes[0][ax];
        op.start = nd.start;
        op.len = nd.len;
        op.outer = 1;
        for (int d = 0; d < ax; ++d) op.outer *= nd.in_shapes[0][d];
        op.inner = 1;
        for (size_t d = ax + 1; d < nd.in_shapes[0].size(); ++d) {
          op.inner *= nd.in_shapes[0][d];
        }
        break;
      }
      case OpKind::kReduceAxis: {
        op.a = nd.in[0];
        const int ax = nd.axis;
        op.n = nd.in_shapes[0][ax];
        op.outer = 1;
        for (int d = 0; d < ax; ++d) op.outer *= nd.in_shapes[0][d];
        op.inner = 1;
        for (size_t d = ax + 1; d < nd.in_shapes[0].size(); ++d) {
          op.inner *= nd.in_shapes[0][d];
        }
        op.zero_fill = true;
        break;
      }
      case OpKind::kSoftmaxLastDim:
      case OpKind::kRowL2Normalize:
        op.a = nd.in[0];
        op.n = dim(nd.in_shapes[0], -1);
        op.rows = NumElements(nd.in_shapes[0]) / op.n;
        break;
      case OpKind::kMaskedSoftmaxLastDim:
        op.a = nd.in[0];
        op.mask = nd.mask;
        op.n = dim(nd.in_shapes[0], -1);
        op.rows = NumElements(nd.in_shapes[0]) / op.n;
        op.zero_fill = true;
        break;
      case OpKind::kEmbeddingLookup:
        op.a = nd.in[0];
        op.ids = nd.ids;
        op.vocab = nd.in_shapes[0][0];
        op.kdim = nd.in_shapes[0][1];
        op.rows = values[nd.ids].size;
        op.zero_fill = true;
        break;
      case OpKind::kSelectTimeSteps:
        op.a = nd.in[0];
        op.ids = nd.ids;
        op.b_dim = nd.in_shapes[0][0];
        op.l_dim = nd.in_shapes[0][1];
        op.kdim = nd.in_shapes[0][2];
        op.t_count = nd.len;
        break;
      default:
        *why = std::string("unlowerable op ") + OpKindName(nd.kind);
        return nullptr;
    }
    ops.push_back(std::move(op));
  }

  // 7. Liveness analysis + arena layout: walk ops in execution order,
  // best-fit-allocating each output from a free list and releasing every
  // value past its last use, so disjoint lifetimes share storage.
  auto uses_of = [](const ExecOp& op) {
    std::vector<int> u;
    if (op.a >= 0) u.push_back(op.a);
    if (op.b >= 0) u.push_back(op.b);
    for (int v : op.inputs) u.push_back(v);
    if (op.ids >= 0) u.push_back(op.ids);
    if (op.mask >= 0) u.push_back(op.mask);
    if (op.bias >= 0) u.push_back(op.bias);
    for (const Micro& mo : op.chain) {
      if (mo.other >= 0) u.push_back(mo.other);
    }
    return u;
  };
  std::vector<int> last_use(values.size(), -1);
  for (int e = 0; e < static_cast<int>(ops.size()); ++e) {
    for (int v : uses_of(ops[e])) last_use[v] = e;
  }
  last_use[out_val] = static_cast<int>(ops.size());  // read after execution

  std::map<int64_t, int64_t> free_list;  // offset -> size, in floats
  int64_t arena_end = 0;
  int64_t intermediate_floats = 0;
  const auto align16 = [](int64_t n) { return (n + 15) & ~int64_t(15); };
  auto alloc = [&](int64_t sz) -> int64_t {
    int64_t best_off = -1;
    int64_t best_sz = std::numeric_limits<int64_t>::max();
    for (const auto& [off, s] : free_list) {
      if (s >= sz && s < best_sz) {
        best_off = off;
        best_sz = s;
      }
    }
    if (best_off >= 0) {
      free_list.erase(best_off);
      if (best_sz > sz) free_list[best_off + sz] = best_sz - sz;
      return best_off;
    }
    const int64_t off = arena_end;
    arena_end += sz;
    return off;
  };
  auto release = [&](int64_t off, int64_t sz) {
    auto [it, inserted] = free_list.emplace(off, sz);
    MISS_CHECK(inserted);
    auto next = std::next(it);
    if (next != free_list.end() && it->first + it->second == next->first) {
      it->second += next->second;
      free_list.erase(next);
    }
    if (it != free_list.begin()) {
      auto prev = std::prev(it);
      if (prev->first + prev->second == it->first) {
        prev->second += it->second;
        free_list.erase(it);
      }
    }
  };
  std::vector<char> freed(values.size(), 0);
  for (int e = 0; e < static_cast<int>(ops.size()); ++e) {
    ExecOp& op = ops[e];
    Value& ov = values[op.out];
    const int64_t sz = align16(ov.size);
    ov.arena_off = alloc(sz);
    intermediate_floats += sz;
    for (int v : uses_of(op)) {
      if (values[v].kind == Value::Kind::kArena && last_use[v] == e &&
          !freed[v]) {
        release(values[v].arena_off, align16(values[v].size));
        freed[v] = 1;
      }
    }
  }

  auto plan = std::make_unique<InferencePlan>();
  plan->bucket = bucket;
  plan->num_cat = probes[0].num_cat;
  plan->num_seq = probes[0].num_seq;
  plan->seq_len = probes[0].seq_len;
  plan->out_val = out_val;
  plan->arena_floats = arena_end;
  for (size_t v = 0; v < values.size(); ++v) {
    if (values[v].kind == Value::Kind::kInputF ||
        values[v].kind == Value::Kind::kInputI) {
      plan->input_vals.push_back(static_cast<int>(v));
    }
  }
  plan->stats.batch_size = bucket;
  plan->stats.ops = static_cast<int>(ops.size());
  plan->stats.fused_chains = fused_chains;
  plan->stats.arena_bytes = arena_end * static_cast<int64_t>(sizeof(float));
  plan->stats.intermediate_bytes =
      intermediate_floats * static_cast<int64_t>(sizeof(float));
  plan->values = std::move(values);
  plan->ops = std::move(ops);
  return plan;
}

}  // namespace plan_internal

// ----------------------------------------------------------------------------
// PlanSet
// ----------------------------------------------------------------------------

PlanSet::PlanSet() = default;
PlanSet::~PlanSet() = default;

int64_t PlanSet::max_batch() const {
  return plans_.empty() ? 0 : plans_.back()->bucket;
}

bool PlanSet::Score(const data::Batch& batch, float* out) const {
  if (!compatible_) return false;
  const int64_t n = batch.batch_size;
  if (n <= 0) return false;
  for (const auto& plan : plans_) {
    if (plan->bucket >= n) return plan->Run(batch, out);
  }
  return false;
}

std::vector<PlanBucketStats> PlanSet::BucketStats() const {
  std::vector<PlanBucketStats> out;
  out.reserve(plans_.size());
  for (const auto& plan : plans_) out.push_back(plan->stats);
  return out;
}

std::shared_ptr<const PlanSet> PlanSet::Compile(
    const data::DatasetSchema& schema, const std::vector<Tensor>& params,
    const ForwardFn& forward, const PlanCompileOptions& options) {
  std::shared_ptr<PlanSet> set(new PlanSet());
  std::unordered_map<Node*, std::shared_ptr<Node>> param_map;
  for (const Tensor& p : params) {
    Tensor t = p;
    param_map.emplace(t.node_ptr().get(), t.node_ptr());
  }
  std::vector<int64_t> buckets = options.buckets;
  std::sort(buckets.begin(), buckets.end());
  buckets.erase(std::unique(buckets.begin(), buckets.end()), buckets.end());
  while (!buckets.empty() && buckets.front() <= 0) {
    buckets.erase(buckets.begin());
  }
  if (buckets.empty()) {
    set->fallback_reason_ = "no batch-size buckets";
    return set;
  }

  std::string why;
  for (int64_t b : buckets) {
    auto plan = plan_internal::CompileBucket(schema, param_map, forward, b,
                                             options, &why);
    if (plan == nullptr) {
      set->plans_.clear();
      set->fallback_reason_ = why;
      return set;
    }
    set->plans_.push_back(std::move(plan));
  }

  // Load-time safety net: every bucket must reproduce the dynamic forward
  // bitwise on fresh random batches, at the exact bucket size and at an odd
  // size exercising round-up-and-slice. Any mismatch (an ambiguous
  // derivation fit, a non-row-wise op) falls back to the dynamic path.
  for (size_t i = 0; i < set->plans_.size(); ++i) {
    InferencePlan& plan = *set->plans_[i];
    std::vector<int64_t> sizes = {plan.bucket};
    if (i > 0 && set->plans_[i - 1]->bucket + 1 < plan.bucket) {
      sizes.push_back(set->plans_[i - 1]->bucket + 1);
    } else if (i == 0 && plan.bucket > 1) {
      sizes.push_back(1);
    }
    for (int vb = 0; vb < std::max(1, options.verify_batches); ++vb) {
      for (int64_t n : sizes) {
        common::Rng rng((options.seed ^ (0xABCDEFull * (plan.bucket + 1))) +
                        977ull * vb + static_cast<uint64_t>(n));
        data::Batch batch = plan_internal::MakeProbeBatch(schema, n, rng);
        bool ok = false;
        {
          InferenceScope scope;
          Tensor ref = forward(batch);
          std::vector<float> got(plan.bucket);
          ok = static_cast<int64_t>(ref.value().size()) == n &&
               plan.Run(batch, got.data()) &&
               std::memcmp(got.data(), ref.value().data(),
                           sizeof(float) * n) == 0;
        }
        if (!ok) {
          set->fallback_reason_ =
              "bitwise verification failed at bucket " +
              std::to_string(plan.bucket) + ", batch " + std::to_string(n);
          set->plans_.clear();
          return set;
        }
      }
    }
  }
  set->compatible_ = true;
  return set;
}

}  // namespace miss::nn
