#include "nn/optimizer.h"

#include <cmath>

namespace miss::nn {

void Optimizer::ZeroGrad(const std::vector<Tensor>& params) {
  for (const Tensor& p : params) {
    auto& g = p.node()->grad;
    std::fill(g.begin(), g.end(), 0.0f);
  }
}

void Sgd::Step(const std::vector<Tensor>& params) {
  for (const Tensor& p : params) {
    auto& g = p.node()->grad;
    if (g.empty()) continue;
    auto& v = p.node()->value;
    for (size_t i = 0; i < v.size(); ++i) {
      v[i] -= lr_ * (g[i] + weight_decay_ * v[i]);
    }
  }
}

void Adam::Step(const std::vector<Tensor>& params) {
  for (const Tensor& p : params) {
    auto& g = p.node()->grad;
    if (g.empty()) continue;
    auto& v = p.node()->value;
    State& s = state_[p.node()];
    if (s.m.empty()) {
      s.m.assign(v.size(), 0.0f);
      s.v.assign(v.size(), 0.0f);
    }
    ++s.t;
    const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(s.t));
    const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(s.t));
    for (size_t i = 0; i < v.size(); ++i) {
      const float grad = g[i] + weight_decay_ * v[i];
      s.m[i] = beta1_ * s.m[i] + (1.0f - beta1_) * grad;
      s.v[i] = beta2_ * s.v[i] + (1.0f - beta2_) * grad * grad;
      const float m_hat = s.m[i] / bc1;
      const float v_hat = s.v[i] / bc2;
      v[i] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
}

double ClipGradNorm(const std::vector<Tensor>& params, double max_norm) {
  double sq = 0.0;
  for (const Tensor& p : params) {
    for (float g : p.node()->grad) sq += static_cast<double>(g) * g;
  }
  const double norm = std::sqrt(sq);
  if (norm > max_norm && norm > 0.0) {
    const float scale = static_cast<float>(max_norm / norm);
    for (const Tensor& p : params) {
      for (auto& g : p.node()->grad) g *= scale;
    }
  }
  return norm;
}

}  // namespace miss::nn
