// Recurrent cells: GRU, attention-updated GRU (AUGRU, used by DIEN) and LSTM
// (used by the MISS-LSTM extractor ablation).

#ifndef MISS_NN_RNN_H_
#define MISS_NN_RNN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/layers.h"
#include "nn/module.h"

namespace miss::nn {

// Standard GRU cell.
//   z = sigmoid(x Wz + h Uz + bz)
//   r = sigmoid(x Wr + h Ur + br)
//   n = tanh(x Wn + (r*h) Un + bn)
//   h' = (1 - z) * n + z * h
class GruCell : public Module {
 public:
  GruCell(int64_t in_dim, int64_t hidden_dim, common::Rng& rng);

  // x: [B, in], h: [B, hidden] -> [B, hidden]
  Tensor Forward(const Tensor& x, const Tensor& h) const;

  // AUGRU step (Zhou et al., DIEN): the update gate is scaled by an
  // attention weight a in [0, 1] per sample, shape [B, 1].
  Tensor ForwardAttentional(const Tensor& x, const Tensor& h,
                            const Tensor& attention) const;

  int64_t hidden_dim() const { return hidden_dim_; }

 private:
  struct Gates {
    Tensor z;
    Tensor n;
  };
  Gates ComputeGates(const Tensor& x, const Tensor& h) const;

  int64_t hidden_dim_;
  std::unique_ptr<Linear> xz_, hz_, xr_, hr_, xn_, hn_;
};

// Standard LSTM cell.
class LstmCell : public Module {
 public:
  LstmCell(int64_t in_dim, int64_t hidden_dim, common::Rng& rng);

  struct State {
    Tensor h;  // [B, hidden]
    Tensor c;  // [B, hidden]
  };

  State Forward(const Tensor& x, const State& state) const;

  int64_t hidden_dim() const { return hidden_dim_; }

 private:
  int64_t hidden_dim_;
  std::unique_ptr<Linear> xi_, hi_, xf_, hf_, xo_, ho_, xg_, hg_;
};

// Runs a GRU over a [B, L, in] sequence; returns all hidden states
// [B, L, hidden]. Padding positions (mask == 0) keep the previous state.
class GruRunner : public Module {
 public:
  GruRunner(int64_t in_dim, int64_t hidden_dim, common::Rng& rng);

  Tensor Forward(const Tensor& x, const std::vector<float>& mask) const;

  const GruCell& cell() const { return *cell_; }

 private:
  std::unique_ptr<GruCell> cell_;
};

// Runs an LSTM over a [B, L, in] sequence; returns all hidden states
// [B, L, hidden].
class LstmRunner : public Module {
 public:
  LstmRunner(int64_t in_dim, int64_t hidden_dim, common::Rng& rng);

  Tensor Forward(const Tensor& x, const std::vector<float>& mask) const;

 private:
  std::unique_ptr<LstmCell> cell_;
};

}  // namespace miss::nn

#endif  // MISS_NN_RNN_H_
