// Model-health sketch primitives: the building blocks behind /modelz.
//
// A served CTR model fails silently — the process stays green while scores
// drift or calibration decays. Detecting that needs distribution-level
// telemetry, not latency histograms:
//
//   FixedDistribution   fixed-bucket count sketch (lifetime + rolling
//                       window) for score distributions and per-feature
//                       category counts
//   CalibrationTable    predicted-decile vs. observed-CTR buckets fed by
//                       labelled feedback (lifetime + rolling window)
//   Psi                 population stability index between two count
//                       vectors — the drift score
//   AucFromCounts       progressive (online) AUC over bucketed scores
//   ModelBaseline       the training-time snapshot persisted into bundle
//                       manifests that live traffic is compared against
//
// Everything here follows the obs conventions: internal locking, *At(now_ns)
// overloads so tests control the clock, and the 12 x 5 s default window
// geometry shared with SlidingHistogram.

#ifndef MISS_OBS_HEALTH_H_
#define MISS_OBS_HEALTH_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.h"

namespace miss::obs {

// Bucket counts of the training-time score distribution span [0, 1] in this
// many equal-width buckets; live serving uses the same geometry so PSI
// compares like with like.
inline constexpr int kScoreDistributionBuckets = 20;

// Per-feature baselines keep the K most frequent ids individually; the rest
// collapse into an "other" mass (standard categorical-PSI practice).
inline constexpr int kBaselineTopK = 32;

// When a feature's distinct-id count at training time is at most this, the
// exact seen-id set is persisted and serving-time OOV detection is exact;
// above it, only "not in the top K" is observable and OOV is approximate.
inline constexpr int64_t kBaselineMaxExactIds = 4096;

// A thread-safe fixed-geometry count sketch. Two usage modes:
//
//   value mode:   Record(v) clamps v into `num_buckets` equal-width buckets
//                 spanning [lo, hi)
//   bucket mode:  RecordBucket(i) / MergeCounts(delta) index buckets
//                 directly (categorical slots)
//
// Counts accumulate twice: a lifetime vector and a ring of sub-windows
// (default 12 x 5 s) so callers can ask "the last minute" as well as "since
// boot" — the windowed-metrics convention serving telemetry follows.
class FixedDistribution {
 public:
  FixedDistribution(int num_buckets, double lo, double hi);
  FixedDistribution(int num_buckets, double lo, double hi, int num_windows,
                    int64_t window_ns);

  int num_buckets() const { return static_cast<int>(counts_.size()); }

  void Record(double v);
  void RecordAt(double v, int64_t now_ns);
  void RecordBucket(int bucket);
  void RecordBucketAt(int bucket, int64_t now_ns);
  // Adds `delta` (size num_buckets) into both lifetime counts and the
  // current sub-window in one lock acquisition — the batch-friendly path.
  void MergeCounts(const std::vector<int64_t>& delta);
  void MergeCountsAt(const std::vector<int64_t>& delta, int64_t now_ns);

  int64_t count() const;
  // Mean of recorded values; meaningful in value mode only.
  double mean() const;
  std::vector<int64_t> Counts() const;
  std::vector<int64_t> WindowCounts() const;
  std::vector<int64_t> WindowCountsAt(int64_t now_ns) const;
  int64_t WindowCount() const;
  int64_t WindowCountAt(int64_t now_ns) const;

 private:
  struct SubWindow {
    int64_t epoch = -1;
    int64_t count = 0;
    std::vector<int64_t> counts;
  };

  int BucketOf(double v) const;
  SubWindow& RotateLocked(int64_t now_ns);

  mutable std::mutex mu_;
  const double lo_;
  const double hi_;
  const int64_t window_ns_;
  std::vector<int64_t> counts_;
  int64_t count_ = 0;
  double sum_ = 0.0;
  std::vector<SubWindow> windows_;
};

// One row of a calibration table: everything needed to compare the mean
// predicted CTR in a score decile against the observed click rate there.
struct CalibrationBucket {
  int64_t count = 0;
  double sum_predicted = 0.0;
  int64_t positives = 0;
};

// Thread-safe predicted-probability calibration buckets over [0, 1],
// lifetime plus rolling window. Fed by /feedback joins (predicted score at
// serve time, label once the click outcome is known).
class CalibrationTable {
 public:
  explicit CalibrationTable(int num_buckets = 10);
  CalibrationTable(int num_buckets, int num_windows, int64_t window_ns);

  int num_buckets() const { return static_cast<int>(buckets_.size()); }

  void Record(double predicted, bool positive);
  void RecordAt(double predicted, bool positive, int64_t now_ns);

  int64_t count() const;
  std::vector<CalibrationBucket> Snapshot() const;
  std::vector<CalibrationBucket> WindowSnapshot() const;
  std::vector<CalibrationBucket> WindowSnapshotAt(int64_t now_ns) const;

  // Expected calibration error: count-weighted mean |mean predicted -
  // observed rate| across non-empty buckets. 0 for an empty table.
  static double ExpectedCalibrationError(
      const std::vector<CalibrationBucket>& buckets);

 private:
  struct SubWindow {
    int64_t epoch = -1;
    std::vector<CalibrationBucket> buckets;
  };

  SubWindow& RotateLocked(int64_t now_ns);

  mutable std::mutex mu_;
  const int64_t window_ns_;
  std::vector<CalibrationBucket> buckets_;
  int64_t count_ = 0;
  std::vector<SubWindow> windows_;
};

// Population stability index between an expected (baseline) and actual
// (live) count vector of equal length: sum over buckets of
// (p_actual - p_expected) * ln(p_actual / p_expected), with proportions
// floored at a small epsilon so empty buckets contribute a large-but-finite
// term instead of infinity. Returns 0 when either vector sums to zero.
// Rule of thumb: < 0.1 stable, 0.1-0.25 moderate shift, > 0.25 major shift.
double Psi(const std::vector<int64_t>& expected,
           const std::vector<int64_t>& actual);

// Progressive AUC from positive/negative score-bucket counts (equal
// geometry, ascending score order): rank-sum with half credit for same-
// bucket ties. Returns 0.5 when either class is empty.
double AucFromCounts(const std::vector<int64_t>& positives,
                     const std::vector<int64_t>& negatives);

// Training-time distribution snapshot for one feature field.
struct FeatureBaseline {
  std::string name;
  bool sequential = false;  // counts are per sequence element, not per sample
  int64_t total = 0;        // observations (ids) counted
  int64_t distinct = 0;     // distinct ids observed
  std::vector<int64_t> top_ids;  // most frequent first; ties by ascending id
  std::vector<int64_t> top_counts;
  int64_t other = 0;  // total - sum(top_counts)
  bool seen_exact = false;
  std::vector<int64_t> seen_ids;  // sorted; only when seen_exact
};

// The model-health baseline captured on validation data after training and
// persisted in the bundle manifest. Live serving distributions are compared
// against this via Psi.
struct ModelBaseline {
  int64_t sample_count = 0;
  double positive_rate = 0.0;
  int64_t score_buckets = 0;          // geometry of score_counts over [0, 1]
  std::vector<int64_t> score_counts;  // validation score distribution
  std::vector<FeatureBaseline> features;  // categorical fields, then
                                          // sequential fields, schema order
};

// Writes `b` as one JSON object value at the writer's current position
// (caller supplies the surrounding Key()/object context).
void WriteModelBaselineJson(JsonWriter& w, const ModelBaseline& b);

// Parses an object previously produced by WriteModelBaselineJson. Returns
// false on a missing/mistyped field, leaving `*out` unspecified.
bool ParseModelBaselineJson(const JsonValue& v, ModelBaseline* out);

}  // namespace miss::obs

#endif  // MISS_OBS_HEALTH_H_
