#include "obs/metrics.h"

#include <algorithm>
#include <fstream>
#include <limits>

#include "common/check.h"
#include "obs/json.h"

namespace miss::obs {

std::vector<double> Histogram::DefaultBounds() {
  std::vector<double> bounds;
  bounds.reserve(52);
  for (double b = 1e-6; b < 2e9; b *= 2.0) bounds.push_back(b);
  return bounds;
}

Histogram::Histogram() : Histogram(DefaultBounds()) {}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  MISS_CHECK(!bounds_.empty()) << "histogram needs at least one bucket bound";
  for (size_t i = 1; i < bounds_.size(); ++i) {
    MISS_CHECK(bounds_[i - 1] < bounds_[i])
        << "histogram bounds must be strictly ascending";
  }
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::Record(double v) {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t bucket =
      std::upper_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin();
  ++counts_[bucket];
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

double Histogram::QuantileLocked(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based, midpoint-free definition).
  const double rank = q * static_cast<double>(count_ - 1) + 1.0;
  // The extreme ranks are known exactly from the tracked min/max.
  if (rank <= 1.0) return min_;
  if (rank >= static_cast<double>(count_)) return max_;
  int64_t seen = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const int64_t lo_rank = seen + 1;
    const int64_t hi_rank = seen + counts_[i];
    if (rank <= static_cast<double>(hi_rank)) {
      // Bucket edges; clamp to the observed min/max so quantiles never fall
      // outside the recorded range.
      double lo = i == 0 ? min_ : bounds_[i - 1];
      double hi = i < bounds_.size() ? bounds_[i] : max_;
      lo = std::max(lo, min_);
      hi = std::min(hi, max_);
      if (hi <= lo || counts_[i] == 1) return std::clamp((lo + hi) / 2, lo, hi);
      // Linear interpolation across the bucket's occupied rank range.
      const double frac =
          (rank - static_cast<double>(lo_rank)) /
          static_cast<double>(counts_[i] - 1);
      return lo + frac * (hi - lo);
    }
    seen = hi_rank;
  }
  return max_;
}

double Histogram::Quantile(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  return QuantileLocked(q);
}

HistogramSnapshot Histogram::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  HistogramSnapshot snap;
  snap.count = count_;
  snap.sum = sum_;
  snap.min = min_;
  snap.max = max_;
  snap.mean = count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  snap.p50 = QuantileLocked(0.50);
  snap.p95 = QuantileLocked(0.95);
  snap.p99 = QuantileLocked(0.99);
  return snap;
}

int64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

std::vector<std::string> MetricsRegistry::CounterNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(counters_.size());
  for (const auto& [name, unused] : counters_) names.push_back(name);
  return names;
}

std::vector<std::string> MetricsRegistry::GaugeNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(gauges_.size());
  for (const auto& [name, unused] : gauges_) names.push_back(name);
  return names;
}

std::vector<std::string> MetricsRegistry::HistogramNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(histograms_.size());
  for (const auto& [name, unused] : histograms_) names.push_back(name);
  return names;
}

int64_t RegistrySnapshot::CounterOr(const std::string& name,
                                    int64_t fallback) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return fallback;
}

double RegistrySnapshot::GaugeOr(const std::string& name,
                                 double fallback) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return fallback;
}

const HistogramSnapshot* RegistrySnapshot::FindHistogram(
    const std::string& name) const {
  for (const auto& [n, v] : histograms) {
    if (n == name) return &v;
  }
  return nullptr;
}

RegistrySnapshot MetricsRegistry::SnapshotAll() const {
  std::lock_guard<std::mutex> lock(mu_);
  RegistrySnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    snap.histograms.emplace_back(name, hist->Snapshot());
  }
  return snap;
}

std::string MetricsRegistry::ToJson() const {
  const RegistrySnapshot snap = SnapshotAll();
  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, value] : snap.counters) {
    w.Key(name).Int(value);
  }
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, value] : snap.gauges) {
    w.Key(name).Number(value);
  }
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& [name, s] : snap.histograms) {
    w.Key(name).BeginObject();
    w.Key("count").Int(s.count);
    w.Key("sum").Number(s.sum);
    w.Key("min").Number(s.min);
    w.Key("max").Number(s.max);
    w.Key("mean").Number(s.mean);
    w.Key("p50").Number(s.p50);
    w.Key("p95").Number(s.p95);
    w.Key("p99").Number(s.p99);
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.str();
}

bool MetricsRegistry::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << ToJson() << "\n";
  return static_cast<bool>(out);
}

}  // namespace miss::obs
