#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "obs/json.h"
#include "obs/trace.h"

namespace miss::obs {

namespace {

// Quantile over one set of fixed buckets (shared by Histogram and the
// merged view of SlidingHistogram's sub-windows). `counts` has
// bounds.size() + 1 entries, the last being the overflow bucket; `count`,
// `min` and `max` describe the recorded population.
double QuantileFromBuckets(const std::vector<double>& bounds,
                           const std::vector<int64_t>& counts, int64_t count,
                           double min, double max, double q) {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based, midpoint-free definition).
  const double rank = q * static_cast<double>(count - 1) + 1.0;
  // The extreme ranks are known exactly from the tracked min/max.
  if (rank <= 1.0) return min;
  if (rank >= static_cast<double>(count)) return max;
  int64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const int64_t lo_rank = seen + 1;
    const int64_t hi_rank = seen + counts[i];
    if (rank <= static_cast<double>(hi_rank)) {
      const bool overflow = i == bounds.size();
      // Bucket edges; clamp to the observed min/max so quantiles never fall
      // outside the recorded range.
      double lo = i == 0 ? min : bounds[i - 1];
      double hi = overflow ? max : bounds[i];
      lo = std::max(lo, min);
      hi = std::min(hi, max);
      // The overflow bucket is the topmost bucket, so when it holds exactly
      // one value that value IS the recorded maximum — report it instead of
      // a midpoint between bounds.back() and max that underestimates the
      // tail.
      if (overflow && counts[i] == 1) return max;
      if (hi <= lo || counts[i] == 1) return std::clamp((lo + hi) / 2, lo, hi);
      // Linear interpolation across the bucket's occupied rank range.
      const double frac = (rank - static_cast<double>(lo_rank)) /
                          static_cast<double>(counts[i] - 1);
      return lo + frac * (hi - lo);
    }
    seen = hi_rank;
  }
  return max;
}

}  // namespace

std::vector<double> Histogram::DefaultBounds() {
  std::vector<double> bounds;
  bounds.reserve(52);
  for (double b = 1e-6; b < 2e9; b *= 2.0) bounds.push_back(b);
  return bounds;
}

Histogram::Histogram() : Histogram(DefaultBounds()) {}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  MISS_CHECK(!bounds_.empty()) << "histogram needs at least one bucket bound";
  for (size_t i = 1; i < bounds_.size(); ++i) {
    MISS_CHECK(bounds_[i - 1] < bounds_[i])
        << "histogram bounds must be strictly ascending";
  }
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::Record(double v) {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t bucket =
      std::upper_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin();
  ++counts_[bucket];
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

double Histogram::QuantileLocked(double q) const {
  return QuantileFromBuckets(bounds_, counts_, count_, min_, max_, q);
}

double Histogram::Quantile(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  return QuantileLocked(q);
}

HistogramSnapshot Histogram::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  HistogramSnapshot snap;
  snap.count = count_;
  snap.sum = sum_;
  snap.min = min_;
  snap.max = max_;
  snap.mean = count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  snap.p50 = QuantileLocked(0.50);
  snap.p95 = QuantileLocked(0.95);
  snap.p99 = QuantileLocked(0.99);
  return snap;
}

int64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

namespace {
// Default rolling-window geometry: 12 x 5 s, a one-minute SLO window.
constexpr int kDefaultSubWindows = 12;
constexpr int64_t kDefaultSubWindowNs = 5'000'000'000;
}  // namespace

SlidingHistogram::SlidingHistogram()
    : SlidingHistogram(kDefaultSubWindows, kDefaultSubWindowNs,
                       Histogram::DefaultBounds()) {}

SlidingHistogram::SlidingHistogram(int num_windows, int64_t window_ns,
                                   std::vector<double> bounds)
    : window_ns_(window_ns), bounds_(std::move(bounds)) {
  MISS_CHECK_GT(num_windows, 0);
  MISS_CHECK_GT(window_ns, 0);
  MISS_CHECK(!bounds_.empty()) << "histogram needs at least one bucket bound";
  for (size_t i = 1; i < bounds_.size(); ++i) {
    MISS_CHECK(bounds_[i - 1] < bounds_[i])
        << "histogram bounds must be strictly ascending";
  }
  windows_.resize(static_cast<size_t>(num_windows));
  for (SubWindow& w : windows_) w.counts.assign(bounds_.size() + 1, 0);
}

SlidingHistogram::SubWindow& SlidingHistogram::RotateLocked(int64_t now_ns) {
  const int64_t epoch = now_ns / window_ns_;
  SubWindow& w =
      windows_[static_cast<size_t>(epoch % static_cast<int64_t>(
                                               windows_.size()))];
  if (w.epoch != epoch) {
    // The slot last held an expired sub-window; recycle it in place.
    w.epoch = epoch;
    std::fill(w.counts.begin(), w.counts.end(), 0);
    w.count = 0;
    w.sum = 0.0;
    w.min = 0.0;
    w.max = 0.0;
  }
  return w;
}

void SlidingHistogram::Record(double v) { RecordAt(v, NowNs()); }

void SlidingHistogram::RecordAt(double v, int64_t now_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  SubWindow& w = RotateLocked(now_ns);
  const size_t bucket =
      std::upper_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin();
  ++w.counts[bucket];
  if (w.count == 0) {
    w.min = v;
    w.max = v;
  } else {
    w.min = std::min(w.min, v);
    w.max = std::max(w.max, v);
  }
  ++w.count;
  w.sum += v;
}

WindowSnapshot SlidingHistogram::Snapshot() const {
  return SnapshotAt(NowNs());
}

WindowSnapshot SlidingHistogram::SnapshotAt(int64_t now_ns) const {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t now_epoch = now_ns / window_ns_;
  const int64_t min_epoch =
      now_epoch - static_cast<int64_t>(windows_.size()) + 1;

  WindowSnapshot snap;
  std::vector<int64_t> merged(bounds_.size() + 1, 0);
  int64_t oldest_live_epoch = now_epoch + 1;
  for (const SubWindow& w : windows_) {
    // Only sub-windows inside [min_epoch, now_epoch] are live; slots not yet
    // recycled may still hold data from a full ring-length ago.
    if (w.epoch < min_epoch || w.epoch > now_epoch || w.count == 0) continue;
    for (size_t i = 0; i < merged.size(); ++i) merged[i] += w.counts[i];
    if (snap.count == 0) {
      snap.min = w.min;
      snap.max = w.max;
    } else {
      snap.min = std::min(snap.min, w.min);
      snap.max = std::max(snap.max, w.max);
    }
    snap.count += w.count;
    snap.sum += w.sum;
    oldest_live_epoch = std::min(oldest_live_epoch, w.epoch);
  }
  if (snap.count == 0) return snap;

  snap.mean = snap.sum / static_cast<double>(snap.count);
  snap.p50 = QuantileFromBuckets(bounds_, merged, snap.count, snap.min,
                                 snap.max, 0.50);
  snap.p95 = QuantileFromBuckets(bounds_, merged, snap.count, snap.min,
                                 snap.max, 0.95);
  snap.p99 = QuantileFromBuckets(bounds_, merged, snap.count, snap.min,
                                 snap.max, 0.99);
  // Covered span: from the start of the oldest live sub-window to now.
  const double span_ns =
      static_cast<double>(now_ns - oldest_live_epoch * window_ns_);
  snap.window_seconds = span_ns > 0 ? span_ns / 1e9 : 0.0;
  snap.rate_per_sec = snap.window_seconds > 0
                          ? static_cast<double>(snap.count) /
                                snap.window_seconds
                          : 0.0;
  return snap;
}

SlidingCounter::SlidingCounter()
    : SlidingCounter(kDefaultSubWindows, kDefaultSubWindowNs) {}

SlidingCounter::SlidingCounter(int num_windows, int64_t window_ns)
    : window_ns_(window_ns) {
  MISS_CHECK_GT(num_windows, 0);
  MISS_CHECK_GT(window_ns, 0);
  windows_.resize(static_cast<size_t>(num_windows));
}

void SlidingCounter::Add(int64_t delta) { AddAt(delta, NowNs()); }

void SlidingCounter::AddAt(int64_t delta, int64_t now_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t epoch = now_ns / window_ns_;
  SubWindow& w =
      windows_[static_cast<size_t>(epoch % static_cast<int64_t>(
                                               windows_.size()))];
  if (w.epoch != epoch) {
    w.epoch = epoch;
    w.count = 0;
  }
  w.count += delta;
}

int64_t SlidingCounter::TotalInWindow() const {
  return TotalInWindowAt(NowNs());
}

int64_t SlidingCounter::TotalInWindowAt(int64_t now_ns) const {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t now_epoch = now_ns / window_ns_;
  const int64_t min_epoch =
      now_epoch - static_cast<int64_t>(windows_.size()) + 1;
  int64_t total = 0;
  for (const SubWindow& w : windows_) {
    if (w.epoch >= min_epoch && w.epoch <= now_epoch) total += w.count;
  }
  return total;
}

double SlidingCounter::RatePerSec() const { return RatePerSecAt(NowNs()); }

double SlidingCounter::RatePerSecAt(int64_t now_ns) const {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t now_epoch = now_ns / window_ns_;
  const int64_t min_epoch =
      now_epoch - static_cast<int64_t>(windows_.size()) + 1;
  int64_t total = 0;
  int64_t oldest_live_epoch = now_epoch + 1;
  for (const SubWindow& w : windows_) {
    if (w.epoch < min_epoch || w.epoch > now_epoch || w.count == 0) continue;
    total += w.count;
    oldest_live_epoch = std::min(oldest_live_epoch, w.epoch);
  }
  if (total == 0) return 0.0;
  const double span_ns =
      static_cast<double>(now_ns - oldest_live_epoch * window_ns_);
  return span_ns > 0 ? static_cast<double>(total) / (span_ns / 1e9) : 0.0;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

SlidingHistogram& MetricsRegistry::GetSlidingHistogram(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = sliding_[name];
  if (!slot) slot = std::make_unique<SlidingHistogram>();
  return *slot;
}

SlidingHistogram& MetricsRegistry::GetSlidingHistogram(
    const std::string& name, int num_windows, int64_t window_ns,
    std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = sliding_[name];
  if (!slot) {
    slot = std::make_unique<SlidingHistogram>(num_windows, window_ns,
                                              std::move(bounds));
  }
  return *slot;
}

SlidingCounter& MetricsRegistry::GetSlidingCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = sliding_counters_[name];
  if (!slot) slot = std::make_unique<SlidingCounter>();
  return *slot;
}

SlidingCounter& MetricsRegistry::GetSlidingCounter(const std::string& name,
                                                   int num_windows,
                                                   int64_t window_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = sliding_counters_[name];
  if (!slot) slot = std::make_unique<SlidingCounter>(num_windows, window_ns);
  return *slot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  sliding_.clear();
  sliding_counters_.clear();
}

std::vector<std::string> MetricsRegistry::CounterNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(counters_.size());
  for (const auto& [name, unused] : counters_) names.push_back(name);
  return names;
}

std::vector<std::string> MetricsRegistry::GaugeNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(gauges_.size());
  for (const auto& [name, unused] : gauges_) names.push_back(name);
  return names;
}

std::vector<std::string> MetricsRegistry::HistogramNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(histograms_.size());
  for (const auto& [name, unused] : histograms_) names.push_back(name);
  return names;
}

int64_t RegistrySnapshot::CounterOr(const std::string& name,
                                    int64_t fallback) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return fallback;
}

double RegistrySnapshot::GaugeOr(const std::string& name,
                                 double fallback) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return fallback;
}

const HistogramSnapshot* RegistrySnapshot::FindHistogram(
    const std::string& name) const {
  for (const auto& [n, v] : histograms) {
    if (n == name) return &v;
  }
  return nullptr;
}

const WindowSnapshot* RegistrySnapshot::FindWindow(
    const std::string& name) const {
  for (const auto& [n, v] : windows) {
    if (n == name) return &v;
  }
  return nullptr;
}

double RegistrySnapshot::RateOr(const std::string& name,
                                double fallback) const {
  for (const auto& [n, v] : rates) {
    if (n == name) return v;
  }
  return fallback;
}

RegistrySnapshot MetricsRegistry::SnapshotAll() const {
  std::lock_guard<std::mutex> lock(mu_);
  RegistrySnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    snap.histograms.emplace_back(name, hist->Snapshot());
  }
  snap.windows.reserve(sliding_.size());
  for (const auto& [name, hist] : sliding_) {
    snap.windows.emplace_back(name, hist->Snapshot());
  }
  snap.rates.reserve(sliding_counters_.size());
  for (const auto& [name, counter] : sliding_counters_) {
    snap.rates.emplace_back(name, counter->RatePerSec());
  }
  return snap;
}

std::string MetricsRegistry::ToJson() const {
  const RegistrySnapshot snap = SnapshotAll();
  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, value] : snap.counters) {
    w.Key(name).Int(value);
  }
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, value] : snap.gauges) {
    w.Key(name).Number(value);
  }
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& [name, s] : snap.histograms) {
    w.Key(name).BeginObject();
    w.Key("count").Int(s.count);
    w.Key("sum").Number(s.sum);
    w.Key("min").Number(s.min);
    w.Key("max").Number(s.max);
    w.Key("mean").Number(s.mean);
    w.Key("p50").Number(s.p50);
    w.Key("p95").Number(s.p95);
    w.Key("p99").Number(s.p99);
    w.EndObject();
  }
  w.EndObject();
  w.Key("windows").BeginObject();
  for (const auto& [name, s] : snap.windows) {
    w.Key(name).BeginObject();
    w.Key("count").Int(s.count);
    w.Key("sum").Number(s.sum);
    w.Key("min").Number(s.min);
    w.Key("max").Number(s.max);
    w.Key("mean").Number(s.mean);
    w.Key("p50").Number(s.p50);
    w.Key("p95").Number(s.p95);
    w.Key("p99").Number(s.p99);
    w.Key("window_seconds").Number(s.window_seconds);
    w.Key("rate_per_sec").Number(s.rate_per_sec);
    w.EndObject();
  }
  w.EndObject();
  w.Key("rates").BeginObject();
  for (const auto& [name, rate] : snap.rates) {
    w.Key(name).Number(rate);
  }
  w.EndObject();
  w.EndObject();
  return w.str();
}

namespace {

// Prometheus metric names admit [a-zA-Z0-9_:]; our slash-delimited names
// ("serve/stage/queue_ms") become miss_serve_stage_queue_ms.
std::string PromName(const std::string& name, const char* suffix = "") {
  std::string out = "miss_";
  out.reserve(out.size() + name.size() + std::strlen(suffix));
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  out += suffix;
  return out;
}

void AppendNumber(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

// Registry names may carry a label suffix after '|' — "net/requests|model=a"
// — which the exposition renders as Prometheus labels on the base family.
// Returns the base name; *labels receives the rendered `k="v"` pairs (comma
// separated, no braces), empty for an unlabeled name. A suffix that is not a
// well-formed k=v list falls back to treating the whole string as the name
// (PromName sanitizes the '|' away).
std::string SplitPromLabels(const std::string& name, std::string* labels) {
  labels->clear();
  const size_t bar = name.find('|');
  if (bar == std::string::npos) return name;
  size_t pos = bar;
  std::string out;
  while (pos < name.size()) {
    size_t next = name.find('|', pos + 1);
    if (next == std::string::npos) next = name.size();
    const std::string seg = name.substr(pos + 1, next - pos - 1);
    const size_t eq = seg.find('=');
    if (eq == std::string::npos || eq == 0) {
      labels->clear();
      return name;
    }
    if (!out.empty()) out += ",";
    for (size_t i = 0; i < eq; ++i) {
      const char c = seg[i];
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_';
      out.push_back(ok ? c : '_');
    }
    out += "=\"";
    for (size_t i = eq + 1; i < seg.size(); ++i) {
      const char c = seg[i];
      if (c == '\\') {
        out += "\\\\";
      } else if (c == '"') {
        out += "\\\"";
      } else if (c == '\n') {
        out += "\\n";
      } else {
        out.push_back(c);
      }
    }
    out += "\"";
    pos = next;
  }
  *labels = std::move(out);
  return name.substr(0, bar);
}

// All samples of a family (labeled and unlabeled series of one prom name)
// must form a single group under one HELP/TYPE pair — labeled series are NOT
// adjacent to their base name in the sorted snapshot ('|' sorts after '_'),
// so samples are accumulated per family and emitted grouped, in first-seen
// order.
struct PromFamily {
  std::string head;  // "# HELP ...\n# TYPE ...\n"
  std::string body;  // sample lines
};

class PromWriter {
 public:
  // Returns the family's sample buffer, writing the HELP/TYPE header on
  // first touch. Registry names carry no free-form descriptions, so the help
  // text states the kind plus the internal (base) name.
  std::string& Family(const std::string& prom_name, const std::string& name,
                      const char* what, const char* type) {
    auto [it, inserted] = index_.emplace(prom_name, families_.size());
    if (inserted) {
      families_.emplace_back();
      families_.back().head = "# HELP " + prom_name + " " + what + " '" +
                              name + "'.\n# TYPE " + prom_name + " " + type +
                              "\n";
    }
    return families_[it->second].body;
  }

  std::string str() const {
    std::string out;
    for (const PromFamily& fam : families_) {
      out += fam.head;
      out += fam.body;
    }
    return out;
  }

 private:
  std::vector<PromFamily> families_;
  std::map<std::string, size_t> index_;
};

void AppendSummary(PromWriter& w, const std::string& prom_name,
                   const std::string& name, const std::string& labels,
                   const char* what, int64_t count, double sum, double p50,
                   double p95, double p99) {
  std::string& out = w.Family(prom_name, name, what, "summary");
  const std::string qprefix =
      prom_name + "{" + (labels.empty() ? "" : labels + ",");
  const std::string braced = labels.empty() ? "" : "{" + labels + "}";
  out += qprefix + "quantile=\"0.5\"} ";
  AppendNumber(out, p50);
  out += "\n" + qprefix + "quantile=\"0.95\"} ";
  AppendNumber(out, p95);
  out += "\n" + qprefix + "quantile=\"0.99\"} ";
  AppendNumber(out, p99);
  out += "\n" + prom_name + "_sum" + braced + " ";
  AppendNumber(out, sum);
  out += "\n" + prom_name + "_count" + braced + " " + std::to_string(count) +
         "\n";
}

}  // namespace

std::string MetricsRegistry::ToPrometheusText() const {
  const RegistrySnapshot snap = SnapshotAll();
  PromWriter w;
  std::string labels;
  for (const auto& [name, value] : snap.counters) {
    const std::string base = SplitPromLabels(name, &labels);
    const std::string p = PromName(base, "_total");
    const std::string braced = labels.empty() ? "" : "{" + labels + "}";
    w.Family(p, base, "Lifetime total of counter", "counter") +=
        p + braced + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string base = SplitPromLabels(name, &labels);
    const std::string p = PromName(base);
    const std::string braced = labels.empty() ? "" : "{" + labels + "}";
    std::string& out = w.Family(p, base, "Current value of gauge", "gauge");
    out += p + braced + " ";
    AppendNumber(out, value);
    out += "\n";
  }
  for (const auto& [name, rate] : snap.rates) {
    const std::string base = SplitPromLabels(name, &labels);
    const std::string p = PromName(base, "_rate_per_sec");
    const std::string braced = labels.empty() ? "" : "{" + labels + "}";
    std::string& out =
        w.Family(p, base, "Sliding-window event rate of counter", "gauge");
    out += p + braced + " ";
    AppendNumber(out, rate);
    out += "\n";
  }
  for (const auto& [name, s] : snap.histograms) {
    const std::string base = SplitPromLabels(name, &labels);
    AppendSummary(w, PromName(base), base, labels,
                  "Lifetime quantiles of histogram", s.count, s.sum, s.p50,
                  s.p95, s.p99);
  }
  for (const auto& [name, s] : snap.windows) {
    const std::string base = SplitPromLabels(name, &labels);
    const std::string p = PromName(base, "_window");
    const std::string braced = labels.empty() ? "" : "{" + labels + "}";
    AppendSummary(w, p, base, labels, "Rolling-window quantiles of histogram",
                  s.count, s.sum, s.p50, s.p95, s.p99);
    std::string& secs =
        w.Family(p + "_seconds", base, "Window span of histogram", "gauge");
    secs += p + "_seconds" + braced + " ";
    AppendNumber(secs, s.window_seconds);
    secs += "\n";
    std::string& rate = w.Family(p + "_rate_per_sec", base,
                                 "Window event rate of histogram", "gauge");
    rate += p + "_rate_per_sec" + braced + " ";
    AppendNumber(rate, s.rate_per_sec);
    rate += "\n";
  }
  return w.str();
}

bool MetricsRegistry::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << ToJson() << "\n";
  return static_cast<bool>(out);
}

}  // namespace miss::obs
