#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>

#ifdef __linux__
#include <pthread.h>
#endif

#include "common/env.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/profiler.h"

namespace miss::obs {

namespace {

std::mutex g_trace_mu;
std::ofstream* g_trace_file = nullptr;  // guarded by g_trace_mu
bool g_trace_has_events = false;        // guarded by g_trace_mu
std::atomic<bool> g_trace_active{false};
std::atomic<bool> g_exit_hook_armed{false};
std::string* g_metrics_json_path = nullptr;  // guarded by g_trace_mu
// ThreadId() -> display name; never freed. Guarded by g_trace_mu.
std::map<int, std::string>* g_thread_names = nullptr;

void AtExitFlush() {
  StopTracing();
  std::string path;
  {
    std::lock_guard<std::mutex> lock(g_trace_mu);
    if (g_metrics_json_path != nullptr) path = *g_metrics_json_path;
  }
  if (!path.empty()) MetricsRegistry::Global().WriteJsonFile(path);
}

void ArmExitHook() {
  if (!g_exit_hook_armed.exchange(true)) std::atexit(AtExitFlush);
}

// Writes one ph:"M" thread_name metadata event. Caller holds g_trace_mu and
// has checked g_trace_file != nullptr.
void EmitThreadNameLocked(int tid, const std::string& name) {
  if (g_trace_has_events) (*g_trace_file) << ",";
  g_trace_has_events = true;
  (*g_trace_file) << "\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                  << "\"tid\":" << tid << ",\"args\":{\"name\":\""
                  << JsonEscape(name) << "\"}}";
}

// Threads may be named before tracing starts; seed each new trace document
// with every name learned so far. Caller holds g_trace_mu.
void ReplayThreadNamesLocked() {
  if (g_thread_names == nullptr) return;
  for (const auto& [tid, name] : *g_thread_names) {
    EmitThreadNameLocked(tid, name);
  }
}

}  // namespace

namespace internal {

std::atomic<int> g_state{0};

void InitFromEnvSlow() {
  // Serialize first-time init; recompute under the lock so concurrent
  // callers agree.
  std::lock_guard<std::mutex> lock(g_trace_mu);
  if (g_state.load(std::memory_order_relaxed) != 0) return;

  const std::string trace_file = common::GetEnvString("MISS_TRACE_FILE", "");
  const std::string metrics_json =
      common::GetEnvString("MISS_METRICS_JSON", "");
  const std::string run_report = common::GetEnvString("MISS_RUN_REPORT", "");
  const bool on = common::GetEnvInt("MISS_TELEMETRY", 0) != 0 ||
                  !trace_file.empty() || !metrics_json.empty() ||
                  !run_report.empty();

  if (!metrics_json.empty()) {
    delete g_metrics_json_path;
    g_metrics_json_path = new std::string(metrics_json);
    ArmExitHook();
  }
  g_state.store(on ? 2 : 1, std::memory_order_relaxed);
  if (!trace_file.empty()) {
    // StartTracing needs g_trace_mu; open inline instead.
    delete g_trace_file;
    g_trace_file = new std::ofstream(trace_file, std::ios::trunc);
    if (*g_trace_file) {
      // Default stream precision (6 significant digits) would collapse
      // microsecond timestamps measured since boot; 15 keeps sub-µs apart.
      g_trace_file->precision(15);
      (*g_trace_file) << "{\"traceEvents\":[";
      g_trace_has_events = false;
      ReplayThreadNamesLocked();
      g_trace_active.store(true, std::memory_order_release);
      ArmExitHook();
    } else {
      delete g_trace_file;
      g_trace_file = nullptr;
    }
  }
}

}  // namespace internal

void SetEnabled(bool on) {
  internal::g_state.store(on ? 2 : 1, std::memory_order_relaxed);
}

void ReinitFromEnv() {
  StopTracing();
  {
    std::lock_guard<std::mutex> lock(g_trace_mu);
    delete g_metrics_json_path;
    g_metrics_json_path = nullptr;
    internal::g_state.store(0, std::memory_order_relaxed);
  }
  internal::InitFromEnvSlow();
}

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int ThreadId() {
  static std::atomic<int> next{0};
  thread_local int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void StartTracing(const std::string& path) {
  std::lock_guard<std::mutex> lock(g_trace_mu);
  if (g_trace_file != nullptr) {
    // Close the previous document first.
    (*g_trace_file) << "]}\n";
    delete g_trace_file;
    g_trace_file = nullptr;
    g_trace_active.store(false, std::memory_order_release);
  }
  auto* file = new std::ofstream(path, std::ios::trunc);
  if (!*file) {
    delete file;
    return;
  }
  file->precision(15);  // keep boot-relative µs timestamps sub-µs exact
  (*file) << "{\"traceEvents\":[";
  g_trace_file = file;
  g_trace_has_events = false;
  ReplayThreadNamesLocked();
  g_trace_active.store(true, std::memory_order_release);
  ArmExitHook();
}

void StopTracing() {
  std::lock_guard<std::mutex> lock(g_trace_mu);
  if (g_trace_file == nullptr) return;
  (*g_trace_file) << "]}\n";
  g_trace_file->flush();
  delete g_trace_file;
  g_trace_file = nullptr;
  g_trace_active.store(false, std::memory_order_release);
}

bool TracingActive() {
  return g_trace_active.load(std::memory_order_acquire);
}

void EmitTraceEvent(const char* name, int64_t ts_ns, int64_t dur_ns) {
  const int tid = ThreadId();
  std::lock_guard<std::mutex> lock(g_trace_mu);
  if (g_trace_file == nullptr) return;
  if (g_trace_has_events) (*g_trace_file) << ",";
  g_trace_has_events = true;
  // Chrome trace events use microsecond timestamps.
  (*g_trace_file) << "\n{\"name\":\"" << JsonEscape(name)
                  << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << tid
                  << ",\"ts\":" << static_cast<double>(ts_ns) / 1000.0
                  << ",\"dur\":" << static_cast<double>(dur_ns) / 1000.0
                  << "}";
}

void EmitFlowStart(uint64_t id, int64_t ts_ns) {
  const int tid = ThreadId();
  std::lock_guard<std::mutex> lock(g_trace_mu);
  if (g_trace_file == nullptr) return;
  if (g_trace_has_events) (*g_trace_file) << ",";
  g_trace_has_events = true;
  (*g_trace_file) << "\n{\"name\":\"request\",\"cat\":\"request\","
                  << "\"ph\":\"s\",\"pid\":1,\"tid\":" << tid
                  << ",\"ts\":" << static_cast<double>(ts_ns) / 1000.0
                  << ",\"id\":" << id << "}";
}

void EmitFlowFinish(uint64_t id, int64_t ts_ns) {
  const int tid = ThreadId();
  std::lock_guard<std::mutex> lock(g_trace_mu);
  if (g_trace_file == nullptr) return;
  if (g_trace_has_events) (*g_trace_file) << ",";
  g_trace_has_events = true;
  (*g_trace_file) << "\n{\"name\":\"request\",\"cat\":\"request\","
                  << "\"ph\":\"f\",\"bp\":\"e\",\"pid\":1,\"tid\":" << tid
                  << ",\"ts\":" << static_cast<double>(ts_ns) / 1000.0
                  << ",\"id\":" << id << "}";
}

void SetCurrentThreadName(const std::string& name) {
#ifdef __linux__
  // The kernel limit is 15 chars + NUL.
  pthread_setname_np(pthread_self(), name.substr(0, 15).c_str());
#endif
  // Mirror into the async-signal-readable TLS buffer the SIGPROF sampler
  // copies from (profiler.h); NUL first so a mid-write signal sees a
  // truncated name, never a stale one.
  char* tls = internal::t_profiler_thread_name;
  const size_t n =
      std::min(name.size(), size_t{internal::kThreadNameBytes - 1});
  tls[n] = '\0';
  std::memcpy(tls, name.data(), n);
  const int tid = ThreadId();
  std::lock_guard<std::mutex> lock(g_trace_mu);
  if (g_thread_names == nullptr) {
    g_thread_names = new std::map<int, std::string>();
  }
  (*g_thread_names)[tid] = name;
  if (g_trace_file != nullptr) EmitThreadNameLocked(tid, name);
}

TraceSpan::~TraceSpan() {
  if (name_ == nullptr) return;
  const int64_t end_ns = NowNs();
  const int64_t dur_ns = end_ns - start_ns_;
  MetricsRegistry::Global()
      .GetHistogram(std::string("span/") + name_)
      .Record(static_cast<double>(dur_ns) / 1e6);  // milliseconds
  if (TracingActive()) EmitTraceEvent(name_, start_ns_, dur_ns);
}

std::string RunReportPath() {
  if (!Enabled()) return "";
  return common::GetEnvString("MISS_RUN_REPORT", "");
}

}  // namespace miss::obs
