// Minimal JSON utilities for the telemetry subsystem.
//
// JsonWriter builds objects/arrays with correct escaping and locale-free
// number formatting; JsonValid is a small validating parser used by tests
// and the obs_smoke target to assert that emitted files are well-formed.
// Deliberately tiny — no DOM, no external deps.

#ifndef MISS_OBS_JSON_H_
#define MISS_OBS_JSON_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace miss::obs {

// Escapes `s` for embedding inside a JSON string literal (quotes excluded).
std::string JsonEscape(const std::string& s);

// Formats a double the way JSON expects: finite values via shortest-ish
// round-trip formatting, NaN/Inf mapped to null (JSON has no such literals).
std::string JsonNumber(double v);

// Streaming writer for one JSON document. Keeps a context stack so commas
// and closers are emitted correctly:
//
//   JsonWriter w;
//   w.BeginObject();
//   w.Key("name").String("table4");
//   w.Key("metrics").BeginObject();
//   w.Key("auc").Number(0.81);
//   w.EndObject();
//   w.EndObject();
//   std::string doc = w.str();
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(const std::string& k);
  JsonWriter& String(const std::string& v);
  JsonWriter& Number(double v);
  JsonWriter& Int(int64_t v);
  JsonWriter& Bool(bool v);

  std::string str() const { return out_.str(); }

 private:
  void MaybeComma();
  std::ostringstream out_;
  // One entry per open scope; true once the first element was written.
  std::vector<bool> has_element_;
  bool pending_key_ = false;
};

// Returns true iff `text` is exactly one well-formed JSON value (plus
// trailing whitespace). Validates structure, string escapes, and number
// syntax; does not build a tree.
bool JsonValid(const std::string& text);

// Convenience: every non-empty line of `text` must be valid JSON (the JSONL
// convention used by run reports). Empty input is invalid.
bool JsonlValid(const std::string& text);

}  // namespace miss::obs

#endif  // MISS_OBS_JSON_H_
