// Minimal JSON utilities for the telemetry subsystem.
//
// JsonWriter builds objects/arrays with correct escaping and locale-free
// number formatting; JsonValid is a small validating parser used by tests
// and the obs_smoke target to assert that emitted files are well-formed.
// Deliberately tiny — no DOM, no external deps.

#ifndef MISS_OBS_JSON_H_
#define MISS_OBS_JSON_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace miss::obs {

// Escapes `s` for embedding inside a JSON string literal (quotes excluded).
std::string JsonEscape(const std::string& s);

// Formats a double the way JSON expects: finite values via shortest-ish
// round-trip formatting, NaN/Inf mapped to null (JSON has no such literals).
std::string JsonNumber(double v);

// Streaming writer for one JSON document. Keeps a context stack so commas
// and closers are emitted correctly:
//
//   JsonWriter w;
//   w.BeginObject();
//   w.Key("name").String("table4");
//   w.Key("metrics").BeginObject();
//   w.Key("auc").Number(0.81);
//   w.EndObject();
//   w.EndObject();
//   std::string doc = w.str();
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(const std::string& k);
  JsonWriter& String(const std::string& v);
  JsonWriter& Number(double v);
  JsonWriter& Int(int64_t v);
  JsonWriter& Bool(bool v);

  std::string str() const { return out_.str(); }

 private:
  void MaybeComma();
  std::ostringstream out_;
  // One entry per open scope; true once the first element was written.
  std::vector<bool> has_element_;
  bool pending_key_ = false;
};

// Returns true iff `text` is exactly one well-formed JSON value (plus
// trailing whitespace). Validates structure, string escapes, and number
// syntax; does not build a tree.
bool JsonValid(const std::string& text);

// Minimal parsed-JSON tree for reading the small documents this codebase
// writes itself (bundle manifests, metrics dumps). One variant struct keeps
// the API tiny; exactly one of the payload members is meaningful per type.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };
  Type type = Type::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string;
  // Object members in document order (duplicate keys are kept as-is).
  std::vector<std::pair<std::string, JsonValue>> object;
  std::vector<JsonValue> array;

  // Object member lookup; nullptr when absent or when this is not an object.
  const JsonValue* Find(const std::string& key) const;

  bool IsNumber() const { return type == Type::kNumber; }
  bool IsString() const { return type == Type::kString; }
  bool IsObject() const { return type == Type::kObject; }
  bool IsArray() const { return type == Type::kArray; }
};

// Parses exactly one JSON value (plus trailing whitespace) into `*out`.
// Returns false on malformed input, leaving `*out` unspecified. Accepts the
// same grammar JsonValid accepts.
bool JsonParse(const std::string& text, JsonValue* out);

// Convenience: every non-empty line of `text` must be valid JSON (the JSONL
// convention used by run reports). Empty input is invalid.
bool JsonlValid(const std::string& text);

}  // namespace miss::obs

#endif  // MISS_OBS_JSON_H_
