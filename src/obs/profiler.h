// Sampling CPU profiler: SIGPROF-driven backtraces, folded-stack output.
//
// ProfilerStart arms ITIMER_PROF so the kernel delivers SIGPROF to whichever
// thread is burning CPU; the signal handler claims one slot of a
// preallocated ring with a single fetch_add and stores the raw backtrace
// plus the thread's display name. Nothing in the handler allocates, locks,
// or formats — symbolization (backtrace_symbols + __cxa_demangle) happens
// off-signal in ProfilerStop, which folds identical stacks into the
// flamegraph.pl "folded" text format:
//
//   engine-worker-0;miss::serve::Engine::ScoreBatch(...);miss::nn::MatMul(...) 42
//
// One profile at a time, process-wide. The profiler is an explicit opt-in
// (`/pprofz` behind a flag, `--profile-file`): SIGPROF never fires unless
// something called ProfilerStart. See DESIGN.md §5 for the signal-safety
// rules this file must uphold.

#ifndef MISS_OBS_PROFILER_H_
#define MISS_OBS_PROFILER_H_

#include <cstdint>
#include <string>

namespace miss::obs {

struct ProfilerOptions {
  // Sampling frequency. Prime by default so the sampler does not phase-lock
  // with periodic work (batch timers, watcher polls).
  int hz = 97;
  // Ring capacity; samples past this are counted as dropped, not stored.
  int max_samples = 1 << 14;
};

// Arms the profiler. Returns false (and changes nothing) if a profile is
// already running or the timer could not be installed.
bool ProfilerStart(const ProfilerOptions& options = {});

// True between a successful ProfilerStart and the matching ProfilerStop.
bool ProfilerActive();

// Samples captured so far in the active (or most recent) profile.
int64_t ProfilerSampleCount();

// Disarms the timer, symbolizes every captured stack, and returns the
// folded-stack text (one "name;name;... count" line per unique stack,
// root-first, thread name as the first segment). Returns "" if no profile
// was running. A "# dropped N" comment line is appended when the ring
// overflowed.
std::string ProfilerStop();

namespace internal {
// Per-thread display name readable from the SIGPROF handler (plain chars —
// no locks, no allocation). obs::SetCurrentThreadName copies into it; the
// kernel's 15-char comm limit does not apply here.
inline constexpr int kThreadNameBytes = 32;
extern thread_local char t_profiler_thread_name[kThreadNameBytes];
}  // namespace internal

}  // namespace miss::obs

#endif  // MISS_OBS_PROFILER_H_
