// Structured event log: a bounded in-process ring of the rare-but-important
// things a serving process does — bundle swaps and unloads, watcher
// failures, drain phases, listener errors, profiler start/stop.
//
// The fleet's swap journal only saw fleet events; this is the system-wide
// successor. Events are cheap (one mutex acquisition on an already-cold
// path) and the free-function LogEvent() is additionally guarded by
// obs::Enabled(), matching every other telemetry site. Served at
// GET /eventz and folded into /statusz.

#ifndef MISS_OBS_EVENT_LOG_H_
#define MISS_OBS_EVENT_LOG_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace miss::obs {

struct Event {
  uint64_t seq = 0;     // monotonically increasing, survives ring eviction
  int64_t ts_ns = 0;    // obs::NowNs() at log time
  std::string kind;     // e.g. "bundle_swap", "watcher_error", "drain"
  std::string model;    // owning model name, or "" for process-wide events
  bool ok = true;
  std::string message;
};

class EventLog {
 public:
  explicit EventLog(size_t capacity = 128);

  // Process-wide instance used by LogEvent() and the /eventz endpoint.
  static EventLog& Global();

  void Log(std::string kind, std::string model, bool ok, std::string message);

  // Newest-first copy of the retained events (at most min(n, capacity)).
  std::vector<Event> Snapshot(size_t n = SIZE_MAX) const;

  uint64_t total_logged() const;
  size_t capacity() const { return capacity_; }

  // Drops all retained events and resets the sequence counter (tests).
  void Clear();

 private:
  mutable std::mutex mu_;
  const size_t capacity_;
  std::vector<Event> ring_;  // ring_[seq % capacity_]
  uint64_t seq_ = 0;         // next sequence number == total logged
};

// Appends to EventLog::Global() when telemetry is enabled; no-op otherwise.
void LogEvent(const std::string& kind, const std::string& model, bool ok,
              const std::string& message);

}  // namespace miss::obs

#endif  // MISS_OBS_EVENT_LOG_H_
