// Structured run reports: one training/eval run serialized to JSONL or CSV.
//
// A report carries (a) stringified config key/values, (b) a per-epoch table
// of named numeric series (loss, valid_auc, ...), and (c) summary scalars
// (phase timings, samples/sec, peak tensor allocation count). Trainer::Fit
// fills one automatically when the MISS_RUN_REPORT env var names a path
// (see trace.h).
//
// JSONL layout — one self-describing record per line so files can be
// appended across runs and streamed with `jq`:
//
//   {"type":"run_start","run":"trainer_fit","config":{...}}
//   {"type":"epoch","run":"trainer_fit","epoch":1,"loss":0.59,...}
//   {"type":"run_end","run":"trainer_fit","summary":{...}}

#ifndef MISS_OBS_REPORT_H_
#define MISS_OBS_REPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace miss::obs {

class RunReporter {
 public:
  explicit RunReporter(std::string run_name);

  // Config is recorded in insertion order.
  void AddConfig(const std::string& key, const std::string& value);
  void AddConfig(const std::string& key, double value);
  void AddConfig(const std::string& key, int64_t value);

  // Appends one epoch row; `epoch` is 1-based. Rows may carry different key
  // sets (e.g. valid_auc only when validation ran).
  void LogEpoch(int64_t epoch, const std::map<std::string, double>& values);

  void SetSummary(const std::string& key, double value);

  int64_t num_epochs() const { return static_cast<int64_t>(epochs_.size()); }

  // Serializes the full report (run_start / epoch* / run_end records).
  std::string ToJsonl() const;
  // Appends to `path`, creating it if needed.
  bool AppendJsonl(const std::string& path) const;

  // Epoch table as CSV: header = epoch + union of value keys; missing
  // entries are left empty.
  std::string ToCsv() const;
  bool WriteCsv(const std::string& path) const;

 private:
  struct EpochRow {
    int64_t epoch;
    std::map<std::string, double> values;
  };

  std::string run_name_;
  std::vector<std::pair<std::string, std::string>> config_strings_;
  std::vector<std::pair<std::string, double>> config_numbers_;
  std::vector<EpochRow> epochs_;
  std::map<std::string, double> summary_;
};

}  // namespace miss::obs

#endif  // MISS_OBS_REPORT_H_
