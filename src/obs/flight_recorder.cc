#include "obs/flight_recorder.h"

#include <algorithm>

namespace miss::obs {

FlightRecorder::FlightRecorder(FlightRecorderConfig config)
    : config_(config) {
  if (config_.sample_every == 0) config_.sample_every = 1;
  ring_.resize(config_.capacity);
}

bool FlightRecorder::Record(const FlightRecord& record) {
  if (config_.capacity == 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  ++seen_;
  bool keep = record.slow || !record.ok;
  if (!keep) {
    // Deterministic 1-in-N: the first normal request is kept so a fresh
    // process shows traffic immediately, then every sample_every-th.
    keep = normal_seen_ % config_.sample_every == 0;
    ++normal_seen_;
  }
  if (!keep) return false;
  ring_[retained_ % config_.capacity] = record;
  ++retained_;
  return true;
}

std::vector<FlightRecord> FlightRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t n = std::min<uint64_t>(retained_, config_.capacity);
  std::vector<FlightRecord> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(retained_ - 1 - i) % config_.capacity]);
  }
  return out;
}

uint64_t FlightRecorder::seen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seen_;
}

uint64_t FlightRecorder::retained() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retained_;
}

}  // namespace miss::obs
