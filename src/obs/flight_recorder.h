// Flight recorder: tail-sampled ring of completed-request stage timings.
//
// The Chrome trace file answers "what happened during the window I traced";
// the flight recorder answers "what did the last K interesting requests do"
// on a live process, with no file and no restart. Retention is tail-based —
// the keep/drop decision happens at completion time, when the outcome is
// known: slow and errored requests are always retained, normal traffic is
// down-sampled 1-in-N with a deterministic counter (the unit-testable seam;
// no RNG). Served as JSON at GET /tracez.

#ifndef MISS_OBS_FLIGHT_RECORDER_H_
#define MISS_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace miss::obs {

// One completed request's stage breakdown, denormalized so a snapshot is
// self-contained JSON.
struct FlightRecord {
  uint64_t trace_id = 0;
  int64_t recv_ns = 0;     // obs::NowNs() at first byte
  std::string proto;       // "http" | "binary"
  std::string endpoint;    // "score" | "rank" | ...
  std::string model;       // resolved model name ("" pre-fleet)
  int32_t replica = -1;    // replica index, -1 when not applicable
  bool ok = true;
  bool slow = false;       // crossed the server's slow threshold
  std::string error;       // failure detail when !ok
  double total_ms = 0, parse_ms = 0, queue_ms = 0, forward_ms = 0,
         write_ms = 0;
};

struct FlightRecorderConfig {
  size_t capacity = 128;      // ring size; 0 disables the recorder
  uint64_t sample_every = 16; // keep every Nth normal request (>=1)
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderConfig config = {});

  // Tail-based retention decision; thread-safe. Slow or errored records are
  // always kept; normal ones only when the deterministic 1-in-N counter
  // fires. Returns true when the record was retained (tests).
  bool Record(const FlightRecord& record);

  // Newest-first copy of retained records.
  std::vector<FlightRecord> Snapshot() const;

  bool enabled() const { return config_.capacity > 0; }
  const FlightRecorderConfig& config() const { return config_; }
  uint64_t seen() const;      // records offered
  uint64_t retained() const;  // records kept (may exceed capacity over time)

 private:
  FlightRecorderConfig config_;
  mutable std::mutex mu_;
  std::vector<FlightRecord> ring_;  // ring_[retained_ % capacity]
  uint64_t seen_ = 0;
  uint64_t retained_ = 0;
  uint64_t normal_seen_ = 0;  // drives the 1-in-N sampler
};

}  // namespace miss::obs

#endif  // MISS_OBS_FLIGHT_RECORDER_H_
