#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/check.h"

namespace miss::obs {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(static_cast<int64_t>(v)));
    return buf;
  }
  // Shortest representation that round-trips: try %.15g, fall back to %.17g.
  std::snprintf(buf, sizeof(buf), "%.15g", v);
  if (std::strtod(buf, nullptr) != v) {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

void JsonWriter::MaybeComma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value follows its key, no comma
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ << ",";
    has_element_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  MaybeComma();
  out_ << "{";
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  MISS_CHECK(!has_element_.empty());
  has_element_.pop_back();
  out_ << "}";
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  MaybeComma();
  out_ << "[";
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  MISS_CHECK(!has_element_.empty());
  has_element_.pop_back();
  out_ << "]";
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& k) {
  MaybeComma();
  out_ << "\"" << JsonEscape(k) << "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& v) {
  MaybeComma();
  out_ << "\"" << JsonEscape(v) << "\"";
  return *this;
}

JsonWriter& JsonWriter::Number(double v) {
  MaybeComma();
  out_ << JsonNumber(v);
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t v) {
  MaybeComma();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool v) {
  MaybeComma();
  out_ << (v ? "true" : "false");
  return *this;
}

// ---------------------------------------------------------------------------
// Recursive-descent parser. One implementation serves both JsonValid
// (out == nullptr: well-formedness only, no allocation beyond the stack) and
// JsonParse (out != nullptr: builds a JsonValue tree).
// ---------------------------------------------------------------------------

namespace {

void AppendUtf8(std::string& s, uint32_t cp) {
  if (cp < 0x80) {
    s += static_cast<char>(cp);
  } else if (cp < 0x800) {
    s += static_cast<char>(0xC0 | (cp >> 6));
    s += static_cast<char>(0x80 | (cp & 0x3F));
  } else if (cp < 0x10000) {
    s += static_cast<char>(0xE0 | (cp >> 12));
    s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    s += static_cast<char>(0x80 | (cp & 0x3F));
  } else {
    s += static_cast<char>(0xF0 | (cp >> 18));
    s += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
    s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    s += static_cast<char>(0x80 | (cp & 0x3F));
  }
}

struct Parser {
  const char* p;
  const char* end;
  int depth = 0;

  void SkipWs() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r'))
      ++p;
  }

  bool Literal(const char* lit) {
    const char* q = p;
    while (*lit) {
      if (q >= end || *q != *lit) return false;
      ++q;
      ++lit;
    }
    p = q;
    return true;
  }

  // Reads exactly 4 hex digits into *cp.
  bool HexQuad(uint32_t* cp) {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      if (p >= end || !std::isxdigit(static_cast<unsigned char>(*p)))
        return false;
      const char c = *p++;
      v = v * 16 + (c <= '9'   ? static_cast<uint32_t>(c - '0')
                    : c <= 'F' ? static_cast<uint32_t>(c - 'A' + 10)
                               : static_cast<uint32_t>(c - 'a' + 10));
    }
    *cp = v;
    return true;
  }

  bool ParseString(std::string* out) {
    if (p >= end || *p != '"') return false;
    ++p;
    while (p < end) {
      unsigned char c = static_cast<unsigned char>(*p);
      if (c == '"') {
        ++p;
        return true;
      }
      if (c == '\\') {
        ++p;
        if (p >= end) return false;
        switch (*p) {
          case '"':
          case '\\':
          case '/':
            if (out != nullptr) *out += *p;
            ++p;
            break;
          case 'b':
            if (out != nullptr) *out += '\b';
            ++p;
            break;
          case 'f':
            if (out != nullptr) *out += '\f';
            ++p;
            break;
          case 'n':
            if (out != nullptr) *out += '\n';
            ++p;
            break;
          case 'r':
            if (out != nullptr) *out += '\r';
            ++p;
            break;
          case 't':
            if (out != nullptr) *out += '\t';
            ++p;
            break;
          case 'u': {
            ++p;
            uint32_t cp = 0;
            if (!HexQuad(&cp)) return false;
            // Combine a high/low surrogate pair when present.
            if (cp >= 0xD800 && cp <= 0xDBFF && p + 1 < end && p[0] == '\\' &&
                p[1] == 'u') {
              p += 2;
              uint32_t low = 0;
              if (!HexQuad(&low)) return false;
              if (low < 0xDC00 || low > 0xDFFF) return false;
              cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
            }
            if (out != nullptr) AppendUtf8(*out, cp);
            break;
          }
          default:
            return false;
        }
      } else if (c < 0x20) {
        return false;  // raw control char inside string
      } else {
        if (out != nullptr) *out += static_cast<char>(c);
        ++p;
      }
    }
    return false;  // unterminated
  }

  bool ParseNumber(double* out) {
    const char* start = p;
    if (p < end && *p == '-') ++p;
    if (p >= end || !std::isdigit(static_cast<unsigned char>(*p))) return false;
    if (*p == '0') {
      ++p;
    } else {
      while (p < end && std::isdigit(static_cast<unsigned char>(*p))) ++p;
    }
    if (p < end && *p == '.') {
      ++p;
      if (p >= end || !std::isdigit(static_cast<unsigned char>(*p)))
        return false;
      while (p < end && std::isdigit(static_cast<unsigned char>(*p))) ++p;
    }
    if (p < end && (*p == 'e' || *p == 'E')) {
      ++p;
      if (p < end && (*p == '+' || *p == '-')) ++p;
      if (p >= end || !std::isdigit(static_cast<unsigned char>(*p)))
        return false;
      while (p < end && std::isdigit(static_cast<unsigned char>(*p))) ++p;
    }
    if (p == start) return false;
    if (out != nullptr) *out = std::strtod(std::string(start, p).c_str(), nullptr);
    return true;
  }

  bool ParseValue(JsonValue* out) {
    if (++depth > 256) return false;
    SkipWs();
    if (p >= end) return false;
    bool ok = false;
    switch (*p) {
      case '{':
        if (out != nullptr) out->type = JsonValue::Type::kObject;
        ok = ParseObject(out);
        break;
      case '[':
        if (out != nullptr) out->type = JsonValue::Type::kArray;
        ok = ParseArray(out);
        break;
      case '"':
        if (out != nullptr) out->type = JsonValue::Type::kString;
        ok = ParseString(out != nullptr ? &out->string : nullptr);
        break;
      case 't':
        ok = Literal("true");
        if (ok && out != nullptr) {
          out->type = JsonValue::Type::kBool;
          out->bool_value = true;
        }
        break;
      case 'f':
        ok = Literal("false");
        if (ok && out != nullptr) {
          out->type = JsonValue::Type::kBool;
          out->bool_value = false;
        }
        break;
      case 'n':
        ok = Literal("null");
        if (ok && out != nullptr) out->type = JsonValue::Type::kNull;
        break;
      default:
        if (out != nullptr) out->type = JsonValue::Type::kNumber;
        ok = ParseNumber(out != nullptr ? &out->number : nullptr);
    }
    --depth;
    return ok;
  }

  bool ParseObject(JsonValue* out) {
    ++p;  // '{'
    SkipWs();
    if (p < end && *p == '}') {
      ++p;
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (!ParseString(out != nullptr ? &key : nullptr)) return false;
      SkipWs();
      if (p >= end || *p != ':') return false;
      ++p;
      JsonValue* slot = nullptr;
      if (out != nullptr) {
        out->object.emplace_back(std::move(key), JsonValue());
        slot = &out->object.back().second;
      }
      if (!ParseValue(slot)) return false;
      SkipWs();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      if (p < end && *p == '}') {
        ++p;
        return true;
      }
      return false;
    }
  }

  bool ParseArray(JsonValue* out) {
    ++p;  // '['
    SkipWs();
    if (p < end && *p == ']') {
      ++p;
      return true;
    }
    while (true) {
      JsonValue* slot = nullptr;
      if (out != nullptr) {
        out->array.emplace_back();
        slot = &out->array.back();
      }
      if (!ParseValue(slot)) return false;
      SkipWs();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      if (p < end && *p == ']') {
        ++p;
        return true;
      }
      return false;
    }
  }
};

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool JsonValid(const std::string& text) {
  Parser parser{text.data(), text.data() + text.size()};
  if (!parser.ParseValue(nullptr)) return false;
  parser.SkipWs();
  return parser.p == parser.end;
}

bool JsonParse(const std::string& text, JsonValue* out) {
  *out = JsonValue();
  Parser parser{text.data(), text.data() + text.size()};
  if (!parser.ParseValue(out)) return false;
  parser.SkipWs();
  return parser.p == parser.end;
}

bool JsonlValid(const std::string& text) {
  size_t pos = 0;
  int lines = 0;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    bool blank = true;
    for (char c : line) {
      if (c != ' ' && c != '\t' && c != '\r') blank = false;
    }
    if (blank) continue;
    if (!JsonValid(line)) return false;
    ++lines;
  }
  return lines > 0;
}

}  // namespace miss::obs
