#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/check.h"

namespace miss::obs {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(static_cast<int64_t>(v)));
    return buf;
  }
  // Shortest representation that round-trips: try %.15g, fall back to %.17g.
  std::snprintf(buf, sizeof(buf), "%.15g", v);
  if (std::strtod(buf, nullptr) != v) {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

void JsonWriter::MaybeComma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value follows its key, no comma
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ << ",";
    has_element_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  MaybeComma();
  out_ << "{";
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  MISS_CHECK(!has_element_.empty());
  has_element_.pop_back();
  out_ << "}";
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  MaybeComma();
  out_ << "[";
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  MISS_CHECK(!has_element_.empty());
  has_element_.pop_back();
  out_ << "]";
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& k) {
  MaybeComma();
  out_ << "\"" << JsonEscape(k) << "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& v) {
  MaybeComma();
  out_ << "\"" << JsonEscape(v) << "\"";
  return *this;
}

JsonWriter& JsonWriter::Number(double v) {
  MaybeComma();
  out_ << JsonNumber(v);
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t v) {
  MaybeComma();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool v) {
  MaybeComma();
  out_ << (v ? "true" : "false");
  return *this;
}

// ---------------------------------------------------------------------------
// Validating recursive-descent parser (well-formedness only).
// ---------------------------------------------------------------------------

namespace {

struct Parser {
  const char* p;
  const char* end;
  int depth = 0;

  void SkipWs() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r'))
      ++p;
  }

  bool Literal(const char* lit) {
    const char* q = p;
    while (*lit) {
      if (q >= end || *q != *lit) return false;
      ++q;
      ++lit;
    }
    p = q;
    return true;
  }

  bool ParseString() {
    if (p >= end || *p != '"') return false;
    ++p;
    while (p < end) {
      unsigned char c = static_cast<unsigned char>(*p);
      if (c == '"') {
        ++p;
        return true;
      }
      if (c == '\\') {
        ++p;
        if (p >= end) return false;
        switch (*p) {
          case '"':
          case '\\':
          case '/':
          case 'b':
          case 'f':
          case 'n':
          case 'r':
          case 't':
            ++p;
            break;
          case 'u': {
            ++p;
            for (int i = 0; i < 4; ++i) {
              if (p >= end || !std::isxdigit(static_cast<unsigned char>(*p)))
                return false;
              ++p;
            }
            break;
          }
          default:
            return false;
        }
      } else if (c < 0x20) {
        return false;  // raw control char inside string
      } else {
        ++p;
      }
    }
    return false;  // unterminated
  }

  bool ParseNumber() {
    const char* start = p;
    if (p < end && *p == '-') ++p;
    if (p >= end || !std::isdigit(static_cast<unsigned char>(*p))) return false;
    if (*p == '0') {
      ++p;
    } else {
      while (p < end && std::isdigit(static_cast<unsigned char>(*p))) ++p;
    }
    if (p < end && *p == '.') {
      ++p;
      if (p >= end || !std::isdigit(static_cast<unsigned char>(*p)))
        return false;
      while (p < end && std::isdigit(static_cast<unsigned char>(*p))) ++p;
    }
    if (p < end && (*p == 'e' || *p == 'E')) {
      ++p;
      if (p < end && (*p == '+' || *p == '-')) ++p;
      if (p >= end || !std::isdigit(static_cast<unsigned char>(*p)))
        return false;
      while (p < end && std::isdigit(static_cast<unsigned char>(*p))) ++p;
    }
    return p > start;
  }

  bool ParseValue() {
    if (++depth > 256) return false;
    SkipWs();
    if (p >= end) return false;
    bool ok = false;
    switch (*p) {
      case '{':
        ok = ParseObject();
        break;
      case '[':
        ok = ParseArray();
        break;
      case '"':
        ok = ParseString();
        break;
      case 't':
        ok = Literal("true");
        break;
      case 'f':
        ok = Literal("false");
        break;
      case 'n':
        ok = Literal("null");
        break;
      default:
        ok = ParseNumber();
    }
    --depth;
    return ok;
  }

  bool ParseObject() {
    ++p;  // '{'
    SkipWs();
    if (p < end && *p == '}') {
      ++p;
      return true;
    }
    while (true) {
      SkipWs();
      if (!ParseString()) return false;
      SkipWs();
      if (p >= end || *p != ':') return false;
      ++p;
      if (!ParseValue()) return false;
      SkipWs();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      if (p < end && *p == '}') {
        ++p;
        return true;
      }
      return false;
    }
  }

  bool ParseArray() {
    ++p;  // '['
    SkipWs();
    if (p < end && *p == ']') {
      ++p;
      return true;
    }
    while (true) {
      if (!ParseValue()) return false;
      SkipWs();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      if (p < end && *p == ']') {
        ++p;
        return true;
      }
      return false;
    }
  }
};

}  // namespace

bool JsonValid(const std::string& text) {
  Parser parser{text.data(), text.data() + text.size()};
  if (!parser.ParseValue()) return false;
  parser.SkipWs();
  return parser.p == parser.end;
}

bool JsonlValid(const std::string& text) {
  size_t pos = 0;
  int lines = 0;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    bool blank = true;
    for (char c : line) {
      if (c != ' ' && c != '\t' && c != '\r') blank = false;
    }
    if (blank) continue;
    if (!JsonValid(line)) return false;
    ++lines;
  }
  return lines > 0;
}

}  // namespace miss::obs
