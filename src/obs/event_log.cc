#include "obs/event_log.h"

#include <algorithm>

#include "obs/trace.h"

namespace miss::obs {

EventLog::EventLog(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.resize(capacity_);
}

EventLog& EventLog::Global() {
  static EventLog* log = new EventLog();
  return *log;
}

void EventLog::Log(std::string kind, std::string model, bool ok,
                   std::string message) {
  const int64_t now = NowNs();
  std::lock_guard<std::mutex> lock(mu_);
  Event& slot = ring_[seq_ % capacity_];
  slot.seq = seq_++;
  slot.ts_ns = now;
  slot.kind = std::move(kind);
  slot.model = std::move(model);
  slot.ok = ok;
  slot.message = std::move(message);
}

std::vector<Event> EventLog::Snapshot(size_t n) const {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t retained = std::min<size_t>(seq_, capacity_);
  const size_t want = std::min(n, retained);
  std::vector<Event> out;
  out.reserve(want);
  for (size_t i = 0; i < want; ++i) {
    // seq_ - 1 is the newest slot.
    out.push_back(ring_[(seq_ - 1 - i) % capacity_]);
  }
  return out;
}

uint64_t EventLog::total_logged() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seq_;
}

void EventLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.assign(capacity_, Event{});
  seq_ = 0;
}

void LogEvent(const std::string& kind, const std::string& model, bool ok,
              const std::string& message) {
  if (!Enabled()) return;
  EventLog::Global().Log(kind, model, ok, message);
}

}  // namespace miss::obs
