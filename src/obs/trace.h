// Telemetry enable switch, RAII trace spans, and Chrome trace-event output.
//
// The whole subsystem is off by default and costs one relaxed atomic load
// plus a predictable branch per instrumented site when disabled. It turns on
// when any of these env vars is set (read lazily on first use):
//
//   MISS_TELEMETRY=1       collect metrics/spans in-process only
//   MISS_TRACE_FILE=path   additionally stream Chrome trace-event JSON
//                          (open chrome://tracing or https://ui.perfetto.dev)
//   MISS_METRICS_JSON=path dump the metrics registry to `path` at exit
//   MISS_RUN_REPORT=path   Trainer::Fit appends a JSONL run report (report.h)
//
// Spans record wall time in **milliseconds** into the global registry
// histogram "span/<name>" and, when a trace file is active, emit one
// complete ("ph":"X") trace event:
//
//   void Trainer::Fit(...) {
//     MISS_TRACE_SCOPE("trainer/fit");
//     ...
//   }

#ifndef MISS_OBS_TRACE_H_
#define MISS_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace miss::obs {

namespace internal {
// 0 = uninitialized (first Enabled() call reads the environment),
// 1 = disabled, 2 = enabled.
extern std::atomic<int> g_state;
void InitFromEnvSlow();
}  // namespace internal

// True when telemetry collection is on. The hot-path guard.
inline bool Enabled() {
  int s = internal::g_state.load(std::memory_order_relaxed);
  if (s == 0) {
    internal::InitFromEnvSlow();
    s = internal::g_state.load(std::memory_order_relaxed);
  }
  return s == 2;
}

// Programmatic override (tests, benches). Marks the flag initialized, so the
// environment is no longer consulted.
void SetEnabled(bool on);

// Re-reads the MISS_* env vars: recomputes the enabled flag, (re)opens the
// trace file, re-arms the exit-time metrics dump. For processes that set
// env vars after startup (the obs_smoke target does).
void ReinitFromEnv();

// Monotonic clock in nanoseconds.
int64_t NowNs();

// Small dense id for the calling thread (0, 1, 2, ... in first-use order).
int ThreadId();

// -- Chrome trace-event output ----------------------------------------------

// Starts streaming trace events to `path` (truncates). Thread-safe.
void StartTracing(const std::string& path);
// Closes the JSON document. Safe to call when inactive; called automatically
// at process exit when tracing was started via the environment.
void StopTracing();
bool TracingActive();
// Appends one complete event; `ts_ns` is the span start in NowNs() time.
void EmitTraceEvent(const char* name, int64_t ts_ns, int64_t dur_ns);

// Flow events tie spans on different threads into one connected arrow in
// Perfetto: EmitFlowStart inside the producing slice (e.g. the net-loop's
// request span), EmitFlowFinish inside the consuming slice (the engine
// worker's batch span), both with the same `id` (the request's trace id).
// The finish uses binding point "enclosing" (bp:"e") so it attaches to the
// slice that contains `ts_ns` rather than the next one to begin.
void EmitFlowStart(uint64_t id, int64_t ts_ns);
void EmitFlowFinish(uint64_t id, int64_t ts_ns);

// Names the calling thread's lane in the trace viewer (and, on Linux, the
// OS thread). Remembered per ThreadId(), so names stick across StartTracing
// calls: each new trace document replays all known names as metadata
// (ph:"M", name:"thread_name") events.
void SetCurrentThreadName(const std::string& name);

// -- RAII span ---------------------------------------------------------------

class TraceSpan {
 public:
  explicit TraceSpan(const char* name)
      : name_(Enabled() ? name : nullptr),
        start_ns_(name_ != nullptr ? NowNs() : 0) {}
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;  // null when telemetry is disabled
  int64_t start_ns_;
};

// Path configured via MISS_RUN_REPORT, or "" when unset.
std::string RunReportPath();

}  // namespace miss::obs

#define MISS_OBS_CONCAT_INNER(a, b) a##b
#define MISS_OBS_CONCAT(a, b) MISS_OBS_CONCAT_INNER(a, b)
// Times the enclosing scope; see file comment.
#define MISS_TRACE_SCOPE(name) \
  ::miss::obs::TraceSpan MISS_OBS_CONCAT(miss_trace_span_, __LINE__)(name)

#endif  // MISS_OBS_TRACE_H_
