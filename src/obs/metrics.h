// Process-global metrics registry: counters, gauges, and fixed-bucket
// histograms with quantile summaries.
//
// Every metric is addressable by name from anywhere:
//
//   obs::MetricsRegistry::Global().GetCounter("trainer/steps").Add(1);
//   obs::MetricsRegistry::Global()
//       .GetHistogram("nn/matmul_ms").Record(elapsed_ms);
//
// All operations are thread-safe. Metric objects live for the lifetime of
// the registry (references stay valid until Reset()). Instrumented hot paths
// should gate registry access behind obs::Enabled() (trace.h) so that a
// fully disabled build pays only one relaxed atomic load per site.
//
// The whole registry serializes to JSON via ToJson() / WriteJsonFile(); when
// the MISS_METRICS_JSON env var names a path, a dump is written there at
// process exit (see trace.h's InitFromEnv).

#ifndef MISS_OBS_METRICS_H_
#define MISS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace miss::obs {

// Monotonically increasing integer metric.
class Counter {
 public:
  void Add(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Last-write-wins floating-point metric.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

struct HistogramSnapshot {
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

// Fixed-bucket histogram. Bucket i counts values in
// [bounds[i-1], bounds[i]); an extra overflow bucket catches values
// >= bounds.back(). Quantiles interpolate linearly inside the containing
// bucket, so accuracy is bounded by bucket width (the default exponential
// bounds give ~ +/- 50% relative error — plenty for latency percentiles;
// pass explicit linear bounds where tighter answers matter).
class Histogram {
 public:
  // Default bounds: exponential, 1e-6 .. ~1e9 doubling per bucket. Suits
  // millisecond latencies from sub-microsecond spans to multi-day runs.
  Histogram();
  explicit Histogram(std::vector<double> bounds);

  void Record(double v);
  HistogramSnapshot Snapshot() const;
  // Quantile from the current contents; q in [0, 1].
  double Quantile(double q) const;
  int64_t count() const;
  double sum() const;
  void Reset();

  static std::vector<double> DefaultBounds();

 private:
  double QuantileLocked(double q) const;

  mutable std::mutex mu_;
  std::vector<double> bounds_;       // ascending bucket upper edges
  std::vector<int64_t> counts_;      // bounds_.size() + 1 (overflow)
  int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Point-in-time copy of every metric in a registry, for renderers (the
// /healthz and /metricz endpoints, reporters) that must not create metrics
// as a side effect of reading them. Entries are name-sorted (map order).
struct RegistrySnapshot {
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  // Lookup helpers; fallback/nullptr when the metric does not exist yet.
  int64_t CounterOr(const std::string& name, int64_t fallback) const;
  double GaugeOr(const std::string& name, double fallback) const;
  const HistogramSnapshot* FindHistogram(const std::string& name) const;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  // Finds or creates the named metric. References remain valid until
  // Reset(). A histogram's bounds are fixed by its first GetHistogram call.
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> bounds);

  // Removes every metric. Invalidates previously returned references; only
  // meant for test isolation.
  void Reset();

  // Snapshot of current metric names, for reporters.
  std::vector<std::string> CounterNames() const;
  std::vector<std::string> GaugeNames() const;
  std::vector<std::string> HistogramNames() const;

  // Consistent point-in-time copy of every metric (each histogram is
  // snapshotted under its own lock; the set of metrics under the registry's).
  RegistrySnapshot SnapshotAll() const;

  // {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,min,max,
  //  mean,p50,p95,p99}}} — SnapshotAll() rendered as one JSON object.
  std::string ToJson() const;
  bool WriteJsonFile(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace miss::obs

#endif  // MISS_OBS_METRICS_H_
