// Process-global metrics registry: counters, gauges, fixed-bucket
// histograms with quantile summaries, and rolling-window variants
// (SlidingHistogram / SlidingCounter) for "over the last minute" serving
// SLOs.
//
// Every metric is addressable by name from anywhere:
//
//   obs::MetricsRegistry::Global().GetCounter("trainer/steps").Add(1);
//   obs::MetricsRegistry::Global()
//       .GetHistogram("nn/matmul_ms").Record(elapsed_ms);
//
// All operations are thread-safe. Metric objects live for the lifetime of
// the registry (references stay valid until Reset()). Instrumented hot paths
// should gate registry access behind obs::Enabled() (trace.h) so that a
// fully disabled build pays only one relaxed atomic load per site.
//
// The whole registry serializes to JSON via ToJson() / WriteJsonFile(); when
// the MISS_METRICS_JSON env var names a path, a dump is written there at
// process exit (see trace.h's InitFromEnv).

#ifndef MISS_OBS_METRICS_H_
#define MISS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace miss::obs {

// Monotonically increasing integer metric.
class Counter {
 public:
  void Add(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Last-write-wins floating-point metric.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

struct HistogramSnapshot {
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

// Snapshot of a SlidingHistogram: the same summary restricted to the live
// rolling window, plus how much wall time that window actually covers and
// the event rate over it.
struct WindowSnapshot {
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double window_seconds = 0.0;  // covered span (< capacity until warmed up)
  double rate_per_sec = 0.0;    // count / window_seconds
};

// Fixed-bucket histogram. Bucket i counts values in
// [bounds[i-1], bounds[i]); an extra overflow bucket catches values
// >= bounds.back(). Quantiles interpolate linearly inside the containing
// bucket, so accuracy is bounded by bucket width (the default exponential
// bounds give ~ +/- 50% relative error — plenty for latency percentiles;
// pass explicit linear bounds where tighter answers matter).
class Histogram {
 public:
  // Default bounds: exponential, 1e-6 .. ~1e9 doubling per bucket. Suits
  // millisecond latencies from sub-microsecond spans to multi-day runs.
  Histogram();
  explicit Histogram(std::vector<double> bounds);

  void Record(double v);
  HistogramSnapshot Snapshot() const;
  // Quantile from the current contents; q in [0, 1].
  double Quantile(double q) const;
  int64_t count() const;
  double sum() const;
  void Reset();

  static std::vector<double> DefaultBounds();

 private:
  double QuantileLocked(double q) const;

  mutable std::mutex mu_;
  std::vector<double> bounds_;       // ascending bucket upper edges
  std::vector<int64_t> counts_;      // bounds_.size() + 1 (overflow)
  int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Rolling-window histogram: a ring of fixed-bucket sub-windows (default
// 12 x 5 s = a one-minute window). Record() lands in the sub-window that
// covers "now"; Snapshot() merges only the sub-windows that are still
// inside the window, so quantiles answer "p99 over the last minute" and
// fully decay to empty once recording stops — unlike the lifetime
// Histogram, which never forgets. The *At() overloads take an explicit
// clock reading so rotation and expiry are unit-testable.
class SlidingHistogram {
 public:
  // Default geometry: 12 sub-windows of 5 s over Histogram::DefaultBounds().
  SlidingHistogram();
  SlidingHistogram(int num_windows, int64_t window_ns,
                   std::vector<double> bounds);

  void Record(double v);
  void RecordAt(double v, int64_t now_ns);
  WindowSnapshot Snapshot() const;
  WindowSnapshot SnapshotAt(int64_t now_ns) const;

  int64_t window_span_ns() const {
    return static_cast<int64_t>(windows_.size()) * window_ns_;
  }

 private:
  struct SubWindow {
    int64_t epoch = -1;  // now_ns / window_ns when last written; -1 = empty
    std::vector<int64_t> counts;
    int64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  SubWindow& RotateLocked(int64_t now_ns);

  mutable std::mutex mu_;
  const int64_t window_ns_;
  std::vector<double> bounds_;
  std::vector<SubWindow> windows_;
};

// Rolling-window event counter (the qps side of SlidingHistogram): a ring
// of per-sub-window totals. RatePerSec() divides the live-window total by
// the covered span, so it reads as a recent-traffic rate, not a lifetime
// average.
class SlidingCounter {
 public:
  // Default geometry matches SlidingHistogram: 12 x 5 s.
  SlidingCounter();
  SlidingCounter(int num_windows, int64_t window_ns);

  void Add(int64_t delta = 1);
  void AddAt(int64_t delta, int64_t now_ns);
  int64_t TotalInWindow() const;
  int64_t TotalInWindowAt(int64_t now_ns) const;
  double RatePerSec() const;
  double RatePerSecAt(int64_t now_ns) const;

 private:
  struct SubWindow {
    int64_t epoch = -1;
    int64_t count = 0;
  };

  mutable std::mutex mu_;
  const int64_t window_ns_;
  std::vector<SubWindow> windows_;
};

// Point-in-time copy of every metric in a registry, for renderers (the
// /healthz and /metricz endpoints, reporters) that must not create metrics
// as a side effect of reading them. Entries are name-sorted (map order).
struct RegistrySnapshot {
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
  std::vector<std::pair<std::string, WindowSnapshot>> windows;
  std::vector<std::pair<std::string, double>> rates;  // sliding counters, /s

  // Lookup helpers; fallback/nullptr when the metric does not exist yet.
  int64_t CounterOr(const std::string& name, int64_t fallback) const;
  double GaugeOr(const std::string& name, double fallback) const;
  const HistogramSnapshot* FindHistogram(const std::string& name) const;
  const WindowSnapshot* FindWindow(const std::string& name) const;
  double RateOr(const std::string& name, double fallback) const;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  // Finds or creates the named metric. References remain valid until
  // Reset(). A histogram's bounds are fixed by its first GetHistogram call.
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> bounds);
  // Rolling-window metrics; geometry is fixed by the first call per name.
  SlidingHistogram& GetSlidingHistogram(const std::string& name);
  SlidingHistogram& GetSlidingHistogram(const std::string& name,
                                        int num_windows, int64_t window_ns,
                                        std::vector<double> bounds);
  SlidingCounter& GetSlidingCounter(const std::string& name);
  SlidingCounter& GetSlidingCounter(const std::string& name, int num_windows,
                                    int64_t window_ns);

  // Removes every metric. Invalidates previously returned references; only
  // meant for test isolation.
  void Reset();

  // Snapshot of current metric names, for reporters.
  std::vector<std::string> CounterNames() const;
  std::vector<std::string> GaugeNames() const;
  std::vector<std::string> HistogramNames() const;

  // Consistent point-in-time copy of every metric (each histogram is
  // snapshotted under its own lock; the set of metrics under the registry's).
  RegistrySnapshot SnapshotAll() const;

  // {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,min,max,
  //  mean,p50,p95,p99}},"windows":{name:{...,window_seconds,rate_per_sec}},
  //  "rates":{...}} — SnapshotAll() rendered as one JSON object.
  std::string ToJson() const;
  bool WriteJsonFile(const std::string& path) const;

  // SnapshotAll() rendered as Prometheus text exposition (version 0.0.4):
  // counters as `counter`, gauges and sliding-counter rates as `gauge`,
  // histograms as `summary` (quantile-labeled series + _sum/_count; sliding
  // histograms get a `_window` suffix). Metric names are prefixed `miss_`
  // and sanitized ('/', '-', '.' -> '_').
  std::string ToPrometheusText() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<SlidingHistogram>> sliding_;
  std::map<std::string, std::unique_ptr<SlidingCounter>> sliding_counters_;
};

}  // namespace miss::obs

#endif  // MISS_OBS_METRICS_H_
