#include "obs/health.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "obs/trace.h"

namespace miss::obs {

namespace {
// Same rolling-window geometry as SlidingHistogram: 12 x 5 s, one minute.
constexpr int kDefaultSubWindows = 12;
constexpr int64_t kDefaultSubWindowNs = 5'000'000'000;

// Proportion floor for PSI: an empty bucket against full mass contributes
// ~ln(1e4) per side instead of infinity.
constexpr double kPsiEpsilon = 1e-4;
}  // namespace

FixedDistribution::FixedDistribution(int num_buckets, double lo, double hi)
    : FixedDistribution(num_buckets, lo, hi, kDefaultSubWindows,
                        kDefaultSubWindowNs) {}

FixedDistribution::FixedDistribution(int num_buckets, double lo, double hi,
                                     int num_windows, int64_t window_ns)
    : lo_(lo), hi_(hi), window_ns_(window_ns) {
  MISS_CHECK_GT(num_buckets, 0);
  MISS_CHECK(lo < hi) << "FixedDistribution needs lo < hi";
  MISS_CHECK_GT(num_windows, 0);
  MISS_CHECK_GT(window_ns, 0);
  counts_.assign(static_cast<size_t>(num_buckets), 0);
  windows_.resize(static_cast<size_t>(num_windows));
  for (SubWindow& w : windows_) {
    w.counts.assign(static_cast<size_t>(num_buckets), 0);
  }
}

int FixedDistribution::BucketOf(double v) const {
  const int nb = static_cast<int>(counts_.size());
  if (v <= lo_) return 0;
  if (v >= hi_) return nb - 1;
  const int b = static_cast<int>((v - lo_) / (hi_ - lo_) *
                                 static_cast<double>(nb));
  return std::min(b, nb - 1);
}

FixedDistribution::SubWindow& FixedDistribution::RotateLocked(
    int64_t now_ns) {
  const int64_t epoch = now_ns / window_ns_;
  SubWindow& w =
      windows_[static_cast<size_t>(epoch % static_cast<int64_t>(
                                               windows_.size()))];
  if (w.epoch != epoch) {
    w.epoch = epoch;
    w.count = 0;
    std::fill(w.counts.begin(), w.counts.end(), 0);
  }
  return w;
}

void FixedDistribution::Record(double v) { RecordAt(v, NowNs()); }

void FixedDistribution::RecordAt(double v, int64_t now_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t b = static_cast<size_t>(BucketOf(v));
  ++counts_[b];
  ++count_;
  sum_ += v;
  SubWindow& w = RotateLocked(now_ns);
  ++w.counts[b];
  ++w.count;
}

void FixedDistribution::RecordBucket(int bucket) {
  RecordBucketAt(bucket, NowNs());
}

void FixedDistribution::RecordBucketAt(int bucket, int64_t now_ns) {
  MISS_CHECK_GE(bucket, 0);
  MISS_CHECK_LT(bucket, static_cast<int>(counts_.size()));
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_[static_cast<size_t>(bucket)];
  ++count_;
  SubWindow& w = RotateLocked(now_ns);
  ++w.counts[static_cast<size_t>(bucket)];
  ++w.count;
}

void FixedDistribution::MergeCounts(const std::vector<int64_t>& delta) {
  MergeCountsAt(delta, NowNs());
}

void FixedDistribution::MergeCountsAt(const std::vector<int64_t>& delta,
                                      int64_t now_ns) {
  MISS_CHECK_EQ(static_cast<int64_t>(delta.size()),
                static_cast<int64_t>(counts_.size()));
  std::lock_guard<std::mutex> lock(mu_);
  SubWindow& w = RotateLocked(now_ns);
  for (size_t i = 0; i < delta.size(); ++i) {
    counts_[i] += delta[i];
    count_ += delta[i];
    w.counts[i] += delta[i];
    w.count += delta[i];
  }
}

int64_t FixedDistribution::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double FixedDistribution::mean() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
}

std::vector<int64_t> FixedDistribution::Counts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counts_;
}

std::vector<int64_t> FixedDistribution::WindowCounts() const {
  return WindowCountsAt(NowNs());
}

std::vector<int64_t> FixedDistribution::WindowCountsAt(int64_t now_ns) const {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t now_epoch = now_ns / window_ns_;
  const int64_t min_epoch =
      now_epoch - static_cast<int64_t>(windows_.size()) + 1;
  std::vector<int64_t> merged(counts_.size(), 0);
  for (const SubWindow& w : windows_) {
    // Slots not yet recycled may hold data from a full ring-length ago.
    if (w.epoch < min_epoch || w.epoch > now_epoch || w.count == 0) continue;
    for (size_t i = 0; i < merged.size(); ++i) merged[i] += w.counts[i];
  }
  return merged;
}

int64_t FixedDistribution::WindowCount() const {
  return WindowCountAt(NowNs());
}

int64_t FixedDistribution::WindowCountAt(int64_t now_ns) const {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t now_epoch = now_ns / window_ns_;
  const int64_t min_epoch =
      now_epoch - static_cast<int64_t>(windows_.size()) + 1;
  int64_t total = 0;
  for (const SubWindow& w : windows_) {
    if (w.epoch < min_epoch || w.epoch > now_epoch) continue;
    total += w.count;
  }
  return total;
}

CalibrationTable::CalibrationTable(int num_buckets)
    : CalibrationTable(num_buckets, kDefaultSubWindows, kDefaultSubWindowNs) {}

CalibrationTable::CalibrationTable(int num_buckets, int num_windows,
                                   int64_t window_ns)
    : window_ns_(window_ns) {
  MISS_CHECK_GT(num_buckets, 0);
  MISS_CHECK_GT(num_windows, 0);
  MISS_CHECK_GT(window_ns, 0);
  buckets_.assign(static_cast<size_t>(num_buckets), CalibrationBucket{});
  windows_.resize(static_cast<size_t>(num_windows));
  for (SubWindow& w : windows_) {
    w.buckets.assign(static_cast<size_t>(num_buckets), CalibrationBucket{});
  }
}

CalibrationTable::SubWindow& CalibrationTable::RotateLocked(int64_t now_ns) {
  const int64_t epoch = now_ns / window_ns_;
  SubWindow& w =
      windows_[static_cast<size_t>(epoch % static_cast<int64_t>(
                                               windows_.size()))];
  if (w.epoch != epoch) {
    w.epoch = epoch;
    std::fill(w.buckets.begin(), w.buckets.end(), CalibrationBucket{});
  }
  return w;
}

void CalibrationTable::Record(double predicted, bool positive) {
  RecordAt(predicted, positive, NowNs());
}

void CalibrationTable::RecordAt(double predicted, bool positive,
                                int64_t now_ns) {
  const int nb = static_cast<int>(buckets_.size());
  const double clamped = std::min(std::max(predicted, 0.0), 1.0);
  const int b = std::min(static_cast<int>(clamped * nb), nb - 1);
  std::lock_guard<std::mutex> lock(mu_);
  CalibrationBucket& life = buckets_[static_cast<size_t>(b)];
  ++life.count;
  life.sum_predicted += clamped;
  if (positive) ++life.positives;
  ++count_;
  SubWindow& w = RotateLocked(now_ns);
  CalibrationBucket& win = w.buckets[static_cast<size_t>(b)];
  ++win.count;
  win.sum_predicted += clamped;
  if (positive) ++win.positives;
}

int64_t CalibrationTable::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

std::vector<CalibrationBucket> CalibrationTable::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buckets_;
}

std::vector<CalibrationBucket> CalibrationTable::WindowSnapshot() const {
  return WindowSnapshotAt(NowNs());
}

std::vector<CalibrationBucket> CalibrationTable::WindowSnapshotAt(
    int64_t now_ns) const {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t now_epoch = now_ns / window_ns_;
  const int64_t min_epoch =
      now_epoch - static_cast<int64_t>(windows_.size()) + 1;
  std::vector<CalibrationBucket> merged(buckets_.size());
  for (const SubWindow& w : windows_) {
    if (w.epoch < min_epoch || w.epoch > now_epoch) continue;
    for (size_t i = 0; i < merged.size(); ++i) {
      merged[i].count += w.buckets[i].count;
      merged[i].sum_predicted += w.buckets[i].sum_predicted;
      merged[i].positives += w.buckets[i].positives;
    }
  }
  return merged;
}

double CalibrationTable::ExpectedCalibrationError(
    const std::vector<CalibrationBucket>& buckets) {
  int64_t total = 0;
  for (const CalibrationBucket& b : buckets) total += b.count;
  if (total == 0) return 0.0;
  double ece = 0.0;
  for (const CalibrationBucket& b : buckets) {
    if (b.count == 0) continue;
    const double n = static_cast<double>(b.count);
    const double mean_pred = b.sum_predicted / n;
    const double observed = static_cast<double>(b.positives) / n;
    ece += n / static_cast<double>(total) * std::abs(mean_pred - observed);
  }
  return ece;
}

double Psi(const std::vector<int64_t>& expected,
           const std::vector<int64_t>& actual) {
  MISS_CHECK_EQ(static_cast<int64_t>(expected.size()),
                static_cast<int64_t>(actual.size()));
  int64_t total_e = 0;
  int64_t total_a = 0;
  for (int64_t e : expected) total_e += e;
  for (int64_t a : actual) total_a += a;
  if (total_e <= 0 || total_a <= 0) return 0.0;
  double psi = 0.0;
  for (size_t i = 0; i < expected.size(); ++i) {
    const double p_e = std::max(
        static_cast<double>(expected[i]) / static_cast<double>(total_e),
        kPsiEpsilon);
    const double p_a = std::max(
        static_cast<double>(actual[i]) / static_cast<double>(total_a),
        kPsiEpsilon);
    psi += (p_a - p_e) * std::log(p_a / p_e);
  }
  return psi;
}

double AucFromCounts(const std::vector<int64_t>& positives,
                     const std::vector<int64_t>& negatives) {
  MISS_CHECK_EQ(static_cast<int64_t>(positives.size()),
                static_cast<int64_t>(negatives.size()));
  double num_pos = 0.0;
  double num_neg = 0.0;
  for (int64_t p : positives) num_pos += static_cast<double>(p);
  for (int64_t n : negatives) num_neg += static_cast<double>(n);
  if (num_pos == 0.0 || num_neg == 0.0) return 0.5;
  // Rank-sum over ascending buckets: each positive outranks every negative
  // in a strictly lower bucket and splits ties within its own bucket.
  double below = 0.0;
  double win = 0.0;
  for (size_t i = 0; i < positives.size(); ++i) {
    const double p = static_cast<double>(positives[i]);
    const double n = static_cast<double>(negatives[i]);
    win += p * (below + 0.5 * n);
    below += n;
  }
  return win / (num_pos * num_neg);
}

namespace {

bool ReadInt64(const JsonValue& obj, const std::string& key, int64_t* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || !v->IsNumber()) return false;
  *out = static_cast<int64_t>(v->number);
  return true;
}

bool ReadDouble(const JsonValue& obj, const std::string& key, double* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || !v->IsNumber()) return false;
  *out = v->number;
  return true;
}

bool ReadString(const JsonValue& obj, const std::string& key,
                std::string* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || !v->IsString()) return false;
  *out = v->string;
  return true;
}

bool ReadBool(const JsonValue& obj, const std::string& key, bool* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || v->type != JsonValue::Type::kBool) return false;
  *out = v->bool_value;
  return true;
}

bool ReadInt64Array(const JsonValue& obj, const std::string& key,
                    std::vector<int64_t>* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || !v->IsArray()) return false;
  out->clear();
  for (const JsonValue& e : v->array) {
    if (!e.IsNumber()) return false;
    out->push_back(static_cast<int64_t>(e.number));
  }
  return true;
}

void WriteInt64Array(JsonWriter& w, const std::vector<int64_t>& values) {
  w.BeginArray();
  for (int64_t v : values) w.Int(v);
  w.EndArray();
}

}  // namespace

void WriteModelBaselineJson(JsonWriter& w, const ModelBaseline& b) {
  w.BeginObject();
  w.Key("sample_count").Int(b.sample_count);
  w.Key("positive_rate").Number(b.positive_rate);
  w.Key("score_buckets").Int(b.score_buckets);
  w.Key("score_counts");
  WriteInt64Array(w, b.score_counts);
  w.Key("features").BeginArray();
  for (const FeatureBaseline& f : b.features) {
    w.BeginObject();
    w.Key("name").String(f.name);
    w.Key("sequential").Bool(f.sequential);
    w.Key("total").Int(f.total);
    w.Key("distinct").Int(f.distinct);
    w.Key("top_ids");
    WriteInt64Array(w, f.top_ids);
    w.Key("top_counts");
    WriteInt64Array(w, f.top_counts);
    w.Key("other").Int(f.other);
    w.Key("seen_exact").Bool(f.seen_exact);
    if (f.seen_exact) {
      w.Key("seen_ids");
      WriteInt64Array(w, f.seen_ids);
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
}

bool ParseModelBaselineJson(const JsonValue& v, ModelBaseline* out) {
  *out = ModelBaseline();
  if (!v.IsObject()) return false;
  if (!ReadInt64(v, "sample_count", &out->sample_count)) return false;
  if (!ReadDouble(v, "positive_rate", &out->positive_rate)) return false;
  if (!ReadInt64(v, "score_buckets", &out->score_buckets)) return false;
  if (!ReadInt64Array(v, "score_counts", &out->score_counts)) return false;
  if (out->score_buckets <= 0 ||
      static_cast<int64_t>(out->score_counts.size()) != out->score_buckets) {
    return false;
  }
  const JsonValue* features = v.Find("features");
  if (features == nullptr || !features->IsArray()) return false;
  for (const JsonValue& fv : features->array) {
    FeatureBaseline f;
    if (!fv.IsObject()) return false;
    if (!ReadString(fv, "name", &f.name)) return false;
    if (!ReadBool(fv, "sequential", &f.sequential)) return false;
    if (!ReadInt64(fv, "total", &f.total)) return false;
    if (!ReadInt64(fv, "distinct", &f.distinct)) return false;
    if (!ReadInt64Array(fv, "top_ids", &f.top_ids)) return false;
    if (!ReadInt64Array(fv, "top_counts", &f.top_counts)) return false;
    if (!ReadInt64(fv, "other", &f.other)) return false;
    if (!ReadBool(fv, "seen_exact", &f.seen_exact)) return false;
    if (f.top_ids.size() != f.top_counts.size()) return false;
    if (f.seen_exact && !ReadInt64Array(fv, "seen_ids", &f.seen_ids)) {
      return false;
    }
    out->features.push_back(std::move(f));
  }
  return true;
}

}  // namespace miss::obs
