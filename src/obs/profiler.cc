#include "obs/profiler.h"

#include <atomic>
#include <cstring>
#include <map>
#include <mutex>
#include <sstream>
#include <vector>

#if defined(__linux__)
#include <cxxabi.h>
#include <execinfo.h>
#include <signal.h>
#include <sys/time.h>

#include <cstdlib>
#endif

namespace miss::obs {

namespace internal {
thread_local char t_profiler_thread_name[kThreadNameBytes] = {0};
}  // namespace internal

#if defined(__linux__)

namespace {

constexpr int kMaxFrames = 48;

// One ring slot. `ready` is the publication flag: the handler stores it with
// release order after filling the raw fields; the (off-signal) reader loads
// it with acquire order before touching them. That pair is what makes the
// non-atomic frame writes race-free for tsan and for us.
struct Sample {
  std::atomic<int> ready{0};
  int depth = 0;
  void* frames[kMaxFrames];
  char thread_name[internal::kThreadNameBytes];
};

// All guarded by g_profiler_mu except where noted; the handler reads only
// the atomics and the g_samples array it was pointed at before the timer
// was armed.
std::mutex g_profiler_mu;
Sample* g_samples = nullptr;
std::atomic<int> g_max_samples{0};       // handler + lock-free readers
std::atomic<bool> g_armed{false};        // handler gate
std::atomic<uint32_t> g_next_slot{0};    // claimed by fetch_add in handler
std::atomic<int64_t> g_dropped{0};
bool g_running = false;                  // guarded by g_profiler_mu
struct sigaction g_prev_action;          // restored on Stop

// Async-signal-safe: fetch_add to claim a slot, backtrace() into it, copy
// the thread's TLS name, publish with a release store. backtrace() is
// primed in ProfilerStart so its one-time dynamic-loader initialization
// (which may allocate) never happens here.
void OnSigprof(int /*signo*/, siginfo_t* /*info*/, void* /*ucontext*/) {
  const int saved_errno = errno;
  if (g_armed.load(std::memory_order_acquire)) {
    const uint32_t slot = g_next_slot.fetch_add(1, std::memory_order_relaxed);
    if (slot < static_cast<uint32_t>(
                   g_max_samples.load(std::memory_order_relaxed))) {
      Sample& s = g_samples[slot];
      s.depth = backtrace(s.frames, kMaxFrames);
      int i = 0;
      for (; i + 1 < internal::kThreadNameBytes &&
             internal::t_profiler_thread_name[i] != '\0';
           ++i) {
        s.thread_name[i] = internal::t_profiler_thread_name[i];
      }
      s.thread_name[i] = '\0';
      s.ready.store(1, std::memory_order_release);
    } else {
      g_dropped.fetch_add(1, std::memory_order_relaxed);
    }
  }
  errno = saved_errno;
}

// "./miss_serve(_ZN4miss2nn6MatMul...+0x1f4) [0x55d1...]" -> demangled
// symbol, or the module basename + offset when the symbol table has
// nothing (static functions without -rdynamic coverage).
std::string PrettyFrame(const char* symbolized) {
  const std::string raw(symbolized != nullptr ? symbolized : "");
  const size_t open = raw.find('(');
  const size_t plus = raw.find('+', open == std::string::npos ? 0 : open);
  if (open != std::string::npos && plus != std::string::npos && plus > open + 1) {
    std::string mangled = raw.substr(open + 1, plus - open - 1);
    int status = 0;
    char* demangled =
        abi::__cxa_demangle(mangled.c_str(), nullptr, nullptr, &status);
    if (status == 0 && demangled != nullptr) {
      std::string out(demangled);
      std::free(demangled);
      return out;
    }
    if (demangled != nullptr) std::free(demangled);
    return mangled;  // plain C symbol
  }
  // No symbol: keep "module [addr]" so the frame is still attributable.
  size_t slash = raw.rfind('/', open == std::string::npos ? raw.size() : open);
  std::string out = slash == std::string::npos ? raw : raw.substr(slash + 1);
  if (!out.empty() && out.back() == '\n') out.pop_back();
  return out.empty() ? "??" : out;
}

// Folded-stack segments must not contain the folding separators.
std::string SanitizeSegment(std::string s) {
  for (char& c : s) {
    if (c == ';' || c == ' ' || c == '\n') c = '_';
  }
  return s.empty() ? std::string("??") : s;
}

}  // namespace

bool ProfilerStart(const ProfilerOptions& options) {
  std::lock_guard<std::mutex> lock(g_profiler_mu);
  if (g_running || options.hz <= 0 || options.max_samples <= 0) return false;

  // Prime backtrace() outside signal context: its first call may dlopen
  // libgcc and allocate, which must never happen inside the handler.
  void* prime[2];
  backtrace(prime, 2);

  delete[] g_samples;
  g_samples = new Sample[options.max_samples];
  g_max_samples.store(options.max_samples, std::memory_order_relaxed);
  g_next_slot.store(0, std::memory_order_relaxed);
  g_dropped.store(0, std::memory_order_relaxed);

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_sigaction = OnSigprof;
  sigemptyset(&action.sa_mask);
  // SA_RESTART keeps the poll loop and blocking reads from churning EINTR
  // at the sampling frequency.
  action.sa_flags = SA_SIGINFO | SA_RESTART;
  if (sigaction(SIGPROF, &action, &g_prev_action) != 0) {
    delete[] g_samples;
    g_samples = nullptr;
    g_max_samples.store(0, std::memory_order_relaxed);
    return false;
  }
  g_armed.store(true, std::memory_order_release);

  itimerval timer;
  timer.it_interval.tv_sec = 0;
  timer.it_interval.tv_usec = static_cast<long>(1000000 / options.hz);
  if (timer.it_interval.tv_usec <= 0) timer.it_interval.tv_usec = 1;
  timer.it_value = timer.it_interval;
  if (setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
    g_armed.store(false, std::memory_order_release);
    sigaction(SIGPROF, &g_prev_action, nullptr);
    delete[] g_samples;
    g_samples = nullptr;
    g_max_samples.store(0, std::memory_order_relaxed);
    return false;
  }
  g_running = true;
  return true;
}

bool ProfilerActive() {
  std::lock_guard<std::mutex> lock(g_profiler_mu);
  return g_running;
}

int64_t ProfilerSampleCount() {
  const int64_t claimed = g_next_slot.load(std::memory_order_relaxed);
  const int64_t cap = g_max_samples.load(std::memory_order_relaxed);
  return claimed < cap ? claimed : cap;
}

std::string ProfilerStop() {
  std::lock_guard<std::mutex> lock(g_profiler_mu);
  if (!g_running) return "";

  // Disarm: no new timer expirations, then tell any in-flight handler to
  // stand down before we start reading slots.
  itimerval off;
  std::memset(&off, 0, sizeof(off));
  setitimer(ITIMER_PROF, &off, nullptr);
  g_armed.store(false, std::memory_order_release);
  sigaction(SIGPROF, &g_prev_action, nullptr);
  g_running = false;

  const int64_t count = ProfilerSampleCount();
  std::map<std::string, int64_t> folded;
  for (int64_t i = 0; i < count; ++i) {
    Sample& s = g_samples[i];
    if (s.ready.load(std::memory_order_acquire) != 1) continue;  // in-flight
    char** symbols = backtrace_symbols(s.frames, s.depth);
    if (symbols == nullptr) continue;
    std::vector<std::string> pretty;
    pretty.reserve(s.depth);
    for (int f = 0; f < s.depth; ++f) {
      pretty.push_back(PrettyFrame(symbols[f]));
    }
    std::free(symbols);

    // Frames are leaf-first and begin inside the signal machinery: our
    // handler, then the kernel trampoline (__restore_rt or similar). Strip
    // through the deepest frame that is recognizably signal plumbing.
    size_t first_real = 0;
    const size_t probe = pretty.size() < 4 ? pretty.size() : 4;
    for (size_t f = 0; f < probe; ++f) {
      if (pretty[f].find("OnSigprof") != std::string::npos ||
          pretty[f].find("restore_rt") != std::string::npos ||
          pretty[f].find("sigaction") != std::string::npos ||
          pretty[f].find("killpg") != std::string::npos) {
        first_real = f + 1;
      }
    }
    std::string key(s.thread_name[0] != '\0' ? s.thread_name : "unnamed");
    key = SanitizeSegment(key);
    // Root-first for the folded format: walk outermost -> leaf.
    for (size_t f = pretty.size(); f > first_real; --f) {
      key += ';';
      key += SanitizeSegment(pretty[f - 1]);
    }
    ++folded[key];
  }

  std::ostringstream out;
  for (const auto& [stack, n] : folded) {
    out << stack << " " << n << "\n";
  }
  const int64_t dropped = g_dropped.load(std::memory_order_relaxed);
  if (dropped > 0) out << "# dropped " << dropped << "\n";

  delete[] g_samples;
  g_samples = nullptr;
  g_max_samples.store(0, std::memory_order_relaxed);
  return out.str();
}

#else  // !defined(__linux__)

bool ProfilerStart(const ProfilerOptions&) { return false; }
bool ProfilerActive() { return false; }
int64_t ProfilerSampleCount() { return 0; }
std::string ProfilerStop() { return ""; }

#endif

}  // namespace miss::obs
