#include "obs/report.h"

#include <fstream>
#include <set>
#include <sstream>

#include "obs/json.h"

namespace miss::obs {

RunReporter::RunReporter(std::string run_name)
    : run_name_(std::move(run_name)) {}

void RunReporter::AddConfig(const std::string& key, const std::string& value) {
  config_strings_.emplace_back(key, value);
}

void RunReporter::AddConfig(const std::string& key, double value) {
  config_numbers_.emplace_back(key, value);
}

void RunReporter::AddConfig(const std::string& key, int64_t value) {
  config_numbers_.emplace_back(key, static_cast<double>(value));
}

void RunReporter::LogEpoch(int64_t epoch,
                           const std::map<std::string, double>& values) {
  epochs_.push_back({epoch, values});
}

void RunReporter::SetSummary(const std::string& key, double value) {
  summary_[key] = value;
}

std::string RunReporter::ToJsonl() const {
  std::ostringstream out;
  {
    JsonWriter w;
    w.BeginObject();
    w.Key("type").String("run_start");
    w.Key("run").String(run_name_);
    w.Key("config").BeginObject();
    for (const auto& [key, value] : config_strings_) w.Key(key).String(value);
    for (const auto& [key, value] : config_numbers_) w.Key(key).Number(value);
    w.EndObject();
    w.EndObject();
    out << w.str() << "\n";
  }
  for (const EpochRow& row : epochs_) {
    JsonWriter w;
    w.BeginObject();
    w.Key("type").String("epoch");
    w.Key("run").String(run_name_);
    w.Key("epoch").Int(row.epoch);
    for (const auto& [key, value] : row.values) w.Key(key).Number(value);
    w.EndObject();
    out << w.str() << "\n";
  }
  {
    JsonWriter w;
    w.BeginObject();
    w.Key("type").String("run_end");
    w.Key("run").String(run_name_);
    w.Key("summary").BeginObject();
    for (const auto& [key, value] : summary_) w.Key(key).Number(value);
    w.EndObject();
    w.EndObject();
    out << w.str() << "\n";
  }
  return out.str();
}

bool RunReporter::AppendJsonl(const std::string& path) const {
  std::ofstream out(path, std::ios::app);
  if (!out) return false;
  out << ToJsonl();
  return static_cast<bool>(out);
}

std::string RunReporter::ToCsv() const {
  // Header: epoch + union of keys across rows, sorted for stability.
  std::set<std::string> keys;
  for (const EpochRow& row : epochs_) {
    for (const auto& [key, unused] : row.values) keys.insert(key);
  }
  std::ostringstream out;
  out << "epoch";
  for (const std::string& key : keys) out << "," << key;
  out << "\n";
  for (const EpochRow& row : epochs_) {
    out << row.epoch;
    for (const std::string& key : keys) {
      out << ",";
      auto it = row.values.find(key);
      if (it != row.values.end()) out << JsonNumber(it->second);
    }
    out << "\n";
  }
  return out.str();
}

bool RunReporter::WriteCsv(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << ToCsv();
  return static_cast<bool>(out);
}

}  // namespace miss::obs
