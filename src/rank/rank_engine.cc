#include "rank/rank_engine.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "common/check.h"
#include "common/thread_pool.h"
#include "common/top_k.h"
#include "nn/plan.h"
#include "nn/tensor.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/health.h"

namespace miss::rank {

RankEngine::RankEngine(models::CtrModel& model, const RankEngineConfig& config)
    : model_(model),
      config_(config),
      cand_field_(model.schema().CandidateField()),
      split_active_(cand_field_ >= 0 && model.SupportsRankSplit()) {
  const std::string tag =
      config_.metric_model.empty() ? "" : "|model=" + config_.metric_model;
  name_requests_ = "rank/requests" + tag;
  name_candidates_ = "rank/candidates" + tag;
  name_batch_k_ = "rank/batch_k" + tag;
  name_latency_ = "rank/latency_ms" + tag;
  name_queue_depth_ = "rank/queue_depth" + tag;
  name_alloc_count_ = "serve/alloc/count" + tag;
  name_alloc_bytes_ = "serve/alloc/bytes" + tag;
  name_plan_requests_ = "rank/plan/requests" + tag;
  name_plan_fallback_ = "rank/plan/fallback" + tag;
  MISS_CHECK_GT(config_.num_workers, 0);
  MISS_CHECK_GT(config_.max_chunk, 0);
  MISS_CHECK_GT(config_.nn_threads, 0);
  workers_.reserve(config_.num_workers);
  for (int i = 0; i < config_.num_workers; ++i) {
    workers_.emplace_back([this, i] {
      obs::SetCurrentThreadName("rank-worker-" + std::to_string(i));
      common::ScopedIntraOpThreads intra_op(config_.nn_threads);
      WorkerLoop();
    });
  }
}

RankEngine::~RankEngine() { StopAndJoin(/*flush=*/false); }

void RankEngine::Fail(Request& req, const char* what) {
  if (req.callback) {
    req.callback(RankResult{}, /*ok=*/false, req.trace);
    return;
  }
  req.promise.set_exception(
      std::make_exception_ptr(std::runtime_error(what)));
}

std::future<RankResult> RankEngine::Submit(RankRequest request) {
  Request req;
  req.request = std::move(request);
  req.enqueue_ns = obs::NowNs();
  std::future<RankResult> future = req.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stopping_ && cand_field_ >= 0) {
      queue_.push_back(std::move(req));
      if (obs::Enabled()) {
        obs::MetricsRegistry::Global()
            .GetGauge(name_queue_depth_)
            .Set(static_cast<double>(queue_.size()));
      }
      cv_.notify_one();
      return future;
    }
  }
  std::promise<RankResult> failed;
  failed.set_exception(std::make_exception_ptr(std::runtime_error(
      cand_field_ < 0 ? "rank::RankEngine: schema has no candidate field"
                      : "rank::RankEngine::Submit after Drain")));
  return failed.get_future();
}

void RankEngine::SubmitTraced(RankRequest request, serve::RequestTrace trace,
                              RankCallback callback) {
  MISS_CHECK(callback != nullptr);
  Request req;
  req.request = std::move(request);
  req.callback = std::move(callback);
  req.trace = trace;
  req.enqueue_ns = obs::NowNs();
  if (req.trace.trace_id != 0) req.trace.enqueue_ns = req.enqueue_ns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stopping_ && cand_field_ >= 0) {
      queue_.push_back(std::move(req));
      if (obs::Enabled()) {
        obs::MetricsRegistry::Global()
            .GetGauge(name_queue_depth_)
            .Set(static_cast<double>(queue_.size()));
      }
      cv_.notify_one();
      return;
    }
  }
  req.callback(RankResult{}, /*ok=*/false, req.trace);
}

void RankEngine::Drain() { StopAndJoin(/*flush=*/true); }

bool RankEngine::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stopping_;
}

void RankEngine::StopAndJoin(bool flush) {
  std::lock_guard<std::mutex> join_lock(join_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stopping_) {
      stopping_ = true;
      flush_on_stop_ = flush;
    }
  }
  cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();

  std::deque<Request> leftover;
  {
    std::lock_guard<std::mutex> lock(mu_);
    leftover.swap(queue_);
    if (obs::Enabled() && !leftover.empty()) {
      obs::MetricsRegistry::Global().GetGauge(name_queue_depth_).Set(0.0);
    }
  }
  for (Request& req : leftover) {
    Fail(req, "rank::RankEngine destroyed with the request still queued");
  }
}

int64_t RankEngine::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(queue_.size());
}

void RankEngine::WorkerLoop() {
  for (;;) {
    Request req;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && !flush_on_stop_) return;
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      req = std::move(queue_.front());
      queue_.pop_front();
      if (obs::Enabled()) {
        obs::MetricsRegistry::Global()
            .GetGauge(name_queue_depth_)
            .Set(static_cast<double>(queue_.size()));
      }
    }
    Process(std::move(req));
  }
}

void RankEngine::Process(Request req) {
  MISS_TRACE_SCOPE("rank/score_request");
  const bool enabled = obs::Enabled();
  // The request leaves the queue whole — dequeue is the rank analogue of the
  // score path's batch close, keeping /statusz stage attribution comparable.
  if (enabled && req.trace.trace_id != 0) {
    req.trace.batch_close_ns = obs::NowNs();
  }

  // Whole-request allocation delta: chunk scoring happens entirely on this
  // worker thread, so the thread-local tally brackets it exactly. Deltas are
  // read here but recorded below, after the callback, with the rest of the
  // metrics.
  const bool record_alloc = enabled && config_.alloc_stats;
  nn::AllocTally alloc_tally;
  RankResult result = ScoreRequest(req.request);
  const double alloc_nodes = static_cast<double>(alloc_tally.nodes());
  const double alloc_bytes = static_cast<double>(alloc_tally.bytes());
  const int64_t k = static_cast<int64_t>(req.request.candidates.size());

  const int64_t forward_done_ns = enabled ? obs::NowNs() : 0;
  if (enabled && req.trace.trace_id != 0) {
    req.trace.forward_done_ns = forward_done_ns;
    if (obs::TracingActive()) {
      obs::EmitFlowFinish(req.trace.trace_id, forward_done_ns);
    }
  }

  if (req.callback) {
    req.callback(std::move(result), /*ok=*/true, req.trace);
  } else {
    req.promise.set_value(std::move(result));
  }

  if (enabled) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    reg.GetCounter(name_requests_).Add(1);
    reg.GetSlidingCounter(name_requests_).Add(1);
    reg.GetCounter(name_candidates_).Add(k);
    reg.GetSlidingCounter(name_candidates_).Add(k);
    reg.GetHistogram(name_batch_k_).Record(static_cast<double>(k));
    const double latency_ms =
        static_cast<double>(obs::NowNs() - req.enqueue_ns) / 1e6;
    reg.GetHistogram(name_latency_).Record(latency_ms);
    reg.GetSlidingHistogram(name_latency_).Record(latency_ms);
    if (record_alloc) {
      reg.GetHistogram(name_alloc_count_).Record(alloc_nodes);
      reg.GetHistogram(name_alloc_bytes_).Record(alloc_bytes);
      reg.GetSlidingHistogram(name_alloc_count_).Record(alloc_nodes);
      reg.GetSlidingHistogram(name_alloc_bytes_).Record(alloc_bytes);
    }
  }
}

RankResult RankEngine::ScoreRequest(const RankRequest& request) {
  RankResult out;
  const int64_t total = static_cast<int64_t>(request.candidates.size());
  out.scores.resize(static_cast<size_t>(total));
  if (total > 0) {
    // MakeBatch wants (dataset, indices); stage the user sample exactly as
    // serve::Engine does so history truncation/padding match the score path.
    data::Dataset staging;
    staging.schema = model_.schema();
    staging.samples.push_back(request.user);
    const data::Batch user_batch = data::MakeBatch(staging, {0});

    nn::InferenceScope inference;
    std::unique_ptr<models::RankContext> context;
    if (split_active_) context = model_.EncodeUser(user_batch);

    const bool record_health = obs::Enabled() && config_.health != nullptr;
    for (int64_t begin = 0; begin < total; begin += config_.max_chunk) {
      const int64_t m = std::min(config_.max_chunk, total - begin);
      const std::vector<int64_t> chunk(
          request.candidates.begin() + begin,
          request.candidates.begin() + begin + m);

      nn::Tensor logits;
      std::vector<float> plan_logits;
      bool plan_used = false;
      std::vector<data::Sample> pair_samples;  // fallback batch / health rows
      if (!split_active_ || record_health) {
        pair_samples.reserve(static_cast<size_t>(m));
        for (int64_t i = 0; i < m; ++i) {
          data::Sample s = request.user;
          s.cat[cand_field_] = chunk[static_cast<size_t>(i)];
          pair_samples.push_back(std::move(s));
        }
      }
      if (split_active_) {
        logits = model_.ScoreCandidates(*context, chunk);
      } else {
        // Generic fallback: one batched pass over the substituted pairs —
        // through the compiled plan when one covers this chunk size, else
        // the dynamic forward.
        data::Dataset pairs;
        pairs.schema = model_.schema();
        pairs.samples = std::move(pair_samples);
        std::vector<int64_t> indices(static_cast<size_t>(m));
        for (int64_t i = 0; i < m; ++i) indices[static_cast<size_t>(i)] = i;
        const data::Batch pair_batch = data::MakeBatch(pairs, indices);
        if (config_.plans != nullptr) {
          plan_logits.resize(static_cast<size_t>(m));
          plan_used = config_.plans->Score(pair_batch, plan_logits.data());
        }
        if (!plan_used) {
          logits = model_.Forward(pair_batch, /*training=*/false);
        }
        if (obs::Enabled() && config_.plans != nullptr) {
          obs::MetricsRegistry::Global()
              .GetCounter(plan_used ? name_plan_requests_ : name_plan_fallback_)
              .Add(m);
        }
        pair_samples = std::move(pairs.samples);  // still wanted for health
      }

      std::vector<float> chunk_scores;
      if (record_health) chunk_scores.resize(static_cast<size_t>(m));
      for (int64_t i = 0; i < m; ++i) {
        const float x = plan_used ? plan_logits[static_cast<size_t>(i)]
                                  : logits.at(i);
        const float score = 1.0f / (1.0f + std::exp(-x));
        out.scores[static_cast<size_t>(begin + i)] = score;
        if (record_health) chunk_scores[static_cast<size_t>(i)] = score;
      }
      if (record_health) {
        config_.health->RecordBatch(pair_samples, chunk_scores);
      }
    }
  }

  const int64_t k =
      request.top_k <= 0 ? total : std::min(request.top_k, total);
  out.top = common::TopKIndices(out.scores, k);
  return out;
}

}  // namespace miss::rank
