// Candidate-ranking engine: one user context scored against K candidates.
//
// A rank request carries one user sample, K candidate ids for the schema's
// candidate field (data::DatasetSchema::CandidateField()), and a top_k output
// size. Workers drain a queue of whole requests — the candidate axis IS the
// micro-batch, so there is no cross-request coalescing — and score each
// request under nn::InferenceScope in candidate chunks of max_chunk rows.
//
// For models implementing the two-tower split (CtrModel::SupportsRankSplit)
// the worker runs EncodeUser once and ScoreCandidates per chunk, sharing the
// behavior-sequence encoding across all K candidates. Other models fall back
// to batched per-candidate Forward() calls: K copies of the user sample with
// the candidate slot substituted. Both paths are bitwise-equal to scoring
// each (user, candidate) pair individually through serve::Engine — every
// factory op is row-wise over the batch axis and the split contract
// (ctr_model.h) forbids arithmetic broadcasts — which tests/rank_test.cc
// gates for every factory model.
//
// Results carry sigmoid probabilities index-aligned with the request's
// candidate array plus a top-K listing (common::TopKIndices: best first,
// ties to the smaller index; top_k == 0 orders every candidate).
//
// Lifecycle matches serve::Engine: Drain() stops intake, scores the queue,
// and joins; the destructor stops fast and fails queued requests.
//
// Telemetry (behind obs::Enabled()), windowed per the serving convention:
// counters rank/requests and rank/candidates (lifetime + sliding), histogram
// rank/latency_ms (lifetime + sliding), histogram rank/batch_k, gauge
// rank/queue_depth. SubmitTraced stamps the shared RequestTrace stages
// (batch_close_ns = request dequeued, forward_done_ns = all chunks scored)
// so /statusz stage attribution works unchanged for rank traffic.

#ifndef MISS_RANK_RANK_ENGINE_H_
#define MISS_RANK_RANK_ENGINE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "data/dataset.h"
#include "models/ctr_model.h"
#include "serve/engine.h"

namespace miss::serve {
class ModelHealthMonitor;
}

namespace miss::rank {

struct RankRequest {
  // User fields; the candidate slot's incoming value is ignored (overwritten
  // per candidate). Must be valid against the model schema — the net layer
  // validates with net::ValidateRankRequest before submitting.
  data::Sample user;
  std::vector<int64_t> candidates;
  // Output listing size; 0 returns a full ordering of all K candidates.
  // Values above K are clamped.
  int64_t top_k = 0;
};

struct RankResult {
  // scores[i] = sigmoid(logit) of candidates[i], index-aligned with the
  // request; duplicate candidate ids score independently (and identically).
  std::vector<float> scores;
  // Indices into `candidates`, best first; ties to the smaller index.
  std::vector<int32_t> top;
};

struct RankEngineConfig {
  // Worker threads, each processing whole rank requests.
  int num_workers = 1;
  // Candidate rows per forward pass. Bounds peak activation memory at large
  // K; chunking cannot change score bits (row-wise ops).
  int64_t max_chunk = 256;
  // Intra-op threads per worker forward (common::ScopedIntraOpThreads).
  int nn_threads = 1;
  // Optional model-health monitor (must outlive the engine): every scored
  // candidate is recorded as a (user, candidate) sample so score-PSI and
  // per-feature OOV tracking stay meaningful when traffic is rank-shaped.
  // Null disables recording.
  serve::ModelHealthMonitor* health = nullptr;
  // Compiled inference plans for the model (must outlive the engine). Only
  // the generic per-candidate Forward fallback uses them — split-path models
  // score through EncodeUser/ScoreCandidates, which stays dynamic. Batches
  // above every bucket (max_chunk > largest bucket) run the dynamic forward.
  const nn::PlanSet* plans = nullptr;
  // Per-model metric label, as serve::EngineConfig::metric_model: empty
  // keeps the plain rank/* names, non-empty records rank/...|model=<name>
  // (a {model="..."} label in the Prometheus exposition).
  std::string metric_model;
  // Record the whole-request tensor allocation delta (node count + bytes,
  // per ranked request — K-dependent by nature) into the shared
  // serve/alloc/{count,bytes} histograms, as serve::EngineConfig::
  // alloc_stats.
  bool alloc_stats = true;
};

class RankEngine {
 public:
  // Invoked exactly once per SubmitTraced call: on a worker thread with
  // ok == true, or with ok == false when the engine is draining/destroyed —
  // possibly inline from SubmitTraced itself.
  using RankCallback = std::function<void(RankResult result, bool ok,
                                          const serve::RequestTrace& trace)>;

  // `model` must outlive the engine; shared unlocked by all workers (same
  // read-only Forward contract as serve::Engine).
  explicit RankEngine(models::CtrModel& model,
                      const RankEngineConfig& config = {});
  ~RankEngine();

  RankEngine(const RankEngine&) = delete;
  RankEngine& operator=(const RankEngine&) = delete;

  // Enqueues one rank request. After Drain() the future holds a
  // std::runtime_error.
  std::future<RankResult> Submit(RankRequest request);

  // Callback form carrying a RequestTrace (the net::Server path).
  void SubmitTraced(RankRequest request, serve::RequestTrace trace,
                    RankCallback callback);

  // Stops intake, scores every queued request, then joins the workers.
  void Drain();

  bool draining() const;
  int64_t QueueDepth() const;

  // True when the model serves rank requests through the EncodeUser /
  // ScoreCandidates split rather than the per-candidate Forward fallback.
  bool split_active() const { return split_active_; }
  int candidate_field() const { return cand_field_; }

 private:
  struct Request {
    RankRequest request;
    std::promise<RankResult> promise;
    RankCallback callback;  // when set, used instead of the promise
    serve::RequestTrace trace;
    int64_t enqueue_ns = 0;
  };

  void StopAndJoin(bool flush);
  static void Fail(Request& req, const char* what);
  void WorkerLoop();
  void Process(Request req);
  RankResult ScoreRequest(const RankRequest& request);

  models::CtrModel& model_;
  const RankEngineConfig config_;
  const int cand_field_;
  const bool split_active_;

  // Metric names, resolved once from config_.metric_model.
  std::string name_requests_;
  std::string name_candidates_;
  std::string name_batch_k_;
  std::string name_latency_;
  std::string name_queue_depth_;
  std::string name_alloc_count_;
  std::string name_alloc_bytes_;
  std::string name_plan_requests_;
  std::string name_plan_fallback_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Request> queue_;
  bool stopping_ = false;
  bool flush_on_stop_ = true;

  std::mutex join_mu_;  // serializes concurrent StopAndJoin callers
  std::vector<std::thread> workers_;
};

}  // namespace miss::rank

#endif  // MISS_RANK_RANK_ENGINE_H_
