// Scores one request against a running miss_serve over BOTH protocols and
// prints the server's health — the smallest complete net::Client /
// net::HttpClient walkthrough.
//
//   miss_serve --export-demo-bundle /tmp/demo
//   miss_serve --bundle /tmp/demo --port 8080 &
//   net_client 127.0.0.1 8080 /tmp/demo/sample.json
//
// The sample file holds one JSON scoring request ({"cat":[...],
// "seq":[[...],...]}); --export-demo-bundle writes a matching one.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "net/client.h"
#include "obs/json.h"

namespace {

// The example has no schema to validate against (that is the server's job),
// so it decodes the request file structurally with the obs:: JSON DOM.
bool LoadSample(const std::string& path, miss::data::Sample* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  miss::obs::JsonValue root;
  if (!miss::obs::JsonParse(buf.str(), &root) || !root.IsObject()) {
    return false;
  }
  const miss::obs::JsonValue* cat = root.Find("cat");
  const miss::obs::JsonValue* seq = root.Find("seq");
  if (cat == nullptr || !cat->IsArray() || seq == nullptr ||
      !seq->IsArray()) {
    return false;
  }
  for (const auto& v : cat->array) {
    if (!v.IsNumber()) return false;
    out->cat.push_back(static_cast<int64_t>(v.number));
  }
  for (const auto& row : seq->array) {
    if (!row.IsArray()) return false;
    std::vector<int64_t> ids;
    for (const auto& v : row.array) {
      if (!v.IsNumber()) return false;
      ids.push_back(static_cast<int64_t>(v.number));
    }
    out->seq.push_back(std::move(ids));
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 4) {
    std::fprintf(stderr, "usage: net_client <host> <port> <sample.json>\n");
    return 2;
  }
  const std::string host = argv[1];
  const int port = std::atoi(argv[2]);
  miss::data::Sample sample;
  if (!LoadSample(argv[3], &sample)) {
    std::fprintf(stderr, "failed to read scoring request from %s\n", argv[3]);
    return 1;
  }

  std::string error;

  // Binary protocol: one connection, one pipelined-capable client.
  miss::net::Client binary;
  if (!binary.Connect(host, port, &error)) {
    std::fprintf(stderr, "binary connect failed: %s\n", error.c_str());
    return 1;
  }
  float binary_score = 0.0f;
  if (!binary.Score(sample, &binary_score, &error)) {
    std::fprintf(stderr, "binary score failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("binary  score: %.17g\n", binary_score);

  // HTTP: POST /score on a keep-alive connection, then GET /healthz.
  miss::net::HttpClient http;
  if (!http.Connect(host, port, &error)) {
    std::fprintf(stderr, "http connect failed: %s\n", error.c_str());
    return 1;
  }
  int status = 0;
  float http_score = 0.0f;
  std::string body;
  if (!http.Score(sample, &status, &http_score, &body, &error)) {
    std::fprintf(stderr, "http score failed: %s\n", error.c_str());
    return 1;
  }
  if (status != 200) {
    std::fprintf(stderr, "http score: %d %s\n", status, body.c_str());
    return 1;
  }
  std::printf("http    score: %.17g  (%s)\n", http_score,
              binary_score == http_score ? "bitwise equal" : "MISMATCH");

  if (!http.Get("/healthz", &status, &body, &error)) {
    std::fprintf(stderr, "healthz failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("healthz %d: %s\n", status, body.c_str());
  return binary_score == http_score ? 0 : 1;
}
