// Interest-extractor inspection: drives the MIE / augmentation API directly
// (Eq. 18-21) on a hand-built behavior sequence, showing how the horizontal
// convolution windows respond to the interest structure on the time line.
//
// The sequence interleaves two interests (categories A and B). Adjacent
// windows inside a same-interest run should be much more similar than
// windows straddling an interest switch.

#include <cstdio>
#include <cmath>
#include <vector>

#include "core/miss_module.h"
#include "data/synthetic.h"
#include "models/model_factory.h"
#include "nn/ops.h"
#include "train/trainer.h"

using namespace miss;

namespace {

double Cosine(const std::vector<float>& a, const std::vector<float>& b) {
  double dot = 0, na = 0, nb = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  return dot / (std::sqrt(na * nb) + 1e-12);
}

}  // namespace

int main() {
  // Train a DIN-MISS model briefly so embeddings carry interest structure.
  data::SyntheticConfig config = data::SyntheticConfig::Tiny();
  config.num_users = 600;
  config.num_items = 400;
  config.num_categories = 8;
  data::DatasetBundle bundle = data::GenerateSynthetic(config);

  models::ModelConfig mc;
  mc.embedding_init_stddev = 0.1f;
  auto model = models::CreateModel("din", bundle.train.schema, mc, 1);
  core::MissConfig miss_config = core::MissConfig::Full();
  core::MissModule miss(bundle.train.schema, mc.embedding_dim, miss_config);

  train::TrainConfig tc;
  tc.epochs = 10;
  train::Trainer trainer(tc);
  train::FitResult fit =
      trainer.Fit(*model, &miss, bundle.train, bundle.valid, bundle.test);
  std::printf("trained DIN-MISS: test AUC %.4f\n\n", fit.test.auc);

  // Pick a real test sample and compute C = SequenceTensor, then G_2
  // (union-wise windows of width 2) by hand through the public ops.
  data::Batch batch = data::MakeBatch(bundle.test, {0});
  nn::Tensor c = model->embeddings().SequenceTensor(batch);  // [1, J, L, K]
  const int64_t len = batch.lengths[0];

  nn::Tensor kernel = nn::Tensor::FromData({2}, {0.5f, 0.5f});
  nn::Tensor g2 = nn::Relu(nn::HorizontalConv(c, kernel));  // [1,J,L-1,K]

  // Flatten each window into an interest representation t_l (Eq. 20).
  const int64_t j_dim = g2.dim(1);
  const int64_t k_dim = g2.dim(3);
  const int64_t l_out = len - 1;
  std::vector<std::vector<float>> interests(l_out);
  for (int64_t l = 0; l < l_out; ++l) {
    for (int64_t j = 0; j < j_dim; ++j) {
      for (int64_t k = 0; k < k_dim; ++k) {
        interests[l].push_back(g2.at((j * g2.dim(2) + l) * k_dim + k));
      }
    }
  }

  std::printf("behavior categories on the time line:\n  ");
  for (int64_t l = 0; l < len; ++l) {
    std::printf("%lld ",
                (long long)batch.seq[(0 * batch.num_seq + 1) * batch.seq_len + l]);
  }
  std::printf("\n\ncosine similarity of adjacent interest windows t_l vs t_{l+1}:\n  ");
  for (int64_t l = 0; l + 1 < l_out; ++l) {
    const int64_t cat_a = batch.seq[(0 * batch.num_seq + 1) * batch.seq_len + l];
    const int64_t cat_b =
        batch.seq[(0 * batch.num_seq + 1) * batch.seq_len + l + 2];
    std::printf("%.2f%s ", Cosine(interests[l], interests[l + 1]),
                cat_a == cat_b ? "" : "*");
  }
  std::printf("\n  (* = window pair straddles a category switch)\n");
  std::printf("\n|T| for this sequence (Eq. 20, M=%lld): %lld\n",
              (long long)miss.config().M,
              (long long)miss.InterestCount(len));
  std::printf("Omega (Eq. 23, N=%lld, J=%lld): %lld\n",
              (long long)miss.config().N, (long long)j_dim,
              (long long)miss.FeatureRepresentationCount());
  return 0;
}
