// Command-line experiment runner — the "bring your own data" entry point.
//
// Usage:
//   run_experiment [--dataset amazon-cds|amazon-books|alipay|tiny]
//                  [--log FILE.csv]          # 4-column interaction log
//                  [--model NAME] [--ssl none|miss|rule|irssl|s3rec|cl4srec]
//                  [--epochs N] [--lr F] [--alpha F] [--tau F]
//                  [--scale F] [--seeds N] [--save FILE.ckpt]
//
// Examples:
//   run_experiment --model din --ssl miss --epochs 12
//   run_experiment --log my_interactions.csv --model ipnn --ssl miss

#include <cstdio>
#include <cstring>
#include <string>

#include "core/ssl_factory.h"
#include "data/log_loader.h"
#include "data/synthetic.h"
#include "models/model_factory.h"
#include "nn/serialize.h"
#include "train/experiment.h"
#include "train/trainer.h"

using namespace miss;

namespace {

struct Args {
  std::string dataset = "amazon-cds";
  std::string log_file;
  std::string model = "din";
  std::string ssl = "miss";
  std::string save_path;
  int64_t epochs = 12;
  float lr = 2e-3f;
  float alpha = 1.0f;
  float tau = 0.1f;
  double scale = 0.25;
  int64_t seeds = 1;
};

bool Parse(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (flag == "--dataset" && (value = next())) {
      args->dataset = value;
    } else if (flag == "--log" && (value = next())) {
      args->log_file = value;
    } else if (flag == "--model" && (value = next())) {
      args->model = value;
    } else if (flag == "--ssl" && (value = next())) {
      args->ssl = value;
    } else if (flag == "--save" && (value = next())) {
      args->save_path = value;
    } else if (flag == "--epochs" && (value = next())) {
      args->epochs = std::atoll(value);
    } else if (flag == "--lr" && (value = next())) {
      args->lr = std::atof(value);
    } else if (flag == "--alpha" && (value = next())) {
      args->alpha = std::atof(value);
    } else if (flag == "--tau" && (value = next())) {
      args->tau = std::atof(value);
    } else if (flag == "--scale" && (value = next())) {
      args->scale = std::atof(value);
    } else if (flag == "--seeds" && (value = next())) {
      args->seeds = std::atoll(value);
    } else {
      std::fprintf(stderr, "unknown or incomplete flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!Parse(argc, argv, &args)) return 1;

  // -- Data -------------------------------------------------------------------
  data::DatasetBundle bundle;
  if (!args.log_file.empty()) {
    std::vector<data::Interaction> events;
    std::string error;
    if (!data::LoadInteractionCsv(args.log_file, &events, &error)) {
      std::fprintf(stderr, "failed to load %s: %s\n", args.log_file.c_str(),
                   error.c_str());
      return 1;
    }
    data::LogToDatasetOptions options;
    options.name = args.log_file;
    bundle = data::BuildFromInteractionLog(std::move(events), options);
  } else if (args.dataset == "amazon-cds") {
    bundle = data::GenerateSynthetic(data::SyntheticConfig::AmazonCds(args.scale));
  } else if (args.dataset == "amazon-books") {
    bundle =
        data::GenerateSynthetic(data::SyntheticConfig::AmazonBooks(args.scale));
  } else if (args.dataset == "alipay") {
    bundle = data::GenerateSynthetic(data::SyntheticConfig::Alipay(args.scale));
  } else if (args.dataset == "tiny") {
    bundle = data::GenerateSynthetic(data::SyntheticConfig::Tiny());
  } else {
    std::fprintf(stderr, "unknown dataset: %s\n", args.dataset.c_str());
    return 1;
  }
  std::printf("dataset %s: users=%lld items=%lld train=%lld fields=%lld\n",
              bundle.train.schema.name.c_str(), (long long)bundle.num_users,
              (long long)bundle.num_items, (long long)bundle.train.size(),
              (long long)bundle.num_fields);
  if (bundle.train.size() == 0) {
    std::fprintf(stderr, "empty training set after preprocessing\n");
    return 1;
  }

  // -- Experiment ---------------------------------------------------------------
  train::ExperimentSpec spec;
  spec.model = args.model;
  spec.ssl = args.ssl == "none" ? "" : args.ssl;
  spec.num_seeds = args.seeds;
  spec.train_config.epochs = args.epochs;
  spec.train_config.learning_rate = args.lr;
  spec.train_config.weight_decay = 1e-5f;
  spec.train_config.alpha1 = args.alpha;
  spec.train_config.alpha2 = args.alpha;
  spec.miss.tau = args.tau;
  spec.model_config.embedding_init_stddev = 0.1f;

  train::ExperimentResult result = train::RunExperiment(bundle, spec);
  std::printf("%s%s%s: AUC=%.4f (+/- %.4f) Logloss=%.4f\n",
              args.model.c_str(), spec.ssl.empty() ? "" : "-",
              spec.ssl.c_str(), result.auc, result.auc_stddev, result.logloss);

  // -- Optional checkpoint (retrains one model at the base seed) ----------------
  if (!args.save_path.empty()) {
    auto model = models::CreateModel(args.model, bundle.train.schema,
                                     spec.model_config,
                                     spec.train_config.seed);
    auto ssl = core::CreateSslMethod(spec.ssl, bundle.train.schema,
                                     spec.model_config.embedding_dim,
                                     spec.miss.tau, 17, spec.miss);
    train::Trainer trainer(spec.train_config);
    trainer.Fit(*model, ssl.get(), bundle.train, bundle.valid, bundle.test);
    if (nn::SaveParameters(model->Parameters(), args.save_path)) {
      std::printf("checkpoint written to %s\n", args.save_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", args.save_path.c_str());
      return 1;
    }
  }
  return 0;
}
