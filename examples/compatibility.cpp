// Compatibility demo: MISS is model-agnostic. The same MissModule is
// plugged into three structurally different CTR models — DIN (interest
// modeling), IPNN (feature interaction), FiGNN (graph attention) — without
// touching their architectures, mirroring Table V of the paper.

#include <cstdio>
#include <string>
#include <vector>

#include "data/synthetic.h"
#include "train/experiment.h"

int main() {
  using namespace miss;

  data::DatasetBundle bundle =
      data::GenerateSynthetic(data::SyntheticConfig::AmazonCds(0.4));
  std::printf("dataset: %s (%lld train instances)\n\n",
              bundle.train.schema.name.c_str(),
              (long long)bundle.train.size());

  std::printf("%-12s %-10s %-10s %-8s\n", "Backbone", "plain AUC",
              "MISS AUC", "lift");
  for (const char* backbone_name : {"din", "ipnn", "fignn"}) {
    const std::string backbone(backbone_name);
    train::ExperimentSpec plain;
    plain.model = backbone;
    plain.train_config.epochs = 12;
    plain.train_config.learning_rate = 2e-3f;
    plain.train_config.alpha1 = 2.0f;
    plain.train_config.alpha2 = 2.0f;
    plain.model_config.embedding_init_stddev = 0.1f;
    train::ExperimentResult base = train::RunExperiment(bundle, plain);

    train::ExperimentSpec enhanced = plain;
    enhanced.ssl = "miss";
    train::ExperimentResult boosted = train::RunExperiment(bundle, enhanced);

    std::printf("%-12s %-10.4f %-10.4f %+6.2f%%\n", backbone.c_str(),
                base.auc, boosted.auc,
                100.0 * (boosted.auc - base.auc) / base.auc);
  }
  return 0;
}
