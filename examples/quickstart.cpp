// Quickstart: train DIN with and without the MISS plug-in on a small
// synthetic multi-interest dataset and compare test AUC / Logloss.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/miss_module.h"
#include "data/synthetic.h"
#include "models/model_factory.h"
#include "train/experiment.h"

int main() {
  using namespace miss;

  // 1. Generate a dataset. Profiles mirror the paper's three benchmarks;
  //    a scaled-down Amazon-Cds keeps this demo under a minute.
  data::SyntheticConfig config = data::SyntheticConfig::AmazonCds(0.3);
  data::DatasetBundle bundle = data::GenerateSynthetic(config);
  std::printf("dataset: %s | users=%lld items=%lld train-instances=%lld\n",
              config.name.c_str(), (long long)bundle.num_users,
              (long long)bundle.num_items, (long long)bundle.num_instances);

  // 2. Plain DIN baseline.
  train::ExperimentSpec baseline;
  baseline.model = "din";
  baseline.train_config.epochs = 12;
  baseline.train_config.learning_rate = 2e-3f;
  baseline.train_config.weight_decay = 1e-5f;
  baseline.train_config.alpha1 = 2.0f;
  baseline.train_config.alpha2 = 2.0f;
  baseline.model_config.embedding_init_stddev = 0.1f;
  train::ExperimentResult din = train::RunExperiment(bundle, baseline);
  std::printf("DIN        AUC=%.4f  Logloss=%.4f\n", din.auc, din.logloss);

  // 3. DIN + MISS: same model, plus interest-level self-supervision.
  train::ExperimentSpec enhanced = baseline;
  enhanced.ssl = "miss";
  enhanced.miss = core::MissConfig::Full();
  train::ExperimentResult din_miss = train::RunExperiment(bundle, enhanced);
  std::printf("DIN-MISS   AUC=%.4f  Logloss=%.4f\n", din_miss.auc,
              din_miss.logloss);

  std::printf("MISS lift: %+.2f%% AUC\n",
              100.0 * (din_miss.auc - din.auc) / din.auc);
  return 0;
}
