// Robustness demo (Section VI-E): inject label noise into the training set
// and compare how DIN and DIN-MISS degrade. MISS's self-supervision signals
// come from the (unlabeled) behavior structure, so its AUC should degrade
// more slowly — the relative improvement grows with the noise rate.

#include <cstdio>
#include <vector>

#include "data/synthetic.h"
#include "data/transforms.h"
#include "train/experiment.h"

int main() {
  using namespace miss;

  data::DatasetBundle bundle =
      data::GenerateSynthetic(data::SyntheticConfig::AmazonCds(0.4));

  std::printf("%-8s %-10s %-10s %-8s\n", "noise", "DIN", "DIN-MISS", "RI");
  for (double rate : {0.0, 0.1, 0.2}) {
    common::Rng rng(42);
    data::Dataset noisy = data::InjectLabelNoise(bundle.train, rate, rng);

    train::ExperimentSpec base;
    base.model = "din";
    base.train_config.epochs = 12;
    base.train_config.learning_rate = 2e-3f;
    base.train_config.alpha1 = 2.0f;
    base.train_config.alpha2 = 2.0f;
    base.model_config.embedding_init_stddev = 0.1f;
    train::ExperimentResult din = train::RunExperiment(bundle, base, &noisy);

    train::ExperimentSpec enhanced = base;
    enhanced.ssl = "miss";
    train::ExperimentResult miss =
        train::RunExperiment(bundle, enhanced, &noisy);

    std::printf("%5.0f%%  %-10.4f %-10.4f %+6.2f%%\n", rate * 100, din.auc,
                miss.auc, 100.0 * (miss.auc - din.auc) / din.auc);
  }
  return 0;
}
