// Trainer, strategies, and experiment-runner tests.

#include <gtest/gtest.h>

#include "core/miss_module.h"
#include "data/synthetic.h"
#include "models/model_factory.h"
#include "data/transforms.h"
#include "train/experiment.h"
#include "train/trainer.h"

namespace miss {
namespace {

data::DatasetBundle SmallBundle() {
  data::SyntheticConfig config = data::SyntheticConfig::Tiny();
  config.num_users = 120;
  config.num_items = 80;
  config.num_categories = 6;
  return data::GenerateSynthetic(config);
}

TEST(TrainerTest, LossDecreasesOverEpochs) {
  data::DatasetBundle bundle = SmallBundle();
  models::ModelConfig mc;
  auto model = models::CreateModel("fm", bundle.train.schema, mc, 1);
  train::TrainConfig tc;
  tc.epochs = 8;
  tc.select_best_on_valid = false;
  train::Trainer trainer(tc);
  train::FitResult fit =
      trainer.Fit(*model, nullptr, bundle.train, bundle.valid, bundle.test);
  ASSERT_EQ(fit.loss_trace.size(), 8u);
  EXPECT_LT(fit.loss_trace.back(), fit.loss_trace.front());
}

TEST(TrainerTest, JointSslTrainingRecordsSimilarityTrace) {
  data::DatasetBundle bundle = SmallBundle();
  models::ModelConfig mc;
  auto model = models::CreateModel("din", bundle.train.schema, mc, 1);
  core::MissModule miss(bundle.train.schema, mc.embedding_dim,
                        core::MissConfig::Full());
  train::TrainConfig tc;
  tc.epochs = 2;
  train::Trainer trainer(tc);
  train::FitResult fit =
      trainer.Fit(*model, &miss, bundle.train, bundle.valid, bundle.test);
  EXPECT_FALSE(fit.similarity_trace.empty());
  for (double s : fit.similarity_trace) {
    EXPECT_GE(s, -1.0 - 1e-6);
    EXPECT_LE(s, 1.0 + 1e-6);
  }
}

TEST(TrainerTest, PretrainStrategyRunsEndToEnd) {
  data::DatasetBundle bundle = SmallBundle();
  models::ModelConfig mc;
  auto model = models::CreateModel("din", bundle.train.schema, mc, 1);
  core::MissModule miss(bundle.train.schema, mc.embedding_dim,
                        core::MissConfig::Full());
  train::TrainConfig tc;
  tc.epochs = 2;
  tc.strategy = train::Strategy::kPretrain;
  tc.pretrain_epochs = 2;
  train::Trainer trainer(tc);
  train::FitResult fit =
      trainer.Fit(*model, &miss, bundle.train, bundle.valid, bundle.test);
  EXPECT_GT(fit.test.auc, 0.0);
  // Pre-training keeps SSL out of the main stage: no similarity trace.
  EXPECT_TRUE(fit.similarity_trace.empty());
}

TEST(TrainerTest, EvaluateProducesSaneMetrics) {
  data::DatasetBundle bundle = SmallBundle();
  models::ModelConfig mc;
  auto model = models::CreateModel("lr", bundle.train.schema, mc, 1);
  train::EvalResult r = train::Evaluate(*model, bundle.test);
  EXPECT_GE(r.auc, 0.0);
  EXPECT_LE(r.auc, 1.0);
  EXPECT_GT(r.logloss, 0.0);
}

TEST(ExperimentTest, DeterministicAtFixedSeed) {
  data::DatasetBundle bundle = SmallBundle();
  train::ExperimentSpec spec;
  spec.model = "fm";
  spec.train_config.epochs = 3;
  train::ExperimentResult a = train::RunExperiment(bundle, spec);
  train::ExperimentResult b = train::RunExperiment(bundle, spec);
  EXPECT_DOUBLE_EQ(a.auc, b.auc);
  EXPECT_DOUBLE_EQ(a.logloss, b.logloss);
}

TEST(ExperimentTest, MultiSeedReportsStddev) {
  data::DatasetBundle bundle = SmallBundle();
  train::ExperimentSpec spec;
  spec.model = "lr";
  spec.train_config.epochs = 2;
  spec.num_seeds = 2;
  train::ExperimentResult r = train::RunExperiment(bundle, spec);
  EXPECT_GE(r.auc_stddev, 0.0);
}

TEST(ExperimentTest, TrainOverrideIsUsed) {
  data::DatasetBundle bundle = SmallBundle();
  common::Rng rng(3);
  data::Dataset tiny_train = data::DownsampleTrain(bundle.train, 0.1, rng);
  train::ExperimentSpec spec;
  spec.model = "fm";
  spec.train_config.epochs = 2;
  // Must run (and differ from full-data training) without touching bundle.
  train::ExperimentResult down =
      train::RunExperiment(bundle, spec, &tiny_train);
  train::ExperimentResult full = train::RunExperiment(bundle, spec);
  EXPECT_NE(down.auc, full.auc);
}

}  // namespace
}  // namespace miss
