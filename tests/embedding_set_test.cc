// Tests for the shared embedding tables and pooling helpers — the plug-in
// contract between CTR models and the MISS SSL component.

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "models/embedding_set.h"
#include "models/pooling.h"
#include "nn/ops.h"

namespace miss {
namespace {

data::Dataset MakeDataset() {
  data::Dataset d;
  d.schema.name = "t";
  d.schema.categorical = {{"user", 4}, {"item", 6}, {"cat", 3}};
  d.schema.sequential = {{"item_seq", 6}, {"cat_seq", 3}};
  d.schema.seq_shares_table_with = {1, 2};
  d.schema.max_seq_len = 3;
  d.samples.push_back({{0, 2, 1}, {{3, 4}, {0, 2}}, 1.0f});
  d.samples.push_back({{1, 5, 0}, {{1, 2, 3}, {1, 0, 2}}, 0.0f});
  return d;
}

TEST(EmbeddingSetTest, SharedTableIdentity) {
  data::Dataset d = MakeDataset();
  common::Rng rng(1);
  models::EmbeddingSet set(d.schema, /*dim=*/4, rng);

  data::Batch batch = data::MakeBatch(d, {0});
  // Candidate item id = 2; position 1 of the item sequence is item 4, but
  // we check the table sharing by comparing candidate embedding with a
  // sequence whose first entry is the same id.
  data::Dataset d2 = MakeDataset();
  d2.samples[0].seq[0][0] = d2.samples[0].cat[1];  // history item == cand
  data::Batch batch2 = data::MakeBatch(d2, {0});

  nn::Tensor cand = set.FieldEmbedding(batch2, 1);            // [1, 4]
  nn::Tensor seq = set.SequenceEmbeddings(batch2, 0);         // [1, 3, 4]
  for (int k = 0; k < 4; ++k) {
    EXPECT_FLOAT_EQ(seq.at(k), cand.at(k))
        << "item sequence must share the candidate item table";
  }
}

TEST(EmbeddingSetTest, SequenceTensorShapeMatchesEq18) {
  data::Dataset d = MakeDataset();
  common::Rng rng(2);
  models::EmbeddingSet set(d.schema, 4, rng);
  data::Batch batch = data::MakeBatch(d, {0, 1});
  nn::Tensor c = set.SequenceTensor(batch);
  EXPECT_EQ(c.shape(), (std::vector<int64_t>{2, 2, 3, 4}));  // [B, J, L, K]
}

TEST(EmbeddingSetTest, PaddingRowsAreZero) {
  data::Dataset d = MakeDataset();
  common::Rng rng(3);
  models::EmbeddingSet set(d.schema, 4, rng);
  data::Batch batch = data::MakeBatch(d, {0});  // history length 2 of 3
  nn::Tensor c = set.SequenceTensor(batch);
  // Position l = 2 is padding for sample 0 in both sequence fields.
  for (int j = 0; j < 2; ++j) {
    for (int k = 0; k < 4; ++k) {
      EXPECT_FLOAT_EQ(c.at(((0 * 2 + j) * 3 + 2) * 4 + k), 0.0f);
    }
  }
}

TEST(EmbeddingSetTest, ParameterCountCountsSharedTablesOnce) {
  data::Dataset d = MakeDataset();
  common::Rng rng(4);
  models::EmbeddingSet set(d.schema, 4, rng);
  // Three categorical tables only (both sequences share).
  EXPECT_EQ(set.NumParameters(), (4 + 6 + 3) * 4);
}

TEST(EmbeddingSetTest, PrivateSeqTableAddsParameters) {
  data::Dataset d = MakeDataset();
  d.schema.seq_shares_table_with = {1, -1};  // cat_seq gets its own table
  common::Rng rng(5);
  models::EmbeddingSet set(d.schema, 4, rng);
  EXPECT_EQ(set.NumParameters(), (4 + 6 + 3 + 3) * 4);
}

TEST(MaskedMeanPoolTest, AveragesOnlyValidPositions) {
  nn::Tensor seq = nn::Tensor::FromData(
      {1, 3, 2}, {1, 2, 3, 4, 100, 200});  // last position will be masked
  const std::vector<float> mask = {1, 1, 0};
  nn::Tensor pooled = models::MaskedMeanPool(seq, mask);
  EXPECT_FLOAT_EQ(pooled.at(0), 2.0f);  // (1 + 3) / 2
  EXPECT_FLOAT_EQ(pooled.at(1), 3.0f);  // (2 + 4) / 2
}

TEST(MaskedMeanPoolTest, AllPaddingYieldsZeros) {
  nn::Tensor seq = nn::Tensor::FromData({1, 2, 2}, {5, 5, 5, 5});
  const std::vector<float> mask = {0, 0};
  nn::Tensor pooled = models::MaskedMeanPool(seq, mask);
  EXPECT_FLOAT_EQ(pooled.at(0), 0.0f);
  EXPECT_FLOAT_EQ(pooled.at(1), 0.0f);
}

TEST(MaskedMeanPoolTest, GradientFlowsOnlyThroughValidPositions) {
  common::Rng rng(6);
  nn::Tensor seq =
      nn::Tensor::RandomNormal({1, 3, 2}, 1.0f, rng, /*requires_grad=*/true);
  const std::vector<float> mask = {1, 0, 1};
  nn::Backward(nn::MeanAll(nn::Square(models::MaskedMeanPool(seq, mask))));
  const auto& g = seq.grad();
  EXPECT_NE(g[0], 0.0f);
  EXPECT_FLOAT_EQ(g[2], 0.0f);  // masked position
  EXPECT_FLOAT_EQ(g[3], 0.0f);
  EXPECT_NE(g[4], 0.0f);
}

TEST(FieldMatrixTest, StacksCategoricalAndPooledSequences) {
  data::Dataset d = MakeDataset();
  common::Rng rng(7);
  models::EmbeddingSet set(d.schema, 4, rng);
  data::Batch batch = data::MakeBatch(d, {0, 1});
  nn::Tensor fields = models::FieldMatrix(set, batch);
  EXPECT_EQ(fields.shape(), (std::vector<int64_t>{2, 5, 4}));  // I+J fields
}

}  // namespace
}  // namespace miss
