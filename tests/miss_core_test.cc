// Tests for the MISS framework: extractor identities (|T|, Omega),
// InfoNCE semantics, configuration variants, and the competing SSL methods.

#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "core/info_nce.h"
#include "core/miss_module.h"
#include "core/ssl_baselines.h"
#include "core/ssl_factory.h"
#include "data/synthetic.h"
#include "models/model_factory.h"
#include "nn/ops.h"

namespace miss {
namespace {

data::DatasetBundle SmallBundle() {
  data::SyntheticConfig config = data::SyntheticConfig::Tiny();
  config.num_users = 50;
  config.num_items = 40;
  config.num_categories = 5;
  return data::GenerateSynthetic(config);
}

// ---------------------------------------------------------------------------
// InfoNCE.
// ---------------------------------------------------------------------------

TEST(InfoNceTest, MatchesHandComputedLoss) {
  // Orthogonal pairs: z1 rows = e1, e2; z2 = identical. Cosine matrix = I.
  nn::Tensor z1 = nn::Tensor::FromData({2, 2}, {1, 0, 0, 1});
  nn::Tensor z2 = nn::Tensor::FromData({2, 2}, {1, 0, 0, 1});
  const float tau = 0.5f;
  core::InfoNceResult r = core::InfoNce(z1, z2, tau);
  // Each row: logits {1/tau, 0} with positive first.
  const double row = std::log(std::exp(2.0) + std::exp(0.0)) - 2.0;
  EXPECT_NEAR(r.loss.item(), row, 1e-5);
  EXPECT_NEAR(r.mean_positive_similarity, 1.0, 1e-5);
}

TEST(InfoNceTest, AlignedPairsBeatMisalignedPairs) {
  common::Rng rng(3);
  nn::Tensor a = nn::Tensor::RandomNormal({8, 6}, 1.0f, rng);
  nn::Tensor b = nn::Tensor::RandomNormal({8, 6}, 1.0f, rng);
  const double aligned = core::InfoNce(a, a, 0.1f).loss.item();
  const double random = core::InfoNce(a, b, 0.1f).loss.item();
  EXPECT_LT(aligned, random);
}

TEST(InfoNceTest, SimilarityIsMeanDiagonalCosine) {
  nn::Tensor z1 = nn::Tensor::FromData({2, 2}, {1, 0, 1, 0});
  nn::Tensor z2 = nn::Tensor::FromData({2, 2}, {1, 0, 0, 1});
  core::InfoNceResult r = core::InfoNce(z1, z2, 1.0f);
  EXPECT_NEAR(r.mean_positive_similarity, 0.5, 1e-5);  // (1 + 0) / 2
}

// ---------------------------------------------------------------------------
// MissModule structure.
// ---------------------------------------------------------------------------

struct CountCase {
  int64_t M;
  int64_t len;
};

class InterestCountTest : public ::testing::TestWithParam<CountCase> {};

TEST_P(InterestCountTest, MatchesEq20Identity) {
  // |T| = sum_{1<=m<=M} (L - m + 1)  (Eq. 20)
  data::DatasetBundle bundle = SmallBundle();
  core::MissConfig config;
  config.M = GetParam().M;
  core::MissModule module(bundle.train.schema, /*embedding_dim=*/4, config);
  int64_t expected = 0;
  for (int64_t m = 1; m <= GetParam().M; ++m) {
    if (GetParam().len >= m) expected += GetParam().len - m + 1;
  }
  EXPECT_EQ(module.InterestCount(GetParam().len), expected);
}

INSTANTIATE_TEST_SUITE_P(Grid, InterestCountTest,
                         ::testing::Values(CountCase{1, 5}, CountCase{2, 5},
                                           CountCase{3, 5}, CountCase{4, 8},
                                           CountCase{4, 3}, CountCase{3, 12}));

TEST(MissModuleTest, OmegaMatchesEq23Identity) {
  // Omega = sum_{1<=n<=N} (J - n + 1) with J = 2 sequence fields.
  data::DatasetBundle bundle = SmallBundle();
  core::MissConfig config;
  config.N = 2;
  core::MissModule module(bundle.train.schema, 4, config);
  EXPECT_EQ(module.FeatureRepresentationCount(), 2 + 1);
  core::MissConfig config1;
  config1.N = 1;
  core::MissModule module1(bundle.train.schema, 4, config1);
  EXPECT_EQ(module1.FeatureRepresentationCount(), 2);
}

TEST(MissModuleTest, KernelParameterCountsFollowComplexityAnalysis) {
  // Horizontal kernels contribute sum_{m=1..M} m parameters, vertical
  // sum_{n=1..N} n (Section V-E).
  data::DatasetBundle bundle = SmallBundle();
  core::MissConfig config;
  config.M = 4;
  config.N = 2;
  core::MissModule module(bundle.train.schema, 4, config);
  int64_t kernel_params = 0;
  for (const nn::Tensor& p : module.horizontal_kernels()) {
    kernel_params += p.size();
  }
  for (const nn::Tensor& p : module.vertical_kernels()) {
    kernel_params += p.size();
  }
  EXPECT_EQ(kernel_params, (1 + 2 + 3 + 4) + (1 + 2));
}

// ---------------------------------------------------------------------------
// MissModule loss across all configuration variants.
// ---------------------------------------------------------------------------

struct VariantCase {
  std::string name;
  core::MissConfig config;
  bool expect_feature_loss;
};

class MissVariantTest : public ::testing::TestWithParam<VariantCase> {};

TEST_P(MissVariantTest, ProducesFiniteLossesOfRightArity) {
  data::DatasetBundle bundle = SmallBundle();
  models::ModelConfig mc;
  auto model = models::CreateModel("din", bundle.train.schema, mc, 1);
  core::MissModule module(bundle.train.schema, mc.embedding_dim,
                          GetParam().config);
  data::Batch batch = data::MakeBatch(bundle.train, {0, 1, 2, 3, 4, 5, 6, 7});
  core::SslLossResult result = module.ComputeLoss(*model, batch);

  ASSERT_TRUE(result.interest_loss.defined());
  EXPECT_TRUE(std::isfinite(result.interest_loss.item()));
  EXPECT_EQ(result.feature_loss.defined(), GetParam().expect_feature_loss);
  if (result.feature_loss.defined()) {
    EXPECT_TRUE(std::isfinite(result.feature_loss.item()));
  }
  EXPECT_GE(result.mean_pair_similarity, -1.0 - 1e-6);
  EXPECT_LE(result.mean_pair_similarity, 1.0 + 1e-6);

  // SSL gradients must reach the shared embedding tables.
  nn::Tensor loss = result.interest_loss;
  if (result.feature_loss.defined()) {
    loss = nn::Add(loss, result.feature_loss);
  }
  nn::Backward(loss);
  double emb_grad = 0.0;
  for (const nn::Tensor& p : model->embeddings().Parameters()) {
    for (float g : p.grad()) emb_grad += std::abs(g);
  }
  EXPECT_GT(emb_grad, 0.0);
}

std::vector<VariantCase> VariantCases() {
  std::vector<VariantCase> cases;
  cases.push_back({"full", core::MissConfig::Full(), true});
  cases.push_back({"no_f", core::MissConfig::WithoutF(), false});
  cases.push_back({"no_fu", core::MissConfig::WithoutFU(), false});
  cases.push_back({"no_fl", core::MissConfig::WithoutFL(), false});
  cases.push_back({"no_ful", core::MissConfig::WithoutFUL(), false});
  cases.push_back({"no_mful", core::MissConfig::WithoutMFUL(), false});
  core::MissConfig sa;
  sa.extractor = core::MissConfig::Extractor::kSelfAttention;
  cases.push_back({"sa", sa, false});
  core::MissConfig lstm;
  lstm.extractor = core::MissConfig::Extractor::kLstm;
  cases.push_back({"lstm", lstm, false});
  core::MissConfig gaussian;
  gaussian.distance_distribution =
      core::MissConfig::DistanceDistribution::kGaussian;
  cases.push_back({"gaussian_h", gaussian, true});
  core::MissConfig transformer;
  transformer.interest_encoder = core::MissConfig::EncoderKind::kTransformer;
  cases.push_back({"transformer_enc", transformer, true});
  core::MissConfig overlap;
  overlap.stride_by_kernel = false;
  cases.push_back({"overlap_pairs", overlap, true});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Variants, MissVariantTest,
                         ::testing::ValuesIn(VariantCases()),
                         [](const ::testing::TestParamInfo<VariantCase>& info) {
                           return info.param.name;
                         });

TEST(MissVariantTest, VariantNamesMatchTable7) {
  data::DatasetBundle bundle = SmallBundle();
  auto name_of = [&](const core::MissConfig& c) {
    return core::MissModule(bundle.train.schema, 4, c).name();
  };
  EXPECT_EQ(name_of(core::MissConfig::Full()), "MISS");
  EXPECT_EQ(name_of(core::MissConfig::WithoutF()), "MISS/F");
  EXPECT_EQ(name_of(core::MissConfig::WithoutFU()), "MISS/F/U");
  EXPECT_EQ(name_of(core::MissConfig::WithoutFL()), "MISS/F/L");
  EXPECT_EQ(name_of(core::MissConfig::WithoutFUL()), "MISS/F/U/L");
  EXPECT_EQ(name_of(core::MissConfig::WithoutMFUL()), "MISS/M/F/U/L");
}

TEST(MissModuleTest, UnionWiseOffUsesOnlyPointwiseKernel) {
  data::DatasetBundle bundle = SmallBundle();
  core::MissConfig config = core::MissConfig::WithoutFU();
  core::MissModule module(bundle.train.schema, 4, config);
  // Only the m = 1 kernel: InterestCount(len) == len.
  EXPECT_EQ(module.InterestCount(9), 9);
}

// ---------------------------------------------------------------------------
// SSL baselines.
// ---------------------------------------------------------------------------

class SslBaselineTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SslBaselineTest, ProducesFiniteLossAndHasParameters) {
  data::DatasetBundle bundle = SmallBundle();
  models::ModelConfig mc;
  auto model = models::CreateModel("ipnn", bundle.train.schema, mc, 1);
  auto ssl = core::CreateSslMethod(GetParam(), bundle.train.schema,
                                   mc.embedding_dim, 0.1f, 11,
                                   core::MissConfig::Full());
  ASSERT_NE(ssl, nullptr);
  EXPECT_FALSE(ssl->TrainableParameters().empty());

  data::Batch batch = data::MakeBatch(bundle.train, {0, 1, 2, 3, 4, 5});
  core::SslLossResult result = ssl->ComputeLoss(*model, batch);
  ASSERT_TRUE(result.interest_loss.defined());
  EXPECT_TRUE(std::isfinite(result.interest_loss.item()));

  nn::Backward(result.interest_loss);
  double emb_grad = 0.0;
  for (const nn::Tensor& p : model->embeddings().Parameters()) {
    for (float g : p.grad()) emb_grad += std::abs(g);
  }
  EXPECT_GT(emb_grad, 0.0) << GetParam() << " does not touch embeddings";
}

INSTANTIATE_TEST_SUITE_P(Methods, SslBaselineTest,
                         ::testing::Values("miss", "rule", "irssl", "s3rec",
                                           "cl4srec"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

TEST(SslFactoryTest, NoneReturnsNull) {
  data::DatasetBundle bundle = SmallBundle();
  EXPECT_EQ(core::CreateSslMethod("", bundle.train.schema, 4, 0.1f, 1,
                                  core::MissConfig::Full()),
            nullptr);
  EXPECT_EQ(core::CreateSslMethod("none", bundle.train.schema, 4, 0.1f, 1,
                                  core::MissConfig::Full()),
            nullptr);
}

}  // namespace
}  // namespace miss
