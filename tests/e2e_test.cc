// End-to-end behavioral tests: the headline claims of the paper, asserted
// as invariants on small planted-structure datasets.

#include <gtest/gtest.h>

#include "core/miss_module.h"
#include "data/synthetic.h"
#include "models/model_factory.h"
#include "train/experiment.h"

namespace miss {
namespace {

data::DatasetBundle Bundle(double scale) {
  return data::GenerateSynthetic(data::SyntheticConfig::AmazonCds(scale));
}

train::ExperimentSpec BaseSpec(const std::string& model,
                               const std::string& ssl) {
  train::ExperimentSpec spec;
  spec.model = model;
  spec.ssl = ssl;
  spec.train_config.epochs = 12;
  spec.train_config.learning_rate = 2e-3f;
  spec.train_config.weight_decay = 1e-5f;
  spec.model_config.dropout = 0.1f;
  spec.model_config.embedding_init_stddev = 0.1f;
  return spec;
}

TEST(EndToEndTest, DinLearnsThePlantedStructure) {
  data::DatasetBundle bundle = Bundle(0.2);
  train::ExperimentResult din = train::RunExperiment(bundle, BaseSpec("din", ""));
  EXPECT_GT(din.auc, 0.60) << "DIN failed to learn the interest structure";
}

TEST(EndToEndTest, MissDoesNotHurtAndUsuallyHelpsDin) {
  data::DatasetBundle bundle = Bundle(0.2);
  train::ExperimentResult din = train::RunExperiment(bundle, BaseSpec("din", ""));
  train::ExperimentResult miss =
      train::RunExperiment(bundle, BaseSpec("din", "miss"));
  // On sparse data the SSL signal should help; allow a tiny tolerance to
  // keep the test robust to seed effects at this small scale.
  EXPECT_GT(miss.auc, din.auc - 0.005)
      << "DIN-MISS regressed vs DIN: " << miss.auc << " vs " << din.auc;
}

TEST(EndToEndTest, CnnViewsAreDistinguishableSaLstmViewsAreNot) {
  // The Figure 5 phenomenon: SA/LSTM extractors produce view pairs with
  // cosine similarity ~1 (vacuous contrastive task); CNN pairs sit lower.
  data::DatasetBundle bundle = Bundle(0.1);

  auto mean_similarity = [&](core::MissConfig::Extractor extractor) {
    train::ExperimentSpec spec = BaseSpec("din", "miss");
    spec.train_config.epochs = 2;
    spec.miss.extractor = extractor;
    train::ExperimentResult res = train::RunExperiment(bundle, spec);
    double sum = 0.0;
    for (double s : res.similarity_trace) sum += s;
    return sum / res.similarity_trace.size();
  };

  const double cnn = mean_similarity(core::MissConfig::Extractor::kCnn);
  const double sa =
      mean_similarity(core::MissConfig::Extractor::kSelfAttention);
  const double lstm = mean_similarity(core::MissConfig::Extractor::kLstm);

  EXPECT_GT(sa, 0.93) << "SA views should be nearly identical";
  EXPECT_GT(lstm, 0.80) << "LSTM views should be nearly identical";
  EXPECT_LT(cnn, sa);
  EXPECT_LT(cnn, lstm);
}

TEST(EndToEndTest, SslLossDecreasesDuringJointTraining) {
  data::DatasetBundle bundle = Bundle(0.1);
  train::ExperimentSpec spec = BaseSpec("din", "miss");
  spec.train_config.epochs = 6;
  train::ExperimentResult res = train::RunExperiment(bundle, spec);
  // Similarity of positive pairs should rise as the encoder aligns views.
  const size_t n = res.similarity_trace.size();
  ASSERT_GT(n, 10u);
  double early = 0.0, late = 0.0;
  for (size_t i = 0; i < n / 4; ++i) early += res.similarity_trace[i];
  for (size_t i = 3 * n / 4; i < n; ++i) late += res.similarity_trace[i];
  early /= n / 4;
  late /= n - 3 * n / 4;
  EXPECT_GT(late, early - 0.05);
}

}  // namespace
}  // namespace miss
