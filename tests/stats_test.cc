// Tests for the Welch t-test used for the paper's significance stars.

#include <cmath>

#include <gtest/gtest.h>

#include "train/stats.h"

namespace miss {
namespace {

TEST(StatsTest, MeanAndStdDev) {
  EXPECT_DOUBLE_EQ(train::Mean({2, 4, 6}), 4.0);
  EXPECT_NEAR(train::StdDev({2, 4, 6}), 2.0, 1e-12);
}

TEST(StatsTest, IncompleteBetaBoundaryValues) {
  EXPECT_DOUBLE_EQ(train::IncompleteBeta(2, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(train::IncompleteBeta(2, 3, 1.0), 1.0);
  // I_x(1, 1) = x (uniform distribution CDF).
  EXPECT_NEAR(train::IncompleteBeta(1, 1, 0.37), 0.37, 1e-9);
  // I_x(2, 2) = x^2 (3 - 2x).
  const double x = 0.4;
  EXPECT_NEAR(train::IncompleteBeta(2, 2, x), x * x * (3 - 2 * x), 1e-9);
}

TEST(StatsTest, IdenticalSamplesAreNotSignificant) {
  train::TTestResult r = train::WelchTTest({1, 2, 3, 4}, {1, 2, 3, 4});
  EXPECT_NEAR(r.t_statistic, 0.0, 1e-12);
  EXPECT_GT(r.p_value, 0.99);
}

TEST(StatsTest, WellSeparatedSamplesAreSignificant) {
  train::TTestResult r =
      train::WelchTTest({0.90, 0.91, 0.89, 0.90, 0.91},
                        {0.80, 0.81, 0.79, 0.80, 0.80});
  EXPECT_LT(r.p_value, 0.001);
  EXPECT_GT(r.mean_difference, 0.09);
}

TEST(StatsTest, MatchesReferenceTwoSampleCase) {
  // Hand-computed Welch statistics for
  // a = [5.1, 4.9, 6.2, 5.7], b = [4.4, 4.8, 4.1]:
  // t = 2.90698, dof = 4.8707; two-sided p ~ 0.034.
  train::TTestResult r =
      train::WelchTTest({5.1, 4.9, 6.2, 5.7}, {4.4, 4.8, 4.1});
  EXPECT_NEAR(r.t_statistic, 2.90698, 1e-4);
  EXPECT_NEAR(r.degrees_of_freedom, 4.8707, 1e-3);
  EXPECT_GT(r.p_value, 0.02);
  EXPECT_LT(r.p_value, 0.05);
}

TEST(StatsTest, ZeroVarianceDegenerateCases) {
  train::TTestResult same = train::WelchTTest({1, 1}, {1, 1});
  EXPECT_DOUBLE_EQ(same.p_value, 1.0);
  train::TTestResult diff = train::WelchTTest({1, 1}, {2, 2});
  EXPECT_DOUBLE_EQ(diff.p_value, 0.0);
}

TEST(StatsTest, OverlappingNoisySamplesNotSignificant) {
  train::TTestResult r =
      train::WelchTTest({0.80, 0.84, 0.78}, {0.79, 0.83, 0.81});
  EXPECT_GT(r.p_value, 0.3);
}

}  // namespace
}  // namespace miss
