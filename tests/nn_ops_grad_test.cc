// Finite-difference validation of every differentiable op's backward pass.

#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/ops.h"
#include "nn/tensor.h"
#include "tests/test_util.h"

namespace miss {
namespace {

using nn::Tensor;
using testing::CheckGradients;

Tensor RandomInput(std::vector<int64_t> shape, uint64_t seed,
                   float stddev = 1.0f) {
  common::Rng rng(seed);
  return Tensor::RandomNormal(std::move(shape), stddev, rng,
                              /*requires_grad=*/true);
}

// ---------------------------------------------------------------------------
// Broadcast binary ops, parameterized over (op, shape pair).
// ---------------------------------------------------------------------------

struct BinaryCase {
  std::string name;
  std::function<Tensor(const Tensor&, const Tensor&)> op;
  std::vector<int64_t> a_shape;
  std::vector<int64_t> b_shape;
};

class BinaryOpGradTest : public ::testing::TestWithParam<BinaryCase> {};

TEST_P(BinaryOpGradTest, MatchesFiniteDifference) {
  const BinaryCase& c = GetParam();
  Tensor a = RandomInput(c.a_shape, 1);
  Tensor b = RandomInput(c.b_shape, 2);
  // Keep divisors away from zero.
  if (c.name.find("div") != std::string::npos) {
    for (int64_t i = 0; i < b.size(); ++i) {
      b.set(i, b.at(i) >= 0 ? b.at(i) + 1.5f : b.at(i) - 1.5f);
    }
  }
  CheckGradients({a, b}, [&](const std::vector<Tensor>& in) {
    return nn::MeanAll(c.op(in[0], in[1]));
  });
}

std::vector<BinaryCase> BinaryCases() {
  std::vector<BinaryCase> cases;
  struct OpDef {
    std::string name;
    std::function<Tensor(const Tensor&, const Tensor&)> op;
  };
  const std::vector<OpDef> ops = {
      {"add", [](const Tensor& a, const Tensor& b) { return nn::Add(a, b); }},
      {"sub", [](const Tensor& a, const Tensor& b) { return nn::Sub(a, b); }},
      {"mul", [](const Tensor& a, const Tensor& b) { return nn::Mul(a, b); }},
      {"div", [](const Tensor& a, const Tensor& b) { return nn::Div(a, b); }},
  };
  struct ShapePair {
    std::string name;
    std::vector<int64_t> a;
    std::vector<int64_t> b;
  };
  const std::vector<ShapePair> shapes = {
      {"same", {3, 4}, {3, 4}},
      {"scalar", {3, 4}, {1}},
      {"row", {3, 4}, {4}},
      {"col", {3, 1}, {3, 4}},
      {"mid", {2, 1, 4}, {2, 3, 4}},
      {"deep", {2, 3, 1, 2}, {1, 3, 2, 2}},
  };
  for (const auto& op : ops) {
    for (const auto& sp : shapes) {
      cases.push_back({op.name + "_" + sp.name, op.op, sp.a, sp.b});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllBinaryOps, BinaryOpGradTest,
                         ::testing::ValuesIn(BinaryCases()),
                         [](const ::testing::TestParamInfo<BinaryCase>& info) {
                           return info.param.name;
                         });

// ---------------------------------------------------------------------------
// Unary ops.
// ---------------------------------------------------------------------------

struct UnaryCase {
  std::string name;
  std::function<Tensor(const Tensor&)> op;
  bool positive_only = false;
};

class UnaryOpGradTest : public ::testing::TestWithParam<UnaryCase> {};

TEST_P(UnaryOpGradTest, MatchesFiniteDifference) {
  const UnaryCase& c = GetParam();
  Tensor a = RandomInput({2, 5}, 7);
  if (c.positive_only) {
    for (int64_t i = 0; i < a.size(); ++i) a.set(i, std::abs(a.at(i)) + 0.5f);
  } else {
    // Keep values away from the ReLU kink where finite differences lie.
    for (int64_t i = 0; i < a.size(); ++i) {
      if (std::abs(a.at(i)) < 0.05f) a.set(i, 0.2f);
    }
  }
  CheckGradients({a}, [&](const std::vector<Tensor>& in) {
    return nn::MeanAll(c.op(in[0]));
  });
}

INSTANTIATE_TEST_SUITE_P(
    AllUnaryOps, UnaryOpGradTest,
    ::testing::Values(
        UnaryCase{"relu", [](const Tensor& a) { return nn::Relu(a); }},
        UnaryCase{"sigmoid", [](const Tensor& a) { return nn::Sigmoid(a); }},
        UnaryCase{"tanh", [](const Tensor& a) { return nn::Tanh(a); }},
        UnaryCase{"exp", [](const Tensor& a) { return nn::Exp(a); }},
        UnaryCase{"log", [](const Tensor& a) { return nn::Log(a); }, true},
        UnaryCase{"sqrt", [](const Tensor& a) { return nn::Sqrt(a); }, true},
        UnaryCase{"square", [](const Tensor& a) { return nn::Square(a); }},
        UnaryCase{"neg", [](const Tensor& a) { return nn::Neg(a); }},
        UnaryCase{"addscalar",
                  [](const Tensor& a) { return nn::AddScalar(a, 2.5f); }},
        UnaryCase{"mulscalar",
                  [](const Tensor& a) { return nn::MulScalar(a, -1.7f); }},
        UnaryCase{"softmax",
                  [](const Tensor& a) { return nn::SoftmaxLastDim(a); }},
        UnaryCase{"l2norm",
                  [](const Tensor& a) { return nn::RowL2Normalize(a); }}),
    [](const ::testing::TestParamInfo<UnaryCase>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// Matrix multiplication.
// ---------------------------------------------------------------------------

TEST(MatMulGradTest, TwoDee) {
  Tensor a = RandomInput({3, 4}, 11);
  Tensor b = RandomInput({4, 2}, 12);
  CheckGradients({a, b}, [](const std::vector<Tensor>& in) {
    return nn::MeanAll(nn::MatMul(in[0], in[1]));
  });
}

TEST(MatMulGradTest, LeadingBatchDims) {
  Tensor a = RandomInput({2, 3, 4}, 13);
  Tensor b = RandomInput({4, 5}, 14);
  CheckGradients({a, b}, [](const std::vector<Tensor>& in) {
    return nn::MeanAll(nn::MatMul(in[0], in[1]));
  });
}

TEST(MatMulGradTest, BatchMatMul) {
  Tensor a = RandomInput({2, 3, 4}, 15);
  Tensor b = RandomInput({2, 4, 2}, 16);
  CheckGradients({a, b}, [](const std::vector<Tensor>& in) {
    return nn::MeanAll(nn::BatchMatMul(in[0], in[1]));
  });
}

TEST(MatMulGradTest, TransposeLast2) {
  Tensor a = RandomInput({2, 3, 4}, 17);
  CheckGradients({a}, [](const std::vector<Tensor>& in) {
    return nn::MeanAll(nn::Mul(nn::TransposeLast2(in[0]),
                               nn::TransposeLast2(in[0])));
  });
}

TEST(MatMulValueTest, KnownProduct) {
  Tensor a = Tensor::FromData({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromData({2, 2}, {5, 6, 7, 8});
  Tensor c = nn::MatMul(a, b);
  EXPECT_FLOAT_EQ(c.at(0), 19);
  EXPECT_FLOAT_EQ(c.at(1), 22);
  EXPECT_FLOAT_EQ(c.at(2), 43);
  EXPECT_FLOAT_EQ(c.at(3), 50);
}

// ---------------------------------------------------------------------------
// Shape ops.
// ---------------------------------------------------------------------------

TEST(ShapeOpGradTest, Reshape) {
  Tensor a = RandomInput({2, 6}, 21);
  CheckGradients({a}, [](const std::vector<Tensor>& in) {
    return nn::MeanAll(nn::Square(nn::Reshape(in[0], {3, 4})));
  });
}

TEST(ShapeOpGradTest, Concat) {
  Tensor a = RandomInput({2, 3}, 22);
  Tensor b = RandomInput({2, 2}, 23);
  Tensor c = RandomInput({2, 4}, 24);
  CheckGradients({a, b, c}, [](const std::vector<Tensor>& in) {
    return nn::MeanAll(nn::Square(nn::Concat({in[0], in[1], in[2]}, 1)));
  });
}

TEST(ShapeOpGradTest, ConcatAxis0) {
  Tensor a = RandomInput({2, 3}, 25);
  Tensor b = RandomInput({1, 3}, 26);
  CheckGradients({a, b}, [](const std::vector<Tensor>& in) {
    return nn::MeanAll(nn::Square(nn::Concat({in[0], in[1]}, 0)));
  });
}

TEST(ShapeOpGradTest, Slice) {
  Tensor a = RandomInput({3, 5}, 27);
  CheckGradients({a}, [](const std::vector<Tensor>& in) {
    return nn::MeanAll(nn::Square(nn::Slice(in[0], 1, 1, 3)));
  });
}

TEST(ShapeOpGradTest, SliceMiddleAxis) {
  Tensor a = RandomInput({2, 4, 3}, 28);
  CheckGradients({a}, [](const std::vector<Tensor>& in) {
    return nn::MeanAll(nn::Square(nn::Slice(in[0], 1, 0, 2)));
  });
}

// ---------------------------------------------------------------------------
// Reductions.
// ---------------------------------------------------------------------------

struct ReduceCase {
  std::string name;
  int axis;
  bool keepdims;
  bool mean;
};

class ReduceGradTest : public ::testing::TestWithParam<ReduceCase> {};

TEST_P(ReduceGradTest, MatchesFiniteDifference) {
  const ReduceCase& c = GetParam();
  Tensor a = RandomInput({2, 3, 4}, 31);
  CheckGradients({a}, [&](const std::vector<Tensor>& in) {
    Tensor r = c.mean ? nn::MeanAxis(in[0], c.axis, c.keepdims)
                      : nn::SumAxis(in[0], c.axis, c.keepdims);
    return nn::MeanAll(nn::Square(r));
  });
}

INSTANTIATE_TEST_SUITE_P(
    Axes, ReduceGradTest,
    ::testing::Values(ReduceCase{"sum0", 0, false, false},
                      ReduceCase{"sum1", 1, false, false},
                      ReduceCase{"sum2", 2, false, false},
                      ReduceCase{"sum1keep", 1, true, false},
                      ReduceCase{"mean0", 0, false, true},
                      ReduceCase{"mean2keep", 2, true, true},
                      ReduceCase{"sumneg", -1, false, false}),
    [](const ::testing::TestParamInfo<ReduceCase>& info) {
      return info.param.name;
    });

TEST(ReduceValueTest, SumAllAndMeanAll) {
  Tensor a = Tensor::FromData({2, 2}, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(nn::SumAll(a).item(), 10.0f);
  EXPECT_FLOAT_EQ(nn::MeanAll(a).item(), 2.5f);
}

// ---------------------------------------------------------------------------
// Losses and masked softmax.
// ---------------------------------------------------------------------------

TEST(LossGradTest, DiagonalNllFromLogits) {
  Tensor s = RandomInput({4, 4}, 41);
  CheckGradients({s}, [](const std::vector<Tensor>& in) {
    return nn::DiagonalNllFromLogits(in[0]);
  });
}

TEST(LossValueTest, DiagonalNllMatchesHandComputation) {
  // 2x2 logits: rows [1, 0], [0, 2].
  Tensor s = Tensor::FromData({2, 2}, {1, 0, 0, 2});
  const double row0 = std::log(std::exp(1.0) + std::exp(0.0)) - 1.0;
  const double row1 = std::log(std::exp(0.0) + std::exp(2.0)) - 2.0;
  EXPECT_NEAR(nn::DiagonalNllFromLogits(s).item(), (row0 + row1) / 2.0, 1e-5);
}

TEST(LossGradTest, BceWithLogits) {
  Tensor x = RandomInput({6}, 42);
  const std::vector<float> labels = {1, 0, 1, 1, 0, 0};
  CheckGradients({x}, [&](const std::vector<Tensor>& in) {
    return nn::BceWithLogitsLoss(in[0], labels);
  });
}

TEST(LossValueTest, BceMatchesDefinition) {
  Tensor x = Tensor::FromData({2}, {0.5f, -1.0f});
  const std::vector<float> y = {1.0f, 0.0f};
  const double p0 = 1.0 / (1.0 + std::exp(-0.5));
  const double p1 = 1.0 / (1.0 + std::exp(1.0));
  const double expected = -(std::log(p0) + std::log(1 - p1)) / 2.0;
  EXPECT_NEAR(nn::BceWithLogitsLoss(x, y).item(), expected, 1e-5);
}

TEST(MaskedSoftmaxTest, ZeroesMaskedPositionsAndGradients) {
  Tensor a = RandomInput({2, 4}, 43);
  const std::vector<float> mask = {1, 1, 0, 1, 0, 1, 1, 0};
  Tensor p = nn::MaskedSoftmaxLastDim(a, mask);
  EXPECT_FLOAT_EQ(p.at(2), 0.0f);
  EXPECT_FLOAT_EQ(p.at(4), 0.0f);
  EXPECT_FLOAT_EQ(p.at(7), 0.0f);
  float row0 = p.at(0) + p.at(1) + p.at(3);
  float row1 = p.at(5) + p.at(6);
  EXPECT_NEAR(row0, 1.0f, 1e-5);
  EXPECT_NEAR(row1, 1.0f, 1e-5);

  CheckGradients({a}, [&](const std::vector<Tensor>& in) {
    return nn::MeanAll(nn::Square(nn::MaskedSoftmaxLastDim(in[0], mask)));
  });
}

TEST(MaskedSoftmaxTest, FullyMaskedRowYieldsZeros) {
  Tensor a = Tensor::FromData({1, 3}, {5, 5, 5});
  const std::vector<float> mask = {0, 0, 0};
  Tensor p = nn::MaskedSoftmaxLastDim(a, mask);
  for (int i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(p.at(i), 0.0f);
}

// ---------------------------------------------------------------------------
// Gather ops.
// ---------------------------------------------------------------------------

TEST(EmbeddingGradTest, LookupScattersGradients) {
  Tensor table = RandomInput({5, 3}, 51);
  const std::vector<int64_t> ids = {0, 4, 2, 2};
  CheckGradients({table}, [&](const std::vector<Tensor>& in) {
    return nn::MeanAll(nn::Square(nn::EmbeddingLookup(in[0], ids, {2, 2})));
  });
}

TEST(EmbeddingValueTest, NegativeIdGivesZeroRow) {
  common::Rng rng(1);
  Tensor table = Tensor::RandomNormal({4, 3}, 1.0f, rng, true);
  Tensor out = nn::EmbeddingLookup(table, {-1, 2}, {2});
  for (int k = 0; k < 3; ++k) EXPECT_FLOAT_EQ(out.at(k), 0.0f);
  for (int k = 0; k < 3; ++k) EXPECT_FLOAT_EQ(out.at(3 + k), table.at(6 + k));
}

TEST(SelectTimeStepsTest, GathersAndBackpropagates) {
  Tensor x = RandomInput({2, 4, 3}, 52);
  const std::vector<int64_t> idx = {0, 3, 1, 1};  // B=2, T=2
  Tensor out = nn::SelectTimeSteps(x, idx, 2);
  EXPECT_EQ(out.shape(), (std::vector<int64_t>{2, 2, 3}));
  EXPECT_FLOAT_EQ(out.at(0), x.at(0));
  // b=1, t=0 -> x[1, 1]
  EXPECT_FLOAT_EQ(out.at(2 * 3 + 0), x.at((4 + 1) * 3 + 0));
  CheckGradients({x}, [&](const std::vector<Tensor>& in) {
    return nn::MeanAll(nn::Square(nn::SelectTimeSteps(in[0], idx, 2)));
  });
}

// ---------------------------------------------------------------------------
// MISS convolutions, parameterized over kernel widths (property sweep).
// ---------------------------------------------------------------------------

class HorizontalConvGradTest : public ::testing::TestWithParam<int> {};

TEST_P(HorizontalConvGradTest, MatchesFiniteDifference) {
  const int m = GetParam();
  Tensor c = RandomInput({2, 2, 5, 3}, 61);
  Tensor w = RandomInput({m}, 62);
  CheckGradients({c, w}, [](const std::vector<Tensor>& in) {
    return nn::MeanAll(nn::Square(nn::HorizontalConv(in[0], in[1])));
  });
}

INSTANTIATE_TEST_SUITE_P(KernelWidths, HorizontalConvGradTest,
                         ::testing::Values(1, 2, 3, 4, 5));

class VerticalConvGradTest : public ::testing::TestWithParam<int> {};

TEST_P(VerticalConvGradTest, MatchesFiniteDifference) {
  const int n = GetParam();
  Tensor g = RandomInput({2, 3, 4, 2}, 63);
  Tensor w = RandomInput({n}, 64);
  CheckGradients({g, w}, [](const std::vector<Tensor>& in) {
    return nn::MeanAll(nn::Square(nn::VerticalConv(in[0], in[1])));
  });
}

INSTANTIATE_TEST_SUITE_P(KernelHeights, VerticalConvGradTest,
                         ::testing::Values(1, 2, 3));

TEST(HorizontalConvValueTest, IdentityKernelIsNoOp) {
  Tensor c = RandomInput({1, 2, 4, 3}, 65);
  Tensor w = Tensor::FromData({1}, {1.0f});
  Tensor out = nn::HorizontalConv(c, w);
  ASSERT_EQ(out.shape(), c.shape());
  for (int64_t i = 0; i < c.size(); ++i) EXPECT_FLOAT_EQ(out.at(i), c.at(i));
}

TEST(HorizontalConvValueTest, SumKernelSlidesWindow) {
  // C: [1,1,3,1] = [1, 2, 3]; kernel [1, 1] -> [3, 5]
  Tensor c = Tensor::FromData({1, 1, 3, 1}, {1, 2, 3});
  Tensor w = Tensor::FromData({2}, {1, 1});
  Tensor out = nn::HorizontalConv(c, w);
  EXPECT_EQ(out.shape(), (std::vector<int64_t>{1, 1, 2, 1}));
  EXPECT_FLOAT_EQ(out.at(0), 3.0f);
  EXPECT_FLOAT_EQ(out.at(1), 5.0f);
}

TEST(VerticalConvValueTest, SumsAdjacentFields) {
  // G: [1,3,1,2]: field rows [1,2], [3,4], [5,6]; kernel [1,1]
  Tensor g = Tensor::FromData({1, 3, 1, 2}, {1, 2, 3, 4, 5, 6});
  Tensor w = Tensor::FromData({2}, {1, 1});
  Tensor out = nn::VerticalConv(g, w);
  EXPECT_EQ(out.shape(), (std::vector<int64_t>{1, 2, 1, 2}));
  EXPECT_FLOAT_EQ(out.at(0), 4.0f);
  EXPECT_FLOAT_EQ(out.at(1), 6.0f);
  EXPECT_FLOAT_EQ(out.at(2), 8.0f);
  EXPECT_FLOAT_EQ(out.at(3), 10.0f);
}

// ---------------------------------------------------------------------------
// Dropout.
// ---------------------------------------------------------------------------

TEST(DropoutTest, EvalModeIsIdentity) {
  common::Rng rng(77);
  Tensor a = RandomInput({4, 4}, 71);
  Tensor out = nn::Dropout(a, 0.5f, /*training=*/false, rng);
  for (int64_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(out.at(i), a.at(i));
}

TEST(DropoutTest, TrainingPreservesMeanAndZeroesEntries) {
  common::Rng rng(78);
  Tensor a = Tensor::Full({10000}, 1.0f);
  Tensor out = nn::Dropout(a, 0.3f, /*training=*/true, rng);
  int64_t zeros = 0;
  double sum = 0;
  for (int64_t i = 0; i < out.size(); ++i) {
    if (out.at(i) == 0.0f) ++zeros;
    sum += out.at(i);
  }
  EXPECT_NEAR(static_cast<double>(zeros) / out.size(), 0.3, 0.02);
  EXPECT_NEAR(sum / out.size(), 1.0, 0.05);
}

}  // namespace
}  // namespace miss
